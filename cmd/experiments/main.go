// Command experiments regenerates the paper's evaluation (§4) on the
// simulated Grid'5000 substrate: Figure 3 (concurrent appends), Figures
// 4/5 (reader/appender interference), Figure 6 (data-join completion
// time, HDFS vs BSFS), the derived file-count table, the §5 pipeline
// extension, and the DESIGN.md ablations.
//
// Usage:
//
//	experiments -fig all            # everything, full sweeps (~minutes)
//	experiments -fig 3 -quick       # one figure, reduced sweep
//	experiments -fig 6 -csv         # emit gnuplot-friendly CSV too
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"blobseer"
	"blobseer/internal/experiments"
	"blobseer/internal/flight"
	"blobseer/internal/metrics"
	"blobseer/internal/obs"
	"blobseer/internal/obshttp"
	"blobseer/internal/shuffle"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to run: all,3,4,5,6,filecount,pipeline,shuffle,gc,snapshot,meta,hotspot,incident,abl-placement,abl-pagesize,abl-lock")
		nodes   = flag.Int("nodes", 270, "total simulated machines (paper: 270)")
		meta    = flag.Int("meta", 20, "metadata providers (paper: 20)")
		page    = flag.Int("page", 256, "page/chunk size in KiB (paper: 64 MiB, scaled)")
		bwMB    = flag.Float64("bw", 12.5, "modeled NIC bandwidth in MB/s (paper: 1 GbE, scaled)")
		reps    = flag.Int("reps", 5, "repetitions per point (paper: 5)")
		depth   = flag.Int("depth", 0, "BSFS writer pipeline depth (blocks in flight; 0 = default, 1 = synchronous)")
		rdepth  = flag.Int("readdepth", 0, "BSFS reader readahead depth (blocks in flight; 0 = default, negative = off)")
		cachemb = flag.Int("cachemb", 0, "BSFS page cache budget in MiB per mount (0 = off so figures measure the network; >0 enables as an ablation)")
		shufB   = flag.String("shuffle", "memory", "Map/Reduce shuffle backend for BSFS application figures: memory or blob")
		retain  = flag.Uint64("retain", 0, "default RetainLatest GC policy for the environment (0 = keep every version)")
		gcIntv  = flag.Duration("gc-interval", 0, "periodic GC pass cadence (0 = kick-driven only)")
		shards  = flag.Int("vm-shards", 1, "version-manager shards for the environment (the meta scenario sweeps its own counts)")
		bench   = flag.String("bench-json", "", "write the meta scenario's machine-readable results to this file (e.g. BENCH_meta.json)")
		benchD  = flag.String("bench-dir", "", "write BENCH_<fig>.json reports (throughput + latency percentiles) for the write/read/shuffle/gc/hotspot scenarios into this directory")
		cmpD    = flag.String("compare", "", "diff each scenario's fresh report against the baseline BENCH_<fig>.json in this directory; drift beyond -tolerance prints warnings (GitHub annotations under GITHUB_ACTIONS) but never fails the run")
		tolPct  = flag.Float64("tolerance", experiments.DefaultTolerancePct, "drift tolerance band for -compare, in percent")
		mAddr   = flag.String("metrics-addr", "", "serve /metrics, /metrics.json, /healthz and /spans on this address while the experiments run (e.g. 127.0.0.1:9090)")
		trace   = flag.Bool("trace", false, "with -fig shuffle: sample one traced append and print its causal span tree")
		diagP   = flag.String("diag", "", "on scenario failure, write a postmortem diag bundle (tar.gz with the process-wide metrics registry) to this path before exiting")
		logLvl  = flag.String("log-level", "", "obs log level: debug|info|warn|error (default warn)")
		slowMs  = flag.Float64("slow-ms", 0, "slow-span threshold in ms for warn logging (0 = off)")
		seed    = flag.Int64("seed", 1, "random seed")
		quick   = flag.Bool("quick", false, "reduced sweeps for a fast run")
		csv     = flag.Bool("csv", false, "also print CSV data")
	)
	flag.Parse()
	if *logLvl != "" {
		lv, err := obs.ParseLevel(*logLvl)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		obs.Log.SetLevel(lv)
	}
	if *slowMs > 0 {
		obs.Spans.SetSlowThreshold(time.Duration(*slowMs * float64(time.Millisecond)))
	}

	if *mAddr != "" {
		ms, err := obshttp.ServeMetrics(*mAddr, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: metrics endpoint:", err)
			os.Exit(1)
		}
		defer ms.Close()
		fmt.Printf("[metrics endpoint on http://%s/metrics]\n", ms.Addr())
	}

	shuffleBackend, err := shuffle.ParseBackend(*shufB)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	cfg := experiments.Config{
		Nodes:         *nodes,
		MetaProviders: *meta,
		PageSize:      uint64(*page) << 10,
		Bandwidth:     *bwMB * (1 << 20),
		Reps:          *reps,
		WriteDepth:    *depth,
		ReadDepth:     *rdepth,
		CacheBytes:    blobseer.CacheMiB(*cachemb),
		Shuffle:       shuffleBackend,
		Retain:        *retain,
		GCInterval:    *gcIntv,
		VMShards:      *shards,
		Seed:          *seed,
	}

	sweeps := fullSweeps()
	if *quick {
		sweeps = quickSweeps()
		cfg.Nodes = 64
		cfg.MetaProviders = 8
		cfg.Reps = 2
	}

	// The scenarios that grew bench reports are addressable by role as
	// well as figure number: -fig write == -fig 3, -fig read == -fig 4.
	figSel := *fig
	switch figSel {
	case "write":
		figSel = "3"
	case "read":
		figSel = "4"
	}

	// writeReport emits the scenario's BENCH_<fig>.json when -bench-dir
	// is set, and diffs the fresh report against the committed baseline
	// when -compare is set.
	writeReport := func(rep *experiments.BenchReport) error {
		if *benchD != "" {
			path, err := experiments.WriteBench(*benchD, rep)
			if err != nil {
				return err
			}
			fmt.Printf("[bench report written to %s]\n\n", path)
		}
		if *cmpD != "" {
			base, err := experiments.LoadBench(filepath.Join(*cmpD, "BENCH_"+rep.Fig+".json"))
			if os.IsNotExist(err) {
				fmt.Printf("[no baseline for %s in %s; skipping compare]\n\n", rep.Fig, *cmpD)
				return nil
			}
			if err != nil {
				return err
			}
			drifts := experiments.CompareBench(base, rep, *tolPct)
			annotate := os.Getenv("GITHUB_ACTIONS") == "true"
			fmt.Printf("# bench drift vs %s baseline:\n%s\n", rep.Fig, experiments.FormatDrift(drifts, *tolPct, annotate))
		}
		return nil
	}

	run := func(name string, fn func() error) {
		if figSel != "all" && figSel != name {
			return
		}
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", name, err)
			if *diagP != "" {
				// Postmortem collection: the scenario's environment is
				// gone, but the process-wide registry still holds every
				// op histogram the failed run recorded.
				if _, derr := flight.WriteDiagFile(*diagP, flight.DiagSources{Registry: metrics.Default}); derr != nil {
					fmt.Fprintf(os.Stderr, "experiments: diag bundle: %v\n", derr)
				} else {
					fmt.Fprintf(os.Stderr, "[diag bundle written to %s]\n", *diagP)
				}
			}
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	emit := func(title string, series ...*metrics.Series) {
		fmt.Println(metrics.Table(title, series...))
		if *csv {
			fmt.Println(metrics.CSV(series...))
		}
	}

	run("3", func() error {
		rep, s, err := experiments.BenchWrite(cfg, sweeps.fig3)
		if err != nil {
			return err
		}
		emit("Figure 3: concurrent appends to the same file (BSFS)", s)
		return writeReport(rep)
	})

	run("4", func() error {
		rep, s, err := experiments.BenchRead(cfg, sweeps.fig45)
		if err != nil {
			return err
		}
		emit("Figure 4: impact of concurrent appends on concurrent reads (100 readers)", s)
		return writeReport(rep)
	})

	run("5", func() error {
		s, err := experiments.Fig5(cfg, sweeps.fig45)
		if err != nil {
			return err
		}
		emit("Figure 5: impact of concurrent reads on concurrent appends (100 appenders)", s)
		return nil
	})

	var fig6 *experiments.Fig6Result
	runFig6 := func() error {
		if fig6 != nil {
			return nil
		}
		var err error
		fig6, err = experiments.Fig6(cfg, sweeps.fig6)
		return err
	}

	run("6", func() error {
		if err := runFig6(); err != nil {
			return err
		}
		emit("Figure 6: data join completion time vs number of reducers", fig6.HDFS, fig6.BSFS)
		return nil
	})

	run("filecount", func() error {
		if err := runFig6(); err != nil {
			return err
		}
		emit("Table A: output files produced by the data join",
			fig6.FilesHDFS, fig6.FilesBSFS)
		emit("Table A': centralized metadata entries after the run",
			fig6.MetaHDFS, fig6.MetaBSFS)
		return nil
	})

	run("pipeline", func() error {
		res, err := experiments.Pipeline(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("# Extension (§5): two-stage pipeline on BSFS\n")
		fmt.Printf("%-24s %10.2f s\n", "sequential stages", res.SequentialSec)
		fmt.Printf("%-24s %10.2f s\n", "pipelined stages", res.PipelinedSec)
		fmt.Printf("%-24s %10.2fx\n", "speedup", res.Speedup)
		fmt.Println()
		return nil
	})

	run("shuffle", func() error {
		rep, res, err := experiments.BenchShuffle(cfg)
		if err != nil {
			return err
		}
		emit("Shuffle backends: completion time with and without tracker failure at the map barrier",
			res.TimeMemory, res.TimeBlob)
		emit("Shuffle backends: map re-runs forced by the failure",
			res.RerunsMemory, res.RerunsBlob)
		fmt.Printf("# blob backend: first segment fetched %.3f s before the map phase ended\n", res.BlobOverlapSec)
		fmt.Printf("# blob backend: %d segments served after their producing tracker died\n\n", res.BlobRecovered)
		if *trace {
			tree, err := experiments.TraceAppend(context.Background(), cfg)
			if err != nil {
				return err
			}
			fmt.Printf("# one sampled append, traced across processes:\n%s\n", tree)
		}
		return writeReport(rep)
	})

	run("gc", func() error {
		rep, res, err := experiments.BenchGC(cfg)
		if err != nil {
			return err
		}
		emit("Storage lifecycle: bounded vs unbounded provider storage under sustained writes",
			res.OverwriteGC, res.OverwriteNoGC, res.RotateGC, res.RotateNoGC)
		fmt.Printf("# overwrite: final storage %.2fx the working set under RetainLatest(2)\n", res.OverwriteBoundRatio)
		fmt.Printf("# rotate:    final storage %.2fx the live-file set with delete-driven GC\n", res.RotateBoundRatio)
		fmt.Printf("# collector: %d passes, %d versions collected, %d blobs deleted, %d pages (%d bytes) reclaimed, %d tree nodes deleted\n\n",
			res.GCStats.Passes, res.GCStats.VersionsCollected, res.GCStats.BlobsDeleted,
			res.GCStats.PagesReclaimed, res.GCStats.BytesReclaimed, res.GCStats.NodesDeleted)
		return writeReport(rep)
	})

	run("hotspot", func() error {
		rep, res, series, err := experiments.BenchHotspot(cfg)
		if err != nil {
			return err
		}
		emit("Hotspot: monitor heat sketch vs ground-truth Zipf hot set", series...)
		fmt.Printf("# hotspot: %d Zipf(s=1.2) reads over %d pages (sketch capacity %d), %d readers\n",
			res.Accesses, res.Pages, res.Pages/2, res.Readers)
		fmt.Printf("# sketch top-10 precision %.2f (acceptance >= 0.90)\n", res.Precision)
		fmt.Printf("# provider read-rate imbalance %.1fx; hottest provider %s (%.0f%% NIC), holds a hot page: %v\n\n",
			res.ReplicaImbalance, res.HotProvider, 100*res.MaxUtilization, res.HotProviderIsHolder)
		if res.Precision < 0.9 {
			return fmt.Errorf("heat sketch precision %.2f below the 0.90 acceptance bar", res.Precision)
		}
		return writeReport(rep)
	})

	run("snapshot", func() error {
		res, err := experiments.Snapshot(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("# Snapshot-first API: fixed-version reads under %d concurrent appenders\n", res.Appenders)
		fmt.Printf("%-34s %d snapshots, %d reads, all byte-identical\n", "fixed-version readers", res.FixedSnapshots, res.FixedReads)
		fmt.Printf("%-34s %d snapshots, consistent prefixes\n", "WaitVersion tailing reader", res.TailVersions)
		fmt.Printf("%-34s v%d: %d bytes = %d records (file grew to %d)\n",
			"mid-append job pinned input", res.PinnedVersion, res.JobInputBytes, res.JobRecords, res.FinalSize)
		fmt.Printf("%-34s %d versions collected once pins released; re-open => ErrVersionGone: %v\n",
			"retention after release", res.VersionsCollected, res.GoneAfterGC)
		fmt.Printf("%-34s %d versions\n\n", "retained history at end", res.VersionsListed)
		return nil
	})

	run("meta", func() error {
		rep, res, err := experiments.BenchMeta(cfg)
		if err != nil {
			return err
		}
		scaling := &metrics.Series{Name: "publish ops/s", XLabel: "vm shards", YLabel: "ops/s"}
		for _, p := range res.Scaling {
			scaling.Add(float64(p.Shards), p.OpsPerSec, 0)
		}
		emit("Metadata plane: aggregate publish throughput vs version-manager shards", scaling)
		f := res.Failover
		fmt.Printf("# failover: killed shard %d/%d for %.0f ms mid-workload (%d writers)\n",
			f.KilledShard, f.Shards, f.OutageMS, f.Writers)
		fmt.Printf("# failover: %d writes acked before the kill, %d total, %d lost after replay\n",
			f.AckedBefore, f.AckedTotal, f.LostWrites)
		r := res.Recovery
		fmt.Printf("# recovery: cold restart of %d shards replayed %d journal records in %.1f ms; %d blobs / %d versions served\n\n",
			r.Shards, r.Records, r.ReplayMS, r.Blobs, r.Versions)
		if *bench != "" {
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*bench, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("[bench results written to %s]\n\n", *bench)
		}
		return writeReport(rep)
	})

	run("incident", func() error {
		rep, res, err := experiments.BenchIncident(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("# Incident drill: VM shard %d/%d killed for %.0f ms under an armed SLO watchdog\n",
			res.KilledShard, res.Shards, res.OutageMS)
		fmt.Printf("# alert: fired %.1f ms after the kill (%d collection passes), cleared %d evals after the restart (hysteresis >= 3)\n",
			res.FireDelayMS, res.FireCollections, res.ClearEvals)
		fmt.Printf("# replay: %d events off the abandoned flight log — %d traces (largest slow tree %d spans), %d snapshots (%d before kill / %d after restart), %d alert transitions, %d health flips\n\n",
			res.ReplayEvents, res.ReplayTraces, res.ReplaySlowTraceSpans, res.ReplaySnapshots,
			res.SnapshotsBeforeKill, res.SnapshotsAfterRestart, res.AlertFires+res.AlertClears, res.HealthTransitions)
		return writeReport(rep)
	})

	run("abl-placement", func() error {
		series, err := experiments.AblationPlacement(cfg, sweeps.ablClients)
		if err != nil {
			return err
		}
		emit("Ablation 2: provider placement strategy (Fig 3 workload)", series...)
		return nil
	})

	run("abl-pagesize", func() error {
		s, err := experiments.AblationPageSize(cfg, sweeps.pageSizes, sweeps.ablN)
		if err != nil {
			return err
		}
		emit("Ablation 3: page size sweep (Fig 3 workload)", s)
		return nil
	})

	run("abl-lock", func() error {
		versioned, locked, err := experiments.AblationLockedAppend(cfg, sweeps.ablClients)
		if err != nil {
			return err
		}
		emit("Ablation 1: versioning vs global append lock", versioned, locked)
		return nil
	})
}

// sweepSet bundles the per-figure parameter sweeps.
type sweepSet struct {
	fig3       []int
	fig45      []int
	fig6       []int
	ablClients []int
	ablN       int
	pageSizes  []uint64
}

func fullSweeps() sweepSet {
	return sweepSet{
		fig3:       []int{1, 16, 32, 64, 96, 128, 160, 192, 224, 246},
		fig45:      []int{0, 20, 40, 60, 80, 100, 120, 140},
		fig6:       []int{1, 30, 60, 120, 180, 230},
		ablClients: []int{1, 16, 64, 128},
		ablN:       64,
		pageSizes:  []uint64{32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10},
	}
}

func quickSweeps() sweepSet {
	return sweepSet{
		fig3:       []int{1, 8, 24, 48},
		fig45:      []int{0, 10, 30},
		fig6:       []int{1, 15, 45},
		ablClients: []int{1, 16, 48},
		ablN:       16,
		pageSizes:  []uint64{64 << 10, 256 << 10},
	}
}
