// Command bsfsctl is a small shell over an embedded BSFS deployment:
// it boots a cluster in-process, then executes file-system commands
// from stdin (or a -demo script), printing results. It exists to poke
// at the system interactively:
//
//	echo 'gen /a 100000
//	append /a hello
//	stat /a
//	locate /a
//	ls /' | go run ./cmd/bsfsctl
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"time"

	"blobseer"
	"blobseer/internal/blob"
	"blobseer/internal/dfs"
	"blobseer/internal/flight"
	"blobseer/internal/metrics"
	"blobseer/internal/monitor"
	"blobseer/internal/obs"
	"blobseer/internal/obshttp"
	"blobseer/internal/workload"
)

const usage = `commands:
  gen <path> <bytes>      create <path> with <bytes> of synthetic text
  put <path> <text...>    create <path> containing <text>
  append <path> <text...> append <text> plus newline to <path>
  cat [-ver N] <path>     print file contents (at snapshot N)
  head [-ver N] <path> <n> print first n bytes (at snapshot N)
  stat [-ver N] <path>    show size/blocks (at snapshot N)
  versions <path>         list the file's published snapshots
  ls <dir>                list directory
  mkdir <dir>             create directory
  mv <src> <dst>          rename
  rm <path>               delete
  locate <path>           show block -> host placement
  entries                 namespace metadata entry count
  gcstats                 run a GC pass and print collector counters
  shards                  show ring assignment and per-shard blob/version counts
  stats                   print the process metrics registry (RPC p99s, op latencies, gauges)
  top [-watch [n]]        cluster monitor: per-provider utilization, shard journal lag,
                          and the hot page set (-watch refreshes n times, default 5)
  health                  per-component health (namespace journal, shard pings, collector)
  alerts                  SLO watchdog rule states (needs -flight)
  diag <file.tar.gz>      collect a postmortem bundle: alerts, flight timeline,
                          cluster snapshot, metrics, health (needs -flight for the timeline)
  help                    this text
`

func main() {
	var (
		providers = flag.Int("providers", 8, "data providers")
		meta      = flag.Int("meta", 3, "metadata providers")
		block     = flag.Int("block", 64, "block size in KiB")
		depth     = flag.Int("depth", 0, "writer pipeline depth (0 = default, 1 = synchronous)")
		rdepth    = flag.Int("readdepth", 0, "reader readahead depth (0 = default, negative = off)")
		cachemb   = flag.Int("cachemb", 0, "page cache budget in MiB (0 = default, negative = off)")
		retain    = flag.Uint64("retain", 0, "default RetainLatest GC policy (0 = keep every version)")
		gcIntv    = flag.Duration("gc-interval", 0, "periodic GC pass cadence (0 = kick-driven only)")
		vmShards  = flag.Int("vm-shards", 1, "version-manager shards (metadata plane partitions)")
		journal   = flag.String("journal", "", "journal directory (empty = in-memory metadata plane)")
		mAddr     = flag.String("metrics-addr", "", "serve /metrics, /metrics.json, /healthz, /spans and /alerts on this address while the shell runs")
		flightLog = flag.String("flight", "", "flight recorder path: persist sampled traces, snapshots and alerts there and arm the SLO watchdog")
		pingTmo   = flag.Duration("health-ping-timeout", 0, "per-shard /healthz ping timeout (0 = default 2s)")
		logLevel  = flag.String("log-level", "", "obs log level: debug|info|warn|error (default warn)")
		slowMs    = flag.Float64("slow-ms", 0, "slow-span threshold in ms for warn logging and tail sampling (0 = off)")
		demo      = flag.Bool("demo", false, "run a canned demo script")
	)
	flag.Parse()
	if err := applyObsFlags(*logLevel, *slowMs); err != nil {
		fatal(err)
	}

	cluster, err := blobseer.NewCluster(blobseer.Options{
		Providers:         *providers,
		MetaProviders:     *meta,
		BlockSize:         uint64(*block) << 10,
		WriteDepth:        *depth,
		ReadDepth:         *rdepth,
		CacheBytes:        blobseer.CacheMiB(*cachemb),
		Retain:            *retain,
		GCInterval:        *gcIntv,
		VMShards:          *vmShards,
		JournalDir:        *journal,
		FlightPath:        *flightLog,
		HealthPingTimeout: *pingTmo,
	})
	if err != nil {
		fatal(err)
	}
	defer cluster.Close()
	fs := cluster.Mount("node-000")
	defer fs.Close()
	ctx := context.Background()

	// The shell's mount is the process's one client: expose its cache
	// footprint, pipelining depth, and the metadata plane's journal size
	// as registry gauges so `stats` and /metrics show live state, not
	// just counters.
	bc := fs.BlobClient()
	metrics.Default.SetGauge("client_cache_bytes", func() float64 { return float64(bc.PageCache().Bytes()) })
	metrics.Default.SetGauge("client_inflight_writes", func() float64 { return float64(bc.InFlight()) })
	vms := cluster.Blob.VMs
	metrics.Default.SetGauge("vm_journal_records", func() float64 {
		var n uint64
		for _, vm := range vms {
			n += vm.JournalRecords()
		}
		return float64(n)
	})

	if *mAddr != "" {
		opts := obshttp.Options{
			Monitor: cluster.FS.Monitor,
			Health:  cluster.FS.Health,
		}
		if cluster.FS.Watchdog != nil {
			opts.Alerts = cluster.FS.Watchdog.Alerts
		}
		ms, err := obshttp.Serve(*mAddr, opts)
		if err != nil {
			fatal(err)
		}
		defer ms.Close()
		fmt.Printf("[metrics endpoint on http://%s/metrics]\n", ms.Addr())
	}

	var in io.Reader = os.Stdin
	if *demo {
		in = strings.NewReader(`gen /data/sample 50000
stat /data/sample
append /data/sample tail record one
append /data/sample tail record two
stat /data/sample
versions /data/sample
head -ver 1 /data/sample 80
ls /data
locate /data/sample
entries
`)
	}

	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fmt.Printf("> %s\n", line)
		if line == "gcstats" {
			// Needs the deployment, not just the mount, so it is handled
			// here: run a reclaim pass and print the collector counters.
			if _, err := cluster.FS.GC.RunOnce(ctx); err != nil {
				fmt.Printf("error: %v\n", err)
				continue
			}
			s := cluster.FS.GC.Stats().Snapshot()
			fmt.Printf("gc: passes=%d versions=%d blobs=%d pages=%d bytes=%d nodes=%d pins-blocked=%d\n",
				s.Passes, s.VersionsCollected, s.BlobsDeleted, s.PagesReclaimed,
				s.BytesReclaimed, s.NodesDeleted, s.PinsBlocked)
			continue
		}
		if line == "stats" {
			showStats(metrics.Default.Snapshot())
			continue
		}
		if line == "top" || strings.HasPrefix(line, "top ") {
			if err := showTop(cluster, strings.Fields(line)[1:]); err != nil {
				fmt.Printf("error: %v\n", err)
			}
			continue
		}
		if line == "health" {
			showHealth(ctx, cluster)
			continue
		}
		if line == "alerts" {
			showAlerts(cluster)
			continue
		}
		if strings.HasPrefix(line, "diag") {
			if err := runDiag(cluster, strings.Fields(line)[1:]); err != nil {
				fmt.Printf("error: %v\n", err)
			}
			continue
		}
		if line == "shards" {
			// Also deployment-level: walks the version-manager ring with
			// a routed client and queries each shard directly.
			if err := showShards(ctx, cluster); err != nil {
				fmt.Printf("error: %v\n", err)
			}
			continue
		}
		if err := run(ctx, fs, line); err != nil {
			fmt.Printf("error: %v\n", err)
		}
	}
}

// showStats pretty-prints the process metrics registry: subsystem
// counters, live gauges, operation latencies, and per-method RPC
// latency quantiles for both wire sides.
func showStats(s metrics.RegistrySnapshot) {
	fmt.Printf("read:    hits=%d misses=%d readahead=%d evictions=%d fetches=%d failures=%d\n",
		s.Read.Hits, s.Read.Misses, s.Read.Readahead, s.Read.Evictions,
		s.Read.ProviderFetches, s.Read.ProviderFailures)
	fmt.Printf("gc:      passes=%d versions=%d blobs=%d pages=%d bytes=%d\n",
		s.GC.Passes, s.GC.VersionsCollected, s.GC.BlobsDeleted,
		s.GC.PagesReclaimed, s.GC.BytesReclaimed)
	fmt.Printf("shuffle: appended=%d fetched=%d recovered=%d\n",
		s.Shuffle.SegmentsAppended, s.Shuffle.SegmentsFetched, s.Shuffle.SegmentsRecovered)
	for _, k := range sortedKeys(s.Gauges) {
		fmt.Printf("gauge    %-28s %g\n", k, s.Gauges[k])
	}
	for _, k := range sortedKeys(s.Ops) {
		q := s.Ops[k]
		fmt.Printf("op       %-28s n=%-6d p50=%.3fms p99=%.3fms max=%.3fms\n",
			k, q.Count, q.P50Ms, q.P99Ms, q.MaxMs)
	}
	sides := []struct {
		name    string
		methods map[string]metrics.MethodSnapshot
	}{{"client", s.RPCClient}, {"server", s.RPCServer}}
	for _, side := range sides {
		for _, k := range sortedKeys(side.methods) {
			m := side.methods[k]
			fmt.Printf("rpc %-6s %-24s calls=%-7d errs=%-4d bytes=%-10d p50=%.3fms p99=%.3fms\n",
				side.name, k, m.Calls, m.Errors, m.Bytes, m.Latency.P50Ms, m.Latency.P99Ms)
		}
	}
}

// showTop renders the cluster monitor's snapshot: per-provider
// utilization bars, per-shard journal lag, client cache state, and the
// hot page sets. With -watch it refreshes once a second, n times
// (default 5), so rates and heat sharpen across frames.
func showTop(cluster *blobseer.Cluster, args []string) error {
	frames := 1
	if len(args) > 0 {
		if args[0] != "-watch" {
			return fmt.Errorf("usage: top [-watch [n]]")
		}
		frames = 5
		if len(args) > 1 {
			n, err := strconv.Atoi(args[1])
			if err != nil || n <= 0 {
				return fmt.Errorf("usage: top [-watch [n]]")
			}
			frames = n
		}
	}
	mon := cluster.FS.Monitor
	for frame := 0; frame < frames; frame++ {
		if frame > 0 {
			time.Sleep(time.Second)
			fmt.Println()
		}
		mon.CollectOnce()
		renderTop(mon.Snapshot(10))
	}
	return nil
}

// utilBar renders a 10-cell utilization bar.
func utilBar(u float64) string {
	filled := int(u * 10)
	if filled > 10 {
		filled = 10
	}
	if filled < 0 {
		filled = 0
	}
	return "[" + strings.Repeat("#", filled) + strings.Repeat(".", 10-filled) + "]"
}

func renderTop(snap monitor.ClusterSnapshot) {
	fmt.Printf("cluster: collections=%d imbalance=%.2f max-journal-lag=%.0f\n",
		snap.Collections, snap.ReplicaImbalance, snap.MaxJournalLag)
	for _, c := range snap.Components {
		switch c.Kind {
		case monitor.KindProvider:
			fmt.Printf("  prov %-12s %s %5.1f%%  r=%8.0f B/s w=%8.0f B/s pages=%.0f\n",
				c.Name, utilBar(c.Utilization), c.Utilization*100,
				c.Rates["read_bytes_per_sec"], c.Rates["write_bytes_per_sec"], c.Gauges["pages"])
		case monitor.KindVMShard:
			fmt.Printf("  shard %-11s blobs=%-5.0f pub/s=%-8.2f lag=%.0f journal=%.0fB\n",
				c.Name, c.Gauges["blobs"], c.Rates["published_per_sec"],
				c.Gauges["journal_pending"], c.Gauges["journal_bytes"])
		case monitor.KindNamespace:
			fmt.Printf("  ns    %-11s entries=%.0f\n", c.Name, c.Gauges["entries"])
		case monitor.KindClient:
			fmt.Printf("  mount %-11s cache=%.0fB hit/s=%-8.2f fetch/s=%.2f\n",
				c.Name, c.Gauges["cache_bytes"], c.Rates["cache_hits_per_sec"],
				c.Rates["provider_fetches_per_sec"])
		}
	}
	showHeat("hot reads", snap.HotReads)
	showHeat("hot writes", snap.HotWrites)
}

func showHeat(title string, entries []metrics.HeatEntry) {
	if len(entries) == 0 {
		return
	}
	fmt.Printf("  %s:\n", title)
	for _, e := range entries {
		fmt.Printf("    blob=%-6d page=%-8d weight=%-10.2f touches=%d\n",
			e.Blob, e.Page, e.Weight, e.Touches)
	}
}

// showHealth prints the deployment's per-component health report with
// per-check latency.
func showHealth(ctx context.Context, cluster *blobseer.Cluster) {
	rep := cluster.FS.Health(ctx)
	status := "healthy"
	if !rep.Healthy {
		status = "DEGRADED"
	}
	fmt.Printf("cluster %s\n", status)
	for _, c := range rep.Components {
		mark := "ok"
		if !c.Healthy {
			mark = "FAIL"
		}
		fmt.Printf("  %-4s %-12s %8.3fms", mark, c.Component, c.LatencyMs)
		if c.Detail != "" {
			fmt.Printf("  %s", c.Detail)
		}
		fmt.Println()
	}
}

// applyObsFlags applies -log-level and -slow-ms to the process-wide
// observability plane.
func applyObsFlags(level string, slowMs float64) error {
	if level != "" {
		lv, err := obs.ParseLevel(level)
		if err != nil {
			return err
		}
		obs.Log.SetLevel(lv)
	}
	if slowMs > 0 {
		obs.Spans.SetSlowThreshold(time.Duration(slowMs * float64(time.Millisecond)))
	}
	return nil
}

// showAlerts prints the SLO watchdog's per-rule states.
func showAlerts(cluster *blobseer.Cluster) {
	if cluster.FS.Watchdog == nil {
		fmt.Println("no watchdog armed (start with -flight <path>)")
		return
	}
	alerts := cluster.FS.Watchdog.Alerts()
	if len(alerts) == 0 {
		fmt.Println("no rules evaluated yet (watchdog runs on monitor collections; try `top` first)")
		return
	}
	for _, a := range alerts {
		fmt.Printf("  %-7s %-28s value=%-10.3f limit=%-10.3f breaches=%d fires=%d",
			strings.ToUpper(a.State), a.Rule, a.Value, a.Limit, a.Breaches, a.Fires)
		if a.Detail != "" {
			fmt.Printf("  %s", a.Detail)
		}
		fmt.Println()
	}
}

// runDiag collects the postmortem bundle into a tar.gz.
func runDiag(cluster *blobseer.Cluster, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: diag <file.tar.gz>")
	}
	src := flight.DiagSources{
		Watchdog: cluster.FS.Watchdog,
		Recorder: cluster.FS.Flight,
		Monitor:  cluster.FS.Monitor,
		Health: func() monitor.HealthReport {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			return cluster.FS.Health(ctx)
		},
	}
	members, err := flight.WriteDiagFile(args[0], src)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s\n", args[0], strings.Join(members, ", "))
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// showShards prints the metadata ring: every version-manager shard,
// the blob ids the ring assigns to it, and its version counters.
func showShards(ctx context.Context, cluster *blobseer.Cluster) error {
	bc := cluster.BlobClient("bsfsctl-shards")
	defer bc.Close()
	router := bc.VMRouter()
	for i, addr := range router.Shards() {
		var st blob.VMStatsResp
		if err := router.CallAddr(ctx, addr, blob.VMStats, nil, &st); err != nil {
			return fmt.Errorf("shard %d stats: %w", i, err)
		}
		var ls blob.ListBlobsResp
		if err := router.CallAddr(ctx, addr, blob.VMListBlobs, nil, &ls); err != nil {
			return fmt.Errorf("shard %d blobs: %w", i, err)
		}
		fmt.Printf("shard %d @ %s: blobs=%d versions=%d published=%d sealed=%d\n",
			i, addr, st.Blobs, st.Assigned, st.Published, st.Sealed)
		if len(ls.Blobs) > 0 {
			fmt.Printf("  ids: %v\n", ls.Blobs)
		}
	}
	return nil
}

// extractVer strips a "-ver N" pair from args (anywhere in the list)
// and returns the remaining args plus the requested snapshot version
// (0 = latest, the default).
func extractVer(args []string) ([]string, uint64, error) {
	out := args[:0:0]
	var ver uint64
	for i := 0; i < len(args); i++ {
		if args[i] != "-ver" {
			out = append(out, args[i])
			continue
		}
		if i+1 >= len(args) {
			return nil, 0, fmt.Errorf("-ver needs a version number")
		}
		n, err := strconv.ParseUint(args[i+1], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("-ver %q: %v", args[i+1], err)
		}
		ver = n
		i++
	}
	return out, ver, nil
}

// readAllAt reads the whole file at snapshot ver (0 = latest).
func readAllAt(ctx context.Context, fs dfs.FileSystem, path string, ver uint64) ([]byte, error) {
	if ver == 0 {
		return dfs.ReadAll(ctx, fs, path)
	}
	f, err := dfs.OpenVersion(ctx, fs, path, ver)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, f.Size())
	if _, err := io.ReadFull(f, buf); err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, err
	}
	return buf, nil
}

func run(ctx context.Context, fs dfs.FileSystem, line string) error {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	var ver uint64
	switch cmd {
	case "cat", "head", "stat":
		// Only the read commands take -ver; free-text commands (put,
		// append) must keep a literal "-ver" in their payload.
		var err error
		if args, ver, err = extractVer(args); err != nil {
			return err
		}
	}
	switch cmd {
	case "help":
		fmt.Print(usage)
	case "gen":
		if len(args) != 2 {
			return fmt.Errorf("usage: gen <path> <bytes>")
		}
		n, err := strconv.Atoi(args[1])
		if err != nil {
			return err
		}
		if err := dfs.WriteFile(ctx, fs, args[0], []byte(workload.Text(n, 42))); err != nil {
			return err
		}
		fmt.Printf("wrote ~%d bytes to %s\n", n, args[0])
	case "put":
		if len(args) < 2 {
			return fmt.Errorf("usage: put <path> <text...>")
		}
		return dfs.WriteFile(ctx, fs, args[0], []byte(strings.Join(args[1:], " ")+"\n"))
	case "append":
		if len(args) < 2 {
			return fmt.Errorf("usage: append <path> <text...>")
		}
		w, err := fs.Append(ctx, args[0])
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w, strings.Join(args[1:], " ")); err != nil {
			w.Close()
			return err
		}
		return w.Close()
	case "cat", "head":
		if len(args) < 1 {
			return fmt.Errorf("usage: %s [-ver N] <path>", cmd)
		}
		data, err := readAllAt(ctx, fs, args[0], ver)
		if err != nil {
			return err
		}
		if cmd == "head" && len(args) == 2 {
			n, err := strconv.Atoi(args[1])
			if err != nil {
				return err
			}
			if n < len(data) {
				data = data[:n]
			}
		}
		os.Stdout.Write(data)
		if len(data) > 0 && data[len(data)-1] != '\n' {
			fmt.Println()
		}
	case "stat":
		if len(args) < 1 {
			return fmt.Errorf("usage: stat [-ver N] <path>")
		}
		if ver != 0 {
			infos, err := dfs.Versions(ctx, fs, args[0])
			if err != nil {
				return err
			}
			for _, vi := range infos {
				if vi.Version == ver {
					fmt.Printf("%s@%d: size=%d blocks=%d\n", args[0], ver, vi.Size, vi.Blocks)
					return nil
				}
			}
			return fmt.Errorf("%s: version %d not retained", args[0], ver)
		}
		fi, err := fs.Stat(ctx, args[0])
		if err != nil {
			return err
		}
		fmt.Printf("%s: dir=%v size=%d blocks=%d version=%d\n", fi.Path, fi.IsDir, fi.Size, fi.Blocks, fi.Version)
	case "versions":
		if len(args) < 1 {
			return fmt.Errorf("usage: versions <path>")
		}
		infos, err := dfs.Versions(ctx, fs, args[0])
		if err != nil {
			return err
		}
		for _, vi := range infos {
			fmt.Printf("  v%-6d size=%-10d blocks=%d\n", vi.Version, vi.Size, vi.Blocks)
		}
	case "ls":
		dir := "/"
		if len(args) > 0 {
			dir = args[0]
		}
		infos, err := fs.List(ctx, dir)
		if err != nil {
			return err
		}
		for _, fi := range infos {
			kind := "f"
			if fi.IsDir {
				kind = "d"
			}
			fmt.Printf("%s %10d  %s\n", kind, fi.Size, fi.Path)
		}
	case "mkdir":
		return fs.Mkdir(ctx, args[0])
	case "mv":
		if len(args) != 2 {
			return fmt.Errorf("usage: mv <src> <dst>")
		}
		return fs.Rename(ctx, args[0], args[1])
	case "rm":
		return fs.Delete(ctx, args[0])
	case "locate":
		fi, err := fs.Stat(ctx, args[0])
		if err != nil {
			return err
		}
		locs, err := fs.BlockLocations(ctx, args[0], 0, fi.Size)
		if err != nil {
			return err
		}
		for _, l := range locs {
			fmt.Printf("  [%d..%d) -> %v\n", l.Offset, l.Offset+l.Length, l.Hosts)
		}
	case "entries":
		n, err := fs.MetadataEntries(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("namespace entries: %d\n", n)
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
