// Command mrrun executes a Map/Reduce job on an embedded deployment:
// choose the storage backend (bsfs or hdfs), the output mode
// (shared-append — the paper's modified framework — or separate
// files), the application and the scale, and it prints the job report.
//
//	go run ./cmd/mrrun -app wordcount -fs bsfs -mode shared -reducers 8
//	go run ./cmd/mrrun -app datajoin -fs hdfs -mode separate
//	go run ./cmd/mrrun -app datajoin -fs hdfs -mode shared   # fails: no append
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"blobseer"
	"blobseer/internal/apps/datajoin"
	"blobseer/internal/apps/grep"
	"blobseer/internal/apps/wordcount"
	"blobseer/internal/dfs"
	"blobseer/internal/hdfs"
	"blobseer/internal/mapreduce"
	"blobseer/internal/obs"
	"blobseer/internal/obshttp"
	"blobseer/internal/shuffle"
	"blobseer/internal/transport"
	"blobseer/internal/workload"
)

func main() {
	var (
		app      = flag.String("app", "wordcount", "application: wordcount, datajoin, grep")
		fsName   = flag.String("fs", "bsfs", "storage backend: bsfs or hdfs")
		mode     = flag.String("mode", "shared", "output mode: shared (append) or separate")
		reducers = flag.Int("reducers", 4, "number of reducers")
		nodes    = flag.Int("nodes", 8, "storage/tasktracker nodes")
		sizeKB   = flag.Int("size", 256, "input size in KiB")
		pattern  = flag.String("pattern", "data", "grep pattern")
		block    = flag.Int("block", 32, "block size in KiB")
		depth    = flag.Int("depth", 0, "BSFS writer pipeline depth (0 = default, 1 = synchronous)")
		rdepth   = flag.Int("readdepth", 0, "BSFS reader readahead depth (0 = default, negative = off)")
		cachemb  = flag.Int("cachemb", 0, "BSFS page cache budget in MiB per mount (0 = default, negative = off)")
		shuffleB = flag.String("shuffle", "memory", "shuffle backend: memory (in-tracker RPC store) or blob (durable concurrent appends, bsfs only)")
		retain   = flag.Uint64("retain", 0, "BSFS default RetainLatest GC policy (0 = keep every version)")
		gcIntv   = flag.Duration("gc-interval", 0, "BSFS periodic GC pass cadence (0 = kick-driven only)")
		keepInt  = flag.Bool("keep-intermediate", false, "keep the blob shuffle backend's intermediate BLOBs after the job (default: retired through GC)")
		vmShards = flag.Int("vm-shards", 1, "BSFS version-manager shards (metadata plane partitions)")
		mAddr    = flag.String("metrics-addr", "", "serve /metrics, /metrics.json, /healthz and /spans on this address while the job runs")
		logLevel = flag.String("log-level", "", "obs log level: debug|info|warn|error (default warn)")
		slowMs   = flag.Float64("slow-ms", 0, "slow-span threshold in ms for warn logging (0 = off)")
	)
	flag.Parse()
	if *logLevel != "" {
		lv, err := obs.ParseLevel(*logLevel)
		if err != nil {
			fatal(err)
		}
		obs.Log.SetLevel(lv)
	}
	if *slowMs > 0 {
		obs.Spans.SetSlowThreshold(time.Duration(*slowMs * float64(time.Millisecond)))
	}
	ctx := context.Background()

	if *mAddr != "" {
		ms, err := obshttp.ServeMetrics(*mAddr, nil)
		if err != nil {
			fatal(err)
		}
		defer ms.Close()
		fmt.Printf("[metrics endpoint on http://%s/metrics]\n", ms.Addr())
	}

	outputMode := mapreduce.SharedAppend
	if *mode == "separate" {
		outputMode = mapreduce.SeparateFiles
	}
	shuffleBackend, err := shuffle.ParseBackend(*shuffleB)
	if err != nil {
		fatal(err)
	}

	fw, cleanup, err := buildFramework(*fsName, *nodes, uint64(*block)<<10, *depth, *rdepth, blobseer.CacheMiB(*cachemb), *retain, *gcIntv, *vmShards)
	if err != nil {
		fatal(err)
	}
	defer cleanup()
	fs := fw.ClientFS()

	var job mapreduce.JobConf
	switch *app {
	case "wordcount":
		text := workload.Text(*sizeKB<<10, 1)
		must(dfs.WriteFile(ctx, fs, "/in/corpus", []byte(text)))
		job = wordcount.Job([]string{"/in/corpus"}, "/out", *reducers, outputMode)
	case "grep":
		text := workload.Text(*sizeKB<<10, 1)
		must(dfs.WriteFile(ctx, fs, "/in/corpus", []byte(text)))
		job = grep.Job([]string{"/in/corpus"}, "/out", *pattern, *reducers, outputMode)
	case "datajoin":
		keys := (*sizeKB << 10) / 45 / 8
		if keys < 8 {
			keys = 8
		}
		a, b := workload.JoinInputs(workload.JoinConfig{Keys: keys, Seed: 1})
		must(dfs.WriteFile(ctx, fs, "/in/a", []byte(a)))
		must(dfs.WriteFile(ctx, fs, "/in/b", []byte(b)))
		job = datajoin.Job("/in/a", "/in/b", "/out", *reducers, outputMode)
	default:
		fatal(fmt.Errorf("unknown app %q", *app))
	}
	job.Shuffle = shuffleBackend
	job.KeepIntermediate = *keepInt

	res, err := fw.Run(ctx, job)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("job %q on %s (%s):\n", job.Name, *fsName, outputMode)
	fmt.Printf("  duration            %v (map %v, reduce %v)\n",
		res.Duration.Round(1e6), res.MapPhase.Round(1e6), res.ReducePhase.Round(1e6))
	fmt.Printf("  map tasks           %d (%d data-local)\n", res.MapTasks, res.LocalMaps)
	fmt.Printf("  reduce tasks        %d\n", res.ReduceTasks)
	fmt.Printf("  records             in=%d intermediate=%d out=%d\n",
		res.MapInputRecords, res.MapOutputRecords, res.ReduceOutputRecords)
	fmt.Printf("  shuffle bytes       %d (backend %s)\n", res.ShuffleBytes, shuffleBackend)
	if shuffleBackend == shuffle.Blob {
		fmt.Printf("  shuffle segments    appended=%d fetched=%d recovered=%d\n",
			res.SegmentsAppended, res.SegmentsFetched, res.SegmentsRecovered)
		if res.FirstShuffleFetch > 0 {
			fmt.Printf("  first segment fetch %v into the %v map phase\n",
				res.FirstShuffleFetch.Round(1e6), res.MapPhase.Round(1e6))
		}
	}
	if res.MapOutputsLost > 0 {
		fmt.Printf("  map outputs lost    %d (re-executed)\n", res.MapOutputsLost)
	}
	fmt.Printf("  output bytes        %d\n", res.OutputBytes)
	fmt.Printf("  output files        %d\n", len(res.OutputFiles))
	for _, p := range res.OutputFiles {
		fmt.Printf("    %s\n", p)
	}
	entries, err := fs.MetadataEntries(ctx)
	if err == nil {
		fmt.Printf("  metadata entries    %d\n", entries)
	}
}

func buildFramework(fsName string, nodes int, block uint64, depth, rdepth int, cacheBytes int64, retain uint64, gcInterval time.Duration, vmShards int) (*mapreduce.Framework, func(), error) {
	switch fsName {
	case "bsfs":
		cluster, err := blobseer.NewCluster(blobseer.Options{
			Providers: nodes, MetaProviders: 3, BlockSize: block,
			WriteDepth: depth, ReadDepth: rdepth, CacheBytes: cacheBytes,
			Retain: retain, GCInterval: gcInterval, VMShards: vmShards,
		})
		if err != nil {
			return nil, nil, err
		}
		fw, err := cluster.NewFramework()
		if err != nil {
			cluster.Close()
			return nil, nil, err
		}
		return fw, func() { fw.Close(); cluster.Close() }, nil
	case "hdfs":
		net := transport.NewMemNet()
		cluster, err := hdfs.NewCluster(net, hdfs.ClusterConfig{Datanodes: nodes})
		if err != nil {
			return nil, nil, err
		}
		fw, err := mapreduce.NewFramework(mapreduce.FrameworkConfig{
			Net:   net,
			Hosts: cluster.DatanodeHosts(),
			Mount: func(host string) dfs.FileSystem { return cluster.Mount(host, block) },
		})
		if err != nil {
			cluster.Close()
			return nil, nil, err
		}
		return fw, func() { fw.Close(); cluster.Close() }, nil
	default:
		return nil, nil, fmt.Errorf("unknown fs %q", fsName)
	}
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mrrun:", err)
	os.Exit(1)
}
