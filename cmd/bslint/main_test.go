package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBslint compiles the command once into the test's temp dir.
func buildBslint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "bslint")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestBslintSmoke: the suite must load, type-check a trivial package
// (one importing only stdlib), and exit 0 with no findings.
func TestBslintSmoke(t *testing.T) {
	bin := buildBslint(t)

	out, err := exec.Command(bin, "./internal/analysis/testdata/clockless").CombinedOutput()
	if err != nil {
		t.Fatalf("bslint over a clean package failed: %v\n%s", err, out)
	}
	if len(out) != 0 {
		t.Errorf("expected no output over a clean package, got:\n%s", out)
	}
}

// TestBslintList: -list names every analyzer in the suite.
func TestBslintList(t *testing.T) {
	bin := buildBslint(t)

	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("bslint -list: %v\n%s", err, out)
	}
	for _, name := range []string{"ctxflow", "droppederr", "lockhold", "spanend", "walltime"} {
		if !strings.Contains(string(out), name) {
			t.Errorf("-list output missing %q:\n%s", name, out)
		}
	}
}

// TestBslintFindsViolations: a fixture with known violations must
// produce findings and exit 1 — the CI gate actually gates.
func TestBslintFindsViolations(t *testing.T) {
	bin := buildBslint(t)

	cmd := exec.Command(bin, "-only", "walltime", "./internal/analysis/testdata/walltime")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("expected exit 1 over a violating fixture, got success:\n%s", out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("expected exit code 1, got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "direct time.Now") {
		t.Errorf("findings output missing the walltime diagnostic:\n%s", out)
	}
}
