// Command bslint runs the project's static-analysis suite
// (internal/analysis) over package patterns and fails on any
// violation — the machine check for the concurrency and hygiene
// invariants this codebase's correctness story rests on.
//
// Usage:
//
//	bslint [-only name[,name]] [-list] [pattern ...]
//
// Patterns default to ./... relative to the enclosing module. Typical
// invocations:
//
//	go run ./cmd/bslint ./...          # whole tree, the CI gate
//	bslint ./internal/monitor          # one package while iterating
//	bslint -only lockhold,spanend ./...
//
// Exit status: 0 clean, 1 findings reported, 2 usage or load failure.
// Every finding prints as file:line:col: message (analyzer), so
// editors and CI annotate it like any vet diagnostic. Exceptions are
// per-line `//lint:<analyzer> <reason>` markers in the source — see
// the package documentation of internal/analysis.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"blobseer/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer subset to run")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bslint [-list] [-only name,...] [pattern ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := analysis.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "bslint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bslint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(cwd, patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bslint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s\n", relativize(cwd, d))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "bslint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// relativize trims the working directory off diagnostic paths so CI
// logs and editors get repo-relative locations.
func relativize(cwd string, d analysis.Diagnostic) string {
	s := d.String()
	return strings.TrimPrefix(s, cwd+string(os.PathSeparator))
}
