package blobseer

// One benchmark per table/figure of the paper's evaluation, exercising
// the exact workload shape at reduced scale on the unshaped in-process
// transport, so testing.B numbers reflect implementation cost (CPU,
// allocations, synchronization), not modeled wire time. The shaped,
// full-scale figure regeneration lives in cmd/experiments; measured
// curves are recorded in EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"blobseer/internal/apps/datajoin"
	"blobseer/internal/apps/wordcount"
	"blobseer/internal/dfs"
	"blobseer/internal/hdfs"
	"blobseer/internal/mapreduce"
	"blobseer/internal/shuffle"
	"blobseer/internal/simnet"
	"blobseer/internal/transport"
	"blobseer/internal/workload"
)

var benchCtx = context.Background()

const benchBlock = 64 << 10

// newBenchCluster builds a small embedded deployment. The page cache
// is disabled so the read-heavy benchmarks keep measuring the provider
// read path (their historical meaning) instead of warm-cache hits;
// the cache's own effect is measured by BenchmarkReadDepthSweep.
func newBenchCluster(b *testing.B) *Cluster {
	b.Helper()
	c, err := NewCluster(Options{Providers: 8, MetaProviders: 3, BlockSize: benchBlock, CacheBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

// benchChunk is one block-sized append payload.
func benchChunk(tag byte) []byte {
	buf := make([]byte, benchBlock)
	for i := range buf {
		buf[i] = byte(int(tag) + i*7)
	}
	return buf
}

// BenchmarkSingleAppend measures the raw append pipeline: one client,
// one chunk per operation (the N=1 point of Figure 3).
func BenchmarkSingleAppend(b *testing.B) {
	c := newBenchCluster(b)
	fs := c.Mount("node-000")
	defer fs.Close()
	w, err := fs.Append(benchCtx, "/bench/single")
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	data := benchChunk(1)
	b.SetBytes(benchBlock)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Write(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3ConcurrentAppends is the Figure 3 workload: 16 clients
// appending chunks to one shared file concurrently.
func BenchmarkFig3ConcurrentAppends(b *testing.B) {
	const clients = 16
	c := newBenchCluster(b)
	setup := c.Mount("node-000")
	defer setup.Close()
	if err := dfs.WriteFile(benchCtx, setup, "/bench/fig3", nil); err != nil {
		b.Fatal(err)
	}
	writers := make([]dfs.FileWriter, clients)
	for i := range writers {
		fs := c.Mount(fmt.Sprintf("node-%03d", i%8))
		defer fs.Close()
		w, err := fs.Append(benchCtx, "/bench/fig3")
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		writers[i] = w
	}
	data := benchChunk(3)
	b.SetBytes(clients * benchBlock)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for _, w := range writers {
			wg.Add(1)
			go func(w dfs.FileWriter) {
				defer wg.Done()
				if _, err := w.Write(data); err != nil {
					b.Error(err)
				}
			}(w)
		}
		wg.Wait()
	}
}

// preloadShared writes chunks into a file for the mixed benchmarks.
func preloadShared(b *testing.B, fs dfs.FileSystem, path string, chunks int) {
	b.Helper()
	w, err := fs.Create(benchCtx, path)
	if err != nil {
		b.Fatal(err)
	}
	data := benchChunk(7)
	for i := 0; i < chunks; i++ {
		if _, err := w.Write(data); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig4ReadsUnderAppends is the Figure 4 workload: readers on
// disjoint regions while appenders extend the same file; the metric is
// read bytes/second.
func BenchmarkFig4ReadsUnderAppends(b *testing.B) {
	const readers, appenders, chunksEach = 4, 4, 4
	c := newBenchCluster(b)
	fs := c.Mount("node-000")
	defer fs.Close()
	preloadShared(b, fs, "/bench/fig4", readers*chunksEach)

	appendWriters := make([]dfs.FileWriter, appenders)
	for i := range appendWriters {
		afs := c.Mount(fmt.Sprintf("node-%03d", i%8))
		defer afs.Close()
		w, err := afs.Append(benchCtx, "/bench/fig4")
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		appendWriters[i] = w
	}
	data := benchChunk(9)

	b.SetBytes(readers * chunksEach * benchBlock) // read bytes per iteration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for _, w := range appendWriters {
			wg.Add(1)
			go func(w dfs.FileWriter) {
				defer wg.Done()
				for k := 0; k < chunksEach; k++ {
					if _, err := w.Write(data); err != nil {
						b.Error(err)
					}
				}
			}(w)
		}
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				f, err := fs.Open(benchCtx, "/bench/fig4")
				if err != nil {
					b.Error(err)
					return
				}
				defer f.Close()
				buf := make([]byte, benchBlock)
				for k := 0; k < chunksEach; k++ {
					off := int64((r*chunksEach + k) * benchBlock)
					if _, err := f.ReadAt(buf, off); err != nil {
						b.Error(err)
						return
					}
				}
			}(r)
		}
		wg.Wait()
	}
}

// BenchmarkFig5AppendsUnderReads mirrors Figure 5: the metric is
// append bytes/second while readers run.
func BenchmarkFig5AppendsUnderReads(b *testing.B) {
	const readers, appenders, chunksEach = 4, 4, 4
	c := newBenchCluster(b)
	fs := c.Mount("node-000")
	defer fs.Close()
	preloadShared(b, fs, "/bench/fig5", readers*chunksEach)

	appendWriters := make([]dfs.FileWriter, appenders)
	for i := range appendWriters {
		afs := c.Mount(fmt.Sprintf("node-%03d", i%8))
		defer afs.Close()
		w, err := afs.Append(benchCtx, "/bench/fig5")
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		appendWriters[i] = w
	}
	data := benchChunk(11)

	b.SetBytes(appenders * chunksEach * benchBlock) // appended bytes per iteration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				f, err := fs.Open(benchCtx, "/bench/fig5")
				if err != nil {
					b.Error(err)
					return
				}
				defer f.Close()
				buf := make([]byte, benchBlock)
				for k := 0; k < chunksEach; k++ {
					off := int64((r*chunksEach + k) * benchBlock)
					if _, err := f.ReadAt(buf, off); err != nil {
						b.Error(err)
						return
					}
				}
			}(r)
		}
		for _, w := range appendWriters {
			wg.Add(1)
			go func(w dfs.FileWriter) {
				defer wg.Done()
				for k := 0; k < chunksEach; k++ {
					if _, err := w.Write(data); err != nil {
						b.Error(err)
					}
				}
			}(w)
		}
		wg.Wait()
	}
}

// fig6Inputs builds a small Last.fm-shaped join input pair.
func fig6Inputs() (string, string) {
	return workload.JoinInputs(workload.JoinConfig{Keys: 150, DupA: 3, DupB: 3, Seed: 42})
}

// BenchmarkFig6DataJoinBSFS runs the data-join job of Figure 6 on the
// modified framework (all reducers appending to one shared file).
func BenchmarkFig6DataJoinBSFS(b *testing.B) {
	c := newBenchCluster(b)
	fw, err := c.NewFramework()
	if err != nil {
		b.Fatal(err)
	}
	defer fw.Close()
	a, bb := fig6Inputs()
	if err := dfs.WriteFile(benchCtx, fw.ClientFS(), "/in/a", []byte(a)); err != nil {
		b.Fatal(err)
	}
	if err := dfs.WriteFile(benchCtx, fw.ClientFS(), "/in/b", []byte(bb)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := datajoin.Job("/in/a", "/in/b", fmt.Sprintf("/out/%d", i), 4, mapreduce.SharedAppend)
		res, err := fw.Run(benchCtx, job)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.OutputFiles) != 1 {
			b.Fatalf("output files = %d", len(res.OutputFiles))
		}
	}
}

// BenchmarkFig6DataJoinHDFS is the original-framework baseline of
// Figure 6 (one part file per reducer, temp + rename commit).
func BenchmarkFig6DataJoinHDFS(b *testing.B) {
	net := transport.NewMemNet()
	cluster, err := hdfs.NewCluster(net, hdfs.ClusterConfig{Datanodes: 8})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	fw, err := mapreduce.NewFramework(mapreduce.FrameworkConfig{
		Net:   net,
		Hosts: cluster.DatanodeHosts(),
		Mount: func(host string) dfs.FileSystem { return cluster.Mount(host, benchBlock) },
	})
	if err != nil {
		b.Fatal(err)
	}
	defer fw.Close()
	a, bb := fig6Inputs()
	if err := dfs.WriteFile(benchCtx, fw.ClientFS(), "/in/a", []byte(a)); err != nil {
		b.Fatal(err)
	}
	if err := dfs.WriteFile(benchCtx, fw.ClientFS(), "/in/b", []byte(bb)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := datajoin.Job("/in/a", "/in/b", fmt.Sprintf("/out/%d", i), 4, mapreduce.SeparateFiles)
		res, err := fw.Run(benchCtx, job)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.OutputFiles) != 4 {
			b.Fatalf("output files = %d", len(res.OutputFiles))
		}
	}
}

// BenchmarkExtPipeline runs the §5 future-work scenario: a two-stage
// pipeline whose second stage streams the first stage's growing output.
func BenchmarkExtPipeline(b *testing.B) {
	c := newBenchCluster(b)
	fw, err := c.NewFramework()
	if err != nil {
		b.Fatal(err)
	}
	defer fw.Close()
	a, bb := fig6Inputs()
	if err := dfs.WriteFile(benchCtx, fw.ClientFS(), "/in/a", []byte(a)); err != nil {
		b.Fatal(err)
	}
	if err := dfs.WriteFile(benchCtx, fw.ClientFS(), "/in/b", []byte(bb)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s1 := datajoin.Job("/in/a", "/in/b", fmt.Sprintf("/s1/%d", i), 2, mapreduce.SharedAppend)
		s2 := mapreduce.JobConf{
			Name:        "identity",
			OutputDir:   fmt.Sprintf("/s2/%d", i),
			Map:         func(k, v string, emit func(k, v string)) { emit(v, "1") },
			Reduce:      func(k string, vs []string, emit func(k, v string)) { emit(k, "1") },
			NumReducers: 2,
			OutputMode:  mapreduce.SharedAppend,
		}
		if _, err := fw.RunPipeline(benchCtx, []mapreduce.JobConf{s1, s2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShuffleBackends runs the same wordcount job under both
// shuffle backends: memory (in-tracker RPC store, reduces gated on the
// map barrier) and blob (map outputs as concurrent appends to shared
// per-partition intermediate BLOBs, reduces fetching as maps publish).
// Beyond ns/op, each run reports:
//
//   - overlap-ms — map-phase end minus first shuffle fetch. Positive
//     for the blob backend (the first segment is fetched before the
//     last map finishes: shuffle overlaps the map phase); ~zero for
//     the memory backend, whose reducers start at the barrier.
//   - reruns — map outputs lost to tracker death (none injected here,
//     so 0 for both; the failure comparison lives in the experiments
//     "shuffle" scenario and the fault-tolerance tests).
func BenchmarkShuffleBackends(b *testing.B) {
	for _, backend := range []shuffle.Backend{shuffle.Memory, shuffle.Blob} {
		b.Run(backend.String(), func(b *testing.B) {
			c := newBenchCluster(b)
			fw, err := c.NewFramework()
			if err != nil {
				b.Fatal(err)
			}
			defer fw.Close()
			// ~24 block-sized splits over 16 map slots: a multi-wave
			// map phase, stretched by modeled per-record cost so the
			// overlap window is visible.
			text := workload.Text(24*benchBlock, 21)
			if err := dfs.WriteFile(benchCtx, fw.ClientFS(), "/in/corpus", []byte(text)); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(text)))
			b.ReportAllocs()
			b.ResetTimer()
			var overlap time.Duration
			var reruns int
			for i := 0; i < b.N; i++ {
				job := wordcount.Job([]string{"/in/corpus"}, fmt.Sprintf("/out/%d", i), 4, mapreduce.SeparateFiles)
				job.Shuffle = backend
				job.MapCostPerRecord = 5 * time.Microsecond
				res, err := fw.Run(benchCtx, job)
				if err != nil {
					b.Fatal(err)
				}
				if res.FirstShuffleFetch > 0 {
					overlap += res.MapPhase - res.FirstShuffleFetch
				}
				reruns += res.MapOutputsLost
			}
			b.StopTimer()
			b.ReportMetric(float64(overlap.Milliseconds())/float64(b.N), "overlap-ms")
			b.ReportMetric(float64(reruns)/float64(b.N), "reruns")
		})
	}
}

// BenchmarkAblationLockedAppend measures the Abl 1 baseline: 16
// appenders serialized by a global lock (a lease-style design).
// Compare with BenchmarkFig3ConcurrentAppends.
func BenchmarkAblationLockedAppend(b *testing.B) {
	const clients = 16
	c := newBenchCluster(b)
	setup := c.Mount("node-000")
	defer setup.Close()
	if err := dfs.WriteFile(benchCtx, setup, "/bench/locked", nil); err != nil {
		b.Fatal(err)
	}
	writers := make([]dfs.FileWriter, clients)
	for i := range writers {
		fs := c.Mount(fmt.Sprintf("node-%03d", i%8))
		defer fs.Close()
		w, err := fs.Append(benchCtx, "/bench/locked")
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		writers[i] = w
	}
	data := benchChunk(13)
	var gate sync.Mutex
	b.SetBytes(clients * benchBlock)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for _, w := range writers {
			wg.Add(1)
			go func(w dfs.FileWriter) {
				defer wg.Done()
				gate.Lock()
				defer gate.Unlock()
				if _, err := w.Write(data); err != nil {
					b.Error(err)
				}
			}(w)
		}
		wg.Wait()
	}
}

// BenchmarkWriteDepthSweep measures multi-block file-write throughput
// as a function of the writer pipeline depth: depth=1 is the
// synchronous pre-pipelining writer (each block's data path completes
// before the next begins), larger depths keep that many blocks in
// flight behind one serialized version-assignment stream.
//
// BLOBSEER_BENCH_FLIGHT=1 runs the same sweep with a flight recorder
// and armed SLO watchdog on the deployment — the paired A/B for the
// recorder's overhead budget on an untraced workload (the tail
// sampler's span hook never fires when nothing is traced, so the two
// arms should be within noise of each other).
func BenchmarkWriteDepthSweep(b *testing.B) {
	const blocks = 16
	flightPath := ""
	if os.Getenv("BLOBSEER_BENCH_FLIGHT") == "1" {
		flightPath = filepath.Join(b.TempDir(), "flight.log")
	}
	for _, depth := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			c, err := NewCluster(Options{
				Providers: 8, MetaProviders: 3, BlockSize: benchBlock, WriteDepth: depth,
				FlightPath: flightPath,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			fs := c.Mount("node-000")
			defer fs.Close()
			data := benchChunk(5)
			b.SetBytes(blocks * benchBlock)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w, err := fs.Create(benchCtx, fmt.Sprintf("/bench/depth%d/%d", depth, i))
				if err != nil {
					b.Fatal(err)
				}
				for k := 0; k < blocks; k++ {
					if _, err := w.Write(data); err != nil {
						b.Fatal(err)
					}
				}
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReadDepthSweep measures full-file sequential-scan
// throughput as a function of the reader readahead depth: depth 0 is
// the synchronous reader (each block's transfer completes before the
// next begins), larger depths keep that many block fetches in flight
// ahead of the reader through the shared page cache. Readahead earns
// its keep by hiding per-fetch network latency, which the unshaped
// in-process transport does not model — so this sweep (alone in this
// file) runs on a latency/bandwidth-shaped transport, like the figure
// experiments. The cache budget is held at half the file so iterations
// re-fetch from providers instead of replaying the previous scan from
// memory.
func BenchmarkReadDepthSweep(b *testing.B) {
	const blocks = 16
	for _, depth := range []int{-1, 1, 4} { // -1 = readahead off
		label := depth
		if label < 0 {
			label = 0
		}
		b.Run(fmt.Sprintf("readdepth=%d", label), func(b *testing.B) {
			// Latency-dominated profile: the round trip (2 ms) is what
			// readahead can hide, while the wire time of a block
			// (~60 us at 1 GiB/s) keeps the shared client NIC from
			// becoming the serial floor.
			net := simnet.New(transport.NewMemNet(), simnet.Config{
				Bandwidth:     1 << 30,
				Latency:       time.Millisecond,
				FrameOverhead: 64,
			})
			c, err := NewCluster(Options{
				Providers: 8, MetaProviders: 3, BlockSize: benchBlock,
				Net:        net,
				ReadDepth:  depth,
				CacheBytes: blocks / 2 * benchBlock,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			fs := c.Mount("node-000")
			defer fs.Close()
			preloadShared(b, fs, "/bench/readdepth", blocks)
			buf := make([]byte, benchBlock)
			b.SetBytes(blocks * benchBlock)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, err := fs.Open(benchCtx, "/bench/readdepth")
				if err != nil {
					b.Fatal(err)
				}
				var total int
				for {
					n, err := f.Read(buf)
					total += n
					if err != nil {
						break
					}
				}
				if total != blocks*benchBlock {
					b.Fatalf("scanned %d bytes, want %d", total, blocks*benchBlock)
				}
				f.Close()
			}
		})
	}
}

// BenchmarkMetadataCommit isolates the metadata path: appends of one
// tiny page each, so version assignment + segment-tree commit dominate.
func BenchmarkMetadataCommit(b *testing.B) {
	c, err := NewCluster(Options{Providers: 4, MetaProviders: 3, BlockSize: 256})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	bc := c.BlobClient("node-000")
	defer bc.Close()
	bl, err := bc.Create(benchCtx, 256)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bl.Append(benchCtx, data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVersionedRead measures random single-chunk reads from a
// BLOB with a deep version history (the reader-side cost of
// versioning).
func BenchmarkVersionedRead(b *testing.B) {
	c := newBenchCluster(b)
	fs := c.Mount("node-001")
	defer fs.Close()
	const chunks = 64
	preloadShared(b, fs, "/bench/read", chunks)
	f, err := fs.Open(benchCtx, "/bench/read")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, benchBlock)
	b.SetBytes(benchBlock)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64((i % chunks) * benchBlock)
		if _, err := f.ReadAt(buf, off); err != nil {
			b.Fatal(err)
		}
	}
}

// TestClusterFacade keeps the root package tested, not just benched.
func TestClusterFacade(t *testing.T) {
	c, err := NewCluster(Options{Providers: 4, MetaProviders: 2, BlockSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs := c.Mount("node-000")
	defer fs.Close()
	if err := dfs.WriteFile(benchCtx, fs, "/hello", []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, err := dfs.ReadAll(benchCtx, fs, "/hello")
	if err != nil || string(got) != "world" {
		t.Fatalf("read = %q, %v", got, err)
	}
	fw, err := c.NewFramework()
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()
	start := time.Now()
	if err := dfs.WriteFile(benchCtx, fw.ClientFS(), "/in/t", []byte("a b a\n")); err != nil {
		t.Fatal(err)
	}
	res, err := fw.Run(benchCtx, mapreduce.JobConf{
		Name:        "probe",
		Input:       []string{"/in/t"},
		OutputDir:   "/out",
		Map:         func(k, v string, emit func(k, v string)) { emit(v, "1") },
		Reduce:      func(k string, vs []string, emit func(k, v string)) { emit(k, "1") },
		NumReducers: 1,
		OutputMode:  mapreduce.SharedAppend,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OutputFiles) != 1 || time.Since(start) > time.Minute {
		t.Fatalf("res = %+v", res)
	}
}

// BenchmarkGCReclaim measures one garbage-collection cycle under a
// checkpoint-style workload: 4 writers overwrite their regions of a
// shared BLOB (creating one full working set of shadowed garbage),
// then the collector scans, diffs reachability, deletes provider
// pages, and removes dead metadata nodes. Reported per reclaim cycle.
func BenchmarkGCReclaim(b *testing.B) {
	c := newBenchCluster(b)
	cl := c.BlobClient("node-000")
	b.Cleanup(func() { cl.Close() })
	bl, err := cl.Create(benchCtx, benchBlock)
	if err != nil {
		b.Fatal(err)
	}
	if err := bl.SetRetention(benchCtx, 2); err != nil {
		b.Fatal(err)
	}
	const writers = 4
	region := benchChunk(1) // one block per writer region
	gcol := c.FS.GC

	write := func(round int) {
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if _, err := bl.WriteAt(benchCtx, region, uint64(w)*benchBlock); err != nil {
					b.Error(err)
				}
			}(w)
		}
		wg.Wait()
	}
	write(0) // seed the working set
	if _, err := gcol.RunOnce(benchCtx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		write(i + 1)
		rep, err := gcol.RunOnce(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		if rep.VersionsCollected == 0 {
			b.Fatal("reclaim cycle collected nothing")
		}
	}
	b.StopTimer()
	if bytes := c.Blob.ProviderBytes(); bytes > int64(3*writers*benchBlock) {
		b.Fatalf("storage unbounded under GC: %d bytes", bytes)
	}
}
