// Wordcount on the modified framework: all reducers append their
// counts to a single shared output file, which is then verified
// against an in-memory reference count.
//
//	go run ./examples/wordcount
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"

	"blobseer"
	"blobseer/internal/apps/wordcount"
	"blobseer/internal/dfs"
	"blobseer/internal/mapreduce"
	"blobseer/internal/workload"
)

func main() {
	ctx := context.Background()
	cluster, err := blobseer.NewCluster(blobseer.Options{
		Providers: 8, MetaProviders: 3, BlockSize: 16 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fw, err := cluster.NewFramework()
	if err != nil {
		log.Fatal(err)
	}
	defer fw.Close()

	text := workload.Text(200<<10, 3)
	fs := fw.ClientFS()
	if err := dfs.WriteFile(ctx, fs, "/in/corpus", []byte(text)); err != nil {
		log.Fatal(err)
	}

	res, err := fw.Run(ctx, wordcount.Job([]string{"/in/corpus"}, "/out", 4, mapreduce.SharedAppend))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job: %d maps (%d data-local), %d reducers, %v\n",
		res.MapTasks, res.LocalMaps, res.ReduceTasks, res.Duration.Round(1e6))
	fmt.Printf("output: %d file(s): %v\n", len(res.OutputFiles), res.OutputFiles)

	// Verify against the reference and print the top words.
	data, err := dfs.ReadAll(ctx, fs, res.OutputFiles[0])
	if err != nil {
		log.Fatal(err)
	}
	got := map[string]int{}
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		w, c, _ := strings.Cut(line, "\t")
		n, _ := strconv.Atoi(c)
		got[w] = n
	}
	want := wordcount.ReferenceCount(text)
	for w, n := range want {
		if got[w] != n {
			log.Fatalf("count[%q] = %d, want %d", w, got[w], n)
		}
	}
	fmt.Printf("verified %d distinct words against the reference\n\n", len(want))

	type wc struct {
		w string
		n int
	}
	var top []wc
	for w, n := range got {
		top = append(top, wc{w, n})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].n > top[j].n })
	fmt.Println("top 10 words:")
	for _, e := range top[:10] {
		fmt.Printf("  %-12s %6d\n", e.w, e.n)
	}
}
