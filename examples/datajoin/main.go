// Datajoin: the paper's §4.3 evaluation application end-to-end — the
// same join job runs on the original framework layout (HDFS-style, one
// part file per reducer) and on the modified framework (BSFS, all
// reducers appending to a single shared file), then the outputs are
// verified to be identical multisets and the file counts compared.
//
//	go run ./examples/datajoin
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"blobseer"
	"blobseer/internal/apps/datajoin"
	"blobseer/internal/dfs"
	"blobseer/internal/hdfs"
	"blobseer/internal/mapreduce"
	"blobseer/internal/transport"
	"blobseer/internal/workload"
)

const reducers = 6

func main() {
	ctx := context.Background()
	contentA, contentB := workload.JoinInputs(workload.JoinConfig{Keys: 300, DupA: 4, DupB: 4, Seed: 7})
	want := datajoin.ReferenceJoin(contentA, contentB)
	fmt.Printf("inputs: %d + %d bytes; expected join rows: %d\n",
		len(contentA), len(contentB), count(want))

	bsfsRows, bsfsFiles := runBSFS(ctx, contentA, contentB)
	hdfsRows, hdfsFiles := runHDFS(ctx, contentA, contentB)

	for _, r := range []struct {
		name  string
		rows  map[string]int
		files int
	}{{"modified Hadoop + BSFS", bsfsRows, bsfsFiles}, {"original Hadoop + HDFS", hdfsRows, hdfsFiles}} {
		if !equal(r.rows, want) {
			log.Fatalf("%s: join output does not match the reference", r.name)
		}
		fmt.Printf("%-24s rows=%d output files=%d\n", r.name, count(r.rows), r.files)
	}
	fmt.Printf("\nsame result, but BSFS leaves %d file(s) and HDFS leaves %d —\n"+
		"the file-count problem the paper's append support removes.\n",
		bsfsFiles, hdfsFiles)
}

func runBSFS(ctx context.Context, a, b string) (map[string]int, int) {
	cluster, err := blobseer.NewCluster(blobseer.Options{
		Providers: 8, MetaProviders: 3, BlockSize: 32 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fw, err := cluster.NewFramework()
	if err != nil {
		log.Fatal(err)
	}
	defer fw.Close()
	return runJob(ctx, fw, a, b, mapreduce.SharedAppend)
}

func runHDFS(ctx context.Context, a, b string) (map[string]int, int) {
	net := transport.NewMemNet()
	cluster, err := hdfs.NewCluster(net, hdfs.ClusterConfig{Datanodes: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fw, err := mapreduce.NewFramework(mapreduce.FrameworkConfig{
		Net:   net,
		Hosts: cluster.DatanodeHosts(),
		Mount: func(host string) dfs.FileSystem { return cluster.Mount(host, 32<<10) },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fw.Close()
	return runJob(ctx, fw, a, b, mapreduce.SeparateFiles)
}

func runJob(ctx context.Context, fw *mapreduce.Framework, a, b string, mode mapreduce.OutputMode) (map[string]int, int) {
	fs := fw.ClientFS()
	if err := dfs.WriteFile(ctx, fs, "/in/a", []byte(a)); err != nil {
		log.Fatal(err)
	}
	if err := dfs.WriteFile(ctx, fs, "/in/b", []byte(b)); err != nil {
		log.Fatal(err)
	}
	res, err := fw.Run(ctx, datajoin.Job("/in/a", "/in/b", "/out", reducers, mode))
	if err != nil {
		log.Fatal(err)
	}
	rows := map[string]int{}
	for _, p := range res.OutputFiles {
		data, err := dfs.ReadAll(ctx, fs, p)
		if err != nil {
			log.Fatal(err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line != "" {
				rows[line]++
			}
		}
	}
	return rows, len(res.OutputFiles)
}

func count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func equal(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
