// Pipeline: the multiple-producer / concurrent-consumer log of §2.1
// and §5 — appenders keep extending one shared BSFS file (an HBase-like
// transaction log) while a reader tails it through version snapshots,
// never blocking the writers and never seeing torn data.
//
//	go run ./examples/pipeline
package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log"
	"strings"
	"sync"
	"time"

	"blobseer"
	"blobseer/internal/dfs"
)

const logPath = "/wal/transactions"

func main() {
	ctx := context.Background()
	cluster, err := blobseer.NewCluster(blobseer.Options{
		Providers:     6,
		MetaProviders: 3,
		BlockSize:     4 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	setup := cluster.Mount("node-000")
	defer setup.Close()
	if err := dfs.WriteFile(ctx, setup, logPath, nil); err != nil {
		log.Fatal(err)
	}

	const producers = 3
	const recordsEach = 40

	// Producers append transaction records concurrently; each Flush is
	// one atomic append, so records never tear across writers.
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			m := cluster.Mount(fmt.Sprintf("node-%03d", p))
			defer m.Close()
			w, err := m.Append(ctx, logPath)
			if err != nil {
				log.Fatal(err)
			}
			fl := w.(dfs.Flusher)
			for i := 0; i < recordsEach; i++ {
				fmt.Fprintf(w, "txn producer=%d seq=%d amount=%d\n", p, i, (p+1)*i)
				if err := fl.Flush(); err != nil {
					log.Fatal(err)
				}
				time.Sleep(2 * time.Millisecond)
			}
			if err := w.Close(); err != nil {
				log.Fatal(err)
			}
		}(p)
	}

	// The consumer tails the log while producers run: read to the
	// pinned snapshot's end, then Refresh to pick up newly published
	// appends (§5: readers work in parallel with appenders).
	consumed := 0
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	m := cluster.Mount("node-005")
	defer m.Close()
	f, err := m.Open(ctx, logPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	producersDone := false
	for {
		line, err := r.ReadString('\n')
		switch {
		case err == nil:
			if !strings.HasPrefix(line, "txn ") {
				log.Fatalf("torn record: %q", line)
			}
			consumed++
		case err == io.EOF:
			if producersDone {
				if _, err := f.Refresh(ctx); err != nil {
					log.Fatal(err)
				}
				if _, err := r.ReadString('\n'); err == io.EOF {
					// Fully drained after the final refresh.
					fmt.Printf("consumer drained the log: %d records from %d producers\n",
						consumed, producers)
					if consumed != producers*recordsEach {
						log.Fatalf("expected %d records", producers*recordsEach)
					}
					return
				}
				// More appeared; re-open the snapshot and continue.
				consumed++
				continue
			}
			select {
			case <-done:
				producersDone = true
			case <-time.After(5 * time.Millisecond):
			}
			if _, err := f.Refresh(ctx); err != nil {
				log.Fatal(err)
			}
			r = bufio.NewReaderSize(f, 4<<10)
		default:
			log.Fatal(err)
		}
	}
}
