// Quickstart: boot an embedded BlobSeer+BSFS cluster, append to a
// shared file from several concurrent writers, and read snapshots back
// through the versioning interface.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"strings"
	"sync"

	"blobseer"
	"blobseer/internal/dfs"
)

func main() {
	ctx := context.Background()

	// An in-process deployment: 8 data providers, 3 metadata
	// providers, one version manager, one provider manager, one BSFS
	// namespace manager. 64 KiB blocks keep the demo snappy.
	cluster, err := blobseer.NewCluster(blobseer.Options{
		Providers:     8,
		MetaProviders: 3,
		BlockSize:     64 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// --- File-system level: concurrent appends to one shared file ---
	fs := cluster.Mount("node-000")
	defer fs.Close()
	if err := dfs.WriteFile(ctx, fs, "/logs/events", nil); err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each writer gets its own mount, co-located with a
			// provider, like the paper's clients.
			m := cluster.Mount(fmt.Sprintf("node-%03d", w))
			defer m.Close()
			f, err := m.Append(ctx, "/logs/events")
			if err != nil {
				log.Fatal(err)
			}
			for i := 0; i < 8; i++ {
				fmt.Fprintf(f, "writer-%d event-%d\n", w, i)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}(w)
	}
	wg.Wait()

	fi, err := fs.Stat(ctx, "/logs/events")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shared file after 4 concurrent appenders: %d bytes (version %d)\n", fi.Size, fi.Version)

	// --- File-system level: the version axis ---
	// Every append published an immutable snapshot; enumerate them and
	// time-travel to the first one. The versioned open pins its
	// snapshot against garbage collection until the reader closes.
	history, err := fs.History(ctx, "/logs/events")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("history: %d published snapshots (first %d bytes, last %d bytes)\n",
		len(history), history[0].Size, history[len(history)-1].Size)
	first, err := fs.OpenVersion(ctx, "/logs/events", history[0].Version)
	if err != nil {
		log.Fatal(err)
	}
	firstBytes := make([]byte, first.Size())
	if _, err := first.ReadAt(firstBytes, 0); err != nil && err != io.EOF {
		log.Fatal(err)
	}
	fmt.Printf("snapshot %d 1st line: %q\n", first.Version(),
		strings.SplitN(string(firstBytes), "\n", 2)[0])
	first.Close()

	// Capability probing, the way the Map/Reduce framework does it:
	if _, ok := blobseer.AsVersioned(fs); !ok {
		log.Fatal("bsfs mount lost its versioned capability")
	}

	// --- BLOB level: versioning ---
	bc := cluster.BlobClient("node-001")
	defer bc.Close()
	blob, err := bc.Create(ctx, 4096)
	if err != nil {
		log.Fatal(err)
	}
	v1, err := blob.Append(ctx, []byte("first state of the world"))
	if err != nil {
		log.Fatal(err)
	}
	v2, err := blob.Append(ctx, []byte(" ... and an update"))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := blob.WaitPublished(ctx, v2.Ver); err != nil {
		log.Fatal(err)
	}

	// Every published version stays readable: this is the property
	// that lets readers work while appenders append.
	old, err := blob.ReadAt(ctx, v1.Ver, 0, v1.SizeAfter)
	if err != nil {
		log.Fatal(err)
	}
	cur, err := blob.ReadAt(ctx, v2.Ver, 0, v2.SizeAfter)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("version %d: %q\n", v1.Ver, old)
	fmt.Printf("version %d: %q\n", v2.Ver, cur)

	// The scheduler-facing primitive: where does each page live?
	locs, err := blob.PageLocations(ctx, 0, 0, v2.SizeAfter)
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range locs {
		fmt.Printf("page %d -> hosts %v\n", l.Index, l.Hosts)
	}
}
