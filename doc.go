// Package blobseer is a from-scratch Go reproduction of the system
// described in "Improving the Hadoop Map/Reduce Framework to Support
// Concurrent Appends through the BlobSeer BLOB management system"
// (Moise, Antoniu, Bougé — HPDC 2010, MapReduce workshop).
//
// The package itself is a thin facade over the building blocks in
// internal/: the BlobSeer versioned BLOB service (internal/blob), the
// BSFS file-system layer (internal/bsfs), an HDFS-like baseline
// (internal/hdfs) and a Hadoop-like Map/Reduce framework
// (internal/mapreduce). See DESIGN.md for the system inventory and
// EXPERIMENTS.md for the reproduced evaluation.
package blobseer
