// Package blobseer is a from-scratch Go reproduction of the system
// described in "Improving the Hadoop Map/Reduce Framework to Support
// Concurrent Appends through the BlobSeer BLOB management system"
// (Moise, Antoniu, Bougé — HPDC 2010, MapReduce workshop).
//
// The package is the snapshot-first facade over the building blocks in
// internal/: the BlobSeer versioned BLOB service (internal/blob), the
// BSFS file-system layer (internal/bsfs), an HDFS-like baseline
// (internal/hdfs) and a Hadoop-like Map/Reduce framework
// (internal/mapreduce). Everything a caller needs — including the
// versioned capability interface — is reachable through this package
// alone; callers never import internal paths.
//
// # Quick start
//
//	cluster, _ := blobseer.NewCluster(blobseer.Options{})
//	defer cluster.Close()
//	fs := cluster.Mount("node-000") // a VersionedFileSystem
//
// # The version axis
//
// Every append to a BSFS file publishes an immutable snapshot. The
// facade makes that axis first-class:
//
//   - fs.Stat fills FileInfo.Version, so "Stat then OpenVersion" pins
//     exactly the snapshot whose size was observed;
//   - fs.OpenVersion(ctx, path, ver) opens a fixed snapshot, pinned
//     against garbage collection until the reader closes;
//   - fs.History(ctx, path) enumerates the retained snapshots;
//   - fs.Tail(ctx, path, after) blocks for the next snapshot and opens
//     it — the tailing-reader loop for files concurrent appenders keep
//     growing;
//   - fs.SnapshotAt(ctx, path, ver) descends to a pinned BLOB-level
//     Snapshot handle (byte-offset reads, page views, page locations).
//
// Capability probing follows the Map/Reduce framework's own pattern:
//
//	if vfs, ok := blobseer.AsVersioned(fs); ok { ... }
//
// with ErrVersionsNotSupported as the stable answer from backends
// without the capability (the HDFS baseline), and ErrVersionGone as
// the stable answer for snapshots the retention policy has collected.
//
// Map/Reduce jobs submitted through Cluster.NewFramework pin each
// input file's snapshot at submit (JobResult.InputVersions), so a
// job's input set is immutable under live appenders — the paper's
// read/append overlap, correct by construction.
//
// # The metadata plane
//
// The paper's single version manager remains the default topology.
// Options.VMShards partitions the metadata plane across N shards
// (BLOB ids consistent-hashed on a fixed ring; every caller routes
// through one shared mapping), and Options.JournalDir makes the plane
// durable: shards and the BSFS namespace write-ahead-journal every
// acknowledged mutation and replay it on restart, so killing a shard
// mid-workload loses no acknowledged writes — clients retry through
// the brief outage while a standby reopens the journal at the same
// address. See the README's "metadata plane" section for the ring
// layout, journal record formats, and failover semantics.
//
// # Observability
//
// Every request path reports into one plane. RPC frames carry a
// two-uvarint trace context, so a traced operation renders as a
// causal span tree across client, version-manager, and provider
// processes (internal/obs); both sides of every RPC record into
// per-method lock-free latency histograms, and the process-wide
// metrics.Default registry unifies those with operation histograms,
// read/GC/shuffle counters, and gauges. All three commands expose it
// over HTTP with -metrics-addr (/metrics Prometheus text,
// /metrics.json, /spans, /healthz), and each experiments scenario
// can emit a BENCH_<fig>.json report (figure series plus latency
// percentiles) so performance is comparable across changes as a
// file diff.
//
// Options.FlightPath arms the black box on top of that plane: a
// flight recorder (internal/flight) journals tail-sampled span trees
// (slow past the live p99 of their own operation, or containing an
// errored span — always the full causal tree), periodic cluster
// snapshots, health transitions, and alert state changes to a
// bounded on-disk log that replays after a crash. An SLO watchdog
// evaluates rules on every monitor collection — journal lag, NIC
// utilization, replica imbalance, component health, p99 latency vs
// the committed BENCH baselines — with hysteresis on both edges;
// live states serve at /alerts, and `bsfsctl diag` writes the whole
// postmortem bundle (alerts, replayed timeline, cluster snapshot,
// metrics, health) as one tar.gz.
//
// # Static analysis
//
// The invariants the implementation leans on — no blocking call
// while a mutex is held, contexts threaded end to end through the
// RPC surface, no silently discarded errors, injected clocks in
// time-sensitive packages, every started span reaching End — are
// machine-checked by the project's own analyzer suite
// (internal/analysis) via `go run ./cmd/bslint ./...`, a hard CI
// gate. Deliberate exceptions are justified in the source with
// per-line `//lint:<analyzer> <reason>` markers.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced evaluation.
package blobseer
