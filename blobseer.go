package blobseer

import (
	"context"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/bsfs"
	"blobseer/internal/dfs"
	"blobseer/internal/flight"
	"blobseer/internal/mapreduce"
	"blobseer/internal/transport"
)

//
// Snapshot-first public surface. The building blocks live in
// internal/ packages; these aliases and re-exports make the whole API
// — including the versioned capability interface — reachable through
// the blobseer package alone, so callers never import internal paths.
//

// Core file-system types, re-exported from internal/dfs.
type (
	// FileSystem is the storage interface Map/Reduce runs against.
	FileSystem = dfs.FileSystem
	// VersionedFileSystem is the snapshot capability interface: probe
	// any FileSystem for it with AsVersioned. BSFS mounts implement it;
	// HDFS mounts answer every method with ErrVersionsNotSupported.
	VersionedFileSystem = dfs.VersionedFileSystem
	// FileReader is a streaming reader with random access.
	FileReader = dfs.FileReader
	// VersionedReader is a FileReader bound to one published snapshot;
	// Version reports which.
	VersionedReader = dfs.VersionedReader
	// FileInfo describes a namespace entry; on versioned backends Stat
	// fills Version with the latest published snapshot.
	FileInfo = dfs.FileInfo
	// VersionInfo describes one published snapshot of a file.
	VersionInfo = dfs.VersionInfo
	// BlockLoc locates one block for locality-aware scheduling.
	BlockLoc = dfs.BlockLoc
	// Snapshot is a pinned BLOB-level snapshot handle (Blob.At): reads
	// through it are immune to garbage collection for its lifetime.
	Snapshot = blob.Snapshot
	// JobConf and JobResult are the Map/Reduce job surface; on a
	// versioned backend a job pins each input file's snapshot at
	// submit (JobResult.InputVersions), so its input set is immutable
	// under concurrent appenders.
	JobConf   = mapreduce.JobConf
	JobResult = mapreduce.JobResult
)

// Stable sentinels of the versioned API, re-exported from internal/dfs.
var (
	// ErrVersionsNotSupported is returned by every VersionedFileSystem
	// method of a backend without snapshot support (HDFS).
	ErrVersionsNotSupported = dfs.ErrVersionsNotSupported
	// ErrVersionGone reports an open or read of a snapshot the
	// retention policy has collected.
	ErrVersionGone = dfs.ErrVersionGone
)

// AsVersioned probes fs for the snapshot capability the way the
// Map/Reduce framework does. See dfs.AsVersioned.
func AsVersioned(fs FileSystem) (VersionedFileSystem, bool) { return dfs.AsVersioned(fs) }

// Options sizes an embedded (in-process) BlobSeer + BSFS deployment.
// The zero value gives a small development cluster.
type Options struct {
	// Providers is the number of data providers (default 8).
	Providers int
	// MetaProviders is the number of metadata providers (default 3).
	MetaProviders int
	// BlockSize is the page/block size in bytes (default 64 MiB; tests
	// and examples usually pass something much smaller).
	BlockSize uint64
	// WriteDepth is how many blocks one writer keeps in flight
	// (default bsfs.DefaultWriteDepth; 1 = synchronous writer).
	WriteDepth int
	// ReadDepth is how many blocks the readahead engine keeps in
	// flight ahead of each sequential reader (default
	// bsfs.DefaultReadDepth; negative disables readahead).
	ReadDepth int
	// CacheBytes budgets each mount's shared page cache (default
	// cache.DefaultBudget; negative disables caching).
	CacheBytes int64
	// PageReplicas is the page replication factor (default 1).
	PageReplicas int
	// Retain is the version manager's default RetainLatest policy: keep
	// only the latest k published versions per BLOB, letting the
	// garbage collector retire the rest. 0 keeps every version.
	Retain uint64
	// GCInterval arms periodic garbage-collection passes. 0 leaves the
	// collector kick-driven: file deletion still reclaims storage, but
	// retention policies only make progress when something kicks it.
	GCInterval time.Duration
	// MonitorInterval arms the cluster monitor's periodic collection
	// passes (per-component rates, utilization, journal lag). 0 leaves
	// the monitor collect-on-demand: /cluster and `bsfsctl top` still
	// work, each poll collecting once.
	MonitorInterval time.Duration
	// VMShards partitions the metadata plane across N version-manager
	// shards (default 1, the paper's single version manager). BLOB ids
	// are consistent-hashed across shards and every client routes
	// through the shared ring.
	VMShards int
	// JournalDir, when set, makes the metadata plane durable: each
	// version-manager shard and the namespace manager journal their
	// decided state there and replay it on restart. Empty keeps
	// everything in memory.
	JournalDir string
	// FlightPath, when set, opens a flight recorder at that path and
	// arms the SLO watchdog (default rules) over the monitor: slow and
	// errored traces, snapshot deltas, and alert transitions persist
	// there and replay after a crash (`bsfsctl diag`).
	FlightPath string
	// HealthPingTimeout bounds each VM-shard ping in Deployment.Health
	// (default bsfs.DefaultHealthPingTimeout).
	HealthPingTimeout time.Duration
	// Net lets callers supply a shaped or TCP transport; nil uses an
	// in-process transport at memory speed.
	Net transport.Network
}

// CacheMiB converts a cache-budget flag value in MiB to the CacheBytes
// convention shared by Options, bsfs.Config, and experiments.Config:
// 0 means the default budget, negative disables caching.
func CacheMiB(mb int) int64 {
	if mb < 0 {
		return -1
	}
	return int64(mb) << 20
}

// Cluster is an embedded BlobSeer + BSFS deployment: the quickest way
// to use the library. For experiment-scale topologies use the
// internal/blob and internal/bsfs packages directly.
type Cluster struct {
	// Blob is the underlying BlobSeer service cluster.
	Blob *blob.Cluster
	// FS is the BSFS deployment on top of it.
	FS *bsfs.Deployment
}

// NewCluster boots all BlobSeer services and a BSFS namespace manager.
func NewCluster(opts Options) (*Cluster, error) {
	net := opts.Net
	if net == nil {
		net = transport.NewMemNet()
	}
	if opts.BlockSize == 0 {
		opts.BlockSize = 64 << 20
	}
	bc, err := blob.NewCluster(net, blob.ClusterConfig{
		Providers:     opts.Providers,
		MetaProviders: opts.MetaProviders,
		PageReplicas:  opts.PageReplicas,
		CacheBytes:    opts.CacheBytes,
		Retain:        opts.Retain,
		VMShards:      opts.VMShards,
		JournalDir:    opts.JournalDir,
	})
	if err != nil {
		return nil, err
	}
	d, err := bsfs.Deploy(bc, opts.BlockSize)
	if err != nil {
		bc.Close()
		return nil, err
	}
	d.WriteDepth = opts.WriteDepth
	d.ReadDepth = opts.ReadDepth
	d.CacheBytes = opts.CacheBytes
	d.HealthPingTimeout = opts.HealthPingTimeout
	if opts.GCInterval > 0 {
		d.SetGCInterval(opts.GCInterval)
	}
	if opts.MonitorInterval > 0 {
		d.SetMonitorInterval(opts.MonitorInterval)
	}
	if opts.FlightPath != "" {
		if err := d.EnableFlight(opts.FlightPath, bsfs.FlightConfig{
			Rules: flight.StandardRulesOptions{Health: true},
		}); err != nil {
			d.Close()
			bc.Close()
			return nil, err
		}
	}
	return &Cluster{Blob: bc, FS: d}, nil
}

// Mount is a BSFS file-system mount surfaced through the facade: a
// full VersionedFileSystem (versioned opens, history enumeration,
// tailing waits, snapshot-resolved block locations) plus the
// facade-level snapshot helpers below. The promoted method set comes
// from the underlying BSFS client; Close releases the mount.
type Mount struct {
	*bsfs.FS
}

var _ VersionedFileSystem = (*Mount)(nil)

// History enumerates path's published snapshots still inside the
// retention window, oldest first (an alias of Versions that reads
// naturally at call sites: m.History(ctx, "/logs/events")).
func (m *Mount) History(ctx context.Context, path string) ([]VersionInfo, error) {
	return m.Versions(ctx, path)
}

// Tail follows a file concurrent appenders keep growing: it blocks
// until a snapshot newer than after publishes, then opens that
// snapshot pinned. Loop on (info.Version, reader) to consume an
// append-only file as a sequence of immutable prefixes.
func (m *Mount) Tail(ctx context.Context, path string, after uint64) (VersionInfo, VersionedReader, error) {
	info, err := m.WaitVersion(ctx, path, after)
	if err != nil {
		return VersionInfo{}, nil, err
	}
	r, err := m.OpenVersion(ctx, path, info.Version)
	if err != nil {
		return VersionInfo{}, nil, err
	}
	return info, r, nil
}

// Mount returns a BSFS file-system mount running on the named host
// (hosts are simulated machines; use a provider host to co-locate the
// client with storage, as the paper's experiments do).
func (c *Cluster) Mount(host string) *Mount {
	return &Mount{FS: c.FS.Mount(host)}
}

// BlobClient returns a raw BlobSeer client on the named host, for
// direct BLOB create/append/read access below the file-system layer.
func (c *Cluster) BlobClient(host string) *blob.Client {
	return c.Blob.Client(host)
}

// NewFramework starts a Map/Reduce framework with one tasktracker on
// every data-provider host, co-deployed like the paper's setup.
func (c *Cluster) NewFramework() (*mapreduce.Framework, error) {
	return mapreduce.NewFramework(mapreduce.FrameworkConfig{
		Net:   c.Blob.Net,
		Hosts: c.Blob.ProviderHosts(),
		Mount: func(host string) dfs.FileSystem { return c.Mount(host) },
	})
}

// Close tears the deployment down.
func (c *Cluster) Close() error {
	err := c.FS.Close()
	if cerr := c.Blob.Close(); err == nil {
		err = cerr
	}
	return err
}
