package blobseer

import (
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/bsfs"
	"blobseer/internal/dfs"
	"blobseer/internal/mapreduce"
	"blobseer/internal/transport"
)

// Options sizes an embedded (in-process) BlobSeer + BSFS deployment.
// The zero value gives a small development cluster.
type Options struct {
	// Providers is the number of data providers (default 8).
	Providers int
	// MetaProviders is the number of metadata providers (default 3).
	MetaProviders int
	// BlockSize is the page/block size in bytes (default 64 MiB; tests
	// and examples usually pass something much smaller).
	BlockSize uint64
	// WriteDepth is how many blocks one writer keeps in flight
	// (default bsfs.DefaultWriteDepth; 1 = synchronous writer).
	WriteDepth int
	// ReadDepth is how many blocks the readahead engine keeps in
	// flight ahead of each sequential reader (default
	// bsfs.DefaultReadDepth; negative disables readahead).
	ReadDepth int
	// CacheBytes budgets each mount's shared page cache (default
	// cache.DefaultBudget; negative disables caching).
	CacheBytes int64
	// PageReplicas is the page replication factor (default 1).
	PageReplicas int
	// Retain is the version manager's default RetainLatest policy: keep
	// only the latest k published versions per BLOB, letting the
	// garbage collector retire the rest. 0 keeps every version.
	Retain uint64
	// GCInterval arms periodic garbage-collection passes. 0 leaves the
	// collector kick-driven: file deletion still reclaims storage, but
	// retention policies only make progress when something kicks it.
	GCInterval time.Duration
	// Net lets callers supply a shaped or TCP transport; nil uses an
	// in-process transport at memory speed.
	Net transport.Network
}

// CacheMiB converts a cache-budget flag value in MiB to the CacheBytes
// convention shared by Options, bsfs.Config, and experiments.Config:
// 0 means the default budget, negative disables caching.
func CacheMiB(mb int) int64 {
	if mb < 0 {
		return -1
	}
	return int64(mb) << 20
}

// Cluster is an embedded BlobSeer + BSFS deployment: the quickest way
// to use the library. For experiment-scale topologies use the
// internal/blob and internal/bsfs packages directly.
type Cluster struct {
	// Blob is the underlying BlobSeer service cluster.
	Blob *blob.Cluster
	// FS is the BSFS deployment on top of it.
	FS *bsfs.Deployment
}

// NewCluster boots all BlobSeer services and a BSFS namespace manager.
func NewCluster(opts Options) (*Cluster, error) {
	net := opts.Net
	if net == nil {
		net = transport.NewMemNet()
	}
	if opts.BlockSize == 0 {
		opts.BlockSize = 64 << 20
	}
	bc, err := blob.NewCluster(net, blob.ClusterConfig{
		Providers:     opts.Providers,
		MetaProviders: opts.MetaProviders,
		PageReplicas:  opts.PageReplicas,
		CacheBytes:    opts.CacheBytes,
		Retain:        opts.Retain,
	})
	if err != nil {
		return nil, err
	}
	d, err := bsfs.Deploy(bc, opts.BlockSize)
	if err != nil {
		bc.Close()
		return nil, err
	}
	d.WriteDepth = opts.WriteDepth
	d.ReadDepth = opts.ReadDepth
	d.CacheBytes = opts.CacheBytes
	if opts.GCInterval > 0 {
		d.SetGCInterval(opts.GCInterval)
	}
	return &Cluster{Blob: bc, FS: d}, nil
}

// Mount returns a BSFS file-system mount running on the named host
// (hosts are simulated machines; use a provider host to co-locate the
// client with storage, as the paper's experiments do).
func (c *Cluster) Mount(host string) *bsfs.FS {
	return c.FS.Mount(host)
}

// BlobClient returns a raw BlobSeer client on the named host, for
// direct BLOB create/append/read access below the file-system layer.
func (c *Cluster) BlobClient(host string) *blob.Client {
	return c.Blob.Client(host)
}

// NewFramework starts a Map/Reduce framework with one tasktracker on
// every data-provider host, co-deployed like the paper's setup.
func (c *Cluster) NewFramework() (*mapreduce.Framework, error) {
	return mapreduce.NewFramework(mapreduce.FrameworkConfig{
		Net:   c.Blob.Net,
		Hosts: c.Blob.ProviderHosts(),
		Mount: func(host string) dfs.FileSystem { return c.Mount(host) },
	})
}

// Close tears the deployment down.
func (c *Cluster) Close() error {
	err := c.FS.Close()
	if cerr := c.Blob.Close(); err == nil {
		err = cerr
	}
	return err
}
