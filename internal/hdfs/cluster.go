package hdfs

import (
	"fmt"

	"blobseer/internal/pagestore"
	"blobseer/internal/transport"
)

// ClusterConfig sizes an in-process HDFS deployment: one namenode on a
// dedicated machine and datanodes on the remaining nodes (§4.1).
type ClusterConfig struct {
	Datanodes  int
	Replicas   int
	Seed       int64
	Synthesize bool // use the synthesizing block store (experiments)
	HostPrefix string
}

// Cluster is an in-process HDFS deployment.
type Cluster struct {
	Net       transport.Network
	Cfg       ClusterConfig
	NN        *Namenode
	Datanodes []*Datanode
}

// NewCluster starts a namenode and datanodes on net.
func NewCluster(net transport.Network, cfg ClusterConfig) (*Cluster, error) {
	if cfg.Datanodes <= 0 {
		cfg.Datanodes = 8
	}
	if cfg.HostPrefix == "" {
		cfg.HostPrefix = "node"
	}
	c := &Cluster{Net: net, Cfg: cfg}
	nn, err := NewNamenode(net, transport.MakeAddr("namenode-host", SvcNamenode),
		NamenodeConfig{Replicas: cfg.Replicas, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	c.NN = nn
	for i := 0; i < cfg.Datanodes; i++ {
		addr := transport.MakeAddr(fmt.Sprintf("%s-%03d", cfg.HostPrefix, i), SvcDatanode)
		var store pagestore.Store
		if cfg.Synthesize {
			store = pagestore.NewSynthesize()
		} else {
			store = pagestore.NewMemory()
		}
		d, err := NewDatanode(net, addr, store)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Datanodes = append(c.Datanodes, d)
		nn.Register(string(addr))
	}
	return c, nil
}

// DatanodeHosts returns the datanodes' host names (for co-locating
// tasktrackers with datanodes, §4.3).
func (c *Cluster) DatanodeHosts() []string {
	out := make([]string, len(c.Datanodes))
	for i, d := range c.Datanodes {
		out[i] = d.Addr().Host()
	}
	return out
}

// Mount returns an HDFS client mount on host with the given chunk size.
func (c *Cluster) Mount(host string, blockSize uint64) *FS {
	return New(Config{Net: c.Net, Host: host, Namenode: c.NN.Addr(), BlockSize: blockSize})
}

// Close stops all services.
func (c *Cluster) Close() error {
	if c.NN != nil {
		c.NN.Close()
	}
	for _, d := range c.Datanodes {
		d.Close()
	}
	return nil
}
