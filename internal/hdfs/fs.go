package hdfs

import (
	"context"
	"fmt"
	"io"

	"blobseer/internal/dfs"
	"blobseer/internal/rpc"
	"blobseer/internal/transport"
)

// Config configures an HDFS client mount.
type Config struct {
	Net      transport.Network
	Host     string
	Namenode transport.Addr
	// BlockSize is the chunk size (64 MB in the paper; tests and
	// experiments scale it down).
	BlockSize uint64
}

// FS is an HDFS mount implementing dfs.FileSystem. Appends are
// rejected (§2.2), which forces the original Hadoop output layout of
// one file per reducer.
type FS struct {
	cfg  Config
	pool *rpc.Pool
}

var (
	_ dfs.FileSystem          = (*FS)(nil)
	_ dfs.VersionedFileSystem = (*FS)(nil)
)

// New returns an HDFS mount.
func New(cfg Config) *FS {
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 64 << 20
	}
	return &FS{
		cfg:  cfg,
		pool: rpc.NewPool(cfg.Net, transport.MakeAddr(cfg.Host, "hdfs-client")),
	}
}

// Close releases the mount's connections.
func (fs *FS) Close() error { return fs.pool.Close() }

// Name implements dfs.FileSystem.
func (fs *FS) Name() string { return "hdfs" }

// BlockSize implements dfs.FileSystem.
func (fs *FS) BlockSize() uint64 { return fs.cfg.BlockSize }

// Create implements dfs.FileSystem. The file is invisible to readers
// until the writer closes it (write-once-read-many).
func (fs *FS) Create(ctx context.Context, path string) (dfs.FileWriter, error) {
	if err := fs.pool.Call(ctx, fs.cfg.Namenode, NNCreate, &dfs.PathReq{Path: path}, nil); err != nil {
		return nil, err
	}
	return &fileWriter{ctx: ctx, fs: fs, path: path, buf: make([]byte, 0, fs.cfg.BlockSize)}, nil
}

// Append implements dfs.FileSystem: HDFS has no append (§2.2 — "the
// data cannot be overwritten or appended to"; append support "was
// disabled" upstream). This is the paper's premise.
func (fs *FS) Append(ctx context.Context, path string) (dfs.FileWriter, error) {
	return nil, dfs.ErrAppendNotSupported
}

// OpenVersion implements dfs.VersionedFileSystem by rejection: HDFS's
// write-once files have no version axis, the versioned mirror of its
// missing append (§2.2) — the paper's backend contrast, extended to
// the snapshot-first API. The sentinel is stable so frameworks fall
// back to latest-only reads instead of failing the job.
func (fs *FS) OpenVersion(ctx context.Context, path string, ver uint64) (dfs.VersionedReader, error) {
	return nil, dfs.ErrVersionsNotSupported
}

// Versions implements dfs.VersionedFileSystem by rejection (see
// OpenVersion).
func (fs *FS) Versions(ctx context.Context, path string) ([]dfs.VersionInfo, error) {
	return nil, dfs.ErrVersionsNotSupported
}

// WaitVersion implements dfs.VersionedFileSystem by rejection (see
// OpenVersion).
func (fs *FS) WaitVersion(ctx context.Context, path string, after uint64) (dfs.VersionInfo, error) {
	return dfs.VersionInfo{}, dfs.ErrVersionsNotSupported
}

// BlockLocationsAt implements dfs.VersionedFileSystem by rejection
// (see OpenVersion); version 0 — latest, the only version HDFS has —
// degrades to plain BlockLocations so capability-blind callers that
// pass 0 keep working.
func (fs *FS) BlockLocationsAt(ctx context.Context, path string, ver uint64, off, length uint64) ([]dfs.BlockLoc, error) {
	if ver == 0 {
		return fs.BlockLocations(ctx, path, off, length)
	}
	return nil, dfs.ErrVersionsNotSupported
}

// Open implements dfs.FileSystem.
func (fs *FS) Open(ctx context.Context, path string) (dfs.FileReader, error) {
	var resp GetBlocksResp
	if err := fs.pool.Call(ctx, fs.cfg.Namenode, NNGetBlocks, &dfs.PathReq{Path: path}, &resp); err != nil {
		return nil, err
	}
	return &fileReader{ctx: ctx, fs: fs, path: path, meta: resp}, nil
}

// Stat implements dfs.FileSystem.
func (fs *FS) Stat(ctx context.Context, path string) (dfs.FileInfo, error) {
	var resp LookupResp
	if err := fs.pool.Call(ctx, fs.cfg.Namenode, NNLookup, &dfs.PathReq{Path: path}, &resp); err != nil {
		return dfs.FileInfo{}, err
	}
	clean, err := dfs.CleanPath(path)
	if err != nil {
		return dfs.FileInfo{}, err
	}
	return dfs.FileInfo{Path: clean, IsDir: resp.IsDir, Size: resp.Size, Blocks: resp.Blocks}, nil
}

// List implements dfs.FileSystem.
func (fs *FS) List(ctx context.Context, dir string) ([]dfs.FileInfo, error) {
	var resp dfs.ListResp
	if err := fs.pool.Call(ctx, fs.cfg.Namenode, NNList, &dfs.PathReq{Path: dir}, &resp); err != nil {
		return nil, err
	}
	return resp.Infos, nil
}

// Rename implements dfs.FileSystem (the committer's temp→final move).
func (fs *FS) Rename(ctx context.Context, src, dst string) error {
	return fs.pool.Call(ctx, fs.cfg.Namenode, NNRename, &dfs.PathPairReq{Src: src, Dst: dst}, nil)
}

// Delete implements dfs.FileSystem.
func (fs *FS) Delete(ctx context.Context, path string) error {
	return fs.pool.Call(ctx, fs.cfg.Namenode, NNDelete, &dfs.PathReq{Path: path}, nil)
}

// Mkdir implements dfs.FileSystem.
func (fs *FS) Mkdir(ctx context.Context, path string) error {
	return fs.pool.Call(ctx, fs.cfg.Namenode, NNMkdir, &dfs.PathReq{Path: path}, nil)
}

// BlockLocations implements dfs.FileSystem ("HDFS provides the
// information about the location of each chunk", §2.2).
func (fs *FS) BlockLocations(ctx context.Context, path string, off, length uint64) ([]dfs.BlockLoc, error) {
	var resp GetBlocksResp
	if err := fs.pool.Call(ctx, fs.cfg.Namenode, NNGetBlocks, &dfs.PathReq{Path: path}, &resp); err != nil {
		return nil, err
	}
	var out []dfs.BlockLoc
	var cur uint64
	for _, blk := range resp.Blocks {
		blkEnd := cur + blk.Length
		if blkEnd > off && cur < off+length {
			hosts := make([]string, 0, len(blk.Datanodes))
			for _, d := range blk.Datanodes {
				hosts = append(hosts, transport.Addr(d).Host())
			}
			out = append(out, dfs.BlockLoc{Offset: cur, Length: blk.Length, Hosts: hosts})
		}
		cur = blkEnd
	}
	return out, nil
}

// MetadataEntries implements dfs.FileSystem: namespace entries plus
// block records, all of which live in the single namenode.
func (fs *FS) MetadataEntries(ctx context.Context) (uint64, error) {
	var resp dfs.CountResp
	if err := fs.pool.Call(ctx, fs.cfg.Namenode, NNEntries, nil, &resp); err != nil {
		return 0, err
	}
	return resp.Count, nil
}

//
// Writer: client-side buffering of whole chunks (§2.2: "Clients buffer
// all write operations until the data reaches the size of a chunk").
//

type fileWriter struct {
	ctx    context.Context
	fs     *FS
	path   string
	buf    []byte
	err    error
	closed bool
}

// Write implements io.Writer.
func (w *fileWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	if w.closed {
		return 0, fmt.Errorf("hdfs: write to closed file %s", w.path)
	}
	total := 0
	bs := int(w.fs.cfg.BlockSize)
	for len(p) > 0 {
		space := bs - len(w.buf)
		n := len(p)
		if n > space {
			n = space
		}
		w.buf = append(w.buf, p[:n]...)
		p = p[n:]
		total += n
		if len(w.buf) == bs {
			if err := w.flush(); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// flush allocates a block at the namenode and writes it to every
// assigned datanode.
func (w *fileWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	var alloc AddBlockResp
	err := w.fs.pool.Call(w.ctx, w.fs.cfg.Namenode, NNAddBlock,
		&AddBlockReq{Path: w.path, Length: uint64(len(w.buf))}, &alloc)
	if err != nil {
		w.err = err
		return err
	}
	for _, dn := range alloc.Datanodes {
		err := w.fs.pool.Call(w.ctx, transport.Addr(dn), DNPutBlock,
			&PutBlockReq{ID: alloc.BlockID, Data: w.buf}, nil)
		if err != nil {
			w.err = fmt.Errorf("hdfs: block %d to %s: %w", alloc.BlockID, dn, err)
			return w.err
		}
	}
	w.buf = w.buf[:0]
	return nil
}

// Close flushes the tail block and completes the file, making it
// visible to readers.
func (w *fileWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.err != nil {
		return w.err
	}
	if err := w.flush(); err != nil {
		return err
	}
	return w.fs.pool.Call(w.ctx, w.fs.cfg.Namenode, NNComplete, &dfs.PathReq{Path: w.path}, nil)
}

//
// Reader: whole-chunk readahead (§2.2: "when HDFS receives a read
// request for a small block, it prefetches the entire chunk").
//

type fileReader struct {
	ctx  context.Context
	fs   *FS
	path string
	meta GetBlocksResp

	pos    uint64
	bufOff uint64
	buf    []byte
	bufOK  bool
}

// Read implements io.Reader.
func (r *fileReader) Read(p []byte) (int, error) {
	if r.pos >= r.meta.Size {
		return 0, io.EOF
	}
	if !r.bufOK || r.pos < r.bufOff || r.pos >= r.bufOff+uint64(len(r.buf)) {
		if err := r.fetchBlockAt(r.pos); err != nil {
			return 0, err
		}
	}
	n := copy(p, r.buf[r.pos-r.bufOff:])
	r.pos += uint64(n)
	return n, nil
}

// fetchBlockAt prefetches the whole chunk containing byte offset off.
func (r *fileReader) fetchBlockAt(off uint64) error {
	var cur uint64
	for _, blk := range r.meta.Blocks {
		if off < cur+blk.Length {
			data, err := r.fetchBlock(blk)
			if err != nil {
				return err
			}
			r.bufOff, r.buf, r.bufOK = cur, data, true
			return nil
		}
		cur += blk.Length
	}
	return io.EOF
}

func (r *fileReader) fetchBlock(blk BlockInfo) ([]byte, error) {
	var lastErr error
	for _, dn := range blk.Datanodes {
		var resp BlockDataResp
		err := r.fs.pool.Call(r.ctx, transport.Addr(dn), DNGetBlock, &BlockRef{ID: blk.ID}, &resp)
		if err == nil {
			return resp.Data, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("hdfs: block %d unreadable: %w", blk.ID, lastErr)
}

// ReadAt implements io.ReaderAt through the same one-chunk readahead
// cache as Read, so sub-chunk sequential ReadAt patterns fetch every
// chunk once.
func (r *fileReader) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("hdfs: negative offset")
	}
	pos := uint64(off)
	if pos >= r.meta.Size {
		return 0, io.EOF
	}
	want := uint64(len(p))
	if pos+want > r.meta.Size {
		want = r.meta.Size - pos
	}
	var done uint64
	for done < want {
		at := pos + done
		if !r.bufOK || at < r.bufOff || at >= r.bufOff+uint64(len(r.buf)) {
			if err := r.fetchBlockAt(at); err != nil {
				return int(done), err
			}
		}
		done += uint64(copy(p[done:want], r.buf[at-r.bufOff:]))
	}
	if done < uint64(len(p)) {
		return int(done), io.EOF
	}
	return int(done), nil
}

// Close implements io.Closer.
func (r *fileReader) Close() error { return nil }

// Size implements dfs.FileReader.
func (r *fileReader) Size() uint64 { return r.meta.Size }

// Refresh implements dfs.FileReader. Completed HDFS files cannot grow,
// but re-fetching the block map keeps the interface uniform.
func (r *fileReader) Refresh(ctx context.Context) (uint64, error) {
	var resp GetBlocksResp
	if err := r.fs.pool.Call(ctx, r.fs.cfg.Namenode, NNGetBlocks, &dfs.PathReq{Path: r.path}, &resp); err != nil {
		return 0, err
	}
	r.meta = resp
	return r.meta.Size, nil
}
