// Package hdfs is the write-once-read-many baseline file system of the
// paper (§2.2): an HDFS-like design with a centralized namenode holding
// the namespace and the block map, datanodes storing fixed-size chunks,
// random block placement, client-side write buffering of whole chunks,
// whole-chunk readahead, and — crucially for the paper's argument — NO
// append support: "once a file is created, written and closed, the
// data cannot be overwritten or appended to".
package hdfs

import (
	"errors"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"blobseer/internal/dfs"
	"blobseer/internal/rpc"
	"blobseer/internal/transport"
	"blobseer/internal/wire"
)

// Service names.
const (
	SvcNamenode = "namenode"
	SvcDatanode = "datanode"
)

// Namenode methods.
var (
	NNCreate    = rpc.M(1, "nn.Create")
	NNAddBlock  = rpc.M(2, "nn.AddBlock")
	NNComplete  = rpc.M(3, "nn.Complete")
	NNGetBlocks = rpc.M(4, "nn.GetBlocks")
	NNLookup    = rpc.M(5, "nn.Lookup")
	NNList      = rpc.M(6, "nn.List")
	NNRename    = rpc.M(7, "nn.Rename")
	NNDelete    = rpc.M(8, "nn.Delete")
	NNMkdir     = rpc.M(9, "nn.Mkdir")
	NNEntries   = rpc.M(10, "nn.Entries")
	NNRegister  = rpc.M(11, "nn.Register")
)

// Datanode methods.
var (
	DNPutBlock = rpc.M(1, "dn.PutBlock")
	DNGetBlock = rpc.M(2, "dn.GetBlock")
	DNStats    = rpc.M(3, "dn.Stats")
)

//
// Messages.
//

// AddBlockReq allocates the next block of an open file.
type AddBlockReq struct {
	Path   string
	Length uint64 // actual bytes in this block
}

// AppendTo implements wire.Marshaler.
func (m *AddBlockReq) AppendTo(b []byte) []byte {
	b = wire.AppendString(b, m.Path)
	return wire.AppendUvarint(b, m.Length)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *AddBlockReq) DecodeFrom(r *wire.Reader) error {
	m.Path = r.String()
	m.Length = r.Uvarint()
	return r.Err()
}

// AddBlockResp names the new block and its target datanodes.
type AddBlockResp struct {
	BlockID   uint64
	Datanodes []string
}

// AppendTo implements wire.Marshaler.
func (m *AddBlockResp) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, m.BlockID)
	return wire.AppendStringSlice(b, m.Datanodes)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *AddBlockResp) DecodeFrom(r *wire.Reader) error {
	m.BlockID = r.Uvarint()
	m.Datanodes = r.StringSlice()
	return r.Err()
}

// BlockInfo describes one block of a file.
type BlockInfo struct {
	ID        uint64
	Length    uint64
	Datanodes []string
}

// GetBlocksResp lists a completed file's blocks.
type GetBlocksResp struct {
	Size   uint64
	Blocks []BlockInfo
}

// AppendTo implements wire.Marshaler.
func (m *GetBlocksResp) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Size)
	b = wire.AppendUvarint(b, uint64(len(m.Blocks)))
	for _, blk := range m.Blocks {
		b = wire.AppendUvarint(b, blk.ID)
		b = wire.AppendUvarint(b, blk.Length)
		b = wire.AppendStringSlice(b, blk.Datanodes)
	}
	return b
}

// DecodeFrom implements wire.Unmarshaler.
func (m *GetBlocksResp) DecodeFrom(r *wire.Reader) error {
	m.Size = r.Uvarint()
	n := r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	m.Blocks = make([]BlockInfo, 0, n)
	for i := uint64(0); i < n; i++ {
		var blk BlockInfo
		blk.ID = r.Uvarint()
		blk.Length = r.Uvarint()
		blk.Datanodes = r.StringSlice()
		m.Blocks = append(m.Blocks, blk)
	}
	return r.Err()
}

// LookupResp describes a namespace entry.
type LookupResp struct {
	IsDir             bool
	Size              uint64
	Blocks            uint64
	UnderConstruction bool
}

// AppendTo implements wire.Marshaler.
func (m *LookupResp) AppendTo(b []byte) []byte {
	b = wire.AppendBool(b, m.IsDir)
	b = wire.AppendUvarint(b, m.Size)
	b = wire.AppendUvarint(b, m.Blocks)
	return wire.AppendBool(b, m.UnderConstruction)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *LookupResp) DecodeFrom(r *wire.Reader) error {
	m.IsDir = r.Bool()
	m.Size = r.Uvarint()
	m.Blocks = r.Uvarint()
	m.UnderConstruction = r.Bool()
	return r.Err()
}

// BlockRef names one block.
type BlockRef struct{ ID uint64 }

// AppendTo implements wire.Marshaler.
func (m *BlockRef) AppendTo(b []byte) []byte { return wire.AppendUvarint(b, m.ID) }

// DecodeFrom implements wire.Unmarshaler.
func (m *BlockRef) DecodeFrom(r *wire.Reader) error {
	m.ID = r.Uvarint()
	return r.Err()
}

// PutBlockReq stores one block on a datanode.
type PutBlockReq struct {
	ID   uint64
	Data []byte
}

// AppendTo implements wire.Marshaler.
func (m *PutBlockReq) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, m.ID)
	return wire.AppendBytes(b, m.Data)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *PutBlockReq) DecodeFrom(r *wire.Reader) error {
	m.ID = r.Uvarint()
	m.Data = r.BytesCopy()
	return r.Err()
}

// BlockDataResp carries block content.
type BlockDataResp struct{ Data []byte }

// AppendTo implements wire.Marshaler.
func (m *BlockDataResp) AppendTo(b []byte) []byte { return wire.AppendBytes(b, m.Data) }

// DecodeFrom implements wire.Unmarshaler.
func (m *BlockDataResp) DecodeFrom(r *wire.Reader) error {
	m.Data = r.BytesCopy()
	return r.Err()
}

//
// Namenode.
//

// nnEntry is one namespace record.
type nnEntry struct {
	isDir             bool
	blocks            []uint64
	blockLens         []uint64
	size              uint64
	underConstruction bool
}

// NamenodeConfig configures placement.
type NamenodeConfig struct {
	// Replicas is the block replication factor (default 1, so the
	// BSFS comparison is replica-for-replica fair).
	Replicas int
	// Seed drives the random placement policy ("HDFS picks random
	// servers to store the data", §2.2).
	Seed int64
}

// Namenode is the centralized metadata server: it holds the whole
// namespace AND every block record — which is exactly why the
// file-count problem hits HDFS-like designs (§1).
type Namenode struct {
	srv *rpc.Server
	cfg NamenodeConfig

	mu        sync.Mutex
	entries   map[string]*nnEntry
	blockLocs map[uint64][]string
	datanodes []string
	nextBlock uint64
	rng       *rand.Rand
}

// NewNamenode starts a namenode at addr.
func NewNamenode(net transport.Network, addr transport.Addr, cfg NamenodeConfig) (*Namenode, error) {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	srv, err := rpc.NewServer(net, addr)
	if err != nil {
		return nil, err
	}
	nn := &Namenode{
		srv:     srv,
		cfg:     cfg,
		entries: map[string]*nnEntry{"/": {isDir: true}},
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	srv.Handle(NNCreate, nn.handleCreate)
	srv.Handle(NNAddBlock, nn.handleAddBlock)
	srv.Handle(NNComplete, nn.handleComplete)
	srv.Handle(NNGetBlocks, nn.handleGetBlocks)
	srv.Handle(NNLookup, nn.handleLookup)
	srv.Handle(NNList, nn.handleList)
	srv.Handle(NNRename, nn.handleRename)
	srv.Handle(NNDelete, nn.handleDelete)
	srv.Handle(NNMkdir, nn.handleMkdir)
	srv.Handle(NNEntries, nn.handleEntries)
	srv.Handle(NNRegister, nn.handleRegister)
	return nn, nil
}

// Addr returns the namenode endpoint.
func (nn *Namenode) Addr() transport.Addr { return nn.srv.Addr() }

// Close stops the namenode.
func (nn *Namenode) Close() error { return nn.srv.Close() }

// Register adds a datanode (harness path; remote nodes use NNRegister).
func (nn *Namenode) Register(addr string) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	for _, d := range nn.datanodes {
		if d == addr {
			return
		}
	}
	nn.datanodes = append(nn.datanodes, addr)
}

func (nn *Namenode) handleRegister(r *wire.Reader) (wire.Marshaler, error) {
	var req dfs.PathReq // reuse: Path carries the datanode address
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	nn.Register(req.Path)
	return nil, nil
}

func (nn *Namenode) mkdirAllLocked(dir string) error {
	for _, p := range append(dfs.Ancestors(dir), dir) {
		if p == "/" {
			continue
		}
		e, ok := nn.entries[p]
		if !ok {
			nn.entries[p] = &nnEntry{isDir: true}
			continue
		}
		if !e.isDir {
			return dfs.ErrNotDir
		}
	}
	return nil
}

func (nn *Namenode) handleCreate(r *wire.Reader) (wire.Marshaler, error) {
	var req dfs.PathReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	path, err := dfs.CleanPath(req.Path)
	if err != nil {
		return nil, err
	}
	if path == "/" {
		return nil, dfs.ErrIsDir
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	if _, ok := nn.entries[path]; ok {
		return nil, dfs.ErrExists
	}
	if err := nn.mkdirAllLocked(dfs.Parent(path)); err != nil {
		return nil, err
	}
	nn.entries[path] = &nnEntry{underConstruction: true}
	return nil, nil
}

func (nn *Namenode) handleAddBlock(r *wire.Reader) (wire.Marshaler, error) {
	var req AddBlockReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	path, err := dfs.CleanPath(req.Path)
	if err != nil {
		return nil, err
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	e, ok := nn.entries[path]
	if !ok {
		return nil, dfs.ErrNotExist
	}
	if e.isDir {
		return nil, dfs.ErrIsDir
	}
	if !e.underConstruction {
		return nil, errors.New("hdfs: file is closed; HDFS files are write-once")
	}
	if len(nn.datanodes) == 0 {
		return nil, errors.New("hdfs: no datanodes registered")
	}
	nn.nextBlock++
	id := nn.nextBlock
	e.blocks = append(e.blocks, id)
	e.blockLens = append(e.blockLens, req.Length)
	e.size += req.Length

	// Random placement (§2.2), distinct replicas.
	replicas := nn.cfg.Replicas
	if replicas > len(nn.datanodes) {
		replicas = len(nn.datanodes)
	}
	perm := nn.rng.Perm(len(nn.datanodes))[:replicas]
	resp := &AddBlockResp{BlockID: id}
	for _, i := range perm {
		resp.Datanodes = append(resp.Datanodes, nn.datanodes[i])
	}
	// Record placement as part of the block map.
	if nn.blockLocs == nil {
		nn.blockLocs = make(map[uint64][]string)
	}
	nn.blockLocs[id] = resp.Datanodes
	return resp, nil
}

func (nn *Namenode) handleComplete(r *wire.Reader) (wire.Marshaler, error) {
	var req dfs.PathReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	path, err := dfs.CleanPath(req.Path)
	if err != nil {
		return nil, err
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	e, ok := nn.entries[path]
	if !ok {
		return nil, dfs.ErrNotExist
	}
	e.underConstruction = false
	return nil, nil
}

func (nn *Namenode) handleGetBlocks(r *wire.Reader) (wire.Marshaler, error) {
	var req dfs.PathReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	path, err := dfs.CleanPath(req.Path)
	if err != nil {
		return nil, err
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	e, ok := nn.entries[path]
	if !ok {
		return nil, dfs.ErrNotExist
	}
	if e.isDir {
		return nil, dfs.ErrIsDir
	}
	if e.underConstruction {
		// §2.2: files "were visible in the file system namespace only
		// after a successful close operation".
		return nil, dfs.ErrUnderConstruction
	}
	resp := &GetBlocksResp{Size: e.size}
	for i, id := range e.blocks {
		resp.Blocks = append(resp.Blocks, BlockInfo{
			ID:        id,
			Length:    e.blockLens[i],
			Datanodes: nn.blockLocs[id],
		})
	}
	return resp, nil
}

func (nn *Namenode) handleLookup(r *wire.Reader) (wire.Marshaler, error) {
	var req dfs.PathReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	path, err := dfs.CleanPath(req.Path)
	if err != nil {
		return nil, err
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	e, ok := nn.entries[path]
	if !ok {
		return nil, dfs.ErrNotExist
	}
	return &LookupResp{
		IsDir:             e.isDir,
		Size:              e.size,
		Blocks:            uint64(len(e.blocks)),
		UnderConstruction: e.underConstruction,
	}, nil
}

func (nn *Namenode) handleList(r *wire.Reader) (wire.Marshaler, error) {
	var req dfs.PathReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	dir, err := dfs.CleanPath(req.Path)
	if err != nil {
		return nil, err
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	e, ok := nn.entries[dir]
	if !ok {
		return nil, dfs.ErrNotExist
	}
	if !e.isDir {
		return nil, dfs.ErrNotDir
	}
	prefix := dir
	if prefix != "/" {
		prefix += "/"
	}
	var resp dfs.ListResp
	for p, ent := range nn.entries {
		if p == "/" || !strings.HasPrefix(p, prefix) {
			continue
		}
		if strings.ContainsRune(p[len(prefix):], '/') {
			continue
		}
		resp.Infos = append(resp.Infos, dfs.FileInfo{
			Path: p, IsDir: ent.isDir, Size: ent.size, Blocks: uint64(len(ent.blocks)),
		})
	}
	sort.Slice(resp.Infos, func(i, j int) bool { return resp.Infos[i].Path < resp.Infos[j].Path })
	return &resp, nil
}

func (nn *Namenode) handleRename(r *wire.Reader) (wire.Marshaler, error) {
	var req dfs.PathPairReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	src, err := dfs.CleanPath(req.Src)
	if err != nil {
		return nil, err
	}
	dst, err := dfs.CleanPath(req.Dst)
	if err != nil {
		return nil, err
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	e, ok := nn.entries[src]
	if !ok {
		return nil, dfs.ErrNotExist
	}
	if e.isDir {
		return nil, dfs.ErrIsDir
	}
	if d, ok := nn.entries[dst]; ok && d.isDir {
		return nil, dfs.ErrIsDir
	}
	if err := nn.mkdirAllLocked(dfs.Parent(dst)); err != nil {
		return nil, err
	}
	delete(nn.entries, src)
	nn.entries[dst] = e
	return nil, nil
}

func (nn *Namenode) handleDelete(r *wire.Reader) (wire.Marshaler, error) {
	var req dfs.PathReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	path, err := dfs.CleanPath(req.Path)
	if err != nil {
		return nil, err
	}
	if path == "/" {
		return nil, dfs.ErrInvalidPath
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	e, ok := nn.entries[path]
	if !ok {
		return nil, dfs.ErrNotExist
	}
	if e.isDir {
		prefix := path + "/"
		for p := range nn.entries {
			if strings.HasPrefix(p, prefix) {
				return nil, dfs.ErrNotEmpty
			}
		}
	}
	for _, id := range e.blocks {
		delete(nn.blockLocs, id)
	}
	delete(nn.entries, path)
	return nil, nil
}

func (nn *Namenode) handleMkdir(r *wire.Reader) (wire.Marshaler, error) {
	var req dfs.PathReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	path, err := dfs.CleanPath(req.Path)
	if err != nil {
		return nil, err
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	return nil, nn.mkdirAllLocked(path)
}

// handleEntries counts namespace entries PLUS block records: the
// namenode keeps the whole block map in memory, so every block of
// every small file weighs on it — the file-count problem.
func (nn *Namenode) handleEntries(r *wire.Reader) (wire.Marshaler, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	count := uint64(len(nn.entries))
	for _, e := range nn.entries {
		count += uint64(len(e.blocks))
	}
	return &dfs.CountResp{Count: count}, nil
}
