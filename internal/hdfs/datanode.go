package hdfs

import (
	"blobseer/internal/pagestore"
	"blobseer/internal/rpc"
	"blobseer/internal/transport"
	"blobseer/internal/wire"
)

// Datanode stores chunks. The storage engine is the same pluggable
// pagestore the BlobSeer providers use, so the two systems' storage
// costs are comparable in experiments.
type Datanode struct {
	srv   *rpc.Server
	store pagestore.Store
}

// NewDatanode starts a datanode at addr over the given store.
func NewDatanode(net transport.Network, addr transport.Addr, store pagestore.Store) (*Datanode, error) {
	srv, err := rpc.NewServer(net, addr)
	if err != nil {
		return nil, err
	}
	d := &Datanode{srv: srv, store: store}
	srv.Handle(DNPutBlock, d.handlePutBlock)
	srv.Handle(DNGetBlock, d.handleGetBlock)
	srv.Handle(DNStats, d.handleStats)
	return d, nil
}

// Addr returns the datanode endpoint.
func (d *Datanode) Addr() transport.Addr { return d.srv.Addr() }

// Store exposes the underlying block store.
func (d *Datanode) Store() pagestore.Store { return d.store }

// Close stops the datanode.
func (d *Datanode) Close() error {
	err := d.srv.Close()
	if cerr := d.store.Close(); err == nil {
		err = cerr
	}
	return err
}

func blockKey(id uint64) pagestore.Key { return pagestore.Key{Blob: id} }

func (d *Datanode) handlePutBlock(r *wire.Reader) (wire.Marshaler, error) {
	var req PutBlockReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	if err := d.store.Put(blockKey(req.ID), req.Data); err != nil {
		return nil, err
	}
	return nil, nil
}

func (d *Datanode) handleGetBlock(r *wire.Reader) (wire.Marshaler, error) {
	var req BlockRef
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	data, err := d.store.Get(blockKey(req.ID))
	if err != nil {
		return nil, err
	}
	return &BlockDataResp{Data: data}, nil
}

func (d *Datanode) handleStats(r *wire.Reader) (wire.Marshaler, error) {
	return &wire.CountPair{A: uint64(d.store.Len()), B: uint64(d.store.BytesUsed())}, nil
}
