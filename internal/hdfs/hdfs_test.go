package hdfs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"blobseer/internal/dfs"
	"blobseer/internal/transport"
)

var ctx = context.Background()

func newCluster(t *testing.T, cfg ClusterConfig) *Cluster {
	t.Helper()
	c, err := NewCluster(transport.NewMemNet(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func mountFS(t *testing.T, c *Cluster, host string, bs uint64) *FS {
	t.Helper()
	fs := c.Mount(host, bs)
	t.Cleanup(func() { fs.Close() })
	return fs
}

func pattern(tag byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(int(tag)*41 + i*13)
	}
	return out
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := newCluster(t, ClusterConfig{Datanodes: 4})
	fs := mountFS(t, c, "cli", 1024)
	data := pattern(1, 5000)
	if err := dfs.WriteFile(ctx, fs, "/in/file.txt", data); err != nil {
		t.Fatal(err)
	}
	got, err := dfs.ReadAll(ctx, fs, "/in/file.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("content mismatch")
	}
	fi, err := fs.Stat(ctx, "/in/file.txt")
	if err != nil || fi.Size != 5000 || fi.Blocks != 5 {
		t.Fatalf("Stat = %+v, %v", fi, err)
	}
}

func TestAppendRejected(t *testing.T) {
	// The paper's premise: HDFS cannot append.
	c := newCluster(t, ClusterConfig{Datanodes: 2})
	fs := mountFS(t, c, "cli", 512)
	if err := dfs.WriteFile(ctx, fs, "/f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Append(ctx, "/f"); !errors.Is(err, dfs.ErrAppendNotSupported) {
		t.Fatalf("Append = %v, want ErrAppendNotSupported", err)
	}
}

func TestWriteOnceSemantics(t *testing.T) {
	c := newCluster(t, ClusterConfig{Datanodes: 2})
	fs := mountFS(t, c, "cli", 512)
	if err := dfs.WriteFile(ctx, fs, "/f", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Re-creating an existing file fails.
	if _, err := fs.Create(ctx, "/f"); !errors.Is(err, dfs.ErrExists) {
		t.Errorf("re-create: %v", err)
	}
}

func TestUnderConstructionInvisible(t *testing.T) {
	c := newCluster(t, ClusterConfig{Datanodes: 2})
	fs := mountFS(t, c, "cli", 512)
	w, err := fs.Create(ctx, "/wip")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(pattern(1, 600)); err != nil {
		t.Fatal(err)
	}
	// Not yet closed: reads must fail (§2.2: visible only after close).
	if _, err := fs.Open(ctx, "/wip"); !errors.Is(err, dfs.ErrUnderConstruction) {
		t.Errorf("open under-construction: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := dfs.ReadAll(ctx, fs, "/wip")
	if err != nil || !bytes.Equal(got, pattern(1, 600)) {
		t.Fatalf("after close: %v", err)
	}
}

func TestConcurrentWritersSeparateFiles(t *testing.T) {
	// The original-Hadoop pattern: each writer creates its own part
	// file ("concurrent writes to different files", §4.3).
	c := newCluster(t, ClusterConfig{Datanodes: 4})
	const writers = 8
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fs := c.Mount(fmt.Sprintf("host-%d", i), 256)
			defer fs.Close()
			path := fmt.Sprintf("/out/part-%05d", i)
			if err := dfs.WriteFile(ctx, fs, path, pattern(byte(i+1), 700)); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	fs := mountFS(t, c, "reader", 256)
	infos, err := fs.List(ctx, "/out")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != writers {
		t.Fatalf("List = %d entries", len(infos))
	}
	for i := 0; i < writers; i++ {
		got, err := dfs.ReadAll(ctx, fs, fmt.Sprintf("/out/part-%05d", i))
		if err != nil || !bytes.Equal(got, pattern(byte(i+1), 700)) {
			t.Fatalf("part %d: %v", i, err)
		}
	}
}

func TestRenameCommit(t *testing.T) {
	// The Hadoop output-committer dance: write temp, rename to final.
	c := newCluster(t, ClusterConfig{Datanodes: 2})
	fs := mountFS(t, c, "cli", 256)
	if err := dfs.WriteFile(ctx, fs, "/tmp/_attempt0/part-0", pattern(2, 300)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(ctx, "/tmp/_attempt0/part-0", "/out/part-0"); err != nil {
		t.Fatal(err)
	}
	got, err := dfs.ReadAll(ctx, fs, "/out/part-0")
	if err != nil || !bytes.Equal(got, pattern(2, 300)) {
		t.Fatalf("renamed file: %v", err)
	}
}

func TestBlockLocationsAndPlacement(t *testing.T) {
	c := newCluster(t, ClusterConfig{Datanodes: 4, Seed: 7})
	fs := mountFS(t, c, "cli", 256)
	if err := dfs.WriteFile(ctx, fs, "/f", pattern(1, 256*8)); err != nil {
		t.Fatal(err)
	}
	locs, err := fs.BlockLocations(ctx, "/f", 0, 256*8)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 8 {
		t.Fatalf("got %d blocks", len(locs))
	}
	hosts := map[string]bool{}
	for _, l := range locs {
		if len(l.Hosts) != 1 {
			t.Fatalf("replicas = %d, want 1", len(l.Hosts))
		}
		hosts[l.Hosts[0]] = true
	}
	if len(hosts) < 2 {
		t.Errorf("random placement used only %d hosts", len(hosts))
	}
}

func TestReplicationSurvivesDatanodeLoss(t *testing.T) {
	c := newCluster(t, ClusterConfig{Datanodes: 4, Replicas: 2})
	fs := mountFS(t, c, "cli", 256)
	data := pattern(3, 256*6)
	if err := dfs.WriteFile(ctx, fs, "/f", data); err != nil {
		t.Fatal(err)
	}
	c.Datanodes[0].Close()
	got, err := dfs.ReadAll(ctx, fs, "/f")
	if err != nil {
		t.Fatalf("read after datanode loss: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("content mismatch after datanode loss")
	}
}

func TestMetadataEntriesCountBlocks(t *testing.T) {
	// The file-count problem made measurable: every block adds a
	// namenode record.
	c := newCluster(t, ClusterConfig{Datanodes: 2})
	fs := mountFS(t, c, "cli", 256)
	base, err := fs.MetadataEntries(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := dfs.WriteFile(ctx, fs, "/big/f", pattern(1, 256*10)); err != nil {
		t.Fatal(err)
	}
	after, err := fs.MetadataEntries(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// dir + file + 10 block records.
	if after-base != 12 {
		t.Errorf("entries grew by %d, want 12", after-base)
	}
}

func TestReadAtAcrossBlocks(t *testing.T) {
	c := newCluster(t, ClusterConfig{Datanodes: 3})
	fs := mountFS(t, c, "cli", 256)
	data := pattern(5, 1000)
	if err := dfs.WriteFile(ctx, fs, "/f", data); err != nil {
		t.Fatal(err)
	}
	r, err := fs.Open(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 400)
	if _, err := r.ReadAt(buf, 200); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[200:600]) {
		t.Fatal("ReadAt across blocks mismatch")
	}
	n, err := r.ReadAt(buf, 900)
	if n != 100 || err != io.EOF {
		t.Errorf("tail ReadAt = %d, %v", n, err)
	}
}

func TestStreamingCopy(t *testing.T) {
	c := newCluster(t, ClusterConfig{Datanodes: 3})
	fs := mountFS(t, c, "cli", 512)
	data := pattern(6, 40<<10)
	if err := dfs.WriteFile(ctx, fs, "/big", data); err != nil {
		t.Fatal(err)
	}
	r, err := fs.Open(ctx, "/big")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var out bytes.Buffer
	if _, err := io.Copy(&out, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("streamed copy mismatch")
	}
}

func TestDeleteAndList(t *testing.T) {
	c := newCluster(t, ClusterConfig{Datanodes: 2})
	fs := mountFS(t, c, "cli", 256)
	if err := dfs.WriteFile(ctx, fs, "/d/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete(ctx, "/d"); !errors.Is(err, dfs.ErrNotEmpty) {
		t.Errorf("delete non-empty: %v", err)
	}
	if err := fs.Delete(ctx, "/d/f"); err != nil {
		t.Fatal(err)
	}
	infos, err := fs.List(ctx, "/d")
	if err != nil || len(infos) != 0 {
		t.Errorf("List after delete = %v, %v", infos, err)
	}
}

func TestEmptyFile(t *testing.T) {
	c := newCluster(t, ClusterConfig{Datanodes: 2})
	fs := mountFS(t, c, "cli", 256)
	if err := dfs.WriteFile(ctx, fs, "/empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := dfs.ReadAll(ctx, fs, "/empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("ReadAll = %q, %v", got, err)
	}
}
