// Package cache implements the client-side read path of BSFS (§3.2 of
// the paper: the client "prefetches a whole block when the requested
// data is not already cached"): a concurrency-safe, byte-budgeted LRU
// page cache plus an asynchronous readahead scheduler.
//
// The cache is keyed by pagestore.Key — (blob, version, page index) —
// the version-addressed page identity of BlobSeer's versioning model.
// Published pages are immutable (every write creates pages under a
// fresh version), so a cached page never needs invalidation: entries
// leave the cache only under budget pressure. Cached slices are shared
// with every caller and MUST be treated as read-only.
//
// Concurrent requests for the same missing page are de-duplicated
// ("singleflight"): one provider fetch runs, everyone else waits for
// it. This matters under Map/Reduce, where many map tasks on one
// tracker scan the same input BLOB through one shared client.
//
// Readahead is the read-side twin of the write pipeline's WriteDepth:
// a Readahead keeps up to depth pages in flight ahead of a sequential
// reader stream, so page transfer overlaps with the reader's
// consumption instead of serializing behind it.
package cache

import (
	"container/list"
	"context"
	"sync"

	"blobseer/internal/metrics"
	"blobseer/internal/pagestore"
)

// DefaultBudget is the cache byte budget used when New is given 0.
const DefaultBudget = 64 << 20

// Fetch loads one page from its providers on a miss.
type Fetch func(ctx context.Context) ([]byte, error)

// Cache is a byte-budgeted LRU page cache with singleflight miss
// handling. It is safe for concurrent use.
type Cache struct {
	budget int64
	stats  *metrics.ReadStats // never nil

	mu      sync.Mutex
	bytes   int64
	lru     *list.List // front = most recently used; values are *entry
	entries map[pagestore.Key]*list.Element
	flights map[pagestore.Key]*flight
}

type entry struct {
	key  pagestore.Key
	data []byte
}

// flight is one in-progress fetch that concurrent callers share.
type flight struct {
	done chan struct{} // closed when data/err are set
	data []byte
	err  error
	// noCache is set (under Cache.mu) when a purge lands while this
	// fetch is in flight: the result is still handed to waiting callers
	// (the bytes are correct — pages are immutable) but must not be
	// re-inserted behind the purge.
	noCache bool
}

// New returns a cache holding at most budget bytes of page content
// (0 means DefaultBudget). stats may be nil.
func New(budget int64, stats *metrics.ReadStats) *Cache {
	if budget <= 0 {
		budget = DefaultBudget
	}
	if stats == nil {
		stats = &metrics.ReadStats{}
	}
	return &Cache{
		budget:  budget,
		stats:   stats,
		lru:     list.New(),
		entries: make(map[pagestore.Key]*list.Element),
		flights: make(map[pagestore.Key]*flight),
	}
}

// Stats returns the counter set the cache records into.
func (c *Cache) Stats() *metrics.ReadStats { return c.stats }

// Get returns the page for key, fetching it at most once no matter how
// many goroutines ask concurrently. The returned slice is shared and
// read-only. A flight leader's fetch error is returned only to the
// leader itself: joiners retry from the top, collapsing into one fresh
// flight (whose result is cached), so one caller's cancelled context
// neither fails its neighbours nor triggers a thundering herd.
func (c *Cache) Get(ctx context.Context, key pagestore.Key, fetch Fetch) ([]byte, error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.lru.MoveToFront(el)
			data := el.Value.(*entry).data
			c.mu.Unlock()
			c.stats.AddHit()
			return data, nil
		}
		if f, ok := c.flights[key]; ok {
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if f.err == nil {
				c.stats.AddHit()
				return f.data, nil
			}
			// The leader failed (possibly on its own context); retry.
			// Each pass either hits, joins a newer flight, or elects
			// one new leader, and the select above honours this
			// caller's context, so the loop terminates.
			continue
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.mu.Unlock()
		c.stats.AddMiss()

		f.data, f.err = fetch(ctx)
		c.mu.Lock()
		delete(c.flights, key)
		if f.err == nil && !f.noCache {
			c.add(key, f.data)
		}
		c.mu.Unlock()
		close(f.done)
		return f.data, f.err
	}
}

// PurgeVersion drops every cached page of one BLOB version and returns
// the number of entries removed. Garbage collection is the first (and
// only) event that invalidates this cache: published pages are
// immutable, but a collected version's pages are gone from the
// providers, so serving them from cache would mask the deletion.
// In-flight fetches of purged pages are marked so their results are
// not re-inserted behind the purge.
func (c *Cache) PurgeVersion(blob, ver uint64) int {
	return c.purge(func(k pagestore.Key) bool { return k.Blob == blob && k.Version == ver })
}

// PurgeBlob drops every cached page of a whole BLOB (see PurgeVersion).
func (c *Cache) PurgeBlob(blob uint64) int {
	return c.purge(func(k pagestore.Key) bool { return k.Blob == blob })
}

func (c *Cache) purge(match func(pagestore.Key) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for k, el := range c.entries {
		if !match(k) {
			continue
		}
		e := el.Value.(*entry)
		c.lru.Remove(el)
		delete(c.entries, k)
		c.bytes -= int64(len(e.data))
		n++
	}
	for k, f := range c.flights {
		if match(k) {
			f.noCache = true
		}
	}
	return n
}

// Peek returns the cached page without fetching (and without counting
// a hit or miss). Used by tests and budget probes.
func (c *Cache) Peek(key pagestore.Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		return el.Value.(*entry).data, true
	}
	return nil, false
}

// Put inserts or upgrades the page for key outside the singleflight
// path. The client uses it to repair an entry that was cached under a
// narrower length validation (a truncated replica accepted by a prefix
// read) once the full page has been fetched; an entry is only ever
// replaced by strictly more bytes, and page content is immutable, so
// an upgrade never changes bytes a reader already holds.
func (c *Cache) Put(key pagestore.Key, data []byte) {
	c.mu.Lock()
	c.add(key, data)
	c.mu.Unlock()
}

// add inserts (or upgrades to a longer copy) the page and evicts from
// the LRU tail until the budget holds. Pages larger than the whole
// budget are not cached at all. Caller holds c.mu.
func (c *Cache) add(key pagestore.Key, data []byte) {
	size := int64(len(data))
	if size > c.budget {
		return
	}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry)
		if len(data) <= len(e.data) {
			// Raced with another path that already cached it (re-put
			// of an identical immutable page); keep the existing entry.
			c.lru.MoveToFront(el)
			return
		}
		c.bytes += size - int64(len(e.data))
		e.data = data
		c.lru.MoveToFront(el)
		c.evictLocked()
		return
	}
	c.entries[key] = c.lru.PushFront(&entry{key: key, data: data})
	c.bytes += size
	c.evictLocked()
}

// evictLocked drops LRU-tail entries until the budget holds. Caller
// holds c.mu.
func (c *Cache) evictLocked() {
	for c.bytes > c.budget {
		back := c.lru.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.entries, ev.key)
		c.bytes -= int64(len(ev.data))
		c.stats.AddEviction()
	}
}

// Len returns the number of cached pages.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the cached byte total.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Budget returns the configured byte budget.
func (c *Cache) Budget() int64 { return c.budget }
