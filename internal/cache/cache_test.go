package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"blobseer/internal/metrics"
	"blobseer/internal/pagestore"
)

var ctx = context.Background()

func key(i uint64) pagestore.Key { return pagestore.Key{Blob: 1, Version: 1, Index: i} }

func page(i uint64, n int) []byte {
	out := make([]byte, n)
	for j := range out {
		out[j] = byte(i*31 + uint64(j)*7)
	}
	return out
}

func TestGetCachesAndCounts(t *testing.T) {
	stats := &metrics.ReadStats{}
	c := New(1<<20, stats)
	var fetches atomic.Int64
	fetch := func(context.Context) ([]byte, error) {
		fetches.Add(1)
		return page(3, 100), nil
	}
	for i := 0; i < 5; i++ {
		got, err := c.Get(ctx, key(3), fetch)
		if err != nil || len(got) != 100 {
			t.Fatalf("Get = %d bytes, %v", len(got), err)
		}
	}
	if n := fetches.Load(); n != 1 {
		t.Errorf("fetches = %d, want 1", n)
	}
	snap := stats.Snapshot()
	if snap.Misses != 1 || snap.Hits != 4 {
		t.Errorf("hits/misses = %d/%d, want 4/1", snap.Hits, snap.Misses)
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	stats := &metrics.ReadStats{}
	c := New(300, stats) // holds 3 x 100-byte pages
	fetchFor := func(i uint64) Fetch {
		return func(context.Context) ([]byte, error) { return page(i, 100), nil }
	}
	for i := uint64(0); i < 4; i++ {
		if _, err := c.Get(ctx, key(i), fetchFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Page 0 is the LRU victim of inserting page 3.
	if _, ok := c.Peek(key(0)); ok {
		t.Error("page 0 still cached, want evicted")
	}
	for i := uint64(1); i < 4; i++ {
		if _, ok := c.Peek(key(i)); !ok {
			t.Errorf("page %d not cached", i)
		}
	}
	if got := c.Bytes(); got != 300 {
		t.Errorf("Bytes = %d, want 300", got)
	}
	if snap := stats.Snapshot(); snap.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", snap.Evictions)
	}

	// Touching page 1 protects it from the next eviction.
	if _, err := c.Get(ctx, key(1), fetchFor(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, key(4), fetchFor(4)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Peek(key(1)); !ok {
		t.Error("recently used page 1 evicted")
	}
	if _, ok := c.Peek(key(2)); ok {
		t.Error("page 2 still cached, want evicted")
	}
}

func TestPutUpgradesEntry(t *testing.T) {
	c := New(1000, nil)
	short := func(context.Context) ([]byte, error) { return page(2, 40), nil }
	if _, err := c.Get(ctx, key(2), short); err != nil {
		t.Fatal(err)
	}
	// Upgrading replaces the entry and fixes the byte accounting.
	c.Put(key(2), page(2, 128))
	got, ok := c.Peek(key(2))
	if !ok || len(got) != 128 {
		t.Fatalf("after upgrade: %d bytes cached, want 128", len(got))
	}
	if c.Bytes() != 128 {
		t.Errorf("Bytes = %d, want 128", c.Bytes())
	}
	// A shorter Put never downgrades.
	c.Put(key(2), page(2, 64))
	if got, _ := c.Peek(key(2)); len(got) != 128 {
		t.Errorf("downgraded to %d bytes, want 128 kept", len(got))
	}
	if c.Bytes() != 128 {
		t.Errorf("Bytes = %d after no-op Put, want 128", c.Bytes())
	}
}

func TestOversizedPageNotCached(t *testing.T) {
	c := New(100, nil)
	big := func(context.Context) ([]byte, error) { return page(9, 200), nil }
	got, err := c.Get(ctx, key(9), big)
	if err != nil || len(got) != 200 {
		t.Fatalf("Get = %d bytes, %v", len(got), err)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Errorf("cache holds %d pages / %d bytes, want empty", c.Len(), c.Bytes())
	}
}

func TestSingleflightDeduplicates(t *testing.T) {
	stats := &metrics.ReadStats{}
	c := New(1<<20, stats)
	var fetches atomic.Int64
	release := make(chan struct{})
	fetch := func(context.Context) ([]byte, error) {
		fetches.Add(1)
		<-release
		return page(7, 64), nil
	}
	const readers = 16
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := c.Get(ctx, key(7), fetch)
			if err == nil && len(got) != 64 {
				err = fmt.Errorf("got %d bytes", len(got))
			}
			errs <- err
		}()
	}
	// Let every goroutine reach the cache before the fetch completes.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if n := fetches.Load(); n != 1 {
		t.Errorf("fetches = %d, want 1 (singleflight)", n)
	}
	snap := stats.Snapshot()
	if snap.Misses != 1 || snap.Hits != readers-1 {
		t.Errorf("hits/misses = %d/%d, want %d/1", snap.Hits, snap.Misses, readers-1)
	}
}

func TestFailedFlightDoesNotPoisonJoiners(t *testing.T) {
	c := New(1<<20, nil)
	bad := errors.New("leader failed")
	started := make(chan struct{})
	release := make(chan struct{})
	leaderFetch := func(context.Context) ([]byte, error) {
		close(started)
		<-release
		return nil, bad
	}
	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.Get(ctx, key(5), leaderFetch)
		leaderErr <- err
	}()
	<-started
	joinDone := make(chan error, 1)
	go func() {
		// The joiner's retry fetch succeeds after the leader's failure.
		_, err := c.Get(ctx, key(5), func(context.Context) ([]byte, error) {
			return page(5, 32), nil
		})
		joinDone <- err
	}()
	// Give the joiner time to attach to the flight, then fail it.
	time.Sleep(10 * time.Millisecond)
	close(release)
	if err := <-leaderErr; !errors.Is(err, bad) {
		t.Fatalf("leader err = %v, want %v", err, bad)
	}
	if err := <-joinDone; err != nil {
		t.Fatalf("joiner err = %v, want nil (retry as fresh flight)", err)
	}
	// The retry's result must have landed in the cache.
	if _, ok := c.Peek(key(5)); !ok {
		t.Error("joiner's successful retry was not cached")
	}
}

func TestGetHonoursContextWhileWaiting(t *testing.T) {
	c := New(1<<20, nil)
	started := make(chan struct{})
	block := make(chan struct{})
	go c.Get(ctx, key(8), func(context.Context) ([]byte, error) {
		close(started)
		<-block
		return page(8, 16), nil
	})
	<-started
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	_, err := c.Get(cctx, key(8), func(context.Context) ([]byte, error) {
		t.Error("joiner fetch ran despite cancelled context")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(block)
}

func TestConcurrentMixedWorkload(t *testing.T) {
	// Hammer a small cache from many goroutines with overlapping keys:
	// the -race CI job turns this into the cache's race check.
	stats := &metrics.ReadStats{}
	c := New(32*64, stats)
	const workers, pages, rounds = 8, 64, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := uint64((w*13 + r) % pages)
				got, err := c.Get(ctx, key(i), func(context.Context) ([]byte, error) {
					return page(i, 64), nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				want := page(i, 64)
				if got[0] != want[0] || got[63] != want[63] {
					t.Errorf("page %d content mismatch", i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Bytes(); got > c.Budget() {
		t.Errorf("Bytes = %d over budget %d", got, c.Budget())
	}
	snap := stats.Snapshot()
	if snap.Hits+snap.Misses != workers*rounds {
		t.Errorf("hits+misses = %d, want %d", snap.Hits+snap.Misses, workers*rounds)
	}
}

func TestReadaheadSchedulesWindow(t *testing.T) {
	var mu sync.Mutex
	fetched := map[uint64]int{}
	done := make(chan uint64, 64)
	stats := &metrics.ReadStats{}
	ra := NewReadahead(ctx, 4, stats, func(_ context.Context, p uint64) {
		mu.Lock()
		fetched[p]++
		mu.Unlock()
		done <- p
	})
	defer ra.Close()

	ra.Observe(0, 100)
	for i := 0; i < 4; i++ {
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatal("timed out waiting for readahead fetches")
		}
	}
	mu.Lock()
	for p := uint64(1); p <= 4; p++ {
		if fetched[p] != 1 {
			t.Errorf("page %d fetched %d times, want 1", p, fetched[p])
		}
	}
	mu.Unlock()

	// Advancing by one page schedules exactly the one new page.
	ra.Observe(1, 100)
	select {
	case p := <-done:
		if p != 5 {
			t.Errorf("next readahead = page %d, want 5", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for incremental readahead")
	}
	mu.Lock()
	for p, n := range fetched {
		if n != 1 {
			t.Errorf("page %d fetched %d times, want 1", p, n)
		}
	}
	mu.Unlock()
	if snap := stats.Snapshot(); snap.Readahead != 5 {
		t.Errorf("readahead counter = %d, want 5", snap.Readahead)
	}
}

func TestReadaheadRespectsLimit(t *testing.T) {
	done := make(chan uint64, 16)
	ra := NewReadahead(ctx, 8, nil, func(_ context.Context, p uint64) { done <- p })
	defer ra.Close()
	ra.Observe(2, 4) // only page 3 exists ahead
	select {
	case p := <-done:
		if p != 3 {
			t.Errorf("fetched page %d, want 3", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timed out")
	}
	ra.Observe(3, 4) // at the end: nothing to schedule
	select {
	case p := <-done:
		t.Errorf("unexpected fetch of page %d past the limit", p)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestReadaheadCloseCancelsAndDrains(t *testing.T) {
	entered := make(chan struct{}, 8)
	var cancelled atomic.Int64
	ra := NewReadahead(ctx, 2, nil, func(fctx context.Context, p uint64) {
		entered <- struct{}{}
		<-fctx.Done()
		cancelled.Add(1)
	})
	ra.Observe(0, 100)
	<-entered
	<-entered
	fin := make(chan struct{})
	go func() { ra.Close(); close(fin) }()
	select {
	case <-fin:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not drain in-flight fetches")
	}
	if n := cancelled.Load(); n != 2 {
		t.Errorf("cancelled fetches = %d, want 2", n)
	}
	ra.Observe(5, 100) // after Close: must be a no-op, not a panic
	ra.Close()         // idempotent
}

func TestReadaheadNeverBlocksReader(t *testing.T) {
	block := make(chan struct{})
	ra := NewReadahead(ctx, 2, nil, func(context.Context, uint64) { <-block })
	defer ra.Close()
	defer close(block) // unblock fetches before the deferred Close drains them
	fin := make(chan struct{})
	go func() {
		// Both slots fill and stay busy; further Observes must return
		// immediately anyway.
		for i := uint64(0); i < 20; i++ {
			ra.Observe(i, 1000)
		}
		close(fin)
	}()
	select {
	case <-fin:
	case <-time.After(2 * time.Second):
		t.Fatal("Observe blocked on a saturated readahead window")
	}
}

func TestNilReadaheadIsDisabled(t *testing.T) {
	ra := NewReadahead(ctx, 0, nil, func(context.Context, uint64) {
		t.Error("fetch ran on disabled readahead")
	})
	if ra != nil {
		t.Fatal("depth 0 should return nil")
	}
	ra.Observe(0, 10)
	ra.Close()
}

// TestPurgeVersionAndBlob: the garbage collector's invalidation path
// removes exactly the targeted version's (or BLOB's) entries, returns
// the count, and releases their bytes.
func TestPurgeVersionAndBlob(t *testing.T) {
	c := New(1<<20, nil)
	put := func(blob, ver, idx uint64) {
		k := pagestore.Key{Blob: blob, Version: ver, Index: idx}
		if _, err := c.Get(ctx, k, func(context.Context) ([]byte, error) {
			return page(idx, 128), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 3; i++ {
		put(1, 1, i)
		put(1, 2, i)
		put(2, 1, i)
	}
	if n := c.PurgeVersion(1, 1); n != 3 {
		t.Fatalf("PurgeVersion removed %d, want 3", n)
	}
	if _, ok := c.Peek(pagestore.Key{Blob: 1, Version: 1, Index: 0}); ok {
		t.Fatal("purged entry still cached")
	}
	if _, ok := c.Peek(pagestore.Key{Blob: 1, Version: 2, Index: 0}); !ok {
		t.Fatal("sibling version was purged")
	}
	if n := c.PurgeBlob(1); n != 3 {
		t.Fatalf("PurgeBlob removed %d, want the remaining 3", n)
	}
	if _, ok := c.Peek(pagestore.Key{Blob: 2, Version: 1, Index: 0}); !ok {
		t.Fatal("other blob was purged")
	}
	if got, want := c.Bytes(), int64(3*128); got != want {
		t.Fatalf("bytes after purges = %d, want %d", got, want)
	}
}

// TestPurgeMarksInFlightFetches: a purge landing while a fetch is in
// flight must keep that fetch's result out of the cache — the waiting
// callers still get the (correct, immutable) bytes, but nothing is
// re-inserted behind the purge.
func TestPurgeMarksInFlightFetches(t *testing.T) {
	c := New(1<<20, nil)
	k := key(7)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan []byte, 1)
	go func() {
		data, err := c.Get(ctx, k, func(context.Context) ([]byte, error) {
			close(started)
			<-release
			return page(7, 64), nil
		})
		if err != nil {
			t.Error(err)
		}
		done <- data
	}()
	<-started
	c.PurgeVersion(k.Blob, k.Version) // lands mid-flight
	close(release)
	if data := <-done; len(data) != 64 {
		t.Fatalf("in-flight caller got %d bytes", len(data))
	}
	if _, ok := c.Peek(k); ok {
		t.Fatal("purged in-flight fetch was cached anyway")
	}
}
