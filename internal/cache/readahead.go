package cache

import (
	"context"
	"sync"

	"blobseer/internal/metrics"
)

// Readahead keeps up to depth page fetches in flight ahead of one
// sequential reader stream. The reader calls Observe after consuming a
// page; Readahead schedules asynchronous fetches of the pages just
// ahead of it, bounded by the stream length, never blocking the
// reader: when all depth slots are busy, scheduling simply stops until
// a fetch finishes.
//
// The fetch callback is expected to warm a shared Cache (its result is
// discarded), so the reader's next synchronous access hits the cache
// instead of a provider. Fetches run on ctx; Close cancels it and
// waits for in-flight fetches to drain, so a closed reader stops
// consuming cache budget and provider bandwidth.
type Readahead struct {
	depth  int
	fetch  func(ctx context.Context, page uint64)
	stats  *metrics.ReadStats // never nil
	ctx    context.Context
	cancel context.CancelFunc
	sem    chan struct{}
	wg     sync.WaitGroup

	mu     sync.Mutex
	next   uint64 // lowest page not yet scheduled
	primed bool   // next is meaningful (first Observe happened)
	closed bool
}

// NewReadahead returns a scheduler running fetches on ctx. depth <= 0
// returns nil, which every method accepts as "readahead disabled".
// stats may be nil.
func NewReadahead(ctx context.Context, depth int, stats *metrics.ReadStats, fetch func(ctx context.Context, page uint64)) *Readahead {
	if depth <= 0 {
		return nil
	}
	if stats == nil {
		stats = &metrics.ReadStats{}
	}
	rctx, cancel := context.WithCancel(ctx)
	return &Readahead{
		depth:  depth,
		fetch:  fetch,
		stats:  stats,
		ctx:    rctx,
		cancel: cancel,
		sem:    make(chan struct{}, depth),
	}
}

// Observe tells the scheduler the reader just accessed page; limit is
// the stream's page count (pages >= limit are never scheduled). It
// schedules fetches for the unscheduled pages in (page, page+depth],
// skipping pages already covered by a previous call, and returns
// without blocking. Backward seeks re-read already-fetched territory
// and schedule nothing new until the reader passes its high-water mark
// again.
func (r *Readahead) Observe(page, limit uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	from := page + 1
	if r.primed && r.next > from {
		from = r.next
	}
	end := page + 1 + uint64(r.depth)
	if end > limit {
		end = limit
	}
	r.primed = true
	if from > r.next {
		r.next = from
	}
	for p := from; p < end; p++ {
		select {
		case r.sem <- struct{}{}:
		default:
			// All depth slots busy; leave the rest for the next
			// Observe rather than blocking the reader.
			r.next = p
			r.mu.Unlock()
			return
		}
		r.next = p + 1
		r.wg.Add(1)
		r.stats.AddReadahead(1)
		go func(p uint64) {
			defer r.wg.Done()
			defer func() { <-r.sem }()
			r.fetch(r.ctx, p)
		}(p)
	}
	r.mu.Unlock()
}

// Close cancels outstanding fetches and waits for them to return. It
// is idempotent and safe on a nil Readahead.
func (r *Readahead) Close() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	r.cancel()
	r.wg.Wait()
}
