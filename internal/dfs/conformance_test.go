package dfs_test

// Conformance battery: the same behavioural tests run against every
// dfs.FileSystem backend (BSFS and HDFS), pinning down the semantics
// the Map/Reduce framework relies on — and the one deliberate
// divergence, append support.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"testing"

	"blobseer/internal/blob"
	"blobseer/internal/bsfs"
	"blobseer/internal/dfs"
	"blobseer/internal/hdfs"
	"blobseer/internal/transport"
)

var ctx = context.Background()

const confBlock = 1 << 10

// backend describes one FS under test.
type backend struct {
	name          string
	appendSupport bool
	mk            func(t *testing.T) dfs.FileSystem
}

func backends() []backend {
	return []backend{
		{
			name:          "bsfs",
			appendSupport: true,
			mk: func(t *testing.T) dfs.FileSystem {
				cluster, err := blob.NewCluster(transport.NewMemNet(), blob.ClusterConfig{
					Providers: 4, MetaProviders: 2,
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { cluster.Close() })
				d, err := bsfs.Deploy(cluster, confBlock)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { d.Close() })
				fs := d.Mount("conf-cli")
				t.Cleanup(func() { fs.Close() })
				return fs
			},
		},
		{
			name:          "hdfs",
			appendSupport: false,
			mk: func(t *testing.T) dfs.FileSystem {
				cluster, err := hdfs.NewCluster(transport.NewMemNet(), hdfs.ClusterConfig{Datanodes: 4})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { cluster.Close() })
				fs := cluster.Mount("conf-cli", confBlock)
				t.Cleanup(func() { fs.Close() })
				return fs
			},
		},
	}
}

// forEachBackend runs fn once per backend.
func forEachBackend(t *testing.T, fn func(t *testing.T, b backend, fs dfs.FileSystem)) {
	for _, b := range backends() {
		b := b
		t.Run(b.name, func(t *testing.T) {
			fn(t, b, b.mk(t))
		})
	}
}

func confPattern(tag byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(int(tag)*53 + i*17)
	}
	return out
}

func TestConformanceRoundTrip(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b backend, fs dfs.FileSystem) {
		for _, size := range []int{0, 1, confBlock - 1, confBlock, confBlock + 1, 5 * confBlock, 5*confBlock + 100} {
			path := fmt.Sprintf("/rt/size-%d", size)
			data := confPattern(byte(size%250), size)
			if err := dfs.WriteFile(ctx, fs, path, data); err != nil {
				t.Fatalf("write %d: %v", size, err)
			}
			got, err := dfs.ReadAll(ctx, fs, path)
			if err != nil {
				t.Fatalf("read %d: %v", size, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("round trip %d bytes: mismatch", size)
			}
			fi, err := fs.Stat(ctx, path)
			if err != nil || fi.Size != uint64(size) {
				t.Fatalf("stat %d: %+v, %v", size, fi, err)
			}
		}
	})
}

func TestConformanceNamespace(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b backend, fs dfs.FileSystem) {
		// Implicit parents.
		if err := dfs.WriteFile(ctx, fs, "/a/b/c/file", []byte("x")); err != nil {
			t.Fatal(err)
		}
		fi, err := fs.Stat(ctx, "/a/b")
		if err != nil || !fi.IsDir {
			t.Fatalf("implicit parent: %+v, %v", fi, err)
		}
		// Create over a directory fails.
		if _, err := fs.Create(ctx, "/a/b"); err == nil {
			t.Error("create over directory succeeded")
		}
		// File as path component fails.
		if err := dfs.WriteFile(ctx, fs, "/a/b/c/file/sub", []byte("y")); err == nil {
			t.Error("file used as directory")
		}
		// Duplicate create fails.
		if _, err := fs.Create(ctx, "/a/b/c/file"); !errors.Is(err, dfs.ErrExists) {
			t.Errorf("duplicate create: %v", err)
		}
		// List ordering is lexicographic.
		for _, n := range []string{"/a/z", "/a/m", "/a/k"} {
			if err := dfs.WriteFile(ctx, fs, n, nil); err != nil {
				t.Fatal(err)
			}
		}
		infos, err := fs.List(ctx, "/a")
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, fi := range infos {
			names = append(names, fi.Path)
		}
		want := []string{"/a/b", "/a/k", "/a/m", "/a/z"}
		if len(names) != len(want) {
			t.Fatalf("list = %v", names)
		}
		for i := range want {
			if names[i] != want[i] {
				t.Fatalf("list order = %v", names)
			}
		}
	})
}

func TestConformanceRenameSemantics(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b backend, fs dfs.FileSystem) {
		if err := dfs.WriteFile(ctx, fs, "/src", confPattern(1, 100)); err != nil {
			t.Fatal(err)
		}
		// Rename into a new implicit directory.
		if err := fs.Rename(ctx, "/src", "/deep/dst"); err != nil {
			t.Fatal(err)
		}
		got, err := dfs.ReadAll(ctx, fs, "/deep/dst")
		if err != nil || !bytes.Equal(got, confPattern(1, 100)) {
			t.Fatalf("after rename: %v", err)
		}
		// Rename replaces an existing destination (committer semantics).
		if err := dfs.WriteFile(ctx, fs, "/v2", confPattern(2, 50)); err != nil {
			t.Fatal(err)
		}
		if err := fs.Rename(ctx, "/v2", "/deep/dst"); err != nil {
			t.Fatal(err)
		}
		got, err = dfs.ReadAll(ctx, fs, "/deep/dst")
		if err != nil || !bytes.Equal(got, confPattern(2, 50)) {
			t.Fatalf("replace rename: %v", err)
		}
		// Renaming a directory is rejected.
		if err := fs.Mkdir(ctx, "/dir"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Rename(ctx, "/dir", "/dir2"); !errors.Is(err, dfs.ErrIsDir) {
			t.Errorf("dir rename: %v", err)
		}
	})
}

func TestConformanceAppendDivergence(t *testing.T) {
	// The paper's point, as a conformance case: the interface exposes
	// Append everywhere, but only BSFS implements it.
	forEachBackend(t, func(t *testing.T, b backend, fs dfs.FileSystem) {
		if err := dfs.WriteFile(ctx, fs, "/log", []byte("one\n")); err != nil {
			t.Fatal(err)
		}
		w, err := fs.Append(ctx, "/log")
		if !b.appendSupport {
			if !errors.Is(err, dfs.ErrAppendNotSupported) {
				t.Fatalf("append on %s: %v", b.name, err)
			}
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write([]byte("two\n")); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := dfs.ReadAll(ctx, fs, "/log")
		if err != nil || string(got) != "one\ntwo\n" {
			t.Fatalf("appended file = %q, %v", got, err)
		}
	})
}

func TestConformanceReaderAt(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b backend, fs dfs.FileSystem) {
		data := confPattern(5, 4*confBlock+77)
		if err := dfs.WriteFile(ctx, fs, "/f", data); err != nil {
			t.Fatal(err)
		}
		f, err := fs.Open(ctx, "/f")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		// Random-access patterns, including block-straddling reads.
		for _, c := range []struct{ off, n int }{
			{0, 10}, {confBlock - 5, 10}, {2*confBlock + 1, 2 * confBlock},
			{len(data) - 3, 3}, {0, len(data)},
		} {
			buf := make([]byte, c.n)
			n, err := f.ReadAt(buf, int64(c.off))
			if err != nil && err != io.EOF {
				t.Fatalf("ReadAt(%d,%d): %v", c.off, c.n, err)
			}
			if !bytes.Equal(buf[:n], data[c.off:c.off+n]) {
				t.Fatalf("ReadAt(%d,%d): mismatch", c.off, c.n)
			}
		}
		// Past-EOF read.
		if _, err := f.ReadAt(make([]byte, 1), int64(len(data))); err != io.EOF {
			t.Errorf("past-EOF ReadAt: %v", err)
		}
	})
}

func TestConformanceBlockLocations(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b backend, fs dfs.FileSystem) {
		data := confPattern(6, 4*confBlock)
		if err := dfs.WriteFile(ctx, fs, "/f", data); err != nil {
			t.Fatal(err)
		}
		locs, err := fs.BlockLocations(ctx, "/f", 0, uint64(len(data)))
		if err != nil {
			t.Fatal(err)
		}
		if len(locs) != 4 {
			t.Fatalf("%d blocks", len(locs))
		}
		var total uint64
		for _, l := range locs {
			if len(l.Hosts) == 0 {
				t.Error("block without hosts")
			}
			total += l.Length
		}
		if total != uint64(len(data)) {
			t.Errorf("coverage = %d", total)
		}
		// Sub-range query returns only overlapping blocks.
		locs, err = fs.BlockLocations(ctx, "/f", confBlock, confBlock)
		if err != nil {
			t.Fatal(err)
		}
		if len(locs) != 1 || locs[0].Offset != confBlock {
			t.Errorf("sub-range locations = %+v", locs)
		}
	})
}

func TestConformanceErrors(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b backend, fs dfs.FileSystem) {
		if _, err := fs.Open(ctx, "/missing"); !errors.Is(err, dfs.ErrNotExist) {
			t.Errorf("open missing: %v", err)
		}
		if _, err := fs.Stat(ctx, "/missing"); !errors.Is(err, dfs.ErrNotExist) {
			t.Errorf("stat missing: %v", err)
		}
		if err := fs.Delete(ctx, "/missing"); !errors.Is(err, dfs.ErrNotExist) {
			t.Errorf("delete missing: %v", err)
		}
		if _, err := fs.List(ctx, "/missing"); !errors.Is(err, dfs.ErrNotExist) {
			t.Errorf("list missing: %v", err)
		}
		if _, err := fs.Open(ctx, "relative/path"); !errors.Is(err, dfs.ErrInvalidPath) {
			t.Errorf("invalid path: %v", err)
		}
	})
}

func TestConformanceSequentialStreaming(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b backend, fs dfs.FileSystem) {
		data := confPattern(7, 10*confBlock+123)
		if err := dfs.WriteFile(ctx, fs, "/big", data); err != nil {
			t.Fatal(err)
		}
		f, err := fs.Open(ctx, "/big")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if f.Size() != uint64(len(data)) {
			t.Fatalf("Size = %d", f.Size())
		}
		var out bytes.Buffer
		n, err := io.CopyBuffer(&out, f, make([]byte, 333)) // odd buffer size
		if err != nil || n != int64(len(data)) {
			t.Fatalf("copy = %d, %v", n, err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatal("stream mismatch")
		}
	})
}
