package dfs_test

// Conformance battery: the same behavioural tests run against every
// dfs.FileSystem backend (BSFS and HDFS), pinning down the semantics
// the Map/Reduce framework relies on — and the one deliberate
// divergence, append support.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"testing"

	"blobseer/internal/blob"
	"blobseer/internal/bsfs"
	"blobseer/internal/dfs"
	"blobseer/internal/hdfs"
	"blobseer/internal/transport"
)

var ctx = context.Background()

const confBlock = 1 << 10

// backend describes one FS under test.
type backend struct {
	name          string
	appendSupport bool
	mk            func(t *testing.T) dfs.FileSystem
}

func backends() []backend {
	return []backend{
		{
			name:          "bsfs",
			appendSupport: true,
			mk: func(t *testing.T) dfs.FileSystem {
				cluster, err := blob.NewCluster(transport.NewMemNet(), blob.ClusterConfig{
					Providers: 4, MetaProviders: 2,
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { cluster.Close() })
				d, err := bsfs.Deploy(cluster, confBlock)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { d.Close() })
				fs := d.Mount("conf-cli")
				t.Cleanup(func() { fs.Close() })
				return fs
			},
		},
		{
			name:          "hdfs",
			appendSupport: false,
			mk: func(t *testing.T) dfs.FileSystem {
				cluster, err := hdfs.NewCluster(transport.NewMemNet(), hdfs.ClusterConfig{Datanodes: 4})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { cluster.Close() })
				fs := cluster.Mount("conf-cli", confBlock)
				t.Cleanup(func() { fs.Close() })
				return fs
			},
		},
	}
}

// forEachBackend runs fn once per backend.
func forEachBackend(t *testing.T, fn func(t *testing.T, b backend, fs dfs.FileSystem)) {
	for _, b := range backends() {
		b := b
		t.Run(b.name, func(t *testing.T) {
			fn(t, b, b.mk(t))
		})
	}
}

func confPattern(tag byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(int(tag)*53 + i*17)
	}
	return out
}

func TestConformanceRoundTrip(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b backend, fs dfs.FileSystem) {
		for _, size := range []int{0, 1, confBlock - 1, confBlock, confBlock + 1, 5 * confBlock, 5*confBlock + 100} {
			path := fmt.Sprintf("/rt/size-%d", size)
			data := confPattern(byte(size%250), size)
			if err := dfs.WriteFile(ctx, fs, path, data); err != nil {
				t.Fatalf("write %d: %v", size, err)
			}
			got, err := dfs.ReadAll(ctx, fs, path)
			if err != nil {
				t.Fatalf("read %d: %v", size, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("round trip %d bytes: mismatch", size)
			}
			fi, err := fs.Stat(ctx, path)
			if err != nil || fi.Size != uint64(size) {
				t.Fatalf("stat %d: %+v, %v", size, fi, err)
			}
		}
	})
}

func TestConformanceNamespace(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b backend, fs dfs.FileSystem) {
		// Implicit parents.
		if err := dfs.WriteFile(ctx, fs, "/a/b/c/file", []byte("x")); err != nil {
			t.Fatal(err)
		}
		fi, err := fs.Stat(ctx, "/a/b")
		if err != nil || !fi.IsDir {
			t.Fatalf("implicit parent: %+v, %v", fi, err)
		}
		// Create over a directory fails.
		if _, err := fs.Create(ctx, "/a/b"); err == nil {
			t.Error("create over directory succeeded")
		}
		// File as path component fails.
		if err := dfs.WriteFile(ctx, fs, "/a/b/c/file/sub", []byte("y")); err == nil {
			t.Error("file used as directory")
		}
		// Duplicate create fails.
		if _, err := fs.Create(ctx, "/a/b/c/file"); !errors.Is(err, dfs.ErrExists) {
			t.Errorf("duplicate create: %v", err)
		}
		// List ordering is lexicographic.
		for _, n := range []string{"/a/z", "/a/m", "/a/k"} {
			if err := dfs.WriteFile(ctx, fs, n, nil); err != nil {
				t.Fatal(err)
			}
		}
		infos, err := fs.List(ctx, "/a")
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, fi := range infos {
			names = append(names, fi.Path)
		}
		want := []string{"/a/b", "/a/k", "/a/m", "/a/z"}
		if len(names) != len(want) {
			t.Fatalf("list = %v", names)
		}
		for i := range want {
			if names[i] != want[i] {
				t.Fatalf("list order = %v", names)
			}
		}
	})
}

func TestConformanceRenameSemantics(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b backend, fs dfs.FileSystem) {
		if err := dfs.WriteFile(ctx, fs, "/src", confPattern(1, 100)); err != nil {
			t.Fatal(err)
		}
		// Rename into a new implicit directory.
		if err := fs.Rename(ctx, "/src", "/deep/dst"); err != nil {
			t.Fatal(err)
		}
		got, err := dfs.ReadAll(ctx, fs, "/deep/dst")
		if err != nil || !bytes.Equal(got, confPattern(1, 100)) {
			t.Fatalf("after rename: %v", err)
		}
		// Rename replaces an existing destination (committer semantics).
		if err := dfs.WriteFile(ctx, fs, "/v2", confPattern(2, 50)); err != nil {
			t.Fatal(err)
		}
		if err := fs.Rename(ctx, "/v2", "/deep/dst"); err != nil {
			t.Fatal(err)
		}
		got, err = dfs.ReadAll(ctx, fs, "/deep/dst")
		if err != nil || !bytes.Equal(got, confPattern(2, 50)) {
			t.Fatalf("replace rename: %v", err)
		}
		// Renaming a directory is rejected.
		if err := fs.Mkdir(ctx, "/dir"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Rename(ctx, "/dir", "/dir2"); !errors.Is(err, dfs.ErrIsDir) {
			t.Errorf("dir rename: %v", err)
		}
	})
}

func TestConformanceAppendDivergence(t *testing.T) {
	// The paper's point, as a conformance case: the interface exposes
	// Append everywhere, but only BSFS implements it.
	forEachBackend(t, func(t *testing.T, b backend, fs dfs.FileSystem) {
		if err := dfs.WriteFile(ctx, fs, "/log", []byte("one\n")); err != nil {
			t.Fatal(err)
		}
		w, err := fs.Append(ctx, "/log")
		if !b.appendSupport {
			if !errors.Is(err, dfs.ErrAppendNotSupported) {
				t.Fatalf("append on %s: %v", b.name, err)
			}
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write([]byte("two\n")); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := dfs.ReadAll(ctx, fs, "/log")
		if err != nil || string(got) != "one\ntwo\n" {
			t.Fatalf("appended file = %q, %v", got, err)
		}
	})
}

func TestConformanceReaderAt(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b backend, fs dfs.FileSystem) {
		data := confPattern(5, 4*confBlock+77)
		if err := dfs.WriteFile(ctx, fs, "/f", data); err != nil {
			t.Fatal(err)
		}
		f, err := fs.Open(ctx, "/f")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		// Random-access patterns, including block-straddling reads.
		for _, c := range []struct{ off, n int }{
			{0, 10}, {confBlock - 5, 10}, {2*confBlock + 1, 2 * confBlock},
			{len(data) - 3, 3}, {0, len(data)},
		} {
			buf := make([]byte, c.n)
			n, err := f.ReadAt(buf, int64(c.off))
			if err != nil && err != io.EOF {
				t.Fatalf("ReadAt(%d,%d): %v", c.off, c.n, err)
			}
			if !bytes.Equal(buf[:n], data[c.off:c.off+n]) {
				t.Fatalf("ReadAt(%d,%d): mismatch", c.off, c.n)
			}
		}
		// Past-EOF read.
		if _, err := f.ReadAt(make([]byte, 1), int64(len(data))); err != io.EOF {
			t.Errorf("past-EOF ReadAt: %v", err)
		}
	})
}

func TestConformanceBlockLocations(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b backend, fs dfs.FileSystem) {
		data := confPattern(6, 4*confBlock)
		if err := dfs.WriteFile(ctx, fs, "/f", data); err != nil {
			t.Fatal(err)
		}
		locs, err := fs.BlockLocations(ctx, "/f", 0, uint64(len(data)))
		if err != nil {
			t.Fatal(err)
		}
		if len(locs) != 4 {
			t.Fatalf("%d blocks", len(locs))
		}
		var total uint64
		for _, l := range locs {
			if len(l.Hosts) == 0 {
				t.Error("block without hosts")
			}
			total += l.Length
		}
		if total != uint64(len(data)) {
			t.Errorf("coverage = %d", total)
		}
		// Sub-range query returns only overlapping blocks.
		locs, err = fs.BlockLocations(ctx, "/f", confBlock, confBlock)
		if err != nil {
			t.Fatal(err)
		}
		if len(locs) != 1 || locs[0].Offset != confBlock {
			t.Errorf("sub-range locations = %+v", locs)
		}
	})
}

func TestConformanceErrors(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b backend, fs dfs.FileSystem) {
		if _, err := fs.Open(ctx, "/missing"); !errors.Is(err, dfs.ErrNotExist) {
			t.Errorf("open missing: %v", err)
		}
		if _, err := fs.Stat(ctx, "/missing"); !errors.Is(err, dfs.ErrNotExist) {
			t.Errorf("stat missing: %v", err)
		}
		if err := fs.Delete(ctx, "/missing"); !errors.Is(err, dfs.ErrNotExist) {
			t.Errorf("delete missing: %v", err)
		}
		if _, err := fs.List(ctx, "/missing"); !errors.Is(err, dfs.ErrNotExist) {
			t.Errorf("list missing: %v", err)
		}
		if _, err := fs.Open(ctx, "relative/path"); !errors.Is(err, dfs.ErrInvalidPath) {
			t.Errorf("invalid path: %v", err)
		}
	})
}

func TestConformanceSequentialStreaming(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b backend, fs dfs.FileSystem) {
		data := confPattern(7, 10*confBlock+123)
		if err := dfs.WriteFile(ctx, fs, "/big", data); err != nil {
			t.Fatal(err)
		}
		f, err := fs.Open(ctx, "/big")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if f.Size() != uint64(len(data)) {
			t.Fatalf("Size = %d", f.Size())
		}
		var out bytes.Buffer
		n, err := io.CopyBuffer(&out, f, make([]byte, 333)) // odd buffer size
		if err != nil || n != int64(len(data)) {
			t.Fatalf("copy = %d, %v", n, err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatal("stream mismatch")
		}
	})
}

func TestConformanceVersioning(t *testing.T) {
	// The snapshot capability, probed the way the framework does it: a
	// type assertion, then calls whose stable answers distinguish a
	// real capability (BSFS) from the rejection sentinel (HDFS).
	forEachBackend(t, func(t *testing.T, b backend, fs dfs.FileSystem) {
		vfs, ok := dfs.AsVersioned(fs)
		if !ok {
			t.Fatalf("%s does not expose dfs.VersionedFileSystem", b.name)
		}
		if err := dfs.WriteFile(ctx, fs, "/v/log", []byte("one\n")); err != nil {
			t.Fatal(err)
		}

		if !b.appendSupport {
			// HDFS: one version axis short — every method answers the
			// stable sentinel, and Stat has no version to report.
			if _, err := vfs.OpenVersion(ctx, "/v/log", 1); !errors.Is(err, dfs.ErrVersionsNotSupported) {
				t.Errorf("OpenVersion: %v", err)
			}
			if _, err := vfs.Versions(ctx, "/v/log"); !errors.Is(err, dfs.ErrVersionsNotSupported) {
				t.Errorf("Versions: %v", err)
			}
			if _, err := vfs.WaitVersion(ctx, "/v/log", 0); !errors.Is(err, dfs.ErrVersionsNotSupported) {
				t.Errorf("WaitVersion: %v", err)
			}
			if _, err := vfs.BlockLocationsAt(ctx, "/v/log", 1, 0, 4); !errors.Is(err, dfs.ErrVersionsNotSupported) {
				t.Errorf("BlockLocationsAt: %v", err)
			}
			// Version 0 — latest, the only version HDFS has — degrades
			// to plain BlockLocations for capability-blind callers.
			if _, err := vfs.BlockLocationsAt(ctx, "/v/log", 0, 0, 4); err != nil {
				t.Errorf("BlockLocationsAt(latest): %v", err)
			}
			fi, err := fs.Stat(ctx, "/v/log")
			if err != nil || fi.Version != 0 {
				t.Errorf("Stat.Version = %d, %v", fi.Version, err)
			}
			// The package-level helpers answer the sentinel for any
			// FileSystem value without the capability.
			if _, err := dfs.OpenVersion(ctx, unversionedOnly{fs}, "/v/log", 1); !errors.Is(err, dfs.ErrVersionsNotSupported) {
				t.Errorf("helper OpenVersion on plain FS: %v", err)
			}
			return
		}

		// BSFS: every append published a snapshot; round-trip them.
		w, err := fs.Append(ctx, "/v/log")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write([]byte("two\n")); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		fi, err := fs.Stat(ctx, "/v/log")
		if err != nil || fi.Version != 2 || fi.Size != 8 {
			t.Fatalf("Stat = %+v, %v", fi, err)
		}
		infos, err := vfs.Versions(ctx, "/v/log")
		if err != nil || len(infos) != 2 {
			t.Fatalf("Versions = %+v, %v", infos, err)
		}
		if infos[0].Version != 1 || infos[0].Size != 4 || infos[1].Version != 2 || infos[1].Size != 8 {
			t.Fatalf("history = %+v", infos)
		}
		r, err := vfs.OpenVersion(ctx, "/v/log", 1)
		if err != nil {
			t.Fatal(err)
		}
		if r.Version() != 1 || r.Size() != 4 {
			t.Errorf("reader: version %d size %d", r.Version(), r.Size())
		}
		buf := make([]byte, 4)
		if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if string(buf) != "one\n" {
			t.Errorf("snapshot 1 = %q", buf)
		}
		// A fixed-version reader never moves: Refresh is a no-op.
		if n, err := r.Refresh(ctx); err != nil || n != 4 {
			t.Errorf("fixed Refresh = %d, %v", n, err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		// WaitVersion returns the first snapshot newer than `after`.
		vi, err := vfs.WaitVersion(ctx, "/v/log", 0)
		if err != nil || vi.Version != 1 {
			t.Errorf("WaitVersion(0) = %+v, %v", vi, err)
		}
		vi, err = vfs.WaitVersion(ctx, "/v/log", 1)
		if err != nil || vi.Version != 2 || vi.Size != 8 {
			t.Errorf("WaitVersion(1) = %+v, %v", vi, err)
		}
		// Locations resolved at the historical snapshot cover exactly
		// its bytes.
		locs, err := vfs.BlockLocationsAt(ctx, "/v/log", 1, 0, 64)
		if err != nil || len(locs) == 0 {
			t.Fatalf("BlockLocationsAt = %+v, %v", locs, err)
		}
		var total uint64
		for _, l := range locs {
			total += l.Length
		}
		if total != 4 {
			t.Errorf("locations at v1 cover %d bytes, want 4", total)
		}
		// A version never published maps to the stable namespace error.
		if _, err := vfs.OpenVersion(ctx, "/v/log", 99); !errors.Is(err, dfs.ErrNotExist) {
			t.Errorf("OpenVersion(99) = %v", err)
		}
	})
}

// unversionedOnly strips the capability interface from a FileSystem so
// the package-level helpers' type-assertion fallback is exercised.
type unversionedOnly struct{ dfs.FileSystem }

func TestConformanceVersionAfterGC(t *testing.T) {
	// BSFS-specific by construction (HDFS has neither versions nor a
	// collector): under RetainLatest(1), an unpinned old snapshot is
	// collected and its versioned open answers the stable
	// dfs.ErrVersionGone — while a reader that pinned the snapshot
	// before collection keeps reading it byte-identically.
	cluster, err := blob.NewCluster(transport.NewMemNet(), blob.ClusterConfig{
		Providers: 4, MetaProviders: 2, Retain: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	d, err := bsfs.Deploy(cluster, confBlock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	fs := d.Mount("conf-gc-cli")
	t.Cleanup(func() { fs.Close() })

	if err := dfs.WriteFile(ctx, fs, "/gc/log", []byte("first state\n")); err != nil {
		t.Fatal(err)
	}
	r1, err := fs.OpenVersion(ctx, "/gc/log", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		w, err := fs.Append(ctx, "/gc/log")
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(w, "growth %d\n", i)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Collector pass with the pin held: v1 must stay readable.
	if _, err := d.GC.RunOnce(ctx); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, r1.Size())
	if _, err := r1.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatalf("pinned snapshot read after GC pass: %v", err)
	}
	if string(buf) != "first state\n" {
		t.Fatalf("pinned snapshot = %q", buf)
	}

	// Pin released: the next pass collects v1 and the versioned open
	// reports it gone with the exported sentinel.
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.GC.RunOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.OpenVersion(ctx, "/gc/log", 1); !errors.Is(err, dfs.ErrVersionGone) {
		t.Fatalf("OpenVersion of collected snapshot = %v, want dfs.ErrVersionGone", err)
	}
	// The retention window shrank to the surviving latest version.
	infos, err := fs.Versions(ctx, "/gc/log")
	if err != nil || len(infos) != 1 || infos[0].Version != 4 {
		t.Fatalf("Versions after GC = %+v, %v", infos, err)
	}
}
