// Package dfs defines the file-system interface shared by the two
// storage backends of the reproduction:
//
//   - bsfs: the paper's BlobSeer File System, which supports concurrent
//     appends to a shared file (§3.2);
//   - hdfs: the write-once-read-many HDFS-like baseline, which rejects
//     appends (§2.2).
//
// The Map/Reduce framework is written against this interface, exactly
// like Hadoop's framework accesses storage "through an interface that
// exposes the basic functions of a file system" — and, as in the paper,
// "the append operation is available in the interface" even though one
// backend refuses it.
package dfs

import (
	"context"
	"errors"
	"io"
	"strings"
)

// Errors shared by all backends. They cross RPC boundaries as message
// text; keep them stable.
var (
	ErrNotExist           = errors.New("dfs: no such file or directory")
	ErrExists             = errors.New("dfs: file exists")
	ErrIsDir              = errors.New("dfs: is a directory")
	ErrNotDir             = errors.New("dfs: not a directory")
	ErrNotEmpty           = errors.New("dfs: directory not empty")
	ErrUnderConstruction  = errors.New("dfs: file is under construction")
	ErrAppendNotSupported = errors.New("dfs: append is not supported by this file system")
	ErrInvalidPath        = errors.New("dfs: invalid path")

	// ErrVersionsNotSupported is the stable sentinel a backend without
	// snapshot support returns from every VersionedFileSystem method.
	// HDFS returns it — the paper's backend contrast, extended to the
	// version axis — and frameworks fall back to latest-only reads.
	ErrVersionsNotSupported = errors.New("dfs: versioned access is not supported by this file system")

	// ErrVersionGone reports an open or read of a file version the
	// storage layer's retention/garbage collection has reclaimed. It is
	// the boundary mapping of the BLOB layer's internal "version
	// collected" failure, so framework and application code can match a
	// stable exported sentinel instead of internal error text that
	// happens to survive RPC boundaries. A reader that pinned its
	// snapshot at open never sees it for the reader's lifetime; it
	// surfaces when opening a version that was already collected, or
	// when tailing far behind a retention window.
	ErrVersionGone = errors.New("dfs: file version collected by retention")
)

// FileInfo describes a namespace entry.
type FileInfo struct {
	Path  string
	IsDir bool
	Size  uint64
	// Blocks is the number of storage blocks/pages backing the file.
	Blocks uint64
	// Version is the file's latest published snapshot version on
	// backends that support versioned access (0 on backends that do
	// not, and in List results, whose sizes come from the namespace
	// cache rather than the version store). Stat on a versioned
	// backend fills it, so "Stat then OpenVersion" pins exactly the
	// snapshot whose Size was observed.
	Version uint64
}

// VersionInfo describes one published snapshot of a file, as
// enumerated by VersionedFileSystem.Versions. Versions publish in
// assignment order, so Version doubles as the publish order.
type VersionInfo struct {
	// Version identifies the snapshot (1 is the first write; 0 is the
	// empty initial state and is never listed).
	Version uint64
	// Size is the file size at this snapshot.
	Size uint64
	// Blocks is the number of storage blocks backing the snapshot.
	Blocks uint64
}

// BlockLoc locates one block of a file for locality-aware scheduling.
type BlockLoc struct {
	// Offset and Length delimit the block within the file.
	Offset uint64
	Length uint64
	// Hosts are the machines holding a replica.
	Hosts []string
}

// FileWriter is a streaming writer. Data becomes durable (and, for
// appends, visible) in backend-sized blocks; Close flushes the tail.
// Backends may pipeline block commits — keep several blocks in flight
// and surface a block's error on a later Write, Flush, or Close — but
// must preserve the writer's block order in the file and must not
// report success from Close unless every block is durable.
type FileWriter interface {
	io.Writer
	io.Closer
}

// Flusher is implemented by writers that can push their buffered bytes
// immediately as one atomic unit. Append-capable backends expose it so
// applications can keep records whole across concurrent appenders
// (GFS-style record append).
type Flusher interface {
	Flush() error
}

// FileReader is a streaming reader with random access.
type FileReader interface {
	io.Reader
	io.ReaderAt
	io.Closer
	// Size returns the file size observed when the reader was opened.
	Size() uint64
	// Refresh re-reads the file size (a file being appended to may
	// have grown) and returns the new size.
	Refresh(ctx context.Context) (uint64, error)
}

// VersionedReader is a FileReader bound to one published snapshot.
// OpenVersion returns one, and backends whose Open pins a snapshot may
// return them from Open too; Version reports which snapshot the reader
// is serving.
type VersionedReader interface {
	FileReader
	// Version returns the published version this reader currently
	// serves (for a fixed-version open, the version requested; for a
	// latest-open, the version pinned at open or the last Refresh).
	Version() uint64
}

// VersionedFileSystem is the snapshot capability interface: every
// append to a BlobSeer-backed file publishes an immutable version, and
// backends that expose that axis implement these four methods. The
// Map/Reduce framework probes for it with a type assertion and treats
// ErrVersionsNotSupported from any method as "capability absent", so a
// backend may also implement the methods purely to return the stable
// sentinel (HDFS does — the interface is uniform, the behaviour is the
// paper's backend contrast).
//
// Lease semantics: OpenVersion pins the chosen snapshot against
// garbage collection for the reader's lifetime (released at Close), so
// a versioned reader never observes ErrVersionGone mid-stream; opening
// a version already behind the retention window fails up front with
// ErrVersionGone.
type VersionedFileSystem interface {
	FileSystem
	// OpenVersion opens the file's published snapshot ver for reading
	// (0 means latest, like Open). The snapshot is pinned until the
	// reader closes. Fails with ErrVersionGone when ver has been
	// collected, ErrNotExist when it was never published.
	OpenVersion(ctx context.Context, path string, ver uint64) (VersionedReader, error)
	// Versions enumerates the file's published snapshots still inside
	// the retention window, oldest first.
	Versions(ctx context.Context, path string) ([]VersionInfo, error)
	// WaitVersion blocks until a snapshot newer than after publishes
	// and returns it — the tailing-reader primitive: loop WaitVersion /
	// OpenVersion to follow a file concurrent appenders keep growing,
	// reading each prefix as an immutable snapshot.
	WaitVersion(ctx context.Context, path string, after uint64) (VersionInfo, error)
	// BlockLocationsAt is BlockLocations resolved at snapshot ver
	// (0 means latest): which hosts store each block of that version.
	// Schedulers that pinned a job's input version use it so locality
	// follows the pinned snapshot, not a concurrently growing latest.
	BlockLocationsAt(ctx context.Context, path string, ver uint64, off, length uint64) ([]BlockLoc, error)
}

// AsVersioned probes fs for the snapshot capability the way the
// Map/Reduce framework does: a type assertion, plus the convention
// that a backend advertising the interface may still answer every call
// with ErrVersionsNotSupported.
func AsVersioned(fs FileSystem) (VersionedFileSystem, bool) {
	vfs, ok := fs.(VersionedFileSystem)
	return vfs, ok
}

// OpenVersion opens path's snapshot ver through fs, returning
// ErrVersionsNotSupported when fs lacks the capability.
func OpenVersion(ctx context.Context, fs FileSystem, path string, ver uint64) (VersionedReader, error) {
	vfs, ok := AsVersioned(fs)
	if !ok {
		return nil, ErrVersionsNotSupported
	}
	return vfs.OpenVersion(ctx, path, ver)
}

// Versions enumerates path's retained snapshots through fs, returning
// ErrVersionsNotSupported when fs lacks the capability.
func Versions(ctx context.Context, fs FileSystem, path string) ([]VersionInfo, error) {
	vfs, ok := AsVersioned(fs)
	if !ok {
		return nil, ErrVersionsNotSupported
	}
	return vfs.Versions(ctx, path)
}

// WaitVersion blocks until path publishes a snapshot newer than after,
// returning ErrVersionsNotSupported when fs lacks the capability.
func WaitVersion(ctx context.Context, fs FileSystem, path string, after uint64) (VersionInfo, error) {
	vfs, ok := AsVersioned(fs)
	if !ok {
		return VersionInfo{}, ErrVersionsNotSupported
	}
	return vfs.WaitVersion(ctx, path, after)
}

// FileSystem is the storage interface the Map/Reduce framework uses.
// Implementations must be safe for concurrent use.
type FileSystem interface {
	// Create creates a new file for writing. Parent directories are
	// created implicitly. Fails with ErrExists if the path exists.
	Create(ctx context.Context, path string) (FileWriter, error)
	// Open opens a file for reading.
	Open(ctx context.Context, path string) (FileReader, error)
	// Append opens an existing file (creating it if absent) for
	// appending. Multiple writers may hold append streams to the same
	// file concurrently on backends that support it; each buffered
	// block is appended atomically. Backends without append support
	// return ErrAppendNotSupported.
	Append(ctx context.Context, path string) (FileWriter, error)
	// Stat describes a path.
	Stat(ctx context.Context, path string) (FileInfo, error)
	// List returns the entries of a directory.
	List(ctx context.Context, dir string) ([]FileInfo, error)
	// Rename moves a file (not a directory). Destination parents are
	// created implicitly; an existing destination is replaced, like
	// Hadoop's output-commit rename.
	Rename(ctx context.Context, src, dst string) error
	// Delete removes a file or empty directory.
	Delete(ctx context.Context, path string) error
	// Mkdir creates a directory (and parents).
	Mkdir(ctx context.Context, path string) error
	// BlockLocations reports which hosts store each block overlapping
	// [off, off+length) of the file, for data-local scheduling.
	BlockLocations(ctx context.Context, path string, off, length uint64) ([]BlockLoc, error)
	// MetadataEntries counts namespace metadata records (files,
	// directories and block records): the "file-count problem" metric.
	MetadataEntries(ctx context.Context) (uint64, error)
	// BlockSize returns the backend's block/page size in bytes.
	BlockSize() uint64
	// Name identifies the backend ("bsfs", "hdfs") in experiment output.
	Name() string
}

// CleanPath canonicalizes a path: it must be absolute, and redundant
// slashes are removed. Returns ErrInvalidPath for malformed input.
func CleanPath(p string) (string, error) {
	if p == "" || p[0] != '/' {
		return "", ErrInvalidPath
	}
	parts := strings.Split(p, "/")
	out := make([]string, 0, len(parts))
	for _, part := range parts {
		switch part {
		case "", ".":
			continue
		case "..":
			return "", ErrInvalidPath
		default:
			out = append(out, part)
		}
	}
	return "/" + strings.Join(out, "/"), nil
}

// Parent returns the parent directory of a cleaned path ("/" for "/a").
func Parent(p string) string {
	i := strings.LastIndexByte(p, '/')
	if i <= 0 {
		return "/"
	}
	return p[:i]
}

// Base returns the final element of a cleaned path.
func Base(p string) string {
	i := strings.LastIndexByte(p, '/')
	return p[i+1:]
}

// Ancestors lists every ancestor directory of a cleaned path, outermost
// first, excluding "/" and the path itself.
func Ancestors(p string) []string {
	var out []string
	for i := 1; i < len(p); i++ {
		if p[i] == '/' {
			out = append(out, p[:i])
		}
	}
	return out
}

// ReadAll reads a whole file through fs.
func ReadAll(ctx context.Context, fs FileSystem, path string) ([]byte, error) {
	f, err := fs.Open(ctx, path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, f.Size())
	if _, err := io.ReadFull(f, buf); err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return nil, err
	}
	return buf, nil
}

// WriteFile creates path and writes data through fs.
func WriteFile(ctx context.Context, fs FileSystem, path string, data []byte) error {
	w, err := fs.Create(ctx, path)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}
