// Package dfs defines the file-system interface shared by the two
// storage backends of the reproduction:
//
//   - bsfs: the paper's BlobSeer File System, which supports concurrent
//     appends to a shared file (§3.2);
//   - hdfs: the write-once-read-many HDFS-like baseline, which rejects
//     appends (§2.2).
//
// The Map/Reduce framework is written against this interface, exactly
// like Hadoop's framework accesses storage "through an interface that
// exposes the basic functions of a file system" — and, as in the paper,
// "the append operation is available in the interface" even though one
// backend refuses it.
package dfs

import (
	"context"
	"errors"
	"io"
	"strings"
)

// Errors shared by all backends. They cross RPC boundaries as message
// text; keep them stable.
var (
	ErrNotExist           = errors.New("dfs: no such file or directory")
	ErrExists             = errors.New("dfs: file exists")
	ErrIsDir              = errors.New("dfs: is a directory")
	ErrNotDir             = errors.New("dfs: not a directory")
	ErrNotEmpty           = errors.New("dfs: directory not empty")
	ErrUnderConstruction  = errors.New("dfs: file is under construction")
	ErrAppendNotSupported = errors.New("dfs: append is not supported by this file system")
	ErrInvalidPath        = errors.New("dfs: invalid path")
)

// FileInfo describes a namespace entry.
type FileInfo struct {
	Path  string
	IsDir bool
	Size  uint64
	// Blocks is the number of storage blocks/pages backing the file.
	Blocks uint64
}

// BlockLoc locates one block of a file for locality-aware scheduling.
type BlockLoc struct {
	// Offset and Length delimit the block within the file.
	Offset uint64
	Length uint64
	// Hosts are the machines holding a replica.
	Hosts []string
}

// FileWriter is a streaming writer. Data becomes durable (and, for
// appends, visible) in backend-sized blocks; Close flushes the tail.
// Backends may pipeline block commits — keep several blocks in flight
// and surface a block's error on a later Write, Flush, or Close — but
// must preserve the writer's block order in the file and must not
// report success from Close unless every block is durable.
type FileWriter interface {
	io.Writer
	io.Closer
}

// Flusher is implemented by writers that can push their buffered bytes
// immediately as one atomic unit. Append-capable backends expose it so
// applications can keep records whole across concurrent appenders
// (GFS-style record append).
type Flusher interface {
	Flush() error
}

// FileReader is a streaming reader with random access.
type FileReader interface {
	io.Reader
	io.ReaderAt
	io.Closer
	// Size returns the file size observed when the reader was opened.
	Size() uint64
	// Refresh re-reads the file size (a file being appended to may
	// have grown) and returns the new size.
	Refresh(ctx context.Context) (uint64, error)
}

// FileSystem is the storage interface the Map/Reduce framework uses.
// Implementations must be safe for concurrent use.
type FileSystem interface {
	// Create creates a new file for writing. Parent directories are
	// created implicitly. Fails with ErrExists if the path exists.
	Create(ctx context.Context, path string) (FileWriter, error)
	// Open opens a file for reading.
	Open(ctx context.Context, path string) (FileReader, error)
	// Append opens an existing file (creating it if absent) for
	// appending. Multiple writers may hold append streams to the same
	// file concurrently on backends that support it; each buffered
	// block is appended atomically. Backends without append support
	// return ErrAppendNotSupported.
	Append(ctx context.Context, path string) (FileWriter, error)
	// Stat describes a path.
	Stat(ctx context.Context, path string) (FileInfo, error)
	// List returns the entries of a directory.
	List(ctx context.Context, dir string) ([]FileInfo, error)
	// Rename moves a file (not a directory). Destination parents are
	// created implicitly; an existing destination is replaced, like
	// Hadoop's output-commit rename.
	Rename(ctx context.Context, src, dst string) error
	// Delete removes a file or empty directory.
	Delete(ctx context.Context, path string) error
	// Mkdir creates a directory (and parents).
	Mkdir(ctx context.Context, path string) error
	// BlockLocations reports which hosts store each block overlapping
	// [off, off+length) of the file, for data-local scheduling.
	BlockLocations(ctx context.Context, path string, off, length uint64) ([]BlockLoc, error)
	// MetadataEntries counts namespace metadata records (files,
	// directories and block records): the "file-count problem" metric.
	MetadataEntries(ctx context.Context) (uint64, error)
	// BlockSize returns the backend's block/page size in bytes.
	BlockSize() uint64
	// Name identifies the backend ("bsfs", "hdfs") in experiment output.
	Name() string
}

// CleanPath canonicalizes a path: it must be absolute, and redundant
// slashes are removed. Returns ErrInvalidPath for malformed input.
func CleanPath(p string) (string, error) {
	if p == "" || p[0] != '/' {
		return "", ErrInvalidPath
	}
	parts := strings.Split(p, "/")
	out := make([]string, 0, len(parts))
	for _, part := range parts {
		switch part {
		case "", ".":
			continue
		case "..":
			return "", ErrInvalidPath
		default:
			out = append(out, part)
		}
	}
	return "/" + strings.Join(out, "/"), nil
}

// Parent returns the parent directory of a cleaned path ("/" for "/a").
func Parent(p string) string {
	i := strings.LastIndexByte(p, '/')
	if i <= 0 {
		return "/"
	}
	return p[:i]
}

// Base returns the final element of a cleaned path.
func Base(p string) string {
	i := strings.LastIndexByte(p, '/')
	return p[i+1:]
}

// Ancestors lists every ancestor directory of a cleaned path, outermost
// first, excluding "/" and the path itself.
func Ancestors(p string) []string {
	var out []string
	for i := 1; i < len(p); i++ {
		if p[i] == '/' {
			out = append(out, p[:i])
		}
	}
	return out
}

// ReadAll reads a whole file through fs.
func ReadAll(ctx context.Context, fs FileSystem, path string) ([]byte, error) {
	f, err := fs.Open(ctx, path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, f.Size())
	if _, err := io.ReadFull(f, buf); err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return nil, err
	}
	return buf, nil
}

// WriteFile creates path and writes data through fs.
func WriteFile(ctx context.Context, fs FileSystem, path string, data []byte) error {
	w, err := fs.Create(ctx, path)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}
