package dfs

import (
	"blobseer/internal/wire"
)

// Wire messages shared by the namespace services of both backends
// (BSFS namespace manager and HDFS namenode).

// PathReq names one path.
type PathReq struct{ Path string }

// AppendTo implements wire.Marshaler.
func (m *PathReq) AppendTo(b []byte) []byte { return wire.AppendString(b, m.Path) }

// DecodeFrom implements wire.Unmarshaler.
func (m *PathReq) DecodeFrom(r *wire.Reader) error {
	m.Path = r.String()
	return r.Err()
}

// PathPairReq names a source and destination.
type PathPairReq struct{ Src, Dst string }

// AppendTo implements wire.Marshaler.
func (m *PathPairReq) AppendTo(b []byte) []byte {
	b = wire.AppendString(b, m.Src)
	return wire.AppendString(b, m.Dst)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *PathPairReq) DecodeFrom(r *wire.Reader) error {
	m.Src = r.String()
	m.Dst = r.String()
	return r.Err()
}

// ListResp carries directory entries.
type ListResp struct{ Infos []FileInfo }

// AppendTo implements wire.Marshaler.
func (m *ListResp) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(len(m.Infos)))
	for _, fi := range m.Infos {
		b = wire.AppendString(b, fi.Path)
		b = wire.AppendBool(b, fi.IsDir)
		b = wire.AppendUvarint(b, fi.Size)
		b = wire.AppendUvarint(b, fi.Blocks)
	}
	return b
}

// DecodeFrom implements wire.Unmarshaler.
func (m *ListResp) DecodeFrom(r *wire.Reader) error {
	n := r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	m.Infos = make([]FileInfo, 0, n)
	for i := uint64(0); i < n; i++ {
		var fi FileInfo
		fi.Path = r.String()
		fi.IsDir = r.Bool()
		fi.Size = r.Uvarint()
		fi.Blocks = r.Uvarint()
		m.Infos = append(m.Infos, fi)
	}
	return r.Err()
}

// CountResp carries a single counter.
type CountResp struct{ Count uint64 }

// AppendTo implements wire.Marshaler.
func (m *CountResp) AppendTo(b []byte) []byte { return wire.AppendUvarint(b, m.Count) }

// DecodeFrom implements wire.Unmarshaler.
func (m *CountResp) DecodeFrom(r *wire.Reader) error {
	m.Count = r.Uvarint()
	return r.Err()
}
