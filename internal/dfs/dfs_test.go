package dfs

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCleanPath(t *testing.T) {
	cases := map[string]string{
		"/":          "/",
		"/a":         "/a",
		"/a/b/c":     "/a/b/c",
		"//a///b/":   "/a/b",
		"/a/./b":     "/a/b",
		"/out/part0": "/out/part0",
	}
	for in, want := range cases {
		got, err := CleanPath(in)
		if err != nil {
			t.Errorf("CleanPath(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("CleanPath(%q) = %q, want %q", in, got, want)
		}
	}
	for _, bad := range []string{"", "relative", "a/b", "/a/../b", ".."} {
		if _, err := CleanPath(bad); !errors.Is(err, ErrInvalidPath) {
			t.Errorf("CleanPath(%q) err = %v, want ErrInvalidPath", bad, err)
		}
	}
}

func TestParentBase(t *testing.T) {
	cases := []struct{ p, parent, base string }{
		{"/a/b/c", "/a/b", "c"},
		{"/a", "/", "a"},
		{"/", "/", ""},
	}
	for _, c := range cases {
		if got := Parent(c.p); got != c.parent {
			t.Errorf("Parent(%q) = %q, want %q", c.p, got, c.parent)
		}
		if got := Base(c.p); got != c.base {
			t.Errorf("Base(%q) = %q, want %q", c.p, got, c.base)
		}
	}
}

func TestAncestors(t *testing.T) {
	got := Ancestors("/a/b/c")
	want := []string{"/a", "/a/b"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Ancestors = %v, want %v", got, want)
	}
	if got := Ancestors("/a"); len(got) != 0 {
		t.Errorf("Ancestors(/a) = %v", got)
	}
}

func TestCleanPathIdempotent(t *testing.T) {
	f := func(s string) bool {
		p, err := CleanPath("/" + s)
		if err != nil {
			return true // invalid inputs are fine, just must not panic
		}
		p2, err := CleanPath(p)
		return err == nil && p2 == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
