package blob

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"blobseer/internal/transport"
)

// TestClusterOverTCP proves the whole BlobSeer stack is a genuine
// networked system: the same cluster code runs over real TCP sockets
// on the loopback interface.
func TestClusterOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp integration test")
	}
	c, err := NewCluster(transport.NewTCPNet(), ClusterConfig{
		Providers: 4, MetaProviders: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl := c.Client("tcp-cli")
	defer cl.Close()

	b, err := cl.Create(ctx, 512)
	if err != nil {
		t.Fatal(err)
	}
	want := pattern(1, 512*5)
	if _, err := b.Append(ctx, want); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WaitPublished(ctx, 1); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadAt(ctx, 1, 0, uint64(len(want)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("content mismatch over TCP")
	}
}

// TestConcurrentUnalignedAppends exercises the boundary-merge path
// under concurrency: appenders write chunks whose sizes are NOT page
// multiples, so every append must fold in the previous version's
// partial tail page (waiting for its publication). The final content
// must be some interleaving of whole chunks, nothing torn.
func TestConcurrentUnalignedAppends(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Providers: 6, MetaProviders: 3})
	const appenders = 8
	const ps = 256

	cl0 := newTestClient(t, c, "cli-0")
	b0, err := cl0.Create(ctx, ps)
	if err != nil {
		t.Fatal(err)
	}

	// Chunk sizes are coprime with the page size.
	sizes := []int{101, 333, 77, 512, 95, 260, 129, 411}
	var wg sync.WaitGroup
	errs := make(chan error, appenders)
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			cl := c.Client(fmt.Sprintf("cli-%d", a))
			defer cl.Close()
			b, err := cl.Open(ctx, b0.ID())
			if err != nil {
				errs <- err
				return
			}
			if _, err := b.Append(ctx, pattern(byte(a+1), sizes[a])); err != nil {
				errs <- fmt.Errorf("appender %d: %w", a, err)
			}
		}(a)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if _, err := b0.WaitPublished(ctx, appenders); err != nil {
		t.Fatal(err)
	}
	info, err := b0.Latest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if info.Size != uint64(total) {
		t.Fatalf("size = %d, want %d", info.Size, total)
	}
	all, err := b0.ReadAt(ctx, 0, 0, info.Size)
	if err != nil {
		t.Fatal(err)
	}
	// The file must be a concatenation of the 8 chunks in some order.
	remaining := all
	seen := make(map[byte]bool)
	for len(remaining) > 0 {
		matched := false
		for a := 0; a < appenders; a++ {
			if seen[byte(a+1)] {
				continue
			}
			chunk := pattern(byte(a+1), sizes[a])
			if len(remaining) >= len(chunk) && bytes.Equal(remaining[:len(chunk)], chunk) {
				seen[byte(a+1)] = true
				remaining = remaining[len(chunk):]
				matched = true
				break
			}
		}
		if !matched {
			t.Fatalf("content at offset %d matches no appender's chunk start",
				total-len(remaining))
		}
	}
	if len(seen) != appenders {
		t.Fatalf("found %d of %d chunks", len(seen), appenders)
	}

	// Every intermediate version remains a consistent prefix chain:
	// version v's content is a prefix of... not necessarily (appends
	// only extend), so check sizes are strictly increasing and reads
	// succeed.
	var prev uint64
	for v := uint64(1); v <= appenders; v++ {
		vi, err := b0.GetVersion(ctx, v)
		if err != nil {
			t.Fatal(err)
		}
		if vi.Size <= prev {
			t.Fatalf("version %d size %d not greater than %d", v, vi.Size, prev)
		}
		if _, err := b0.ReadAt(ctx, v, 0, vi.Size); err != nil {
			t.Fatalf("read version %d: %v", v, err)
		}
		prev = vi.Size
	}
}

// TestInterleavedReadersWritersManyVersions runs mixed read/append
// traffic on one BLOB and checks a global invariant at every step:
// earlier versions' contents are immutable prefixes of later ones
// (append-only BLOBs grow monotonically).
func TestInterleavedReadersWritersManyVersions(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Providers: 4, MetaProviders: 2})
	cl := newTestClient(t, c, "cli")
	b, err := cl.Create(ctx, 128)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var reference []byte // what the blob must contain after each append

	const rounds = 30
	for v := 1; v <= rounds; v++ {
		chunk := pattern(byte(v), 64+(v*37)%300)
		mu.Lock()
		reference = append(reference, chunk...)
		want := append([]byte(nil), reference...)
		mu.Unlock()
		res, err := b.Append(ctx, chunk)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.WaitPublished(ctx, res.Ver); err != nil {
			t.Fatal(err)
		}
		got, err := b.ReadAt(ctx, res.Ver, 0, uint64(len(want)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("version %d diverged from reference", res.Ver)
		}
	}
}
