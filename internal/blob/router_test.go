package blob

import (
	"sync/atomic"
	"testing"
	"time"

	"blobseer/internal/rpc"
	"blobseer/internal/segtree"
	"blobseer/internal/transport"
)

func routerShards(n int) []transport.Addr {
	shards := make([]transport.Addr, n)
	for i := range shards {
		shards[i] = transport.MakeAddr(VMShardHost(i), SvcVersionManager)
	}
	return shards
}

// TestRouterMappingStable pins the property everything else builds on:
// blob→shard is a pure function of (blob id, shard set). Two routers
// built independently — different pools, different seeds — must agree
// on every blob, or a GC collector and the client that created a blob
// would look for its versions on different shards.
func TestRouterMappingStable(t *testing.T) {
	net := transport.NewMemNet()
	shards := routerShards(4)
	a := NewVMRouter(rpc.NewPool(net, transport.MakeAddr("host-a", "client")), shards, "host-a")
	b := NewVMRouter(rpc.NewPool(net, transport.MakeAddr("host-b", "client")), shards, "host-b")

	counts := map[transport.Addr]int{}
	for blob := uint64(1); blob <= 4096; blob++ {
		sa, sb := a.Shard(blob), b.Shard(blob)
		if sa != sb {
			t.Fatalf("blob %d: router a says %s, router b says %s", blob, sa, sb)
		}
		counts[sa]++
	}
	// The ring should spread ownership roughly evenly; with 64 vnodes
	// per shard a 4x imbalance would mean the ring is broken.
	for _, addr := range shards {
		if counts[addr] < 4096/16 {
			t.Fatalf("shard %s owns only %d of 4096 blobs: %v", addr, counts[addr], counts)
		}
	}
}

// TestRouterCreateTargetSpreads checks both halves of the creation
// policy: one router cycles through all shards round-robin, and
// distinct clients (distinct seeds) start the cycle at different
// shards, so a fleet of one-create clients does not dogpile shard 0.
func TestRouterCreateTargetSpreads(t *testing.T) {
	net := transport.NewMemNet()
	shards := routerShards(4)
	pool := rpc.NewPool(net, transport.MakeAddr("spread-host", "client"))

	one := NewVMRouter(pool, shards, "spread-host")
	seen := map[transport.Addr]int{}
	for i := 0; i < len(shards); i++ {
		seen[one.CreateTarget()]++
	}
	for _, addr := range shards {
		if seen[addr] != 1 {
			t.Fatalf("one full round-robin cycle hit %v, want each shard once", seen)
		}
	}

	firsts := map[transport.Addr]bool{}
	for i := 0; i < 64; i++ {
		r := NewVMRouter(pool, shards, VMShardHost(0)+"-client-"+string(rune('a'+i%26))+string(rune('a'+i/26)))
		firsts[r.CreateTarget()] = true
	}
	if len(firsts) < len(shards) {
		t.Fatalf("64 fresh clients' first creations only reached shards %v", firsts)
	}
}

// TestRouterRetriesUntilListener is the failover contract from the
// caller's side: a call to a shard address with no listener (killed,
// standby still replaying) keeps retrying and succeeds once the
// takeover binds — no error surfaces to the caller.
func TestRouterRetriesUntilListener(t *testing.T) {
	net := transport.NewMemNet()
	addr := transport.MakeAddr("takeover-host", SvcVersionManager)
	pool := rpc.NewPool(net, transport.MakeAddr("takeover-cli", "client"))
	defer pool.Close()
	r := NewVMRouter(pool, []transport.Addr{addr}, "takeover-cli")

	var vm atomic.Pointer[VersionManager]
	go func() {
		time.Sleep(80 * time.Millisecond)
		m, err := NewVersionManager(net, addr, VersionManagerConfig{Nodes: segtree.NewMemStore()})
		if err != nil {
			t.Error(err)
			return
		}
		vm.Store(m)
	}()

	start := time.Now()
	var resp CreateBlobResp
	if err := r.CallAddr(ctx, addr, VMCreateBlob, &CreateBlobReq{PageSize: 128}, &resp); err != nil {
		t.Fatalf("call through delayed takeover: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("call returned in %v, before the listener was bound", elapsed)
	}
	if m := vm.Load(); m != nil {
		m.Close()
	}
}
