package blob

import (
	"sync/atomic"

	"blobseer/internal/pagestore"
	"blobseer/internal/rpc"
	"blobseer/internal/transport"
	"blobseer/internal/wire"
)

// PageTouch is a per-page access hook: the monitor's heat sketches
// plug in here without the blob layer importing them.
type PageTouch func(blob, page uint64)

// Provider is one BlobSeer data provider: it "stores the pages, as
// assigned by the provider manager" (§3.1.1). The storage engine is
// pluggable (memory / durable kvlog / synthesize — see pagestore).
type Provider struct {
	srv   *rpc.Server
	store pagestore.Store

	// Page traffic counters sampled by the cluster monitor.
	pagesRead    atomic.Uint64
	bytesRead    atomic.Uint64
	pagesWritten atomic.Uint64
	bytesWritten atomic.Uint64

	// writeHeat, when set, is touched on every stored page.
	writeHeat atomic.Pointer[PageTouch]

	// failPuts simulates a failed node for fault-injection tests: puts
	// are rejected while it is non-zero; gets still succeed.
	failPuts atomic.Bool
}

// NewProvider starts a provider at addr over the given store.
func NewProvider(net transport.Network, addr transport.Addr, store pagestore.Store) (*Provider, error) {
	srv, err := rpc.NewServer(net, addr)
	if err != nil {
		return nil, err
	}
	p := &Provider{srv: srv, store: store}
	srv.Handle(ProvPutPage, p.handlePutPage)
	srv.Handle(ProvGetPage, p.handleGetPage)
	srv.Handle(ProvStats, p.handleStats)
	srv.Handle(ProvDeletePages, p.handleDeletePages)
	return p, nil
}

// Addr returns the provider's endpoint.
func (p *Provider) Addr() transport.Addr { return p.srv.Addr() }

// Store exposes the underlying page store (tests, tools).
func (p *Provider) Store() pagestore.Store { return p.store }

// SetFailPuts toggles write-failure injection.
func (p *Provider) SetFailPuts(fail bool) { p.failPuts.Store(fail) }

// SetWriteHeat installs (or, with nil, removes) the page write-heat
// hook, called once per stored page with the page's (blob, index).
func (p *Provider) SetWriteHeat(t PageTouch) {
	if t == nil {
		p.writeHeat.Store(nil)
		return
	}
	p.writeHeat.Store(&t)
}

// MonitorSample reports the provider's live stats in the cluster
// monitor's sample shape ("_total" keys are counters, others gauges).
func (p *Provider) MonitorSample() map[string]float64 {
	return map[string]float64{
		"pages":             float64(p.store.Len()),
		"bytes_used":        float64(p.store.BytesUsed()),
		"read_pages_total":  float64(p.pagesRead.Load()),
		"read_bytes_total":  float64(p.bytesRead.Load()),
		"write_pages_total": float64(p.pagesWritten.Load()),
		"write_bytes_total": float64(p.bytesWritten.Load()),
	}
}

// Close stops the provider and its store.
func (p *Provider) Close() error {
	err := p.srv.Close()
	if cerr := p.store.Close(); err == nil {
		err = cerr
	}
	return err
}

func (p *Provider) handlePutPage(r *wire.Reader) (wire.Marshaler, error) {
	var req PutPageReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	if p.failPuts.Load() {
		return nil, wire.RemoteError("provider: injected put failure")
	}
	if err := p.store.Put(req.Key, req.Data); err != nil {
		return nil, err
	}
	p.pagesWritten.Add(1)
	p.bytesWritten.Add(uint64(len(req.Data)))
	if t := p.writeHeat.Load(); t != nil {
		(*t)(req.Key.Blob, req.Key.Index)
	}
	return nil, nil
}

func (p *Provider) handleGetPage(r *wire.Reader) (wire.Marshaler, error) {
	var req GetPageReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	data, err := p.store.Get(req.Key)
	if err != nil {
		return nil, err
	}
	p.pagesRead.Add(1)
	p.bytesRead.Add(uint64(len(data)))
	return &GetPageResp{Data: data}, nil
}

func (p *Provider) handleStats(r *wire.Reader) (wire.Marshaler, error) {
	return &ProvStatsResp{
		Pages: uint64(p.store.Len()),
		Bytes: uint64(p.store.BytesUsed()),
	}, nil
}

// handleDeletePages drops a garbage-collection batch. Keys the store
// does not hold are skipped silently (replication spreads a version's
// pages over many providers). When the engine supports it, crossing
// the dead-byte threshold triggers an automatic compaction, so
// reclaimed pages become reclaimed disk.
func (p *Provider) handleDeletePages(r *wire.Reader) (wire.Marshaler, error) {
	var req DeletePagesReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	resp := &DeletePagesResp{}
	before := p.store.BytesUsed()
	for _, k := range req.Keys {
		if !p.store.Has(k) {
			continue
		}
		if err := p.store.Delete(k); err != nil {
			return nil, err
		}
		resp.Deleted++
	}
	if freed := before - p.store.BytesUsed(); freed > 0 {
		resp.BytesFreed = uint64(freed)
	}
	if ac, ok := p.store.(pagestore.AutoCompacter); ok && resp.Deleted > 0 {
		compacted, err := ac.MaybeCompact()
		if err != nil {
			return nil, err
		}
		resp.Compacted = compacted
	}
	return resp, nil
}
