package blob

import (
	"sync/atomic"

	"blobseer/internal/pagestore"
	"blobseer/internal/rpc"
	"blobseer/internal/transport"
	"blobseer/internal/wire"
)

// Provider is one BlobSeer data provider: it "stores the pages, as
// assigned by the provider manager" (§3.1.1). The storage engine is
// pluggable (memory / durable kvlog / synthesize — see pagestore).
type Provider struct {
	srv   *rpc.Server
	store pagestore.Store

	// failPuts simulates a failed node for fault-injection tests: puts
	// are rejected while it is non-zero; gets still succeed.
	failPuts atomic.Bool
}

// NewProvider starts a provider at addr over the given store.
func NewProvider(net transport.Network, addr transport.Addr, store pagestore.Store) (*Provider, error) {
	srv, err := rpc.NewServer(net, addr)
	if err != nil {
		return nil, err
	}
	p := &Provider{srv: srv, store: store}
	srv.Handle(ProvPutPage, p.handlePutPage)
	srv.Handle(ProvGetPage, p.handleGetPage)
	srv.Handle(ProvStats, p.handleStats)
	srv.Handle(ProvDeletePages, p.handleDeletePages)
	return p, nil
}

// Addr returns the provider's endpoint.
func (p *Provider) Addr() transport.Addr { return p.srv.Addr() }

// Store exposes the underlying page store (tests, tools).
func (p *Provider) Store() pagestore.Store { return p.store }

// SetFailPuts toggles write-failure injection.
func (p *Provider) SetFailPuts(fail bool) { p.failPuts.Store(fail) }

// Close stops the provider and its store.
func (p *Provider) Close() error {
	err := p.srv.Close()
	if cerr := p.store.Close(); err == nil {
		err = cerr
	}
	return err
}

func (p *Provider) handlePutPage(r *wire.Reader) (wire.Marshaler, error) {
	var req PutPageReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	if p.failPuts.Load() {
		return nil, wire.RemoteError("provider: injected put failure")
	}
	if err := p.store.Put(req.Key, req.Data); err != nil {
		return nil, err
	}
	return nil, nil
}

func (p *Provider) handleGetPage(r *wire.Reader) (wire.Marshaler, error) {
	var req GetPageReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	data, err := p.store.Get(req.Key)
	if err != nil {
		return nil, err
	}
	return &GetPageResp{Data: data}, nil
}

func (p *Provider) handleStats(r *wire.Reader) (wire.Marshaler, error) {
	return &ProvStatsResp{
		Pages: uint64(p.store.Len()),
		Bytes: uint64(p.store.BytesUsed()),
	}, nil
}

// handleDeletePages drops a garbage-collection batch. Keys the store
// does not hold are skipped silently (replication spreads a version's
// pages over many providers). When the engine supports it, crossing
// the dead-byte threshold triggers an automatic compaction, so
// reclaimed pages become reclaimed disk.
func (p *Provider) handleDeletePages(r *wire.Reader) (wire.Marshaler, error) {
	var req DeletePagesReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	resp := &DeletePagesResp{}
	before := p.store.BytesUsed()
	for _, k := range req.Keys {
		if !p.store.Has(k) {
			continue
		}
		if err := p.store.Delete(k); err != nil {
			return nil, err
		}
		resp.Deleted++
	}
	if freed := before - p.store.BytesUsed(); freed > 0 {
		resp.BytesFreed = uint64(freed)
	}
	if ac, ok := p.store.(pagestore.AutoCompacter); ok && resp.Deleted > 0 {
		compacted, err := ac.MaybeCompact()
		if err != nil {
			return nil, err
		}
		resp.Compacted = compacted
	}
	return resp, nil
}
