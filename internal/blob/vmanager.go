package blob

// vmanager.go is the version manager's RPC/service layer. The decided
// state and every transition over it live in vmstate.go; this file
// validates requests, journals a vmRecord (vmjournal.go) when the
// manager is durable, applies the transition, and answers. The
// write-ahead order — validate, journal, apply, respond — under the
// per-BLOB lock means the journal's per-BLOB record order equals the
// apply order, so replay IS apply and recovery needs no special cases.
//
// With ShardCount > 1 the manager is one shard of a partitioned
// metadata plane: a consistent-hash ring over the shard addresses
// (shared with VMRouter on the client side) decides which shard owns
// each blob id, and each shard allocates ids only from its own modular
// stripe, so shards never talk to each other — not even for id
// allocation.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"blobseer/internal/dht"
	"blobseer/internal/obs"
	"blobseer/internal/rpc"
	"blobseer/internal/segtree"
	"blobseer/internal/transport"
	"blobseer/internal/wire"
)

// Sentinel errors returned by the version manager. They cross the RPC
// boundary as message text; wire.RemoteError makes errors.Is work on
// the client side.
var (
	ErrBlobNotFound    = errors.New("blob: not found")
	ErrNotPublished    = errors.New("blob: version not published")
	ErrNoSuchVersion   = errors.New("blob: no such version")
	ErrWaitTimeout     = errors.New("blob: wait-published timeout")
	ErrVersionFinished = errors.New("blob: version already completed or sealed")
	// ErrVersionCollected reports a read of a version (or a whole BLOB)
	// the garbage collector has reclaimed: the version's pages may be
	// gone from the providers, so the only honest answer is this error,
	// never stale or short data.
	ErrVersionCollected = errors.New("blob: version collected")
)

// VersionManagerConfig configures a version manager.
type VersionManagerConfig struct {
	// SealTimeout is how long an assigned version may stay pending
	// before the manager seals it (commits hole metadata) so the
	// publication chain cannot stall on a dead writer. Zero disables
	// automatic sealing (explicit Seal RPCs still work).
	SealTimeout time.Duration
	// Nodes is the metadata store used to commit hole metadata when
	// sealing. Required if sealing is used.
	Nodes segtree.NodeStore
	// RetainLatest is the default retention policy: keep only the
	// latest k published versions of every BLOB, letting reclaim scans
	// retire the rest. Zero keeps every version (BlobSeer's original
	// keep-forever model); per-BLOB SetRetention overrides it.
	RetainLatest uint64
	// DefaultPinTTL bounds pin leases whose request carries no TTL
	// (zero means one minute).
	DefaultPinTTL time.Duration

	// ShardIndex/ShardCount/ShardAddrs place this manager in a
	// partitioned metadata plane: ShardAddrs lists every shard's
	// endpoint (stable across restarts — a standby takes over the dead
	// shard's address, not a new one) and ShardIndex is this shard's
	// slot. The zero value is the classic single-manager layout.
	ShardIndex int
	ShardCount int
	ShardAddrs []transport.Addr

	// JournalPath, when non-empty, makes the manager durable: every
	// decided transition is appended to a kvlog store there before it
	// is acknowledged, and a restart replays the journal to exactly the
	// acknowledged state. Empty keeps the original in-memory manager
	// (tests, simnet).
	JournalPath string
	// JournalSyncEvery forces an fsync every N journal appends (kvlog
	// semantics; zero leaves flushing to Close/checkpoints).
	JournalSyncEvery int
	// CheckpointEvery bounds journal replay: after N records the
	// manager snapshots every BLOB and trims the covered journal
	// prefix. Zero means the default (4096).
	CheckpointEvery int
	// CompactThreshold is the dead-bytes threshold past which the
	// journal store is rewritten. Zero means the default (1 MiB).
	CompactThreshold int64
}

// VersionManager is BlobSeer's centralized version manager (§3.1.1):
// it assigns version numbers and append offsets, and is "responsible
// for ensuring consistency when concurrent writes to the same BLOB are
// issued". Assignment is the only serialized step of a write and
// exchanges O(1) data plus the write-record history delta.
//
// Locking is three-level so BLOBs never contend with each other: the
// state's stripe lock guards only blob-id allocation, each map shard's
// lock guards one slice of the id→state map, and every blobState has
// its own lock for assign/complete/seal/wait traffic.
type VersionManager struct {
	srv *rpc.Server
	cfg VersionManagerConfig

	st      *vmState
	journal *vmJournal // nil: in-memory manager

	recovered int // journal records replayed at startup

	// reclaimNotify, when set, is called after any lifecycle change
	// that may create garbage (DeleteBlob, TruncateBefore,
	// SetRetention); the collector registers a non-blocking kick here
	// so deletions reclaim promptly instead of waiting for the next
	// periodic pass.
	notifyMu      sync.Mutex
	reclaimNotify func()

	done     chan struct{}
	wg       sync.WaitGroup
	stopOnce sync.Once
	stopErr  error
}

// NewVersionManager starts a version manager at addr. With a journal
// path the store is opened and replayed before the endpoint binds, so
// no request ever observes a partially recovered manager — this is
// also the failover path: a standby pointed at a dead shard's journal
// and address replays and takes over.
func NewVersionManager(net transport.Network, addr transport.Addr, cfg VersionManagerConfig) (*VersionManager, error) {
	var ownsID func(uint64) bool
	if cfg.ShardCount > 1 {
		if len(cfg.ShardAddrs) != cfg.ShardCount {
			return nil, fmt.Errorf("blob: shard count %d but %d shard addrs", cfg.ShardCount, len(cfg.ShardAddrs))
		}
		if cfg.ShardIndex < 0 || cfg.ShardIndex >= cfg.ShardCount {
			return nil, fmt.Errorf("blob: shard index %d out of range", cfg.ShardIndex)
		}
		ring := dht.NewRing(cfg.ShardAddrs, vmRingVnodes)
		self := cfg.ShardAddrs[cfg.ShardIndex]
		ownsID = func(id uint64) bool {
			owners := ring.Lookup(vmRingKey(id), 1)
			return len(owners) == 1 && owners[0] == self
		}
	}
	vm := &VersionManager{
		cfg:  cfg,
		st:   newVMState(cfg.ShardIndex, cfg.ShardCount, ownsID),
		done: make(chan struct{}),
	}
	if cfg.JournalPath != "" {
		j, err := openVMJournal(cfg.JournalPath, cfg.JournalSyncEvery, cfg.CheckpointEvery, cfg.CompactThreshold)
		if err != nil {
			return nil, err
		}
		n, err := j.replay(vm.st, time.Now())
		if err != nil {
			j.close()
			return nil, err
		}
		vm.journal = j
		vm.recovered = n
	}
	srv, err := rpc.NewServer(net, addr)
	if err != nil {
		if vm.journal != nil {
			vm.journal.close()
		}
		return nil, err
	}
	vm.srv = srv
	srv.Handle(VMCreateBlob, vm.handleCreateBlob)
	srv.Handle(VMOpenBlob, vm.handleOpenBlob)
	srv.Handle(VMAssign, vm.handleAssign)
	srv.Handle(VMComplete, vm.handleComplete)
	srv.Handle(VMSeal, vm.handleSeal)
	srv.Handle(VMGetVersion, vm.handleGetVersion)
	srv.Handle(VMLatest, vm.handleLatest)
	srv.Handle(VMWaitPublished, vm.handleWaitPublished)
	srv.Handle(VMListBlobs, vm.handleListBlobs)
	srv.Handle(VMStats, vm.handleStats)
	srv.Handle(VMSetRetention, vm.handleSetRetention)
	srv.Handle(VMTruncateBefore, vm.handleTruncateBefore)
	srv.Handle(VMDeleteBlob, vm.handleDeleteBlob)
	srv.Handle(VMPin, vm.handlePin)
	srv.Handle(VMUnpin, vm.handleUnpin)
	srv.Handle(VMReclaimScan, vm.handleReclaimScan)
	srv.Handle(VMHistory, vm.handleHistory)
	if cfg.SealTimeout > 0 {
		vm.wg.Add(1)
		go vm.sealLoop()
	}
	if vm.journal != nil {
		vm.wg.Add(1)
		go vm.checkpointLoop()
	}
	return vm, nil
}

// Addr returns the manager's endpoint.
func (vm *VersionManager) Addr() transport.Addr { return vm.srv.Addr() }

// RecoveredRecords reports how many journal records startup replayed
// (beyond checkpoint snapshots) — the recovery-cost metric.
func (vm *VersionManager) RecoveredRecords() int { return vm.recovered }

// JournalRecords reports the journal's record sequence number — the
// total records ever appended (not trimmed by checkpoints), 0 for an
// in-memory manager. Deployments export it as the journal-size gauge.
func (vm *VersionManager) JournalRecords() uint64 {
	if vm.journal == nil {
		return 0
	}
	return vm.journal.seqNow()
}

// JournalPending reports records appended since the last checkpoint
// kick — the shard's journal lag (replay debt), 0 for in-memory.
func (vm *VersionManager) JournalPending() int {
	if vm.journal == nil {
		return 0
	}
	return vm.journal.pending()
}

// JournalBytes reports the journal store's on-disk footprint, 0 for
// an in-memory manager.
func (vm *VersionManager) JournalBytes() int64 {
	if vm.journal == nil {
		return 0
	}
	return vm.journal.bytes()
}

// MonitorSample reports the shard's live stats in the cluster
// monitor's sample shape ("_total" keys are counters, others gauges).
// Returned as a plain map so the blob layer stays free of a monitor
// dependency.
func (vm *VersionManager) MonitorSample() map[string]float64 {
	return map[string]float64{
		"blobs":                 float64(vm.st.blobCount()),
		"assigned_total":        float64(vm.st.assigned.Load()),
		"published_total":       float64(vm.st.publishedCount.Load()),
		"sealed_total":          float64(vm.st.sealed.Load()),
		"journal_records_total": float64(vm.JournalRecords()),
		"journal_pending":       float64(vm.JournalPending()),
		"journal_bytes":         float64(vm.JournalBytes()),
	}
}

// Close stops the manager cleanly: the endpoint unbinds, loops drain,
// and a durable manager writes a final checkpoint so the next open
// replays (almost) nothing.
func (vm *VersionManager) Close() error { return vm.stop(true) }

// Kill stops the manager WITHOUT the final checkpoint — the crash
// path for failover tests and kill-one-shard runs. The journal store
// closes as-is; the next open replays raw records. In-flight handlers
// that lose the race fail their journal append against the closed
// store and never acknowledge, which is exactly the crash semantics:
// acknowledged implies journaled.
func (vm *VersionManager) Kill() error { return vm.stop(false) }

func (vm *VersionManager) stop(checkpoint bool) error {
	vm.stopOnce.Do(func() {
		close(vm.done)
		err := vm.srv.Close()
		vm.wg.Wait()
		if vm.journal != nil {
			if checkpoint {
				if cerr := vm.journal.checkpoint(vm.st); cerr != nil && err == nil {
					err = cerr
				}
			}
			if cerr := vm.journal.close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		vm.stopErr = err
	})
	return vm.stopErr
}

// logRecord persists rec when the manager is durable. A nil journal
// acknowledges immediately (in-memory mode). On error the caller must
// not mutate state: nothing was promised.
func (vm *VersionManager) logRecord(rec *vmRecord) error {
	if vm.journal == nil {
		return nil
	}
	return vm.journal.append(rec)
}

// checkpointLoop writes a checkpoint whenever the journal accumulates
// CheckpointEvery records since the last one.
func (vm *VersionManager) checkpointLoop() {
	defer vm.wg.Done()
	for {
		select {
		case <-vm.done:
			return
		case <-vm.journal.kick:
			// Errors are not fatal: the journal itself is intact, the
			// next kick (or the final checkpoint on Close) retries.
			if err := vm.journal.checkpoint(vm.st); err != nil {
				obs.Log.Warnf("blob: version-manager checkpoint: %v", err)
			}
		}
	}
}

func (vm *VersionManager) handleCreateBlob(r *wire.Reader) (wire.Marshaler, error) {
	var req CreateBlobReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	if req.PageSize == 0 {
		return nil, errors.New("blob: zero page size")
	}
	// Skipped stripe candidates (ids the ring maps elsewhere) are never
	// journaled; replay re-skips them identically. A journal failure
	// burns the allocated id, which is harmless — ids are not dense.
	id := vm.st.allocBlobID()
	rec := vmRecord{Op: vmOpCreate, Blob: id, Val: req.PageSize}
	if err := vm.logRecord(&rec); err != nil {
		return nil, err
	}
	vm.st.applyCreate(rec)
	return &CreateBlobResp{Blob: id}, nil
}

func (vm *VersionManager) handleOpenBlob(r *wire.Reader) (wire.Marshaler, error) {
	var req BlobRef
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	bs, ok := vm.st.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if bs.deleted {
		return nil, ErrBlobNotFound
	}
	return &OpenBlobResp{PageSize: bs.pageSize, Latest: bs.info(bs.published)}, nil
}

func (vm *VersionManager) handleAssign(r *wire.Reader) (wire.Marshaler, error) {
	var req AssignReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	if req.Len == 0 {
		return nil, errors.New("blob: zero-length write")
	}
	if req.Kind != KindAppend && req.Kind != KindWrite {
		return nil, fmt.Errorf("blob: unknown write kind %d", req.Kind)
	}
	bs, ok := vm.st.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if bs.deleted {
		return nil, ErrBlobNotFound
	}
	rec := vmRecord{Op: vmOpAssign, Blob: req.Blob, Kind: req.Kind, Off: req.Off, Len: req.Len}
	if err := vm.logRecord(&rec); err != nil {
		return nil, err
	}
	res := vm.st.applyAssignLocked(bs, rec, time.Now())

	// History delta: records in (SinceVer, ver).
	var hist []segtree.WriteRecord
	if req.SinceVer < res.ver-1 {
		hist = append(hist, bs.records[req.SinceVer:res.ver-1]...)
	}
	return &AssignResp{
		Ver:       res.ver,
		Start:     res.start,
		PrevSize:  res.prevSize,
		SizeAfter: res.sizeAfter,
		Record:    res.rec,
		History:   hist,
	}, nil
}

func (vm *VersionManager) handleComplete(r *wire.Reader) (wire.Marshaler, error) {
	var req VersionRef
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	bs, ok := vm.st.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if bs.deleted {
		return nil, ErrBlobNotFound
	}
	if req.Ver == 0 || req.Ver > uint64(len(bs.status)) {
		return nil, ErrNoSuchVersion
	}
	switch bs.status[req.Ver-1] {
	case vsPending:
		rec := vmRecord{Op: vmOpComplete, Blob: req.Blob, Ver: req.Ver}
		if err := vm.logRecord(&rec); err != nil {
			return nil, err
		}
		vm.st.applyCompleteLocked(bs, rec)
		return nil, nil
	case vsCompleted:
		// Idempotent: the router retries completes whose response was
		// lost in a failover window; the durable answer must not change.
		return nil, nil
	default:
		// Sealed while the writer was finishing: the writer must know
		// its version did not (cleanly) publish.
		return nil, ErrVersionFinished
	}
}

func (vm *VersionManager) handleSeal(r *wire.Reader) (wire.Marshaler, error) {
	var req VersionRef
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	if err := vm.seal(req.Blob, req.Ver); err != nil {
		return nil, err
	}
	return nil, nil
}

// seal aborts a pending version: the manager commits hole metadata for
// its write interval so readers of later versions see zeros there and
// the publication chain advances past the failed writer. The sealed
// record is journaled only AFTER the hole metadata is durably in the
// metadata DHT, so replaying vmOpSealed never needs I/O; a crash
// between commit and journal re-seals on the next timeout, and
// segtree.Commit is idempotent for identical content.
func (vm *VersionManager) seal(blob, ver uint64) error {
	bs, ok := vm.st.lookup(blob)
	if !ok {
		return ErrBlobNotFound
	}
	bs.mu.Lock()
	if bs.deleted {
		bs.mu.Unlock()
		return nil // the whole BLOB is dead; nothing left to unwedge
	}
	if ver == 0 || ver > uint64(len(bs.status)) {
		bs.mu.Unlock()
		return ErrNoSuchVersion
	}
	if bs.status[ver-1] != vsPending {
		bs.mu.Unlock()
		return nil // already finished; nothing to do
	}
	bs.status[ver-1] = vsSealing
	rec := bs.records[ver-1]
	history := append([]segtree.WriteRecord(nil), bs.records[:ver-1]...)
	bs.mu.Unlock()

	// Commit hole metadata outside the lock (network I/O).
	holes := make([]segtree.PageRef, rec.N)
	for i := range holes {
		holes[i] = segtree.PageRef{Hole: true}
	}
	var commitErr error
	if vm.cfg.Nodes != nil {
		//lint:detached sealing runs on the manager's timeout sweep, not a caller RPC; its own 30s deadline bounds the commit
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		commitErr = segtree.Commit(ctx, vm.cfg.Nodes, blob, rec, history, holes)
		cancel()
	} else {
		commitErr = errors.New("blob: version manager has no metadata store for sealing")
	}

	bs.mu.Lock()
	defer bs.mu.Unlock()
	if commitErr == nil {
		jrec := vmRecord{Op: vmOpSealed, Blob: blob, Ver: ver}
		commitErr = vm.logRecord(&jrec)
		if commitErr == nil {
			bs.status[ver-1] = vsPending // applySealedLocked flips it
			vm.st.applySealedLocked(bs, jrec)
			return nil
		}
	}
	// Roll back to pending; the seal loop will retry.
	bs.status[ver-1] = vsPending
	return fmt.Errorf("blob: seal %d/%d: %w", blob, ver, commitErr)
}

// sealLoop periodically seals pending versions older than SealTimeout.
func (vm *VersionManager) sealLoop() {
	defer vm.wg.Done()
	tick := time.NewTicker(vm.cfg.SealTimeout / 4)
	defer tick.Stop()
	for {
		select {
		case <-vm.done:
			return
		case <-tick.C:
		}
		type target struct{ blob, ver uint64 }
		var targets []target
		now := time.Now()
		for _, e := range vm.st.blobStates() {
			bs := e.bs
			bs.mu.Lock()
			if bs.deleted {
				bs.mu.Unlock()
				continue
			}
			// Only the version blocking publication can stall others;
			// seal any expired pending version though, oldest first.
			for v := bs.published + 1; v <= uint64(len(bs.status)); v++ {
				if bs.status[v-1] == vsPending && now.Sub(bs.assignedAt[v-1]) > vm.cfg.SealTimeout {
					targets = append(targets, target{e.id, v})
				}
			}
			bs.mu.Unlock()
		}
		for _, t := range targets {
			// Errors are retried on the next tick.
			if err := vm.seal(t.blob, t.ver); err != nil {
				obs.Log.Warnf("blob %d: timeout seal of version %d: %v", t.blob, t.ver, err)
			}
		}
	}
}

func (vm *VersionManager) handleGetVersion(r *wire.Reader) (wire.Marshaler, error) {
	var req VersionRef
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	bs, ok := vm.st.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	// Only versions behind the collection frontier are refused: a
	// pinned snapshot of a deleted BLOB stays readable until its pin
	// releases and the frontier passes it.
	if bs.collectedGet(req.Ver) {
		return nil, ErrVersionCollected
	}
	if req.Ver > uint64(len(bs.records)) {
		if bs.deleted {
			return nil, ErrVersionCollected
		}
		return nil, ErrNoSuchVersion
	}
	info := bs.info(req.Ver)
	return &info, nil
}

func (vm *VersionManager) handleLatest(r *wire.Reader) (wire.Marshaler, error) {
	var req BlobRef
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	bs, ok := vm.st.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if bs.deleted {
		return nil, ErrVersionCollected
	}
	info := bs.info(bs.published)
	return &info, nil
}

func (vm *VersionManager) handleWaitPublished(r *wire.Reader) (wire.Marshaler, error) {
	var req WaitPublishedReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	bs, ok := vm.st.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	bs.mu.Lock()
	if bs.collectedGet(req.Ver) {
		bs.mu.Unlock()
		return nil, ErrVersionCollected
	}
	// A version beyond the assigned range is not an error: the next
	// appender will be assigned it, and tailing readers (WaitVersion)
	// wait for exactly that. The waiter registered below fires when
	// publication reaches the version, however far in the future its
	// assignment lies; until then each wait returns ErrWaitTimeout and
	// the client's retry loop carries on.
	if req.Ver <= bs.published {
		info := bs.info(req.Ver)
		bs.mu.Unlock()
		return &info, nil
	}
	if bs.deleted {
		// The publication chain of a deleted BLOB never advances; fail
		// instead of blocking for the whole timeout.
		bs.mu.Unlock()
		return nil, ErrVersionCollected
	}
	ch := make(chan struct{})
	bs.waiters[req.Ver] = append(bs.waiters[req.Ver], ch)
	bs.mu.Unlock()

	timeout := time.Duration(req.TimeoutMillis) * time.Millisecond
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-ch:
		bs.mu.Lock()
		if bs.deleted || bs.collectedGet(req.Ver) {
			// Woken by DeleteBlob, not publication.
			bs.mu.Unlock()
			return nil, ErrVersionCollected
		}
		info := bs.info(req.Ver)
		bs.mu.Unlock()
		return &info, nil
	case <-timer.C:
		bs.mu.Lock()
		if req.Ver <= bs.published {
			// Published in the race window; the channel was (or is
			// being) closed by advanceLocked, not left behind.
			info := bs.info(req.Ver)
			bs.mu.Unlock()
			return &info, nil
		}
		bs.removeWaiterLocked(req.Ver, ch)
		bs.mu.Unlock()
		return nil, ErrWaitTimeout
	case <-vm.done:
		bs.mu.Lock()
		bs.removeWaiterLocked(req.Ver, ch)
		bs.mu.Unlock()
		return nil, rpc.ErrServerClosed
	}
}

// waiterCount reports the registered waiter channels for one version of
// one blob (test hook for the waiter-leak regression test).
func (vm *VersionManager) waiterCount(blob, ver uint64) int {
	bs, ok := vm.st.lookup(blob)
	if !ok {
		return 0
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return len(bs.waiters[ver])
}

// handleHistory enumerates the published versions still inside the
// retention window: everything from the collection frontier up to the
// latest published version, oldest first. The snapshot-first public
// API (dfs.VersionedFileSystem.Versions) is built on it.
func (vm *VersionManager) handleHistory(r *wire.Reader) (wire.Marshaler, error) {
	var req HistoryReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	bs, ok := vm.st.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if bs.deleted {
		return nil, ErrVersionCollected
	}
	from := bs.frontier
	if from < 1 {
		from = 1
	}
	if req.Limit > 0 && bs.published >= from && bs.published-from+1 > req.Limit {
		from = bs.published - req.Limit + 1
	}
	resp := &HistoryResp{}
	for v := from; v <= bs.published; v++ {
		resp.Infos = append(resp.Infos, bs.info(v))
	}
	return resp, nil
}

func (vm *VersionManager) handleListBlobs(r *wire.Reader) (wire.Marshaler, error) {
	return &ListBlobsResp{Blobs: vm.st.listBlobs()}, nil
}

func (vm *VersionManager) handleStats(r *wire.Reader) (wire.Marshaler, error) {
	return &VMStatsResp{
		Blobs:     vm.st.blobCount(),
		Assigned:  vm.st.assigned.Load(),
		Published: vm.st.publishedCount.Load(),
		Sealed:    vm.st.sealed.Load(),
	}, nil
}

//
// Lifecycle: retention policy, pins, deletion, and the reclaim scan
// that feeds the garbage collector (internal/gc).
//

// SetReclaimNotify registers a callback invoked after every lifecycle
// RPC that may create garbage. The collector registers a non-blocking
// kick so deletions reclaim promptly.
func (vm *VersionManager) SetReclaimNotify(fn func()) {
	vm.notifyMu.Lock()
	vm.reclaimNotify = fn
	vm.notifyMu.Unlock()
}

func (vm *VersionManager) reclaimKick() {
	vm.notifyMu.Lock()
	fn := vm.reclaimNotify
	vm.notifyMu.Unlock()
	if fn != nil {
		fn()
	}
}

func (vm *VersionManager) handleSetRetention(r *wire.Reader) (wire.Marshaler, error) {
	var req SetRetentionReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	bs, ok := vm.st.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	bs.mu.Lock()
	if bs.deleted {
		bs.mu.Unlock()
		return nil, ErrBlobNotFound
	}
	rec := vmRecord{Op: vmOpRetain, Blob: req.Blob, Val: req.Retain}
	if err := vm.logRecord(&rec); err != nil {
		bs.mu.Unlock()
		return nil, err
	}
	bs.retain, bs.retainSet = req.Retain, true
	bs.mu.Unlock()
	vm.reclaimKick()
	return nil, nil
}

func (vm *VersionManager) handleTruncateBefore(r *wire.Reader) (wire.Marshaler, error) {
	var req VersionRef
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	bs, ok := vm.st.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	bs.mu.Lock()
	if bs.deleted {
		bs.mu.Unlock()
		return nil, ErrBlobNotFound
	}
	// The latest published version always survives a truncation; only
	// DeleteBlob retires a whole BLOB. The clamped value is what gets
	// journaled, so replay is independent of publication timing.
	ver := req.Ver
	if ver > bs.published {
		ver = bs.published
	}
	if ver > bs.truncBefore {
		rec := vmRecord{Op: vmOpTrunc, Blob: req.Blob, Ver: ver}
		if err := vm.logRecord(&rec); err != nil {
			bs.mu.Unlock()
			return nil, err
		}
		bs.truncBefore = ver
	}
	bs.mu.Unlock()
	vm.reclaimKick()
	return nil, nil
}

func (vm *VersionManager) handleDeleteBlob(r *wire.Reader) (wire.Marshaler, error) {
	var req BlobRef
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	bs, ok := vm.st.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	bs.mu.Lock()
	if !bs.deleted {
		rec := vmRecord{Op: vmOpDelete, Blob: req.Blob}
		if err := vm.logRecord(&rec); err != nil {
			bs.mu.Unlock()
			return nil, err
		}
		vm.st.applyDeleteLocked(bs)
	}
	bs.mu.Unlock()
	vm.reclaimKick()
	return nil, nil
}

func (vm *VersionManager) handlePin(r *wire.Reader) (wire.Marshaler, error) {
	var req PinReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	bs, ok := vm.st.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	ttl := time.Duration(req.TTLMillis) * time.Millisecond
	if ttl <= 0 {
		ttl = vm.cfg.DefaultPinTTL
		if ttl <= 0 {
			ttl = time.Minute
		}
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if bs.deleted || bs.collectedGet(req.Ver) {
		// Too late: the version is already in the collector's hands. A
		// pin either lands before the reclaim scan (the version is then
		// excluded) or is refused here — there is no window where a
		// pinned version's pages disappear.
		return nil, ErrVersionCollected
	}
	if req.Ver == 0 || req.Ver > uint64(len(bs.records)) {
		return nil, ErrNoSuchVersion
	}
	// Pins are soft state, deliberately not journaled: a manager crash
	// forgets them, which costs at most one lease TTL of early
	// collection — the same bound as a crashed pin holder.
	if bs.pins == nil {
		bs.pins = make(map[uint64]*pinLease)
	}
	p := bs.pins[req.Ver]
	if p == nil {
		p = &pinLease{}
		bs.pins[req.Ver] = p
	}
	p.count++
	if exp := time.Now().Add(ttl); exp.After(p.expires) {
		p.expires = exp
	}
	return nil, nil
}

func (vm *VersionManager) handleUnpin(r *wire.Reader) (wire.Marshaler, error) {
	var req VersionRef
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	bs, ok := vm.st.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if p := bs.pins[req.Ver]; p != nil {
		p.count--
		if p.count <= 0 {
			delete(bs.pins, req.Ver)
		}
	}
	return nil, nil
}

// handleReclaimScan computes, marks, and hands out every newly dead
// version. Marking happens here, atomically with the scan, so reads of
// a handed-out version fail with ErrVersionCollected before its pages
// start disappearing, and no later pin can land on it. The journaled
// frontier record carries the computed target (pins already folded
// in), so replay does not depend on pin state.
func (vm *VersionManager) handleReclaimScan(r *wire.Reader) (wire.Marshaler, error) {
	resp := &ReclaimScanResp{}
	now := time.Now()
	for _, e := range vm.st.blobStates() {
		bs := e.bs
		bs.mu.Lock()
		to, blocked, advance := bs.reclaimTargetLocked(vm.cfg.RetainLatest, now)
		resp.PinsBlocked += blocked
		if advance {
			rec := vmRecord{Op: vmOpFrontier, Blob: e.id, Ver: to}
			if err := vm.logRecord(&rec); err != nil {
				// Skip this BLOB: the frontier did not move, no pages
				// are handed out, the next scan retries.
				bs.mu.Unlock()
				continue
			}
			// Build the work item BEFORE applying: a tombstoning
			// advance drops the record arrays.
			br := bs.buildReclaimLocked(e.id, to)
			vm.st.applyFrontierLocked(bs, rec)
			resp.Blobs = append(resp.Blobs, *br)
		}
		bs.mu.Unlock()
	}
	return resp, nil
}
