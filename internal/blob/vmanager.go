package blob

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"blobseer/internal/rpc"
	"blobseer/internal/segtree"
	"blobseer/internal/transport"
	"blobseer/internal/wire"
)

// Sentinel errors returned by the version manager. They cross the RPC
// boundary as message text; wire.RemoteError makes errors.Is work on
// the client side.
var (
	ErrBlobNotFound    = errors.New("blob: not found")
	ErrNotPublished    = errors.New("blob: version not published")
	ErrNoSuchVersion   = errors.New("blob: no such version")
	ErrWaitTimeout     = errors.New("blob: wait-published timeout")
	ErrVersionFinished = errors.New("blob: version already completed or sealed")
	// ErrVersionCollected reports a read of a version (or a whole BLOB)
	// the garbage collector has reclaimed: the version's pages may be
	// gone from the providers, so the only honest answer is this error,
	// never stale or short data.
	ErrVersionCollected = errors.New("blob: version collected")
)

// Version lifecycle inside the manager.
type vstatus uint8

const (
	vsPending vstatus = iota
	vsCompleted
	vsSealing
	vsSealed
)

// blobState is the version manager's bookkeeping for one BLOB. Each
// blobState carries its own lock, so writers of different BLOBs never
// contend on the version manager: assignment is serialized per BLOB
// (the paper's consistency requirement), not globally.
type blobState struct {
	mu       sync.Mutex
	pageSize uint64
	// Per assigned version v (index v-1):
	records    []segtree.WriteRecord
	sizes      []uint64
	status     []vstatus
	assignedAt []time.Time
	// published is the highest published version (0 = none). Versions
	// publish strictly in assignment order: v publishes only once v-1
	// has published and v has completed (or been sealed).
	published uint64
	waiters   map[uint64][]chan struct{}

	// Lifecycle state (internal/gc). Versions below truncBefore are
	// retirable; retain (when retainSet) overrides the manager's default
	// RetainLatest policy; deleted marks the whole BLOB dead. frontier
	// is the collection frontier: every version below it has been handed
	// to the collector — its pages may be gone, so reads must fail with
	// ErrVersionCollected. The frontier only advances (atomically with
	// the reclaim scan) and never passes a pinned version, so a pinned
	// snapshot's pages are never deleted and a pin on an already
	// collected version is refused — there is no in-between.
	retain      uint64
	retainSet   bool
	truncBefore uint64
	deleted     bool
	frontier    uint64 // versions < frontier are collected (0/1 = none)
	pins        map[uint64]*pinLease
}

// pinLease aggregates the live pins of one version: a refcount plus
// the latest lease expiry. Expired leases are pruned by reclaim scans,
// so a crashed reader delays collection by at most one TTL.
type pinLease struct {
	count   int
	expires time.Time
}

// collectedGet reports whether ver was handed to the collector.
// Version 0 (the empty initial snapshot) has no pages and is never
// collected.
func (bs *blobState) collectedGet(ver uint64) bool {
	return ver >= 1 && ver < bs.frontier
}

func (bs *blobState) info(ver uint64) VersionInfo {
	if ver == 0 {
		return VersionInfo{Ver: 0, Published: true}
	}
	i := ver - 1
	return VersionInfo{
		Ver:       ver,
		Size:      bs.sizes[i],
		Pages:     bs.records[i].PagesAfter,
		Published: ver <= bs.published,
		Sealed:    bs.status[i] == vsSealed || bs.status[i] == vsSealing,
	}
}

// removeWaiterLocked deregisters one waiter channel for ver. Callers
// whose wait ends without publication (timeout, server shutdown) must
// deregister, or the waiter list grows without bound while the version
// stays pending.
func (bs *blobState) removeWaiterLocked(ver uint64, ch chan struct{}) {
	chans := bs.waiters[ver]
	for i, c := range chans {
		if c == ch {
			chans[i] = chans[len(chans)-1]
			chans = chans[:len(chans)-1]
			break
		}
	}
	if len(chans) == 0 {
		delete(bs.waiters, ver)
	} else {
		bs.waiters[ver] = chans
	}
}

// VersionManagerConfig configures a version manager.
type VersionManagerConfig struct {
	// SealTimeout is how long an assigned version may stay pending
	// before the manager seals it (commits hole metadata) so the
	// publication chain cannot stall on a dead writer. Zero disables
	// automatic sealing (explicit Seal RPCs still work).
	SealTimeout time.Duration
	// Nodes is the metadata store used to commit hole metadata when
	// sealing. Required if sealing is used.
	Nodes segtree.NodeStore
	// RetainLatest is the default retention policy: keep only the
	// latest k published versions of every BLOB, letting reclaim scans
	// retire the rest. Zero keeps every version (BlobSeer's original
	// keep-forever model); per-BLOB SetRetention overrides it.
	RetainLatest uint64
	// DefaultPinTTL bounds pin leases whose request carries no TTL
	// (zero means one minute).
	DefaultPinTTL time.Duration
}

// vmShardCount is the number of shards of the blob map. Power of two so
// the shard index is a mask; sized well above typical core counts to
// keep the probability of two hot BLOBs colliding low.
const vmShardCount = 32

// vmShard holds one slice of the blob map. The shard lock guards only
// map membership; per-BLOB state is guarded by blobState.mu.
type vmShard struct {
	mu    sync.Mutex
	blobs map[uint64]*blobState
}

// VersionManager is BlobSeer's centralized version manager (§3.1.1):
// it assigns version numbers and append offsets, and is "responsible
// for ensuring consistency when concurrent writes to the same BLOB are
// issued". Assignment is the only serialized step of a write and
// exchanges O(1) data plus the write-record history delta.
//
// Locking is three-level so BLOBs never contend with each other:
// vm.mu guards only blob-id allocation, each shard's lock guards one
// slice of the id→state map, and every blobState has its own lock for
// assign/complete/seal/wait traffic.
type VersionManager struct {
	srv *rpc.Server
	cfg VersionManagerConfig

	mu       sync.Mutex // guards nextBlob
	nextBlob uint64

	shards [vmShardCount]vmShard

	assigned       atomic.Uint64
	publishedCount atomic.Uint64
	sealed         atomic.Uint64

	// reclaimNotify, when set, is called after any lifecycle change
	// that may create garbage (DeleteBlob, TruncateBefore,
	// SetRetention); the collector registers a non-blocking kick here
	// so deletions reclaim promptly instead of waiting for the next
	// periodic pass.
	notifyMu      sync.Mutex
	reclaimNotify func()

	done chan struct{}
	wg   sync.WaitGroup
}

// NewVersionManager starts a version manager at addr.
func NewVersionManager(net transport.Network, addr transport.Addr, cfg VersionManagerConfig) (*VersionManager, error) {
	srv, err := rpc.NewServer(net, addr)
	if err != nil {
		return nil, err
	}
	vm := &VersionManager{
		srv:  srv,
		cfg:  cfg,
		done: make(chan struct{}),
	}
	for i := range vm.shards {
		vm.shards[i].blobs = make(map[uint64]*blobState)
	}
	srv.Handle(VMCreateBlob, vm.handleCreateBlob)
	srv.Handle(VMOpenBlob, vm.handleOpenBlob)
	srv.Handle(VMAssign, vm.handleAssign)
	srv.Handle(VMComplete, vm.handleComplete)
	srv.Handle(VMSeal, vm.handleSeal)
	srv.Handle(VMGetVersion, vm.handleGetVersion)
	srv.Handle(VMLatest, vm.handleLatest)
	srv.Handle(VMWaitPublished, vm.handleWaitPublished)
	srv.Handle(VMListBlobs, vm.handleListBlobs)
	srv.Handle(VMStats, vm.handleStats)
	srv.Handle(VMSetRetention, vm.handleSetRetention)
	srv.Handle(VMTruncateBefore, vm.handleTruncateBefore)
	srv.Handle(VMDeleteBlob, vm.handleDeleteBlob)
	srv.Handle(VMPin, vm.handlePin)
	srv.Handle(VMUnpin, vm.handleUnpin)
	srv.Handle(VMReclaimScan, vm.handleReclaimScan)
	srv.Handle(VMHistory, vm.handleHistory)
	if cfg.SealTimeout > 0 {
		vm.wg.Add(1)
		go vm.sealLoop()
	}
	return vm, nil
}

// Addr returns the manager's endpoint.
func (vm *VersionManager) Addr() transport.Addr { return vm.srv.Addr() }

// Close stops the manager.
func (vm *VersionManager) Close() error {
	select {
	case <-vm.done:
	default:
		close(vm.done)
	}
	err := vm.srv.Close()
	vm.wg.Wait()
	return err
}

func (vm *VersionManager) shard(blob uint64) *vmShard {
	return &vm.shards[blob&(vmShardCount-1)]
}

// lookup resolves a blob id to its state without touching other shards.
func (vm *VersionManager) lookup(blob uint64) (*blobState, bool) {
	s := vm.shard(blob)
	s.mu.Lock()
	bs, ok := s.blobs[blob]
	s.mu.Unlock()
	return bs, ok
}

func (vm *VersionManager) handleCreateBlob(r *wire.Reader) (wire.Marshaler, error) {
	var req CreateBlobReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	if req.PageSize == 0 {
		return nil, errors.New("blob: zero page size")
	}
	vm.mu.Lock()
	vm.nextBlob++
	id := vm.nextBlob
	vm.mu.Unlock()

	s := vm.shard(id)
	s.mu.Lock()
	s.blobs[id] = &blobState{
		pageSize: req.PageSize,
		waiters:  make(map[uint64][]chan struct{}),
	}
	s.mu.Unlock()
	return &CreateBlobResp{Blob: id}, nil
}

func (vm *VersionManager) handleOpenBlob(r *wire.Reader) (wire.Marshaler, error) {
	var req BlobRef
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	bs, ok := vm.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if bs.deleted {
		return nil, ErrBlobNotFound
	}
	return &OpenBlobResp{PageSize: bs.pageSize, Latest: bs.info(bs.published)}, nil
}

func (vm *VersionManager) handleAssign(r *wire.Reader) (wire.Marshaler, error) {
	var req AssignReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	if req.Len == 0 {
		return nil, errors.New("blob: zero-length write")
	}
	bs, ok := vm.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if bs.deleted {
		return nil, ErrBlobNotFound
	}
	ps := bs.pageSize
	var prevSize uint64
	if n := len(bs.sizes); n > 0 {
		prevSize = bs.sizes[n-1]
	}

	var start uint64
	switch req.Kind {
	case KindAppend:
		// §3.1.2: "the offset is implicitly assumed to be the size of
		// the latest version" — latest *assigned*, so concurrent
		// appenders receive disjoint consecutive regions.
		start = prevSize
	case KindWrite:
		start = req.Off
	default:
		return nil, fmt.Errorf("blob: unknown write kind %d", req.Kind)
	}

	sizeAfter := start + req.Len
	if sizeAfter < prevSize {
		sizeAfter = prevSize
	}
	pageOff := start / ps
	pageEnd := (start + req.Len + ps - 1) / ps
	ver := uint64(len(bs.records)) + 1
	rec := segtree.WriteRecord{
		Ver:        ver,
		Off:        pageOff,
		N:          pageEnd - pageOff,
		PagesAfter: (sizeAfter + ps - 1) / ps,
	}
	bs.records = append(bs.records, rec)
	bs.sizes = append(bs.sizes, sizeAfter)
	bs.status = append(bs.status, vsPending)
	bs.assignedAt = append(bs.assignedAt, time.Now())
	vm.assigned.Add(1)

	// History delta: records in (SinceVer, ver).
	var hist []segtree.WriteRecord
	if req.SinceVer < ver-1 {
		hist = append(hist, bs.records[req.SinceVer:ver-1]...)
	}
	return &AssignResp{
		Ver:       ver,
		Start:     start,
		PrevSize:  prevSize,
		SizeAfter: sizeAfter,
		Record:    rec,
		History:   hist,
	}, nil
}

func (vm *VersionManager) handleComplete(r *wire.Reader) (wire.Marshaler, error) {
	var req VersionRef
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	bs, ok := vm.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if bs.deleted {
		return nil, ErrBlobNotFound
	}
	if req.Ver == 0 || req.Ver > uint64(len(bs.status)) {
		return nil, ErrNoSuchVersion
	}
	switch bs.status[req.Ver-1] {
	case vsPending:
		bs.status[req.Ver-1] = vsCompleted
		vm.advanceLocked(bs)
		return nil, nil
	default:
		// Sealed while the writer was finishing: the writer must know
		// its version did not (cleanly) publish.
		return nil, ErrVersionFinished
	}
}

// advanceLocked publishes the longest contiguous prefix of finished
// versions and wakes the corresponding waiters. Caller holds bs.mu.
func (vm *VersionManager) advanceLocked(bs *blobState) {
	for bs.published < uint64(len(bs.status)) {
		st := bs.status[bs.published]
		if st != vsCompleted && st != vsSealed {
			break
		}
		bs.published++
		vm.publishedCount.Add(1)
		if chans, ok := bs.waiters[bs.published]; ok {
			for _, ch := range chans {
				close(ch)
			}
			delete(bs.waiters, bs.published)
		}
	}
}

func (vm *VersionManager) handleSeal(r *wire.Reader) (wire.Marshaler, error) {
	var req VersionRef
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	if err := vm.seal(req.Blob, req.Ver); err != nil {
		return nil, err
	}
	return nil, nil
}

// seal aborts a pending version: the manager commits hole metadata for
// its write interval so readers of later versions see zeros there and
// the publication chain advances past the failed writer.
func (vm *VersionManager) seal(blob, ver uint64) error {
	bs, ok := vm.lookup(blob)
	if !ok {
		return ErrBlobNotFound
	}
	bs.mu.Lock()
	if bs.deleted {
		bs.mu.Unlock()
		return nil // the whole BLOB is dead; nothing left to unwedge
	}
	if ver == 0 || ver > uint64(len(bs.status)) {
		bs.mu.Unlock()
		return ErrNoSuchVersion
	}
	if bs.status[ver-1] != vsPending {
		bs.mu.Unlock()
		return nil // already finished; nothing to do
	}
	bs.status[ver-1] = vsSealing
	rec := bs.records[ver-1]
	history := append([]segtree.WriteRecord(nil), bs.records[:ver-1]...)
	bs.mu.Unlock()

	// Commit hole metadata outside the lock (network I/O).
	holes := make([]segtree.PageRef, rec.N)
	for i := range holes {
		holes[i] = segtree.PageRef{Hole: true}
	}
	var commitErr error
	if vm.cfg.Nodes != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		commitErr = segtree.Commit(ctx, vm.cfg.Nodes, blob, rec, history, holes)
		cancel()
	} else {
		commitErr = errors.New("blob: version manager has no metadata store for sealing")
	}

	bs.mu.Lock()
	defer bs.mu.Unlock()
	if commitErr != nil {
		// Roll back to pending; the seal loop will retry.
		bs.status[ver-1] = vsPending
		return fmt.Errorf("blob: seal %d/%d: %w", blob, ver, commitErr)
	}
	bs.status[ver-1] = vsSealed
	vm.sealed.Add(1)
	vm.advanceLocked(bs)
	return nil
}

// sealLoop periodically seals pending versions older than SealTimeout.
func (vm *VersionManager) sealLoop() {
	defer vm.wg.Done()
	tick := time.NewTicker(vm.cfg.SealTimeout / 4)
	defer tick.Stop()
	for {
		select {
		case <-vm.done:
			return
		case <-tick.C:
		}
		type target struct{ blob, ver uint64 }
		var targets []target
		now := time.Now()
		for i := range vm.shards {
			s := &vm.shards[i]
			s.mu.Lock()
			states := make(map[uint64]*blobState, len(s.blobs))
			for id, bs := range s.blobs {
				states[id] = bs
			}
			s.mu.Unlock()
			for id, bs := range states {
				bs.mu.Lock()
				if bs.deleted {
					bs.mu.Unlock()
					continue
				}
				// Only the version blocking publication can stall others;
				// seal any expired pending version though, oldest first.
				for v := bs.published + 1; v <= uint64(len(bs.status)); v++ {
					if bs.status[v-1] == vsPending && now.Sub(bs.assignedAt[v-1]) > vm.cfg.SealTimeout {
						targets = append(targets, target{id, v})
					}
				}
				bs.mu.Unlock()
			}
		}
		for _, t := range targets {
			// Errors are retried on the next tick.
			_ = vm.seal(t.blob, t.ver)
		}
	}
}

func (vm *VersionManager) handleGetVersion(r *wire.Reader) (wire.Marshaler, error) {
	var req VersionRef
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	bs, ok := vm.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	// Only versions behind the collection frontier are refused: a
	// pinned snapshot of a deleted BLOB stays readable until its pin
	// releases and the frontier passes it.
	if bs.collectedGet(req.Ver) {
		return nil, ErrVersionCollected
	}
	if req.Ver > uint64(len(bs.records)) {
		if bs.deleted {
			return nil, ErrVersionCollected
		}
		return nil, ErrNoSuchVersion
	}
	info := bs.info(req.Ver)
	return &info, nil
}

func (vm *VersionManager) handleLatest(r *wire.Reader) (wire.Marshaler, error) {
	var req BlobRef
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	bs, ok := vm.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if bs.deleted {
		return nil, ErrVersionCollected
	}
	info := bs.info(bs.published)
	return &info, nil
}

func (vm *VersionManager) handleWaitPublished(r *wire.Reader) (wire.Marshaler, error) {
	var req WaitPublishedReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	bs, ok := vm.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	bs.mu.Lock()
	if bs.collectedGet(req.Ver) {
		bs.mu.Unlock()
		return nil, ErrVersionCollected
	}
	// A version beyond the assigned range is not an error: the next
	// appender will be assigned it, and tailing readers (WaitVersion)
	// wait for exactly that. The waiter registered below fires when
	// publication reaches the version, however far in the future its
	// assignment lies; until then each wait returns ErrWaitTimeout and
	// the client's retry loop carries on.
	if req.Ver <= bs.published {
		info := bs.info(req.Ver)
		bs.mu.Unlock()
		return &info, nil
	}
	if bs.deleted {
		// The publication chain of a deleted BLOB never advances; fail
		// instead of blocking for the whole timeout.
		bs.mu.Unlock()
		return nil, ErrVersionCollected
	}
	ch := make(chan struct{})
	bs.waiters[req.Ver] = append(bs.waiters[req.Ver], ch)
	bs.mu.Unlock()

	timeout := time.Duration(req.TimeoutMillis) * time.Millisecond
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-ch:
		bs.mu.Lock()
		if bs.deleted || bs.collectedGet(req.Ver) {
			// Woken by DeleteBlob, not publication.
			bs.mu.Unlock()
			return nil, ErrVersionCollected
		}
		info := bs.info(req.Ver)
		bs.mu.Unlock()
		return &info, nil
	case <-timer.C:
		bs.mu.Lock()
		if req.Ver <= bs.published {
			// Published in the race window; the channel was (or is
			// being) closed by advanceLocked, not left behind.
			info := bs.info(req.Ver)
			bs.mu.Unlock()
			return &info, nil
		}
		bs.removeWaiterLocked(req.Ver, ch)
		bs.mu.Unlock()
		return nil, ErrWaitTimeout
	case <-vm.done:
		bs.mu.Lock()
		bs.removeWaiterLocked(req.Ver, ch)
		bs.mu.Unlock()
		return nil, rpc.ErrServerClosed
	}
}

// waiterCount reports the registered waiter channels for one version of
// one blob (test hook for the waiter-leak regression test).
func (vm *VersionManager) waiterCount(blob, ver uint64) int {
	bs, ok := vm.lookup(blob)
	if !ok {
		return 0
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return len(bs.waiters[ver])
}

// handleHistory enumerates the published versions still inside the
// retention window: everything from the collection frontier up to the
// latest published version, oldest first. The snapshot-first public
// API (dfs.VersionedFileSystem.Versions) is built on it.
func (vm *VersionManager) handleHistory(r *wire.Reader) (wire.Marshaler, error) {
	var req HistoryReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	bs, ok := vm.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if bs.deleted {
		return nil, ErrVersionCollected
	}
	from := bs.frontier
	if from < 1 {
		from = 1
	}
	if req.Limit > 0 && bs.published >= from && bs.published-from+1 > req.Limit {
		from = bs.published - req.Limit + 1
	}
	resp := &HistoryResp{}
	for v := from; v <= bs.published; v++ {
		resp.Infos = append(resp.Infos, bs.info(v))
	}
	return resp, nil
}

func (vm *VersionManager) handleListBlobs(r *wire.Reader) (wire.Marshaler, error) {
	vm.mu.Lock()
	next := vm.nextBlob
	vm.mu.Unlock()
	resp := &ListBlobsResp{Blobs: make([]uint64, 0, next)}
	for id := uint64(1); id <= next; id++ {
		if bs, ok := vm.lookup(id); ok {
			bs.mu.Lock()
			dead := bs.deleted
			bs.mu.Unlock()
			if !dead {
				resp.Blobs = append(resp.Blobs, id)
			}
		}
	}
	return resp, nil
}

func (vm *VersionManager) handleStats(r *wire.Reader) (wire.Marshaler, error) {
	var blobs uint64
	for i := range vm.shards {
		s := &vm.shards[i]
		s.mu.Lock()
		blobs += uint64(len(s.blobs))
		s.mu.Unlock()
	}
	return &VMStatsResp{
		Blobs:     blobs,
		Assigned:  vm.assigned.Load(),
		Published: vm.publishedCount.Load(),
		Sealed:    vm.sealed.Load(),
	}, nil
}

//
// Lifecycle: retention policy, pins, deletion, and the reclaim scan
// that feeds the garbage collector (internal/gc).
//

// SetReclaimNotify registers a callback invoked after every lifecycle
// RPC that may create garbage. The collector registers a non-blocking
// kick so deletions reclaim promptly.
func (vm *VersionManager) SetReclaimNotify(fn func()) {
	vm.notifyMu.Lock()
	vm.reclaimNotify = fn
	vm.notifyMu.Unlock()
}

func (vm *VersionManager) reclaimKick() {
	vm.notifyMu.Lock()
	fn := vm.reclaimNotify
	vm.notifyMu.Unlock()
	if fn != nil {
		fn()
	}
}

func (vm *VersionManager) handleSetRetention(r *wire.Reader) (wire.Marshaler, error) {
	var req SetRetentionReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	bs, ok := vm.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	bs.mu.Lock()
	if bs.deleted {
		bs.mu.Unlock()
		return nil, ErrBlobNotFound
	}
	bs.retain = req.Retain
	bs.retainSet = true
	bs.mu.Unlock()
	vm.reclaimKick()
	return nil, nil
}

func (vm *VersionManager) handleTruncateBefore(r *wire.Reader) (wire.Marshaler, error) {
	var req VersionRef
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	bs, ok := vm.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	bs.mu.Lock()
	if bs.deleted {
		bs.mu.Unlock()
		return nil, ErrBlobNotFound
	}
	// The latest published version always survives a truncation; only
	// DeleteBlob retires a whole BLOB.
	ver := req.Ver
	if ver > bs.published {
		ver = bs.published
	}
	if ver > bs.truncBefore {
		bs.truncBefore = ver
	}
	bs.mu.Unlock()
	vm.reclaimKick()
	return nil, nil
}

func (vm *VersionManager) handleDeleteBlob(r *wire.Reader) (wire.Marshaler, error) {
	var req BlobRef
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	bs, ok := vm.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	bs.mu.Lock()
	if !bs.deleted {
		bs.deleted = true
		// Wake every waiter; they observe deleted and fail cleanly.
		for ver, chans := range bs.waiters {
			for _, ch := range chans {
				close(ch)
			}
			delete(bs.waiters, ver)
		}
	}
	bs.mu.Unlock()
	vm.reclaimKick()
	return nil, nil
}

func (vm *VersionManager) handlePin(r *wire.Reader) (wire.Marshaler, error) {
	var req PinReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	bs, ok := vm.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	ttl := time.Duration(req.TTLMillis) * time.Millisecond
	if ttl <= 0 {
		ttl = vm.cfg.DefaultPinTTL
		if ttl <= 0 {
			ttl = time.Minute
		}
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if bs.deleted || bs.collectedGet(req.Ver) {
		// Too late: the version is already in the collector's hands. A
		// pin either lands before the reclaim scan (the version is then
		// excluded) or is refused here — there is no window where a
		// pinned version's pages disappear.
		return nil, ErrVersionCollected
	}
	if req.Ver == 0 || req.Ver > uint64(len(bs.records)) {
		return nil, ErrNoSuchVersion
	}
	if bs.pins == nil {
		bs.pins = make(map[uint64]*pinLease)
	}
	p := bs.pins[req.Ver]
	if p == nil {
		p = &pinLease{}
		bs.pins[req.Ver] = p
	}
	p.count++
	if exp := time.Now().Add(ttl); exp.After(p.expires) {
		p.expires = exp
	}
	return nil, nil
}

func (vm *VersionManager) handleUnpin(r *wire.Reader) (wire.Marshaler, error) {
	var req VersionRef
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	bs, ok := vm.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if p := bs.pins[req.Ver]; p != nil {
		p.count--
		if p.count <= 0 {
			delete(bs.pins, req.Ver)
		}
	}
	return nil, nil
}

// handleReclaimScan computes, marks, and hands out every newly dead
// version. Marking happens here, atomically with the scan, so reads of
// a handed-out version fail with ErrVersionCollected before its pages
// start disappearing, and no later pin can land on it.
func (vm *VersionManager) handleReclaimScan(r *wire.Reader) (wire.Marshaler, error) {
	resp := &ReclaimScanResp{}
	now := time.Now()
	for i := range vm.shards {
		s := &vm.shards[i]
		s.mu.Lock()
		states := make(map[uint64]*blobState, len(s.blobs))
		for id, bs := range s.blobs {
			states[id] = bs
		}
		s.mu.Unlock()
		for id, bs := range states {
			bs.mu.Lock()
			br, blocked := bs.reclaimLocked(id, vm.cfg.RetainLatest, now)
			bs.mu.Unlock()
			resp.PinsBlocked += blocked
			if br != nil {
				resp.Blobs = append(resp.Blobs, *br)
			}
		}
	}
	return resp, nil
}

// reclaimLocked is one BLOB's share of a reclaim scan. Caller holds
// bs.mu. It prunes expired pins, advances the collection frontier as
// far as the effective retention policy and the oldest live pin allow,
// and returns the frontier-advance work item (nil when the frontier
// did not move). Returns the count of versions a pin held back.
func (bs *blobState) reclaimLocked(id, defaultRetain uint64, now time.Time) (*BlobReclaim, uint64) {

	// policyDead is the exclusive upper bound the policy wants dead:
	// everything below it may go. The latest published version always
	// survives unless the BLOB is deleted.
	var policyDead uint64
	if bs.deleted {
		policyDead = uint64(len(bs.records)) + 1
	} else {
		policyDead = bs.truncBefore
		retain := defaultRetain
		if bs.retainSet {
			retain = bs.retain
		}
		if retain > 0 && bs.published > retain {
			if v := bs.published - retain + 1; v > policyDead {
				policyDead = v
			}
		}
		if policyDead > bs.published {
			policyDead = bs.published
		}
	}

	// The frontier never passes a live pin: a pinned snapshot keeps
	// every page it can reach, which is exactly "no version >= the pin's
	// own view boundary dies". Once the pin releases (or its lease
	// expires), the next scan finishes the advance. Expired leases stop
	// clamping but keep their entry: deleting it here would let the
	// stale holder's eventual Unpin steal a reference from a fresh pin
	// on the same version. Entries are pruned only once the frontier
	// passes them (new pins below the frontier are refused, so a late
	// Unpin of a pruned pin is a harmless no-op).
	effective := policyDead
	for v, p := range bs.pins {
		if now.After(p.expires) {
			continue
		}
		if v < effective {
			effective = v
		}
	}
	var blocked uint64
	if effective < policyDead {
		from := effective
		if bs.frontier > from {
			from = bs.frontier
		}
		if policyDead > from {
			blocked = policyDead - from
		}
	}

	from := bs.frontier
	if from < 1 {
		from = 1
	}
	if effective <= from {
		return nil, blocked
	}
	bs.frontier = effective
	for v := range bs.pins {
		if v < bs.frontier {
			delete(bs.pins, v)
		}
	}

	maxVer := effective
	if maxVer > uint64(len(bs.records)) {
		maxVer = uint64(len(bs.records))
	}
	br := &BlobReclaim{
		Blob:     id,
		PageSize: bs.pageSize,
		Deleted:  bs.deleted && effective == uint64(len(bs.records))+1,
		From:     from,
		To:       effective,
		// Zero-copy share of the record prefix: write records are
		// written once at assignment and never mutated, and appends
		// never touch indices below maxVer, so encoding this slice
		// outside the lock is race-free — the scan holds bs.mu for
		// O(1) regardless of history length. The full prefix ships
		// (rather than just (From, To]) so every scan item is
		// self-contained: a collector restart — or a scan response
		// lost to a timeout after the frontier advanced (the one leak
		// window of the mark-first design) — costs at most the lost
		// window's pages, never a corrupted reclaim of later windows.
		Records: bs.records[:maxVer:maxVer],
	}
	// A fully collected, unpinned, deleted BLOB needs only a tombstone:
	// drop the bulk arrays, keep the flags so reads keep failing with
	// ErrVersionCollected.
	if br.Deleted {
		bs.records, bs.sizes, bs.status, bs.assignedAt = nil, nil, nil, nil
	}
	return br, blocked
}
