package blob

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"blobseer/internal/rpc"
	"blobseer/internal/segtree"
	"blobseer/internal/transport"
	"blobseer/internal/wire"
)

// Sentinel errors returned by the version manager. They cross the RPC
// boundary as message text; wire.RemoteError makes errors.Is work on
// the client side.
var (
	ErrBlobNotFound    = errors.New("blob: not found")
	ErrNotPublished    = errors.New("blob: version not published")
	ErrNoSuchVersion   = errors.New("blob: no such version")
	ErrWaitTimeout     = errors.New("blob: wait-published timeout")
	ErrVersionFinished = errors.New("blob: version already completed or sealed")
)

// Version lifecycle inside the manager.
type vstatus uint8

const (
	vsPending vstatus = iota
	vsCompleted
	vsSealing
	vsSealed
)

// blobState is the version manager's bookkeeping for one BLOB. Each
// blobState carries its own lock, so writers of different BLOBs never
// contend on the version manager: assignment is serialized per BLOB
// (the paper's consistency requirement), not globally.
type blobState struct {
	mu       sync.Mutex
	pageSize uint64
	// Per assigned version v (index v-1):
	records    []segtree.WriteRecord
	sizes      []uint64
	status     []vstatus
	assignedAt []time.Time
	// published is the highest published version (0 = none). Versions
	// publish strictly in assignment order: v publishes only once v-1
	// has published and v has completed (or been sealed).
	published uint64
	waiters   map[uint64][]chan struct{}
}

func (bs *blobState) info(ver uint64) VersionInfo {
	if ver == 0 {
		return VersionInfo{Ver: 0, Published: true}
	}
	i := ver - 1
	return VersionInfo{
		Ver:       ver,
		Size:      bs.sizes[i],
		Pages:     bs.records[i].PagesAfter,
		Published: ver <= bs.published,
		Sealed:    bs.status[i] == vsSealed || bs.status[i] == vsSealing,
	}
}

// removeWaiterLocked deregisters one waiter channel for ver. Callers
// whose wait ends without publication (timeout, server shutdown) must
// deregister, or the waiter list grows without bound while the version
// stays pending.
func (bs *blobState) removeWaiterLocked(ver uint64, ch chan struct{}) {
	chans := bs.waiters[ver]
	for i, c := range chans {
		if c == ch {
			chans[i] = chans[len(chans)-1]
			chans = chans[:len(chans)-1]
			break
		}
	}
	if len(chans) == 0 {
		delete(bs.waiters, ver)
	} else {
		bs.waiters[ver] = chans
	}
}

// VersionManagerConfig configures a version manager.
type VersionManagerConfig struct {
	// SealTimeout is how long an assigned version may stay pending
	// before the manager seals it (commits hole metadata) so the
	// publication chain cannot stall on a dead writer. Zero disables
	// automatic sealing (explicit Seal RPCs still work).
	SealTimeout time.Duration
	// Nodes is the metadata store used to commit hole metadata when
	// sealing. Required if sealing is used.
	Nodes segtree.NodeStore
}

// vmShardCount is the number of shards of the blob map. Power of two so
// the shard index is a mask; sized well above typical core counts to
// keep the probability of two hot BLOBs colliding low.
const vmShardCount = 32

// vmShard holds one slice of the blob map. The shard lock guards only
// map membership; per-BLOB state is guarded by blobState.mu.
type vmShard struct {
	mu    sync.Mutex
	blobs map[uint64]*blobState
}

// VersionManager is BlobSeer's centralized version manager (§3.1.1):
// it assigns version numbers and append offsets, and is "responsible
// for ensuring consistency when concurrent writes to the same BLOB are
// issued". Assignment is the only serialized step of a write and
// exchanges O(1) data plus the write-record history delta.
//
// Locking is three-level so BLOBs never contend with each other:
// vm.mu guards only blob-id allocation, each shard's lock guards one
// slice of the id→state map, and every blobState has its own lock for
// assign/complete/seal/wait traffic.
type VersionManager struct {
	srv *rpc.Server
	cfg VersionManagerConfig

	mu       sync.Mutex // guards nextBlob
	nextBlob uint64

	shards [vmShardCount]vmShard

	assigned       atomic.Uint64
	publishedCount atomic.Uint64
	sealed         atomic.Uint64

	done chan struct{}
	wg   sync.WaitGroup
}

// NewVersionManager starts a version manager at addr.
func NewVersionManager(net transport.Network, addr transport.Addr, cfg VersionManagerConfig) (*VersionManager, error) {
	srv, err := rpc.NewServer(net, addr)
	if err != nil {
		return nil, err
	}
	vm := &VersionManager{
		srv:  srv,
		cfg:  cfg,
		done: make(chan struct{}),
	}
	for i := range vm.shards {
		vm.shards[i].blobs = make(map[uint64]*blobState)
	}
	srv.Handle(VMCreateBlob, vm.handleCreateBlob)
	srv.Handle(VMOpenBlob, vm.handleOpenBlob)
	srv.Handle(VMAssign, vm.handleAssign)
	srv.Handle(VMComplete, vm.handleComplete)
	srv.Handle(VMSeal, vm.handleSeal)
	srv.Handle(VMGetVersion, vm.handleGetVersion)
	srv.Handle(VMLatest, vm.handleLatest)
	srv.Handle(VMWaitPublished, vm.handleWaitPublished)
	srv.Handle(VMListBlobs, vm.handleListBlobs)
	srv.Handle(VMStats, vm.handleStats)
	if cfg.SealTimeout > 0 {
		vm.wg.Add(1)
		go vm.sealLoop()
	}
	return vm, nil
}

// Addr returns the manager's endpoint.
func (vm *VersionManager) Addr() transport.Addr { return vm.srv.Addr() }

// Close stops the manager.
func (vm *VersionManager) Close() error {
	select {
	case <-vm.done:
	default:
		close(vm.done)
	}
	err := vm.srv.Close()
	vm.wg.Wait()
	return err
}

func (vm *VersionManager) shard(blob uint64) *vmShard {
	return &vm.shards[blob&(vmShardCount-1)]
}

// lookup resolves a blob id to its state without touching other shards.
func (vm *VersionManager) lookup(blob uint64) (*blobState, bool) {
	s := vm.shard(blob)
	s.mu.Lock()
	bs, ok := s.blobs[blob]
	s.mu.Unlock()
	return bs, ok
}

func (vm *VersionManager) handleCreateBlob(r *wire.Reader) (wire.Marshaler, error) {
	var req CreateBlobReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	if req.PageSize == 0 {
		return nil, errors.New("blob: zero page size")
	}
	vm.mu.Lock()
	vm.nextBlob++
	id := vm.nextBlob
	vm.mu.Unlock()

	s := vm.shard(id)
	s.mu.Lock()
	s.blobs[id] = &blobState{
		pageSize: req.PageSize,
		waiters:  make(map[uint64][]chan struct{}),
	}
	s.mu.Unlock()
	return &CreateBlobResp{Blob: id}, nil
}

func (vm *VersionManager) handleOpenBlob(r *wire.Reader) (wire.Marshaler, error) {
	var req BlobRef
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	bs, ok := vm.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return &OpenBlobResp{PageSize: bs.pageSize, Latest: bs.info(bs.published)}, nil
}

func (vm *VersionManager) handleAssign(r *wire.Reader) (wire.Marshaler, error) {
	var req AssignReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	if req.Len == 0 {
		return nil, errors.New("blob: zero-length write")
	}
	bs, ok := vm.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	ps := bs.pageSize
	var prevSize uint64
	if n := len(bs.sizes); n > 0 {
		prevSize = bs.sizes[n-1]
	}

	var start uint64
	switch req.Kind {
	case KindAppend:
		// §3.1.2: "the offset is implicitly assumed to be the size of
		// the latest version" — latest *assigned*, so concurrent
		// appenders receive disjoint consecutive regions.
		start = prevSize
	case KindWrite:
		start = req.Off
	default:
		return nil, fmt.Errorf("blob: unknown write kind %d", req.Kind)
	}

	sizeAfter := start + req.Len
	if sizeAfter < prevSize {
		sizeAfter = prevSize
	}
	pageOff := start / ps
	pageEnd := (start + req.Len + ps - 1) / ps
	ver := uint64(len(bs.records)) + 1
	rec := segtree.WriteRecord{
		Ver:        ver,
		Off:        pageOff,
		N:          pageEnd - pageOff,
		PagesAfter: (sizeAfter + ps - 1) / ps,
	}
	bs.records = append(bs.records, rec)
	bs.sizes = append(bs.sizes, sizeAfter)
	bs.status = append(bs.status, vsPending)
	bs.assignedAt = append(bs.assignedAt, time.Now())
	vm.assigned.Add(1)

	// History delta: records in (SinceVer, ver).
	var hist []segtree.WriteRecord
	if req.SinceVer < ver-1 {
		hist = append(hist, bs.records[req.SinceVer:ver-1]...)
	}
	return &AssignResp{
		Ver:       ver,
		Start:     start,
		PrevSize:  prevSize,
		SizeAfter: sizeAfter,
		Record:    rec,
		History:   hist,
	}, nil
}

func (vm *VersionManager) handleComplete(r *wire.Reader) (wire.Marshaler, error) {
	var req VersionRef
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	bs, ok := vm.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if req.Ver == 0 || req.Ver > uint64(len(bs.status)) {
		return nil, ErrNoSuchVersion
	}
	switch bs.status[req.Ver-1] {
	case vsPending:
		bs.status[req.Ver-1] = vsCompleted
		vm.advanceLocked(bs)
		return nil, nil
	default:
		// Sealed while the writer was finishing: the writer must know
		// its version did not (cleanly) publish.
		return nil, ErrVersionFinished
	}
}

// advanceLocked publishes the longest contiguous prefix of finished
// versions and wakes the corresponding waiters. Caller holds bs.mu.
func (vm *VersionManager) advanceLocked(bs *blobState) {
	for bs.published < uint64(len(bs.status)) {
		st := bs.status[bs.published]
		if st != vsCompleted && st != vsSealed {
			break
		}
		bs.published++
		vm.publishedCount.Add(1)
		if chans, ok := bs.waiters[bs.published]; ok {
			for _, ch := range chans {
				close(ch)
			}
			delete(bs.waiters, bs.published)
		}
	}
}

func (vm *VersionManager) handleSeal(r *wire.Reader) (wire.Marshaler, error) {
	var req VersionRef
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	if err := vm.seal(req.Blob, req.Ver); err != nil {
		return nil, err
	}
	return nil, nil
}

// seal aborts a pending version: the manager commits hole metadata for
// its write interval so readers of later versions see zeros there and
// the publication chain advances past the failed writer.
func (vm *VersionManager) seal(blob, ver uint64) error {
	bs, ok := vm.lookup(blob)
	if !ok {
		return ErrBlobNotFound
	}
	bs.mu.Lock()
	if ver == 0 || ver > uint64(len(bs.status)) {
		bs.mu.Unlock()
		return ErrNoSuchVersion
	}
	if bs.status[ver-1] != vsPending {
		bs.mu.Unlock()
		return nil // already finished; nothing to do
	}
	bs.status[ver-1] = vsSealing
	rec := bs.records[ver-1]
	history := append([]segtree.WriteRecord(nil), bs.records[:ver-1]...)
	bs.mu.Unlock()

	// Commit hole metadata outside the lock (network I/O).
	holes := make([]segtree.PageRef, rec.N)
	for i := range holes {
		holes[i] = segtree.PageRef{Hole: true}
	}
	var commitErr error
	if vm.cfg.Nodes != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		commitErr = segtree.Commit(ctx, vm.cfg.Nodes, blob, rec, history, holes)
		cancel()
	} else {
		commitErr = errors.New("blob: version manager has no metadata store for sealing")
	}

	bs.mu.Lock()
	defer bs.mu.Unlock()
	if commitErr != nil {
		// Roll back to pending; the seal loop will retry.
		bs.status[ver-1] = vsPending
		return fmt.Errorf("blob: seal %d/%d: %w", blob, ver, commitErr)
	}
	bs.status[ver-1] = vsSealed
	vm.sealed.Add(1)
	vm.advanceLocked(bs)
	return nil
}

// sealLoop periodically seals pending versions older than SealTimeout.
func (vm *VersionManager) sealLoop() {
	defer vm.wg.Done()
	tick := time.NewTicker(vm.cfg.SealTimeout / 4)
	defer tick.Stop()
	for {
		select {
		case <-vm.done:
			return
		case <-tick.C:
		}
		type target struct{ blob, ver uint64 }
		var targets []target
		now := time.Now()
		for i := range vm.shards {
			s := &vm.shards[i]
			s.mu.Lock()
			states := make(map[uint64]*blobState, len(s.blobs))
			for id, bs := range s.blobs {
				states[id] = bs
			}
			s.mu.Unlock()
			for id, bs := range states {
				bs.mu.Lock()
				// Only the version blocking publication can stall others;
				// seal any expired pending version though, oldest first.
				for v := bs.published + 1; v <= uint64(len(bs.status)); v++ {
					if bs.status[v-1] == vsPending && now.Sub(bs.assignedAt[v-1]) > vm.cfg.SealTimeout {
						targets = append(targets, target{id, v})
					}
				}
				bs.mu.Unlock()
			}
		}
		for _, t := range targets {
			// Errors are retried on the next tick.
			_ = vm.seal(t.blob, t.ver)
		}
	}
}

func (vm *VersionManager) handleGetVersion(r *wire.Reader) (wire.Marshaler, error) {
	var req VersionRef
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	bs, ok := vm.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if req.Ver > uint64(len(bs.records)) {
		return nil, ErrNoSuchVersion
	}
	info := bs.info(req.Ver)
	return &info, nil
}

func (vm *VersionManager) handleLatest(r *wire.Reader) (wire.Marshaler, error) {
	var req BlobRef
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	bs, ok := vm.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	info := bs.info(bs.published)
	return &info, nil
}

func (vm *VersionManager) handleWaitPublished(r *wire.Reader) (wire.Marshaler, error) {
	var req WaitPublishedReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	bs, ok := vm.lookup(req.Blob)
	if !ok {
		return nil, ErrBlobNotFound
	}
	bs.mu.Lock()
	if req.Ver > uint64(len(bs.records)) {
		bs.mu.Unlock()
		return nil, ErrNoSuchVersion
	}
	if req.Ver <= bs.published {
		info := bs.info(req.Ver)
		bs.mu.Unlock()
		return &info, nil
	}
	ch := make(chan struct{})
	bs.waiters[req.Ver] = append(bs.waiters[req.Ver], ch)
	bs.mu.Unlock()

	timeout := time.Duration(req.TimeoutMillis) * time.Millisecond
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-ch:
		bs.mu.Lock()
		info := bs.info(req.Ver)
		bs.mu.Unlock()
		return &info, nil
	case <-timer.C:
		bs.mu.Lock()
		if req.Ver <= bs.published {
			// Published in the race window; the channel was (or is
			// being) closed by advanceLocked, not left behind.
			info := bs.info(req.Ver)
			bs.mu.Unlock()
			return &info, nil
		}
		bs.removeWaiterLocked(req.Ver, ch)
		bs.mu.Unlock()
		return nil, ErrWaitTimeout
	case <-vm.done:
		bs.mu.Lock()
		bs.removeWaiterLocked(req.Ver, ch)
		bs.mu.Unlock()
		return nil, rpc.ErrServerClosed
	}
}

// waiterCount reports the registered waiter channels for one version of
// one blob (test hook for the waiter-leak regression test).
func (vm *VersionManager) waiterCount(blob, ver uint64) int {
	bs, ok := vm.lookup(blob)
	if !ok {
		return 0
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return len(bs.waiters[ver])
}

func (vm *VersionManager) handleListBlobs(r *wire.Reader) (wire.Marshaler, error) {
	vm.mu.Lock()
	next := vm.nextBlob
	vm.mu.Unlock()
	resp := &ListBlobsResp{Blobs: make([]uint64, 0, next)}
	for id := uint64(1); id <= next; id++ {
		if _, ok := vm.lookup(id); ok {
			resp.Blobs = append(resp.Blobs, id)
		}
	}
	return resp, nil
}

func (vm *VersionManager) handleStats(r *wire.Reader) (wire.Marshaler, error) {
	var blobs uint64
	for i := range vm.shards {
		s := &vm.shards[i]
		s.mu.Lock()
		blobs += uint64(len(s.blobs))
		s.mu.Unlock()
	}
	return &VMStatsResp{
		Blobs:     blobs,
		Assigned:  vm.assigned.Load(),
		Published: vm.publishedCount.Load(),
		Sealed:    vm.sealed.Load(),
	}, nil
}
