package blob

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"blobseer/internal/pagestore"
	"blobseer/internal/transport"
)

// TestFailoverConcurrentAppends drives concurrent appenders across all
// shards while one shard is killed mid-workload and taken over ~100ms
// later. Built to run under -race: the kill/restart races against live
// routed calls on every writer. Every acknowledged append must read
// back byte-identical afterwards — the router's retry plus journal
// replay means a mid-flight failover costs latency, never data.
func TestFailoverConcurrentAppends(t *testing.T) {
	const (
		shards   = 3
		writers  = 9
		appends  = 8
		payload  = 256
		pageSize = 1024
	)
	net := transport.NewMemNet()
	cluster, err := NewCluster(net, ClusterConfig{
		Providers:  4,
		VMShards:   shards,
		JournalDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	type acked struct {
		ver  uint64
		seed uint64
	}
	blobs := make([]*Blob, writers)
	clients := make([]*Client, writers)
	ackedBy := make([][]acked, writers)
	for i := range blobs {
		cl := cluster.Client(fmt.Sprintf("failover-cli-%d", i))
		defer cl.Close()
		clients[i] = cl
		bl, err := cl.Create(ctx, pageSize)
		if err != nil {
			t.Fatal(err)
		}
		blobs[i] = bl
	}

	// Victim: the shard owning writer 0's blob, so at least one writer
	// is guaranteed to append straight through its own shard's outage.
	victimAddr := clients[0].VMRouter().Shard(blobs[0].ID())
	victim := -1
	for i, addr := range cluster.VMAddrs() {
		if addr == victimAddr {
			victim = i
		}
	}
	if victim < 0 {
		t.Fatalf("no shard owns blob %d", blobs[0].ID())
	}

	var wg sync.WaitGroup
	for i := range blobs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			bl := blobs[w]
			data := make([]byte, payload)
			for k := 0; k < appends; k++ {
				seed := uint64(w*1000 + k)
				pagestore.Fill(data, seed)
				res, err := bl.Append(ctx, data)
				if err != nil {
					t.Errorf("writer %d append %d: %v", w, k, err)
					return
				}
				ackedBy[w] = append(ackedBy[w], acked{ver: res.Ver, seed: seed})
			}
		}(i)
	}

	// Let the workload get going, then crash the victim shard and bring
	// the standby up from its journal while appends are in flight.
	time.Sleep(10 * time.Millisecond)
	if err := cluster.KillVM(victim); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if err := cluster.RestartVM(victim); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Every acknowledged append reads back byte-identical through a
	// fresh client (no warm caches hiding lost metadata).
	verifier := cluster.Client("failover-verify")
	defer verifier.Close()
	want := make([]byte, payload)
	for w, bl := range blobs {
		fresh, err := verifier.Open(ctx, bl.ID())
		if err != nil {
			t.Fatalf("writer %d: reopen: %v", w, err)
		}
		for _, a := range ackedBy[w] {
			wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
			if _, err := fresh.WaitPublished(wctx, a.ver); err != nil {
				cancel()
				t.Fatalf("writer %d v%d never published after failover: %v", w, a.ver, err)
			}
			cancel()
			got, err := fresh.ReadAt(ctx, a.ver, (a.ver-1)*payload, payload)
			if err != nil {
				t.Fatalf("writer %d v%d: read acked append: %v", w, a.ver, err)
			}
			pagestore.Fill(want, a.seed)
			if !bytes.Equal(got, want) {
				t.Fatalf("writer %d v%d: acked append corrupted after failover", w, a.ver)
			}
		}
	}
}
