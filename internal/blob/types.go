// Package blob implements the BlobSeer data-management service of the
// paper (§3.1): a versioning-based, concurrency-optimized BLOB store.
//
// Architecture (one RPC service per entity, mirroring the original):
//
//   - data providers store pages (provider.go);
//   - the provider manager assigns pages to providers with a pluggable
//     load-balancing strategy (pmanager.go);
//   - metadata providers form a DHT holding the versioned segment-tree
//     nodes (package dht + mdstore.go);
//   - the version manager assigns version numbers and append offsets,
//     and publishes versions in order (vmanager.go);
//   - the client library runs the decoupled append/write pipeline and
//     serves reads of any published version (client.go);
//   - cluster.go wires a whole in-process deployment together.
//
// The append pipeline is the paper's §3.1.2: pages are written in
// parallel to providers, the version manager serializes only an O(1)
// version-assignment exchange, metadata commits in one batched DHT
// write computed locally (package segtree), and versions publish
// strictly in assignment order.
package blob

import (
	"blobseer/internal/pagestore"
	"blobseer/internal/rpc"
	"blobseer/internal/segtree"
	"blobseer/internal/wire"
)

// Service names used to build endpoint addresses.
const (
	SvcVersionManager  = "vmanager"
	SvcProviderManager = "pmanager"
	SvcProvider        = "provider"
	SvcMetadata        = "metadata"
)

// Version manager methods.
var (
	VMCreateBlob     = rpc.M(1, "vm.CreateBlob")
	VMOpenBlob       = rpc.M(2, "vm.OpenBlob")
	VMAssign         = rpc.M(3, "vm.Assign")
	VMComplete       = rpc.M(4, "vm.Complete")
	VMSeal           = rpc.M(5, "vm.Seal")
	VMGetVersion     = rpc.M(6, "vm.GetVersion")
	VMLatest         = rpc.M(7, "vm.Latest")
	VMWaitPublished  = rpc.M(8, "vm.WaitPublished")
	VMListBlobs      = rpc.M(9, "vm.ListBlobs")
	VMStats          = rpc.M(10, "vm.Stats")
	VMSetRetention   = rpc.M(11, "vm.SetRetention")
	VMTruncateBefore = rpc.M(12, "vm.TruncateBefore")
	VMDeleteBlob     = rpc.M(13, "vm.DeleteBlob")
	VMPin            = rpc.M(14, "vm.Pin")
	VMUnpin          = rpc.M(15, "vm.Unpin")
	VMReclaimScan    = rpc.M(16, "vm.ReclaimScan")
	VMHistory        = rpc.M(17, "vm.History")
)

// Provider manager methods.
var (
	PMRegister  = rpc.M(1, "pm.Register")
	PMAlloc     = rpc.M(2, "pm.Alloc")
	PMProviders = rpc.M(3, "pm.Providers")
)

// Provider methods.
var (
	ProvPutPage     = rpc.M(1, "prov.PutPage")
	ProvGetPage     = rpc.M(2, "prov.GetPage")
	ProvStats       = rpc.M(3, "prov.Stats")
	ProvDeletePages = rpc.M(4, "prov.DeletePages")
)

// Write kinds for AssignReq.
const (
	KindAppend = 1
	KindWrite  = 2
)

//
// Shared message helpers.
//

func appendWriteRecord(b []byte, w segtree.WriteRecord) []byte {
	b = wire.AppendUvarint(b, w.Ver)
	b = wire.AppendUvarint(b, w.Off)
	b = wire.AppendUvarint(b, w.N)
	b = wire.AppendUvarint(b, w.PagesAfter)
	return b
}

func decodeWriteRecord(r *wire.Reader) segtree.WriteRecord {
	var w segtree.WriteRecord
	w.Ver = r.Uvarint()
	w.Off = r.Uvarint()
	w.N = r.Uvarint()
	w.PagesAfter = r.Uvarint()
	return w
}

func appendPageKey(b []byte, k pagestore.Key) []byte {
	b = wire.AppendUvarint(b, k.Blob)
	b = wire.AppendUvarint(b, k.Version)
	b = wire.AppendUvarint(b, k.Index)
	return b
}

func decodePageKey(r *wire.Reader) pagestore.Key {
	var k pagestore.Key
	k.Blob = r.Uvarint()
	k.Version = r.Uvarint()
	k.Index = r.Uvarint()
	return k
}

//
// Version manager messages.
//

// CreateBlobReq creates a BLOB with the given page size.
type CreateBlobReq struct{ PageSize uint64 }

// AppendTo implements wire.Marshaler.
func (m *CreateBlobReq) AppendTo(b []byte) []byte { return wire.AppendUvarint(b, m.PageSize) }

// DecodeFrom implements wire.Unmarshaler.
func (m *CreateBlobReq) DecodeFrom(r *wire.Reader) error {
	m.PageSize = r.Uvarint()
	return r.Err()
}

// CreateBlobResp returns the new BLOB's id.
type CreateBlobResp struct{ Blob uint64 }

// AppendTo implements wire.Marshaler.
func (m *CreateBlobResp) AppendTo(b []byte) []byte { return wire.AppendUvarint(b, m.Blob) }

// DecodeFrom implements wire.Unmarshaler.
func (m *CreateBlobResp) DecodeFrom(r *wire.Reader) error {
	m.Blob = r.Uvarint()
	return r.Err()
}

// BlobRef names a BLOB.
type BlobRef struct{ Blob uint64 }

// AppendTo implements wire.Marshaler.
func (m *BlobRef) AppendTo(b []byte) []byte { return wire.AppendUvarint(b, m.Blob) }

// DecodeFrom implements wire.Unmarshaler.
func (m *BlobRef) DecodeFrom(r *wire.Reader) error {
	m.Blob = r.Uvarint()
	return r.Err()
}

// OpenBlobResp describes a BLOB for a client opening it.
type OpenBlobResp struct {
	PageSize uint64
	Latest   VersionInfo
}

// AppendTo implements wire.Marshaler.
func (m *OpenBlobResp) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, m.PageSize)
	return m.Latest.AppendTo(b)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *OpenBlobResp) DecodeFrom(r *wire.Reader) error {
	m.PageSize = r.Uvarint()
	return m.Latest.DecodeFrom(r)
}

// VersionInfo describes one version of a BLOB.
type VersionInfo struct {
	Ver       uint64
	Size      uint64 // bytes
	Pages     uint64
	Published bool
	Sealed    bool
}

// AppendTo implements wire.Marshaler.
func (m *VersionInfo) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Ver)
	b = wire.AppendUvarint(b, m.Size)
	b = wire.AppendUvarint(b, m.Pages)
	b = wire.AppendBool(b, m.Published)
	b = wire.AppendBool(b, m.Sealed)
	return b
}

// DecodeFrom implements wire.Unmarshaler.
func (m *VersionInfo) DecodeFrom(r *wire.Reader) error {
	m.Ver = r.Uvarint()
	m.Size = r.Uvarint()
	m.Pages = r.Uvarint()
	m.Published = r.Bool()
	m.Sealed = r.Bool()
	return r.Err()
}

// AssignReq asks the version manager for a version number. For appends
// the offset is implicit (the size of the last assigned version, §3.1.2
// "the offset is implicitly assumed to be the size of the latest
// version"); for writes the caller supplies Off. SinceVer is the
// highest version whose write record the client already caches; the
// response carries only newer records.
type AssignReq struct {
	Blob     uint64
	Kind     uint64 // KindAppend or KindWrite
	Off      uint64 // byte offset, KindWrite only
	Len      uint64 // bytes
	SinceVer uint64
}

// AppendTo implements wire.Marshaler.
func (m *AssignReq) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Blob)
	b = wire.AppendUvarint(b, m.Kind)
	b = wire.AppendUvarint(b, m.Off)
	b = wire.AppendUvarint(b, m.Len)
	b = wire.AppendUvarint(b, m.SinceVer)
	return b
}

// DecodeFrom implements wire.Unmarshaler.
func (m *AssignReq) DecodeFrom(r *wire.Reader) error {
	m.Blob = r.Uvarint()
	m.Kind = r.Uvarint()
	m.Off = r.Uvarint()
	m.Len = r.Uvarint()
	m.SinceVer = r.Uvarint()
	return r.Err()
}

// AssignResp carries everything a writer needs to finish the write
// without talking to the version manager again (except Complete).
type AssignResp struct {
	Ver       uint64
	Start     uint64 // byte offset where the data lands
	PrevSize  uint64 // size of the previous assigned version
	SizeAfter uint64
	Record    segtree.WriteRecord // page-unit write interval
	History   []segtree.WriteRecord
}

// AppendTo implements wire.Marshaler.
func (m *AssignResp) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Ver)
	b = wire.AppendUvarint(b, m.Start)
	b = wire.AppendUvarint(b, m.PrevSize)
	b = wire.AppendUvarint(b, m.SizeAfter)
	b = appendWriteRecord(b, m.Record)
	b = wire.AppendUvarint(b, uint64(len(m.History)))
	for _, h := range m.History {
		b = appendWriteRecord(b, h)
	}
	return b
}

// DecodeFrom implements wire.Unmarshaler.
func (m *AssignResp) DecodeFrom(r *wire.Reader) error {
	m.Ver = r.Uvarint()
	m.Start = r.Uvarint()
	m.PrevSize = r.Uvarint()
	m.SizeAfter = r.Uvarint()
	m.Record = decodeWriteRecord(r)
	n := r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	m.History = make([]segtree.WriteRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		m.History = append(m.History, decodeWriteRecord(r))
	}
	return r.Err()
}

// VersionRef names one version of a BLOB.
type VersionRef struct {
	Blob uint64
	Ver  uint64
}

// AppendTo implements wire.Marshaler.
func (m *VersionRef) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Blob)
	return wire.AppendUvarint(b, m.Ver)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *VersionRef) DecodeFrom(r *wire.Reader) error {
	m.Blob = r.Uvarint()
	m.Ver = r.Uvarint()
	return r.Err()
}

// WaitPublishedReq blocks until a version is published or the server-
// side timeout elapses.
type WaitPublishedReq struct {
	Blob          uint64
	Ver           uint64
	TimeoutMillis uint64
}

// AppendTo implements wire.Marshaler.
func (m *WaitPublishedReq) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Blob)
	b = wire.AppendUvarint(b, m.Ver)
	b = wire.AppendUvarint(b, m.TimeoutMillis)
	return b
}

// DecodeFrom implements wire.Unmarshaler.
func (m *WaitPublishedReq) DecodeFrom(r *wire.Reader) error {
	m.Blob = r.Uvarint()
	m.Ver = r.Uvarint()
	m.TimeoutMillis = r.Uvarint()
	return r.Err()
}

// ListBlobsResp lists all BLOB ids.
type ListBlobsResp struct{ Blobs []uint64 }

// AppendTo implements wire.Marshaler.
func (m *ListBlobsResp) AppendTo(b []byte) []byte { return wire.AppendUint64Slice(b, m.Blobs) }

// DecodeFrom implements wire.Unmarshaler.
func (m *ListBlobsResp) DecodeFrom(r *wire.Reader) error {
	m.Blobs = r.Uint64Slice()
	return r.Err()
}

// VMStatsResp reports version-manager counters for tests and tools.
type VMStatsResp struct {
	Blobs     uint64
	Assigned  uint64
	Published uint64
	Sealed    uint64
}

// AppendTo implements wire.Marshaler.
func (m *VMStatsResp) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Blobs)
	b = wire.AppendUvarint(b, m.Assigned)
	b = wire.AppendUvarint(b, m.Published)
	b = wire.AppendUvarint(b, m.Sealed)
	return b
}

// DecodeFrom implements wire.Unmarshaler.
func (m *VMStatsResp) DecodeFrom(r *wire.Reader) error {
	m.Blobs = r.Uvarint()
	m.Assigned = r.Uvarint()
	m.Published = r.Uvarint()
	m.Sealed = r.Uvarint()
	return r.Err()
}

//
// Lifecycle / garbage-collection messages.
//

// SetRetentionReq sets a per-BLOB retention override: keep the latest
// Retain published versions (older ones become collectable). Retain 0
// keeps every version. The override shadows the manager's default.
type SetRetentionReq struct {
	Blob   uint64
	Retain uint64
}

// AppendTo implements wire.Marshaler.
func (m *SetRetentionReq) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Blob)
	return wire.AppendUvarint(b, m.Retain)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *SetRetentionReq) DecodeFrom(r *wire.Reader) error {
	m.Blob = r.Uvarint()
	m.Retain = r.Uvarint()
	return r.Err()
}

// PinReq takes a lease-style reference on one version: while the lease
// is live the version cannot be collected. TTLMillis bounds the lease
// so a dead client never blocks collection forever.
type PinReq struct {
	Blob      uint64
	Ver       uint64
	TTLMillis uint64
}

// AppendTo implements wire.Marshaler.
func (m *PinReq) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Blob)
	b = wire.AppendUvarint(b, m.Ver)
	return wire.AppendUvarint(b, m.TTLMillis)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *PinReq) DecodeFrom(r *wire.Reader) error {
	m.Blob = r.Uvarint()
	m.Ver = r.Uvarint()
	m.TTLMillis = r.Uvarint()
	return r.Err()
}

// HistoryReq asks the version manager to enumerate a BLOB's published
// versions still inside the retention window. Limit, when non-zero,
// bounds the response to the newest Limit versions.
type HistoryReq struct {
	Blob  uint64
	Limit uint64
}

// AppendTo implements wire.Marshaler.
func (m *HistoryReq) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Blob)
	return wire.AppendUvarint(b, m.Limit)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *HistoryReq) DecodeFrom(r *wire.Reader) error {
	m.Blob = r.Uvarint()
	m.Limit = r.Uvarint()
	return r.Err()
}

// HistoryResp lists the published versions of one BLOB that are still
// readable (at or above the collection frontier), oldest first.
// Versions publish strictly in assignment order, so position in the
// list is publish order.
type HistoryResp struct {
	Infos []VersionInfo
}

// AppendTo implements wire.Marshaler.
func (m *HistoryResp) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(len(m.Infos)))
	for i := range m.Infos {
		b = m.Infos[i].AppendTo(b)
	}
	return b
}

// DecodeFrom implements wire.Unmarshaler.
func (m *HistoryResp) DecodeFrom(r *wire.Reader) error {
	n := r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	m.Infos = make([]VersionInfo, n)
	for i := uint64(0); i < n; i++ {
		if err := m.Infos[i].DecodeFrom(r); err != nil {
			return err
		}
	}
	return r.Err()
}

// BlobReclaim is one BLOB's slice of a reclaim scan: the manager just
// advanced this BLOB's collection frontier from From to To (versions in
// [From, To) died; all versions below To are now collected), and ships
// the write records [1, min(To, assigned)] the collector needs. The
// collector reclaims shadow-driven: each version w in (From, To] kills
// the pages and tree nodes of its latest predecessor on every range w
// wrote, because the snapshots [predecessor, w) that could still see
// them are all dead once the frontier reaches w. Deleted marks the
// scan that finishes a deleted BLOB (To passed its last version and no
// pin remains): the collector then sweeps every remaining page and
// node of the whole history.
type BlobReclaim struct {
	Blob     uint64
	PageSize uint64
	Deleted  bool
	From     uint64
	To       uint64
	Records  []segtree.WriteRecord
}

// AppendTo implements wire.Marshaler.
func (m *BlobReclaim) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Blob)
	b = wire.AppendUvarint(b, m.PageSize)
	b = wire.AppendBool(b, m.Deleted)
	b = wire.AppendUvarint(b, m.From)
	b = wire.AppendUvarint(b, m.To)
	b = wire.AppendUvarint(b, uint64(len(m.Records)))
	for _, rec := range m.Records {
		b = appendWriteRecord(b, rec)
	}
	return b
}

// DecodeFrom implements wire.Unmarshaler.
func (m *BlobReclaim) DecodeFrom(r *wire.Reader) error {
	m.Blob = r.Uvarint()
	m.PageSize = r.Uvarint()
	m.Deleted = r.Bool()
	m.From = r.Uvarint()
	m.To = r.Uvarint()
	n := r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	m.Records = make([]segtree.WriteRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		m.Records = append(m.Records, decodeWriteRecord(r))
	}
	return r.Err()
}

// ReclaimScanResp is a whole reclaim scan: every BLOB with newly dead
// versions, plus the count of versions a live pin kept alive this scan.
type ReclaimScanResp struct {
	PinsBlocked uint64
	Blobs       []BlobReclaim
}

// AppendTo implements wire.Marshaler.
func (m *ReclaimScanResp) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, m.PinsBlocked)
	b = wire.AppendUvarint(b, uint64(len(m.Blobs)))
	for i := range m.Blobs {
		b = m.Blobs[i].AppendTo(b)
	}
	return b
}

// DecodeFrom implements wire.Unmarshaler.
func (m *ReclaimScanResp) DecodeFrom(r *wire.Reader) error {
	m.PinsBlocked = r.Uvarint()
	n := r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	m.Blobs = make([]BlobReclaim, n)
	for i := uint64(0); i < n; i++ {
		if err := m.Blobs[i].DecodeFrom(r); err != nil {
			return err
		}
	}
	return r.Err()
}

// DeletePagesReq asks a provider to drop a batch of pages (garbage
// collection). Missing pages are not errors: replication means any
// given provider holds only a subset of a version's pages.
type DeletePagesReq struct {
	Keys []pagestore.Key
}

// AppendTo implements wire.Marshaler.
func (m *DeletePagesReq) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(len(m.Keys)))
	for _, k := range m.Keys {
		b = appendPageKey(b, k)
	}
	return b
}

// DecodeFrom implements wire.Unmarshaler.
func (m *DeletePagesReq) DecodeFrom(r *wire.Reader) error {
	n := r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	m.Keys = make([]pagestore.Key, 0, n)
	for i := uint64(0); i < n; i++ {
		m.Keys = append(m.Keys, decodePageKey(r))
	}
	return r.Err()
}

// DeletePagesResp reports what a delete batch freed.
type DeletePagesResp struct {
	Deleted    uint64 // pages actually present and removed
	BytesFreed uint64
	Compacted  bool // the store's dead-byte threshold triggered a compaction
}

// AppendTo implements wire.Marshaler.
func (m *DeletePagesResp) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Deleted)
	b = wire.AppendUvarint(b, m.BytesFreed)
	return wire.AppendBool(b, m.Compacted)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *DeletePagesResp) DecodeFrom(r *wire.Reader) error {
	m.Deleted = r.Uvarint()
	m.BytesFreed = r.Uvarint()
	m.Compacted = r.Bool()
	return r.Err()
}

//
// Provider manager messages.
//

// RegisterReq announces a provider to the provider manager.
type RegisterReq struct{ Addr string }

// AppendTo implements wire.Marshaler.
func (m *RegisterReq) AppendTo(b []byte) []byte { return wire.AppendString(b, m.Addr) }

// DecodeFrom implements wire.Unmarshaler.
func (m *RegisterReq) DecodeFrom(r *wire.Reader) error {
	m.Addr = r.String()
	return r.Err()
}

// AllocReq asks for provider assignments for NPages pages, Replicas
// providers each.
type AllocReq struct {
	Blob     uint64
	NPages   uint64
	Replicas uint64
	Bytes    uint64 // total bytes, for load accounting
}

// AppendTo implements wire.Marshaler.
func (m *AllocReq) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Blob)
	b = wire.AppendUvarint(b, m.NPages)
	b = wire.AppendUvarint(b, m.Replicas)
	b = wire.AppendUvarint(b, m.Bytes)
	return b
}

// DecodeFrom implements wire.Unmarshaler.
func (m *AllocReq) DecodeFrom(r *wire.Reader) error {
	m.Blob = r.Uvarint()
	m.NPages = r.Uvarint()
	m.Replicas = r.Uvarint()
	m.Bytes = r.Uvarint()
	return r.Err()
}

// AllocResp carries, for each page, Replicas provider addresses
// (flattened row-major: page i replica j at [i*Replicas+j]).
type AllocResp struct {
	Replicas  uint64
	Providers []string
}

// AppendTo implements wire.Marshaler.
func (m *AllocResp) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Replicas)
	return wire.AppendStringSlice(b, m.Providers)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *AllocResp) DecodeFrom(r *wire.Reader) error {
	m.Replicas = r.Uvarint()
	m.Providers = r.StringSlice()
	return r.Err()
}

// ProvidersResp lists registered providers.
type ProvidersResp struct{ Providers []string }

// AppendTo implements wire.Marshaler.
func (m *ProvidersResp) AppendTo(b []byte) []byte { return wire.AppendStringSlice(b, m.Providers) }

// DecodeFrom implements wire.Unmarshaler.
func (m *ProvidersResp) DecodeFrom(r *wire.Reader) error {
	m.Providers = r.StringSlice()
	return r.Err()
}

//
// Provider messages.
//

// PutPageReq stores one page.
type PutPageReq struct {
	Key  pagestore.Key
	Data []byte
}

// AppendTo implements wire.Marshaler.
func (m *PutPageReq) AppendTo(b []byte) []byte {
	b = appendPageKey(b, m.Key)
	return wire.AppendBytes(b, m.Data)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *PutPageReq) DecodeFrom(r *wire.Reader) error {
	m.Key = decodePageKey(r)
	m.Data = r.BytesCopy()
	return r.Err()
}

// GetPageReq fetches one page.
type GetPageReq struct{ Key pagestore.Key }

// AppendTo implements wire.Marshaler.
func (m *GetPageReq) AppendTo(b []byte) []byte { return appendPageKey(b, m.Key) }

// DecodeFrom implements wire.Unmarshaler.
func (m *GetPageReq) DecodeFrom(r *wire.Reader) error {
	m.Key = decodePageKey(r)
	return r.Err()
}

// GetPageResp carries the page content.
type GetPageResp struct{ Data []byte }

// AppendTo implements wire.Marshaler.
func (m *GetPageResp) AppendTo(b []byte) []byte { return wire.AppendBytes(b, m.Data) }

// DecodeFrom implements wire.Unmarshaler.
func (m *GetPageResp) DecodeFrom(r *wire.Reader) error {
	m.Data = r.BytesCopy()
	return r.Err()
}

// ProvStatsResp reports provider storage counters.
type ProvStatsResp struct {
	Pages uint64
	Bytes uint64
}

// AppendTo implements wire.Marshaler.
func (m *ProvStatsResp) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Pages)
	return wire.AppendUvarint(b, m.Bytes)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *ProvStatsResp) DecodeFrom(r *wire.Reader) error {
	m.Pages = r.Uvarint()
	m.Bytes = r.Uvarint()
	return r.Err()
}
