package blob

import (
	"errors"
	"sync"
	"testing"
	"time"

	"blobseer/internal/rpc"
	"blobseer/internal/segtree"
	"blobseer/internal/transport"
)

// vmHarness drives the version manager protocol directly.
type vmHarness struct {
	vm   *VersionManager
	pool *rpc.Pool
	blob uint64
}

func newVMHarness(t *testing.T, pageSize uint64) *vmHarness {
	t.Helper()
	net := transport.NewMemNet()
	nodes := segtree.NewMemStore()
	vm, err := NewVersionManager(net, "vm-host/vmanager", VersionManagerConfig{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { vm.Close() })
	pool := rpc.NewPool(net, "cli/x")
	t.Cleanup(func() { pool.Close() })

	var resp CreateBlobResp
	if err := pool.Call(ctx, vm.Addr(), VMCreateBlob, &CreateBlobReq{PageSize: pageSize}, &resp); err != nil {
		t.Fatal(err)
	}
	return &vmHarness{vm: vm, pool: pool, blob: resp.Blob}
}

func (h *vmHarness) assign(t *testing.T, kind, off, length, since uint64) AssignResp {
	t.Helper()
	var resp AssignResp
	err := h.pool.Call(ctx, h.vm.Addr(), VMAssign,
		&AssignReq{Blob: h.blob, Kind: kind, Off: off, Len: length, SinceVer: since}, &resp)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func (h *vmHarness) complete(t *testing.T, ver uint64) error {
	t.Helper()
	return h.pool.Call(ctx, h.vm.Addr(), VMComplete, &VersionRef{Blob: h.blob, Ver: ver}, nil)
}

func (h *vmHarness) latest(t *testing.T) VersionInfo {
	t.Helper()
	var info VersionInfo
	if err := h.pool.Call(ctx, h.vm.Addr(), VMLatest, &BlobRef{Blob: h.blob}, &info); err != nil {
		t.Fatal(err)
	}
	return info
}

func TestAssignAppendOffsets(t *testing.T) {
	h := newVMHarness(t, 100)
	// Three concurrent-style appends: offsets are consecutive in
	// assignment order, regardless of completion.
	a1 := h.assign(t, KindAppend, 0, 250, 0)
	a2 := h.assign(t, KindAppend, 0, 100, 0)
	a3 := h.assign(t, KindAppend, 0, 50, 0)
	if a1.Start != 0 || a2.Start != 250 || a3.Start != 350 {
		t.Fatalf("starts = %d, %d, %d", a1.Start, a2.Start, a3.Start)
	}
	if a1.Ver != 1 || a2.Ver != 2 || a3.Ver != 3 {
		t.Fatalf("versions = %d, %d, %d", a1.Ver, a2.Ver, a3.Ver)
	}
	// Page intervals: a1 covers pages [0,3), a2 [2,4) (unaligned
	// boundary shares page 2), a3 [3,4).
	if a1.Record.Off != 0 || a1.Record.N != 3 {
		t.Errorf("a1 record = %+v", a1.Record)
	}
	if a2.Record.Off != 2 || a2.Record.N != 2 {
		t.Errorf("a2 record = %+v", a2.Record)
	}
	if a3.Record.Off != 3 || a3.Record.N != 1 {
		t.Errorf("a3 record = %+v", a3.Record)
	}
}

func TestAssignHistoryDelta(t *testing.T) {
	h := newVMHarness(t, 100)
	h.assign(t, KindAppend, 0, 100, 0)
	h.assign(t, KindAppend, 0, 100, 0)
	// A client that knows nothing gets the full history.
	a3 := h.assign(t, KindAppend, 0, 100, 0)
	if len(a3.History) != 2 {
		t.Fatalf("history = %d records", len(a3.History))
	}
	if a3.History[0].Ver != 1 || a3.History[1].Ver != 2 {
		t.Fatalf("history versions = %+v", a3.History)
	}
	// A client that already caches through version 2 gets only v3.
	a4 := h.assign(t, KindAppend, 0, 100, 2)
	if len(a4.History) != 1 || a4.History[0].Ver != 3 {
		t.Fatalf("delta history = %+v", a4.History)
	}
	// Fully caught up: empty delta.
	a5 := h.assign(t, KindAppend, 0, 100, 4)
	if len(a5.History) != 0 {
		t.Fatalf("caught-up history = %+v", a5.History)
	}
}

func TestPublicationStrictOrder(t *testing.T) {
	h := newVMHarness(t, 100)
	h.assign(t, KindAppend, 0, 100, 0)
	h.assign(t, KindAppend, 0, 100, 0)
	h.assign(t, KindAppend, 0, 100, 0)

	// Completing v2 and v3 publishes nothing while v1 is pending.
	if err := h.complete(t, 2); err != nil {
		t.Fatal(err)
	}
	if err := h.complete(t, 3); err != nil {
		t.Fatal(err)
	}
	if got := h.latest(t); got.Ver != 0 {
		t.Fatalf("latest = %d before v1 completes", got.Ver)
	}
	// Completing v1 releases the whole chain at once.
	if err := h.complete(t, 1); err != nil {
		t.Fatal(err)
	}
	if got := h.latest(t); got.Ver != 3 || got.Size != 300 {
		t.Fatalf("latest = %+v", got)
	}
}

func TestWaitPublishedWakesInOrder(t *testing.T) {
	h := newVMHarness(t, 100)
	h.assign(t, KindAppend, 0, 100, 0)
	h.assign(t, KindAppend, 0, 100, 0)

	done := make(chan VersionInfo, 1)
	go func() {
		var info VersionInfo
		err := h.pool.Call(ctx, h.vm.Addr(), VMWaitPublished,
			&WaitPublishedReq{Blob: h.blob, Ver: 2, TimeoutMillis: 5000}, &info)
		if err == nil {
			done <- info
		}
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("woke before publication")
	default:
	}
	if err := h.complete(t, 1); err != nil {
		t.Fatal(err)
	}
	if err := h.complete(t, 2); err != nil {
		t.Fatal(err)
	}
	select {
	case info := <-done:
		if info.Ver != 2 || !info.Published {
			t.Fatalf("info = %+v", info)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never woke")
	}
}

func TestWaitPublishedTimeout(t *testing.T) {
	h := newVMHarness(t, 100)
	h.assign(t, KindAppend, 0, 100, 0)
	var info VersionInfo
	err := h.pool.Call(ctx, h.vm.Addr(), VMWaitPublished,
		&WaitPublishedReq{Blob: h.blob, Ver: 1, TimeoutMillis: 50}, &info)
	if !errors.Is(err, ErrWaitTimeout) {
		t.Fatalf("err = %v", err)
	}
}

func TestWaitPublishedTimeoutDeregistersWaiter(t *testing.T) {
	h := newVMHarness(t, 100)
	h.assign(t, KindAppend, 0, 100, 0) // v1 stays pending throughout
	// Each timed-out wait — the shape of Client.WaitPublished's retry
	// loop, which registers a fresh server-side channel per attempt —
	// must deregister its waiter, or the map grows without bound while
	// a version stays pending.
	for i := 0; i < 8; i++ {
		var info VersionInfo
		err := h.pool.Call(ctx, h.vm.Addr(), VMWaitPublished,
			&WaitPublishedReq{Blob: h.blob, Ver: 1, TimeoutMillis: 20}, &info)
		if !errors.Is(err, ErrWaitTimeout) {
			t.Fatalf("wait %d: err = %v", i, err)
		}
		if n := h.vm.waiterCount(h.blob, 1); n != 0 {
			t.Fatalf("after %d timed-out waits: %d waiters registered, want 0", i+1, n)
		}
	}
	// The version still publishes normally afterwards.
	if err := h.complete(t, 1); err != nil {
		t.Fatal(err)
	}
	if got := h.latest(t); got.Ver != 1 {
		t.Fatalf("latest = %+v", got)
	}
}

func TestShardedBlobsPublishIndependently(t *testing.T) {
	// Many BLOBs driven concurrently: assignment, completion, and
	// publication of one BLOB must never depend on another (the
	// sharded-lock refactor's contract).
	net := transport.NewMemNet()
	vm, err := NewVersionManager(net, "vm-host/vmanager", VersionManagerConfig{Nodes: segtree.NewMemStore()})
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Close()
	pool := rpc.NewPool(net, "cli/x")
	defer pool.Close()

	const blobs, versions = 64, 4
	ids := make([]uint64, blobs)
	for i := range ids {
		var resp CreateBlobResp
		if err := pool.Call(ctx, vm.Addr(), VMCreateBlob, &CreateBlobReq{PageSize: 100}, &resp); err != nil {
			t.Fatal(err)
		}
		ids[i] = resp.Blob
	}
	var wg sync.WaitGroup
	errs := make(chan error, blobs)
	for _, id := range ids {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for v := 0; v < versions; v++ {
				var a AssignResp
				if err := pool.Call(ctx, vm.Addr(), VMAssign,
					&AssignReq{Blob: id, Kind: KindAppend, Len: 100}, &a); err != nil {
					errs <- err
					return
				}
				if err := pool.Call(ctx, vm.Addr(), VMComplete,
					&VersionRef{Blob: id, Ver: a.Ver}, nil); err != nil {
					errs <- err
					return
				}
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, id := range ids {
		var info VersionInfo
		if err := pool.Call(ctx, vm.Addr(), VMLatest, &BlobRef{Blob: id}, &info); err != nil {
			t.Fatal(err)
		}
		if info.Ver != versions || info.Size != versions*100 {
			t.Fatalf("blob %d: latest = %+v", id, info)
		}
	}
	var stats VMStatsResp
	if err := pool.Call(ctx, vm.Addr(), VMStats, nil, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Blobs != blobs || stats.Assigned != blobs*versions || stats.Published != blobs*versions {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestWriteExtendsAndKeepsSizeMonotonic(t *testing.T) {
	h := newVMHarness(t, 100)
	h.assign(t, KindAppend, 0, 500, 0)
	// An interior write must not shrink the size.
	a2 := h.assign(t, KindWrite, 100, 50, 0)
	if a2.SizeAfter != 500 {
		t.Fatalf("interior write SizeAfter = %d", a2.SizeAfter)
	}
	// A write past the end extends it.
	a3 := h.assign(t, KindWrite, 900, 100, 0)
	if a3.SizeAfter != 1000 {
		t.Fatalf("extending write SizeAfter = %d", a3.SizeAfter)
	}
	if a3.Record.PagesAfter != 10 {
		t.Fatalf("PagesAfter = %d", a3.Record.PagesAfter)
	}
}

func TestZeroLengthAssignRejected(t *testing.T) {
	h := newVMHarness(t, 100)
	var resp AssignResp
	err := h.pool.Call(ctx, h.vm.Addr(), VMAssign,
		&AssignReq{Blob: h.blob, Kind: KindAppend, Len: 0}, &resp)
	if err == nil {
		t.Fatal("zero-length assign accepted")
	}
}

func TestAssignUnknownBlob(t *testing.T) {
	h := newVMHarness(t, 100)
	var resp AssignResp
	err := h.pool.Call(ctx, h.vm.Addr(), VMAssign,
		&AssignReq{Blob: 999, Kind: KindAppend, Len: 10}, &resp)
	if !errors.Is(err, ErrBlobNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestCompleteValidation(t *testing.T) {
	h := newVMHarness(t, 100)
	if err := h.complete(t, 1); !errors.Is(err, ErrNoSuchVersion) {
		t.Errorf("complete unassigned: %v", err)
	}
	h.assign(t, KindAppend, 0, 100, 0)
	if err := h.complete(t, 1); err != nil {
		t.Fatal(err)
	}
	// Double complete is idempotent: a router retry after shard
	// failover may re-deliver a Complete the journal already
	// acknowledged, and that must not fail the write.
	if err := h.complete(t, 1); err != nil {
		t.Errorf("double complete: %v", err)
	}
}

func TestSealTimeoutAdvancesChain(t *testing.T) {
	net := transport.NewMemNet()
	nodes := segtree.NewMemStore()
	vm, err := NewVersionManager(net, "vm-host/vmanager", VersionManagerConfig{
		Nodes:       nodes,
		SealTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Close()
	pool := rpc.NewPool(net, "cli/x")
	defer pool.Close()

	var created CreateBlobResp
	if err := pool.Call(ctx, vm.Addr(), VMCreateBlob, &CreateBlobReq{PageSize: 100}, &created); err != nil {
		t.Fatal(err)
	}
	// v1 is abandoned; v2 completes.
	var a1, a2 AssignResp
	if err := pool.Call(ctx, vm.Addr(), VMAssign, &AssignReq{Blob: created.Blob, Kind: KindAppend, Len: 100}, &a1); err != nil {
		t.Fatal(err)
	}
	if err := pool.Call(ctx, vm.Addr(), VMAssign, &AssignReq{Blob: created.Blob, Kind: KindAppend, Len: 100}, &a2); err != nil {
		t.Fatal(err)
	}
	if err := pool.Call(ctx, vm.Addr(), VMComplete, &VersionRef{Blob: created.Blob, Ver: a2.Ver}, nil); err != nil {
		t.Fatal(err)
	}
	// The seal loop must eventually publish v2 over the dead v1.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var info VersionInfo
		if err := pool.Call(ctx, vm.Addr(), VMLatest, &BlobRef{Blob: created.Blob}, &info); err != nil {
			t.Fatal(err)
		}
		if info.Ver == a2.Ver {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("seal loop never advanced publication")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The sealed version's metadata exists (hole tree committed).
	if nodes.Len() == 0 {
		t.Error("no hole metadata committed for the sealed version")
	}
}

// scan drives a reclaim scan RPC against the harness manager.
func (h *vmHarness) scan(t *testing.T) *ReclaimScanResp {
	t.Helper()
	var resp ReclaimScanResp
	if err := h.pool.Call(ctx, h.vm.Addr(), VMReclaimScan, nil, &resp); err != nil {
		t.Fatal(err)
	}
	return &resp
}

func (h *vmHarness) publishN(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		a := h.assign(t, KindAppend, 0, 100, 0)
		if err := h.complete(t, a.Ver); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRetentionScanAdvancesFrontier: with RetainLatest(2) set, a scan
// hands out exactly the versions below published-1 and marks them
// collected; a second scan with no new publications is empty.
func TestRetentionScanAdvancesFrontier(t *testing.T) {
	h := newVMHarness(t, 100)
	h.publishN(t, 5)
	if err := h.pool.Call(ctx, h.vm.Addr(), VMSetRetention,
		&SetRetentionReq{Blob: h.blob, Retain: 2}, nil); err != nil {
		t.Fatal(err)
	}
	resp := h.scan(t)
	if len(resp.Blobs) != 1 {
		t.Fatalf("scan returned %d blobs, want 1", len(resp.Blobs))
	}
	br := resp.Blobs[0]
	if br.From != 1 || br.To != 4 || br.Deleted {
		t.Fatalf("scan window = [%d,%d) deleted=%v, want [1,4)", br.From, br.To, br.Deleted)
	}
	if len(br.Records) != 4 {
		t.Fatalf("scan shipped %d records, want 4 (through the first live version)", len(br.Records))
	}
	if resp2 := h.scan(t); len(resp2.Blobs) != 0 {
		t.Fatalf("idle rescan returned %d blobs", len(resp2.Blobs))
	}
	// Collected versions answer ErrVersionCollected; live ones work.
	err := h.pool.Call(ctx, h.vm.Addr(), VMGetVersion, &VersionRef{Blob: h.blob, Ver: 2}, &VersionInfo{})
	if !errors.Is(err, ErrVersionCollected) {
		t.Errorf("GetVersion(collected) = %v", err)
	}
	if err := h.pool.Call(ctx, h.vm.Addr(), VMGetVersion, &VersionRef{Blob: h.blob, Ver: 4}, &VersionInfo{}); err != nil {
		t.Errorf("GetVersion(live) = %v", err)
	}
}

// TestPinLeaseExpiryUnblocksScan: an expired pin no longer clamps the
// frontier — a crashed reader delays collection by one TTL, not
// forever.
func TestPinLeaseExpiryUnblocksScan(t *testing.T) {
	h := newVMHarness(t, 100)
	h.publishN(t, 4)
	if err := h.pool.Call(ctx, h.vm.Addr(), VMPin,
		&PinReq{Blob: h.blob, Ver: 1, TTLMillis: 20}, nil); err != nil {
		t.Fatal(err)
	}
	if err := h.pool.Call(ctx, h.vm.Addr(), VMSetRetention,
		&SetRetentionReq{Blob: h.blob, Retain: 1}, nil); err != nil {
		t.Fatal(err)
	}
	resp := h.scan(t)
	if len(resp.Blobs) != 0 || resp.PinsBlocked == 0 {
		t.Fatalf("pinned scan: blobs=%d blocked=%d, want clamp at the pin", len(resp.Blobs), resp.PinsBlocked)
	}
	time.Sleep(40 * time.Millisecond)
	resp = h.scan(t)
	if len(resp.Blobs) != 1 || resp.Blobs[0].To != 4 {
		t.Fatalf("post-expiry scan = %+v, want frontier through 4", resp.Blobs)
	}
}

// TestListBlobsExcludesDeleted: a deleted BLOB disappears from the
// listing while a sibling survives.
func TestListBlobsExcludesDeleted(t *testing.T) {
	h := newVMHarness(t, 100)
	var second CreateBlobResp
	if err := h.pool.Call(ctx, h.vm.Addr(), VMCreateBlob, &CreateBlobReq{PageSize: 100}, &second); err != nil {
		t.Fatal(err)
	}
	if err := h.pool.Call(ctx, h.vm.Addr(), VMDeleteBlob, &BlobRef{Blob: h.blob}, nil); err != nil {
		t.Fatal(err)
	}
	var list ListBlobsResp
	if err := h.pool.Call(ctx, h.vm.Addr(), VMListBlobs, nil, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Blobs) != 1 || list.Blobs[0] != second.Blob {
		t.Fatalf("ListBlobs after delete = %v, want only %d", list.Blobs, second.Blob)
	}
	// Appends to the deleted BLOB are refused.
	err := h.pool.Call(ctx, h.vm.Addr(), VMAssign,
		&AssignReq{Blob: h.blob, Kind: KindAppend, Len: 10}, &AssignResp{})
	if !errors.Is(err, ErrBlobNotFound) {
		t.Errorf("assign on deleted blob = %v, want ErrBlobNotFound", err)
	}
}

// TestReclaimNotifyFires: lifecycle RPCs kick the registered reclaim
// notify hook.
func TestReclaimNotifyFires(t *testing.T) {
	h := newVMHarness(t, 100)
	kicks := make(chan struct{}, 8)
	h.vm.SetReclaimNotify(func() { kicks <- struct{}{} })
	if err := h.pool.Call(ctx, h.vm.Addr(), VMDeleteBlob, &BlobRef{Blob: h.blob}, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case <-kicks:
	case <-time.After(time.Second):
		t.Fatal("DeleteBlob did not kick the reclaim notify hook")
	}
}

func TestHistoryEnumeratesRetentionWindow(t *testing.T) {
	h := newVMHarness(t, 100)
	history := func(limit uint64) []VersionInfo {
		t.Helper()
		var resp HistoryResp
		if err := h.pool.Call(ctx, h.vm.Addr(), VMHistory,
			&HistoryReq{Blob: h.blob, Limit: limit}, &resp); err != nil {
			t.Fatal(err)
		}
		return resp.Infos
	}
	if got := history(0); len(got) != 0 {
		t.Fatalf("empty blob history = %+v", got)
	}
	for i := 0; i < 4; i++ {
		a := h.assign(t, KindAppend, 0, 100, 0)
		if err := h.complete(t, a.Ver); err != nil {
			t.Fatal(err)
		}
	}
	// One more assigned but unpublished version: never listed.
	h.assign(t, KindAppend, 0, 100, 0)

	got := history(0)
	if len(got) != 4 {
		t.Fatalf("history = %d entries, want 4 published", len(got))
	}
	for i, vi := range got {
		want := uint64(i + 1)
		if vi.Ver != want || vi.Size != want*100 || !vi.Published {
			t.Fatalf("entry %d = %+v", i, vi)
		}
	}
	// Limit keeps the newest entries.
	got = history(2)
	if len(got) != 2 || got[0].Ver != 3 || got[1].Ver != 4 {
		t.Fatalf("limited history = %+v", got)
	}

	// Truncation moves the window's floor: collected versions drop out.
	if err := h.pool.Call(ctx, h.vm.Addr(), VMTruncateBefore,
		&VersionRef{Blob: h.blob, Ver: 3}, nil); err != nil {
		t.Fatal(err)
	}
	if err := h.pool.Call(ctx, h.vm.Addr(), VMReclaimScan, nil, new(ReclaimScanResp)); err != nil {
		t.Fatal(err)
	}
	got = history(0)
	if len(got) != 2 || got[0].Ver != 3 || got[1].Ver != 4 {
		t.Fatalf("post-truncation history = %+v", got)
	}

	// A deleted BLOB's history answers the collected sentinel.
	if err := h.pool.Call(ctx, h.vm.Addr(), VMDeleteBlob, &BlobRef{Blob: h.blob}, nil); err != nil {
		t.Fatal(err)
	}
	err := h.pool.Call(ctx, h.vm.Addr(), VMHistory, &HistoryReq{Blob: h.blob}, new(HistoryResp))
	if !errors.Is(err, ErrVersionCollected) {
		t.Fatalf("history of deleted blob = %v", err)
	}
}

func TestWaitPublishedCoversFutureVersions(t *testing.T) {
	// The tailing primitive: a wait for a version beyond the assigned
	// range blocks until that version is assigned AND published,
	// instead of failing with ErrNoSuchVersion.
	h := newVMHarness(t, 100)
	woke := make(chan error, 1)
	go func() {
		var info VersionInfo
		woke <- h.pool.Call(ctx, h.vm.Addr(), VMWaitPublished,
			&WaitPublishedReq{Blob: h.blob, Ver: 1, TimeoutMillis: 5000}, &info)
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter register pre-assignment
	a := h.assign(t, KindAppend, 0, 100, 0)
	if err := h.complete(t, a.Ver); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-woke:
		if err != nil {
			t.Fatalf("future-version wait: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("future-version waiter never woke")
	}
}
