package blob

import (
	"context"

	"blobseer/internal/dht"
)

// dhtNodeStore adapts the metadata DHT to segtree.NodeStore, so tree
// commits and resolves go through the metadata providers.
type dhtNodeStore struct {
	c *dht.Client
}

// NewNodeStore wraps a DHT client as a segment-tree node store.
func NewNodeStore(c *dht.Client) *dhtNodeStore { //nolint:revive // deliberately unexported type
	return &dhtNodeStore{c: c}
}

// PutNodes implements segtree.NodeStore.
func (s *dhtNodeStore) PutNodes(ctx context.Context, keys []string, values [][]byte) error {
	kvs := make([]dht.KV, len(keys))
	for i := range keys {
		kvs[i] = dht.KV{Key: keys[i], Value: values[i]}
	}
	return s.c.PutBatch(ctx, kvs)
}

// GetNodes implements segtree.NodeStore.
func (s *dhtNodeStore) GetNodes(ctx context.Context, keys []string) ([][]byte, error) {
	return s.c.GetBatch(ctx, keys)
}

// DeleteNodes implements segtree.NodeDeleter: the garbage collector
// reclaims the tree nodes of collected versions through it. A failed
// member batch surfaces as an error so the collector re-queues the
// whole (idempotent) item instead of leaking nodes on the member that
// was down.
func (s *dhtNodeStore) DeleteNodes(ctx context.Context, keys []string) error {
	return s.c.DeleteBatch(ctx, keys)
}
