package blob

import (
	"context"

	"blobseer/internal/dht"
)

// dhtNodeStore adapts the metadata DHT to segtree.NodeStore, so tree
// commits and resolves go through the metadata providers.
type dhtNodeStore struct {
	c *dht.Client
}

// NewNodeStore wraps a DHT client as a segment-tree node store.
func NewNodeStore(c *dht.Client) *dhtNodeStore { //nolint:revive // deliberately unexported type
	return &dhtNodeStore{c: c}
}

// PutNodes implements segtree.NodeStore.
func (s *dhtNodeStore) PutNodes(ctx context.Context, keys []string, values [][]byte) error {
	kvs := make([]dht.KV, len(keys))
	for i := range keys {
		kvs[i] = dht.KV{Key: keys[i], Value: values[i]}
	}
	return s.c.PutBatch(ctx, kvs)
}

// GetNodes implements segtree.NodeStore.
func (s *dhtNodeStore) GetNodes(ctx context.Context, keys []string) ([][]byte, error) {
	return s.c.GetBatch(ctx, keys)
}
