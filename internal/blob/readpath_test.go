package blob

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"blobseer/internal/pagestore"
	"blobseer/internal/transport"
)

// TestReadAtHolesInterleavedWithData checks reads spanning holes next
// to written pages: holes must read as zeros even into a dirty caller
// buffer, and the written pages must come back intact.
func TestReadAtHolesInterleavedWithData(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{})
	cl := newTestClient(t, c, "cli")
	b, err := cl.Create(ctx, 64)
	if err != nil {
		t.Fatal(err)
	}
	head := pattern(1, 64)
	tail := pattern(2, 64)
	if _, err := b.WriteAt(ctx, head, 0); err != nil {
		t.Fatal(err)
	}
	// Pages 1 and 2 are never written: a hole between two data pages.
	res, err := b.WriteAt(ctx, tail, 192)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.WaitPublished(ctx, res.Ver); err != nil {
		t.Fatal(err)
	}

	want := make([]byte, 256)
	copy(want, head)
	copy(want[192:], tail)

	got, err := b.ReadAt(ctx, res.Ver, 0, 256)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("full-range read over holes mismatched")
	}

	// ReadAtInto must clear hole bytes in a dirty buffer.
	dirty := bytes.Repeat([]byte{0xFF}, 256)
	if _, err := b.ReadAtInto(ctx, res.Ver, 0, dirty); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dirty, want) {
		t.Error("ReadAtInto left dirty bytes in a hole")
	}

	// A read landing entirely inside the hole.
	got, err = b.ReadAt(ctx, res.Ver, 80, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 64)) {
		t.Error("hole-only read returned non-zero bytes")
	}

	// A read crossing the data->hole and hole->data boundaries.
	got, err = b.ReadAt(ctx, res.Ver, 32, 192)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want[32:224]) {
		t.Error("boundary-crossing read mismatched")
	}
}

// TestReadAtShortPage forces a provider to hold fewer bytes than the
// version's size implies and checks the read fails with ErrShortPage
// instead of returning truncated or padded data.
func TestReadAtShortPage(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{})
	cl := newTestClient(t, c, "cli")
	b, err := cl.Create(ctx, 128)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Append(ctx, pattern(3, 128))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.WaitPublished(ctx, res.Ver); err != nil {
		t.Fatal(err)
	}
	locs, err := b.PageLocations(ctx, res.Ver, 0, 128)
	if err != nil || len(locs) != 1 {
		t.Fatalf("PageLocations = %v, %v", locs, err)
	}
	// Re-put the page truncated on every replica (providers accept
	// idempotent re-puts, so this models a corrupted/truncated store).
	key := pagestore.Key{Blob: b.ID(), Version: res.Ver, Index: 0}
	for _, addr := range locs[0].Providers {
		err := cl.pool.Call(ctx, transport.Addr(addr), ProvPutPage,
			&PutPageReq{Key: key, Data: pattern(3, 16)}, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.ReadAt(ctx, res.Ver, 0, 128); !errors.Is(err, ErrShortPage) {
		t.Fatalf("err = %v, want ErrShortPage", err)
	}
	// A read inside the surviving prefix still works.
	got, err := b.ReadAt(ctx, res.Ver, 0, 16)
	if err != nil || !bytes.Equal(got, pattern(3, 16)) {
		t.Fatalf("prefix read = %v, %v", got, err)
	}
}

// TestShortReplicaFailsOver truncates the page on ONE of two replicas:
// reads must fail over to the healthy copy instead of erroring or
// caching the truncated bytes. Short replies are not branded provider
// failures (a legitimately short page answers that way from every
// healthy replica), so the failure stats stay clean.
func TestShortReplicaFailsOver(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Providers: 4, PageReplicas: 2})
	cl := newTestClient(t, c, "cli")
	b, err := cl.Create(ctx, 128)
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(14, 128)
	res, err := b.Append(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.WaitPublished(ctx, res.Ver); err != nil {
		t.Fatal(err)
	}
	locs, err := b.PageLocations(ctx, res.Ver, 0, 128)
	if err != nil || len(locs) != 1 || len(locs[0].Providers) != 2 {
		t.Fatalf("locations = %+v, %v", locs, err)
	}
	bad := locs[0].Providers[0]
	key := pagestore.Key{Blob: b.ID(), Version: res.Ver, Index: 0}
	if err := cl.pool.Call(ctx, transport.Addr(bad), ProvPutPage,
		&PutPageReq{Key: key, Data: data[:16]}, nil); err != nil {
		t.Fatal(err)
	}
	// Whatever replica the rotation starts at, every full read must
	// succeed with the healthy copy (and the shared cache must only
	// ever hold the full page).
	for i := 0; i < 10; i++ {
		got, err := b.ReadAt(ctx, res.Ver, 0, 128)
		if err != nil {
			t.Fatalf("read %d = %v, want failover to healthy replica", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("read %d returned truncated/altered data", i)
		}
	}
	if snap := cl.ReadStats().Snapshot(); snap.ProviderFailures != 0 {
		t.Errorf("failures = %d, want 0 (short reply is not a provider failure)", snap.ProviderFailures)
	}
}

// TestReadSpansVersionSizeBoundary exercises reads that end exactly at
// a version's size, reads past it, and reads of an old version after
// the BLOB has grown.
func TestReadSpansVersionSizeBoundary(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{})
	cl := newTestClient(t, c, "cli")
	b, err := cl.Create(ctx, 64)
	if err != nil {
		t.Fatal(err)
	}
	first := pattern(4, 100) // pages 0-1, page 1 short (36 bytes)
	second := pattern(5, 100)
	r1, err := b.Append(ctx, first)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := b.Append(ctx, second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.WaitPublished(ctx, r2.Ver); err != nil {
		t.Fatal(err)
	}

	// Ending exactly at v1's size, starting mid-page.
	got, err := b.ReadAt(ctx, r1.Ver, 90, 10)
	if err != nil || !bytes.Equal(got, first[90:]) {
		t.Fatalf("boundary read = %v, %v", got, err)
	}
	// One byte past v1's size fails even though v2 has the data.
	if _, err := b.ReadAt(ctx, r1.Ver, 90, 11); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if _, err := b.ReadAt(ctx, r1.Ver, 100, 1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	// The same range on v2 crosses the old boundary (page 1 was
	// boundary-merged under v2) and must stitch both writes together.
	got, err = b.ReadAt(ctx, r2.Ver, 90, 20)
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte(nil), first[90:]...), second[:10]...)
	if !bytes.Equal(got, want) {
		t.Error("cross-version-boundary read mismatched")
	}
	// Ending exactly at v2's size.
	got, err = b.ReadAt(ctx, r2.Ver, 150, 50)
	if err != nil || !bytes.Equal(got, second[50:]) {
		t.Fatalf("v2 tail read = %v, %v", got, err)
	}
}

// TestPageView checks the zero-copy whole-page view: trimming at the
// version size, zeroed holes, and out-of-range errors.
func TestPageView(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{})
	cl := newTestClient(t, c, "cli")
	b, err := cl.Create(ctx, 64)
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(6, 100)
	res, err := b.Append(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.WaitPublished(ctx, res.Ver); err != nil {
		t.Fatal(err)
	}
	full, err := b.PageView(ctx, res.Ver, 0)
	if err != nil || !bytes.Equal(full, data[:64]) {
		t.Fatalf("page 0 = %d bytes, %v", len(full), err)
	}
	short, err := b.PageView(ctx, res.Ver, 1)
	if err != nil || !bytes.Equal(short, data[64:]) {
		t.Fatalf("tail page = %d bytes, %v (want 36)", len(short), err)
	}
	if _, err := b.PageView(ctx, res.Ver, 2); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}

	// A hole page views as zeros.
	hole, err := b.WriteAt(ctx, pattern(7, 64), 192)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.WaitPublished(ctx, hole.Ver); err != nil {
		t.Fatal(err)
	}
	hv, err := b.PageView(ctx, hole.Ver, 2)
	if err != nil || !bytes.Equal(hv, make([]byte, 64)) {
		t.Fatalf("hole page = %v, %v", hv, err)
	}
}

// TestCacheHitReReadIssuesNoProviderRPCs is the acceptance check for
// the shared page cache: re-reading a version the cache already holds
// must not touch a provider at all.
func TestCacheHitReReadIssuesNoProviderRPCs(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{})
	cl := newTestClient(t, c, "cli")
	b, err := cl.Create(ctx, 64)
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(8, 64*8)
	res, err := b.Append(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.WaitPublished(ctx, res.Ver); err != nil {
		t.Fatal(err)
	}

	got, err := b.ReadAt(ctx, res.Ver, 0, uint64(len(data)))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("cold read failed: %v", err)
	}
	cold := cl.ReadStats().Snapshot()
	if cold.Misses != 8 || cold.ProviderFetches != 8 {
		t.Fatalf("cold read: misses=%d fetches=%d, want 8/8", cold.Misses, cold.ProviderFetches)
	}

	got, err = b.ReadAt(ctx, res.Ver, 0, uint64(len(data)))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("warm read failed: %v", err)
	}
	warm := cl.ReadStats().Snapshot()
	if d := warm.ProviderFetches - cold.ProviderFetches; d != 0 {
		t.Errorf("warm re-read issued %d provider RPCs, want 0", d)
	}
	if d := warm.Misses - cold.Misses; d != 0 {
		t.Errorf("warm re-read missed %d times, want 0", d)
	}
	if d := warm.Hits - cold.Hits; d != 8 {
		t.Errorf("warm re-read hit %d times, want 8", d)
	}
}

// TestConcurrentReadersShareCache hammers one client's cache from many
// goroutines on a cold file: singleflight must collapse all concurrent
// fetches of a page into one provider RPC (the -race CI job runs this
// as the integration-level race check).
func TestConcurrentReadersShareCache(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{})
	cl := newTestClient(t, c, "cli")
	b, err := cl.Create(ctx, 64)
	if err != nil {
		t.Fatal(err)
	}
	const pages = 16
	data := pattern(9, 64*pages)
	res, err := b.Append(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.WaitPublished(ctx, res.Ver); err != nil {
		t.Fatal(err)
	}

	const readers = 12
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Readers start at different offsets so fetch order varies.
			off := uint64((i % pages) * 64)
			n := uint64(len(data)) - off
			got, err := b.ReadAt(ctx, res.Ver, off, n)
			if err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(got, data[off:]) {
				t.Errorf("reader %d mismatched", i)
			}
		}(i)
	}
	wg.Wait()
	snap := cl.ReadStats().Snapshot()
	if snap.ProviderFetches != pages {
		t.Errorf("provider fetches = %d, want %d (one per page)", snap.ProviderFetches, pages)
	}
	if snap.Misses != pages {
		t.Errorf("misses = %d, want %d", snap.Misses, pages)
	}
	if snap.ProviderFailures != 0 {
		t.Errorf("provider failures = %d, want 0", snap.ProviderFailures)
	}
}

// TestReplicaRotationFailsOver kills one replica of a 2-replica page
// and checks that (a) every read still succeeds via the survivor, and
// (b) the rotation spreads fetch starts across replicas, so only some
// reads pay the failover hop — with the old primary-first policy every
// read would start at the same replica. Failed providers must land in
// the read stats.
func TestReplicaRotationFailsOver(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Providers: 4, PageReplicas: 2})
	// Cache disabled so every read hits the provider path.
	cl := NewClient(ClientConfig{
		Net:             c.Net,
		Host:            "cli",
		VersionManager:  c.VM.Addr(),
		ProviderManager: c.PM.Addr(),
		Metadata:        c.MetaAddrs(),
		MetaReplicas:    c.Cfg.MetaReplicas,
		PageReplicas:    c.Cfg.PageReplicas,
		CacheBytes:      -1,
	})
	defer cl.Close()
	b, err := cl.Create(ctx, 64)
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(10, 64)
	res, err := b.Append(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.WaitPublished(ctx, res.Ver); err != nil {
		t.Fatal(err)
	}
	locs, err := b.PageLocations(ctx, res.Ver, 0, 64)
	if err != nil || len(locs) != 1 || len(locs[0].Providers) != 2 {
		t.Fatalf("locations = %+v, %v", locs, err)
	}
	dead := locs[0].Providers[0]
	for _, p := range c.Providers {
		if string(p.Addr()) == dead {
			p.Close()
		}
	}

	const reads = 20
	for i := 0; i < reads; i++ {
		got, err := b.ReadAt(ctx, res.Ver, 0, 64)
		if err != nil {
			t.Fatalf("read %d failed after replica death: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("read %d mismatched", i)
		}
	}
	snap := cl.ReadStats().Snapshot()
	if snap.ProviderFailures == 0 {
		t.Error("no provider failures recorded despite a dead replica")
	}
	if snap.ProviderFailures >= reads {
		t.Errorf("failures = %d of %d reads: rotation never started at the live replica", snap.ProviderFailures, reads)
	}
	if got := snap.FailedProviderAddrs(); len(got) != 1 || got[0] != dead {
		t.Errorf("failed providers = %v, want [%s]", got, dead)
	}
	if snap.ProviderFetches != reads+snap.ProviderFailures {
		t.Errorf("fetches = %d, want %d successes + %d failures",
			snap.ProviderFetches, reads, snap.ProviderFailures)
	}
}

// TestLocalReplicaPreferred co-locates the client with one replica and
// kills the other: if fetches start at the local copy (as data-local
// map tasks rely on), no read ever touches the dead remote, so zero
// failures are recorded.
func TestLocalReplicaPreferred(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Providers: 4, PageReplicas: 2})
	setup := newTestClient(t, c, "setup-host")
	b, err := setup.Create(ctx, 64)
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(13, 64)
	res, err := b.Append(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.WaitPublished(ctx, res.Ver); err != nil {
		t.Fatal(err)
	}
	locs, err := b.PageLocations(ctx, res.Ver, 0, 64)
	if err != nil || len(locs) != 1 || len(locs[0].Hosts) != 2 {
		t.Fatalf("locations = %+v, %v", locs, err)
	}
	localHost, remote := locs[0].Hosts[1], locs[0].Providers[0]
	for _, p := range c.Providers {
		if string(p.Addr()) == remote {
			p.Close()
		}
	}

	// A cache-less client on the surviving replica's host: every fetch
	// must be served locally, never noticing the dead remote.
	cl := NewClient(ClientConfig{
		Net:             c.Net,
		Host:            localHost,
		VersionManager:  c.VM.Addr(),
		ProviderManager: c.PM.Addr(),
		Metadata:        c.MetaAddrs(),
		MetaReplicas:    c.Cfg.MetaReplicas,
		PageReplicas:    c.Cfg.PageReplicas,
		CacheBytes:      -1,
	})
	defer cl.Close()
	lb := cl.Handle(b.ID(), 64)
	const reads = 10
	for i := 0; i < reads; i++ {
		got, err := lb.ReadAt(ctx, res.Ver, 0, 64)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("read %d = %v", i, err)
		}
	}
	snap := cl.ReadStats().Snapshot()
	if snap.ProviderFailures != 0 {
		t.Errorf("failures = %d, want 0 (local replica first)", snap.ProviderFailures)
	}
	if snap.ProviderFetches != reads {
		t.Errorf("fetches = %d, want %d", snap.ProviderFetches, reads)
	}
}

// TestClientCacheDisabled covers the CacheBytes<0 escape hatch: reads
// work, nothing is cached, every read pays a provider RPC.
func TestClientCacheDisabled(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{CacheBytes: -1})
	cl := newTestClient(t, c, "cli")
	if cl.PageCache() != nil {
		t.Fatal("cache present despite CacheBytes < 0")
	}
	b, err := cl.Create(ctx, 64)
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(11, 64)
	res, err := b.Append(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.WaitPublished(ctx, res.Ver); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := b.ReadAt(ctx, res.Ver, 0, 64)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("read %d = %v", i, err)
		}
	}
	if snap := cl.ReadStats().Snapshot(); snap.ProviderFetches != 3 {
		t.Errorf("fetches = %d, want 3 (no caching)", snap.ProviderFetches)
	}
}

// TestVersionInfoCached checks that resolving a published version twice
// costs one version-manager RPC: the second resolve must not fail even
// if the version manager has become unreachable.
func TestVersionInfoCached(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{})
	cl := newTestClient(t, c, "cli")
	b, err := cl.Create(ctx, 64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Append(ctx, pattern(12, 64))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.WaitPublished(ctx, res.Ver); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReadAt(ctx, res.Ver, 0, 64); err != nil {
		t.Fatal(err)
	}
	c.VM.Close()
	// Version metadata is immutable once published; the re-read must
	// be served from the local version-info cache (and page cache).
	got, err := b.ReadAt(ctx, res.Ver, 0, 64)
	if err != nil {
		t.Fatalf("re-read after VM death: %v", err)
	}
	if !bytes.Equal(got, pattern(12, 64)) {
		t.Error("re-read mismatched")
	}
	// Latest (ver 0) genuinely needs the version manager.
	if _, err := b.ReadAt(ctx, 0, 0, 64); err == nil {
		t.Error("latest-version read succeeded without a version manager")
	}
}
