package blob

// router.go resolves blob → version-manager shard for every caller:
// blob.Client, the GC collector, snapshot/history readers, shuffle,
// and bsfs all route metadata calls through a VMRouter instead of a
// private vmPool, so the whole system shares one blob→shard mapping —
// the same consistent-hash ring the shards themselves use to stripe id
// allocation (vmanager.go). Shard addresses are stable across
// restarts: failover replaces the process behind an address, never the
// address, so the ring needs no membership protocol.
//
// The router also owns the failover retry policy: transport-level
// failures (connection lost, endpoint unbound, server closing) are
// retried with capped exponential backoff so a shard restart within
// the retry budget is invisible to callers — in-flight appends stall
// briefly instead of failing.

import (
	"context"
	"errors"
	"hash/fnv"
	"strconv"
	"sync/atomic"
	"time"

	"blobseer/internal/dht"
	"blobseer/internal/rpc"
	"blobseer/internal/transport"
	"blobseer/internal/wire"
)

// vmRingVnodes is the virtual-node count of the blob→shard ring. Both
// the router (to route) and each shard (to stripe id allocation) build
// the ring with this count over the same ShardAddrs, so they always
// agree on ownership.
const vmRingVnodes = 64

// vmRingKey is the ring key of a blob id. Shared by router lookup and
// manager-side ownership checks.
func vmRingKey(blob uint64) string {
	return "blob/" + strconv.FormatUint(blob, 10)
}

// Retry budget for shard failover, mirroring the shuffle fetch loop's
// 5ms→320ms capped-exponential schedule; 12 attempts ≈ 1.9s total,
// comfortably covering a standby replay-and-takeover.
const (
	vmRetryBase     = 5 * time.Millisecond
	vmRetryCap      = 320 * time.Millisecond
	vmRetryAttempts = 12
)

// VMRouter maps blob ids to version-manager shards and calls through
// with failover retry. Safe for concurrent use.
type VMRouter struct {
	pool   *rpc.Pool
	shards []transport.Addr
	ring   *dht.Ring // nil with a single shard
	rr     atomic.Uint32
}

// NewVMRouter builds a router over the shard addresses, calling from
// pool. With one shard the ring is skipped entirely. seed offsets the
// creation round-robin: routers are per-client, so without a
// per-client offset every fresh client's first CreateBlob would land
// on shard 0 and a one-create-per-client workload (one file per
// mount, say) would pile all ownership onto one shard.
func NewVMRouter(pool *rpc.Pool, shards []transport.Addr, seed string) *VMRouter {
	r := &VMRouter{pool: pool, shards: append([]transport.Addr(nil), shards...)}
	if len(r.shards) > 1 {
		r.ring = dht.NewRing(r.shards, vmRingVnodes)
		h := fnv.New32a()
		h.Write([]byte(seed))
		r.rr.Store(h.Sum32())
	}
	return r
}

// Shards returns every shard address, in ring-slot order.
func (r *VMRouter) Shards() []transport.Addr {
	return append([]transport.Addr(nil), r.shards...)
}

// Shard returns the shard owning blob.
func (r *VMRouter) Shard(blob uint64) transport.Addr {
	if r.ring == nil {
		return r.shards[0]
	}
	return r.ring.Lookup(vmRingKey(blob), 1)[0]
}

// CreateTarget picks the shard for the next CreateBlob, round-robin so
// creations spread load; the created id is owned by whichever shard
// allocated it (shards allocate only ids the ring maps to themselves).
func (r *VMRouter) CreateTarget() transport.Addr {
	if len(r.shards) == 1 {
		return r.shards[0]
	}
	return r.shards[int(r.rr.Add(1)-1)%len(r.shards)]
}

// Call routes one RPC to blob's shard with failover retry.
func (r *VMRouter) Call(ctx context.Context, blob uint64, method rpc.Method, req wire.Marshaler, resp wire.Unmarshaler) error {
	return r.CallAddr(ctx, r.Shard(blob), method, req, resp)
}

// CallAddr issues one RPC to a specific shard with failover retry:
// transport-level failures back off 5ms→320ms (capped exponential) and
// redial, so a shard being killed and taken over within the budget
// costs latency, not an error. Application errors (not-found, version
// conflicts) are never retried.
func (r *VMRouter) CallAddr(ctx context.Context, addr transport.Addr, method rpc.Method, req wire.Marshaler, resp wire.Unmarshaler) error {
	backoff := vmRetryBase
	var err error
	for attempt := 0; attempt < vmRetryAttempts; attempt++ {
		if attempt > 0 {
			timer := time.NewTimer(backoff)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return ctx.Err()
			}
			if backoff *= 2; backoff > vmRetryCap {
				backoff = vmRetryCap
			}
		}
		err = r.pool.Call(ctx, addr, method, req, resp)
		if err == nil || !retryableVMErr(err) {
			return err
		}
	}
	return err
}

// retryableVMErr reports whether err is a transport-level failure a
// failover can cure: the connection died, the endpoint is (still)
// unbound, or the server answered while shutting down. RemoteError.Is
// makes the server-side ErrServerClosed match across the wire.
func retryableVMErr(err error) bool {
	return errors.Is(err, rpc.ErrConnLost) ||
		errors.Is(err, rpc.ErrServerClosed) ||
		errors.Is(err, transport.ErrNoListener)
}
