package blob

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"blobseer/internal/dht"
	"blobseer/internal/pagestore"
	"blobseer/internal/rpc"
	"blobseer/internal/transport"
)

// StoreKind selects the provider storage engine.
type StoreKind int

// Provider storage engines.
const (
	StoreMemory StoreKind = iota
	StoreSynthesize
)

// ClusterConfig sizes an in-process BlobSeer deployment. The defaults
// mirror the paper's §4.1 topology proportions: one version manager,
// one provider manager, a set of metadata providers, and the remaining
// nodes as data providers.
type ClusterConfig struct {
	Providers     int       // data providers (default 8)
	MetaProviders int       // metadata providers (default 3)
	Store         StoreKind // provider storage engine
	Strategy      Strategy  // provider allocation (default RoundRobin)
	SealTimeout   time.Duration
	MetaReplicas  int // DHT replication (default 2)
	PageReplicas  int // page replication (default 1)

	// VMShards partitions the metadata plane across N version-manager
	// shards (default 1: the paper's single version manager). BLOB ids
	// are consistent-hashed across shards; every client routes through
	// the shared VMRouter ring.
	VMShards int

	// JournalDir, when non-empty, makes the version-manager shards
	// durable: shard i journals to <JournalDir>/vmanager-<i>.log and a
	// restarted (or failed-over) shard replays to its acknowledged
	// state. Empty keeps the in-memory managers.
	JournalDir string

	// Retain is the version manager's default RetainLatest policy:
	// keep only the latest k published versions per BLOB and let the
	// garbage collector retire the rest. 0 keeps every version.
	Retain uint64

	// CacheBytes is the per-client page-cache budget handed to
	// Client() (0 = cache.DefaultBudget, negative disables caching).
	CacheBytes int64

	// HostPrefix names provider hosts ("<prefix>-<i>"); defaults to
	// "node". Clients co-locate with providers by using these hosts.
	HostPrefix string

	// NICBandwidth is the modeled per-host NIC capacity in bytes/s of
	// the underlying transport (simnet's Bandwidth). Purely descriptive
	// at this layer: the cluster monitor computes provider utilization
	// against it. 0 means unknown.
	NICBandwidth float64
}

// Cluster is an in-process BlobSeer deployment on one transport.
type Cluster struct {
	Net transport.Network
	Cfg ClusterConfig

	// VM is shard 0, kept for single-shard callers and tests; VMs holds
	// every shard in ring-slot order.
	VM        *VersionManager
	VMs       []*VersionManager
	PM        *ProviderManager
	Providers []*Provider
	Metas     []*dht.Server

	vmAddrs []transport.Addr // stable shard endpoints (survive restarts)
	vmPools []*rpc.Pool      // per-shard pools backing seal-path metadata clients

	// notifyMu guards reclaimNotify, the cluster-level reclaim callback
	// re-applied to a shard when it restarts after failover.
	notifyMu      sync.Mutex
	reclaimNotify func()

	// vmMu guards VMs slot replacement: failover (startVM) swaps a
	// shard pointer while the cluster monitor samples through ShardVM.
	vmMu sync.RWMutex

	// heatMu guards the heat hooks; readHeat flows into clients created
	// after SetHeat, writeHeat is (re-)applied to every provider.
	heatMu    sync.Mutex
	readHeat  PageTouch
	writeHeat PageTouch
}

// VMShardHost names the host of version-manager shard i. Shard 0
// keeps the historical "vmanager-host" so single-shard deployments
// are wire-identical to earlier versions. Exported so shaped
// environments can give the metadata hosts their own NIC profile.
func VMShardHost(i int) string {
	if i == 0 {
		return "vmanager-host"
	}
	return fmt.Sprintf("vmanager-%d-host", i)
}

// NewCluster starts all services of a BlobSeer deployment on net.
func NewCluster(net transport.Network, cfg ClusterConfig) (*Cluster, error) {
	if cfg.Providers <= 0 {
		cfg.Providers = 8
	}
	if cfg.MetaProviders <= 0 {
		cfg.MetaProviders = 3
	}
	if cfg.MetaReplicas <= 0 {
		cfg.MetaReplicas = 2
	}
	if cfg.PageReplicas <= 0 {
		cfg.PageReplicas = 1
	}
	if cfg.VMShards <= 0 {
		cfg.VMShards = 1
	}
	if cfg.HostPrefix == "" {
		cfg.HostPrefix = "node"
	}
	if cfg.JournalDir != "" {
		if err := os.MkdirAll(cfg.JournalDir, 0o755); err != nil {
			return nil, err
		}
	}
	c := &Cluster{Net: net, Cfg: cfg}

	// Metadata providers.
	for i := 0; i < cfg.MetaProviders; i++ {
		addr := transport.MakeAddr(fmt.Sprintf("meta-%03d", i), SvcMetadata)
		s, err := dht.NewServer(net, addr)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Metas = append(c.Metas, s)
	}

	// Version-manager shards. Addresses are fixed up front: the ring
	// over them is what every router and every shard's id allocator
	// hashes against, and failover re-binds an address rather than
	// changing the set.
	for i := 0; i < cfg.VMShards; i++ {
		c.vmAddrs = append(c.vmAddrs, transport.MakeAddr(VMShardHost(i), SvcVersionManager))
	}
	c.VMs = make([]*VersionManager, cfg.VMShards)
	c.vmPools = make([]*rpc.Pool, cfg.VMShards)
	for i := 0; i < cfg.VMShards; i++ {
		if err := c.startVM(i); err != nil {
			c.Close()
			return nil, err
		}
	}
	c.VM = c.VMs[0]

	// Provider manager.
	pm, err := NewProviderManager(net, transport.MakeAddr("pmanager-host", SvcProviderManager), cfg.Strategy)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.PM = pm

	// Data providers, registered with the provider manager.
	for i := 0; i < cfg.Providers; i++ {
		addr := transport.MakeAddr(fmt.Sprintf("%s-%03d", cfg.HostPrefix, i), SvcProvider)
		var store pagestore.Store
		switch cfg.Store {
		case StoreSynthesize:
			store = pagestore.NewSynthesize()
		default:
			store = pagestore.NewMemory()
		}
		p, err := NewProvider(net, addr, store)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Providers = append(c.Providers, p)
		pm.Register(string(addr))
	}
	return c, nil
}

// startVM boots shard i at its stable address: a fresh pool for the
// shard's seal-path metadata client, plus the journal path when the
// cluster is durable. It is both the initial boot and the failover
// path (RestartVM).
func (c *Cluster) startVM(i int) error {
	if c.vmPools[i] != nil {
		c.vmPools[i].Close()
	}
	pool := rpc.NewPool(c.Net, transport.MakeAddr(VMShardHost(i), "client"))
	ring := dht.NewRing(c.MetaAddrs(), 64)
	nodes := NewNodeStore(dht.NewClient(ring, pool, c.Cfg.MetaReplicas))
	vmCfg := VersionManagerConfig{
		SealTimeout:  c.Cfg.SealTimeout,
		Nodes:        nodes,
		RetainLatest: c.Cfg.Retain,
	}
	if c.Cfg.VMShards > 1 {
		vmCfg.ShardIndex = i
		vmCfg.ShardCount = c.Cfg.VMShards
		vmCfg.ShardAddrs = c.vmAddrs
	}
	if c.Cfg.JournalDir != "" {
		vmCfg.JournalPath = filepath.Join(c.Cfg.JournalDir, fmt.Sprintf("vmanager-%d.log", i))
	}
	vm, err := NewVersionManager(c.Net, c.vmAddrs[i], vmCfg)
	if err != nil {
		pool.Close()
		return err
	}
	c.notifyMu.Lock()
	if c.reclaimNotify != nil {
		vm.SetReclaimNotify(c.reclaimNotify)
	}
	c.notifyMu.Unlock()
	c.vmPools[i] = pool
	c.vmMu.Lock()
	c.VMs[i] = vm
	if i == 0 {
		c.VM = vm
	}
	c.vmMu.Unlock()
	return nil
}

// ShardVM returns the current version-manager shard in slot i. Unlike
// reading VMs[i] directly, it is safe against a concurrent failover
// restart swapping the slot (the cluster monitor samples through it).
func (c *Cluster) ShardVM(i int) *VersionManager {
	c.vmMu.RLock()
	defer c.vmMu.RUnlock()
	if i < 0 || i >= len(c.VMs) {
		return nil
	}
	return c.VMs[i]
}

// SetHeat installs the page-access heat hooks: write heat on every
// provider (applied immediately) and read heat on every client created
// afterwards. Either may be nil.
func (c *Cluster) SetHeat(read, write PageTouch) {
	c.heatMu.Lock()
	c.readHeat = read
	c.writeHeat = write
	c.heatMu.Unlock()
	for _, p := range c.Providers {
		p.SetWriteHeat(write)
	}
}

// KillVM crashes shard i: the endpoint unbinds and the journal closes
// WITHOUT a final checkpoint, exactly what a process kill leaves
// behind. Callers' routed RPCs fail over to the retry loop until
// RestartVM re-binds the address.
func (c *Cluster) KillVM(i int) error {
	if c.VMs[i] == nil {
		return nil
	}
	return c.VMs[i].Kill()
}

// RestartVM brings shard i back at its old address — the standby
// takeover: open the shard's journal, replay to the acknowledged
// state, re-bind. Requires JournalDir (an in-memory shard has no state
// to take over).
func (c *Cluster) RestartVM(i int) error {
	return c.startVM(i)
}

// VMAddrs returns every shard endpoint, in ring-slot order.
func (c *Cluster) VMAddrs() []transport.Addr {
	return append([]transport.Addr(nil), c.vmAddrs...)
}

// SetReclaimNotify registers the reclaim kick on every shard and
// remembers it so restarted shards are re-wired after failover.
func (c *Cluster) SetReclaimNotify(fn func()) {
	c.notifyMu.Lock()
	c.reclaimNotify = fn
	c.notifyMu.Unlock()
	for _, vm := range c.VMs {
		if vm != nil {
			vm.SetReclaimNotify(fn)
		}
	}
}

// MetaAddrs returns the metadata provider endpoints.
func (c *Cluster) MetaAddrs() []transport.Addr {
	out := make([]transport.Addr, len(c.Metas))
	for i, m := range c.Metas {
		out[i] = m.Addr()
	}
	return out
}

// ProviderHosts returns the host names of all data providers, for
// co-locating clients with providers as the paper's experiments do.
func (c *Cluster) ProviderHosts() []string {
	out := make([]string, len(c.Providers))
	for i, p := range c.Providers {
		out[i] = p.Addr().Host()
	}
	return out
}

// ProviderBytes sums BytesUsed over all data providers; tests and the
// GC experiments watch it to verify reclamation.
func (c *Cluster) ProviderBytes() int64 {
	var total int64
	for _, p := range c.Providers {
		total += p.Store().BytesUsed()
	}
	return total
}

// Client returns a client for this deployment running on host.
func (c *Cluster) Client(host string) *Client {
	c.heatMu.Lock()
	readHeat := c.readHeat
	c.heatMu.Unlock()
	return NewClient(ClientConfig{
		ReadHeat:        readHeat,
		Net:             c.Net,
		Host:            host,
		VersionManager:  c.vmAddrs[0],
		VersionManagers: c.VMAddrs(),
		ProviderManager: c.PM.Addr(),
		Metadata:        c.MetaAddrs(),
		MetaReplicas:    c.Cfg.MetaReplicas,
		PageReplicas:    c.Cfg.PageReplicas,
		CacheBytes:      c.Cfg.CacheBytes,
	})
}

// Close tears the whole deployment down.
func (c *Cluster) Close() error {
	for _, vm := range c.VMs {
		if vm != nil {
			vm.Close()
		}
	}
	if c.PM != nil {
		c.PM.Close()
	}
	for _, p := range c.Providers {
		p.Close()
	}
	for _, m := range c.Metas {
		m.Close()
	}
	for _, p := range c.vmPools {
		if p != nil {
			p.Close()
		}
	}
	return nil
}
