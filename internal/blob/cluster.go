package blob

import (
	"fmt"
	"time"

	"blobseer/internal/dht"
	"blobseer/internal/pagestore"
	"blobseer/internal/rpc"
	"blobseer/internal/transport"
)

// StoreKind selects the provider storage engine.
type StoreKind int

// Provider storage engines.
const (
	StoreMemory StoreKind = iota
	StoreSynthesize
)

// ClusterConfig sizes an in-process BlobSeer deployment. The defaults
// mirror the paper's §4.1 topology proportions: one version manager,
// one provider manager, a set of metadata providers, and the remaining
// nodes as data providers.
type ClusterConfig struct {
	Providers     int       // data providers (default 8)
	MetaProviders int       // metadata providers (default 3)
	Store         StoreKind // provider storage engine
	Strategy      Strategy  // provider allocation (default RoundRobin)
	SealTimeout   time.Duration
	MetaReplicas  int // DHT replication (default 2)
	PageReplicas  int // page replication (default 1)

	// Retain is the version manager's default RetainLatest policy:
	// keep only the latest k published versions per BLOB and let the
	// garbage collector retire the rest. 0 keeps every version.
	Retain uint64

	// CacheBytes is the per-client page-cache budget handed to
	// Client() (0 = cache.DefaultBudget, negative disables caching).
	CacheBytes int64

	// HostPrefix names provider hosts ("<prefix>-<i>"); defaults to
	// "node". Clients co-locate with providers by using these hosts.
	HostPrefix string
}

// Cluster is an in-process BlobSeer deployment on one transport.
type Cluster struct {
	Net transport.Network
	Cfg ClusterConfig

	VM        *VersionManager
	PM        *ProviderManager
	Providers []*Provider
	Metas     []*dht.Server

	vmPool *rpc.Pool // pool backing the VM's seal-path metadata client
}

// NewCluster starts all services of a BlobSeer deployment on net.
func NewCluster(net transport.Network, cfg ClusterConfig) (*Cluster, error) {
	if cfg.Providers <= 0 {
		cfg.Providers = 8
	}
	if cfg.MetaProviders <= 0 {
		cfg.MetaProviders = 3
	}
	if cfg.MetaReplicas <= 0 {
		cfg.MetaReplicas = 2
	}
	if cfg.PageReplicas <= 0 {
		cfg.PageReplicas = 1
	}
	if cfg.HostPrefix == "" {
		cfg.HostPrefix = "node"
	}
	c := &Cluster{Net: net, Cfg: cfg}

	// Metadata providers.
	for i := 0; i < cfg.MetaProviders; i++ {
		addr := transport.MakeAddr(fmt.Sprintf("meta-%03d", i), SvcMetadata)
		s, err := dht.NewServer(net, addr)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Metas = append(c.Metas, s)
	}

	// Version manager, with its own metadata client for sealing.
	c.vmPool = rpc.NewPool(net, transport.MakeAddr("vmanager-host", "client"))
	ring := dht.NewRing(c.MetaAddrs(), 64)
	nodes := NewNodeStore(dht.NewClient(ring, c.vmPool, cfg.MetaReplicas))
	vm, err := NewVersionManager(net, transport.MakeAddr("vmanager-host", SvcVersionManager),
		VersionManagerConfig{SealTimeout: cfg.SealTimeout, Nodes: nodes, RetainLatest: cfg.Retain})
	if err != nil {
		c.Close()
		return nil, err
	}
	c.VM = vm

	// Provider manager.
	pm, err := NewProviderManager(net, transport.MakeAddr("pmanager-host", SvcProviderManager), cfg.Strategy)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.PM = pm

	// Data providers, registered with the provider manager.
	for i := 0; i < cfg.Providers; i++ {
		addr := transport.MakeAddr(fmt.Sprintf("%s-%03d", cfg.HostPrefix, i), SvcProvider)
		var store pagestore.Store
		switch cfg.Store {
		case StoreSynthesize:
			store = pagestore.NewSynthesize()
		default:
			store = pagestore.NewMemory()
		}
		p, err := NewProvider(net, addr, store)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Providers = append(c.Providers, p)
		pm.Register(string(addr))
	}
	return c, nil
}

// MetaAddrs returns the metadata provider endpoints.
func (c *Cluster) MetaAddrs() []transport.Addr {
	out := make([]transport.Addr, len(c.Metas))
	for i, m := range c.Metas {
		out[i] = m.Addr()
	}
	return out
}

// ProviderHosts returns the host names of all data providers, for
// co-locating clients with providers as the paper's experiments do.
func (c *Cluster) ProviderHosts() []string {
	out := make([]string, len(c.Providers))
	for i, p := range c.Providers {
		out[i] = p.Addr().Host()
	}
	return out
}

// ProviderBytes sums BytesUsed over all data providers; tests and the
// GC experiments watch it to verify reclamation.
func (c *Cluster) ProviderBytes() int64 {
	var total int64
	for _, p := range c.Providers {
		total += p.Store().BytesUsed()
	}
	return total
}

// Client returns a client for this deployment running on host.
func (c *Cluster) Client(host string) *Client {
	return NewClient(ClientConfig{
		Net:             c.Net,
		Host:            host,
		VersionManager:  c.VM.Addr(),
		ProviderManager: c.PM.Addr(),
		Metadata:        c.MetaAddrs(),
		MetaReplicas:    c.Cfg.MetaReplicas,
		PageReplicas:    c.Cfg.PageReplicas,
		CacheBytes:      c.Cfg.CacheBytes,
	})
}

// Close tears the whole deployment down.
func (c *Cluster) Close() error {
	if c.VM != nil {
		c.VM.Close()
	}
	if c.PM != nil {
		c.PM.Close()
	}
	for _, p := range c.Providers {
		p.Close()
	}
	for _, m := range c.Metas {
		m.Close()
	}
	if c.vmPool != nil {
		c.vmPool.Close()
	}
	return nil
}
