package blob

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"blobseer/internal/rpc"
	"blobseer/internal/transport"
	"blobseer/internal/wire"
)

// Strategy decides which providers receive the pages of one write.
// Implementations are called under the provider manager's lock and must
// not block.
type Strategy interface {
	// Name identifies the strategy in configs and experiment output.
	Name() string
	// Pick returns, for each of nPages pages, `replicas` distinct
	// provider indices into the providers slice. loads[i] is the byte
	// load already assigned to providers[i] (strategies may ignore it).
	Pick(nPages, replicas int, providers []string, loads []uint64) [][]int
}

// RoundRobin spreads consecutive pages over consecutive providers. It
// is BlobSeer's default allocation: with all appenders striping in
// round-robin order from a shared cursor, pages spread evenly.
type RoundRobin struct{ next int }

// Name implements Strategy.
func (s *RoundRobin) Name() string { return "roundrobin" }

// Pick implements Strategy.
func (s *RoundRobin) Pick(nPages, replicas int, providers []string, loads []uint64) [][]int {
	out := make([][]int, nPages)
	p := len(providers)
	for i := range out {
		row := make([]int, replicas)
		for j := range row {
			row[j] = (s.next + j) % p
		}
		s.next = (s.next + 1) % p
		out[i] = row
	}
	return out
}

// RandomK picks uniform random distinct providers per page. Collisions
// between concurrent writers model the balls-into-bins hotspots of a
// random placement policy.
type RandomK struct{ rng *rand.Rand }

// NewRandomK returns a RandomK strategy with the given seed.
func NewRandomK(seed int64) *RandomK {
	return &RandomK{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Strategy.
func (s *RandomK) Name() string { return "random" }

// Pick implements Strategy.
func (s *RandomK) Pick(nPages, replicas int, providers []string, loads []uint64) [][]int {
	out := make([][]int, nPages)
	p := len(providers)
	for i := range out {
		row := make([]int, 0, replicas)
		seen := make(map[int]bool, replicas)
		for len(row) < replicas {
			c := s.rng.Intn(p)
			if !seen[c] {
				seen[c] = true
				row = append(row, c)
			}
		}
		out[i] = row
	}
	return out
}

// LeastLoaded assigns each page to the providers with the least bytes
// allocated so far.
type LeastLoaded struct{}

// Name implements Strategy.
func (s *LeastLoaded) Name() string { return "leastloaded" }

// Pick implements Strategy.
func (s *LeastLoaded) Pick(nPages, replicas int, providers []string, loads []uint64) [][]int {
	// Work on a copy so intra-call assignments influence later pages.
	l := append([]uint64(nil), loads...)
	out := make([][]int, nPages)
	for i := range out {
		row := make([]int, 0, replicas)
		for len(row) < replicas {
			best := -1
			for c := range l {
				if contains(row, c) {
					continue
				}
				if best < 0 || l[c] < l[best] {
					best = c
				}
			}
			row = append(row, best)
			l[best]++ // placeholder unit; real bytes added by the manager
		}
		out[i] = row
	}
	return out
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// ProviderManager is BlobSeer's provider manager (§3.1.1): providers
// register with it, and writers ask it which providers should store
// each page, "aiming at load-balancing".
type ProviderManager struct {
	srv      *rpc.Server
	strategy Strategy

	mu        sync.Mutex
	providers []string
	index     map[string]int
	loads     []uint64 // bytes assigned per provider
}

// NewProviderManager starts a provider manager at addr using the given
// strategy (nil means RoundRobin).
func NewProviderManager(net transport.Network, addr transport.Addr, strategy Strategy) (*ProviderManager, error) {
	if strategy == nil {
		strategy = &RoundRobin{}
	}
	srv, err := rpc.NewServer(net, addr)
	if err != nil {
		return nil, err
	}
	pm := &ProviderManager{srv: srv, strategy: strategy, index: make(map[string]int)}
	srv.Handle(PMRegister, pm.handleRegister)
	srv.Handle(PMAlloc, pm.handleAlloc)
	srv.Handle(PMProviders, pm.handleProviders)
	return pm, nil
}

// Addr returns the manager's endpoint.
func (pm *ProviderManager) Addr() transport.Addr { return pm.srv.Addr() }

// Close stops the manager.
func (pm *ProviderManager) Close() error { return pm.srv.Close() }

// Register adds a provider directly (used by the in-process cluster
// harness; remote providers use the PMRegister RPC).
func (pm *ProviderManager) Register(addr string) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	pm.registerLocked(addr)
}

func (pm *ProviderManager) registerLocked(addr string) {
	if _, ok := pm.index[addr]; ok {
		return
	}
	pm.index[addr] = len(pm.providers)
	pm.providers = append(pm.providers, addr)
	pm.loads = append(pm.loads, 0)
}

func (pm *ProviderManager) handleRegister(r *wire.Reader) (wire.Marshaler, error) {
	var req RegisterReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	pm.Register(req.Addr)
	return nil, nil
}

func (pm *ProviderManager) handleAlloc(r *wire.Reader) (wire.Marshaler, error) {
	var req AllocReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	if req.NPages == 0 {
		return nil, errors.New("blob: alloc of zero pages")
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if len(pm.providers) == 0 {
		return nil, errors.New("blob: no providers registered")
	}
	replicas := int(req.Replicas)
	if replicas < 1 {
		replicas = 1
	}
	if replicas > len(pm.providers) {
		replicas = len(pm.providers)
	}
	rows := pm.strategy.Pick(int(req.NPages), replicas, pm.providers, pm.loads)
	if len(rows) != int(req.NPages) {
		return nil, fmt.Errorf("blob: strategy returned %d rows for %d pages", len(rows), req.NPages)
	}
	resp := &AllocResp{
		Replicas:  uint64(replicas),
		Providers: make([]string, 0, int(req.NPages)*replicas),
	}
	perPage := req.Bytes / req.NPages
	for _, row := range rows {
		if len(row) != replicas {
			return nil, fmt.Errorf("blob: strategy returned %d replicas, want %d", len(row), replicas)
		}
		for _, idx := range row {
			resp.Providers = append(resp.Providers, pm.providers[idx])
			pm.loads[idx] += perPage
		}
	}
	return resp, nil
}

func (pm *ProviderManager) handleProviders(r *wire.Reader) (wire.Marshaler, error) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return &ProvidersResp{Providers: append([]string(nil), pm.providers...)}, nil
}
