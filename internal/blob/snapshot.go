package blob

import (
	"context"
	"sync"
	"time"

	"blobseer/internal/obs"
)

// Snapshot is a read handle bound to one published version of a BLOB,
// carrying a garbage-collection pin for its whole lifetime: between At
// and Close the version manager cannot reclaim the version, so every
// read through the handle is served from an immutable, complete page
// set — the "versioned open" primitive of the snapshot-first API.
//
// The pin is a lease (see Blob.Pin): a crashed holder delays
// collection by at most one TTL. Reads through the handle renew the
// lease once it is past half its life, so a handle that is actually
// being read stays protected indefinitely; an idle handle older than
// the TTL may lose its pin and should call Renew before resuming.
type Snapshot struct {
	b    *Blob
	info VersionInfo
	ttl  time.Duration

	mu       sync.Mutex
	pinned   bool
	pinnedAt time.Time
	closed   bool
}

// At opens a pinned snapshot of version ver (0 means the latest
// published version). The pin lands before the version metadata is
// read, so there is no window where the collector can reclaim the
// version between lookup and pin: At either returns a fully protected
// handle or fails with ErrVersionCollected. ttl <= 0 uses the version
// manager's default lease.
//
// Version 0 (the empty initial snapshot) has no pages and needs no
// pin; At returns a handle over the empty state.
func (b *Blob) At(ctx context.Context, ver uint64, ttl time.Duration) (*Snapshot, error) {
	// For ver == 0 the Latest reply already carries the snapshot's full
	// (immutable) metadata; a successful pin proves the version is
	// still uncollected, so no re-fetch is needed. Only an explicitly
	// requested version resolves after the pin.
	var info VersionInfo
	if ver == 0 {
		latest, err := b.Latest(ctx)
		if err != nil {
			return nil, err
		}
		ver, info = latest.Ver, latest
	}
	s := &Snapshot{b: b, ttl: ttl, info: VersionInfo{Ver: ver, Published: true}}
	if ver > 0 {
		if err := b.Pin(ctx, ver, ttl); err != nil {
			return nil, err
		}
		s.pinned = true
		s.pinnedAt = time.Now()
	}
	if info.Ver != ver || !info.Published {
		got, err := b.GetVersion(ctx, ver)
		if err != nil {
			s.Close()
			return nil, err
		}
		if !got.Published {
			s.Close()
			return nil, ErrNotPublished
		}
		info = got
	}
	s.info = info
	return s, nil
}

// Info returns the snapshot's version metadata.
func (s *Snapshot) Info() VersionInfo { return s.info }

// Ver returns the pinned version number.
func (s *Snapshot) Ver() uint64 { return s.info.Ver }

// Size returns the BLOB size at the pinned version.
func (s *Snapshot) Size() uint64 { return s.info.Size }

// ReadAt reads n bytes at byte offset off from the pinned version.
func (s *Snapshot) ReadAt(ctx context.Context, off, n uint64) ([]byte, error) {
	s.renew(ctx)
	return s.b.ReadAt(ctx, s.info.Ver, off, n)
}

// ReadAtInto reads len(p) bytes at off from the pinned version into p.
func (s *Snapshot) ReadAtInto(ctx context.Context, off uint64, p []byte) (int, error) {
	s.renew(ctx)
	return s.b.ReadAtInto(ctx, s.info.Ver, off, p)
}

// PageView returns a read-only whole-page view of the pinned version
// (see Blob.PageView; the bytes may alias the shared cache).
func (s *Snapshot) PageView(ctx context.Context, page uint64) ([]byte, error) {
	s.renew(ctx)
	return s.b.PageView(ctx, s.info.Ver, page)
}

// Prefetch warms the shared page cache with [off, off+n) of the pinned
// version.
func (s *Snapshot) Prefetch(ctx context.Context, off, n uint64) error {
	s.renew(ctx)
	return s.b.Prefetch(ctx, s.info.Ver, off, n)
}

// PageLocations resolves the page→provider mapping of [off, off+n) of
// the pinned version, for locality-aware scheduling against a fixed
// snapshot.
func (s *Snapshot) PageLocations(ctx context.Context, off, n uint64) ([]PageLoc, error) {
	s.renew(ctx)
	return s.b.PageLocations(ctx, s.info.Ver, off, n)
}

// Renew extends the pin lease by a full TTL immediately (reads renew
// lazily past the half-life; an idle holder calls this before resuming
// after a long pause). Renewing a collected version fails with
// ErrVersionCollected — the handle lost its protection while idle.
func (s *Snapshot) Renew(ctx context.Context) error {
	s.mu.Lock()
	pinned := s.pinned && !s.closed
	s.mu.Unlock()
	if !pinned {
		return nil
	}
	// Pin then Unpin, in that order: the extra reference carries the
	// refreshed expiry while the count nets out, and the version is
	// never left unreferenced in between.
	if err := s.b.Pin(ctx, s.info.Ver, s.ttl); err != nil {
		return err
	}
	if err := s.b.Unpin(ctx, s.info.Ver); err != nil {
		// The fresh pin still protects the version; the stray count
		// drains when its lease expires.
		obs.Log.Debugf("blob %d: unpin after lease refresh of version %d: %v", s.b.id, s.info.Ver, err)
	}
	s.mu.Lock()
	s.pinnedAt = time.Now()
	s.mu.Unlock()
	return nil
}

// renew extends the lease once it is past half its life. Failure is
// ignored: the read itself surfaces ErrVersionCollected if the version
// really is gone.
func (s *Snapshot) renew(ctx context.Context) {
	s.mu.Lock()
	ttl := s.ttl
	if ttl <= 0 {
		// The manager applied its default; renew on a conservative guess.
		ttl = time.Minute
	}
	due := s.pinned && !s.closed && time.Since(s.pinnedAt) >= ttl/2
	s.mu.Unlock()
	if due {
		if err := s.Renew(ctx); err != nil {
			obs.Log.Debugf("blob %d: snapshot lease renew of version %d: %v", s.b.id, s.info.Ver, err)
		}
	}
}

// Close releases the snapshot's pin. It runs on a detached context:
// the caller's context may already be cancelled, but the release must
// still reach the version manager or collection stalls for one TTL.
// Close is idempotent.
func (s *Snapshot) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	pinned := s.pinned
	s.pinned = false
	s.mu.Unlock()
	if !pinned {
		return nil
	}
	//lint:detached the pin release must reach the version manager even after the caller's ctx died, or collection stalls a full TTL
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return s.b.Unpin(ctx, s.info.Ver)
}
