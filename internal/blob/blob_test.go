package blob

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"blobseer/internal/transport"
)

var ctx = context.Background()

func newTestCluster(t *testing.T, cfg ClusterConfig) *Cluster {
	t.Helper()
	c, err := NewCluster(transport.NewMemNet(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func newTestClient(t *testing.T, c *Cluster, host string) *Client {
	t.Helper()
	cl := c.Client(host)
	t.Cleanup(func() { cl.Close() })
	return cl
}

// pattern returns deterministic but position-dependent content.
func pattern(tag byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(int(tag)*31 + i*7)
	}
	return out
}

func TestCreateOpen(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{})
	cl := newTestClient(t, c, "cli")
	b, err := cl.Create(ctx, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if b.PageSize() != 4096 {
		t.Errorf("PageSize = %d", b.PageSize())
	}
	b2, err := cl.Open(ctx, b.ID())
	if err != nil {
		t.Fatal(err)
	}
	if b2.PageSize() != 4096 || b2.ID() != b.ID() {
		t.Errorf("Open returned %d/%d", b2.ID(), b2.PageSize())
	}
	if _, err := cl.Open(ctx, 9999); !errors.Is(err, ErrBlobNotFound) {
		t.Errorf("Open missing blob: %v", err)
	}
	info, err := b.Latest(ctx)
	if err != nil || info.Ver != 0 || info.Size != 0 {
		t.Errorf("fresh Latest = %+v, %v", info, err)
	}
}

func TestAppendRead(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{})
	cl := newTestClient(t, c, "cli")
	b, err := cl.Create(ctx, 1024)
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(1, 4096) // 4 full pages
	res, err := b.Append(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	ver := res.Ver
	if ver != 1 {
		t.Errorf("ver = %d", ver)
	}
	if res.Start != 0 || res.SizeAfter != 4096 {
		t.Errorf("result = %+v", res)
	}
	if _, err := b.WaitPublished(ctx, ver); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadAt(ctx, 0, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read mismatch after append")
	}
	// Sub-range read crossing page boundaries.
	got, err = b.ReadAt(ctx, ver, 1000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[1000:3000]) {
		t.Fatal("sub-range read mismatch")
	}
}

func TestAppendPartialPage(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{})
	cl := newTestClient(t, c, "cli")
	b, err := cl.Create(ctx, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// Unaligned appends force boundary merges.
	chunks := [][]byte{pattern(1, 100), pattern(2, 2000), pattern(3, 1), pattern(4, 1023), pattern(5, 5000)}
	var want []byte
	for _, ch := range chunks {
		if _, err := b.Append(ctx, ch); err != nil {
			t.Fatal(err)
		}
		want = append(want, ch...)
	}
	info, err := b.Latest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != uint64(len(want)) {
		t.Fatalf("size = %d, want %d", info.Size, len(want))
	}
	got, err := b.ReadAt(ctx, 0, 0, uint64(len(want)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("content mismatch after unaligned appends")
	}
}

func TestVersionIsolation(t *testing.T) {
	// The core BlobSeer property: every published version remains
	// readable and immutable as new versions are appended.
	c := newTestCluster(t, ClusterConfig{})
	cl := newTestClient(t, c, "cli")
	b, err := cl.Create(ctx, 512)
	if err != nil {
		t.Fatal(err)
	}
	var snapshots [][]byte
	var acc []byte
	for v := 1; v <= 10; v++ {
		chunk := pattern(byte(v), 512*3)
		if _, err := b.Append(ctx, chunk); err != nil {
			t.Fatal(err)
		}
		acc = append(acc, chunk...)
		snapshots = append(snapshots, append([]byte(nil), acc...))
	}
	if _, err := b.WaitPublished(ctx, 10); err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 10; v++ {
		want := snapshots[v-1]
		got, err := b.ReadAt(ctx, uint64(v), 0, uint64(len(want)))
		if err != nil {
			t.Fatalf("read version %d: %v", v, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("version %d content changed", v)
		}
	}
}

func TestWriteAt(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{})
	cl := newTestClient(t, c, "cli")
	b, err := cl.Create(ctx, 256)
	if err != nil {
		t.Fatal(err)
	}
	base := pattern(1, 1024)
	if _, err := b.Append(ctx, base); err != nil {
		t.Fatal(err)
	}
	// Unaligned overwrite in the middle.
	patch := pattern(9, 300)
	wres, err := b.WriteAt(ctx, patch, 100)
	if err != nil {
		t.Fatal(err)
	}
	ver := wres.Ver
	if _, err := b.WaitPublished(ctx, ver); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), base...)
	copy(want[100:], patch)
	got, err := b.ReadAt(ctx, ver, 0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("WriteAt merge mismatch")
	}
	// Old version still intact.
	got, err = b.ReadAt(ctx, 1, 0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, base) {
		t.Fatal("version 1 damaged by WriteAt")
	}
}

func TestWriteBeyondEOFReadsZeros(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{})
	cl := newTestClient(t, c, "cli")
	b, err := cl.Create(ctx, 128)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Append(ctx, pattern(1, 128)); err != nil {
		t.Fatal(err)
	}
	wres, err := b.WriteAt(ctx, pattern(2, 128), 1024)
	if err != nil {
		t.Fatal(err)
	}
	ver := wres.Ver
	if _, err := b.WaitPublished(ctx, ver); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadAt(ctx, ver, 0, 1152)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:128], pattern(1, 128)) {
		t.Error("prefix damaged")
	}
	for i := 128; i < 1024; i++ {
		if got[i] != 0 {
			t.Fatalf("hole byte %d = %d, want 0", i, got[i])
		}
	}
	if !bytes.Equal(got[1024:], pattern(2, 128)) {
		t.Error("tail mismatch")
	}
}

func TestConcurrentAppendsDisjointAndComplete(t *testing.T) {
	// N clients append concurrently; the final BLOB must contain every
	// chunk exactly once, each contiguous (GFS-style record append:
	// the system picks the offset).
	c := newTestCluster(t, ClusterConfig{Providers: 8, MetaProviders: 3})
	const appenders = 16
	const chunkPages = 4
	const ps = 512

	cl0 := newTestClient(t, c, "cli-0")
	b0, err := cl0.Create(ctx, ps)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, appenders)
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			cl := c.Client(fmt.Sprintf("cli-%d", a))
			defer cl.Close()
			b, err := cl.Open(ctx, b0.ID())
			if err != nil {
				errs <- err
				return
			}
			if _, err := b.Append(ctx, pattern(byte(a+1), chunkPages*ps)); err != nil {
				errs <- err
			}
		}(a)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if _, err := b0.WaitPublished(ctx, appenders); err != nil {
		t.Fatal(err)
	}
	info, err := b0.Latest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantSize := uint64(appenders * chunkPages * ps)
	if info.Size != wantSize {
		t.Fatalf("size = %d, want %d", info.Size, wantSize)
	}
	all, err := b0.ReadAt(ctx, 0, 0, wantSize)
	if err != nil {
		t.Fatal(err)
	}
	// Every appender's chunk appears exactly once, contiguous.
	seen := make(map[byte]int)
	for off := 0; off < len(all); off += chunkPages * ps {
		chunk := all[off : off+chunkPages*ps]
		// Identify the writer from the first byte pattern.
		var tag byte
		found := false
		for a := 1; a <= appenders; a++ {
			if bytes.Equal(chunk, pattern(byte(a), chunkPages*ps)) {
				tag, found = byte(a), true
				break
			}
		}
		if !found {
			t.Fatalf("chunk at %d matches no appender", off)
		}
		seen[tag]++
	}
	if len(seen) != appenders {
		t.Fatalf("saw %d distinct chunks, want %d", len(seen), appenders)
	}
	for tag, n := range seen {
		if n != 1 {
			t.Errorf("appender %d's chunk appears %d times", tag, n)
		}
	}
}

func TestConcurrentReadersDuringAppends(t *testing.T) {
	// Readers reading published versions must never observe errors or
	// torn data while appenders run — the property behind Figures 4/5.
	c := newTestCluster(t, ClusterConfig{Providers: 6, MetaProviders: 3})
	const ps = 256
	cl := newTestClient(t, c, "writer")
	b, err := cl.Create(ctx, ps)
	if err != nil {
		t.Fatal(err)
	}
	// Preload some data.
	if _, err := b.Append(ctx, pattern(1, ps*8)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WaitPublished(ctx, 1); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	readErrs := make(chan error, 4)
	for rdr := 0; rdr < 4; rdr++ {
		wg.Add(1)
		go func(rdr int) {
			defer wg.Done()
			rcl := c.Client(fmt.Sprintf("reader-%d", rdr))
			defer rcl.Close()
			rb, err := rcl.Open(ctx, b.ID())
			if err != nil {
				readErrs <- err
				return
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				info, err := rb.Latest(ctx)
				if err != nil {
					readErrs <- err
					return
				}
				if info.Size == 0 {
					continue
				}
				got, err := rb.ReadAt(ctx, info.Ver, 0, minU64(info.Size, ps*4))
				if err != nil {
					readErrs <- fmt.Errorf("read ver %d: %w", info.Ver, err)
					return
				}
				if len(got) == 0 {
					readErrs <- errors.New("empty read")
					return
				}
			}
		}(rdr)
	}

	for v := 2; v <= 12; v++ {
		if _, err := b.Append(ctx, pattern(byte(v), ps*4)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.WaitPublished(ctx, 12); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	close(readErrs)
	for err := range readErrs {
		t.Fatal(err)
	}
}

func TestReadUnpublishedRejected(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{})
	cl := newTestClient(t, c, "cli")
	b, err := cl.Create(ctx, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Append(ctx, pattern(1, 256)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReadAt(ctx, 5, 0, 10); !errors.Is(err, ErrNoSuchVersion) {
		t.Errorf("read of unassigned version: %v", err)
	}
}

func TestReadBeyondSize(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{})
	cl := newTestClient(t, c, "cli")
	b, err := cl.Create(ctx, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Append(ctx, pattern(1, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WaitPublished(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReadAt(ctx, 1, 50, 100); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read beyond size: %v", err)
	}
}

func TestEmptyAppendRejected(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{})
	cl := newTestClient(t, c, "cli")
	b, err := cl.Create(ctx, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Append(ctx, nil); !errors.Is(err, ErrEmptyWrite) {
		t.Errorf("empty append: %v", err)
	}
}

func TestPageReplicationSurvivesProviderLoss(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Providers: 4, PageReplicas: 2})
	cl := newTestClient(t, c, "cli")
	b, err := cl.Create(ctx, 512)
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(7, 512*8)
	if _, err := b.Append(ctx, data); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WaitPublished(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// Kill one provider; every page has a second replica elsewhere.
	c.Providers[0].Close()
	got, err := b.ReadAt(ctx, 1, 0, uint64(len(data)))
	if err != nil {
		t.Fatalf("read after provider loss: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("content mismatch after provider loss")
	}
}

func TestSealUnblocksPublication(t *testing.T) {
	// A writer that dies after version assignment must not stall the
	// publication chain: the version manager seals it and later
	// versions publish.
	c := newTestCluster(t, ClusterConfig{Providers: 4, SealTimeout: 200 * time.Millisecond})
	cl := newTestClient(t, c, "cli")
	b, err := cl.Create(ctx, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Append(ctx, pattern(1, 512)); err != nil {
		t.Fatal(err)
	}

	// Simulate a dead writer: assign a version and never complete it.
	var a AssignResp
	err = cl.pool.Call(ctx, c.VM.Addr(), VMAssign,
		&AssignReq{Blob: b.ID(), Kind: KindAppend, Len: 512}, &a)
	if err != nil {
		t.Fatal(err)
	}

	// A healthy append afterwards.
	res3, err := b.Append(ctx, pattern(3, 512))
	if err != nil {
		t.Fatal(err)
	}
	ver3 := res3.Ver
	wctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if _, err := b.WaitPublished(wctx, ver3); err != nil {
		t.Fatalf("version after dead writer never published: %v", err)
	}

	// The sealed region reads as zeros; surrounding data is intact.
	got, err := b.ReadAt(ctx, ver3, 0, 1536)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:512], pattern(1, 512)) {
		t.Error("data before sealed region damaged")
	}
	for i := 512; i < 1024; i++ {
		if got[i] != 0 {
			t.Fatalf("sealed byte %d = %d, want 0", i, got[i])
		}
	}
	if !bytes.Equal(got[1024:], pattern(3, 512)) {
		t.Error("data after sealed region damaged")
	}

	info, err := b.GetVersion(ctx, a.Ver)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Sealed {
		t.Error("dead version not marked sealed")
	}
}

func TestExplicitAbort(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Providers: 4})
	cl := newTestClient(t, c, "cli")
	b, err := cl.Create(ctx, 256)
	if err != nil {
		t.Fatal(err)
	}
	var a AssignResp
	err = cl.pool.Call(ctx, c.VM.Addr(), VMAssign,
		&AssignReq{Blob: b.ID(), Kind: KindAppend, Len: 256}, &a)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Abort(ctx, a.Ver); err != nil {
		t.Fatal(err)
	}
	res2, err := b.Append(ctx, pattern(2, 256))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.WaitPublished(ctx, res2.Ver); err != nil {
		t.Fatal(err)
	}
	// Complete after seal is rejected.
	err = cl.pool.Call(ctx, c.VM.Addr(), VMComplete, &VersionRef{Blob: b.ID(), Ver: a.Ver}, nil)
	if !errors.Is(err, ErrVersionFinished) {
		t.Errorf("complete after seal: %v", err)
	}
}

func TestPageLocations(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Providers: 4})
	cl := newTestClient(t, c, "cli")
	b, err := cl.Create(ctx, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Append(ctx, pattern(1, 256*8)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WaitPublished(ctx, 1); err != nil {
		t.Fatal(err)
	}
	locs, err := b.PageLocations(ctx, 0, 0, 256*8)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 8 {
		t.Fatalf("got %d locations", len(locs))
	}
	hosts := make(map[string]bool)
	for i, l := range locs {
		if l.Hole || len(l.Hosts) == 0 {
			t.Fatalf("loc %d = %+v", i, l)
		}
		for _, h := range l.Hosts {
			hosts[h] = true
		}
	}
	// Round-robin over 4 providers must touch all of them.
	if len(hosts) != 4 {
		t.Errorf("pages on %d hosts, want 4", len(hosts))
	}
}

func TestVMStats(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{})
	cl := newTestClient(t, c, "cli")
	b, err := cl.Create(ctx, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := b.Append(ctx, pattern(byte(i), 256)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.WaitPublished(ctx, 3); err != nil {
		t.Fatal(err)
	}
	var stats VMStatsResp
	if err := cl.pool.Call(ctx, c.VM.Addr(), VMStats, nil, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Blobs != 1 || stats.Assigned != 3 || stats.Published != 3 || stats.Sealed != 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestSynthesizeStoreSizes(t *testing.T) {
	// The synthesize engine keeps experiments memory-flat but must
	// still report correct sizes and serve deterministic reads.
	c := newTestCluster(t, ClusterConfig{Store: StoreSynthesize})
	cl := newTestClient(t, c, "cli")
	b, err := cl.Create(ctx, 512)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Append(ctx, make([]byte, 512*4)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WaitPublished(ctx, 1); err != nil {
		t.Fatal(err)
	}
	a, err := b.ReadAt(ctx, 1, 0, 512*4)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.ReadAt(ctx, 1, 0, 512*4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, bb) {
		t.Error("synthesized reads not deterministic")
	}
}

func TestManyBlobsIndependent(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{})
	cl := newTestClient(t, c, "cli")
	blobs := make([]*Blob, 5)
	for i := range blobs {
		b, err := cl.Create(ctx, 256)
		if err != nil {
			t.Fatal(err)
		}
		blobs[i] = b
		if _, err := b.Append(ctx, pattern(byte(i+1), 256*(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	for i, b := range blobs {
		if _, err := b.WaitPublished(ctx, 1); err != nil {
			t.Fatal(err)
		}
		want := pattern(byte(i+1), 256*(i+1))
		got, err := b.ReadAt(ctx, 0, 0, uint64(len(want)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("blob %d content mismatch", i)
		}
	}
	var list ListBlobsResp
	if err := cl.pool.Call(ctx, c.VM.Addr(), VMListBlobs, nil, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Blobs) != 5 {
		t.Errorf("ListBlobs = %v", list.Blobs)
	}
}
