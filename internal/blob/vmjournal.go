package blob

// vmjournal.go persists the version manager's decided state through
// internal/kvlog. The layout has two key spaces:
//
//	j/<seq hex>  — one vmRecord per decided transition, in order
//	s/<blob id>  — per-BLOB checkpoint snapshot, tagged with the
//	               journal sequence it covers (asOf)
//
// Handlers journal the record BEFORE mutating memory (write-ahead), so
// after a crash the journal is never behind the acknowledged state.
// Recovery installs the snapshots, then replays every record whose Seq
// exceeds the owning BLOB's asOf — snapshots of different BLOBs may
// cover different prefixes of the journal (checkpointing never stops
// the world), and the per-blob asOf filter makes that safe.
//
// Checkpoints bound replay time and journal growth: once snapshots
// cover sequence S, every j-record ≤ S is deleted, and the store is
// compacted once its dead bytes pass a threshold (the pagestore.Durable
// pattern), so long-lived shards don't replay unbounded publish/seal
// churn on restart.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"blobseer/internal/kvlog"
)

// Journal tuning defaults.
const (
	// vmCheckpointEvery is the number of journaled records between
	// automatic checkpoints.
	vmCheckpointEvery = 4096
	// vmCompactThreshold is the dead-bytes threshold past which the
	// backing kvlog store is rewritten.
	vmCompactThreshold = 1 << 20
)

func jkey(seq uint64) string { return fmt.Sprintf("j/%016x", seq) }
func skey(id uint64) string  { return fmt.Sprintf("s/%d", id) }

// vmJournal wraps a kvlog store with sequence numbering and checkpoint
// bookkeeping. The mutex serializes sequence assignment with the store
// append, so on-disk record order always matches sequence order; it is
// only ever taken while holding (or outside of) a blobState lock, never
// the reverse, so the global lock order stays bs.mu → j.mu.
type vmJournal struct {
	kv *kvlog.Store

	mu  sync.Mutex
	seq uint64 // last assigned sequence
	n   int    // records since last checkpoint kick

	checkpointEvery  int
	compactThreshold int64
	kick             chan struct{} // signals the checkpoint loop
}

func openVMJournal(path string, syncEvery, checkpointEvery int, compactThreshold int64) (*vmJournal, error) {
	kv, err := kvlog.Open(path, kvlog.Options{SyncEvery: syncEvery})
	if err != nil {
		return nil, err
	}
	if checkpointEvery <= 0 {
		checkpointEvery = vmCheckpointEvery
	}
	if compactThreshold <= 0 {
		compactThreshold = vmCompactThreshold
	}
	return &vmJournal{
		kv:               kv,
		checkpointEvery:  checkpointEvery,
		compactThreshold: compactThreshold,
		kick:             make(chan struct{}, 1),
	}, nil
}

// append assigns rec the next sequence number and persists it. On
// error nothing was acknowledged and the caller must not mutate state.
func (j *vmJournal) append(rec *vmRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec.Seq = j.seq + 1
	// Write-ahead ordering: the record must be durable before the
	// state change it journals is acknowledged, and seq order must
	// equal log order — both hinge on the append happening under j.mu.
	//lint:lockhold WAL append must commit under j.mu so seq order matches log order; every contender is an append needing the same ordering
	if err := j.kv.Put(jkey(rec.Seq), rec.encode()); err != nil {
		return err
	}
	j.seq = rec.Seq
	j.n++
	if j.n >= j.checkpointEvery {
		j.n = 0
		select {
		case j.kick <- struct{}{}:
		default:
		}
	}
	return nil
}

// seqNow returns the last acknowledged sequence.
func (j *vmJournal) seqNow() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// pending reports records appended since the last checkpoint kick —
// the replay debt a crash right now would leave behind (the cluster
// monitor's journal-lag gauge).
func (j *vmJournal) pending() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// bytes reports the journal store's total on-disk footprint.
func (j *vmJournal) bytes() int64 {
	total, _ := j.kv.Size()
	return total
}

// replay rebuilds st from the store: snapshots first, then every
// record newer than the owning BLOB's snapshot, in sequence order.
// It returns the number of records replayed (for recovery metrics).
func (j *vmJournal) replay(st *vmState, now time.Time) (int, error) {
	asOf := make(map[uint64]uint64)
	var recs []vmRecord
	var maxSeq uint64
	err := j.kv.Scan(func(key string, value []byte) error {
		switch {
		case strings.HasPrefix(key, "s/"):
			id, bs, cover, err := decodeBlobSnapshot(value, now)
			if err != nil {
				return fmt.Errorf("blob: snapshot %s: %w", key, err)
			}
			s := st.shard(id)
			s.mu.Lock()
			s.blobs[id] = bs
			s.mu.Unlock()
			st.noteID(id)
			st.assigned.Add(uint64(len(bs.records)))
			st.publishedCount.Add(bs.published)
			for _, v := range bs.status {
				if v == vsSealed {
					st.sealed.Add(1)
				}
			}
			asOf[id] = cover
			if cover > maxSeq {
				maxSeq = cover
			}
		case strings.HasPrefix(key, "j/"):
			rec, err := decodeVMRecord(value)
			if err != nil {
				return fmt.Errorf("blob: journal %s: %w", key, err)
			}
			recs = append(recs, rec)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	sort.Slice(recs, func(i, k int) bool { return recs[i].Seq < recs[k].Seq })
	applied := 0
	for _, rec := range recs {
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
		if rec.Seq <= asOf[rec.Blob] {
			continue
		}
		st.apply(rec, now)
		applied++
	}
	j.mu.Lock()
	j.seq = maxSeq
	j.mu.Unlock()
	return applied, nil
}

// checkpoint snapshots every BLOB and trims the journal prefix the
// snapshots cover. It never holds j.mu across a blobState lock and
// never stops the world: each BLOB is snapshotted under its own lock
// with its own asOf (≥ start, so every trimmed record is covered), and
// a crash mid-checkpoint is safe because replay filters per BLOB by
// each snapshot's own asOf.
func (j *vmJournal) checkpoint(st *vmState) error {
	start := j.seqNow()
	for _, e := range st.blobStates() {
		e.bs.mu.Lock()
		cover := j.seqNow()
		data := encodeBlobSnapshot(e.id, e.bs, cover)
		e.bs.mu.Unlock()
		if err := j.kv.Put(skey(e.id), data); err != nil {
			return err
		}
	}
	for _, key := range j.kv.Keys() {
		if !strings.HasPrefix(key, "j/") {
			continue
		}
		seq, err := strconv.ParseUint(key[2:], 16, 64)
		if err != nil || seq > start {
			continue
		}
		if err := j.kv.Delete(key); err != nil {
			return err
		}
	}
	return j.maybeCompact()
}

// maybeCompact rewrites the store once dead bytes pass the threshold.
func (j *vmJournal) maybeCompact() error {
	total, live := j.kv.Size()
	if total-live < j.compactThreshold {
		return nil
	}
	return j.kv.Compact()
}

func (j *vmJournal) close() error { return j.kv.Close() }
