package blob

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"blobseer/internal/cache"
	"blobseer/internal/dht"
	"blobseer/internal/metrics"
	"blobseer/internal/obs"
	"blobseer/internal/pagestore"
	"blobseer/internal/rpc"
	"blobseer/internal/segtree"
	"blobseer/internal/transport"
)

// Client-side errors.
var (
	ErrEmptyWrite = errors.New("blob: empty write")
	ErrOutOfRange = errors.New("blob: read beyond version size")
	ErrPageWrite  = errors.New("blob: page write failed on all replicas")
	ErrPageRead   = errors.New("blob: page read failed on all replicas")
	ErrHistoryGap = errors.New("blob: incomplete write-record history")
	ErrShortPage  = errors.New("blob: provider returned short page")
)

// ClientConfig configures a BlobSeer client.
type ClientConfig struct {
	Net  transport.Network
	Host string // simulated host the client runs on (NIC attribution)

	VersionManager  transport.Addr
	ProviderManager transport.Addr
	Metadata        []transport.Addr // metadata providers (DHT members)

	// VersionManagers lists every version-manager shard of a partitioned
	// metadata plane, in ring-slot order (must match the ShardAddrs the
	// shards themselves were built with). Empty means the single manager
	// at VersionManager.
	VersionManagers []transport.Addr

	// MetaReplicas is the DHT replication factor (default 2, capped at
	// the metadata membership size).
	MetaReplicas int
	// PageReplicas is the page replication factor (default 1).
	PageReplicas int
	// MaxParallelPages bounds concurrent page transfers per operation
	// (default 32).
	MaxParallelPages int
	// CacheBytes is the byte budget of the client's shared page cache
	// (0 means cache.DefaultBudget; negative disables caching). One
	// cache serves every Blob handle and reader of this client, so all
	// map tasks on a tracker share it. Versioned pages are immutable,
	// so cached pages never go stale.
	CacheBytes int64

	// ReadHeat, when set, is called once per page access on the unified
	// fetch path (cache hits and provider fetches alike) with the
	// page's (blob, index) — the cluster monitor's read-heat sketch
	// plugs in here.
	ReadHeat PageTouch
}

// Client talks to a BlobSeer deployment. It is safe for concurrent use.
type Client struct {
	cfg   ClientConfig
	pool  *rpc.Pool
	vm    *VMRouter
	nodes segtree.NodeStore

	// pages is the process-shared read cache (nil when disabled);
	// rstats aggregates the read-path counters whether or not the
	// cache is on. replicaRR rotates the starting replica of page
	// fetches so the primary does not absorb all read traffic.
	pages     *cache.Cache
	rstats    *metrics.ReadStats
	replicaRR atomic.Uint32

	// inflight counts writes whose data path is still running — the
	// AppendAsync pipelining depth, exported as a gauge.
	inflight atomic.Int64

	// pageWork feeds reusable page-transfer workers (started on first
	// use); see forEachPage. pageQuit stops them at Close.
	pageWork  chan pageTask
	pageQuit  chan struct{}
	startOnce sync.Once
	closeOnce sync.Once

	mu      sync.Mutex
	hist    map[uint64]*blobHistory
	verinfo map[VersionRef]VersionInfo // published (immutable) versions
	slots   map[slotKey]segtree.Slot   // resolved pages of published versions
}

// slotKey addresses one resolved page of one published version. Like
// page content, the (read version, page index) -> PageRef mapping is
// immutable once the version publishes, so it caches forever.
type slotKey struct{ blob, ver, page uint64 }

// cacheCap bounds the client's metadata side-caches (version infos and
// resolved slots): when a map reaches this many entries it is dropped
// and rebuilt, a crude but allocation-free bound.
const cacheCap = 1 << 16

// blobHistory caches write records so repeat writers receive only the
// history delta from the version manager.
type blobHistory struct {
	recs     []segtree.WriteRecord // index ver-1; Ver==0 means unknown
	complete uint64                // all versions <= complete are cached
}

// NewClient returns a client running on cfg.Host.
func NewClient(cfg ClientConfig) *Client {
	if cfg.MetaReplicas <= 0 {
		cfg.MetaReplicas = 2
	}
	if cfg.PageReplicas <= 0 {
		cfg.PageReplicas = 1
	}
	if cfg.MaxParallelPages <= 0 {
		cfg.MaxParallelPages = 32
	}
	pool := rpc.NewPool(cfg.Net, transport.MakeAddr(cfg.Host, "client"))
	ring := dht.NewRing(cfg.Metadata, 64)
	meta := dht.NewClient(ring, pool, cfg.MetaReplicas)
	rstats := &metrics.ReadStats{}
	metrics.Default.AttachReadStats(rstats)
	var pages *cache.Cache
	if cfg.CacheBytes >= 0 {
		pages = cache.New(cfg.CacheBytes, rstats)
	}
	shards := cfg.VersionManagers
	if len(shards) == 0 {
		shards = []transport.Addr{cfg.VersionManager}
	}
	return &Client{
		cfg:      cfg,
		pool:     pool,
		vm:       NewVMRouter(pool, shards, cfg.Host),
		nodes:    NewNodeStore(meta),
		pages:    pages,
		rstats:   rstats,
		pageWork: make(chan pageTask),
		pageQuit: make(chan struct{}),
		hist:     make(map[uint64]*blobHistory),
		verinfo:  make(map[VersionRef]VersionInfo),
		slots:    make(map[slotKey]segtree.Slot),
	}
}

// ReadStats exposes the client's read-path counters (cache hits and
// misses, readahead, provider fetches and failures).
func (c *Client) ReadStats() *metrics.ReadStats { return c.rstats }

// PageCache exposes the shared page cache (nil when disabled), for
// tests and tools.
func (c *Client) PageCache() *cache.Cache { return c.pages }

// InFlight returns the number of writes whose data path has not yet
// finished — the effective AppendAsync pipelining depth.
func (c *Client) InFlight() int64 { return c.inflight.Load() }

// Close releases the client's connections and stops its page workers.
func (c *Client) Close() error {
	c.closeOnce.Do(func() { close(c.pageQuit) })
	return c.pool.Close()
}

// VMRouter exposes the client's blob→shard router, so co-operating
// services (GC collector, tools) share the same mapping and retry
// policy instead of growing their own.
func (c *Client) VMRouter() *VMRouter { return c.vm }

// NodeStore exposes the metadata store (used by the version manager
// when co-constructed, and by tools).
func (c *Client) NodeStore() segtree.NodeStore { return c.nodes }

// Create creates a BLOB with the given page size and opens it. The
// router spreads creations across shards round-robin; the allocating
// shard hands out an id the ring maps back to itself, so every later
// call routes by pure lookup.
func (c *Client) Create(ctx context.Context, pageSize uint64) (*Blob, error) {
	var resp CreateBlobResp
	err := c.vm.CallAddr(ctx, c.vm.CreateTarget(), VMCreateBlob, &CreateBlobReq{PageSize: pageSize}, &resp)
	if err != nil {
		return nil, err
	}
	return &Blob{c: c, id: resp.Blob, pageSize: pageSize}, nil
}

// Open opens an existing BLOB.
func (c *Client) Open(ctx context.Context, id uint64) (*Blob, error) {
	var resp OpenBlobResp
	err := c.vm.Call(ctx, id, VMOpenBlob, &BlobRef{Blob: id}, &resp)
	if err != nil {
		return nil, err
	}
	return &Blob{c: c, id: id, pageSize: resp.PageSize}, nil
}

// Handle builds a BLOB handle from already-known metadata (id and page
// size), avoiding the version-manager round trip of Open. Callers such
// as BSFS learn both from their namespace manager.
func (c *Client) Handle(id, pageSize uint64) *Blob {
	return &Blob{c: c, id: id, pageSize: pageSize}
}

// Blob is a handle on one BLOB. Handles are safe for concurrent use.
type Blob struct {
	c        *Client
	id       uint64
	pageSize uint64
}

// ID returns the BLOB id.
func (b *Blob) ID() uint64 { return b.id }

// PageSize returns the BLOB's page size in bytes.
func (b *Blob) PageSize() uint64 { return b.pageSize }

// Latest returns the latest published version.
func (b *Blob) Latest(ctx context.Context) (VersionInfo, error) {
	var info VersionInfo
	err := b.c.vm.Call(ctx, b.id, VMLatest, &BlobRef{Blob: b.id}, &info)
	return info, err
}

// GetVersion returns metadata for one version.
func (b *Blob) GetVersion(ctx context.Context, ver uint64) (VersionInfo, error) {
	var info VersionInfo
	err := b.c.vm.Call(ctx, b.id, VMGetVersion, &VersionRef{Blob: b.id, Ver: ver}, &info)
	return info, err
}

// History enumerates the BLOB's published versions still inside the
// retention window, oldest first (ver, size, pages; position doubles
// as publish order, since versions publish in assignment order). limit
// bounds the response to the newest limit versions; 0 returns the
// whole window.
func (b *Blob) History(ctx context.Context, limit uint64) ([]VersionInfo, error) {
	var resp HistoryResp
	err := b.c.vm.Call(ctx, b.id, VMHistory,
		&HistoryReq{Blob: b.id, Limit: limit}, &resp)
	if err != nil {
		return nil, err
	}
	return resp.Infos, nil
}

// WaitPublished blocks until ver is published (or ctx expires). ver
// may lie beyond the currently assigned range: the wait then covers
// future assignment too, which is what makes it the tailing primitive
// behind WaitVersion — wait for latest+1 and a concurrent appender's
// next publish wakes it.
func (b *Blob) WaitPublished(ctx context.Context, ver uint64) (VersionInfo, error) {
	for {
		var info VersionInfo
		err := b.c.vm.Call(ctx, b.id, VMWaitPublished,
			&WaitPublishedReq{Blob: b.id, Ver: ver, TimeoutMillis: 5000}, &info)
		switch {
		case err == nil:
			return info, nil
		case errors.Is(err, ErrWaitTimeout):
			if ctx.Err() != nil {
				return VersionInfo{}, ctx.Err()
			}
			continue
		default:
			return VersionInfo{}, err
		}
	}
}

//
// Lifecycle: retention, truncation, deletion, and reader pins.
//

// SetRetention sets this BLOB's retention override: keep only the
// latest `keep` published versions; older ones become collectable by
// the next GC pass. keep == 0 keeps every version.
func (b *Blob) SetRetention(ctx context.Context, keep uint64) error {
	return b.c.vm.Call(ctx, b.id, VMSetRetention,
		&SetRetentionReq{Blob: b.id, Retain: keep}, nil)
}

// TruncateBefore marks every version below ver collectable. The latest
// published version always survives; use Delete to retire the BLOB.
func (b *Blob) TruncateBefore(ctx context.Context, ver uint64) error {
	return b.c.vm.Call(ctx, b.id, VMTruncateBefore,
		&VersionRef{Blob: b.id, Ver: ver}, nil)
}

// Delete retires the whole BLOB: every version becomes collectable
// (pinned snapshots last until their pins release) and subsequent reads
// fail with ErrVersionCollected. The handle's local caches are purged.
func (b *Blob) Delete(ctx context.Context) error {
	return b.c.DeleteBlob(ctx, b.id)
}

// DeleteBlob retires BLOB id (see Blob.Delete).
func (c *Client) DeleteBlob(ctx context.Context, id uint64) error {
	err := c.vm.Call(ctx, id, VMDeleteBlob, &BlobRef{Blob: id}, nil)
	if err == nil {
		c.PurgeBlob(id)
	}
	return err
}

// Pin takes a lease-style reference on ver: while held (and before ttl
// expires) the version cannot be collected, so a slow reader never has
// pages deleted out from under it. ttl <= 0 uses the manager's default.
// Pinning a version the collector already owns fails with
// ErrVersionCollected.
func (b *Blob) Pin(ctx context.Context, ver uint64, ttl time.Duration) error {
	return b.c.vm.Call(ctx, b.id, VMPin,
		&PinReq{Blob: b.id, Ver: ver, TTLMillis: uint64(ttl / time.Millisecond)}, nil)
}

// Unpin releases one reference taken by Pin.
func (b *Blob) Unpin(ctx context.Context, ver uint64) error {
	return b.c.vm.Call(ctx, b.id, VMUnpin,
		&VersionRef{Blob: b.id, Ver: ver}, nil)
}

// ReclaimScan asks every version-manager shard for its newly dead
// versions (marking them collected in the same step) and merges the
// answers. The garbage collector is the only intended caller. A shard
// that fails mid-scan is skipped — its frontier did not move for the
// blobs it never reached, so the next pass retries them; the scan
// errors only when every shard failed.
func (c *Client) ReclaimScan(ctx context.Context) (*ReclaimScanResp, error) {
	merged := &ReclaimScanResp{}
	var lastErr error
	okShards := 0
	for _, addr := range c.vm.Shards() {
		var resp ReclaimScanResp
		if err := c.vm.CallAddr(ctx, addr, VMReclaimScan, nil, &resp); err != nil {
			lastErr = err
			continue
		}
		okShards++
		merged.PinsBlocked += resp.PinsBlocked
		merged.Blobs = append(merged.Blobs, resp.Blobs...)
	}
	if okShards == 0 && lastErr != nil {
		return nil, lastErr
	}
	return merged, nil
}

// DeletePages sends one provider a batch of reclaimable page keys.
func (c *Client) DeletePages(ctx context.Context, provider string, keys []pagestore.Key) (DeletePagesResp, error) {
	var resp DeletePagesResp
	err := c.pool.Call(ctx, transport.Addr(provider), ProvDeletePages, &DeletePagesReq{Keys: keys}, &resp)
	return resp, err
}

// PurgeVersion drops every locally cached artifact of one version —
// its VersionInfo, resolved slots, and cached pages. Collection breaks
// the "published versions are immutable forever" assumption those
// caches rely on, so this is the cache layer's invalidation path.
func (c *Client) PurgeVersion(blob, ver uint64) {
	c.mu.Lock()
	delete(c.verinfo, VersionRef{Blob: blob, Ver: ver})
	for k := range c.slots {
		if k.blob == blob && k.ver == ver {
			delete(c.slots, k)
		}
	}
	c.mu.Unlock()
	if c.pages != nil {
		c.pages.PurgeVersion(blob, ver)
	}
}

// PurgeBlob drops every locally cached artifact of a whole BLOB,
// including the write-record history.
func (c *Client) PurgeBlob(blob uint64) {
	c.mu.Lock()
	delete(c.hist, blob)
	for k := range c.verinfo {
		if k.Blob == blob {
			delete(c.verinfo, k)
		}
	}
	for k := range c.slots {
		if k.blob == blob {
			delete(c.slots, k)
		}
	}
	c.mu.Unlock()
	if c.pages != nil {
		c.pages.PurgeBlob(blob)
	}
}

// collectedOr maps a read failure whose root cause is garbage
// collection — pages or tree nodes that vanished mid-read — to a clean
// ErrVersionCollected, purging the local caches so later reads fail
// fast. Failures with live versions pass through unchanged.
func (b *Blob) collectedOr(ctx context.Context, ver uint64, err error) error {
	if err == nil || ver == 0 ||
		!(errors.Is(err, ErrPageRead) || errors.Is(err, segtree.ErrNodeMissing)) {
		return err
	}
	var info VersionInfo
	perr := b.c.vm.Call(ctx, b.id, VMGetVersion, &VersionRef{Blob: b.id, Ver: ver}, &info)
	if errors.Is(perr, ErrVersionCollected) {
		b.c.PurgeVersion(b.id, ver)
		return fmt.Errorf("%w: blob %d version %d", ErrVersionCollected, b.id, ver)
	}
	return err
}

// Abort seals a version this writer no longer intends to complete.
func (b *Blob) Abort(ctx context.Context, ver uint64) error {
	return b.c.vm.Call(ctx, b.id, VMSeal, &VersionRef{Blob: b.id, Ver: ver}, nil)
}

// abortDetached seals ver in the background, on a context independent
// of the write's (possibly already cancelled) context: a failed write
// must still reach the version manager, or its pending version wedges
// the publication chain until SealTimeout — forever when sealing is
// disabled. Fire-and-forget so a caller whose context just died is
// not held up by the seal round trip.
func (b *Blob) abortDetached(ver uint64) {
	go func() {
		//lint:detached the seal must outlive the write's dead ctx or the pending version wedges publication; the 30s deadline bounds it
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := b.Abort(ctx, ver); err != nil {
			// The version stays pending until SealTimeout fires (or
			// forever without sealing) — worth an operator's attention.
			obs.Log.Warnf("blob %d: detached seal of version %d failed: %v", b.id, ver, err)
		}
	}()
}

// WriteResult reports where an update landed.
type WriteResult struct {
	// Ver is the version this update generates (§3.1.2: "the user
	// supplies the data to be stored and receives the number of the
	// version this update generates"). It may not be published yet
	// when the write returns; use WaitPublished to block until it is
	// readable.
	Ver uint64
	// Start is the byte offset the system chose for the data (for
	// appends, like GFS record append, the offset is picked by the
	// system and returned to the client).
	Start uint64
	// SizeAfter is the BLOB size once this version publishes.
	SizeAfter uint64
}

// PendingWrite is an in-flight write whose version has already been
// assigned: the serialized step is done, and the data path (boundary
// merges, provider allocation, page writes, metadata commit,
// completion) runs in the background.
type PendingWrite struct {
	res  WriteResult
	err  error
	done chan struct{}
}

// Result returns the placement the version manager assigned. It is
// valid immediately, before the data path finishes; the version is not
// readable until it publishes.
func (p *PendingWrite) Result() WriteResult { return p.res }

// Done returns a channel closed when the data path finishes.
func (p *PendingWrite) Done() <-chan struct{} { return p.done }

// Wait blocks until the data path finishes and returns the outcome.
func (p *PendingWrite) Wait(ctx context.Context) (WriteResult, error) {
	select {
	case <-p.done:
		if p.err != nil {
			return WriteResult{}, p.err
		}
		return p.res, nil
	case <-ctx.Done():
		return WriteResult{}, ctx.Err()
	}
}

// Append appends data to the BLOB.
func (b *Blob) Append(ctx context.Context, data []byte) (WriteResult, error) {
	return b.write(ctx, KindAppend, 0, data)
}

// AppendAsync starts an append and returns as soon as its version is
// assigned, leaving the data path running in the background. This is
// the write pipelining that §3.1.2's decoupling makes safe: only
// version assignment is ordered, so one writer can keep several
// appends in flight while publication still follows assignment order.
// The caller must not modify data until the pending write finishes.
func (b *Blob) AppendAsync(ctx context.Context, data []byte) (*PendingWrite, error) {
	start := time.Now()
	ctx, sp := obs.StartSpan(ctx, "blob.append")
	a, history, err := b.assign(ctx, KindAppend, 0, data)
	if err != nil {
		sp.End(err)
		return nil, err
	}
	if sp != nil { // guard: varargs boxing allocates even for a nil span
		sp.Annotate("ver=%d start=%d len=%d", a.Ver, a.Start, len(data))
	}
	// Provider allocation stays in the serialized prologue so a
	// writer's consecutive blocks keep their allocation order (and so
	// placement strategies like round-robin keep their stride); the
	// expensive page transfers, metadata commit, and completion run in
	// the background.
	alloc, err := b.allocPages(ctx, a, data)
	if err != nil {
		b.abortDetached(a.Ver)
		sp.End(err)
		return nil, err
	}
	p := &PendingWrite{
		res:  WriteResult{Ver: a.Ver, Start: a.Start, SizeAfter: a.SizeAfter},
		done: make(chan struct{}),
	}
	b.c.inflight.Add(1)
	go func() {
		defer close(p.done)
		p.err = b.finishWrite(ctx, a, history, data, &alloc)
		b.c.inflight.Add(-1)
		sp.End(p.err)
		metrics.Default.Op("blob.append").RecordDuration(time.Since(start))
	}()
	return p, nil
}

// WriteAt writes data at a byte offset (beyond-EOF offsets create
// holes that read as zeros) and returns the new version.
func (b *Blob) WriteAt(ctx context.Context, data []byte, off uint64) (WriteResult, error) {
	return b.write(ctx, KindWrite, off, data)
}

// write runs the decoupled write pipeline of §3.1.2 synchronously.
func (b *Blob) write(ctx context.Context, kind uint64, off uint64, data []byte) (WriteResult, error) {
	start := time.Now()
	opName := "blob.write"
	if kind == KindAppend {
		opName = "blob.append"
	}
	ctx, sp := obs.StartSpan(ctx, opName)
	b.c.inflight.Add(1)
	res, err := b.writePipeline(ctx, kind, off, data)
	b.c.inflight.Add(-1)
	sp.End(err)
	metrics.Default.Op(opName).RecordDuration(time.Since(start))
	return res, err
}

func (b *Blob) writePipeline(ctx context.Context, kind uint64, off uint64, data []byte) (WriteResult, error) {
	a, history, err := b.assign(ctx, kind, off, data)
	if err != nil {
		return WriteResult{}, err
	}
	if err := b.finishWrite(ctx, a, history, data, nil); err != nil {
		return WriteResult{}, err
	}
	return WriteResult{Ver: a.Ver, Start: a.Start, SizeAfter: a.SizeAfter}, nil
}

// assign runs step 1 of the write pipeline — version assignment, the
// only serialized step — and folds the history delta into the cache.
func (b *Blob) assign(ctx context.Context, kind, off uint64, data []byte) (AssignResp, []segtree.WriteRecord, error) {
	var a AssignResp
	if len(data) == 0 {
		return a, nil, ErrEmptyWrite
	}
	c := b.c
	req := &AssignReq{Blob: b.id, Kind: kind, Off: off, Len: uint64(len(data)), SinceVer: c.knownPrefix(b.id)}
	if err := c.vm.Call(ctx, b.id, VMAssign, req, &a); err != nil {
		return a, nil, fmt.Errorf("blob: assign: %w", err)
	}
	history, err := c.mergeHistory(b.id, a.History, a.Record)
	if err != nil {
		// The version is already assigned; seal it so the publication
		// chain is not wedged behind a write that will never complete.
		b.abortDetached(a.Ver)
		return a, nil, err
	}
	return a, history, nil
}

// allocPages runs step 3 of the write pipeline: provider allocation
// for the assigned page interval. It depends only on the assignment,
// never on the content.
func (b *Blob) allocPages(ctx context.Context, a AssignResp, data []byte) (AllocResp, error) {
	c := b.c
	ps := b.pageSize
	rec := a.Record
	pageBase := rec.Off * ps
	writeEnd := a.Start + uint64(len(data))
	recEnd := (rec.Off + rec.N) * ps
	contentEnd := maxU64(writeEnd, minU64(recEnd, a.PrevSize))

	var alloc AllocResp
	err := c.pool.Call(ctx, c.cfg.ProviderManager, PMAlloc, &AllocReq{
		Blob:     b.id,
		NPages:   rec.N,
		Replicas: uint64(c.cfg.PageReplicas),
		Bytes:    contentEnd - pageBase,
	}, &alloc)
	if err != nil {
		return alloc, fmt.Errorf("blob: alloc: %w", err)
	}
	return alloc, nil
}

// finishWrite runs the data path of the write pipeline (steps 2-6).
// When the caller already allocated providers (the pipelined path),
// preAlloc carries the result; otherwise the allocation round trip is
// overlapped with the boundary-merge reads.
func (b *Blob) finishWrite(ctx context.Context, a AssignResp, history []segtree.WriteRecord, data []byte, preAlloc *AllocResp) error {
	c := b.c
	ps := b.pageSize
	rec := a.Record
	pageBase := rec.Off * ps
	writeEnd := a.Start + uint64(len(data))
	recEnd := (rec.Off + rec.N) * ps
	headHi := minU64(a.Start, a.PrevSize)
	tailHi := minU64(recEnd, a.PrevSize)
	contentEnd := maxU64(writeEnd, tailHi)

	// 3 (overlapped). Provider allocation runs while the boundary
	// merges of step 2 read the neighbouring bytes.
	var alloc AllocResp
	allocDone := make(chan error, 1)
	if preAlloc != nil {
		alloc = *preAlloc
		allocDone <- nil
	} else {
		go func() {
			var err error
			alloc, err = b.allocPages(ctx, a, data)
			allocDone <- err
		}()
	}

	// 2. Boundary merges. A write that starts or ends mid-page must
	// fold in the neighbouring bytes of the previous version so each
	// stored page is a contiguous prefix of its slot. Whole-page
	// appends (the common case and all benchmark workloads) skip this
	// entirely and stay fully parallel.
	var head, tail []byte
	var err error
	if (headHi > pageBase || tailHi > writeEnd) && a.Ver >= 2 {
		mctx, msp := obs.StartSpan(ctx, "write.merge")
		if _, werr := b.WaitPublished(mctx, a.Ver-1); werr != nil {
			err = fmt.Errorf("blob: boundary merge wait: %w", werr)
		}
		if err == nil && headHi > pageBase {
			if head, err = b.ReadAt(mctx, a.Ver-1, pageBase, headHi-pageBase); err != nil {
				err = fmt.Errorf("blob: head merge: %w", err)
			}
		}
		if err == nil && tailHi > writeEnd {
			if tail, err = b.ReadAt(mctx, a.Ver-1, writeEnd, tailHi-writeEnd); err != nil {
				err = fmt.Errorf("blob: tail merge: %w", err)
			}
		}
		msp.End(err)
	}
	allocErr := <-allocDone
	if err != nil {
		b.abortDetached(a.Ver)
		return err
	}
	if allocErr != nil {
		b.abortDetached(a.Ver)
		return allocErr
	}
	r := int(alloc.Replicas)
	if uint64(len(alloc.Providers)) != rec.N*uint64(r) {
		b.abortDetached(a.Ver)
		return fmt.Errorf("blob: alloc returned %d providers for %d pages", len(alloc.Providers), rec.N)
	}

	content := make([]byte, contentEnd-pageBase)
	copy(content[a.Start-pageBase:], data)
	copy(content, head) // head covers [pageBase, headHi)
	copy(content[writeEnd-pageBase:], tail)

	// 4. Parallel page writes.
	pctx, psp := obs.StartSpan(ctx, "write.pages")
	if psp != nil {
		psp.Annotate("pages=%d replicas=%d", rec.N, r)
	}
	refs := make([]segtree.PageRef, rec.N)
	err = c.forEachPage(rec.N, func(i uint64) error {
		lo := i * ps
		hi := minU64(lo+ps, uint64(len(content)))
		key := pagestore.Key{Blob: b.id, Version: a.Ver, Index: rec.Off + i}
		replicas := alloc.Providers[i*uint64(r) : (i+1)*uint64(r)]
		var ok []string
		var lastErr error
		for _, addr := range replicas {
			err := c.pool.Call(pctx, transport.Addr(addr), ProvPutPage, &PutPageReq{Key: key, Data: content[lo:hi]}, nil)
			if err != nil {
				lastErr = err
				continue
			}
			ok = append(ok, addr)
		}
		if len(ok) == 0 {
			return fmt.Errorf("%w: page %d: %v", ErrPageWrite, key.Index, lastErr)
		}
		refs[i] = segtree.PageRef{Page: key, Providers: ok}
		return nil
	})
	psp.End(err)
	if err != nil {
		// Give up on this version so the publication chain moves on.
		b.abortDetached(a.Ver)
		return err
	}

	// 5. Metadata commit: one batched DHT write, no reads.
	cctx, csp := obs.StartSpan(ctx, "write.commit")
	err = segtree.Commit(cctx, c.nodes, b.id, rec, history, refs)
	csp.End(err)
	if err != nil {
		b.abortDetached(a.Ver)
		return fmt.Errorf("blob: metadata commit: %w", err)
	}

	// 6. Notify the version manager; publication follows version order.
	// The router retries through failover windows; Complete is
	// idempotent server-side, so a retried call whose first response was
	// lost cannot fail a durably completed write.
	if err := c.vm.Call(ctx, b.id, VMComplete, &VersionRef{Blob: b.id, Ver: a.Ver}, nil); err != nil {
		// An unacknowledged completion leaves the version pending with
		// its pages and metadata already committed; seal it so the
		// chain moves on, mirroring the page-write and metadata-commit
		// failure paths.
		b.abortDetached(a.Ver)
		return fmt.Errorf("blob: complete: %w", err)
	}
	return nil
}

// pageTask is one page-transfer unit handed to a reusable worker.
type pageTask struct {
	i   uint64
	run func(i uint64)
}

// pageWorkers is how many long-lived transfer goroutines a client
// keeps warm. Like the rpc server's dispatch pool, reuse keeps worker
// stacks grown across operations instead of re-paying stack-growth
// copies on every spawned page goroutine; overflow falls back to
// spawning, so the pool never reduces available parallelism.
const pageWorkers = 16

func (c *Client) pageWorker() {
	for {
		select {
		case t := <-c.pageWork:
			t.run(t.i)
		case <-c.pageQuit:
			return
		}
	}
}

// forEachPage runs fn for page indices [0, n) on up to
// MaxParallelPages goroutines — the transfer scaffolding shared by the
// write and read paths — and returns the first error. The per-call
// concurrency bound is the sem, exactly as if every page spawned its
// own goroutine; the worker pool only recycles stacks.
func (c *Client) forEachPage(n uint64, fn func(i uint64) error) error {
	c.startOnce.Do(func() {
		for i := 0; i < pageWorkers; i++ {
			go c.pageWorker()
		}
	})
	sem := make(chan struct{}, c.cfg.MaxParallelPages)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	run := func(i uint64) {
		defer wg.Done()
		defer func() { <-sem }()
		if err := fn(i); err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
	}
	for i := uint64(0); i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		select {
		case c.pageWork <- pageTask{i: i, run: run}:
		default:
			go run(i)
		}
	}
	wg.Wait()
	return firstErr
}

// ReadAt reads n bytes at byte offset off from version ver (0 means
// the latest published version). Only published versions are readable;
// holes read as zeros.
func (b *Blob) ReadAt(ctx context.Context, ver uint64, off, n uint64) ([]byte, error) {
	if n == 0 {
		// Keep the historical contract: a zero-length read still
		// resolves the version (surfacing not-found / not-published).
		if _, err := b.resolveVersion(ctx, ver); err != nil {
			return nil, err
		}
		return nil, nil
	}
	out := make([]byte, n)
	if _, err := b.ReadAtInto(ctx, ver, off, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadAtInto reads len(p) bytes at byte offset off from version ver
// (0 = latest published) into p, returning the bytes copied. It is the
// allocation-free variant of ReadAt: cached pages are copied straight
// into p with no intermediate buffer, so a reader streaming through a
// warm cache moves each byte exactly once.
func (b *Blob) ReadAtInto(ctx context.Context, ver uint64, off uint64, p []byte) (int, error) {
	start := time.Now()
	ctx, sp := obs.StartSpan(ctx, "blob.read")
	n, err := b.readAtInto(ctx, ver, off, p)
	sp.End(err)
	metrics.Default.Op("blob.read").RecordDuration(time.Since(start))
	return n, err
}

func (b *Blob) readAtInto(ctx context.Context, ver uint64, off uint64, p []byte) (int, error) {
	info, err := b.resolveVersion(ctx, ver)
	if err != nil {
		return 0, err
	}
	n := uint64(len(p))
	if n == 0 {
		return 0, nil
	}
	if off+n > info.Size {
		return 0, fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfRange, off, off+n, info.Size)
	}
	ps := b.pageSize
	firstPage := off / ps
	lastPage := (off + n - 1) / ps
	slots, err := b.resolveSlots(ctx, info, firstPage, lastPage-firstPage+1)
	if err != nil {
		return 0, b.collectedOr(ctx, info.Ver, err)
	}

	err = b.c.forEachPage(uint64(len(slots)), func(i uint64) error {
		slot := slots[i]
		lo := maxU64(off, slot.Index*ps)
		hi := minU64(off+n, (slot.Index+1)*ps)
		if slot.Ref.Hole {
			clear(p[lo-off : hi-off]) // holes read as zeros
			return nil
		}
		pLo := lo - slot.Index*ps
		pHi := hi - slot.Index*ps
		// fetchPage validates length: success means >= pHi bytes.
		page, err := b.c.fetchPage(ctx, slot.Ref, pHi)
		if err != nil {
			return err
		}
		copy(p[lo-off:hi-off], page[pLo:pHi])
		return nil
	})
	if err != nil {
		return 0, b.collectedOr(ctx, info.Ver, err)
	}
	return int(n), nil
}

// PageView returns a read-only view of one whole page of version ver
// (0 = latest published), trimmed to the version's size: the last page
// may be short, and pages past the end return ErrOutOfRange. When the
// page sits in the shared cache the returned slice aliases the cached
// copy, so streaming readers move each byte exactly once (cache →
// caller); holes come back as freshly zeroed slices. Callers MUST NOT
// modify the returned bytes.
func (b *Blob) PageView(ctx context.Context, ver, page uint64) ([]byte, error) {
	// The BSFS read path is built on PageView, so this histogram (not
	// blob.read) is where file-system read latency lands.
	start := time.Now()
	defer func() { metrics.Default.Op("blob.pageview").RecordDuration(time.Since(start)) }()
	info, err := b.resolveVersion(ctx, ver)
	if err != nil {
		return nil, err
	}
	ps := b.pageSize
	if page*ps >= info.Size {
		return nil, fmt.Errorf("%w: page %d of %d", ErrOutOfRange, page, info.Pages)
	}
	want := minU64(ps, info.Size-page*ps)
	slots, err := b.resolveSlots(ctx, info, page, 1)
	if err != nil {
		return nil, b.collectedOr(ctx, info.Ver, err)
	}
	slot := slots[0]
	if slot.Ref.Hole {
		return make([]byte, want), nil
	}
	// fetchPage validates length: success means >= want bytes.
	data, err := b.c.fetchPage(ctx, slot.Ref, want)
	if err != nil {
		return nil, b.collectedOr(ctx, info.Ver, err)
	}
	return data[:want], nil
}

// Prefetch warms the shared page cache with the pages covering
// [off, off+n) of version ver, without copying anything out. The BSFS
// readahead engine uses it to keep pages in flight ahead of sequential
// readers; with caching disabled it is a no-op. Ranges beyond the
// version size are clamped, not an error.
func (b *Blob) Prefetch(ctx context.Context, ver, off, n uint64) error {
	if b.c.pages == nil {
		return nil
	}
	info, err := b.resolveVersion(ctx, ver)
	if err != nil {
		return err
	}
	if off >= info.Size || n == 0 {
		return nil
	}
	if off+n > info.Size {
		n = info.Size - off
	}
	ps := b.pageSize
	firstPage := off / ps
	lastPage := (off + n - 1) / ps
	slots, err := b.resolveSlots(ctx, info, firstPage, lastPage-firstPage+1)
	if err != nil {
		return b.collectedOr(ctx, info.Ver, err)
	}
	err = b.c.forEachPage(uint64(len(slots)), func(i uint64) error {
		slot := slots[i]
		if slot.Ref.Hole {
			return nil
		}
		want := minU64(off+n, (slot.Index+1)*ps) - slot.Index*ps
		_, err := b.c.fetchPage(ctx, slot.Ref, want)
		return err
	})
	return b.collectedOr(ctx, info.Ver, err)
}

// resolveSlots maps pages [first, first+n) of the published version
// info to their page refs, through the client's slot cache: a range
// fully resolved before costs no metadata RPC at all. On a miss the
// whole range is resolved in one segment-tree walk and cached.
func (b *Blob) resolveSlots(ctx context.Context, info VersionInfo, first, n uint64) ([]segtree.Slot, error) {
	c := b.c
	out := make([]segtree.Slot, 0, n)
	c.mu.Lock()
	for i := uint64(0); i < n; i++ {
		s, ok := c.slots[slotKey{b.id, info.Ver, first + i}]
		if !ok {
			out = out[:0]
			break
		}
		out = append(out, s)
	}
	c.mu.Unlock()
	if uint64(len(out)) == n {
		return out, nil
	}
	slots, err := segtree.Resolve(ctx, c.nodes, b.id, info.Ver, info.Pages, first, n)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if len(c.slots) >= cacheCap {
		c.slots = make(map[slotKey]segtree.Slot)
	}
	for _, s := range slots {
		c.slots[slotKey{b.id, info.Ver, s.Index}] = s
	}
	c.mu.Unlock()
	return slots, nil
}

// resolveVersion maps ver (0 = latest) to a published VersionInfo.
// Published versions are immutable, so they are answered from a local
// cache after the first lookup; only "latest" always costs an RPC.
func (b *Blob) resolveVersion(ctx context.Context, ver uint64) (VersionInfo, error) {
	if ver == 0 {
		return b.Latest(ctx)
	}
	key := VersionRef{Blob: b.id, Ver: ver}
	c := b.c
	c.mu.Lock()
	info, ok := c.verinfo[key]
	c.mu.Unlock()
	if ok {
		return info, nil
	}
	info, err := b.GetVersion(ctx, ver)
	if err != nil {
		if errors.Is(err, ErrVersionCollected) {
			// Collection invalidated whatever this client still caches
			// about the version.
			c.PurgeVersion(b.id, ver)
		}
		return VersionInfo{}, err
	}
	if !info.Published {
		return VersionInfo{}, ErrNotPublished
	}
	c.mu.Lock()
	if len(c.verinfo) >= cacheCap {
		c.verinfo = make(map[VersionRef]VersionInfo)
	}
	c.verinfo[key] = info
	c.mu.Unlock()
	return info, nil
}

// fetchPage retrieves one page holding at least want bytes, serving it
// from the shared cache when possible. Concurrent readers of the same
// missing page fold into one provider fetch. The returned slice is
// shared and read-only.
func (c *Client) fetchPage(ctx context.Context, ref segtree.PageRef, want uint64) ([]byte, error) {
	if t := c.cfg.ReadHeat; t != nil {
		t(ref.Page.Blob, ref.Page.Index)
	}
	if c.pages == nil {
		return c.fetchPageDirect(ctx, ref, want)
	}
	data, err := c.pages.Get(ctx, ref.Page, func(fctx context.Context) ([]byte, error) {
		return c.fetchPageDirect(fctx, ref, want)
	})
	if err == nil && uint64(len(data)) < want {
		// Cached by an earlier read that needed a narrower prefix of
		// this page; fetch wide and upgrade the entry so later wide
		// reads hit. Get already counted the short-entry hit, so this
		// access records one hit AND one miss — keeping "zero misses"
		// a truthful proxy for "zero provider RPCs".
		c.rstats.AddMiss()
		data, err = c.fetchPageDirect(ctx, ref, want)
		if err == nil {
			c.pages.Put(ref.Page, data)
		}
	}
	return data, err
}

// fetchPageDirect retrieves one page from its replicas, accepting only
// replies of at least want bytes — a truncated/corrupt replica counts
// as a failed provider and the fetch fails over to the next one, so a
// sick replica can degrade latency but never poisons the shared cache.
// A replica co-located with this client is tried first (the map
// scheduler places tasks next to their data, and a local fetch spares
// both NICs); otherwise the starting replica rotates per fetch so
// remote read traffic spreads across replicas instead of hammering the
// primary. Failed providers are recorded in the read stats.
func (c *Client) fetchPageDirect(ctx context.Context, ref segtree.PageRef, want uint64) ([]byte, error) {
	nrep := len(ref.Providers)
	local := -1
	for i, addr := range ref.Providers {
		if transport.Addr(addr).Host() == c.cfg.Host {
			local = i
			break
		}
	}
	start := 0
	if nrep > 1 {
		start = int(c.replicaRR.Add(1) % uint32(nrep))
	}
	var lastErr error
	try := func(addr string) ([]byte, bool) {
		var resp GetPageResp
		c.rstats.AddProviderFetch()
		err := c.pool.Call(ctx, transport.Addr(addr), ProvGetPage, &GetPageReq{Key: ref.Page}, &resp)
		if err != nil {
			// A cancelled caller is not a sick replica: don't brand
			// the provider (reader Close cancels in-flight prefetches
			// all the time) — the ctx check below stops the sweep.
			if ctx.Err() == nil {
				c.rstats.NoteProviderFailure(addr)
			}
			lastErr = err
			return nil, false
		}
		if uint64(len(resp.Data)) < want {
			// Either a truncated replica or a legitimately short page
			// (a never-rewritten tail the read version overshoots).
			// Try the remaining replicas, but don't brand the provider
			// as failed: a legitimately short page answers this way
			// from every healthy replica.
			lastErr = fmt.Errorf("%w: page %s has %d bytes, need %d", ErrShortPage, ref.Page, len(resp.Data), want)
			return nil, false
		}
		return resp.Data, true
	}
	if local >= 0 {
		if data, ok := try(ref.Providers[local]); ok {
			return data, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < nrep; i++ {
		k := (start + i) % nrep
		if k == local {
			continue
		}
		if data, ok := try(ref.Providers[k]); ok {
			return data, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if errors.Is(lastErr, ErrShortPage) {
		return nil, lastErr
	}
	return nil, fmt.Errorf("%w: %s: %w", ErrPageRead, ref.Page, lastErr)
}

// PageLoc describes where one page of a version lives; the Map/Reduce
// scheduler uses the host list for data-local task placement. This is
// the "new primitive that exposes the pages distribution to providers"
// of §3.2.
type PageLoc struct {
	Index     uint64
	Hole      bool
	Providers []string // endpoint addresses
	Hosts     []string // host names (scheduling units)
}

// PageLocations resolves the page→provider mapping of [off, off+n)
// bytes of version ver (0 = latest published).
func (b *Blob) PageLocations(ctx context.Context, ver, off, n uint64) ([]PageLoc, error) {
	info, err := b.resolveVersion(ctx, ver)
	if err != nil {
		return nil, err
	}
	if n == 0 || info.Size == 0 {
		return nil, nil
	}
	if off+n > info.Size {
		n = info.Size - off
	}
	ps := b.pageSize
	firstPage := off / ps
	lastPage := (off + n - 1) / ps
	slots, err := b.resolveSlots(ctx, info, firstPage, lastPage-firstPage+1)
	if err != nil {
		return nil, err
	}
	out := make([]PageLoc, len(slots))
	for i, s := range slots {
		loc := PageLoc{Index: s.Index, Hole: s.Ref.Hole, Providers: s.Ref.Providers}
		for _, p := range s.Ref.Providers {
			loc.Hosts = append(loc.Hosts, transport.Addr(p).Host())
		}
		out[i] = loc
	}
	return out, nil
}

// knownPrefix returns the highest version whose record is cached.
func (c *Client) knownPrefix(blob uint64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if h, ok := c.hist[blob]; ok {
		return h.complete
	}
	return 0
}

// mergeHistory folds the assignment's history delta plus the writer's
// own record into the cache and returns the full history below own.Ver.
func (c *Client) mergeHistory(blob uint64, delta []segtree.WriteRecord, own segtree.WriteRecord) ([]segtree.WriteRecord, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.hist[blob]
	if !ok {
		h = &blobHistory{}
		c.hist[blob] = h
	}
	place := func(rec segtree.WriteRecord) {
		idx := rec.Ver - 1
		for uint64(len(h.recs)) <= idx {
			h.recs = append(h.recs, segtree.WriteRecord{})
		}
		h.recs[idx] = rec
	}
	for _, rec := range delta {
		place(rec)
	}
	place(own)
	for h.complete < uint64(len(h.recs)) && h.recs[h.complete].Ver == h.complete+1 {
		h.complete++
	}
	need := own.Ver - 1
	if h.complete < need {
		return nil, fmt.Errorf("%w: have %d of %d records", ErrHistoryGap, h.complete, need)
	}
	return append([]segtree.WriteRecord(nil), h.recs[:need]...), nil
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
