package blob

// vmstate.go is the version manager's state machine, kept pure so the
// same transition code serves both paths: live RPC handlers validate a
// request, journal a vmRecord, then apply it; recovery replays the
// journaled records through the identical apply functions. Anything the
// manager decides (blob creation, version assignment, completion,
// sealing, retention, deletion, frontier advances) is a vmRecord;
// anything soft (waiters, pin leases, assignment timestamps) lives only
// in memory and is rebuilt or forgotten across a restart.

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"blobseer/internal/segtree"
	"blobseer/internal/wire"
)

// Version lifecycle inside the manager.
type vstatus uint8

const (
	vsPending vstatus = iota
	vsCompleted
	vsSealing
	vsSealed
)

// blobState is the version manager's bookkeeping for one BLOB. Each
// blobState carries its own lock, so writers of different BLOBs never
// contend on the version manager: assignment is serialized per BLOB
// (the paper's consistency requirement), not globally.
type blobState struct {
	mu       sync.Mutex
	pageSize uint64
	// Per assigned version v (index v-1):
	records    []segtree.WriteRecord
	sizes      []uint64
	status     []vstatus
	assignedAt []time.Time
	// published is the highest published version (0 = none). Versions
	// publish strictly in assignment order: v publishes only once v-1
	// has published and v has completed (or been sealed).
	published uint64
	waiters   map[uint64][]chan struct{}

	// Lifecycle state (internal/gc). Versions below truncBefore are
	// retirable; retain (when retainSet) overrides the manager's default
	// RetainLatest policy; deleted marks the whole BLOB dead. frontier
	// is the collection frontier: every version below it has been handed
	// to the collector — its pages may be gone, so reads must fail with
	// ErrVersionCollected. The frontier only advances (atomically with
	// the reclaim scan) and never passes a pinned version, so a pinned
	// snapshot's pages are never deleted and a pin on an already
	// collected version is refused — there is no in-between.
	retain      uint64
	retainSet   bool
	truncBefore uint64
	deleted     bool
	frontier    uint64 // versions < frontier are collected (0/1 = none)
	pins        map[uint64]*pinLease
}

// pinLease aggregates the live pins of one version: a refcount plus
// the latest lease expiry. Expired leases are pruned by reclaim scans,
// so a crashed reader delays collection by at most one TTL. Pins are
// soft state: a manager crash drops them, bounded by the lease TTL the
// holder already agreed to.
type pinLease struct {
	count   int
	expires time.Time
}

// collectedGet reports whether ver was handed to the collector.
// Version 0 (the empty initial snapshot) has no pages and is never
// collected.
func (bs *blobState) collectedGet(ver uint64) bool {
	return ver >= 1 && ver < bs.frontier
}

func (bs *blobState) info(ver uint64) VersionInfo {
	if ver == 0 {
		return VersionInfo{Ver: 0, Published: true}
	}
	i := ver - 1
	return VersionInfo{
		Ver:       ver,
		Size:      bs.sizes[i],
		Pages:     bs.records[i].PagesAfter,
		Published: ver <= bs.published,
		Sealed:    bs.status[i] == vsSealed || bs.status[i] == vsSealing,
	}
}

// removeWaiterLocked deregisters one waiter channel for ver. Callers
// whose wait ends without publication (timeout, server shutdown) must
// deregister, or the waiter list grows without bound while the version
// stays pending.
func (bs *blobState) removeWaiterLocked(ver uint64, ch chan struct{}) {
	chans := bs.waiters[ver]
	for i, c := range chans {
		if c == ch {
			chans[i] = chans[len(chans)-1]
			chans = chans[:len(chans)-1]
			break
		}
	}
	if len(chans) == 0 {
		delete(bs.waiters, ver)
	} else {
		bs.waiters[ver] = chans
	}
}

//
// Journal records.
//

// Journal record ops: every decided state transition of the manager.
const (
	vmOpCreate   uint8 = iota + 1 // Blob, Val=pageSize
	vmOpAssign                    // Blob, Kind, Off, Len
	vmOpComplete                  // Blob, Ver
	vmOpSealed                    // Blob, Ver (journaled only after hole metadata committed)
	vmOpRetain                    // Blob, Val=retain
	vmOpTrunc                     // Blob, Ver (already clamped to published)
	vmOpDelete                    // Blob
	vmOpFrontier                  // Blob, Ver=new frontier (pin clamping already folded in)
)

// vmRecord is one journaled state transition. Records carry the
// request inputs, not the outcomes: applied in sequence order they
// recompute every outcome deterministically (assign offsets, version
// numbers, publication), which is what makes the live mutation path and
// crash replay the same code.
type vmRecord struct {
	Seq  uint64 // journal sequence, assigned at append
	Op   uint8
	Blob uint64
	Ver  uint64
	Kind uint64
	Off  uint64
	Len  uint64
	Val  uint64
}

func (rec vmRecord) encode() []byte {
	b := make([]byte, 1, 48)
	b[0] = rec.Op
	b = wire.AppendUvarint(b, rec.Seq)
	b = wire.AppendUvarint(b, rec.Blob)
	b = wire.AppendUvarint(b, rec.Ver)
	b = wire.AppendUvarint(b, rec.Kind)
	b = wire.AppendUvarint(b, rec.Off)
	b = wire.AppendUvarint(b, rec.Len)
	b = wire.AppendUvarint(b, rec.Val)
	return b
}

func decodeVMRecord(data []byte) (vmRecord, error) {
	if len(data) == 0 {
		return vmRecord{}, errors.New("blob: empty journal record")
	}
	r := wire.NewReader(data[1:])
	rec := vmRecord{Op: data[0]}
	rec.Seq = r.Uvarint()
	rec.Blob = r.Uvarint()
	rec.Ver = r.Uvarint()
	rec.Kind = r.Uvarint()
	rec.Off = r.Uvarint()
	rec.Len = r.Uvarint()
	rec.Val = r.Uvarint()
	return rec, r.Err()
}

//
// State machine.
//

// vmShardCount is the number of shards of the blob map. Power of two so
// the shard index is a mask; sized well above typical core counts to
// keep the probability of two hot BLOBs colliding low.
const vmShardCount = 32

// vmShard holds one slice of the blob map. The shard lock guards only
// map membership; per-BLOB state is guarded by blobState.mu.
type vmShard struct {
	mu    sync.Mutex
	blobs map[uint64]*blobState
}

// vmState is the manager's decided state plus the pure transition
// functions over it. One instance backs one manager shard; with
// metadata-ring sharding, blob ids are allocated from this shard's
// modular stripe (id ≡ shardIndex+1 mod shardCount) so shards never
// coordinate on id allocation, and candidates the consistent-hash ring
// maps to a different shard are skipped so ownership stays a pure ring
// lookup for every caller.
type vmState struct {
	shardIndex int
	shardCount int
	ownsID     func(uint64) bool // nil = owns every id (unsharded)

	mu         sync.Mutex // guards nextStripe
	nextStripe uint64

	shards [vmShardCount]vmShard

	assigned       atomic.Uint64
	publishedCount atomic.Uint64
	sealed         atomic.Uint64
}

func newVMState(index, count int, ownsID func(uint64) bool) *vmState {
	if count <= 0 {
		count = 1
	}
	st := &vmState{shardIndex: index, shardCount: count, ownsID: ownsID}
	for i := range st.shards {
		st.shards[i].blobs = make(map[uint64]*blobState)
	}
	return st
}

func (st *vmState) shard(blob uint64) *vmShard {
	return &st.shards[blob&(vmShardCount-1)]
}

// lookup resolves a blob id to its state without touching other shards.
func (st *vmState) lookup(blob uint64) (*blobState, bool) {
	s := st.shard(blob)
	s.mu.Lock()
	bs, ok := s.blobs[blob]
	s.mu.Unlock()
	return bs, ok
}

// allocBlobID returns the next unused id of this shard's stripe that
// the metadata ring maps back to this shard. Skipped candidates are
// never journaled; replay re-skips them identically because the ring is
// built from the same stable shard addresses.
func (st *vmState) allocBlobID() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		id := st.nextStripe*uint64(st.shardCount) + uint64(st.shardIndex) + 1
		st.nextStripe++
		if st.ownsID == nil || st.ownsID(id) {
			return id
		}
	}
}

// noteID folds an existing blob id (replayed create or snapshot) into
// the stripe counter so post-recovery allocation resumes past it.
func (st *vmState) noteID(id uint64) {
	if id == 0 {
		return
	}
	ord := (id - 1) / uint64(st.shardCount)
	st.mu.Lock()
	if ord+1 > st.nextStripe {
		st.nextStripe = ord + 1
	}
	st.mu.Unlock()
}

// blobEntry pairs a blob id with its state for whole-map sweeps.
type blobEntry struct {
	id uint64
	bs *blobState
}

// blobStates snapshots the (id, state) pairs of every known BLOB. The
// shard locks are released before any bs.mu is taken, preserving the
// map-lock-before-blob-lock discipline.
func (st *vmState) blobStates() []blobEntry {
	var out []blobEntry
	for i := range st.shards {
		s := &st.shards[i]
		s.mu.Lock()
		for id, bs := range s.blobs {
			out = append(out, blobEntry{id: id, bs: bs})
		}
		s.mu.Unlock()
	}
	return out
}

// listBlobs returns every live (non-deleted) blob id, ascending.
func (st *vmState) listBlobs() []uint64 {
	var out []uint64
	for _, e := range st.blobStates() {
		e.bs.mu.Lock()
		dead := e.bs.deleted
		e.bs.mu.Unlock()
		if !dead {
			out = append(out, e.id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// blobCount counts every known BLOB (tombstones included), for stats.
func (st *vmState) blobCount() uint64 {
	var n uint64
	for i := range st.shards {
		s := &st.shards[i]
		s.mu.Lock()
		n += uint64(len(s.blobs))
		s.mu.Unlock()
	}
	return n
}

// apply replays one journal record. It is the recovery path; live
// handlers call the op-specific applyXxxLocked functions directly under
// the same locks, so both paths share every transition.
func (st *vmState) apply(rec vmRecord, now time.Time) {
	if rec.Op == vmOpCreate {
		st.applyCreate(rec)
		return
	}
	bs, ok := st.lookup(rec.Blob)
	if !ok {
		return // snapshot already covers (or never knew) this blob
	}
	bs.mu.Lock()
	switch rec.Op {
	case vmOpAssign:
		st.applyAssignLocked(bs, rec, now)
	case vmOpComplete:
		st.applyCompleteLocked(bs, rec)
	case vmOpSealed:
		st.applySealedLocked(bs, rec)
	case vmOpRetain:
		bs.retain, bs.retainSet = rec.Val, true
	case vmOpTrunc:
		if rec.Ver > bs.truncBefore {
			bs.truncBefore = rec.Ver
		}
	case vmOpDelete:
		st.applyDeleteLocked(bs)
	case vmOpFrontier:
		st.applyFrontierLocked(bs, rec)
	}
	bs.mu.Unlock()
}

// applyCreate installs a new BLOB.
func (st *vmState) applyCreate(rec vmRecord) *blobState {
	bs := &blobState{
		pageSize: rec.Val,
		waiters:  make(map[uint64][]chan struct{}),
	}
	s := st.shard(rec.Blob)
	s.mu.Lock()
	if cur, ok := s.blobs[rec.Blob]; ok {
		// Replay after a snapshot that already covers the create.
		s.mu.Unlock()
		return cur
	}
	s.blobs[rec.Blob] = bs
	s.mu.Unlock()
	st.noteID(rec.Blob)
	return bs
}

// assignResult is everything AssignResp needs besides the history delta.
type assignResult struct {
	ver       uint64
	start     uint64
	prevSize  uint64
	sizeAfter uint64
	rec       segtree.WriteRecord
}

// applyAssignLocked appends one version assignment. Caller holds bs.mu.
// Offsets and version numbers derive from prior state only, so replay
// in journal order recomputes the exact assignments handed out live.
func (st *vmState) applyAssignLocked(bs *blobState, rec vmRecord, now time.Time) assignResult {
	ps := bs.pageSize
	var prevSize uint64
	if n := len(bs.sizes); n > 0 {
		prevSize = bs.sizes[n-1]
	}
	var start uint64
	switch rec.Kind {
	case KindAppend:
		// §3.1.2: "the offset is implicitly assumed to be the size of
		// the latest version" — latest *assigned*, so concurrent
		// appenders receive disjoint consecutive regions.
		start = prevSize
	case KindWrite:
		start = rec.Off
	}
	sizeAfter := start + rec.Len
	if sizeAfter < prevSize {
		sizeAfter = prevSize
	}
	pageOff := start / ps
	pageEnd := (start + rec.Len + ps - 1) / ps
	ver := uint64(len(bs.records)) + 1
	w := segtree.WriteRecord{
		Ver:        ver,
		Off:        pageOff,
		N:          pageEnd - pageOff,
		PagesAfter: (sizeAfter + ps - 1) / ps,
	}
	bs.records = append(bs.records, w)
	bs.sizes = append(bs.sizes, sizeAfter)
	bs.status = append(bs.status, vsPending)
	bs.assignedAt = append(bs.assignedAt, now)
	st.assigned.Add(1)
	return assignResult{ver: ver, start: start, prevSize: prevSize, sizeAfter: sizeAfter, rec: w}
}

// applyCompleteLocked marks one version completed and advances
// publication. Idempotent: re-applying (retried RPC, replay after
// snapshot) is a no-op.
func (st *vmState) applyCompleteLocked(bs *blobState, rec vmRecord) {
	if rec.Ver == 0 || rec.Ver > uint64(len(bs.status)) {
		return
	}
	if bs.status[rec.Ver-1] != vsPending {
		return
	}
	bs.status[rec.Ver-1] = vsCompleted
	st.advanceLocked(bs)
}

// applySealedLocked marks one version sealed. The hole metadata is
// already durably committed to the metadata DHT before this record is
// journaled, so replay needs no I/O.
func (st *vmState) applySealedLocked(bs *blobState, rec vmRecord) {
	if rec.Ver == 0 || rec.Ver > uint64(len(bs.status)) {
		return
	}
	if s := bs.status[rec.Ver-1]; s == vsSealed || s == vsCompleted {
		return
	}
	bs.status[rec.Ver-1] = vsSealed
	st.sealed.Add(1)
	st.advanceLocked(bs)
}

// applyDeleteLocked retires a whole BLOB and wakes every waiter, which
// observes deleted and fails cleanly.
func (st *vmState) applyDeleteLocked(bs *blobState) {
	if bs.deleted {
		return
	}
	bs.deleted = true
	for ver, chans := range bs.waiters {
		for _, ch := range chans {
			close(ch)
		}
		delete(bs.waiters, ver)
	}
}

// applyFrontierLocked advances the collection frontier to rec.Ver,
// prunes pin entries behind it, and tombstones a fully collected
// deleted BLOB (drop the bulk arrays, keep the flags so reads keep
// failing with ErrVersionCollected).
func (st *vmState) applyFrontierLocked(bs *blobState, rec vmRecord) {
	if rec.Ver <= bs.frontier {
		return
	}
	bs.frontier = rec.Ver
	for v := range bs.pins {
		if v < bs.frontier {
			delete(bs.pins, v)
		}
	}
	if bs.deleted && bs.frontier == uint64(len(bs.records))+1 {
		bs.records, bs.sizes, bs.status, bs.assignedAt = nil, nil, nil, nil
	}
}

// advanceLocked publishes the longest contiguous prefix of finished
// versions and wakes the corresponding waiters. Caller holds bs.mu.
func (st *vmState) advanceLocked(bs *blobState) {
	for bs.published < uint64(len(bs.status)) {
		s := bs.status[bs.published]
		if s != vsCompleted && s != vsSealed {
			break
		}
		bs.published++
		st.publishedCount.Add(1)
		if chans, ok := bs.waiters[bs.published]; ok {
			for _, ch := range chans {
				close(ch)
			}
			delete(bs.waiters, bs.published)
		}
	}
}

//
// Reclaim scan: the pure target computation, split from the frontier
// mutation so the advance journals (vmOpFrontier) before it applies.
//

// reclaimTargetLocked computes how far the collection frontier may
// advance. Caller holds bs.mu. It prunes nothing and mutates nothing:
// the effective target already folds in the retention policy and every
// live pin's clamp, so journaling the returned value keeps replay
// independent of pin state (which is soft and lost across restarts).
// blocked counts the versions a live pin held back this scan.
func (bs *blobState) reclaimTargetLocked(defaultRetain uint64, now time.Time) (to, blocked uint64, advance bool) {
	// policyDead is the exclusive upper bound the policy wants dead:
	// everything below it may go. The latest published version always
	// survives unless the BLOB is deleted.
	var policyDead uint64
	if bs.deleted {
		policyDead = uint64(len(bs.records)) + 1
	} else {
		policyDead = bs.truncBefore
		retain := defaultRetain
		if bs.retainSet {
			retain = bs.retain
		}
		if retain > 0 && bs.published > retain {
			if v := bs.published - retain + 1; v > policyDead {
				policyDead = v
			}
		}
		if policyDead > bs.published {
			policyDead = bs.published
		}
	}

	// The frontier never passes a live pin: a pinned snapshot keeps
	// every page it can reach, which is exactly "no version >= the pin's
	// own view boundary dies". Once the pin releases (or its lease
	// expires), the next scan finishes the advance. Expired leases stop
	// clamping but keep their entry: deleting it here would let the
	// stale holder's eventual Unpin steal a reference from a fresh pin
	// on the same version. Entries are pruned only once the frontier
	// passes them (new pins below the frontier are refused, so a late
	// Unpin of a pruned pin is a harmless no-op).
	effective := policyDead
	for v, p := range bs.pins {
		if now.After(p.expires) {
			continue
		}
		if v < effective {
			effective = v
		}
	}
	if effective < policyDead {
		from := effective
		if bs.frontier > from {
			from = bs.frontier
		}
		if policyDead > from {
			blocked = policyDead - from
		}
	}

	from := bs.frontier
	if from < 1 {
		from = 1
	}
	if effective <= from {
		return effective, blocked, false
	}
	return effective, blocked, true
}

// buildReclaimLocked constructs the collector work item for a frontier
// advance to `to`. Caller holds bs.mu and must call it BEFORE applying
// the frontier record (a tombstoning advance drops the record arrays).
func (bs *blobState) buildReclaimLocked(id, to uint64) *BlobReclaim {
	from := bs.frontier
	if from < 1 {
		from = 1
	}
	maxVer := to
	if maxVer > uint64(len(bs.records)) {
		maxVer = uint64(len(bs.records))
	}
	return &BlobReclaim{
		Blob:     id,
		PageSize: bs.pageSize,
		Deleted:  bs.deleted && to == uint64(len(bs.records))+1,
		From:     from,
		To:       to,
		// Zero-copy share of the record prefix: write records are
		// written once at assignment and never mutated, and appends
		// never touch indices below maxVer, so encoding this slice
		// outside the lock is race-free — the scan holds bs.mu for
		// O(1) regardless of history length. The full prefix ships
		// (rather than just (From, To]) so every scan item is
		// self-contained: a collector restart — or a scan response
		// lost to a timeout after the frontier advanced (the one leak
		// window of the mark-first design) — costs at most the lost
		// window's pages, never a corrupted reclaim of later windows.
		Records: bs.records[:maxVer:maxVer],
	}
}

//
// Checkpoint snapshots.
//

// encodeBlobSnapshot serializes one BLOB's decided state for a journal
// checkpoint. asOf is the journal sequence the snapshot covers: replay
// skips any journal record for this BLOB with Seq <= asOf. In-flight
// seals persist as pending (the sealed record lands only after the hole
// metadata commits); waiters, pins and assignment timestamps are soft
// and not persisted.
func encodeBlobSnapshot(id uint64, bs *blobState, asOf uint64) []byte {
	b := wire.AppendUvarint(nil, asOf)
	b = wire.AppendUvarint(b, id)
	b = wire.AppendUvarint(b, bs.pageSize)
	b = wire.AppendUvarint(b, bs.published)
	b = wire.AppendUvarint(b, bs.retain)
	b = wire.AppendBool(b, bs.retainSet)
	b = wire.AppendUvarint(b, bs.truncBefore)
	b = wire.AppendBool(b, bs.deleted)
	b = wire.AppendUvarint(b, bs.frontier)
	b = wire.AppendUvarint(b, uint64(len(bs.records)))
	for i := range bs.records {
		b = appendWriteRecord(b, bs.records[i])
		b = wire.AppendUvarint(b, bs.sizes[i])
		s := bs.status[i]
		if s == vsSealing {
			s = vsPending
		}
		b = wire.AppendUvarint(b, uint64(s))
	}
	return b
}

func decodeBlobSnapshot(data []byte, now time.Time) (id uint64, bs *blobState, asOf uint64, err error) {
	r := wire.NewReader(data)
	asOf = r.Uvarint()
	id = r.Uvarint()
	bs = &blobState{
		pageSize: r.Uvarint(),
		waiters:  make(map[uint64][]chan struct{}),
	}
	bs.published = r.Uvarint()
	bs.retain = r.Uvarint()
	bs.retainSet = r.Bool()
	bs.truncBefore = r.Uvarint()
	bs.deleted = r.Bool()
	bs.frontier = r.Uvarint()
	n := r.Uvarint()
	if r.Err() != nil {
		return 0, nil, 0, r.Err()
	}
	for i := uint64(0); i < n; i++ {
		bs.records = append(bs.records, decodeWriteRecord(r))
		bs.sizes = append(bs.sizes, r.Uvarint())
		bs.status = append(bs.status, vstatus(r.Uvarint()))
		bs.assignedAt = append(bs.assignedAt, now)
	}
	return id, bs, asOf, r.Err()
}
