package blob

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"blobseer/internal/rpc"
	"blobseer/internal/transport"
	"blobseer/internal/wire"
)

// reqResp constrains a pointer to a wire message usable on both sides
// of a forwarded call.
type reqResp[T any] interface {
	*T
	wire.Marshaler
	wire.Unmarshaler
}

// flakyVM is an RPC proxy in front of a real version manager that
// fails VMComplete while completeFails > 0, simulating a writer that
// loses its completion acknowledgement after committing data. The
// error it fails with is configurable: transport-level errors are
// retried by the client's router, application errors are not.
type flakyVM struct {
	srv  *rpc.Server
	pool *rpc.Pool
	vm   transport.Addr

	completeFails atomic.Int64
	completeErr   error
}

func newFlakyVM(t *testing.T, net transport.Network, vm transport.Addr) *flakyVM {
	t.Helper()
	srv, err := rpc.NewServer(net, transport.MakeAddr("flaky-host", "vm-proxy"))
	if err != nil {
		t.Fatal(err)
	}
	f := &flakyVM{
		srv:  srv,
		pool: rpc.NewPool(net, transport.MakeAddr("flaky-host", "client")),
		vm:   vm,
	}
	t.Cleanup(func() {
		srv.Close()
		f.pool.Close()
	})
	srv.Handle(VMCreateBlob, forward[CreateBlobReq, CreateBlobResp](f, VMCreateBlob))
	srv.Handle(VMOpenBlob, forward[BlobRef, OpenBlobResp](f, VMOpenBlob))
	srv.Handle(VMAssign, forward[AssignReq, AssignResp](f, VMAssign))
	srv.Handle(VMSeal, forwardNoResp[VersionRef](f, VMSeal))
	srv.Handle(VMGetVersion, forward[VersionRef, VersionInfo](f, VMGetVersion))
	srv.Handle(VMLatest, forward[BlobRef, VersionInfo](f, VMLatest))
	srv.Handle(VMWaitPublished, forward[WaitPublishedReq, VersionInfo](f, VMWaitPublished))
	f.completeErr = rpc.ErrConnLost
	srv.Handle(VMComplete, func(r *wire.Reader) (wire.Marshaler, error) {
		if f.completeFails.Add(-1) >= 0 {
			return nil, f.completeErr // never reaches the real manager
		}
		return forwardNoResp[VersionRef](f, VMComplete)(r)
	})
	return f
}

// forward relays one proxied method with a response body.
func forward[Req, Resp any, PReq reqResp[Req], PResp reqResp[Resp]](f *flakyVM, method rpc.Method) rpc.HandlerFunc {
	return func(r *wire.Reader) (wire.Marshaler, error) {
		req := PReq(new(Req))
		if err := req.DecodeFrom(r); err != nil {
			return nil, err
		}
		resp := PResp(new(Resp))
		if err := f.pool.Call(context.Background(), f.vm, method, req, resp); err != nil {
			return nil, err
		}
		return resp, nil
	}
}

// forwardNoResp relays one proxied method without a response body.
func forwardNoResp[Req any, PReq reqResp[Req]](f *flakyVM, method rpc.Method) rpc.HandlerFunc {
	return func(r *wire.Reader) (wire.Marshaler, error) {
		req := PReq(new(Req))
		if err := req.DecodeFrom(r); err != nil {
			return nil, err
		}
		if err := f.pool.Call(context.Background(), f.vm, method, req, nil); err != nil {
			return nil, err
		}
		return nil, nil
	}
}

func TestFailedCompleteDoesNotWedgeChain(t *testing.T) {
	// Sealing is disabled: if a failed VMComplete left its version
	// pending, the publication chain would be wedged forever. The
	// proxy rejects the complete with an application-level error so
	// the router does not retry it (transport-level failures heal;
	// see TestCompleteRetriesThroughConnLoss).
	net := transport.NewMemNet()
	cluster, err := NewCluster(net, ClusterConfig{Providers: 3, MetaProviders: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	proxy := newFlakyVM(t, net, cluster.VM.Addr())
	proxy.completeErr = errors.New("complete rejected")
	proxy.completeFails.Store(1)

	client := NewClient(ClientConfig{
		Net:             net,
		Host:            "flaky-cli",
		VersionManager:  proxy.srv.Addr(),
		ProviderManager: cluster.PM.Addr(),
		Metadata:        cluster.MetaAddrs(),
	})
	defer client.Close()

	bl, err := client.Create(ctx, 128)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 128)
	if _, err := bl.Append(ctx, data); err == nil {
		t.Fatal("append with failing complete reported success")
	}

	// The failed writer must have sealed its orphaned version, so the
	// next append publishes without waiting on it.
	res, err := bl.Append(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	info, err := bl.WaitPublished(wctx, res.Ver)
	if err != nil {
		t.Fatalf("chain wedged after failed complete: %v", err)
	}
	if !info.Published {
		t.Fatalf("info = %+v", info)
	}
	// The first version was sealed, not published with data.
	v1, err := bl.GetVersion(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !v1.Sealed {
		t.Fatalf("v1 = %+v, want sealed", v1)
	}
}

func TestCompleteRetriesThroughConnLoss(t *testing.T) {
	// A completion acknowledgement lost to a dropped connection is a
	// transport-level failure: the router retries it (Complete is
	// idempotent on the manager side), so the append succeeds instead
	// of orphaning a committed version.
	net := transport.NewMemNet()
	cluster, err := NewCluster(net, ClusterConfig{Providers: 3, MetaProviders: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	proxy := newFlakyVM(t, net, cluster.VM.Addr())
	proxy.completeFails.Store(1) // fails once with rpc.ErrConnLost, then heals

	client := NewClient(ClientConfig{
		Net:             net,
		Host:            "flaky-cli",
		VersionManager:  proxy.srv.Addr(),
		ProviderManager: cluster.PM.Addr(),
		Metadata:        cluster.MetaAddrs(),
	})
	defer client.Close()

	bl, err := client.Create(ctx, 128)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bl.Append(ctx, make([]byte, 128))
	if err != nil {
		t.Fatalf("append across conn loss: %v", err)
	}
	wctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if _, err := bl.WaitPublished(wctx, res.Ver); err != nil {
		t.Fatalf("version never published: %v", err)
	}
}
