package blob

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"blobseer/internal/rpc"
	"blobseer/internal/segtree"
	"blobseer/internal/transport"
	"blobseer/internal/wire"
)

// vmPair feeds one op stream to two version managers: a journaled one
// that is crash-killed and replayed at random points, and an in-memory
// reference that never restarts. Every response and error must match —
// replay must reconstruct exactly the acknowledged state, no matter
// where the kills land relative to checkpoints and compactions.
type vmPair struct {
	t    *testing.T
	net  transport.Network
	pool *rpc.Pool

	durAddr transport.Addr
	refAddr transport.Addr
	durCfg  VersionManagerConfig
	dur     *VersionManager
	ref     *VersionManager
}

func newVMPair(t *testing.T) *vmPair {
	t.Helper()
	net := transport.NewMemNet()
	durAddr := transport.MakeAddr("vm-dur-host", SvcVersionManager)
	refAddr := transport.MakeAddr("vm-ref-host", SvcVersionManager)
	// Tiny checkpoint/compaction thresholds so a few hundred ops cross
	// several checkpoint boundaries and at least one journal rewrite.
	durCfg := VersionManagerConfig{
		Nodes:            segtree.NewMemStore(),
		JournalPath:      filepath.Join(t.TempDir(), "vm.log"),
		CheckpointEvery:  16,
		CompactThreshold: 512,
	}
	dur, err := NewVersionManager(net, durAddr, durCfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewVersionManager(net, refAddr, VersionManagerConfig{Nodes: segtree.NewMemStore()})
	if err != nil {
		t.Fatal(err)
	}
	pool := rpc.NewPool(net, transport.MakeAddr("vm-pair-cli", "client"))
	p := &vmPair{t: t, net: net, pool: pool, durAddr: durAddr, refAddr: refAddr, durCfg: durCfg, dur: dur, ref: ref}
	t.Cleanup(func() {
		p.dur.Close()
		p.ref.Close()
		pool.Close()
	})
	return p
}

// crash kills the journaled manager without a checkpoint and brings a
// fresh instance up from the journal at the same address.
func (p *vmPair) crash() {
	p.t.Helper()
	if err := p.dur.Kill(); err != nil {
		p.t.Fatal(err)
	}
	vm, err := NewVersionManager(p.net, p.durAddr, p.durCfg)
	if err != nil {
		p.t.Fatalf("replay after kill: %v", err)
	}
	p.dur = vm
}

// call hits the journaled manager directly (the pool redials after a
// crash because the dead connection surfaces ErrConnLost exactly once).
func (p *vmPair) call(addr transport.Addr, method rpc.Method, req wire.Marshaler, resp wire.Unmarshaler) error {
	err := p.pool.Call(ctx, addr, method, req, resp)
	if retryableVMErr(err) {
		err = p.pool.Call(ctx, addr, method, req, resp)
	}
	return err
}

// check issues the same request to both managers and fails the test on
// any divergence in response or error. newResp may be nil for methods
// without a response body.
func (p *vmPair) check(op string, method rpc.Method, req wire.Marshaler, newResp func() wire.Unmarshaler) {
	p.t.Helper()
	var dresp, rresp wire.Unmarshaler
	if newResp != nil {
		dresp, rresp = newResp(), newResp()
	}
	derr := p.call(p.durAddr, method, req, dresp)
	rerr := p.call(p.refAddr, method, req, rresp)
	if fmt.Sprint(derr) != fmt.Sprint(rerr) {
		p.t.Fatalf("%s: journaled err = %v, reference err = %v", op, derr, rerr)
	}
	if newResp != nil && derr == nil {
		d, r := fmt.Sprintf("%+v", dresp), fmt.Sprintf("%+v", rresp)
		if d != r {
			p.t.Fatalf("%s: journaled resp = %s, reference resp = %s", op, d, r)
		}
	}
}

func TestJournalRandomOpsVsReference(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runJournalRandomOps(t, seed)
		})
	}
}

func runJournalRandomOps(t *testing.T, seed int64) {
	const ops = 240
	rng := rand.New(rand.NewSource(seed))
	p := newVMPair(t)

	var blobs []uint64              // live blob ids (kept in sync via list)
	assigned := map[uint64]uint64{} // blob -> highest assigned version

	list := func() {
		var resp ListBlobsResp
		if err := p.call(p.durAddr, VMListBlobs, nil, &resp); err != nil {
			t.Fatal(err)
		}
		blobs = resp.Blobs
	}
	create := func() {
		p.check("create", VMCreateBlob, &CreateBlobReq{PageSize: 128},
			func() wire.Unmarshaler { return &CreateBlobResp{} })
		list()
	}
	create() // always start with one blob

	kill1, kill2 := rng.Intn(ops), rng.Intn(ops)
	for i := 0; i < ops; i++ {
		if i == kill1 || i == kill2 {
			p.crash()
		}
		bl := blobs[rng.Intn(len(blobs))]
		switch r := rng.Float64(); {
		case r < 0.06:
			create()
		case r < 0.40:
			length := uint64(1 + rng.Intn(300))
			p.check("assign", VMAssign,
				&AssignReq{Blob: bl, Kind: KindAppend, Len: length},
				func() wire.Unmarshaler { return &AssignResp{} })
			assigned[bl]++
		case r < 0.70:
			// Complete a random version, valid or not: rejected and
			// idempotent paths must stay in lockstep too.
			ver := uint64(1 + rng.Intn(int(assigned[bl])+2))
			p.check("complete", VMComplete, &VersionRef{Blob: bl, Ver: ver}, nil)
		case r < 0.78:
			p.check("latest", VMLatest, &BlobRef{Blob: bl},
				func() wire.Unmarshaler { return &VersionInfo{} })
		case r < 0.86:
			ver := uint64(1 + rng.Intn(int(assigned[bl])+2))
			p.check("getversion", VMGetVersion, &VersionRef{Blob: bl, Ver: ver},
				func() wire.Unmarshaler { return &VersionInfo{} })
		case r < 0.92:
			p.check("history", VMHistory, &HistoryReq{Blob: bl},
				func() wire.Unmarshaler { return &HistoryResp{} })
		case r < 0.96:
			p.check("retention", VMSetRetention,
				&SetRetentionReq{Blob: bl, Retain: uint64(rng.Intn(4))}, nil)
		case r < 0.985:
			p.check("truncate", VMTruncateBefore,
				&VersionRef{Blob: bl, Ver: uint64(rng.Intn(int(assigned[bl]) + 2))}, nil)
		default:
			if len(blobs) > 1 {
				p.check("delete", VMDeleteBlob, &BlobRef{Blob: bl}, nil)
				list()
				delete(assigned, bl)
			}
		}
	}

	// One final crash, then a deep sweep: every surviving blob's whole
	// observable state must match the never-restarted reference.
	p.crash()
	p.check("final list", VMListBlobs, nil, func() wire.Unmarshaler { return &ListBlobsResp{} })
	p.check("final stats", VMStats, nil, func() wire.Unmarshaler { return &VMStatsResp{} })
	for _, bl := range blobs {
		p.check("final latest", VMLatest, &BlobRef{Blob: bl},
			func() wire.Unmarshaler { return &VersionInfo{} })
		p.check("final history", VMHistory, &HistoryReq{Blob: bl},
			func() wire.Unmarshaler { return &HistoryResp{} })
		for v := uint64(1); v <= assigned[bl]+1; v++ {
			p.check("final getversion", VMGetVersion, &VersionRef{Blob: bl, Ver: v},
				func() wire.Unmarshaler { return &VersionInfo{} })
		}
	}
}

// TestJournalColdRestartServesHistory is the straight-line durability
// story: publish a handful of versions, crash, reopen cold, and read
// the full pre-crash history back.
func TestJournalColdRestartServesHistory(t *testing.T) {
	p := newVMPair(t)

	var created CreateBlobResp
	if err := p.call(p.durAddr, VMCreateBlob, &CreateBlobReq{PageSize: 128}, &created); err != nil {
		t.Fatal(err)
	}
	// 7 versions = 15 records (create + 7×assign + 7×complete), below
	// CheckpointEvery, so the background checkpointer cannot absorb the
	// tail and the replay count is deterministic.
	const versions = 7
	for i := 0; i < versions; i++ {
		var a AssignResp
		if err := p.call(p.durAddr, VMAssign, &AssignReq{Blob: created.Blob, Kind: KindAppend, Len: 64}, &a); err != nil {
			t.Fatal(err)
		}
		if err := p.call(p.durAddr, VMComplete, &VersionRef{Blob: created.Blob, Ver: a.Ver}, nil); err != nil {
			t.Fatal(err)
		}
	}
	p.crash()
	if n := p.dur.RecoveredRecords(); n != 2*versions+1 {
		t.Fatalf("cold restart replayed %d journal records, want %d", n, 2*versions+1)
	}
	var latest VersionInfo
	if err := p.call(p.durAddr, VMLatest, &BlobRef{Blob: created.Blob}, &latest); err != nil {
		t.Fatal(err)
	}
	if latest.Ver != versions || !latest.Published || latest.Size != versions*64 {
		t.Fatalf("latest after replay = %+v", latest)
	}
	var hist HistoryResp
	if err := p.call(p.durAddr, VMHistory, &HistoryReq{Blob: created.Blob}, &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist.Infos) != versions {
		t.Fatalf("history after replay has %d versions, want %d", len(hist.Infos), versions)
	}
}
