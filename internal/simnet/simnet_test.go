package simnet

import (
	"sync"
	"testing"
	"time"

	"blobseer/internal/transport"
)

// startEcho runs a sink server that drains frames on addr.
func startSink(t *testing.T, n transport.Network, addr transport.Addr) {
	t.Helper()
	l, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				for {
					if _, err := c.Recv(); err != nil {
						return
					}
				}
			}()
		}
	}()
}

func TestBandwidthShaping(t *testing.T) {
	// 1 MB/s NIC, send 200 KB => >= ~200 ms.
	n := New(transport.NewMemNet(), Config{Bandwidth: 1 << 20})
	startSink(t, n, "srv/sink")
	c, err := n.Dial("cli/x", "srv/sink")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	const frames = 20
	for i := 0; i < frames; i++ {
		if err := c.Send(make([]byte, 10<<10)); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	want := 200 * time.Millisecond // 200 KB at 1 MB/s
	if elapsed < want*8/10 {
		t.Errorf("200 KB at 1 MB/s took %v, want >= ~%v", elapsed, want)
	}
	if elapsed > want*3 {
		t.Errorf("200 KB at 1 MB/s took %v, way over %v", elapsed, want)
	}
}

func TestIngressContention(t *testing.T) {
	// Two senders into one receiver NIC: aggregate is capped by the
	// receiver's ingress, so it must take about twice as long as one
	// sender alone would.
	n := New(transport.NewMemNet(), Config{Bandwidth: 2 << 20})
	startSink(t, n, "srv/sink")

	send := func(host string, bytes int, wg *sync.WaitGroup) {
		defer wg.Done()
		c, err := n.Dial(transport.MakeAddr(host, "x"), "srv/sink")
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		const frame = 16 << 10
		for sent := 0; sent < bytes; sent += frame {
			if err := c.Send(make([]byte, frame)); err != nil {
				t.Error(err)
				return
			}
		}
	}

	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(2)
	go send("cli-a", 256<<10, &wg)
	go send("cli-b", 256<<10, &wg)
	wg.Wait()
	elapsed := time.Since(start)

	// 512 KB total through a 2 MB/s ingress => >= ~250 ms.
	if elapsed < 200*time.Millisecond {
		t.Errorf("incast of 512 KB at 2 MB/s took %v, want >= ~250ms", elapsed)
	}
}

func TestSeparateHostsDontContend(t *testing.T) {
	// Each sender/receiver pair has its own NICs; parallel transfers
	// should take about as long as one transfer, not the sum.
	n := New(transport.NewMemNet(), Config{Bandwidth: 1 << 20})
	startSink(t, n, "srv-a/sink")
	startSink(t, n, "srv-b/sink")

	one := func(cli, srv string, wg *sync.WaitGroup) {
		defer wg.Done()
		c, err := n.Dial(transport.MakeAddr(cli, "x"), transport.MakeAddr(srv, "sink"))
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		for i := 0; i < 10; i++ {
			if err := c.Send(make([]byte, 10<<10)); err != nil {
				t.Error(err)
				return
			}
		}
	}

	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(2)
	go one("cli-a", "srv-a", &wg)
	go one("cli-b", "srv-b", &wg)
	wg.Wait()
	elapsed := time.Since(start)

	// Each pair moves 100 KB at 1 MB/s => ~100 ms if parallel,
	// ~200 ms if (wrongly) serialized.
	if elapsed > 180*time.Millisecond {
		t.Errorf("independent transfers took %v, want ~100ms (parallel)", elapsed)
	}
}

func TestLatency(t *testing.T) {
	n := New(transport.NewMemNet(), Config{Latency: 20 * time.Millisecond})
	startSink(t, n, "srv/sink")
	c, err := n.Dial("cli/x", "srv/sink")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if err := c.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 18*time.Millisecond {
		t.Errorf("send with 20ms latency returned in %v", elapsed)
	}
}

func TestPerHostOverride(t *testing.T) {
	// Both the sender and its sink need the override: a transfer is
	// limited by the slower of the two NICs.
	n := New(transport.NewMemNet(), Config{
		Bandwidth: 1 << 20,
		PerHost:   map[string]float64{"fast": 100 << 20, "srv-fast": 100 << 20},
	})
	startSink(t, n, "srv-slow/sink")
	startSink(t, n, "srv-fast/sink")

	timeSend := func(host, sink string) time.Duration {
		c, err := n.Dial(transport.MakeAddr(host, "x"), transport.MakeAddr(sink, "sink"))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		start := time.Now()
		for i := 0; i < 5; i++ {
			if err := c.Send(make([]byte, 10<<10)); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}

	slow := timeSend("slow", "srv-slow")
	fast := timeSend("fast", "srv-fast")
	if fast*2 >= slow {
		t.Errorf("fast host (%v) not clearly faster than slow host (%v)", fast, slow)
	}
}

func TestStatsAccounting(t *testing.T) {
	n := New(transport.NewMemNet(), Config{FrameOverhead: 10})
	startSink(t, n, "srv/sink")
	c, err := n.Dial("cli/x", "srv/sink")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if err := c.Send(make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	out := n.Stats("cli")
	in := n.Stats("srv")
	if out.BytesOut != 330 || out.FramesOut != 3 {
		t.Errorf("cli stats = %+v, want 330 bytes / 3 frames out", out)
	}
	if in.BytesIn != 330 || in.FramesIn != 3 {
		t.Errorf("srv stats = %+v, want 330 bytes / 3 frames in", in)
	}
	if zero := n.Stats("unknown-host"); zero != (HostStats{}) {
		t.Errorf("unknown host stats = %+v", zero)
	}
}

func TestUnshapedIsFast(t *testing.T) {
	n := New(transport.NewMemNet(), Config{})
	startSink(t, n, "srv/sink")
	c, err := n.Dial("cli/x", "srv/sink")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	for i := 0; i < 1000; i++ {
		if err := c.Send(make([]byte, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("unshaped sends took %v", elapsed)
	}
}
