package simnet

import (
	"testing"
	"time"

	"blobseer/internal/transport"
)

// TestSleepFloorSkipsTinyWaits: sub-floor transfers must not pay the
// ~1ms timer tax per frame.
func TestSleepFloorSkipsTinyWaits(t *testing.T) {
	// 100 MB/s, 1 KiB frames => 10us nominal per frame, far below the
	// default 1ms floor.
	n := New(transport.NewMemNet(), Config{Bandwidth: 100 << 20})
	startSink(t, n, "srv/sink")
	c, err := n.Dial("cli/x", "srv/sink")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	for i := 0; i < 200; i++ {
		if err := c.Send(make([]byte, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	// Unfloored, 200 sleeps would cost >= ~200ms on a coarse-timer
	// box; with the floor they cost ~nothing (reservations accumulate
	// to only ~2ms total).
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Errorf("200 tiny frames took %v; sleep floor not applied", elapsed)
	}
}

// TestSleepFloorStillLimitsSaturation: skipping tiny sleeps must not
// break aggregate bandwidth limits — a sustained burst accumulates
// reservations past the floor and throttles.
func TestSleepFloorStillLimitsSaturation(t *testing.T) {
	// 1 MB/s, 8 KiB frames => 8ms nominal per frame; a burst of 64
	// frames is 512 KiB => nominally ~500ms.
	n := New(transport.NewMemNet(), Config{Bandwidth: 1 << 20})
	startSink(t, n, "srv/sink")
	c, err := n.Dial("cli/x", "srv/sink")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	for i := 0; i < 64; i++ {
		if err := c.Send(make([]byte, 8<<10)); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 350*time.Millisecond {
		t.Errorf("512 KiB at 1 MB/s took only %v; shaping lost", elapsed)
	}
}
