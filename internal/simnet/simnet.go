// Package simnet decorates a transport.Network with per-host NIC
// bandwidth and link latency, standing in for the Grid'5000 testbed of
// the paper. Every simulated host owns a full-duplex NIC: one egress and
// one ingress shaper, shared by all of the host's endpoints and
// connections, exactly like co-locating a BSFS client with a data
// provider on one physical machine shares that machine's 1 GbE port.
//
// Shaping is reservation-based: sending a frame of n bytes reserves
// n/bandwidth seconds on the sender's egress NIC and on the receiver's
// ingress NIC, serialized after any reservations already made on those
// NICs, and the sending goroutine sleeps until the reserved interval has
// elapsed (plus propagation latency). Aggregate throughput therefore
// saturates exactly where the modeled NICs saturate, which is what
// produces the shapes of Figures 3-5: incast collisions on hot providers
// and the version manager's serialization, not code speed, set the curve.
//
// Wall-clock sleeping keeps all concurrency real (the same service code
// runs unshaped in unit tests); experiments choose page sizes so each
// reservation is >= ~0.5 ms, comfortably above timer resolution.
package simnet

import (
	"sync"
	"time"

	"blobseer/internal/transport"
)

// Config describes the modeled network.
type Config struct {
	// Bandwidth is the default per-host NIC capacity in bytes/second,
	// applied independently to egress and ingress (full duplex).
	// Zero means unshaped (infinite bandwidth).
	Bandwidth float64
	// Latency is the one-way propagation delay added to every frame.
	Latency time.Duration
	// FrameOverhead models per-frame header cost in bytes.
	FrameOverhead int
	// PerHost overrides the default bandwidth for specific hosts
	// (e.g. a 10 GbE metadata server in an otherwise 1 GbE cluster).
	PerHost map[string]float64
	// SleepFloor is the shortest delay worth actually sleeping for
	// (default 1ms — the practical granularity of time.Sleep on a
	// shared box). Sub-floor waits skip the sleep but still advance
	// the NIC reservation clock, so once a NIC is genuinely saturated
	// the accumulated reservations exceed the floor and senders block:
	// aggregate bandwidth limits stay accurate, only per-frame latency
	// of small control messages is forgiven. Experiments pick page
	// sizes whose transfer time is well above the floor.
	SleepFloor time.Duration
}

// Net is a shaped transport.Network.
type Net struct {
	inner transport.Network
	cfg   Config

	mu    sync.Mutex
	hosts map[string]*hostNIC
}

var _ transport.Network = (*Net)(nil)

// New wraps inner with shaping per cfg.
func New(inner transport.Network, cfg Config) *Net {
	if cfg.SleepFloor == 0 {
		cfg.SleepFloor = time.Millisecond
	}
	return &Net{inner: inner, cfg: cfg, hosts: make(map[string]*hostNIC)}
}

// hostNIC is one simulated machine's network port.
type hostNIC struct {
	egress  shaper
	ingress shaper

	statMu    sync.Mutex
	bytesIn   int64
	bytesOut  int64
	framesIn  int64
	framesOut int64
}

// HostStats reports traffic accounting for one host.
type HostStats struct {
	BytesIn, BytesOut   int64
	FramesIn, FramesOut int64
}

// Stats returns the traffic counters of host, or zeros if unknown.
func (n *Net) Stats(host string) HostStats {
	n.mu.Lock()
	h := n.hosts[host]
	n.mu.Unlock()
	if h == nil {
		return HostStats{}
	}
	h.statMu.Lock()
	defer h.statMu.Unlock()
	return HostStats{
		BytesIn: h.bytesIn, BytesOut: h.bytesOut,
		FramesIn: h.framesIn, FramesOut: h.framesOut,
	}
}

func (n *Net) nic(host string) *hostNIC {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.hosts[host]
	if !ok {
		bw := n.cfg.Bandwidth
		if o, ok := n.cfg.PerHost[host]; ok {
			bw = o
		}
		h = &hostNIC{egress: shaper{bw: bw}, ingress: shaper{bw: bw}}
		n.hosts[host] = h
	}
	return h
}

// shaper serializes transmissions on one NIC direction.
type shaper struct {
	mu   sync.Mutex
	free time.Time
	bw   float64
}

// reserve books n bytes of transmission and returns the completion time.
// A zero-bandwidth shaper is a no-op returning the current time.
func (s *shaper) reserve(n int) time.Time {
	now := time.Now()
	if s.bw <= 0 {
		return now
	}
	d := time.Duration(float64(n) / s.bw * float64(time.Second))
	s.mu.Lock()
	start := s.free
	if start.Before(now) {
		start = now
	}
	end := start.Add(d)
	s.free = end
	s.mu.Unlock()
	return end
}

// Listen implements transport.Network.
func (n *Net) Listen(addr transport.Addr) (transport.Listener, error) {
	l, err := n.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &listener{net: n, inner: l}, nil
}

// Dial implements transport.Network.
func (n *Net) Dial(local, remote transport.Addr) (transport.Conn, error) {
	c, err := n.inner.Dial(local, remote)
	if err != nil {
		return nil, err
	}
	return n.wrap(c), nil
}

func (n *Net) wrap(c transport.Conn) transport.Conn {
	return &conn{
		Conn:   c,
		net:    n,
		local:  n.nic(c.LocalAddr().Host()),
		remote: n.nic(c.RemoteAddr().Host()),
	}
}

type listener struct {
	net   *Net
	inner transport.Listener
}

func (l *listener) Accept() (transport.Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	return l.net.wrap(c), nil
}

func (l *listener) Close() error         { return l.inner.Close() }
func (l *listener) Addr() transport.Addr { return l.inner.Addr() }

// conn shapes Send; Recv is pass-through (delay is paid by the sender,
// which models a blocking streaming transfer of the frame).
type conn struct {
	transport.Conn
	net    *Net
	local  *hostNIC
	remote *hostNIC
}

func (c *conn) Send(frame []byte) error {
	n := len(frame) + c.net.cfg.FrameOverhead
	egEnd := c.local.egress.reserve(n)
	inEnd := c.remote.ingress.reserve(n)
	deliverAt := egEnd
	if inEnd.After(deliverAt) {
		deliverAt = inEnd
	}
	deliverAt = deliverAt.Add(c.net.cfg.Latency)
	if d := time.Until(deliverAt); d >= c.net.cfg.SleepFloor {
		time.Sleep(d)
	}

	c.local.statMu.Lock()
	c.local.bytesOut += int64(n)
	c.local.framesOut++
	c.local.statMu.Unlock()
	c.remote.statMu.Lock()
	c.remote.bytesIn += int64(n)
	c.remote.framesIn++
	c.remote.statMu.Unlock()

	return c.Conn.Send(frame)
}
