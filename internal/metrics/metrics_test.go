package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSampleMBps(t *testing.T) {
	s := Sample{Bytes: 1 << 20, Duration: time.Second}
	if got := s.MBps(); got != 1 {
		t.Errorf("MBps = %v", got)
	}
	s = Sample{Bytes: 1 << 20, Duration: 0}
	if got := s.MBps(); got != 0 {
		t.Errorf("zero-duration MBps = %v", got)
	}
}

func TestMeterConcurrent(t *testing.T) {
	var m Meter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Record(1024, time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := len(m.Samples()); got != 800 {
		t.Errorf("samples = %d", got)
	}
}

func TestSummarize(t *testing.T) {
	samples := []Sample{
		{Bytes: 1 << 20, Duration: time.Second},     // 1 MB/s
		{Bytes: 2 << 20, Duration: time.Second},     // 2 MB/s
		{Bytes: 3 << 20, Duration: time.Second},     // 3 MB/s
		{Bytes: 2 << 20, Duration: time.Second / 2}, // 4 MB/s
	}
	s := Summarize(samples)
	if s.N != 4 {
		t.Errorf("N = %d", s.N)
	}
	if s.MeanMBps != 2.5 {
		t.Errorf("mean = %v", s.MeanMBps)
	}
	if s.MedianMBps != 2.5 {
		t.Errorf("median = %v", s.MedianMBps)
	}
	if s.TotalBytes != 8<<20 {
		t.Errorf("bytes = %d", s.TotalBytes)
	}
	if z := Summarize(nil); z.N != 0 || z.MeanMBps != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	if p := percentile(vals, 0.5); p != 3 {
		t.Errorf("p50 = %v", p)
	}
	if p := percentile(vals, 0); p != 1 {
		t.Errorf("p0 = %v", p)
	}
	if p := percentile(vals, 1); p != 5 {
		t.Errorf("p100 = %v", p)
	}
	if p := percentile([]float64{7}, 0.9); p != 7 {
		t.Errorf("single = %v", p)
	}
}

func TestTable(t *testing.T) {
	a := &Series{Name: "bsfs", XLabel: "clients", YLabel: "MB/s"}
	a.Add(1, 100, 0)
	a.Add(2, 90, 0)
	b := &Series{Name: "hdfs", XLabel: "clients", YLabel: "MB/s"}
	b.Add(1, 95, 0)
	out := Table("Fig X", a, b)
	if !strings.Contains(out, "# Fig X") || !strings.Contains(out, "bsfs") {
		t.Errorf("table:\n%s", out)
	}
	// Missing cell renders as "-".
	if !strings.Contains(out, "-") {
		t.Errorf("missing cell marker absent:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	s := &Series{Name: "x", XLabel: "n", YLabel: "v"}
	s.Add(1, 2, 0.5)
	out := CSV(s)
	if !strings.Contains(out, "1,2,0.5") {
		t.Errorf("csv:\n%s", out)
	}
}
