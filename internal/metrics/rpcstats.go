package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// RPCStats aggregates per-method RPC statistics for one side of the
// wire (a process's client calls or a server's dispatches): call and
// error counts, bytes moved, and a latency histogram per method name.
// The hot path is one sync.Map load plus atomic adds, so both the rpc
// client and server record every call.
type RPCStats struct {
	methods sync.Map // method name -> *MethodStats
}

// MethodStats is the per-method slot of an RPCStats. The call count is
// the latency histogram's count — every Observe records exactly one
// latency sample — so the counters here are only the bytes moved and
// the rarely-touched error count.
type MethodStats struct {
	errors  atomic.Uint64
	bytes   atomic.Uint64
	Latency Histogram
}

// Method returns the stats slot for a method name, creating it on
// first use.
func (s *RPCStats) Method(name string) *MethodStats {
	if v, ok := s.methods.Load(name); ok {
		return v.(*MethodStats)
	}
	v, _ := s.methods.LoadOrStore(name, &MethodStats{})
	return v.(*MethodStats)
}

// Observe records one call: its latency, the bytes moved in both
// directions, and whether it failed.
func (m *MethodStats) Observe(d time.Duration, bytes int, err error) {
	if bytes > 0 {
		m.bytes.Add(uint64(bytes))
	}
	if err != nil {
		m.errors.Add(1)
	}
	m.Latency.RecordDuration(d)
}

// MethodSnapshot is a point-in-time copy of one method's stats.
type MethodSnapshot struct {
	Calls   uint64           `json:"calls"`
	Errors  uint64           `json:"errors"`
	Bytes   uint64           `json:"bytes"`
	Latency LatencyQuantiles `json:"latency"`
}

// Snapshot copies every method's counters and latency summary.
func (s *RPCStats) Snapshot() map[string]MethodSnapshot {
	out := make(map[string]MethodSnapshot)
	s.methods.Range(func(k, v any) bool {
		m := v.(*MethodStats)
		lat := m.Latency.Snapshot()
		out[k.(string)] = MethodSnapshot{
			Calls:   lat.Count,
			Errors:  m.errors.Load(),
			Bytes:   m.bytes.Load(),
			Latency: lat.Latency(),
		}
		return true
	})
	return out
}
