package metrics

import (
	"bufio"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.99); got != 0 {
		t.Errorf("empty p99 = %v", got)
	}
	if got := h.Snapshot().Latency(); got != (LatencyQuantiles{}) {
		t.Errorf("empty latency = %+v", got)
	}

	h.Record(100)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 100 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
	// A single observation must land inside its power-of-two bucket at
	// every quantile: 100 is in [64, 128).
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if q := s.Quantile(p); q < 64 || q > 128 {
			t.Errorf("single-sample q%.2f = %v, want within [64,128]", p, q)
		}
	}

	// 1000 observations of 1ms plus 10 of 100ms: p50 in the 1ms bucket,
	// p999 in the tail bucket.
	var h2 Histogram
	for i := 0; i < 1000; i++ {
		h2.RecordDuration(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h2.RecordDuration(100 * time.Millisecond)
	}
	q := h2.Snapshot().Latency()
	if q.Count != 1010 {
		t.Errorf("count = %d", q.Count)
	}
	if q.P50Ms > 3 {
		t.Errorf("p50 = %vms, want ~1ms (bucket-bounded)", q.P50Ms)
	}
	if q.P999Ms < 50 {
		t.Errorf("p999 = %vms, want in the 100ms tail", q.P999Ms)
	}
	if q.MaxMs < 100 {
		t.Errorf("max = %vms, want >= 100ms", q.MaxMs)
	}
}

func TestHistogramSub(t *testing.T) {
	var h Histogram
	h.Record(10)
	before := h.Snapshot()
	h.Record(20)
	h.Record(30)
	d := h.Snapshot().Sub(before)
	if d.Count != 2 || d.Sum != 50 {
		t.Errorf("delta count=%d sum=%d, want 2/50", d.Count, d.Sum)
	}
	// A stale "after" clamps to zero rather than underflowing.
	z := before.Sub(h.Snapshot())
	if z.Count != 0 || z.Sum != 0 {
		t.Errorf("clamped delta = %+v", z)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, each = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Snapshots race with writers on purpose; counts must only grow.
	go func() {
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			if c := h.Snapshot().Count; c < last {
				t.Error("snapshot count went backwards")
				return
			} else {
				last = c
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Record(uint64(w*each + i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if c := h.Snapshot().Count; c != workers*each {
		t.Errorf("count = %d, want %d", c, workers*each)
	}
}

func TestRPCStatsObserve(t *testing.T) {
	var s RPCStats
	s.Method("vm.Assign").Observe(2*time.Millisecond, 128, nil)
	s.Method("vm.Assign").Observe(4*time.Millisecond, 256, fmt.Errorf("boom"))
	s.Method("prov.PutPage").Observe(time.Millisecond, 64, nil)

	snap := s.Snapshot()
	m := snap["vm.Assign"]
	if m.Calls != 2 || m.Errors != 1 || m.Bytes != 384 {
		t.Errorf("vm.Assign = %+v", m)
	}
	if m.Latency.Count != 2 || m.Latency.P99Ms <= 0 {
		t.Errorf("vm.Assign latency = %+v", m.Latency)
	}
	if snap["prov.PutPage"].Calls != 1 {
		t.Errorf("prov.PutPage = %+v", snap["prov.PutPage"])
	}
}

func TestReadStatsFailedMapBounded(t *testing.T) {
	var s ReadStats
	const endpoints = 500
	for i := 0; i < endpoints; i++ {
		s.NoteProviderFailure(fmt.Sprintf("prov-%03d", i))
	}
	snap := s.Snapshot()
	if snap.ProviderFailures != endpoints {
		t.Errorf("failures = %d, want %d", snap.ProviderFailures, endpoints)
	}
	if len(snap.FailedProviders) > 64 {
		t.Errorf("failed map holds %d endpoints, cap is 64", len(snap.FailedProviders))
	}
	// No failure may be dropped: per-endpoint counts plus the overflow
	// bucket must sum to the total.
	var sum uint64
	for _, n := range snap.FailedProviders {
		sum += n
	}
	if sum != endpoints {
		t.Errorf("failure counts sum to %d, want %d", sum, endpoints)
	}
	if snap.FailedProviders[FailedOverflowKey] == 0 {
		t.Errorf("overflow bucket empty after %d distinct endpoints", endpoints)
	}
	// A known endpoint keeps counting individually even past the cap.
	s.NoteProviderFailure("prov-000")
	if got := s.Snapshot().FailedProviders["prov-000"]; got != 2 {
		t.Errorf("known endpoint count = %d, want 2", got)
	}
}

func TestRegistrySnapshotAndPrometheus(t *testing.T) {
	r := NewRegistry()

	rs := &ReadStats{}
	rs.AddHit()
	rs.AddHit()
	rs.AddMiss()
	r.AttachReadStats(rs)
	r.AttachReadStats(rs) // duplicate attach must not double-count
	rs2 := &ReadStats{}
	rs2.AddHit()
	r.AttachReadStats(rs2)

	r.Op("blob.append").RecordDuration(3 * time.Millisecond)
	r.SetGauge("client_cache_bytes", func() float64 { return 4096 })
	r.RPCClient.Method("vm.Assign").Observe(time.Millisecond, 100, nil)

	snap := r.Snapshot()
	if snap.Read.Hits != 3 || snap.Read.Misses != 1 {
		t.Errorf("read = %+v", snap.Read)
	}
	if snap.Ops["blob.append"].Count != 1 {
		t.Errorf("ops = %+v", snap.Ops)
	}
	if snap.Gauges["client_cache_bytes"] != 4096 {
		t.Errorf("gauges = %+v", snap.Gauges)
	}

	var b strings.Builder
	snap.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"blobseer_read_cache_hits_total 3",
		"blobseer_client_cache_bytes 4096",
		`blobseer_op_latency_ms{op="blob.append",quantile="0.99"}`,
		`blobseer_rpc_calls_total{side="client",method="vm.Assign"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Exposition-format sanity: every non-comment line is "name{labels} value"
	// with a parseable float value.
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparsable line %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(line[i+1:], "%g", &v); err != nil {
			t.Errorf("line %q: bad value: %v", line, err)
		}
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		var v uint64
		for pb.Next() {
			v += 12345
			h.Record(v)
		}
	})
}
