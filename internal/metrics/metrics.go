// Package metrics provides the measurement plumbing of the experiment
// harness: per-operation throughput samples, aggregate statistics, and
// (x, y) series matching the paper's figures.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Sample is one timed operation.
type Sample struct {
	Bytes    uint64
	Duration time.Duration
}

// MBps returns the sample's throughput in megabytes per second
// (the paper's unit: MB/s, 1 MB = 2^20 bytes).
func (s Sample) MBps() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Bytes) / (1 << 20) / s.Duration.Seconds()
}

// Meter collects samples concurrently.
type Meter struct {
	mu      sync.Mutex
	samples []Sample
}

// Record adds one sample.
func (m *Meter) Record(bytes uint64, d time.Duration) {
	m.mu.Lock()
	m.samples = append(m.samples, Sample{Bytes: bytes, Duration: d})
	m.mu.Unlock()
}

// Time runs fn and records its duration against the given byte count.
func (m *Meter) Time(bytes uint64, fn func() error) error {
	start := time.Now()
	err := fn()
	if err == nil {
		m.Record(bytes, time.Since(start))
	}
	return err
}

// Samples returns a copy of all samples.
func (m *Meter) Samples() []Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Sample(nil), m.samples...)
}

// Summary aggregates samples.
type Summary struct {
	N          int
	TotalBytes uint64
	// MeanMBps is the mean of per-operation throughputs — the paper's
	// "average throughput" metric for Figures 3-5.
	MeanMBps   float64
	MedianMBps float64
	P5MBps     float64
	P95MBps    float64
	// AggregateMBps is total bytes / wall span of the samples run in
	// parallel (needs an externally measured wall duration).
	MeanDuration time.Duration
}

// Summarize reduces a sample set.
func Summarize(samples []Sample) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	tput := make([]float64, 0, len(samples))
	var sum float64
	var bytes uint64
	var dur time.Duration
	for _, s := range samples {
		v := s.MBps()
		tput = append(tput, v)
		sum += v
		bytes += s.Bytes
		dur += s.Duration
	}
	sort.Float64s(tput)
	return Summary{
		N:            len(samples),
		TotalBytes:   bytes,
		MeanMBps:     sum / float64(len(tput)),
		MedianMBps:   percentile(tput, 0.5),
		P5MBps:       percentile(tput, 0.05),
		P95MBps:      percentile(tput, 0.95),
		MeanDuration: dur / time.Duration(len(samples)),
	}
}

// percentile interpolates the p-quantile of sorted values.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Point is one (x, y) measurement of a figure's series.
type Point struct {
	X float64
	Y float64
	// Err is an optional spread indicator (e.g. p95-p5 half-width).
	Err float64
}

// Series is one curve of a figure.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y, err float64) {
	s.Points = append(s.Points, Point{X: x, Y: y, Err: err})
}

// Table renders series as an aligned ASCII table, one row per X value,
// one column per series (the way EXPERIMENTS.md reports figures).
func Table(title string, series ...*Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	if len(series) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-12s", series[0].XLabel)
	for _, s := range series {
		fmt.Fprintf(&b, " %20s", s.Name)
	}
	b.WriteByte('\n')

	// Collect the union of X values in order.
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	for _, x := range xs {
		fmt.Fprintf(&b, "%-12.6g", x)
		for _, s := range series {
			y, ok := s.lookup(x)
			if !ok {
				fmt.Fprintf(&b, " %20s", "-")
				continue
			}
			fmt.Fprintf(&b, " %20.2f", y)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func (s *Series) lookup(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// CSV renders the series in gnuplot-friendly form.
func CSV(series ...*Series) string {
	var b strings.Builder
	for _, s := range series {
		fmt.Fprintf(&b, "# series: %s (%s vs %s)\n", s.Name, s.YLabel, s.XLabel)
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%g,%g,%g\n", p.X, p.Y, p.Err)
		}
	}
	return b.String()
}
