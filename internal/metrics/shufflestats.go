package metrics

import (
	"sync/atomic"
	"time"
)

// ShuffleStats aggregates the intermediate-data counters of one job's
// shuffle store: segments appended to the per-partition BLOBs, segments
// fetched by reducers, and segments fetched after their producing
// tasktracker had already died — data a memory-resident shuffle would
// have lost to a map re-execution. All methods are safe for concurrent
// use.
type ShuffleStats struct {
	segmentsAppended  atomic.Uint64
	bytesAppended     atomic.Uint64
	segmentsFetched   atomic.Uint64
	bytesFetched      atomic.Uint64
	segmentsRecovered atomic.Uint64
	appendLat         Histogram
	fetchLat          Histogram
}

// ObserveAppendLatency records one map append's end-to-end latency
// (all partitions durably appended).
func (s *ShuffleStats) ObserveAppendLatency(d time.Duration) { s.appendLat.RecordDuration(d) }

// ObserveFetchLatency records one reducer segment fetch's latency.
func (s *ShuffleStats) ObserveFetchLatency(d time.Duration) { s.fetchLat.RecordDuration(d) }

// AddAppended counts one segment of n payload bytes appended to an
// intermediate BLOB and published.
func (s *ShuffleStats) AddAppended(n uint64) {
	s.segmentsAppended.Add(1)
	s.bytesAppended.Add(n)
}

// AddFetched counts one segment of n payload bytes fetched by a
// reducer.
func (s *ShuffleStats) AddFetched(n uint64) {
	s.segmentsFetched.Add(1)
	s.bytesFetched.Add(n)
}

// AddRecovered counts one segment fetched after its producing tracker
// died — intermediate data that survived a failure which would have
// forced a map re-execution under the memory backend.
func (s *ShuffleStats) AddRecovered() { s.segmentsRecovered.Add(1) }

// ShuffleSnapshot is a point-in-time copy of ShuffleStats.
type ShuffleSnapshot struct {
	SegmentsAppended  uint64 `json:"segments_appended"`
	BytesAppended     uint64 `json:"bytes_appended"`
	SegmentsFetched   uint64 `json:"segments_fetched"`
	BytesFetched      uint64 `json:"bytes_fetched"`
	SegmentsRecovered uint64 `json:"segments_recovered"`
	// AppendLatency and FetchLatency summarize per-operation latency
	// (map appends across all partitions, reducer segment fetches).
	AppendLatency LatencyQuantiles `json:"append_latency"`
	FetchLatency  LatencyQuantiles `json:"fetch_latency"`
}

// Snapshot returns a copy of the counters. They are read individually,
// so a snapshot taken while tasks run may be skewed by in-flight
// operations.
func (s *ShuffleStats) Snapshot() ShuffleSnapshot {
	return ShuffleSnapshot{
		SegmentsAppended:  s.segmentsAppended.Load(),
		BytesAppended:     s.bytesAppended.Load(),
		SegmentsFetched:   s.segmentsFetched.Load(),
		BytesFetched:      s.bytesFetched.Load(),
		SegmentsRecovered: s.segmentsRecovered.Load(),
		AppendLatency:     s.appendLat.Snapshot().Latency(),
		FetchLatency:      s.fetchLat.Snapshot().Latency(),
	}
}
