package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the bucket count of a power-of-two histogram: bucket 0
// holds the value 0, bucket i (1..64) holds values in [2^(i-1), 2^i).
const histBuckets = 65

// Histogram is a lock-free power-of-two bucket histogram. Recording is
// three atomic adds and a bit scan — cheap enough for every RPC on the
// hot path — and the whole histogram is ~536 bytes, so hot methods
// stay resident in cache next to the data they time. (An earlier
// striped variant traded that footprint for contention relief; the
// memnet cluster is CPU-bound long before histogram cache lines
// contend, and the 8x larger randomly-written footprint measurably
// slowed the data plane's own copies.) Snapshots read the counters
// without stopping writers. Values are dimensionless uint64s — the RPC
// plane records latencies in nanoseconds and uses LatencyQuantiles to
// report milliseconds.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Record adds one observation.
func (h *Histogram) Record(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// RecordDuration adds one latency observation in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Record(uint64(d))
}

// Time runs fn and records its duration.
func (h *Histogram) Time(fn func()) {
	start := time.Now()
	fn()
	h.RecordDuration(time.Since(start))
}

// Snapshot copies the histogram. Counters are read individually, so a
// snapshot taken while writers run may be skewed by in-flight
// observations; counts never go backwards.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [histBuckets]uint64
}

// Sub returns the delta snapshot since prev (for measuring one run of
// a long-lived histogram). Counters that went backwards clamp to zero.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{
		Count: subU64(s.Count, prev.Count),
		Sum:   subU64(s.Sum, prev.Sum),
	}
	for i := range s.Buckets {
		d.Buckets[i] = subU64(s.Buckets[i], prev.Buckets[i])
	}
	return d
}

func subU64(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// bucketBounds returns the value range [lo, hi) of bucket i.
func bucketBounds(i int) (lo, hi float64) {
	switch {
	case i == 0:
		return 0, 1
	case i >= 64:
		return float64(uint64(1) << 63), math.MaxUint64
	default:
		return float64(uint64(1) << (i - 1)), float64(uint64(1) << i)
	}
}

// Mean returns the mean observed value.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the p-quantile (p in [0, 1]) by linear
// interpolation inside the covering power-of-two bucket, so the
// relative error is bounded by the bucket width.
func (s HistogramSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(s.Count)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if target <= next {
			lo, hi := bucketBounds(i)
			frac := (target - cum) / float64(n)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	// Unreachable unless buckets and count disagree mid-snapshot; fall
	// back to the top populated bucket's upper bound.
	for i := histBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] > 0 {
			_, hi := bucketBounds(i)
			return hi
		}
	}
	return 0
}

// Max returns the upper bound of the highest populated bucket — an
// over-estimate of the true maximum by at most 2x.
func (s HistogramSnapshot) Max() float64 {
	for i := histBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] > 0 {
			_, hi := bucketBounds(i)
			return hi
		}
	}
	return 0
}

// LatencyQuantiles reports a nanosecond-valued histogram in
// milliseconds at the percentiles the paper's latency claims need.
type LatencyQuantiles struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}

const nsPerMs = 1e6

// Latency summarizes a snapshot whose values are nanoseconds.
func (s HistogramSnapshot) Latency() LatencyQuantiles {
	if s.Count == 0 {
		return LatencyQuantiles{}
	}
	return LatencyQuantiles{
		Count:  s.Count,
		MeanMs: s.Mean() / nsPerMs,
		P50Ms:  s.Quantile(0.50) / nsPerMs,
		P90Ms:  s.Quantile(0.90) / nsPerMs,
		P99Ms:  s.Quantile(0.99) / nsPerMs,
		P999Ms: s.Quantile(0.999) / nsPerMs,
		MaxMs:  s.Max() / nsPerMs,
	}
}
