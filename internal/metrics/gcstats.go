package metrics

import (
	"sync/atomic"
	"time"
)

// GCStats aggregates the garbage collector's counters: how many
// versions have been retired, how much page data and metadata was
// reclaimed, and how often reader pins held a version back. All
// methods are safe for concurrent use.
type GCStats struct {
	passes            atomic.Uint64
	versionsCollected atomic.Uint64
	blobsDeleted      atomic.Uint64
	pagesReclaimed    atomic.Uint64
	bytesReclaimed    atomic.Uint64
	nodesDeleted      atomic.Uint64
	pinsBlocked       atomic.Uint64
	compactions       atomic.Uint64
	passLat           Histogram
}

// AddPass counts one completed reclaim pass.
func (s *GCStats) AddPass() { s.passes.Add(1) }

// ObservePassLatency records one reclaim pass's wall duration.
func (s *GCStats) ObservePassLatency(d time.Duration) { s.passLat.RecordDuration(d) }

// AddVersionsCollected counts n versions retired by a pass.
func (s *GCStats) AddVersionsCollected(n uint64) { s.versionsCollected.Add(n) }

// AddBlobDeleted counts one whole BLOB fully reclaimed.
func (s *GCStats) AddBlobDeleted() { s.blobsDeleted.Add(1) }

// AddPagesReclaimed counts pages deleted from providers and the bytes
// they held.
func (s *GCStats) AddPagesReclaimed(pages, bytes uint64) {
	s.pagesReclaimed.Add(pages)
	s.bytesReclaimed.Add(bytes)
}

// AddNodesDeleted counts metadata tree nodes removed from the DHT.
func (s *GCStats) AddNodesDeleted(n uint64) { s.nodesDeleted.Add(n) }

// AddPinsBlocked counts versions a reader pin excluded from a scan.
func (s *GCStats) AddPinsBlocked(n uint64) { s.pinsBlocked.Add(n) }

// AddCompaction counts one provider-side auto-compaction triggered by
// a delete batch.
func (s *GCStats) AddCompaction() { s.compactions.Add(1) }

// GCSnapshot is a point-in-time copy of GCStats.
type GCSnapshot struct {
	Passes            uint64 `json:"passes"`
	VersionsCollected uint64 `json:"versions_collected"`
	BlobsDeleted      uint64 `json:"blobs_deleted"`
	PagesReclaimed    uint64 `json:"pages_reclaimed"`
	BytesReclaimed    uint64 `json:"bytes_reclaimed"`
	NodesDeleted      uint64 `json:"nodes_deleted"`
	PinsBlocked       uint64 `json:"pins_blocked"`
	Compactions       uint64 `json:"compactions"`
	// PassLatency summarizes reclaim pass wall durations.
	PassLatency LatencyQuantiles `json:"pass_latency"`
}

// Snapshot returns a copy of the counters. Counters are read
// individually, so a snapshot taken mid-pass may be skewed by
// in-flight work.
func (s *GCStats) Snapshot() GCSnapshot {
	return GCSnapshot{
		Passes:            s.passes.Load(),
		VersionsCollected: s.versionsCollected.Load(),
		BlobsDeleted:      s.blobsDeleted.Load(),
		PagesReclaimed:    s.pagesReclaimed.Load(),
		BytesReclaimed:    s.bytesReclaimed.Load(),
		NodesDeleted:      s.nodesDeleted.Load(),
		PinsBlocked:       s.pinsBlocked.Load(),
		Compactions:       s.compactions.Load(),
		PassLatency:       s.passLat.Snapshot().Latency(),
	}
}
