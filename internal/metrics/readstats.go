package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// ReadStats aggregates the read-path counters of one client: page-cache
// hits and misses, readahead activity, eviction pressure, and provider
// fetch traffic. All methods are safe for concurrent use and cheap
// enough to call on every page access.
type ReadStats struct {
	hits             atomic.Uint64
	misses           atomic.Uint64
	readahead        atomic.Uint64
	evictions        atomic.Uint64
	providerFetches  atomic.Uint64
	providerFailures atomic.Uint64

	mu     sync.Mutex
	failed map[string]uint64 // provider endpoint -> failed fetch count
}

// FailedOverflowKey is the bucket absorbing failures from endpoints
// beyond the per-endpoint tracking cap, so the failure map stays
// bounded under a long-lived client watching a churning provider set.
const FailedOverflowKey = "other"

// maxFailedEndpoints bounds the distinct endpoints tracked
// individually; the cap includes the overflow bucket.
const maxFailedEndpoints = 64

// AddHit counts one page served from the cache (including requests
// de-duplicated onto an in-flight fetch).
func (s *ReadStats) AddHit() { s.hits.Add(1) }

// AddMiss counts one page that had to be fetched from a provider.
func (s *ReadStats) AddMiss() { s.misses.Add(1) }

// AddReadahead counts n pages scheduled by the readahead engine.
func (s *ReadStats) AddReadahead(n uint64) { s.readahead.Add(n) }

// AddEviction counts one page evicted to stay within the cache budget.
func (s *ReadStats) AddEviction() { s.evictions.Add(1) }

// AddProviderFetch counts one GetPage RPC issued to a provider
// (successful or not).
func (s *ReadStats) AddProviderFetch() { s.providerFetches.Add(1) }

// NoteProviderFailure records one failed page fetch against the
// provider endpoint that served it, so operators can spot sick
// replicas. At most maxFailedEndpoints distinct endpoints are tracked;
// failures from further endpoints land in the FailedOverflowKey bucket
// so the map cannot grow without bound under provider churn.
func (s *ReadStats) NoteProviderFailure(addr string) {
	s.providerFailures.Add(1)
	s.mu.Lock()
	if s.failed == nil {
		s.failed = make(map[string]uint64)
	}
	if _, known := s.failed[addr]; !known && len(s.failed) >= maxFailedEndpoints-1 {
		addr = FailedOverflowKey
	}
	s.failed[addr]++
	s.mu.Unlock()
}

// ReadSnapshot is a point-in-time copy of ReadStats.
type ReadSnapshot struct {
	Hits             uint64 `json:"hits"`
	Misses           uint64 `json:"misses"`
	Readahead        uint64 `json:"readahead"`
	Evictions        uint64 `json:"evictions"`
	ProviderFetches  uint64 `json:"provider_fetches"`
	ProviderFailures uint64 `json:"provider_failures"`
	// FailedProviders maps provider endpoints to their failed fetch
	// counts (nil when no fetch ever failed).
	FailedProviders map[string]uint64 `json:"failed_providers,omitempty"`
}

// Snapshot returns a consistent-enough copy of the counters for tests
// and reporting. Counters are read individually, so a snapshot taken
// while readers run may be skewed by in-flight operations.
func (s *ReadStats) Snapshot() ReadSnapshot {
	snap := ReadSnapshot{
		Hits:             s.hits.Load(),
		Misses:           s.misses.Load(),
		Readahead:        s.readahead.Load(),
		Evictions:        s.evictions.Load(),
		ProviderFetches:  s.providerFetches.Load(),
		ProviderFailures: s.providerFailures.Load(),
	}
	s.mu.Lock()
	if len(s.failed) > 0 {
		snap.FailedProviders = make(map[string]uint64, len(s.failed))
		for addr, n := range s.failed {
			snap.FailedProviders[addr] = n
		}
	}
	s.mu.Unlock()
	return snap
}

// FailedProviderAddrs returns the endpoints with at least one recorded
// fetch failure, sorted for stable output.
func (s ReadSnapshot) FailedProviderAddrs() []string {
	out := make([]string, 0, len(s.FailedProviders))
	for addr := range s.FailedProviders {
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}
