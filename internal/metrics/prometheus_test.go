package metrics

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// stubHeat is a fixed HeatSource for export tests.
type stubHeat []HeatEntry

func (s stubHeat) HotPages(n int) []HeatEntry {
	if n > 0 && len(s) > n {
		return s[:n]
	}
	return s
}

var (
	promSample = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (-?[0-9.eE+-]+|NaN)$`)
	promLabel  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)=("(?:\\.|[^"\\])*")(?:,(.*))?$`)
)

// TestWritePrometheusParseBack renders a snapshot carrying every
// family — counters, gauges, heat entries, op summaries, RPC methods —
// and re-parses the exposition line by line: every sample line must
// match the text format, every label value must strconv.Unquote
// cleanly (the writer uses %q), and the declared TYPE lines must cover
// the families that declare them.
func TestWritePrometheusParseBack(t *testing.T) {
	r := NewRegistry()
	r.Op(`op"with\quotes`).Record(1_500_000)
	r.SetGauge("test_gauge", func() float64 { return 4.5 })
	r.AttachHeat("read", stubHeat{
		{Blob: 3, Page: 17, Weight: 12.5, Touches: 40},
		{Blob: 3, Page: 2, Weight: 1.25, Touches: 4},
	})
	r.AttachHeat(`we"ird\source`, stubHeat{{Blob: 1, Page: 1, Weight: 1, Touches: 1}})
	r.RPCClient.Method("vm.Assign").Observe(2*time.Millisecond, 100, nil)

	var b strings.Builder
	r.Snapshot().WritePrometheus(&b)
	out := b.String()

	types := make(map[string]string)
	var samples int
	heatSources := make(map[string]bool)
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch f[3] {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				t.Fatalf("bad type %q in %q", f[3], line)
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line does not parse as a prometheus sample: %q", line)
		}
		samples++
		name, labels := m[1], m[3]
		if _, err := strconv.ParseFloat(m[4], 64); err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		for labels != "" {
			lm := promLabel.FindStringSubmatch(labels)
			if lm == nil {
				t.Fatalf("labels do not parse in %q (at %q)", line, labels)
			}
			val, err := strconv.Unquote(lm[2])
			if err != nil {
				t.Fatalf("label value does not unquote in %q: %v", line, err)
			}
			if name == "blobseer_page_heat" && lm[1] == "source" {
				heatSources[val] = true
			}
			labels = lm[3]
		}
	}
	if samples == 0 {
		t.Fatal("no samples rendered")
	}

	// The typed families must declare their types.
	for name, want := range map[string]string{
		"blobseer_page_heat":                "gauge",
		"blobseer_test_gauge":               "gauge",
		"blobseer_op_latency_ms":            "summary",
		"blobseer_rpc_latency_ms":           "summary",
		"blobseer_read_cache_hits_total":    "counter",
		"blobseer_gc_pages_reclaimed_total": "counter",
	} {
		if got := types[name]; got != want {
			t.Errorf("TYPE %s = %q, want %q", name, got, want)
		}
	}

	// Both heat sources survive the round trip, including the one whose
	// name needs escaping.
	if !heatSources["read"] || !heatSources[`we"ird\source`] {
		t.Errorf("heat sources after parse-back: %v", heatSources)
	}
	if !strings.Contains(out, `blobseer_page_heat{source="read",blob="3",page="17"} 12.5`) {
		t.Errorf("hot page line missing:\n%s", out)
	}
}

// TestRegistryHeatSnapshot pins AttachHeat semantics: snapshots carry
// the live hot set, re-attach replaces, nil detaches.
func TestRegistryHeatSnapshot(t *testing.T) {
	r := NewRegistry()
	if snap := r.Snapshot(); snap.Heat != nil {
		t.Fatalf("heat on empty registry: %v", snap.Heat)
	}
	r.AttachHeat("write", stubHeat{{Blob: 1, Page: 9, Weight: 3, Touches: 3}})
	snap := r.Snapshot()
	if got := snap.Heat["write"]; len(got) != 1 || got[0].Page != 9 {
		t.Fatalf("heat snapshot = %+v", snap.Heat)
	}
	r.AttachHeat("write", stubHeat{{Blob: 1, Page: 10, Weight: 1, Touches: 1}})
	if got := r.Snapshot().Heat["write"]; len(got) != 1 || got[0].Page != 10 {
		t.Fatalf("re-attach did not replace: %+v", got)
	}
	r.AttachHeat("write", nil)
	if snap := r.Snapshot(); snap.Heat != nil {
		t.Fatalf("nil attach did not detach: %v", snap.Heat)
	}
}
