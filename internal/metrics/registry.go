package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// Registry is the unified metrics plane of one process: it owns the
// RPC method histograms of both wire sides, adopts every subsystem's
// counters (read path, GC, shuffle), and carries named operation
// histograms and gauges. One Snapshot captures the whole thing; the
// obs package serves snapshots over HTTP in Prometheus text and JSON.
//
// Default is the process-wide registry: services attach their stats at
// construction so tools (bsfsctl stats, the -metrics-addr endpoint)
// see every subsystem without per-call plumbing. Tests that boot many
// deployments in one process share Default; its counters are sums
// across them, which is what a per-process exporter reports anyway.
type Registry struct {
	// RPCClient and RPCServer hold the per-method histograms of all
	// outbound calls and inbound dispatches recorded in this process.
	RPCClient *RPCStats
	RPCServer *RPCStats

	mu       sync.Mutex
	reads    []*ReadStats
	gcs      []*GCStats
	shuffles []*ShuffleStats
	ops      map[string]*Histogram
	gauges   map[string]func() float64
	heat     map[string]HeatSource
}

// HeatEntry is one page in a heat source's hot-set: a (blob, page) key
// with its decayed weight and raw touch count. Weight units are
// source-defined (page accesses at the default weighting).
type HeatEntry struct {
	Blob    uint64  `json:"blob"`
	Page    uint64  `json:"page"`
	Weight  float64 `json:"weight"`
	Touches uint64  `json:"touches"`
}

// HeatSource exposes a live hot-set; internal/monitor's decaying
// heavy-hitter sketch implements it. HotPages must be safe for
// concurrent use and return entries heaviest first.
type HeatSource interface {
	HotPages(n int) []HeatEntry
}

// AttachHeat registers (or replaces) a named heat source read at
// snapshot time; nil removes it. Conventional names are "read" and
// "write" for the deployment's page-access sketches.
func (r *Registry) AttachHeat(name string, src HeatSource) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.heat == nil {
		r.heat = make(map[string]HeatSource)
	}
	if src == nil {
		delete(r.heat, name)
		return
	}
	r.heat[name] = src
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		RPCClient: &RPCStats{},
		RPCServer: &RPCStats{},
		ops:       make(map[string]*Histogram),
		gauges:    make(map[string]func() float64),
	}
}

// Default is the process-wide registry.
var Default = NewRegistry()

// AttachReadStats adopts a read-path counter set; snapshots sum every
// attached set. Attaching the same set twice is a no-op.
func (r *Registry) AttachReadStats(s *ReadStats) {
	if s == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, have := range r.reads {
		if have == s {
			return
		}
	}
	r.reads = append(r.reads, s)
}

// AttachGCStats adopts a collector counter set (see AttachReadStats).
func (r *Registry) AttachGCStats(s *GCStats) {
	if s == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, have := range r.gcs {
		if have == s {
			return
		}
	}
	r.gcs = append(r.gcs, s)
}

// AttachShuffleStats adopts a shuffle counter set (see AttachReadStats).
func (r *Registry) AttachShuffleStats(s *ShuffleStats) {
	if s == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, have := range r.shuffles {
		if have == s {
			return
		}
	}
	r.shuffles = append(r.shuffles, s)
}

// Op returns the named operation-latency histogram, creating it on
// first use. Subsystems record end-to-end operation latencies here
// (e.g. "blob.append", "gc.pass") so the export plane reports p99s per
// operation, not just per RPC method.
func (r *Registry) Op(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.ops[name]
	if !ok {
		h = &Histogram{}
		r.ops[name] = h
	}
	return h
}

// OpSnapshot returns the named operation histogram's current snapshot
// without creating it: the threshold query the flight recorder's tail
// sampler and the SLO watchdog use. ok is false when no subsystem has
// recorded the operation yet.
func (r *Registry) OpSnapshot(name string) (HistogramSnapshot, bool) {
	r.mu.Lock()
	h, ok := r.ops[name]
	r.mu.Unlock()
	if !ok {
		return HistogramSnapshot{}, false
	}
	return h.Snapshot(), true
}

// OpNames lists the operation histograms recorded so far, sorted.
func (r *Registry) OpNames() []string {
	r.mu.Lock()
	names := make([]string, 0, len(r.ops))
	for k := range r.ops {
		names = append(names, k)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// SetGauge registers (or replaces) a named gauge read at snapshot
// time. Gauge functions must be safe to call concurrently.
func (r *Registry) SetGauge(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if fn == nil {
		delete(r.gauges, name)
		return
	}
	r.gauges[name] = fn
}

// RegistrySnapshot is one consistent-enough copy of everything the
// registry owns; it marshals directly to the /metrics.json payload.
type RegistrySnapshot struct {
	Read      ReadSnapshot                `json:"read"`
	GC        GCSnapshot                  `json:"gc"`
	Shuffle   ShuffleSnapshot             `json:"shuffle"`
	Ops       map[string]LatencyQuantiles `json:"ops,omitempty"`
	Gauges    map[string]float64          `json:"gauges,omitempty"`
	Heat      map[string][]HeatEntry      `json:"heat,omitempty"`
	RPCClient map[string]MethodSnapshot   `json:"rpc_client,omitempty"`
	RPCServer map[string]MethodSnapshot   `json:"rpc_server,omitempty"`
}

// snapshotHeatTopK bounds the per-source hot-set captured in a
// snapshot; the /cluster endpoint serves deeper views.
const snapshotHeatTopK = 20

// Snapshot captures every attached subsystem, summing multiple
// attached sets of the same kind.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	reads := append([]*ReadStats(nil), r.reads...)
	gcs := append([]*GCStats(nil), r.gcs...)
	shuffles := append([]*ShuffleStats(nil), r.shuffles...)
	ops := make(map[string]*Histogram, len(r.ops))
	for k, v := range r.ops {
		ops[k] = v
	}
	gauges := make(map[string]func() float64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	heat := make(map[string]HeatSource, len(r.heat))
	for k, v := range r.heat {
		heat[k] = v
	}
	r.mu.Unlock()

	snap := RegistrySnapshot{
		RPCClient: r.RPCClient.Snapshot(),
		RPCServer: r.RPCServer.Snapshot(),
	}
	for _, s := range reads {
		snap.Read = snap.Read.merge(s.Snapshot())
	}
	for _, s := range gcs {
		snap.GC = snap.GC.merge(s.Snapshot())
	}
	for _, s := range shuffles {
		snap.Shuffle = snap.Shuffle.merge(s.Snapshot())
	}
	if len(ops) > 0 {
		snap.Ops = make(map[string]LatencyQuantiles, len(ops))
		for k, h := range ops {
			snap.Ops[k] = h.Snapshot().Latency()
		}
	}
	if len(gauges) > 0 {
		snap.Gauges = make(map[string]float64, len(gauges))
		for k, fn := range gauges {
			snap.Gauges[k] = fn()
		}
	}
	if len(heat) > 0 {
		snap.Heat = make(map[string][]HeatEntry, len(heat))
		for k, src := range heat {
			snap.Heat[k] = src.HotPages(snapshotHeatTopK)
		}
	}
	return snap
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format, deterministically ordered.
func (s RegistrySnapshot) WritePrometheus(w io.Writer) {
	counter := func(name string, v uint64, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("blobseer_read_cache_hits_total", s.Read.Hits, "Pages served from the shared page cache.")
	counter("blobseer_read_cache_misses_total", s.Read.Misses, "Pages fetched from providers.")
	counter("blobseer_read_readahead_pages_total", s.Read.Readahead, "Pages scheduled by readahead.")
	counter("blobseer_read_cache_evictions_total", s.Read.Evictions, "Pages evicted under the cache budget.")
	counter("blobseer_read_provider_fetches_total", s.Read.ProviderFetches, "GetPage RPCs issued to providers.")
	counter("blobseer_read_provider_failures_total", s.Read.ProviderFailures, "Failed provider page fetches.")
	counter("blobseer_gc_passes_total", s.GC.Passes, "Completed reclaim passes.")
	counter("blobseer_gc_versions_collected_total", s.GC.VersionsCollected, "Versions retired by the collector.")
	counter("blobseer_gc_pages_reclaimed_total", s.GC.PagesReclaimed, "Pages deleted from providers.")
	counter("blobseer_gc_bytes_reclaimed_total", s.GC.BytesReclaimed, "Bytes reclaimed from providers.")
	counter("blobseer_shuffle_segments_appended_total", s.Shuffle.SegmentsAppended, "Map-output segments appended.")
	counter("blobseer_shuffle_segments_fetched_total", s.Shuffle.SegmentsFetched, "Map-output segments fetched by reducers.")
	counter("blobseer_shuffle_segments_recovered_total", s.Shuffle.SegmentsRecovered, "Segments served after their producing tracker died.")

	if len(s.Gauges) > 0 {
		names := make([]string, 0, len(s.Gauges))
		for k := range s.Gauges {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			fmt.Fprintf(w, "# TYPE blobseer_%s gauge\nblobseer_%s %g\n", k, k, s.Gauges[k])
		}
	}

	if len(s.Heat) > 0 {
		fmt.Fprintf(w, "# HELP blobseer_page_heat Decayed page-access weight from the heat sketches.\n# TYPE blobseer_page_heat gauge\n")
		names := make([]string, 0, len(s.Heat))
		for k := range s.Heat {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			for _, e := range s.Heat[k] {
				fmt.Fprintf(w, "blobseer_page_heat{source=%q,blob=\"%d\",page=\"%d\"} %g\n", k, e.Blob, e.Page, e.Weight)
			}
		}
	}

	writeLatency := func(metric string, labels string, q LatencyQuantiles) {
		sep := ""
		if labels != "" {
			sep = ","
		}
		fmt.Fprintf(w, "%s{%s%squantile=\"0.5\"} %g\n", metric, labels, sep, q.P50Ms)
		fmt.Fprintf(w, "%s{%s%squantile=\"0.9\"} %g\n", metric, labels, sep, q.P90Ms)
		fmt.Fprintf(w, "%s{%s%squantile=\"0.99\"} %g\n", metric, labels, sep, q.P99Ms)
		fmt.Fprintf(w, "%s{%s%squantile=\"0.999\"} %g\n", metric, labels, sep, q.P999Ms)
	}

	if len(s.Ops) > 0 {
		fmt.Fprintf(w, "# HELP blobseer_op_latency_ms Operation latency quantiles in milliseconds.\n# TYPE blobseer_op_latency_ms summary\n")
		names := make([]string, 0, len(s.Ops))
		for k := range s.Ops {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			writeLatency("blobseer_op_latency_ms", fmt.Sprintf("op=%q", k), s.Ops[k])
			fmt.Fprintf(w, "blobseer_op_latency_ms_count{op=%q} %d\n", k, s.Ops[k].Count)
		}
	}

	writeSide := func(side string, methods map[string]MethodSnapshot) {
		if len(methods) == 0 {
			return
		}
		names := make([]string, 0, len(methods))
		for k := range methods {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			m := methods[k]
			labels := fmt.Sprintf("side=%q,method=%q", side, k)
			fmt.Fprintf(w, "blobseer_rpc_calls_total{%s} %d\n", labels, m.Calls)
			fmt.Fprintf(w, "blobseer_rpc_errors_total{%s} %d\n", labels, m.Errors)
			fmt.Fprintf(w, "blobseer_rpc_bytes_total{%s} %d\n", labels, m.Bytes)
			writeLatency("blobseer_rpc_latency_ms", labels, m.Latency)
		}
	}
	fmt.Fprintf(w, "# HELP blobseer_rpc_latency_ms Per-method RPC latency quantiles in milliseconds.\n# TYPE blobseer_rpc_latency_ms summary\n")
	writeSide("client", s.RPCClient)
	writeSide("server", s.RPCServer)
}

// merge sums two read snapshots.
func (a ReadSnapshot) merge(b ReadSnapshot) ReadSnapshot {
	out := ReadSnapshot{
		Hits:             a.Hits + b.Hits,
		Misses:           a.Misses + b.Misses,
		Readahead:        a.Readahead + b.Readahead,
		Evictions:        a.Evictions + b.Evictions,
		ProviderFetches:  a.ProviderFetches + b.ProviderFetches,
		ProviderFailures: a.ProviderFailures + b.ProviderFailures,
	}
	if len(a.FailedProviders)+len(b.FailedProviders) > 0 {
		out.FailedProviders = make(map[string]uint64, len(a.FailedProviders)+len(b.FailedProviders))
		for k, v := range a.FailedProviders {
			out.FailedProviders[k] += v
		}
		for k, v := range b.FailedProviders {
			out.FailedProviders[k] += v
		}
	}
	return out
}

// merge sums two GC snapshots.
func (a GCSnapshot) merge(b GCSnapshot) GCSnapshot {
	return GCSnapshot{
		Passes:            a.Passes + b.Passes,
		VersionsCollected: a.VersionsCollected + b.VersionsCollected,
		BlobsDeleted:      a.BlobsDeleted + b.BlobsDeleted,
		PagesReclaimed:    a.PagesReclaimed + b.PagesReclaimed,
		BytesReclaimed:    a.BytesReclaimed + b.BytesReclaimed,
		NodesDeleted:      a.NodesDeleted + b.NodesDeleted,
		PinsBlocked:       a.PinsBlocked + b.PinsBlocked,
		Compactions:       a.Compactions + b.Compactions,
		PassLatency:       mergeLatency(a.PassLatency, b.PassLatency),
	}
}

// merge sums two shuffle snapshots.
func (a ShuffleSnapshot) merge(b ShuffleSnapshot) ShuffleSnapshot {
	return ShuffleSnapshot{
		SegmentsAppended:  a.SegmentsAppended + b.SegmentsAppended,
		BytesAppended:     a.BytesAppended + b.BytesAppended,
		SegmentsFetched:   a.SegmentsFetched + b.SegmentsFetched,
		BytesFetched:      a.BytesFetched + b.BytesFetched,
		SegmentsRecovered: a.SegmentsRecovered + b.SegmentsRecovered,
		AppendLatency:     mergeLatency(a.AppendLatency, b.AppendLatency),
		FetchLatency:      mergeLatency(a.FetchLatency, b.FetchLatency),
	}
}

// mergeLatency combines two latency summaries count-weighted. Exact
// only for the mean; the percentiles of a sum of distributions are not
// derivable from the parts, so this is an approximation used when a
// registry has several attached stats sets of the same kind (multiple
// jobs or deployments in one process). Max stays exact.
func mergeLatency(a, b LatencyQuantiles) LatencyQuantiles {
	if a.Count == 0 {
		return b
	}
	if b.Count == 0 {
		return a
	}
	wa := float64(a.Count) / float64(a.Count+b.Count)
	wb := 1 - wa
	return LatencyQuantiles{
		Count:  a.Count + b.Count,
		MeanMs: a.MeanMs*wa + b.MeanMs*wb,
		P50Ms:  a.P50Ms*wa + b.P50Ms*wb,
		P90Ms:  a.P90Ms*wa + b.P90Ms*wb,
		P99Ms:  a.P99Ms*wa + b.P99Ms*wb,
		P999Ms: a.P999Ms*wa + b.P999Ms*wb,
		MaxMs:  math.Max(a.MaxMs, b.MaxMs),
	}
}
