// Package rpc provides the minimal multiplexed request/response layer
// used by every service in the system (version manager, provider
// manager, providers, metadata providers, namespace managers, namenode,
// datanodes, job tracker, task trackers).
//
// One Client keeps a single transport connection per (local, remote)
// pair and multiplexes concurrent calls over it with request IDs, like
// the persistent peer connections of the original BlobSeer service.
// A Server dispatches each inbound request to a registered handler in
// its own goroutine, so slow page transfers never block metadata calls.
//
// The layer is also the system's instrumentation choke point: every
// request frame carries a wire.TraceContext, and both sides of every
// call record per-method latency/bytes/error counters into the default
// metrics registry, keyed by the Method's registered name.
package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"blobseer/internal/metrics"
	"blobseer/internal/obs"
	"blobseer/internal/transport"
	"blobseer/internal/wire"
)

// Frame kinds.
const (
	kindRequest  = 1
	kindResponse = 2
)

// Errors.
var (
	ErrUnknownMethod = errors.New("rpc: unknown method")
	ErrServerClosed  = errors.New("rpc: server closed")
	ErrConnLost      = errors.New("rpc: connection lost")
)

// Method identifies an RPC method: the compact id that goes on the
// wire plus the human-readable name that keys metrics and span labels.
// Services declare their method tables as Method values so the id
// space stays explicit while every histogram and trace is legible.
type Method struct {
	ID   uint32
	Name string

	// spanLabel ("rpc:"+Name) and stats (the client-side slot in the
	// default registry) are resolved once at table-construction time so
	// the per-call path does no concatenation or map lookup.
	spanLabel string
	stats     *metrics.MethodStats
}

func (m Method) String() string {
	if m.Name != "" {
		return m.Name
	}
	return fmt.Sprintf("method(%d)", m.ID)
}

// M is shorthand for constructing a Method.
func M(id uint32, name string) Method {
	return Method{
		ID:        id,
		Name:      name,
		spanLabel: "rpc:" + name,
		stats:     metrics.Default.RPCClient.Method(name),
	}
}

// HandlerFunc serves one request. The Reader is positioned at the
// request body; the returned Marshaler is the response body. A non-nil
// error is transmitted to the caller instead of the body.
type HandlerFunc func(r *wire.Reader) (wire.Marshaler, error)

// Server serves RPC requests on one endpoint address.
type Server struct {
	addr     transport.Addr
	listener transport.Listener

	reqCh chan request
	quit  chan struct{}

	mu       sync.Mutex
	handlers map[uint32]handlerEntry
	conns    map[transport.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// request is one decoded frame handed from a connection reader to a
// dispatch worker.
type request struct {
	c      transport.Conn
	id     uint64
	method uint32
	tc     wire.TraceContext
	reqLen int
	r      *wire.Reader
}

// dispatchWorkers is how many long-lived dispatch goroutines a server
// keeps. Reusing workers keeps their stacks grown across requests —
// spawning a fresh goroutine per request makes every handler chain
// re-pay stack-growth copies, which profiles as runtime.newstack on
// the busiest servers. Requests beyond the pool overflow to a spawned
// goroutine, so a full pool degrades to the old behavior instead of
// queueing behind a blocked handler.
const dispatchWorkers = 8

// NewServer binds addr on net and starts accepting. Handlers may be
// registered before or after; requests for unregistered methods fail
// with ErrUnknownMethod.
func NewServer(net transport.Network, addr transport.Addr) (*Server, error) {
	l, err := net.Listen(addr)
	if err != nil {
		return nil, fmt.Errorf("rpc server %s: %w", addr, err)
	}
	s := &Server{
		addr:     addr,
		listener: l,
		reqCh:    make(chan request),
		quit:     make(chan struct{}),
		handlers: make(map[uint32]handlerEntry),
		conns:    make(map[transport.Conn]struct{}),
	}
	s.wg.Add(1 + dispatchWorkers)
	go s.acceptLoop()
	for i := 0; i < dispatchWorkers; i++ {
		go s.dispatchWorker()
	}
	return s, nil
}

func (s *Server) dispatchWorker() {
	defer s.wg.Done()
	for {
		select {
		case req := <-s.reqCh:
			s.dispatch(req.c, req.id, req.method, req.tc, req.reqLen, req.r)
		case <-s.quit:
			return
		}
	}
}

// Addr returns the server's endpoint address.
func (s *Server) Addr() transport.Addr { return s.addr }

// handlerEntry pairs a handler with its method's display strings and
// stats slot, all resolved once at registration so dispatch does no
// string building or map probing beyond the one id lookup.
type handlerEntry struct {
	h         HandlerFunc
	name      string
	spanLabel string // "serve:"+name
	stats     *metrics.MethodStats
}

// Handle registers h for the given method.
func (s *Server) Handle(method Method, h HandlerFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method.ID] = handlerEntry{
		h:         h,
		name:      method.Name,
		spanLabel: "serve:" + method.Name,
		stats:     metrics.Default.RPCServer.Method(method.Name),
	}
}

// Close stops the server and tears down live connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]transport.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	close(s.quit)
	s.listener.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

func (s *Server) serveConn(c transport.Conn) {
	defer s.wg.Done()
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	for {
		frame, err := c.Recv()
		if err != nil {
			return
		}
		r := wire.NewReader(frame)
		kind := r.Uvarint()
		id := r.Uvarint()
		method := r.Uvarint()
		var tc wire.TraceContext
		if err := tc.DecodeFrom(r); err != nil || kind != kindRequest {
			// Corrupt stream: drop the connection, and say so — a
			// silent teardown here looks like a network fault upstream.
			obs.Log.Warnf("rpc %s: corrupt request frame (%d bytes), dropping connection", s.addr, len(frame))
			return
		}
		req := request{c: c, id: id, method: uint32(method), tc: tc, reqLen: len(frame), r: r}
		select {
		case s.reqCh <- req:
		default:
			// Every worker is busy (or blocked in a handler): spawn
			// rather than queue, so one slow handler can never stall
			// the requests behind it.
			go s.dispatch(c, id, uint32(method), tc, len(frame), r)
		}
	}
}

// unknownEntry builds the stats/label entry for an unregistered method
// id. Kept out of dispatch so the cold Sprintf path doesn't widen the
// frame of every per-request goroutine.
//
//go:noinline
func unknownEntry(method uint32) handlerEntry {
	name := fmt.Sprintf("method(%d)", method)
	return handlerEntry{
		name:      name,
		spanLabel: "serve:" + name,
		stats:     metrics.Default.RPCServer.Method(name),
	}
}

func (s *Server) dispatch(c transport.Conn, id uint64, method uint32, tc wire.TraceContext, reqLen int, r *wire.Reader) {
	s.mu.Lock()
	ent, known := s.handlers[method]
	s.mu.Unlock()
	if !known {
		ent = unknownEntry(method)
	}

	span := obs.StartRemote(tc.Trace, tc.Span, ent.spanLabel, string(s.addr))
	start := time.Now()

	var body wire.Marshaler
	var err error
	if ent.h == nil {
		err = fmt.Errorf("%w: %d at %s", ErrUnknownMethod, method, s.addr)
	} else {
		body, err = ent.h(r)
	}

	resp := wire.AppendUvarint(nil, kindResponse)
	resp = wire.AppendUvarint(resp, id)
	resp = wire.AppendError(resp, err)
	if err == nil && body != nil {
		resp = body.AppendTo(resp)
	}

	ent.stats.Observe(time.Since(start), reqLen+len(resp), err)
	span.End(err)

	if serr := c.Send(resp); serr != nil {
		// The peer went away mid-response; the caller will observe a
		// lost connection, but record that the reply was dropped.
		obs.Log.Debugf("rpc %s: drop response for %s: %v", s.addr, ent.name, serr)
	}
}

// Client issues calls to one remote endpoint. It is safe for concurrent
// use; concurrent calls are multiplexed over a single connection.
type Client struct {
	net    transport.Network
	local  transport.Addr
	remote transport.Addr

	mu      sync.Mutex
	conn    transport.Conn
	nextID  uint64
	pending map[uint64]chan callResult
	closed  bool
}

type callResult struct {
	frame []byte // positioned response body (after header decode)
	body  *wire.Reader
	err   error
}

// NewClient returns a client for remote; the connection is established
// lazily on first call and re-established after failures.
func NewClient(net transport.Network, local, remote transport.Addr) *Client {
	return &Client{
		net:     net,
		local:   local,
		remote:  remote,
		pending: make(map[uint64]chan callResult),
	}
}

// Remote returns the remote endpoint address.
func (c *Client) Remote() transport.Addr { return c.remote }

// Close tears down the connection; in-flight calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	conn := c.conn
	c.conn = nil
	pend := c.pending
	c.pending = make(map[uint64]chan callResult)
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	for _, ch := range pend {
		ch <- callResult{err: ErrConnLost}
	}
	return nil
}

// ensureConn returns a live connection, dialing if necessary.
func (c *Client) ensureConn() (transport.Conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrConnLost
	}
	if c.conn != nil {
		return c.conn, nil
	}
	// The dial is intentionally serialized under c.mu: every contender
	// needs this same connection and would block on the dial's outcome
	// regardless; racing dials would leak connections.
	//lint:lockhold contenders need this conn and block on the dial's outcome regardless; racing dials would leak connections
	conn, err := c.net.Dial(c.local, c.remote)
	if err != nil {
		return nil, fmt.Errorf("rpc dial %s: %w", c.remote, err)
	}
	c.conn = conn
	go c.recvLoop(conn)
	return conn, nil
}

func (c *Client) recvLoop(conn transport.Conn) {
	for {
		frame, err := conn.Recv()
		if err != nil {
			c.failConn(conn, ErrConnLost)
			return
		}
		r := wire.NewReader(frame)
		kind := r.Uvarint()
		id := r.Uvarint()
		rerr := r.Error()
		if r.Err() != nil || kind != kindResponse {
			c.failConn(conn, fmt.Errorf("rpc: corrupt response from %s", c.remote))
			return
		}
		c.mu.Lock()
		ch := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ch != nil {
			ch <- callResult{frame: frame, body: r, err: rerr}
		}
	}
}

// failConn fails every pending call and drops the connection so the
// next call redials. It sweeps pending only while conn is still the
// current connection: both the send path and the receive loop report
// the same dead conn, and the late report must not fail calls that
// were already retried over a fresh connection.
func (c *Client) failConn(conn transport.Conn, err error) {
	conn.Close()
	c.mu.Lock()
	if c.conn != conn {
		c.mu.Unlock()
		return
	}
	c.conn = nil
	pend := c.pending
	c.pending = make(map[uint64]chan callResult)
	c.mu.Unlock()
	for _, ch := range pend {
		ch <- callResult{err: err}
	}
}

// Call invokes method with request body req and decodes the response
// into resp (which may be nil when no body is expected). It respects
// ctx cancellation and deadlines. When ctx carries an active trace the
// call becomes a child span and its identity rides the request frame.
//
// The instrumentation is folded into this one function rather than a
// wrapper: a wrapper frame would sit on every in-flight call's stack
// for the whole wait, and the per-request goroutines here are exactly
// the stacks the runtime is busiest copying.
func (c *Client) Call(ctx context.Context, method Method, req wire.Marshaler, resp wire.Unmarshaler) (err error) {
	start := time.Now()
	if method.stats == nil { // Method literal built without M()
		method.spanLabel = "rpc:" + method.Name
		method.stats = metrics.Default.RPCClient.Method(method.Name)
	}
	span := obs.StartChild(ctx, method.spanLabel)
	var tc wire.TraceContext
	if span != nil {
		tc = wire.TraceContext{Trace: span.Trace, Span: span.ID}
		span.Annotate("-> %s", c.remote)
	}
	nbytes := 0
	defer func() {
		method.stats.Observe(time.Since(start), nbytes, err)
		span.End(err)
	}()

	conn, err := c.ensureConn()
	if err != nil {
		return err
	}

	c.mu.Lock()
	c.nextID++
	id := c.nextID
	ch := make(chan callResult, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	frame := wire.AppendUvarint(nil, kindRequest)
	frame = wire.AppendUvarint(frame, id)
	frame = wire.AppendUvarint(frame, uint64(method.ID))
	frame = tc.AppendTo(frame)
	if req != nil {
		frame = req.AppendTo(frame)
	}
	nbytes = len(frame)

	if err := conn.Send(frame); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		c.failConn(conn, ErrConnLost)
		return fmt.Errorf("rpc call %s/%s: %w", c.remote, method, ErrConnLost)
	}

	select {
	case res := <-ch:
		nbytes += len(res.frame)
		if res.err != nil {
			return res.err
		}
		if resp == nil {
			return nil
		}
		if err := resp.DecodeFrom(res.body); err != nil {
			return fmt.Errorf("rpc call %s/%s: decode response: %w", c.remote, method, err)
		}
		return nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return ctx.Err()
	}
}

// Pool caches one Client per remote address for a fixed local address.
// Services use it to talk to many peers (providers, metadata providers)
// without connection churn.
type Pool struct {
	net   transport.Network
	local transport.Addr

	mu      sync.Mutex
	clients map[transport.Addr]*Client
	closed  bool
}

// NewPool returns a client pool dialing from local.
func NewPool(net transport.Network, local transport.Addr) *Pool {
	return &Pool{net: net, local: local, clients: make(map[transport.Addr]*Client)}
}

// Get returns the cached client for remote, creating it if needed.
func (p *Pool) Get(remote transport.Addr) *Client {
	p.mu.Lock()
	defer p.mu.Unlock()
	cl, ok := p.clients[remote]
	if !ok {
		cl = NewClient(p.net, p.local, remote)
		p.clients[remote] = cl
	}
	return cl
}

// Call is shorthand for Get(remote).Call(...).
func (p *Pool) Call(ctx context.Context, remote transport.Addr, method Method, req wire.Marshaler, resp wire.Unmarshaler) error {
	return p.Get(remote).Call(ctx, method, req, resp)
}

// Close closes every cached client.
func (p *Pool) Close() error {
	p.mu.Lock()
	cls := make([]*Client, 0, len(p.clients))
	for _, cl := range p.clients {
		cls = append(cls, cl)
	}
	p.clients = make(map[transport.Addr]*Client)
	p.closed = true
	p.mu.Unlock()
	for _, cl := range cls {
		cl.Close()
	}
	return nil
}
