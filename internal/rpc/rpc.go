// Package rpc provides the minimal multiplexed request/response layer
// used by every service in the system (version manager, provider
// manager, providers, metadata providers, namespace managers, namenode,
// datanodes, job tracker, task trackers).
//
// One Client keeps a single transport connection per (local, remote)
// pair and multiplexes concurrent calls over it with request IDs, like
// the persistent peer connections of the original BlobSeer service.
// A Server dispatches each inbound request to a registered handler in
// its own goroutine, so slow page transfers never block metadata calls.
package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"blobseer/internal/transport"
	"blobseer/internal/wire"
)

// Frame kinds.
const (
	kindRequest  = 1
	kindResponse = 2
)

// Errors.
var (
	ErrUnknownMethod = errors.New("rpc: unknown method")
	ErrServerClosed  = errors.New("rpc: server closed")
	ErrConnLost      = errors.New("rpc: connection lost")
)

// HandlerFunc serves one request. The Reader is positioned at the
// request body; the returned Marshaler is the response body. A non-nil
// error is transmitted to the caller instead of the body.
type HandlerFunc func(r *wire.Reader) (wire.Marshaler, error)

// Server serves RPC requests on one endpoint address.
type Server struct {
	addr     transport.Addr
	listener transport.Listener

	mu       sync.Mutex
	handlers map[uint32]HandlerFunc
	conns    map[transport.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer binds addr on net and starts accepting. Handlers may be
// registered before or after; requests for unregistered methods fail
// with ErrUnknownMethod.
func NewServer(net transport.Network, addr transport.Addr) (*Server, error) {
	l, err := net.Listen(addr)
	if err != nil {
		return nil, fmt.Errorf("rpc server %s: %w", addr, err)
	}
	s := &Server{
		addr:     addr,
		listener: l,
		handlers: make(map[uint32]HandlerFunc),
		conns:    make(map[transport.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's endpoint address.
func (s *Server) Addr() transport.Addr { return s.addr }

// Handle registers h for the given method id.
func (s *Server) Handle(method uint32, h HandlerFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// Close stops the server and tears down live connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]transport.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	s.listener.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

func (s *Server) serveConn(c transport.Conn) {
	defer s.wg.Done()
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	for {
		frame, err := c.Recv()
		if err != nil {
			return
		}
		r := wire.NewReader(frame)
		kind := r.Uvarint()
		id := r.Uvarint()
		method := r.Uvarint()
		if r.Err() != nil || kind != kindRequest {
			return // corrupt stream; drop the connection
		}
		go s.dispatch(c, id, uint32(method), r)
	}
}

func (s *Server) dispatch(c transport.Conn, id uint64, method uint32, r *wire.Reader) {
	s.mu.Lock()
	h := s.handlers[method]
	s.mu.Unlock()

	var body wire.Marshaler
	var err error
	if h == nil {
		err = fmt.Errorf("%w: %d at %s", ErrUnknownMethod, method, s.addr)
	} else {
		body, err = h(r)
	}

	resp := wire.AppendUvarint(nil, kindResponse)
	resp = wire.AppendUvarint(resp, id)
	resp = wire.AppendError(resp, err)
	if err == nil && body != nil {
		resp = body.AppendTo(resp)
	}
	// A failed send means the peer went away; nothing to do.
	_ = c.Send(resp)
}

// Client issues calls to one remote endpoint. It is safe for concurrent
// use; concurrent calls are multiplexed over a single connection.
type Client struct {
	net    transport.Network
	local  transport.Addr
	remote transport.Addr

	mu      sync.Mutex
	conn    transport.Conn
	nextID  uint64
	pending map[uint64]chan callResult
	closed  bool
}

type callResult struct {
	frame []byte // positioned response body (after header decode)
	body  *wire.Reader
	err   error
}

// NewClient returns a client for remote; the connection is established
// lazily on first call and re-established after failures.
func NewClient(net transport.Network, local, remote transport.Addr) *Client {
	return &Client{
		net:     net,
		local:   local,
		remote:  remote,
		pending: make(map[uint64]chan callResult),
	}
}

// Remote returns the remote endpoint address.
func (c *Client) Remote() transport.Addr { return c.remote }

// Close tears down the connection; in-flight calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	conn := c.conn
	c.conn = nil
	pend := c.pending
	c.pending = make(map[uint64]chan callResult)
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	for _, ch := range pend {
		ch <- callResult{err: ErrConnLost}
	}
	return nil
}

// ensureConn returns a live connection, dialing if necessary.
func (c *Client) ensureConn() (transport.Conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrConnLost
	}
	if c.conn != nil {
		return c.conn, nil
	}
	conn, err := c.net.Dial(c.local, c.remote)
	if err != nil {
		return nil, fmt.Errorf("rpc dial %s: %w", c.remote, err)
	}
	c.conn = conn
	go c.recvLoop(conn)
	return conn, nil
}

func (c *Client) recvLoop(conn transport.Conn) {
	for {
		frame, err := conn.Recv()
		if err != nil {
			c.failConn(conn, ErrConnLost)
			return
		}
		r := wire.NewReader(frame)
		kind := r.Uvarint()
		id := r.Uvarint()
		rerr := r.Error()
		if r.Err() != nil || kind != kindResponse {
			c.failConn(conn, fmt.Errorf("rpc: corrupt response from %s", c.remote))
			return
		}
		c.mu.Lock()
		ch := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ch != nil {
			ch <- callResult{frame: frame, body: r, err: rerr}
		}
	}
}

// failConn fails every pending call and drops the connection so the
// next call redials. It sweeps pending only while conn is still the
// current connection: both the send path and the receive loop report
// the same dead conn, and the late report must not fail calls that
// were already retried over a fresh connection.
func (c *Client) failConn(conn transport.Conn, err error) {
	conn.Close()
	c.mu.Lock()
	if c.conn != conn {
		c.mu.Unlock()
		return
	}
	c.conn = nil
	pend := c.pending
	c.pending = make(map[uint64]chan callResult)
	c.mu.Unlock()
	for _, ch := range pend {
		ch <- callResult{err: err}
	}
}

// Call invokes method with request body req and decodes the response
// into resp (which may be nil when no body is expected). It respects
// ctx cancellation and deadlines.
func (c *Client) Call(ctx context.Context, method uint32, req wire.Marshaler, resp wire.Unmarshaler) error {
	conn, err := c.ensureConn()
	if err != nil {
		return err
	}

	c.mu.Lock()
	c.nextID++
	id := c.nextID
	ch := make(chan callResult, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	frame := wire.AppendUvarint(nil, kindRequest)
	frame = wire.AppendUvarint(frame, id)
	frame = wire.AppendUvarint(frame, uint64(method))
	if req != nil {
		frame = req.AppendTo(frame)
	}

	if err := conn.Send(frame); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		c.failConn(conn, ErrConnLost)
		return fmt.Errorf("rpc call %s/%d: %w", c.remote, method, ErrConnLost)
	}

	select {
	case res := <-ch:
		if res.err != nil {
			return res.err
		}
		if resp == nil {
			return nil
		}
		if err := resp.DecodeFrom(res.body); err != nil {
			return fmt.Errorf("rpc call %s/%d: decode response: %w", c.remote, method, err)
		}
		return nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return ctx.Err()
	}
}

// Pool caches one Client per remote address for a fixed local address.
// Services use it to talk to many peers (providers, metadata providers)
// without connection churn.
type Pool struct {
	net   transport.Network
	local transport.Addr

	mu      sync.Mutex
	clients map[transport.Addr]*Client
	closed  bool
}

// NewPool returns a client pool dialing from local.
func NewPool(net transport.Network, local transport.Addr) *Pool {
	return &Pool{net: net, local: local, clients: make(map[transport.Addr]*Client)}
}

// Get returns the cached client for remote, creating it if needed.
func (p *Pool) Get(remote transport.Addr) *Client {
	p.mu.Lock()
	defer p.mu.Unlock()
	cl, ok := p.clients[remote]
	if !ok {
		cl = NewClient(p.net, p.local, remote)
		p.clients[remote] = cl
	}
	return cl
}

// Call is shorthand for Get(remote).Call(...).
func (p *Pool) Call(ctx context.Context, remote transport.Addr, method uint32, req wire.Marshaler, resp wire.Unmarshaler) error {
	return p.Get(remote).Call(ctx, method, req, resp)
}

// Close closes every cached client.
func (p *Pool) Close() error {
	p.mu.Lock()
	cls := make([]*Client, 0, len(p.clients))
	for _, cl := range p.clients {
		cls = append(cls, cl)
	}
	p.clients = make(map[transport.Addr]*Client)
	p.closed = true
	p.mu.Unlock()
	for _, cl := range cls {
		cl.Close()
	}
	return nil
}
