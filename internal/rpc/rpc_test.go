package rpc

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"blobseer/internal/metrics"
	"blobseer/internal/obs"
	"blobseer/internal/transport"
	"blobseer/internal/wire"
)

// echoMsg is a trivial wire message for tests.
type echoMsg struct {
	Text string
	N    uint64
}

func (m *echoMsg) AppendTo(b []byte) []byte {
	b = wire.AppendString(b, m.Text)
	b = wire.AppendUvarint(b, m.N)
	return b
}

func (m *echoMsg) DecodeFrom(r *wire.Reader) error {
	m.Text = r.String()
	m.N = r.Uvarint()
	return r.Err()
}

var (
	methodEcho   = M(1, "test.Echo")
	methodFail   = M(2, "test.Fail")
	methodSlow   = M(3, "test.Slow")
	methodNobody = M(4, "test.Nobody")
)

func newEchoServer(t *testing.T, net transport.Network, addr transport.Addr) *Server {
	t.Helper()
	s, err := NewServer(net, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	s.Handle(methodEcho, func(r *wire.Reader) (wire.Marshaler, error) {
		var req echoMsg
		if err := req.DecodeFrom(r); err != nil {
			return nil, err
		}
		return &echoMsg{Text: req.Text, N: req.N + 1}, nil
	})
	s.Handle(methodFail, func(r *wire.Reader) (wire.Marshaler, error) {
		return nil, errors.New("provider: page not found")
	})
	s.Handle(methodSlow, func(r *wire.Reader) (wire.Marshaler, error) {
		time.Sleep(200 * time.Millisecond)
		return &echoMsg{Text: "late"}, nil
	})
	s.Handle(methodNobody, func(r *wire.Reader) (wire.Marshaler, error) {
		return nil, nil
	})
	return s
}

func TestCallRoundTrip(t *testing.T) {
	for name, net := range map[string]transport.Network{
		"memnet": transport.NewMemNet(),
		"tcpnet": transport.NewTCPNet(),
	} {
		t.Run(name, func(t *testing.T) {
			newEchoServer(t, net, "srv/echo")
			c := NewClient(net, "cli/x", "srv/echo")
			defer c.Close()
			var resp echoMsg
			err := c.Call(context.Background(), methodEcho, &echoMsg{Text: "hi", N: 41}, &resp)
			if err != nil {
				t.Fatal(err)
			}
			if resp.Text != "hi" || resp.N != 42 {
				t.Fatalf("resp = %+v", resp)
			}
		})
	}
}

func TestCallError(t *testing.T) {
	net := transport.NewMemNet()
	newEchoServer(t, net, "srv/echo")
	c := NewClient(net, "cli/x", "srv/echo")
	defer c.Close()
	err := c.Call(context.Background(), methodFail, &echoMsg{}, nil)
	if err == nil || !strings.Contains(err.Error(), "page not found") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownMethod(t *testing.T) {
	net := transport.NewMemNet()
	newEchoServer(t, net, "srv/echo")
	c := NewClient(net, "cli/x", "srv/echo")
	defer c.Close()
	err := c.Call(context.Background(), M(999, "test.Unregistered"), &echoMsg{}, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("err = %v", err)
	}
}

func TestNilBodyResponse(t *testing.T) {
	net := transport.NewMemNet()
	newEchoServer(t, net, "srv/echo")
	c := NewClient(net, "cli/x", "srv/echo")
	defer c.Close()
	if err := c.Call(context.Background(), methodNobody, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestContextCancel(t *testing.T) {
	net := transport.NewMemNet()
	newEchoServer(t, net, "srv/echo")
	c := NewClient(net, "cli/x", "srv/echo")
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Call(ctx, methodSlow, &echoMsg{}, &echoMsg{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 150*time.Millisecond {
		t.Errorf("cancel did not return promptly")
	}
}

func TestConcurrentCalls(t *testing.T) {
	net := transport.NewMemNet()
	newEchoServer(t, net, "srv/echo")
	c := NewClient(net, "cli/x", "srv/echo")
	defer c.Close()

	const callers = 16
	const perCaller = 50
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perCaller; i++ {
				var resp echoMsg
				req := &echoMsg{Text: fmt.Sprintf("g%d-i%d", g, i), N: uint64(i)}
				if err := c.Call(context.Background(), methodEcho, req, &resp); err != nil {
					errs <- err
					return
				}
				if resp.Text != req.Text || resp.N != req.N+1 {
					errs <- fmt.Errorf("mismatched response %+v for %+v", resp, req)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServerCloseFailsCalls(t *testing.T) {
	net := transport.NewMemNet()
	s := newEchoServer(t, net, "srv/echo")
	c := NewClient(net, "cli/x", "srv/echo")
	defer c.Close()

	// Prime the connection.
	if err := c.Call(context.Background(), methodEcho, &echoMsg{}, &echoMsg{}); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		done <- c.Call(context.Background(), methodSlow, &echoMsg{}, &echoMsg{})
	}()
	time.Sleep(30 * time.Millisecond)
	s.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("call survived server close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("call hung after server close")
	}
}

func TestClientRedialsAfterServerRestart(t *testing.T) {
	net := transport.NewMemNet()
	s := newEchoServer(t, net, "srv/echo")
	c := NewClient(net, "cli/x", "srv/echo")
	defer c.Close()

	if err := c.Call(context.Background(), methodEcho, &echoMsg{N: 1}, &echoMsg{}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Calls fail while the server is down...
	failCtx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	err := c.Call(failCtx, methodEcho, &echoMsg{}, &echoMsg{})
	cancel()
	if err == nil {
		t.Fatal("call succeeded against closed server")
	}

	// ...and succeed again once it is back.
	newEchoServer(t, net, "srv/echo")
	var resp echoMsg
	deadline := time.Now().Add(2 * time.Second)
	for {
		err = c.Call(context.Background(), methodEcho, &echoMsg{N: 7}, &resp)
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("call after restart: %v", err)
	}
	if resp.N != 8 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestPool(t *testing.T) {
	net := transport.NewMemNet()
	newEchoServer(t, net, "srv-a/echo")
	newEchoServer(t, net, "srv-b/echo")
	p := NewPool(net, "cli/x")
	defer p.Close()

	if p.Get("srv-a/echo") != p.Get("srv-a/echo") {
		t.Error("pool did not cache client")
	}
	var resp echoMsg
	if err := p.Call(context.Background(), "srv-a/echo", methodEcho, &echoMsg{N: 1}, &resp); err != nil {
		t.Fatal(err)
	}
	if err := p.Call(context.Background(), "srv-b/echo", methodEcho, &echoMsg{N: 2}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.N != 3 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestCallRecordsMethodStats(t *testing.T) {
	net := transport.NewMemNet()
	newEchoServer(t, net, "srv/echo")
	c := NewClient(net, "cli/x", "srv/echo")
	defer c.Close()

	before := metrics.Default.RPCClient.Snapshot()["test.Echo"]
	beforeSrv := metrics.Default.RPCServer.Snapshot()["test.Echo"]
	var resp echoMsg
	if err := c.Call(context.Background(), methodEcho, &echoMsg{Text: "hi", N: 1}, &resp); err != nil {
		t.Fatal(err)
	}
	if err := c.Call(context.Background(), methodFail, &echoMsg{}, nil); err == nil {
		t.Fatal("want error from methodFail")
	}

	after := metrics.Default.RPCClient.Snapshot()["test.Echo"]
	if after.Calls != before.Calls+1 {
		t.Errorf("client calls = %d, want %d", after.Calls, before.Calls+1)
	}
	if after.Bytes <= before.Bytes {
		t.Errorf("client bytes did not grow: %d -> %d", before.Bytes, after.Bytes)
	}
	if after.Latency.Count != before.Latency.Count+1 {
		t.Errorf("latency count = %d, want %d", after.Latency.Count, before.Latency.Count+1)
	}
	afterSrv := metrics.Default.RPCServer.Snapshot()["test.Echo"]
	if afterSrv.Calls != beforeSrv.Calls+1 {
		t.Errorf("server calls = %d, want %d", afterSrv.Calls, beforeSrv.Calls+1)
	}
	failSnap := metrics.Default.RPCClient.Snapshot()["test.Fail"]
	if failSnap.Errors == 0 {
		t.Error("methodFail recorded no client-side errors")
	}
}

func TestTracePropagatesAcrossWire(t *testing.T) {
	net := transport.NewMemNet()
	newEchoServer(t, net, "srv/echo")
	c := NewClient(net, "cli/x", "srv/echo")
	defer c.Close()

	ctx, root := obs.StartTrace(context.Background(), "test.op")
	var resp echoMsg
	if err := c.Call(ctx, methodEcho, &echoMsg{Text: "hi", N: 1}, &resp); err != nil {
		t.Fatal(err)
	}
	root.End(nil)

	spans := obs.Spans.Trace(root.Trace)
	byName := make(map[string]obs.SpanInfo)
	for _, s := range spans {
		byName[s.Name] = s
	}
	call, ok := byName["rpc:test.Echo"]
	if !ok {
		t.Fatalf("no client call span in trace; got %d spans", len(spans))
	}
	if call.Parent != root.ID {
		t.Errorf("call span parent = %d, want root %d", call.Parent, root.ID)
	}
	serve, ok := byName["serve:test.Echo"]
	if !ok {
		t.Fatalf("no server dispatch span in trace")
	}
	if serve.Parent != call.ID {
		t.Errorf("server span parent = %d, want client call span %d", serve.Parent, call.ID)
	}
	if serve.Where != "srv/echo" {
		t.Errorf("server span where = %q, want srv/echo", serve.Where)
	}
	tree := obs.Spans.Tree(root.Trace)
	if !strings.Contains(tree, "serve:test.Echo") {
		t.Errorf("rendered tree missing server span:\n%s", tree)
	}
}

func TestUntracedCallSendsNoSpans(t *testing.T) {
	net := transport.NewMemNet()
	newEchoServer(t, net, "srv/echo")
	c := NewClient(net, "cli/x", "srv/echo")
	defer c.Close()

	ids := obs.Spans.TraceIDs(0)
	seen := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		seen[id] = true
	}
	var resp echoMsg
	if err := c.Call(context.Background(), methodEcho, &echoMsg{N: 1}, &resp); err != nil {
		t.Fatal(err)
	}
	for _, id := range obs.Spans.TraceIDs(0) {
		if !seen[id] {
			t.Fatalf("untraced call created trace %d", id)
		}
	}
}

func BenchmarkCall(b *testing.B) {
	net := transport.NewMemNet()
	s, err := NewServer(net, "srv/echo")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	s.Handle(methodEcho, func(r *wire.Reader) (wire.Marshaler, error) {
		var req echoMsg
		if err := req.DecodeFrom(r); err != nil {
			return nil, err
		}
		return &req, nil
	})
	c := NewClient(net, "cli/x", "srv/echo")
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var resp echoMsg
		if err := c.Call(context.Background(), methodEcho, &echoMsg{Text: "x", N: 1}, &resp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRPCLatency measures the fully instrumented call path (frame
// trace context + per-method histograms on both sides), with and
// without an active trace — the difference is the tracing plane's cost.
func BenchmarkRPCLatency(b *testing.B) {
	net := transport.NewMemNet()
	s, err := NewServer(net, "srv/echo")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	s.Handle(methodEcho, func(r *wire.Reader) (wire.Marshaler, error) {
		var req echoMsg
		if err := req.DecodeFrom(r); err != nil {
			return nil, err
		}
		return &req, nil
	})
	c := NewClient(net, "cli/x", "srv/echo")
	defer c.Close()

	b.Run("untraced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var resp echoMsg
			if err := c.Call(context.Background(), methodEcho, &echoMsg{Text: "x", N: 1}, &resp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		ctx, root := obs.StartTrace(context.Background(), "bench")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var resp echoMsg
			if err := c.Call(ctx, methodEcho, &echoMsg{Text: "x", N: 1}, &resp); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		root.End(nil)
	})
}
