// Package workload generates the synthetic datasets of the evaluation.
// The paper's data-join inputs are "key-value pairs extracted from the
// datasets made public by Last.fm" (§4.3): two files of user/artist
// listening records whose join blows up by roughly 10x (two 320 MB
// inputs produce 6.3 GB of output). The generators here are
// deterministic (seeded) and tunable to the same expansion factor.
package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// JoinConfig shapes a pair of join input files.
type JoinConfig struct {
	// Keys is the number of distinct join keys (user ids).
	Keys int
	// DupA and DupB are how many records each key has in file A and
	// file B. The join expands each key into DupA*DupB rows, so the
	// output/input row ratio is DupA*DupB/(DupA+DupB) — the defaults
	// (8, 8) give ~4x rows and, with the wider 3-column output lines,
	// roughly the paper's ~10x byte expansion.
	DupA, DupB int
	// ValueLen is the approximate value length in bytes.
	ValueLen int
	// Seed makes generation deterministic.
	Seed int64
}

// withDefaults fills zero fields.
func (c JoinConfig) withDefaults() JoinConfig {
	if c.Keys <= 0 {
		c.Keys = 1000
	}
	if c.DupA <= 0 {
		c.DupA = 8
	}
	if c.DupB <= 0 {
		c.DupB = 8
	}
	if c.ValueLen <= 0 {
		c.ValueLen = 24
	}
	return c
}

// artists is a small vocabulary for Last.fm-shaped values.
var artists = []string{
	"radiohead", "boards-of-canada", "autechre", "nina-simone",
	"kraftwerk", "miles-davis", "aphex-twin", "portishead",
	"massive-attack", "john-coltrane", "can", "neu", "stereolab",
	"broadcast", "brian-eno", "fela-kuti", "tortoise", "mogwai",
}

// JoinInputs generates the two data-join input files. Each line is
// "key<TAB>value"; keys are shared between files so the join matches.
func JoinInputs(cfg JoinConfig) (fileA, fileB string) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var a, b strings.Builder
	for k := 0; k < cfg.Keys; k++ {
		key := fmt.Sprintf("user%06d", k)
		for i := 0; i < cfg.DupA; i++ {
			fmt.Fprintf(&a, "%s\t%s\n", key, value(rng, "plays", cfg.ValueLen))
		}
		for i := 0; i < cfg.DupB; i++ {
			fmt.Fprintf(&b, "%s\t%s\n", key, value(rng, "tags", cfg.ValueLen))
		}
	}
	return a.String(), b.String()
}

// value builds one Last.fm-shaped record value of ~n bytes.
func value(rng *rand.Rand, kind string, n int) string {
	artist := artists[rng.Intn(len(artists))]
	v := fmt.Sprintf("%s=%s:%d", kind, artist, rng.Intn(10000))
	for len(v) < n {
		v += fmt.Sprintf(",%s:%d", artists[rng.Intn(len(artists))], rng.Intn(10000))
	}
	return v
}

// Text generates ~n bytes of whitespace-separated words with a skewed
// (Zipf-ish) word distribution, for wordcount/grep workloads.
func Text(n int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 1.0, uint64(len(vocabulary)-1))
	var b strings.Builder
	b.Grow(n + 16)
	for b.Len() < n {
		b.WriteString(vocabulary[zipf.Uint64()])
		if rng.Intn(12) == 0 {
			b.WriteByte('\n')
		} else {
			b.WriteByte(' ')
		}
	}
	return b.String()
}

var vocabulary = []string{
	"the", "of", "and", "to", "data", "append", "file", "system",
	"map", "reduce", "hadoop", "blob", "version", "page", "provider",
	"concurrent", "throughput", "cluster", "storage", "metadata",
	"grid", "node", "client", "write", "read", "chunk", "block",
	"pipeline", "reducer", "mapper", "scheduler", "namespace",
}

// KVLines generates n random "key<TAB>value" lines with keys drawn
// from keyspace distinct keys.
func KVLines(n, keyspace int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "k%05d\tv%08d\n", rng.Intn(keyspace), rng.Int63n(1e8))
	}
	return b.String()
}
