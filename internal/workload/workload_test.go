package workload

import (
	"strings"
	"testing"
)

func TestJoinInputsDeterministic(t *testing.T) {
	a1, b1 := JoinInputs(JoinConfig{Keys: 10, Seed: 3})
	a2, b2 := JoinInputs(JoinConfig{Keys: 10, Seed: 3})
	if a1 != a2 || b1 != b2 {
		t.Error("generation not deterministic")
	}
	a3, _ := JoinInputs(JoinConfig{Keys: 10, Seed: 4})
	if a1 == a3 {
		t.Error("seed ignored")
	}
}

func TestJoinInputsShape(t *testing.T) {
	cfg := JoinConfig{Keys: 50, DupA: 3, DupB: 5, Seed: 1}
	a, b := JoinInputs(cfg)
	linesA := strings.Count(a, "\n")
	linesB := strings.Count(b, "\n")
	if linesA != 50*3 {
		t.Errorf("file A has %d lines, want %d", linesA, 150)
	}
	if linesB != 50*5 {
		t.Errorf("file B has %d lines, want %d", linesB, 250)
	}
	for _, line := range strings.Split(strings.TrimRight(a, "\n"), "\n") {
		if !strings.Contains(line, "\t") {
			t.Fatalf("malformed line %q", line)
		}
	}
}

func TestJoinExpansionFactor(t *testing.T) {
	// The defaults must produce a join blow-up in the ballpark of the
	// paper's ~10x (640 MB in -> 6.3 GB out).
	a, b := JoinInputs(JoinConfig{Keys: 200, Seed: 2})
	inBytes := len(a) + len(b)

	// Expected output bytes: per key, DupA*DupB rows of
	// len(key)+len(va)+len(vb)+2 separators (approximately).
	rowsPerKey := 8 * 8
	avgLineA := len(a) / strings.Count(a, "\n")
	outBytes := 200 * rowsPerKey * (avgLineA*2 - 10)
	ratio := float64(outBytes) / float64(inBytes)
	if ratio < 5 || ratio > 20 {
		t.Errorf("estimated expansion ratio %.1f, want ~10x", ratio)
	}
}

func TestTextShape(t *testing.T) {
	text := Text(10000, 5)
	if len(text) < 10000 {
		t.Errorf("len = %d", len(text))
	}
	if !strings.Contains(text, "\n") {
		t.Error("no line breaks")
	}
	if Text(1000, 5) != Text(1000, 5) {
		t.Error("not deterministic")
	}
}

func TestKVLines(t *testing.T) {
	s := KVLines(100, 10, 7)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 100 {
		t.Fatalf("lines = %d", len(lines))
	}
	keys := map[string]bool{}
	for _, l := range lines {
		k, _, ok := strings.Cut(l, "\t")
		if !ok {
			t.Fatalf("malformed %q", l)
		}
		keys[k] = true
	}
	if len(keys) > 10 {
		t.Errorf("distinct keys = %d, want <= 10", len(keys))
	}
}
