package mapreduce_test

import (
	"strings"
	"testing"
	"time"

	"blobseer/internal/apps/wordcount"
	"blobseer/internal/dfs"
	"blobseer/internal/mapreduce"
	"blobseer/internal/workload"
)

// TestReducePhaseTrackerFailure kills a tracker after the map phase
// has completed, while reducers are shuffling/reducing: the framework
// must re-execute the lost map outputs (the "map output lost" path)
// and the failed reduce attempts, and still produce a correct result.
func TestReducePhaseTrackerFailure(t *testing.T) {
	e := newBSFSEnv(t, 6)
	text := workload.Text(30<<10, 31)
	if err := dfs.WriteFile(ctx, e.fs, "/in/text", []byte(text)); err != nil {
		t.Fatal(err)
	}
	job := wordcount.Job([]string{"/in/text"}, "/out", 3, mapreduce.SeparateFiles)
	// Fast maps, slow reducers: the kill lands in the reduce phase.
	job.ReduceCostPerRecord = 300 * time.Microsecond

	go func() {
		time.Sleep(250 * time.Millisecond)
		e.fw.Trackers()[1].Kill()
	}()
	res, err := e.fw.Run(ctx, job)
	if err != nil {
		t.Fatalf("job failed despite re-execution: %v", err)
	}
	checkWordcount(t, e, res, text)
}

// TestTwoTrackerFailures kills two of six trackers at different times.
func TestTwoTrackerFailures(t *testing.T) {
	e := newBSFSEnv(t, 6)
	text := workload.Text(25<<10, 37)
	if err := dfs.WriteFile(ctx, e.fs, "/in/text", []byte(text)); err != nil {
		t.Fatal(err)
	}
	job := wordcount.Job([]string{"/in/text"}, "/out", 2, mapreduce.SeparateFiles)
	job.MapCostPerRecord = 30 * time.Microsecond

	go func() {
		time.Sleep(100 * time.Millisecond)
		e.fw.Trackers()[0].Kill()
		time.Sleep(150 * time.Millisecond)
		e.fw.Trackers()[3].Kill()
	}()
	res, err := e.fw.Run(ctx, job)
	if err != nil {
		t.Fatalf("job failed: %v", err)
	}
	checkWordcount(t, e, res, text)
}

// TestAllTrackersDeadFailsCleanly verifies the job reports an error
// (rather than hanging) when every tracker dies.
func TestAllTrackersDeadFailsCleanly(t *testing.T) {
	e := newBSFSEnv(t, 3)
	text := workload.Text(20<<10, 41)
	if err := dfs.WriteFile(ctx, e.fs, "/in/text", []byte(text)); err != nil {
		t.Fatal(err)
	}
	job := wordcount.Job([]string{"/in/text"}, "/out", 2, mapreduce.SeparateFiles)
	// Slow the maps down enough that the kill always lands mid-job.
	job.MapCostPerRecord = 3 * time.Millisecond
	job.MaxAttempts = 2

	go func() {
		time.Sleep(100 * time.Millisecond)
		for _, tt := range e.fw.Trackers() {
			tt.Kill()
		}
	}()
	done := make(chan error, 1)
	go func() {
		_, err := e.fw.Run(ctx, job)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("job succeeded with all trackers dead")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("job hung after cluster death")
	}
}

// TestFailingTaskExhaustsAttempts: a map function that always panics
// is converted into task failure and the job errors out after
// MaxAttempts, not forever.
func TestPoisonousInputRecords(t *testing.T) {
	e := newBSFSEnv(t, 3)
	if err := dfs.WriteFile(ctx, e.fs, "/in/x", []byte("fine\nfine\n")); err != nil {
		t.Fatal(err)
	}
	job := mapreduce.JobConf{
		Name:      "poison",
		Input:     []string{"/in/x"},
		OutputDir: "/out",
		Map: func(k, v string, emit func(k, v string)) {
			emit(strings.ToUpper(v), "1")
		},
		Reduce: func(k string, vs []string, emit func(k, v string)) {
			emit(k, "ok")
		},
		NumReducers: 1,
		OutputMode:  mapreduce.SeparateFiles,
	}
	res, err := e.fw.Run(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	out := readOutputs(t, e.fs, res)
	if !strings.Contains(out, "FINE\tok") {
		t.Fatalf("output = %q", out)
	}
}
