package mapreduce

// pairMerger streams the k-way merge of individually sorted runs (the
// per-map output partitions, each already sorted by sortPairs) in
// (Key, Value) order. The reduce phase consumes groups straight off
// the merge instead of buffering the whole concatenation and
// re-sorting it: O(N log k) comparisons in place of the old
// O(N log N) full sort, and no second copy of every pair.
type pairMerger struct {
	runs  [][]Pair
	pos   []int // per-run cursor
	heads []int // binary min-heap of run indices, ordered by head pair
}

// newPairMerger builds a merger over the runs; empty runs are skipped.
func newPairMerger(runs [][]Pair) *pairMerger {
	m := &pairMerger{runs: runs, pos: make([]int, len(runs))}
	for i, run := range runs {
		if len(run) > 0 {
			m.heads = append(m.heads, i)
		}
	}
	for i := len(m.heads)/2 - 1; i >= 0; i-- {
		m.down(i)
	}
	return m
}

// less orders two runs by their head pairs, matching sortPairs' key-
// then-value order so the merged stream is exactly what sorting the
// concatenation would produce.
func (m *pairMerger) less(a, b int) bool {
	pa, pb := m.runs[a][m.pos[a]], m.runs[b][m.pos[b]]
	if pa.Key != pb.Key {
		return pa.Key < pb.Key
	}
	return pa.Value < pb.Value
}

// down restores the heap property below slot i.
func (m *pairMerger) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(m.heads) && m.less(m.heads[l], m.heads[small]) {
			small = l
		}
		if r < len(m.heads) && m.less(m.heads[r], m.heads[small]) {
			small = r
		}
		if small == i {
			return
		}
		m.heads[i], m.heads[small] = m.heads[small], m.heads[i]
		i = small
	}
}

// next pops the smallest remaining pair; ok is false when all runs are
// exhausted.
func (m *pairMerger) next() (p Pair, ok bool) {
	if len(m.heads) == 0 {
		return Pair{}, false
	}
	run := m.heads[0]
	p = m.runs[run][m.pos[run]]
	m.pos[run]++
	if m.pos[run] == len(m.runs[run]) {
		last := len(m.heads) - 1
		m.heads[0] = m.heads[last]
		m.heads = m.heads[:last]
	}
	m.down(0)
	return p, true
}
