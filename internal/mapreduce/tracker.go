package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"blobseer/internal/dfs"
	"blobseer/internal/rpc"
	"blobseer/internal/shuffle"
	"blobseer/internal/transport"
	"blobseer/internal/wire"
)

// SvcShuffle is the tasktracker's map-output service name.
const SvcShuffle = "shuffle"

// Shuffle methods.
var (
	ShuffleGet = rpc.M(1, "shuffle.Get")
)

// ErrOutputLost is returned when a reducer asks for a map output the
// tracker no longer has (tracker restarted / output evicted). The
// jobtracker responds by re-executing the map task, like Hadoop.
var ErrOutputLost = errors.New("mapreduce: map output lost")

// ShuffleReq identifies one map output partition.
type ShuffleReq struct {
	Job  uint64
	Map  uint64
	Part uint64
}

// AppendTo implements wire.Marshaler.
func (m *ShuffleReq) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Job)
	b = wire.AppendUvarint(b, m.Map)
	return wire.AppendUvarint(b, m.Part)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *ShuffleReq) DecodeFrom(r *wire.Reader) error {
	m.Job = r.Uvarint()
	m.Map = r.Uvarint()
	m.Part = r.Uvarint()
	return r.Err()
}

// ShuffleResp carries an encoded partition.
type ShuffleResp struct{ Data []byte }

// AppendTo implements wire.Marshaler.
func (m *ShuffleResp) AppendTo(b []byte) []byte { return wire.AppendBytes(b, m.Data) }

// DecodeFrom implements wire.Unmarshaler.
func (m *ShuffleResp) DecodeFrom(r *wire.Reader) error {
	m.Data = r.BytesCopy()
	return r.Err()
}

// outputKey identifies a stored map output partition.
type outputKey struct {
	job  uint64
	m    uint64
	part uint64
}

// TaskTracker executes tasks on one simulated machine. Its file-system
// mount and shuffle service are bound to the machine's host, so all of
// its data traffic is attributed to that host's NIC.
type TaskTracker struct {
	host string
	fs   dfs.FileSystem
	pool *rpc.Pool
	srv  *rpc.Server

	mu      sync.Mutex
	outputs map[outputKey][]byte
	dead    bool
	cancel  context.CancelFunc
	ctx     context.Context
}

// NewTaskTracker starts a tasktracker on host with the given mount.
func NewTaskTracker(net transport.Network, host string, fs dfs.FileSystem) (*TaskTracker, error) {
	srv, err := rpc.NewServer(net, transport.MakeAddr(host, SvcShuffle))
	if err != nil {
		return nil, err
	}
	//lint:detached the tracker root ctx spans the process, outliving any single job; Close cancels it
	ctx, cancel := context.WithCancel(context.Background())
	tt := &TaskTracker{
		host:    host,
		fs:      fs,
		pool:    rpc.NewPool(net, transport.MakeAddr(host, "tasktracker")),
		srv:     srv,
		outputs: make(map[outputKey][]byte),
		ctx:     ctx,
		cancel:  cancel,
	}
	srv.Handle(ShuffleGet, tt.handleShuffleGet)
	return tt, nil
}

// Host returns the tracker's machine name.
func (tt *TaskTracker) Host() string { return tt.host }

// ShuffleAddr returns the tracker's map-output endpoint.
func (tt *TaskTracker) ShuffleAddr() transport.Addr {
	return transport.MakeAddr(tt.host, SvcShuffle)
}

// Kill simulates a machine failure: running tasks abort, the shuffle
// service stops answering, and stored map outputs are lost.
func (tt *TaskTracker) Kill() {
	tt.mu.Lock()
	tt.dead = true
	tt.outputs = make(map[outputKey][]byte)
	tt.mu.Unlock()
	tt.cancel()
	tt.srv.Close()
}

// Dead reports whether the tracker has been killed.
func (tt *TaskTracker) Dead() bool {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	return tt.dead
}

// Close shuts the tracker down at the end of a run.
func (tt *TaskTracker) Close() error {
	tt.cancel()
	tt.srv.Close()
	return tt.pool.Close()
}

func (tt *TaskTracker) handleShuffleGet(r *wire.Reader) (wire.Marshaler, error) {
	var req ShuffleReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	tt.mu.Lock()
	data, ok := tt.outputs[outputKey{req.Job, req.Map, req.Part}]
	tt.mu.Unlock()
	if !ok {
		return nil, ErrOutputLost
	}
	return &ShuffleResp{Data: data}, nil
}

// storeOutputs records a finished map task's partitions.
func (tt *TaskTracker) storeOutputs(job, mapID uint64, parts [][]byte) error {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	if tt.dead {
		return errors.New("mapreduce: tracker is dead")
	}
	for p, data := range parts {
		tt.outputs[outputKey{job, mapID, uint64(p)}] = data
	}
	return nil
}

// dropJobOutputs frees a completed job's intermediate data.
func (tt *TaskTracker) dropJobOutputs(job uint64) {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	for k := range tt.outputs {
		if k.job == job {
			delete(tt.outputs, k)
		}
	}
}

// fetchMapOutput pulls one partition from a peer tracker's shuffle
// service over the network.
func (tt *TaskTracker) fetchMapOutput(ctx context.Context, from transport.Addr, job, mapID, part uint64) ([]byte, error) {
	var resp ShuffleResp
	err := tt.pool.Call(ctx, from, ShuffleGet, &ShuffleReq{Job: job, Map: mapID, Part: part}, &resp)
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// runMap executes one map task: read the split, apply the map function
// with modeled compute cost, partition + sort (+ combine), store the
// partitions for the shuffle.
func (tt *TaskTracker) runMap(ctx context.Context, job *jobState, mapID int, split Split) (recordsIn, recordsOut uint64, err error) {
	if tt.Dead() {
		return 0, 0, errors.New("mapreduce: tracker is dead")
	}
	ctx, cancel := mergeCtx(ctx, tt.ctx)
	defer cancel()

	// A pinned split is read at exactly its snapshot version — the
	// job's submit-time pin keeps the version alive, so this open
	// re-pins it for the task's own lifetime and can never find it
	// collected.
	var f dfs.FileReader
	if split.Ver != 0 {
		vfs, ok := dfs.AsVersioned(tt.fs)
		if !ok {
			return 0, 0, fmt.Errorf("map %d: pinned split %s@%d on unversioned mount %s",
				mapID, split.Path, split.Ver, tt.fs.Name())
		}
		f, err = vfs.OpenVersion(ctx, split.Path, split.Ver)
	} else {
		f, err = tt.fs.Open(ctx, split.Path)
	}
	if err != nil {
		return 0, 0, fmt.Errorf("map %d: open %s@%d: %w", mapID, split.Path, split.Ver, err)
	}
	defer f.Close()
	lr, err := newLineReader(f, split)
	if err != nil {
		return 0, 0, fmt.Errorf("map %d: position: %w", mapID, err)
	}

	R := job.conf.NumReducers
	parts := make([][]Pair, R)
	emit := func(k, v string) {
		p := partitionOf(k, R)
		parts[p] = append(parts[p], Pair{k, v})
		recordsOut++
	}
	cost := costModel{perRecord: job.conf.MapCostPerRecord}
	for {
		off, line, err := lr.next()
		if err != nil {
			break
		}
		if ctx.Err() != nil {
			return 0, 0, ctx.Err()
		}
		job.conf.Map(fmt.Sprintf("%s:%d", split.Path, off), line, emit)
		recordsIn++
		// Modeled compute scales with actual data: empty records (e.g.
		// the newline padding of shared-append blocks) cost nothing.
		if len(line) > 0 {
			cost.tick()
		}
	}
	cost.flush()

	encoded := make([][]byte, R)
	for p := range parts {
		sortPairs(parts[p])
		if job.conf.Combine != nil {
			parts[p] = combinePairs(parts[p], job.conf.Combine)
		}
		encoded[p] = encodePairs(parts[p])
	}
	if job.shuffle != nil {
		// Blob backend: the partitions become concurrent appends to
		// the shared per-partition intermediate BLOBs, through this
		// tracker's own client so the transfers bill this host's NIC.
		src, ok := tt.fs.(shuffle.ClientSource)
		if !ok {
			return 0, 0, fmt.Errorf("map %d: blob shuffle on %s mount", mapID, tt.fs.Name())
		}
		if err := job.shuffle.AppendMap(ctx, src.BlobClient(), uint64(mapID), encoded); err != nil {
			return 0, 0, fmt.Errorf("map %d: %w", mapID, err)
		}
		return recordsIn, recordsOut, nil
	}
	if err := tt.storeOutputs(job.id, uint64(mapID), encoded); err != nil {
		return 0, 0, err
	}
	return recordsIn, recordsOut, nil
}

// mergeCtx derives a context cancelled when either parent is.
func mergeCtx(a, b context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(a)
	stop := make(chan struct{})
	go func() {
		select {
		case <-b.Done():
			cancel()
		case <-stop:
		}
	}()
	return ctx, func() { close(stop); cancel() }
}
