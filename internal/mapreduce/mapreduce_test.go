package mapreduce_test

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"blobseer/internal/apps/datajoin"
	"blobseer/internal/apps/grep"
	"blobseer/internal/apps/wordcount"
	"blobseer/internal/blob"
	"blobseer/internal/bsfs"
	"blobseer/internal/dfs"
	"blobseer/internal/hdfs"
	"blobseer/internal/mapreduce"
	"blobseer/internal/transport"
	"blobseer/internal/workload"
)

var ctx = context.Background()

const testBlock = 1 << 10 // 1 KiB blocks so small inputs span many splits

// env is a running storage + framework deployment for tests.
type env struct {
	fw *mapreduce.Framework
	fs dfs.FileSystem
}

// newBSFSEnv deploys BlobSeer + BSFS + the framework on n hosts.
func newBSFSEnv(t *testing.T, hosts int) *env {
	t.Helper()
	cluster, err := blob.NewCluster(transport.NewMemNet(), blob.ClusterConfig{
		Providers: hosts, MetaProviders: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	d, err := bsfs.Deploy(cluster, testBlock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	fw, err := mapreduce.NewFramework(mapreduce.FrameworkConfig{
		Net:   cluster.Net,
		Hosts: cluster.ProviderHosts(),
		Mount: func(host string) dfs.FileSystem { return d.Mount(host) },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fw.Close() })
	return &env{fw: fw, fs: fw.ClientFS()}
}

// newHDFSEnv deploys HDFS + the framework on n hosts.
func newHDFSEnv(t *testing.T, hosts int) *env {
	t.Helper()
	cluster, err := hdfs.NewCluster(transport.NewMemNet(), hdfs.ClusterConfig{Datanodes: hosts})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	fw, err := mapreduce.NewFramework(mapreduce.FrameworkConfig{
		Net:   cluster.Net,
		Hosts: cluster.DatanodeHosts(),
		Mount: func(host string) dfs.FileSystem { return cluster.Mount(host, testBlock) },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fw.Close() })
	return &env{fw: fw, fs: fw.ClientFS()}
}

// readOutputs concatenates all committed output files.
func readOutputs(t *testing.T, fs dfs.FileSystem, res mapreduce.JobResult) string {
	t.Helper()
	var sb strings.Builder
	for _, p := range res.OutputFiles {
		data, err := dfs.ReadAll(ctx, fs, p)
		if err != nil {
			t.Fatalf("read output %s: %v", p, err)
		}
		sb.Write(data)
	}
	return sb.String()
}

// parseCounts parses "word\tcount" lines.
func parseCounts(t *testing.T, out string) map[string]int {
	t.Helper()
	m := make(map[string]int)
	for _, line := range strings.Split(out, "\n") {
		if line == "" {
			continue
		}
		k, v, ok := strings.Cut(line, "\t")
		if !ok {
			t.Fatalf("malformed output line %q", line)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("bad count in %q", line)
		}
		m[k] += n
	}
	return m
}

func checkWordcount(t *testing.T, e *env, res mapreduce.JobResult, text string) {
	t.Helper()
	got := parseCounts(t, readOutputs(t, e.fs, res))
	want := wordcount.ReferenceCount(text)
	if len(got) != len(want) {
		t.Fatalf("distinct words: got %d, want %d", len(got), len(want))
	}
	for w, n := range want {
		if got[w] != n {
			t.Fatalf("count[%q] = %d, want %d", w, got[w], n)
		}
	}
}

func TestWordcountBSFSSeparateFiles(t *testing.T) {
	e := newBSFSEnv(t, 6)
	text := workload.Text(20<<10, 1)
	if err := dfs.WriteFile(ctx, e.fs, "/in/text", []byte(text)); err != nil {
		t.Fatal(err)
	}
	res, err := e.fw.Run(ctx, wordcount.Job([]string{"/in/text"}, "/out", 4, mapreduce.SeparateFiles))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OutputFiles) != 4 {
		t.Errorf("output files = %v, want 4 part files", res.OutputFiles)
	}
	if res.MapTasks < 10 {
		t.Errorf("MapTasks = %d, want many (block-sized splits)", res.MapTasks)
	}
	checkWordcount(t, e, res, text)
}

func TestWordcountBSFSSharedAppend(t *testing.T) {
	e := newBSFSEnv(t, 6)
	text := workload.Text(20<<10, 2)
	if err := dfs.WriteFile(ctx, e.fs, "/in/text", []byte(text)); err != nil {
		t.Fatal(err)
	}
	res, err := e.fw.Run(ctx, wordcount.Job([]string{"/in/text"}, "/out", 4, mapreduce.SharedAppend))
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline property: one single output file.
	if len(res.OutputFiles) != 1 {
		t.Fatalf("output files = %v, want exactly 1", res.OutputFiles)
	}
	if dfs.Base(res.OutputFiles[0]) != mapreduce.SharedOutputName {
		t.Errorf("output file = %s", res.OutputFiles[0])
	}
	checkWordcount(t, e, res, text)
}

func TestWordcountHDFS(t *testing.T) {
	e := newHDFSEnv(t, 6)
	text := workload.Text(20<<10, 3)
	if err := dfs.WriteFile(ctx, e.fs, "/in/text", []byte(text)); err != nil {
		t.Fatal(err)
	}
	res, err := e.fw.Run(ctx, wordcount.Job([]string{"/in/text"}, "/out", 4, mapreduce.SeparateFiles))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OutputFiles) != 4 {
		t.Errorf("output files = %v", res.OutputFiles)
	}
	checkWordcount(t, e, res, text)
}

func TestSharedAppendFailsOnHDFS(t *testing.T) {
	// §2.2: HDFS cannot append, so the modified framework cannot run
	// on it — the reproduction of the paper's motivation.
	e := newHDFSEnv(t, 4)
	if err := dfs.WriteFile(ctx, e.fs, "/in/text", []byte("a b c\n")); err != nil {
		t.Fatal(err)
	}
	_, err := e.fw.Run(ctx, wordcount.Job([]string{"/in/text"}, "/out", 2, mapreduce.SharedAppend))
	if !errors.Is(err, dfs.ErrAppendNotSupported) {
		t.Fatalf("err = %v, want ErrAppendNotSupported", err)
	}
}

func TestDataJoin(t *testing.T) {
	contentA, contentB := workload.JoinInputs(workload.JoinConfig{Keys: 60, DupA: 3, DupB: 4, Seed: 5})
	want := datajoin.ReferenceJoin(contentA, contentB)

	cases := []struct {
		name string
		mk   func(t *testing.T) *env
		mode mapreduce.OutputMode
	}{
		{"bsfs-shared", func(t *testing.T) *env { return newBSFSEnv(t, 5) }, mapreduce.SharedAppend},
		{"bsfs-separate", func(t *testing.T) *env { return newBSFSEnv(t, 5) }, mapreduce.SeparateFiles},
		{"hdfs-separate", func(t *testing.T) *env { return newHDFSEnv(t, 5) }, mapreduce.SeparateFiles},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := tc.mk(t)
			if err := dfs.WriteFile(ctx, e.fs, "/in/a", []byte(contentA)); err != nil {
				t.Fatal(err)
			}
			if err := dfs.WriteFile(ctx, e.fs, "/in/b", []byte(contentB)); err != nil {
				t.Fatal(err)
			}
			res, err := e.fw.Run(ctx, datajoin.Job("/in/a", "/in/b", "/out", 3, tc.mode))
			if err != nil {
				t.Fatal(err)
			}
			got := map[string]int{}
			for _, line := range strings.Split(readOutputs(t, e.fs, res), "\n") {
				if line != "" {
					got[line]++
				}
			}
			if len(got) != len(want) {
				t.Fatalf("distinct rows: got %d, want %d", len(got), len(want))
			}
			for row, n := range want {
				if got[row] != n {
					t.Fatalf("row %q appears %d times, want %d", row, got[row], n)
				}
			}
			if tc.mode == mapreduce.SharedAppend && len(res.OutputFiles) != 1 {
				t.Errorf("shared-append output files = %v", res.OutputFiles)
			}
			if tc.mode == mapreduce.SeparateFiles && len(res.OutputFiles) != 3 {
				t.Errorf("separate-files output files = %v", res.OutputFiles)
			}
		})
	}
}

func TestLocalityScheduling(t *testing.T) {
	e := newBSFSEnv(t, 8)
	text := workload.Text(40<<10, 9)
	if err := dfs.WriteFile(ctx, e.fs, "/in/text", []byte(text)); err != nil {
		t.Fatal(err)
	}
	res, err := e.fw.Run(ctx, wordcount.Job([]string{"/in/text"}, "/out", 2, mapreduce.SeparateFiles))
	if err != nil {
		t.Fatal(err)
	}
	// With tasktrackers on every storage host and free slots, the
	// locality pass should place most maps on a replica host.
	if res.LocalMaps*2 < res.MapTasks {
		t.Errorf("local maps = %d of %d", res.LocalMaps, res.MapTasks)
	}
}

func TestOutputDirExistsFails(t *testing.T) {
	e := newBSFSEnv(t, 3)
	if err := e.fs.Mkdir(ctx, "/out"); err != nil {
		t.Fatal(err)
	}
	if err := dfs.WriteFile(ctx, e.fs, "/in/text", []byte("x\n")); err != nil {
		t.Fatal(err)
	}
	_, err := e.fw.Run(ctx, wordcount.Job([]string{"/in/text"}, "/out", 1, mapreduce.SeparateFiles))
	if err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("err = %v", err)
	}
}

func TestEmptyInput(t *testing.T) {
	e := newBSFSEnv(t, 3)
	if err := dfs.WriteFile(ctx, e.fs, "/in/empty", nil); err != nil {
		t.Fatal(err)
	}
	res, err := e.fw.Run(ctx, wordcount.Job([]string{"/in/empty"}, "/out", 2, mapreduce.SeparateFiles))
	if err != nil {
		t.Fatal(err)
	}
	if res.MapTasks != 0 || res.ReduceOutputRecords != 0 {
		t.Errorf("result = %+v", res)
	}
	if len(res.OutputFiles) != 2 {
		t.Errorf("output files = %v (want 2 empty parts)", res.OutputFiles)
	}
}

func TestCombinerShrinksShuffle(t *testing.T) {
	text := workload.Text(30<<10, 11)

	run := func(withCombiner bool) mapreduce.JobResult {
		e := newBSFSEnv(t, 4)
		if err := dfs.WriteFile(ctx, e.fs, "/in/text", []byte(text)); err != nil {
			t.Fatal(err)
		}
		job := wordcount.Job([]string{"/in/text"}, "/out", 2, mapreduce.SeparateFiles)
		if !withCombiner {
			job.Combine = nil
		}
		res, err := e.fw.Run(ctx, job)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	with := run(true)
	without := run(false)
	if with.ShuffleBytes >= without.ShuffleBytes {
		t.Errorf("combiner did not shrink shuffle: %d vs %d", with.ShuffleBytes, without.ShuffleBytes)
	}
	if with.ReduceOutputRecords != without.ReduceOutputRecords {
		t.Errorf("combiner changed output: %d vs %d records",
			with.ReduceOutputRecords, without.ReduceOutputRecords)
	}
}

func TestTaskTrackerFailureRecovery(t *testing.T) {
	e := newBSFSEnv(t, 6)
	text := workload.Text(30<<10, 13)
	if err := dfs.WriteFile(ctx, e.fs, "/in/text", []byte(text)); err != nil {
		t.Fatal(err)
	}
	job := wordcount.Job([]string{"/in/text"}, "/out", 3, mapreduce.SeparateFiles)
	// Slow the maps down so the kill lands mid-job.
	job.MapCostPerRecord = 40 * time.Microsecond

	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(150 * time.Millisecond)
		e.fw.Trackers()[0].Kill()
	}()
	res, err := e.fw.Run(ctx, job)
	<-killed
	if err != nil {
		t.Fatalf("job failed despite re-execution: %v", err)
	}
	checkWordcount(t, e, res, text)
}

func TestPipelineTwoStages(t *testing.T) {
	e := newBSFSEnv(t, 6)
	text := workload.Text(20<<10, 17)
	if err := dfs.WriteFile(ctx, e.fs, "/in/text", []byte(text)); err != nil {
		t.Fatal(err)
	}

	// Stage 1: wordcount (shared single file); stage 2: grep the
	// counts for a common word prefix.
	stage1 := wordcount.Job([]string{"/in/text"}, "/s1", 3, mapreduce.SharedAppend)
	stage2 := grep.Job(nil, "/s2", "data", 2, mapreduce.SharedAppend)
	results, err := e.fw.RunPipeline(ctx, []mapreduce.JobConf{stage1, stage2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}

	// Reference: apply stage 2's predicate to stage 1's actual output.
	wcOut := parseCounts(t, readOutputs(t, e.fs, results[0]))
	wantMatches := 0
	for w := range wcOut {
		if strings.Contains(fmt.Sprintf("%s\t%d", w, wcOut[w]), "data") {
			wantMatches++
		}
	}
	// Grep output lines are "<matched line>\t<count>"; the matched line
	// itself contains tabs, so split on the LAST tab.
	got := map[string]int{}
	for _, line := range strings.Split(readOutputs(t, e.fs, results[1]), "\n") {
		if line == "" {
			continue
		}
		i := strings.LastIndexByte(line, '\t')
		if i < 0 {
			t.Fatalf("malformed grep output %q", line)
		}
		n, err := strconv.Atoi(line[i+1:])
		if err != nil {
			t.Fatalf("bad count in %q", line)
		}
		got[line[:i]] += n
	}
	if len(got) != wantMatches {
		t.Errorf("stage 2 matched %d lines, want %d", len(got), wantMatches)
	}
	// Every matched line occurred exactly once in stage 1's output.
	for line, n := range got {
		if n != 1 {
			t.Errorf("line %q counted %d times", line, n)
		}
	}
}

func TestPipelineRequiresSharedAppend(t *testing.T) {
	e := newBSFSEnv(t, 3)
	s1 := wordcount.Job([]string{"/in"}, "/s1", 1, mapreduce.SeparateFiles)
	s2 := wordcount.Job(nil, "/s2", 1, mapreduce.SeparateFiles)
	if _, err := e.fw.RunPipeline(ctx, []mapreduce.JobConf{s1, s2}); err == nil {
		t.Fatal("pipeline accepted non-append stage")
	}
}

func TestJobValidation(t *testing.T) {
	e := newBSFSEnv(t, 3)
	if err := dfs.WriteFile(ctx, e.fs, "/in/x", []byte("a\n")); err != nil {
		t.Fatal(err)
	}
	job := wordcount.Job([]string{"/in/x"}, "/out", 0, mapreduce.SeparateFiles)
	if _, err := e.fw.Run(ctx, job); err == nil {
		t.Error("zero reducers accepted")
	}
	job = wordcount.Job([]string{"/missing"}, "/out2", 1, mapreduce.SeparateFiles)
	if _, err := e.fw.Run(ctx, job); !errors.Is(err, dfs.ErrNotExist) {
		t.Errorf("missing input: %v", err)
	}
}

func TestDirectoryInput(t *testing.T) {
	e := newBSFSEnv(t, 4)
	text1 := workload.Text(5<<10, 19)
	text2 := workload.Text(5<<10, 23)
	if err := dfs.WriteFile(ctx, e.fs, "/in/f1", []byte(text1)); err != nil {
		t.Fatal(err)
	}
	if err := dfs.WriteFile(ctx, e.fs, "/in/f2", []byte(text2)); err != nil {
		t.Fatal(err)
	}
	res, err := e.fw.Run(ctx, wordcount.Job([]string{"/in"}, "/out", 2, mapreduce.SeparateFiles))
	if err != nil {
		t.Fatal(err)
	}
	checkWordcount(t, e, res, text1+" "+text2)
}

func TestManyReducersFewRecords(t *testing.T) {
	// More reducers than keys: empty partitions must still commit.
	e := newBSFSEnv(t, 3)
	if err := dfs.WriteFile(ctx, e.fs, "/in/x", []byte("solo\n")); err != nil {
		t.Fatal(err)
	}
	res, err := e.fw.Run(ctx, wordcount.Job([]string{"/in/x"}, "/out", 8, mapreduce.SeparateFiles))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OutputFiles) != 8 {
		t.Errorf("output files = %d", len(res.OutputFiles))
	}
	counts := parseCounts(t, readOutputs(t, e.fs, res))
	if counts["solo"] != 1 || len(counts) != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestPinnedInputVersions(t *testing.T) {
	// A job on a versioned backend pins each input's snapshot at
	// submit: appends racing the job — here injected deterministically
	// from inside the first map invocation — never change what the job
	// processes, and the result reports the pin.
	e := newBSFSEnv(t, 4)
	var lines []string
	for i := 0; i < 64; i++ {
		lines = append(lines, fmt.Sprintf("record %03d", i))
	}
	input := strings.Join(lines, "\n") + "\n"
	if err := dfs.WriteFile(ctx, e.fs, "/in/data", []byte(input)); err != nil {
		t.Fatal(err)
	}
	fi, err := e.fs.Stat(ctx, "/in/data")
	if err != nil {
		t.Fatal(err)
	}

	appended := make(chan error, 1)
	var once sync.Once
	res, err := e.fw.Run(ctx, mapreduce.JobConf{
		Name:      "pinned",
		Input:     []string{"/in/data"},
		OutputDir: "/out",
		Map: func(_, line string, emit func(k, v string)) {
			// Grow the input mid-job, exactly once, before this map
			// emits: the splits were already pinned, so the new bytes
			// must be invisible to every map of this job.
			once.Do(func() {
				w, err := e.fs.Append(ctx, "/in/data")
				if err == nil {
					_, werr := w.Write([]byte("late record\n"))
					if cerr := w.Close(); werr == nil {
						werr = cerr
					}
					err = werr
				}
				appended <- err
			})
			emit("count", "1")
		},
		Reduce: func(key string, values []string, emit func(k, v string)) {
			emit(key, fmt.Sprint(len(values)))
		},
		NumReducers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-appended; err != nil {
		t.Fatalf("mid-job append: %v", err)
	}

	if got := res.InputVersions["/in/data"]; got != fi.Version {
		t.Errorf("pinned version = %d, want Stat's %d", got, fi.Version)
	}
	if res.InputBytes != fi.Size {
		t.Errorf("InputBytes = %d, want submit-time size %d", res.InputBytes, fi.Size)
	}
	if res.MapInputRecords != 64 {
		t.Errorf("maps read %d records, want the pinned 64", res.MapInputRecords)
	}
	// The file itself did grow.
	after, err := e.fs.Stat(ctx, "/in/data")
	if err != nil {
		t.Fatal(err)
	}
	if after.Size != fi.Size+uint64(len("late record\n")) || after.Version <= fi.Version {
		t.Errorf("input did not grow past the pin: %+v -> %+v", fi, after)
	}

	// HDFS: same job shape, no version axis — the job runs unpinned
	// and reports no input versions.
	eh := newHDFSEnv(t, 4)
	if err := dfs.WriteFile(ctx, eh.fs, "/in/data", []byte(input)); err != nil {
		t.Fatal(err)
	}
	hres, err := eh.fw.Run(ctx, mapreduce.JobConf{
		Name:      "unpinned",
		Input:     []string{"/in/data"},
		OutputDir: "/out",
		Map:       func(_, _ string, emit func(k, v string)) { emit("count", "1") },
		Reduce: func(key string, values []string, emit func(k, v string)) {
			emit(key, fmt.Sprint(len(values)))
		},
		NumReducers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hres.InputVersions != nil {
		t.Errorf("HDFS job reported pinned versions: %v", hres.InputVersions)
	}
}
