package mapreduce_test

import (
	"strings"
	"testing"
	"time"

	"blobseer/internal/apps/wordcount"
	"blobseer/internal/blob"
	"blobseer/internal/bsfs"
	"blobseer/internal/dfs"
	"blobseer/internal/mapreduce"
	"blobseer/internal/shuffle"
	"blobseer/internal/transport"
	"blobseer/internal/workload"
)

// newBSFSEnvSlots is newBSFSEnv with explicit per-tracker slot counts
// (the overlap tests cap map slots to force multi-wave map phases).
func newBSFSEnvSlots(t *testing.T, hosts, mapSlots, reduceSlots int) *env {
	t.Helper()
	cluster, err := blob.NewCluster(transport.NewMemNet(), blob.ClusterConfig{
		Providers: hosts, MetaProviders: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	d, err := bsfs.Deploy(cluster, testBlock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	fw, err := mapreduce.NewFramework(mapreduce.FrameworkConfig{
		Net:         cluster.Net,
		Hosts:       cluster.ProviderHosts(),
		Mount:       func(host string) dfs.FileSystem { return d.Mount(host) },
		MapSlots:    mapSlots,
		ReduceSlots: reduceSlots,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fw.Close() })
	return &env{fw: fw, fs: fw.ClientFS()}
}

// TestBlobShuffleWordcount runs wordcount with intermediate data in
// per-partition BLOBs, for both output committers, and checks the
// segment accounting: one segment per (map, reducer) appended and
// fetched, none recovered (no failure injected).
func TestBlobShuffleWordcount(t *testing.T) {
	for _, mode := range []mapreduce.OutputMode{mapreduce.SeparateFiles, mapreduce.SharedAppend} {
		t.Run(mode.String(), func(t *testing.T) {
			e := newBSFSEnv(t, 6)
			text := workload.Text(20<<10, 43)
			if err := dfs.WriteFile(ctx, e.fs, "/in/text", []byte(text)); err != nil {
				t.Fatal(err)
			}
			job := wordcount.Job([]string{"/in/text"}, "/out", 4, mode)
			job.Shuffle = shuffle.Blob
			res, err := e.fw.Run(ctx, job)
			if err != nil {
				t.Fatal(err)
			}
			checkWordcount(t, e, res, text)
			want := uint64(res.MapTasks * res.ReduceTasks)
			if res.SegmentsAppended != want {
				t.Errorf("SegmentsAppended = %d, want %d", res.SegmentsAppended, want)
			}
			if res.SegmentsFetched != want {
				t.Errorf("SegmentsFetched = %d, want %d", res.SegmentsFetched, want)
			}
			if res.SegmentsRecovered != 0 || res.MapOutputsLost != 0 {
				t.Errorf("recovered = %d, lost = %d on a failure-free run",
					res.SegmentsRecovered, res.MapOutputsLost)
			}
			if res.FirstShuffleFetch <= 0 {
				t.Errorf("FirstShuffleFetch = %v", res.FirstShuffleFetch)
			}
		})
	}
}

// TestBlobShuffleOverlapsMapPhase pins the tentpole's scheduling
// property: with the blob backend, reducers fetch their first segments
// while later map waves are still running — the shuffle overlaps the
// map phase instead of starting after it.
func TestBlobShuffleOverlapsMapPhase(t *testing.T) {
	// One map slot per tracker and ~30 block-sized splits force a map
	// phase of several waves; modeled per-record cost stretches each
	// wave well past the first segment fetch.
	e := newBSFSEnvSlots(t, 6, 1, 2)
	text := workload.Text(30<<10, 47)
	if err := dfs.WriteFile(ctx, e.fs, "/in/text", []byte(text)); err != nil {
		t.Fatal(err)
	}
	job := wordcount.Job([]string{"/in/text"}, "/out", 3, mapreduce.SeparateFiles)
	job.Shuffle = shuffle.Blob
	job.MapCostPerRecord = 100 * time.Microsecond
	res, err := e.fw.Run(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	checkWordcount(t, e, res, text)
	if res.FirstShuffleFetch <= 0 {
		t.Fatal("no shuffle fetch recorded")
	}
	if res.FirstShuffleFetch >= res.MapPhase {
		t.Errorf("first segment fetched at %v, after the map phase ended (%v): no overlap",
			res.FirstShuffleFetch, res.MapPhase)
	}
}

// killAtBarrier returns a MapsDoneHook killing the given trackers the
// moment every map has finished — the point where intermediate data is
// the only thing keeping the job alive.
func killAtBarrier(e *env, idx ...int) func() {
	return func() {
		for _, i := range idx {
			e.fw.Trackers()[i].Kill()
		}
	}
}

// TestBlobShuffleSurvivesTrackerDeath is the tentpole's failure-
// semantics claim: trackers die after their maps complete, and the job
// still finishes with ZERO map re-runs because every map output lives
// in replicated, immutable BLOB segments — tracker death is a
// non-event for the shuffle. Compare TestMemoryShuffleRerunsMaps.
func TestBlobShuffleSurvivesTrackerDeath(t *testing.T) {
	e := newBSFSEnv(t, 6)
	text := workload.Text(30<<10, 53)
	if err := dfs.WriteFile(ctx, e.fs, "/in/text", []byte(text)); err != nil {
		t.Fatal(err)
	}
	job := wordcount.Job([]string{"/in/text"}, "/out", 8, mapreduce.SeparateFiles)
	job.Shuffle = shuffle.Blob
	job.MapsDoneHook = killAtBarrier(e, 1, 2, 3, 4)
	res, err := e.fw.Run(ctx, job)
	if err != nil {
		t.Fatalf("job failed despite durable shuffle: %v", err)
	}
	checkWordcount(t, e, res, text)
	if res.MapOutputsLost != 0 {
		t.Errorf("MapOutputsLost = %d, want 0 (blob segments survive tracker death)", res.MapOutputsLost)
	}
	if res.SegmentsRecovered == 0 {
		t.Error("no segments recovered: the killed trackers' outputs were never needed post-mortem")
	}
}

// TestMemoryShuffleRerunsMaps is the baseline the blob backend beats:
// the same barrier kill under the memory backend loses the dead
// trackers' outputs and forces map re-execution.
func TestMemoryShuffleRerunsMaps(t *testing.T) {
	e := newBSFSEnv(t, 6)
	text := workload.Text(30<<10, 53)
	if err := dfs.WriteFile(ctx, e.fs, "/in/text", []byte(text)); err != nil {
		t.Fatal(err)
	}
	job := wordcount.Job([]string{"/in/text"}, "/out", 8, mapreduce.SeparateFiles)
	job.MapsDoneHook = killAtBarrier(e, 1, 2, 3, 4)
	res, err := e.fw.Run(ctx, job)
	if err != nil {
		t.Fatalf("job failed despite re-execution: %v", err)
	}
	checkWordcount(t, e, res, text)
	if res.MapOutputsLost == 0 {
		t.Error("MapOutputsLost = 0: the kill cost the memory backend nothing?")
	}
}

// TestBlobShuffleRequiresBlobMount: the durable backend needs a
// BlobSeer-backed file system; on HDFS the job must fail up front with
// a clear error, like shared-append output does.
func TestBlobShuffleRequiresBlobMount(t *testing.T) {
	e := newHDFSEnv(t, 3)
	if err := dfs.WriteFile(ctx, e.fs, "/in/x", []byte("a b\n")); err != nil {
		t.Fatal(err)
	}
	job := wordcount.Job([]string{"/in/x"}, "/out", 2, mapreduce.SeparateFiles)
	job.Shuffle = shuffle.Blob
	_, err := e.fw.Run(ctx, job)
	if err == nil || !strings.Contains(err.Error(), "BlobSeer-backed") {
		t.Fatalf("err = %v, want blob-mount requirement", err)
	}
}

// TestBlobShuffleEmptyInput: zero maps means zero segments; reducers
// must still complete and commit empty outputs.
func TestBlobShuffleEmptyInput(t *testing.T) {
	e := newBSFSEnv(t, 3)
	if err := dfs.WriteFile(ctx, e.fs, "/in/empty", nil); err != nil {
		t.Fatal(err)
	}
	job := wordcount.Job([]string{"/in/empty"}, "/out", 2, mapreduce.SeparateFiles)
	job.Shuffle = shuffle.Blob
	res, err := e.fw.Run(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.SegmentsAppended != 0 || res.SegmentsFetched != 0 {
		t.Errorf("segments on empty input: %+v", res)
	}
	if len(res.OutputFiles) != 2 {
		t.Errorf("output files = %v (want 2 empty parts)", res.OutputFiles)
	}
}

// TestBlobShufflePipeline runs the §5 two-stage pipeline with durable
// intermediate data in both stages (streaming splits exercise the
// late-bound map count of the segment index).
func TestBlobShufflePipeline(t *testing.T) {
	e := newBSFSEnv(t, 6)
	text := workload.Text(15<<10, 59)
	if err := dfs.WriteFile(ctx, e.fs, "/in/text", []byte(text)); err != nil {
		t.Fatal(err)
	}
	stage1 := wordcount.Job([]string{"/in/text"}, "/s1", 3, mapreduce.SharedAppend)
	stage1.Shuffle = shuffle.Blob
	stage2 := wordcount.Job(nil, "/s2", 2, mapreduce.SharedAppend)
	stage2.Shuffle = shuffle.Blob
	results, err := e.fw.RunPipeline(ctx, []mapreduce.JobConf{stage1, stage2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || len(results[1].OutputFiles) != 1 {
		t.Fatalf("results = %+v", results)
	}
}

// TestBlobShuffleJobEndCleanup: a finished job retires its
// intermediate shuffle BLOBs through the garbage collector, so the
// cluster ends the job holding only input and output bytes; a job
// opting out with KeepIntermediate leaves the segments in place.
func TestBlobShuffleJobEndCleanup(t *testing.T) {
	run := func(t *testing.T, keep bool) int64 {
		cluster, err := blob.NewCluster(transport.NewMemNet(), blob.ClusterConfig{
			Providers: 6, MetaProviders: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cluster.Close() })
		d, err := bsfs.Deploy(cluster, testBlock)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		fw, err := mapreduce.NewFramework(mapreduce.FrameworkConfig{
			Net:   cluster.Net,
			Hosts: cluster.ProviderHosts(),
			Mount: func(host string) dfs.FileSystem { return d.Mount(host) },
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { fw.Close() })

		text := workload.Text(16<<10, 7)
		if err := dfs.WriteFile(ctx, fw.ClientFS(), "/in/text", []byte(text)); err != nil {
			t.Fatal(err)
		}
		job := wordcount.Job([]string{"/in/text"}, "/out", 4, mapreduce.SeparateFiles)
		job.Shuffle = shuffle.Blob
		job.KeepIntermediate = keep
		res, err := fw.Run(ctx, job)
		if err != nil {
			t.Fatal(err)
		}
		if res.SegmentsAppended == 0 {
			t.Fatal("job produced no shuffle segments")
		}
		// Deterministic settle: the cleanup's DeleteBlob kicked the
		// collector; RunOnce serializes behind it and finishes the job.
		if _, err := d.GC.RunOnce(ctx); err != nil {
			t.Fatal(err)
		}
		return cluster.ProviderBytes()
	}

	var cleaned, kept int64
	t.Run("cleanup", func(t *testing.T) { cleaned = run(t, false) })
	t.Run("keep-intermediate", func(t *testing.T) { kept = run(t, true) })
	if cleaned >= kept {
		t.Errorf("cleanup run holds %d bytes, keep-intermediate %d: cleanup freed nothing", cleaned, kept)
	}
}
