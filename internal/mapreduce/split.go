package mapreduce

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"blobseer/internal/dfs"
)

// Split is one map task's input: a byte range of a file. Hosts lists
// machines storing the range's first block, for locality scheduling.
type Split struct {
	Path   string
	Offset uint64
	Length uint64
	Hosts  []string
}

// computeSplits cuts the input files into splits of splitSize bytes
// ("the input data is also split into chunks of equal size", §2.2) and
// annotates each split with its block's hosts.
func computeSplits(ctx context.Context, fs dfs.FileSystem, inputs []string, splitSize uint64) ([]Split, error) {
	if splitSize == 0 {
		splitSize = fs.BlockSize()
	}
	var out []Split
	for _, path := range inputs {
		fi, err := fs.Stat(ctx, path)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: stat input %s: %w", path, err)
		}
		if fi.IsDir {
			return nil, fmt.Errorf("mapreduce: input %s: %w", path, dfs.ErrIsDir)
		}
		locs, err := fs.BlockLocations(ctx, path, 0, fi.Size)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: locations of %s: %w", path, err)
		}
		hostsAt := func(off uint64) []string {
			for _, l := range locs {
				if off >= l.Offset && off < l.Offset+l.Length {
					return l.Hosts
				}
			}
			return nil
		}
		for off := uint64(0); off < fi.Size; off += splitSize {
			length := splitSize
			if off+length > fi.Size {
				length = fi.Size - off
			}
			out = append(out, Split{
				Path:   path,
				Offset: off,
				Length: length,
				Hosts:  hostsAt(off),
			})
		}
	}
	return out, nil
}

// lineReader yields the records of one split using Hadoop's text-split
// convention: a split skips the (possibly partial) line at its start
// unless it begins at offset 0, and reads past its end until the line
// it started is complete.
type lineReader struct {
	f    dfs.FileReader
	path string
	pos  uint64 // absolute offset of buf[0]
	buf  []byte
	used int    // bytes of buf already consumed
	end  uint64 // split end; lines starting at >= end belong elsewhere
	size uint64
	eof  bool
}

// newLineReader positions a reader at the first record of the split.
func newLineReader(f dfs.FileReader, split Split) (*lineReader, error) {
	lr := &lineReader{
		f:    f,
		path: split.Path,
		pos:  split.Offset,
		end:  split.Offset + split.Length,
		size: f.Size(),
	}
	if split.Offset > 0 {
		// Skip the line in progress; it belongs to the previous split.
		if err := lr.skipPartialLine(); err != nil {
			return nil, err
		}
	}
	return lr, nil
}

const lineBuf = 64 << 10

// fill compacts consumed bytes and reads more of the file. It sets
// lr.eof at the end of the file and returns io.EOF only when nothing
// remains buffered.
func (lr *lineReader) fill() error {
	if lr.used > 0 {
		lr.pos += uint64(lr.used)
		lr.buf = append(lr.buf[:0], lr.buf[lr.used:]...)
		lr.used = 0
	}
	if lr.eof {
		if len(lr.buf) == 0 {
			return io.EOF
		}
		return nil
	}
	chunk := make([]byte, lineBuf)
	n, err := lr.f.ReadAt(chunk, int64(lr.pos+uint64(len(lr.buf))))
	if n > 0 {
		lr.buf = append(lr.buf, chunk[:n]...)
	}
	if err == io.EOF {
		lr.eof = true
		if len(lr.buf) == 0 {
			return io.EOF
		}
		return nil
	}
	return err
}

func (lr *lineReader) skipPartialLine() error {
	for {
		if i := bytes.IndexByte(lr.buf[lr.used:], '\n'); i >= 0 {
			lr.used += i + 1
			return nil
		}
		// Consume the whole buffer and read on.
		lr.used = len(lr.buf)
		if err := lr.fill(); err != nil {
			if err == io.EOF {
				return nil // split contains no complete line start
			}
			return err
		}
	}
}

// next returns the next record (absolute offset, line without the
// trailing newline). io.EOF ends the split.
//
// Boundary convention (Hadoop's LineRecordReader): a split also reads
// the line starting exactly AT its end offset, because the following
// split unconditionally skips its first line — otherwise a line whose
// first byte is a split boundary would be lost.
func (lr *lineReader) next() (uint64, string, error) {
	lineStart := lr.pos + uint64(lr.used)
	if lineStart > lr.end || lineStart >= lr.size {
		return 0, "", io.EOF
	}
	for {
		if i := bytes.IndexByte(lr.buf[lr.used:], '\n'); i >= 0 {
			line := string(lr.buf[lr.used : lr.used+i])
			lr.used += i + 1
			return lineStart, line, nil
		}
		if lr.eof {
			// Final line without trailing newline.
			if lr.used < len(lr.buf) {
				line := string(lr.buf[lr.used:])
				lr.used = len(lr.buf)
				return lineStart, line, nil
			}
			return 0, "", io.EOF
		}
		if err := lr.fill(); err != nil {
			return 0, "", err
		}
	}
}
