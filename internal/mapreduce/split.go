package mapreduce

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"

	"blobseer/internal/dfs"
)

// Split is one map task's input: a byte range of a file. Hosts lists
// machines storing the range's first block, for locality scheduling.
type Split struct {
	Path   string
	Offset uint64
	Length uint64
	Hosts  []string
	// Ver is the input file's snapshot version pinned at job submit
	// (0 = unpinned: read the latest version, the pre-snapshot
	// behaviour). Map tasks open the split at exactly this version, so
	// every map of a job reads one immutable snapshot even while
	// concurrent appenders keep growing the file.
	Ver uint64
}

// pinnedInput is one input file's snapshot, pinned at job submit. The
// open reader is held for the whole job: its garbage-collection pin is
// the job's lease on the snapshot, so no map task can find its input
// version collected.
type pinnedInput struct {
	ver  uint64
	size uint64
	r    dfs.VersionedReader
}

// pinInputs pins each input file's latest published snapshot when the
// backend supports versioned access: the job's input set becomes
// immutable at submit — the paper's flagship read/append overlap, made
// correct by construction. Backends without the capability (HDFS, or a
// capability probe that answers with dfs.ErrVersionsNotSupported) run
// unpinned, exactly as before. The returned release func closes every
// held reader (dropping the pins) and must be called when the job
// finishes.
func pinInputs(ctx context.Context, fs dfs.FileSystem, inputs []string) (map[string]pinnedInput, func(), error) {
	vfs, ok := dfs.AsVersioned(fs)
	if !ok {
		return nil, func() {}, nil
	}
	pins := make(map[string]pinnedInput, len(inputs))
	closeAll := func() {
		for _, p := range pins {
			p.r.Close()
		}
	}
	for _, path := range inputs {
		// OpenVersion(0) pins whatever is latest atomically — a
		// Stat-then-open pair would race retention collecting the
		// stat'd version while appenders publish newer ones — and the
		// reader reports which version the pin landed on.
		r, err := vfs.OpenVersion(ctx, path, 0)
		if errors.Is(err, dfs.ErrVersionsNotSupported) {
			// The interface is present but the capability is absent:
			// fall back to unpinned inputs for the whole job.
			closeAll()
			return nil, func() {}, nil
		}
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("mapreduce: pin input %s: %w", path, err)
		}
		if r.Version() == 0 {
			// Empty file: nothing to pin.
			r.Close()
			continue
		}
		pins[path] = pinnedInput{ver: r.Version(), size: r.Size(), r: r}
	}
	return pins, closeAll, nil
}

// computeSplits cuts the input files into splits of splitSize bytes
// ("the input data is also split into chunks of equal size", §2.2) and
// annotates each split with its block's hosts. Inputs present in pins
// are cut at their pinned snapshot — size and block locations both
// resolved at that version — so a job submitted mid-append covers
// exactly the bytes that existed at submit.
func computeSplits(ctx context.Context, fs dfs.FileSystem, inputs []string, splitSize uint64, pins map[string]pinnedInput) ([]Split, error) {
	if splitSize == 0 {
		splitSize = fs.BlockSize()
	}
	var out []Split
	for _, path := range inputs {
		var size, ver uint64
		var locs []dfs.BlockLoc
		var err error
		if pin, ok := pins[path]; ok {
			size, ver = pin.size, pin.ver
			vfs, _ := dfs.AsVersioned(fs)
			locs, err = vfs.BlockLocationsAt(ctx, path, ver, 0, size)
		} else {
			var fi dfs.FileInfo
			fi, err = fs.Stat(ctx, path)
			if err != nil {
				return nil, fmt.Errorf("mapreduce: stat input %s: %w", path, err)
			}
			if fi.IsDir {
				return nil, fmt.Errorf("mapreduce: input %s: %w", path, dfs.ErrIsDir)
			}
			size = fi.Size
			locs, err = fs.BlockLocations(ctx, path, 0, size)
		}
		if err != nil {
			return nil, fmt.Errorf("mapreduce: locations of %s: %w", path, err)
		}
		hostsAt := func(off uint64) []string {
			for _, l := range locs {
				if off >= l.Offset && off < l.Offset+l.Length {
					return l.Hosts
				}
			}
			return nil
		}
		for off := uint64(0); off < size; off += splitSize {
			length := splitSize
			if off+length > size {
				length = size - off
			}
			out = append(out, Split{
				Path:   path,
				Offset: off,
				Length: length,
				Hosts:  hostsAt(off),
				Ver:    ver,
			})
		}
	}
	return out, nil
}

// lineReader yields the records of one split using Hadoop's text-split
// convention: a split skips the (possibly partial) line at its start
// unless it begins at offset 0, and reads past its end until the line
// it started is complete.
type lineReader struct {
	f    dfs.FileReader
	path string
	pos  uint64 // absolute offset of buf[0]
	buf  []byte
	used int    // bytes of buf already consumed
	end  uint64 // split end; lines starting at >= end belong elsewhere
	size uint64
	eof  bool
}

// newLineReader positions a reader at the first record of the split.
func newLineReader(f dfs.FileReader, split Split) (*lineReader, error) {
	lr := &lineReader{
		f:    f,
		path: split.Path,
		pos:  split.Offset,
		end:  split.Offset + split.Length,
		size: f.Size(),
	}
	if split.Offset > 0 {
		// Skip the line in progress; it belongs to the previous split.
		if err := lr.skipPartialLine(); err != nil {
			return nil, err
		}
	}
	return lr, nil
}

const lineBuf = 64 << 10

// fill compacts consumed bytes and reads more of the file. It sets
// lr.eof at the end of the file and returns io.EOF only when nothing
// remains buffered.
func (lr *lineReader) fill() error {
	if lr.used > 0 {
		lr.pos += uint64(lr.used)
		lr.buf = append(lr.buf[:0], lr.buf[lr.used:]...)
		lr.used = 0
	}
	if lr.eof {
		if len(lr.buf) == 0 {
			return io.EOF
		}
		return nil
	}
	chunk := make([]byte, lineBuf)
	n, err := lr.f.ReadAt(chunk, int64(lr.pos+uint64(len(lr.buf))))
	if n > 0 {
		lr.buf = append(lr.buf, chunk[:n]...)
	}
	if err == io.EOF {
		lr.eof = true
		if len(lr.buf) == 0 {
			return io.EOF
		}
		return nil
	}
	return err
}

func (lr *lineReader) skipPartialLine() error {
	for {
		if i := bytes.IndexByte(lr.buf[lr.used:], '\n'); i >= 0 {
			lr.used += i + 1
			return nil
		}
		// Consume the whole buffer and read on.
		lr.used = len(lr.buf)
		if err := lr.fill(); err != nil {
			if err == io.EOF {
				return nil // split contains no complete line start
			}
			return err
		}
	}
}

// next returns the next record (absolute offset, line without the
// trailing newline). io.EOF ends the split.
//
// Boundary convention (Hadoop's LineRecordReader): a split also reads
// the line starting exactly AT its end offset, because the following
// split unconditionally skips its first line — otherwise a line whose
// first byte is a split boundary would be lost.
func (lr *lineReader) next() (uint64, string, error) {
	lineStart := lr.pos + uint64(lr.used)
	if lineStart > lr.end || lineStart >= lr.size {
		return 0, "", io.EOF
	}
	for {
		if i := bytes.IndexByte(lr.buf[lr.used:], '\n'); i >= 0 {
			line := string(lr.buf[lr.used : lr.used+i])
			lr.used += i + 1
			return lineStart, line, nil
		}
		if lr.eof {
			// Final line without trailing newline.
			if lr.used < len(lr.buf) {
				line := string(lr.buf[lr.used:])
				lr.used = len(lr.buf)
				return lineStart, line, nil
			}
			return 0, "", io.EOF
		}
		if err := lr.fill(); err != nil {
			return 0, "", err
		}
	}
}
