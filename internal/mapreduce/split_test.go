package mapreduce

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// memReader is an in-memory dfs.FileReader for unit tests.
type memReader struct {
	data []byte
	pos  int
}

func (m *memReader) Read(p []byte) (int, error) {
	if m.pos >= len(m.data) {
		return 0, io.EOF
	}
	n := copy(p, m.data[m.pos:])
	m.pos += n
	return n, nil
}

func (m *memReader) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (m *memReader) Close() error { return nil }

func (m *memReader) Size() uint64 { return uint64(len(m.data)) }

func (m *memReader) Refresh(ctx context.Context) (uint64, error) { return m.Size(), nil }

// collectSplit gathers all records a split yields.
func collectSplit(t *testing.T, data []byte, split Split) []string {
	t.Helper()
	lr, err := newLineReader(&memReader{data: data}, split)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for {
		_, line, err := lr.next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, line)
	}
}

func TestLineReaderSingleSplit(t *testing.T) {
	data := []byte("alpha\nbeta\ngamma\n")
	got := collectSplit(t, data, Split{Path: "/f", Offset: 0, Length: uint64(len(data))})
	want := []string{"alpha", "beta", "gamma"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestLineReaderNoTrailingNewline(t *testing.T) {
	data := []byte("one\ntwo")
	got := collectSplit(t, data, Split{Path: "/f", Offset: 0, Length: uint64(len(data))})
	if len(got) != 2 || got[1] != "two" {
		t.Fatalf("got %v", got)
	}
}

func TestLineReaderEmptyLines(t *testing.T) {
	data := []byte("\n\nx\n\n")
	got := collectSplit(t, data, Split{Path: "/f", Offset: 0, Length: uint64(len(data))})
	if len(got) != 4 {
		t.Fatalf("got %d records %v", len(got), got)
	}
}

// TestSplitsPartitionRecords is the Hadoop text-split invariant: no
// matter where split boundaries fall, every line is read by exactly
// one split.
func TestSplitsPartitionRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		// Random content with random line lengths (some empty).
		var sb strings.Builder
		nLines := 1 + rng.Intn(60)
		var want []string
		for i := 0; i < nLines; i++ {
			line := strings.Repeat("x", rng.Intn(30)) + fmt.Sprintf("#%d", i)
			want = append(want, line)
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
		if rng.Intn(2) == 0 { // sometimes no trailing newline
			line := fmt.Sprintf("tail#%d", trial)
			want = append(want, line)
			sb.WriteString(line)
		}
		data := []byte(sb.String())

		splitSize := 1 + rng.Intn(40)
		var got []string
		for off := 0; off < len(data); off += splitSize {
			length := splitSize
			if off+length > len(data) {
				length = len(data) - off
			}
			got = append(got, collectSplit(t, data, Split{
				Path: "/f", Offset: uint64(off), Length: uint64(length),
			})...)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d (split=%d): got %d records, want %d\n%q",
				trial, splitSize, len(got), len(want), data)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: record %d = %q, want %q", trial, i, got[i], want[i])
			}
		}
	}
}

func TestPartitionOfSpread(t *testing.T) {
	const n = 16
	counts := make([]int, n)
	for i := 0; i < 16000; i++ {
		p := partitionOf(fmt.Sprintf("key-%d", i), n)
		if p < 0 || p >= n {
			t.Fatalf("partition %d out of range", p)
		}
		counts[p]++
	}
	for p, c := range counts {
		if c < 500 || c > 2000 {
			t.Errorf("partition %d holds %d of 16000 keys", p, c)
		}
	}
}

func TestPartitionOfDeterministic(t *testing.T) {
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		if partitionOf(k, 7) != partitionOf(k, 7) {
			t.Fatal("partitionOf not deterministic")
		}
	}
}

func TestEncodeDecodePairs(t *testing.T) {
	in := []Pair{{"a", "1"}, {"b", ""}, {"", "x"}, {"key with\ttab", "v"}}
	out, err := decodePairs(encodePairs(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("pair %d = %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestCombinePairs(t *testing.T) {
	pairs := []Pair{{"a", "1"}, {"a", "1"}, {"a", "1"}, {"b", "1"}}
	sum := func(key string, values []string, emit func(k, v string)) {
		emit(key, fmt.Sprintf("%d", len(values)))
	}
	out := combinePairs(pairs, sum)
	if len(out) != 2 || out[0] != (Pair{"a", "3"}) || out[1] != (Pair{"b", "1"}) {
		t.Fatalf("combined = %+v", out)
	}
	if got := combinePairs(nil, sum); len(got) != 0 {
		t.Errorf("combine(nil) = %v", got)
	}
}
