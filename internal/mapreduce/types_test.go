package mapreduce

import (
	"testing"
	"time"
)

func TestOutputModeString(t *testing.T) {
	if SeparateFiles.String() != "separate-files" {
		t.Errorf("SeparateFiles = %q", SeparateFiles.String())
	}
	if SharedAppend.String() != "shared-append" {
		t.Errorf("SharedAppend = %q", SharedAppend.String())
	}
	if OutputMode(9).String() == "" {
		t.Error("unknown mode renders empty")
	}
}

func TestCostModelBatchesSleeps(t *testing.T) {
	c := costModel{perRecord: 100 * time.Microsecond}
	start := time.Now()
	for i := 0; i < costBatch*2; i++ {
		c.tick()
	}
	c.flush()
	elapsed := time.Since(start)
	want := time.Duration(costBatch*2) * 100 * time.Microsecond
	if elapsed < want {
		t.Errorf("modeled %v of cost in %v", want, elapsed)
	}
	if elapsed > want*3 {
		t.Errorf("cost model overshot: %v for %v nominal", elapsed, want)
	}
}

func TestCostModelZeroIsFree(t *testing.T) {
	c := costModel{}
	start := time.Now()
	for i := 0; i < 10000; i++ {
		c.tick()
	}
	c.flush()
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Errorf("zero-cost model slept %v", elapsed)
	}
}

func TestSortPairsStableOrder(t *testing.T) {
	pairs := []Pair{{"b", "2"}, {"a", "9"}, {"b", "1"}, {"a", "1"}}
	sortPairs(pairs)
	want := []Pair{{"a", "1"}, {"a", "9"}, {"b", "1"}, {"b", "2"}}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("sorted = %+v", pairs)
		}
	}
}
