package mapreduce

import (
	"context"
	"fmt"
	"time"

	"blobseer/internal/dfs"
	"blobseer/internal/obs"
	"blobseer/internal/shuffle"
)

// Shuffle-fetch retry tuning (memory backend): a reducer that cannot
// fetch a map output reports it lost — the jobtracker re-executes the
// map — and retries with capped exponential backoff. The per-map retry
// budget turns "this output can never be re-produced" into a reduce
// failure with a diagnostic instead of an unbounded spin.
const (
	fetchRetryBudget = 10
	fetchBackoffBase = 5 * time.Millisecond
	fetchBackoffCap  = 320 * time.Millisecond
)

// runReduce executes one reduce task on this tracker: fetch every map
// output partition of its reduce partition through the job's shuffle
// backend, k-way merge the individually sorted partitions, apply the
// reduce function with modeled cost, and commit the output according
// to the job's OutputMode.
func (tt *TaskTracker) runReduce(ctx context.Context, job *jobState, r int) (outRecords, outBytes, shuffled uint64, err error) {
	if tt.Dead() {
		return 0, 0, 0, fmt.Errorf("mapreduce: tracker is dead")
	}
	ctx, cancel := mergeCtx(ctx, tt.ctx)
	defer cancel()

	// Shuffle phase: collect one sorted run per map task.
	var runs [][]Pair
	if job.shuffle != nil {
		runs, shuffled, err = tt.fetchBlobSegments(ctx, job, r)
	} else {
		runs, shuffled, err = tt.fetchTrackerOutputs(ctx, job, r)
	}
	if err != nil {
		return 0, 0, shuffled, err
	}

	// Merge + reduce + output phase: groups are consumed straight off
	// the streaming k-way merge of the sorted runs — no concatenation
	// buffer, no full re-sort.
	w, commit, err := tt.openReduceOutput(ctx, job, r)
	if err != nil {
		return 0, 0, shuffled, err
	}
	cw := &countingWriter{w: w}
	cost := costModel{perRecord: job.conf.ReduceCostPerRecord}
	var emitErr error
	emit := func(k, v string) {
		if emitErr != nil {
			return
		}
		if _, err := fmt.Fprintf(cw, "%s\t%s\n", k, v); err != nil {
			emitErr = err
			return
		}
		outRecords++
	}
	merge := newPairMerger(runs)
	var groupKey string
	var values []string
	for emitErr == nil {
		p, ok := merge.next()
		if !ok || (values != nil && p.Key != groupKey) {
			if values != nil {
				job.conf.Reduce(groupKey, values, emit)
			}
			if !ok {
				break
			}
			values = nil
		}
		if values == nil {
			groupKey = p.Key
			values = make([]string, 0, 4)
		}
		values = append(values, p.Value)
		cost.tick()
		if ctx.Err() != nil {
			emitErr = ctx.Err()
		}
	}
	cost.flush()
	if emitErr != nil {
		if cerr := commit(false); cerr != nil {
			obs.Log.Debugf("mapreduce: abort reduce attempt: %v", cerr)
		}
		return 0, 0, shuffled, emitErr
	}
	if err := commit(true); err != nil {
		return 0, 0, shuffled, err
	}
	return outRecords, cw.n, shuffled, nil
}

// fetchTrackerOutputs is the memory backend's shuffle: pull partition
// r of every map output from the producing trackers' shuffle services,
// re-requesting lost outputs (which the jobtracker re-executes) with
// capped exponential backoff and a bounded per-map retry budget.
func (tt *TaskTracker) fetchTrackerOutputs(ctx context.Context, job *jobState, r int) (runs [][]Pair, shuffled uint64, err error) {
	nMaps := job.mapCount()
	runs = make([][]Pair, 0, nMaps)
	for m := 0; m < nMaps; m++ {
		backoff := fetchBackoffBase
		for attempt := 1; ; attempt++ {
			loc, err := job.waitMapLoc(ctx, m)
			if err != nil {
				return nil, shuffled, err
			}
			data, ferr := tt.fetchMapOutput(ctx, loc.ShuffleAddr(), job.id, uint64(m), uint64(r))
			if ferr == nil {
				job.noteShuffleFetch(m)
				shuffled += uint64(len(data))
				part, derr := decodePairs(data)
				if derr != nil {
					return nil, shuffled, fmt.Errorf("reduce %d: decode map %d output: %w", r, m, derr)
				}
				runs = append(runs, part)
				break
			}
			job.reportLostOutput(m, loc)
			if attempt >= fetchRetryBudget {
				return nil, shuffled, fmt.Errorf("reduce %d: map %d output unfetchable after %d attempts (last error: %v)", r, m, attempt, ferr)
			}
			select {
			case <-ctx.Done():
				return nil, shuffled, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > fetchBackoffCap {
				backoff = fetchBackoffCap
			}
		}
	}
	return runs, shuffled, nil
}

// fetchBlobSegments is the blob backend's shuffle: consume partition
// r's segments off the job's segment index as maps publish them —
// overlapping the map phase — and stream each one out of its
// intermediate BLOB through this tracker's shared page cache. A
// re-executed reduce attempt restarts from consumed = 0; the index
// replays the same segments.
func (tt *TaskTracker) fetchBlobSegments(ctx context.Context, job *jobState, r int) (runs [][]Pair, shuffled uint64, err error) {
	src, ok := tt.fs.(shuffle.ClientSource)
	if !ok {
		return nil, 0, fmt.Errorf("reduce %d: blob shuffle on %s mount", r, tt.fs.Name())
	}
	c := src.BlobClient()
	for consumed := 0; ; consumed++ {
		seg, ok, err := job.shuffle.Next(ctx, r, consumed)
		if err != nil {
			return nil, shuffled, fmt.Errorf("reduce %d: shuffle: %w", r, err)
		}
		if !ok {
			return runs, shuffled, nil
		}
		data, err := job.shuffle.Fetch(ctx, c, seg)
		if err != nil {
			return nil, shuffled, fmt.Errorf("reduce %d: %w", r, err)
		}
		if job.noteShuffleFetch(int(seg.Map)) {
			job.shuffle.MarkRecovered(seg)
		}
		shuffled += seg.Len
		part, derr := decodePairs(data)
		if derr != nil {
			return nil, shuffled, fmt.Errorf("reduce %d: decode map %d segment: %w", r, seg.Map, derr)
		}
		runs = append(runs, part)
	}
}

// recordWriter batches whole records (each Write call is one record)
// and flushes each batch as one atomic append, padded with newlines to
// an exact multiple of the block size.
//
// The padding is the same trade GFS record append makes: keeping every
// append block-aligned means the BLOB's size is always page-aligned,
// so concurrent appenders never share a page slot and never pay the
// serialized boundary merge — appends from all reducers stay fully
// parallel (that is what makes Figure 6's BSFS completion time match
// HDFS's). The cost is interior padding, which for the text record
// format is just empty lines that every record reader already skips.
//
// Records must not exceed the block size (GFS imposes the analogous
// record ≤ 1/4 chunk limit); oversized records fall back to an
// unpadded, possibly-merging append, trading speed for correctness.
type recordWriter struct {
	w    dfs.FileWriter
	max  int
	buf  []byte
	err  error
	done bool
}

func newRecordWriter(w dfs.FileWriter, blockSize int) *recordWriter {
	if blockSize <= 0 {
		blockSize = 64 << 20
	}
	return &recordWriter{w: w, max: blockSize, buf: make([]byte, 0, blockSize)}
}

// Write implements io.Writer; p must be one whole record.
func (rw *recordWriter) Write(p []byte) (int, error) {
	if rw.err != nil {
		return 0, rw.err
	}
	if len(rw.buf)+len(p) > rw.max && len(rw.buf) > 0 {
		if err := rw.flush(); err != nil {
			return 0, err
		}
	}
	rw.buf = append(rw.buf, p...)
	if len(rw.buf) >= rw.max {
		if err := rw.flush(); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// flush pads the batch to a block multiple and forces it out as one
// atomic append.
func (rw *recordWriter) flush() error {
	if len(rw.buf) == 0 {
		return nil
	}
	if len(rw.buf) <= rw.max {
		for len(rw.buf) < rw.max {
			rw.buf = append(rw.buf, '\n')
		}
	}
	// else: single oversized record; append unpadded (see type doc).
	if _, err := rw.w.Write(rw.buf); err != nil {
		rw.err = err
		return err
	}
	rw.buf = rw.buf[:0]
	if f, ok := rw.w.(dfs.Flusher); ok {
		if err := f.Flush(); err != nil {
			rw.err = err
			return err
		}
	}
	return nil
}

// Close flushes the final batch and closes the underlying stream.
func (rw *recordWriter) Close() error {
	if rw.done {
		return rw.err
	}
	rw.done = true
	if err := rw.flush(); err != nil {
		rw.w.Close()
		return err
	}
	return rw.w.Close()
}

// countingWriter tracks bytes written to the committer stream.
type countingWriter struct {
	w dfs.FileWriter
	n uint64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += uint64(n)
	return n, err
}

// openReduceOutput returns the reducer's output stream plus a commit
// function finishing (or abandoning) the attempt.
func (tt *TaskTracker) openReduceOutput(ctx context.Context, job *jobState, r int) (dfs.FileWriter, func(bool) error, error) {
	switch job.conf.OutputMode {
	case SharedAppend:
		// Figure 2: "all the reducers append to the same file". Each
		// flushed batch is one atomic append, and the record writer
		// flushes only at record boundaries so concurrent reducers'
		// blocks interleave without ever tearing a record (the
		// GFS-record-append discipline).
		path := job.conf.OutputDir + "/" + SharedOutputName
		w, err := tt.fs.Append(ctx, path)
		if err != nil {
			return nil, nil, err
		}
		rw := newRecordWriter(w, int(tt.fs.BlockSize()))
		commit := func(ok bool) error {
			// Failed attempts keep already-appended records (at-least-
			// once semantics on retry, like GFS record append).
			if err := rw.Close(); err != nil && ok {
				return err
			}
			return nil
		}
		return rw, commit, nil

	default: // SeparateFiles
		// Figure 1: "each reducer writes to a separate file", via the
		// temp + rename committer.
		job.mu.Lock()
		attempt := job.reduceAttempts[r]
		job.mu.Unlock()
		tmp := fmt.Sprintf("%s/_temporary/attempt_%d_r%05d", job.conf.OutputDir, attempt, r)
		final := fmt.Sprintf("%s/part-r%05d", job.conf.OutputDir, r)
		w, err := tt.fs.Create(ctx, tmp)
		if err != nil {
			return nil, nil, err
		}
		commit := func(ok bool) error {
			if !ok {
				w.Close()
				if derr := tt.fs.Delete(ctx, tmp); derr != nil {
					obs.Log.Debugf("mapreduce: delete aborted attempt %s: %v", tmp, derr)
				}
				return nil
			}
			if err := w.Close(); err != nil {
				return err
			}
			return tt.fs.Rename(ctx, tmp, final)
		}
		return w, commit, nil
	}
}
