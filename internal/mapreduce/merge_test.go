package mapreduce

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestPairMergerMatchesFullSort checks the streaming k-way merge
// against the reference it replaced: sorting the concatenation.
func TestPairMergerMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		nRuns := rng.Intn(6)
		runs := make([][]Pair, nRuns)
		var all []Pair
		for i := range runs {
			n := rng.Intn(20)
			for k := 0; k < n; k++ {
				p := Pair{
					Key:   fmt.Sprintf("k%02d", rng.Intn(8)),
					Value: fmt.Sprintf("v%02d", rng.Intn(10)),
				}
				runs[i] = append(runs[i], p)
				all = append(all, p)
			}
			sortPairs(runs[i])
		}
		sortPairs(all)

		m := newPairMerger(runs)
		var got []Pair
		for {
			p, ok := m.next()
			if !ok {
				break
			}
			got = append(got, p)
		}
		if len(got) != len(all) {
			t.Fatalf("trial %d: merged %d pairs, want %d", trial, len(got), len(all))
		}
		for i := range got {
			if got[i] != all[i] {
				t.Fatalf("trial %d: pair %d = %+v, want %+v", trial, i, got[i], all[i])
			}
		}
	}
}

func TestPairMergerEmpty(t *testing.T) {
	m := newPairMerger(nil)
	if _, ok := m.next(); ok {
		t.Fatal("empty merger produced a pair")
	}
	m = newPairMerger([][]Pair{nil, {}, nil})
	if _, ok := m.next(); ok {
		t.Fatal("all-empty-runs merger produced a pair")
	}
}
