package mapreduce

import (
	"context"
	"fmt"

	"blobseer/internal/dfs"
	"blobseer/internal/transport"
)

// FrameworkConfig wires a Map/Reduce deployment.
type FrameworkConfig struct {
	Net transport.Network
	// Hosts are the tasktracker machines; in the paper's setup the
	// tasktrackers are "co-deployed with the datanodes/providers"
	// (§4.3), so pass the storage hosts here.
	Hosts []string
	// Mount returns a file-system mount bound to the given host.
	Mount func(host string) dfs.FileSystem
	// ClientHost runs job setup/cleanup (default "jobclient", i.e. a
	// dedicated machine like the paper's jobtracker node).
	ClientHost string

	MapSlots    int // per tracker (default 2)
	ReduceSlots int // per tracker (default 2)
}

// Framework is a running Map/Reduce deployment: one jobtracker plus a
// tasktracker per host.
type Framework struct {
	cfg      FrameworkConfig
	jt       *JobTracker
	trackers []*TaskTracker
	mounts   []dfs.FileSystem
	clientFS dfs.FileSystem
}

// NewFramework starts tasktrackers on every host.
func NewFramework(cfg FrameworkConfig) (*Framework, error) {
	if len(cfg.Hosts) == 0 {
		return nil, fmt.Errorf("mapreduce: no tasktracker hosts")
	}
	if cfg.Mount == nil {
		return nil, fmt.Errorf("mapreduce: no Mount factory")
	}
	if cfg.ClientHost == "" {
		cfg.ClientHost = "jobclient"
	}
	fw := &Framework{cfg: cfg}
	for _, host := range cfg.Hosts {
		m := cfg.Mount(host)
		tt, err := NewTaskTracker(cfg.Net, host, m)
		if err != nil {
			fw.Close()
			return nil, err
		}
		fw.trackers = append(fw.trackers, tt)
		fw.mounts = append(fw.mounts, m)
	}
	fw.clientFS = cfg.Mount(cfg.ClientHost)
	fw.jt = NewJobTracker(fw.trackers, cfg.MapSlots, cfg.ReduceSlots)
	return fw, nil
}

// Run executes one job to completion.
func (fw *Framework) Run(ctx context.Context, conf JobConf) (JobResult, error) {
	return fw.jt.Run(ctx, fw.clientFS, conf)
}

// RunStreaming executes a job fed by a split channel (see JobTracker).
func (fw *Framework) RunStreaming(ctx context.Context, conf JobConf, splits <-chan Split) (JobResult, error) {
	return fw.jt.RunStreaming(ctx, fw.clientFS, conf, splits)
}

// ClientFS returns the submitting client's mount.
func (fw *Framework) ClientFS() dfs.FileSystem { return fw.clientFS }

// Trackers exposes the tasktrackers (failure injection in tests).
func (fw *Framework) Trackers() []*TaskTracker { return fw.trackers }

// Close stops every tasktracker and mount.
func (fw *Framework) Close() error {
	for _, tt := range fw.trackers {
		tt.Close()
	}
	for _, m := range fw.mounts {
		if c, ok := m.(interface{ Close() error }); ok {
			c.Close()
		}
	}
	if c, ok := fw.clientFS.(interface{ Close() error }); ok && c != nil {
		c.Close()
	}
	return nil
}
