package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"blobseer/internal/dfs"
)

// RunPipeline executes a chain of jobs where stage i+1 consumes stage
// i's output. This is the paper's future-work scenario (§5): "the
// reducers generate the data and append it to a file that is at the
// same time, read and processed by the mappers" of the next stage.
//
// Every stage except the last must use SharedAppend (one growing file
// the next stage can follow), so the pipeline requires an append-
// capable backend — it is exactly the capability BSFS adds. Stage i+1's
// splits are fed incrementally as stage i's output grows; within a
// stage the usual map barrier before reduce still holds, so the overlap
// is between stage i's reduce phase and stage i+1's map phase.
func (fw *Framework) RunPipeline(ctx context.Context, stages []JobConf) ([]JobResult, error) {
	if len(stages) == 0 {
		return nil, errors.New("mapreduce: empty pipeline")
	}
	for i := range stages[:len(stages)-1] {
		if stages[i].OutputMode != SharedAppend {
			return nil, fmt.Errorf("mapreduce: pipeline stage %d must use SharedAppend", i)
		}
	}
	// Later stages read the previous stage's shared file.
	for i := 1; i < len(stages); i++ {
		stages[i].Input = []string{stages[i-1].OutputDir + "/" + SharedOutputName}
	}

	results := make([]JobResult, len(stages))
	errs := make([]error, len(stages))
	done := make([]chan struct{}, len(stages))
	for i := range done {
		done[i] = make(chan struct{})
	}

	var wg sync.WaitGroup
	for i := range stages {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer close(done[i])
			conf := stages[i]
			if i == 0 {
				results[i], errs[i] = fw.Run(ctx, conf)
				return
			}
			splitSize := conf.SplitSize
			if splitSize == 0 {
				splitSize = fw.clientFS.BlockSize()
			}
			splits := make(chan Split, 64)
			go fw.feedGrowingSplits(ctx, conf.Input[0], splitSize, done[i-1], splits)
			results[i], errs[i] = fw.RunStreaming(ctx, conf, splits)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("mapreduce: pipeline stage %d: %w", i, err)
		}
	}
	return results, nil
}

// feedGrowingSplits polls a growing file and emits splits for complete
// chunks as they are published; when the producer stage finishes it
// emits the tail and closes the channel.
func (fw *Framework) feedGrowingSplits(ctx context.Context, path string, splitSize uint64, producerDone <-chan struct{}, out chan<- Split) {
	defer close(out)
	var emitted uint64
	producerFinished := false

	emitUpTo := func(size uint64, final bool) bool {
		for emitted+splitSize <= size {
			select {
			case out <- Split{Path: path, Offset: emitted, Length: splitSize}:
			case <-ctx.Done():
				return false
			}
			emitted += splitSize
		}
		if final && emitted < size {
			select {
			case out <- Split{Path: path, Offset: emitted, Length: size - emitted}:
			case <-ctx.Done():
				return false
			}
			emitted = size
		}
		return true
	}

	for {
		select {
		case <-ctx.Done():
			return
		case <-producerDone:
			producerFinished = true
		case <-time.After(20 * time.Millisecond):
		}
		fi, err := fw.clientFS.Stat(ctx, path)
		if err != nil {
			if errors.Is(err, dfs.ErrNotExist) && !producerFinished {
				continue // producer has not created the file yet
			}
			return
		}
		if !emitUpTo(fi.Size, producerFinished) {
			return
		}
		if producerFinished {
			return
		}
	}
}
