package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"blobseer/internal/dfs"
	"blobseer/internal/obs"
	"blobseer/internal/shuffle"
)

// taskStatus is a task's lifecycle state.
type taskStatus int

const (
	tsPending taskStatus = iota
	tsRunning
	tsDone
)

// JobTracker schedules jobs over a set of tasktrackers, preferring
// data-local map assignment ("the scheduler will try to place the
// computation as close as possible to the needed data", §2.2).
type JobTracker struct {
	trackers    []*TaskTracker
	mapSlots    int
	reduceSlots int

	mu      sync.Mutex
	nextJob uint64
}

// NewJobTracker returns a jobtracker over trackers with the given
// per-tracker slot counts (Hadoop's defaults are 2 and 2).
func NewJobTracker(trackers []*TaskTracker, mapSlots, reduceSlots int) *JobTracker {
	if mapSlots <= 0 {
		mapSlots = 2
	}
	if reduceSlots <= 0 {
		reduceSlots = 2
	}
	return &JobTracker{trackers: trackers, mapSlots: mapSlots, reduceSlots: reduceSlots}
}

// jobState is the jobtracker's bookkeeping for one running job.
type jobState struct {
	id   uint64
	conf JobConf
	jt   *JobTracker
	fs   dfs.FileSystem // the submitting client's mount (setup/cleanup)

	// shuffle is the blob-backed durable map-output store (nil for the
	// memory backend); cancel tears down the job context so tasks
	// blocked on intermediate data drain when the job fails.
	shuffle *shuffle.Store
	cancel  context.CancelFunc

	mu   sync.Mutex
	cond *sync.Cond

	splits       []Split
	splitsClosed bool

	mapStatus   []taskStatus
	mapAttempts []int
	pendingMaps []int
	mapsDone    int
	mapLoc      map[int]*TaskTracker
	localMaps   int

	reducesStarted bool
	reducesAt      time.Time
	startedAt      time.Time
	reduceStatus   []taskStatus
	reduceAttempts []int
	pendingReduces []int
	reducesDone    int

	mapSlotsUsed    map[*TaskTracker]int
	reduceSlotsUsed map[*TaskTracker]int

	failed   error
	failures int

	recordsIn    uint64
	recordsOut   uint64
	shuffleBytes uint64
	reduceOut    uint64
	outputBytes  uint64

	lostOutputs  int
	firstFetchAt time.Time // first successful shuffle fetch by any reducer
}

// Run executes a job whose splits are computed up front from the
// input files. On a backend with versioned access, each input file's
// snapshot version is pinned at submit: maps read that exact version
// (splits and block locations are resolved at it too), so the job's
// input is immutable even while concurrent appenders keep growing the
// files, and the held pins keep the garbage collector away from the
// snapshots until the job finishes.
func (jt *JobTracker) Run(ctx context.Context, fs dfs.FileSystem, conf JobConf) (JobResult, error) {
	inputs, err := expandInputs(ctx, fs, conf.Input)
	if err != nil {
		return JobResult{}, err
	}
	conf.Input = inputs
	pins, releasePins, err := pinInputs(ctx, fs, inputs)
	if err != nil {
		return JobResult{}, err
	}
	defer releasePins()
	splits, err := computeSplits(ctx, fs, conf.Input, conf.SplitSize, pins)
	if err != nil {
		return JobResult{}, err
	}
	ch := make(chan Split, len(splits))
	for _, s := range splits {
		ch <- s
	}
	close(ch)
	res, err := jt.RunStreaming(ctx, fs, conf, ch)
	if len(pins) > 0 {
		res.InputVersions = make(map[string]uint64, len(pins))
		for path, pin := range pins {
			res.InputVersions[path] = pin.ver
		}
	}
	return res, err
}

// RunStreaming executes a job whose splits arrive on a channel — the
// mechanism behind the pipelined multi-stage execution of §5, where a
// stage's mappers start on data that previous-stage reducers are still
// appending.
func (jt *JobTracker) RunStreaming(ctx context.Context, fs dfs.FileSystem, conf JobConf, splitCh <-chan Split) (JobResult, error) {
	if conf.NumReducers <= 0 {
		return JobResult{}, errors.New("mapreduce: NumReducers must be positive")
	}
	if conf.Map == nil || conf.Reduce == nil {
		return JobResult{}, errors.New("mapreduce: Map and Reduce functions required")
	}
	if conf.MaxAttempts <= 0 {
		conf.MaxAttempts = 4
	}

	jt.mu.Lock()
	jt.nextJob++
	job := &jobState{
		id:              jt.nextJob,
		conf:            conf,
		jt:              jt,
		fs:              fs,
		mapLoc:          make(map[int]*TaskTracker),
		mapSlotsUsed:    make(map[*TaskTracker]int),
		reduceSlotsUsed: make(map[*TaskTracker]int),
	}
	jt.mu.Unlock()
	job.cond = sync.NewCond(&job.mu)

	start := time.Now()
	if err := job.setup(ctx); err != nil {
		return JobResult{}, err
	}
	job.startedAt = start

	// Tasks run on a per-job context cancelled when the job fails, so
	// reducers blocked on intermediate data that will never arrive
	// (e.g. segments of a map that exhausted its attempts) drain
	// instead of wedging the dispatcher.
	jctx, jcancel := context.WithCancel(ctx)
	defer jcancel()
	job.cancel = jcancel

	// Feed splits.
	go func() {
		for s := range splitCh {
			job.mu.Lock()
			id := len(job.splits)
			job.splits = append(job.splits, s)
			job.mapStatus = append(job.mapStatus, tsPending)
			job.mapAttempts = append(job.mapAttempts, 0)
			job.pendingMaps = append(job.pendingMaps, id)
			job.cond.Broadcast()
			job.mu.Unlock()
		}
		job.mu.Lock()
		job.splitsClosed = true
		n := len(job.splits)
		job.cond.Broadcast()
		job.mu.Unlock()
		if job.shuffle != nil {
			// Blob-backend reducers, already running, can now detect
			// when their partition is complete.
			job.shuffle.SetMapCount(n)
		}
	}()

	// Abort the dispatcher when the caller's context dies.
	stopWatch := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			job.fail(fmt.Errorf("mapreduce: job %d: %w", job.id, ctx.Err()))
		case <-stopWatch:
		}
	}()

	job.dispatch(jctx)
	close(stopWatch)

	job.mu.Lock()
	err := job.failed
	mapPhase := time.Duration(0)
	if !job.reducesAt.IsZero() {
		mapPhase = job.reducesAt.Sub(start)
	}
	var inputBytes uint64
	for i := range job.splits {
		inputBytes += job.splits[i].Length
	}
	res := JobResult{
		Duration:            time.Since(start),
		MapPhase:            mapPhase,
		ReducePhase:         time.Since(start) - mapPhase,
		MapTasks:            len(job.splits),
		InputBytes:          inputBytes,
		ReduceTasks:         conf.NumReducers,
		LocalMaps:           job.localMaps,
		MapInputRecords:     job.recordsIn,
		MapOutputRecords:    job.recordsOut,
		ShuffleBytes:        job.shuffleBytes,
		ReduceOutputRecords: job.reduceOut,
		OutputBytes:         job.outputBytes,
		TaskFailures:        job.failures,
		MapOutputsLost:      job.lostOutputs,
	}
	if !job.firstFetchAt.IsZero() {
		res.FirstShuffleFetch = job.firstFetchAt.Sub(start)
	}
	job.mu.Unlock()
	if job.shuffle != nil {
		snap := job.shuffle.Stats().Snapshot()
		res.SegmentsAppended = snap.SegmentsAppended
		res.SegmentsFetched = snap.SegmentsFetched
		res.SegmentsRecovered = snap.SegmentsRecovered
	}

	for _, tt := range jt.trackers {
		tt.dropJobOutputs(job.id)
	}
	if job.shuffle != nil && !conf.KeepIntermediate {
		// The job is over (success or failure) and every reducer has
		// drained, so no segment pin is held: retire the intermediate
		// BLOBs so shuffle traffic does not accrete storage forever.
		// Detached context: cleanup must run even when the caller's
		// context is what killed the job.
		//lint:detached cleanup must run even when the caller's ctx is what killed the job; the 30s deadline bounds it
		cctx, ccancel := context.WithTimeout(context.Background(), 30*time.Second)
		if cerr := job.shuffle.Cleanup(cctx, fs.(shuffle.ClientSource).BlobClient()); cerr != nil {
			// Leaked intermediate BLOBs accrete storage until an
			// operator reaps them — worth surfacing.
			obs.Log.Warnf("mapreduce: job %d: shuffle cleanup: %v", job.id, cerr)
		}
		ccancel()
	}
	if err != nil {
		return res, err
	}
	outs, cerr := job.cleanupAndListOutputs(ctx)
	if cerr != nil {
		return res, cerr
	}
	res.OutputFiles = outs
	return res, nil
}

// fail records the first fatal error and wakes everyone.
func (j *jobState) fail(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.failLocked(err)
}

// failLocked records the first fatal error, wakes the dispatcher and
// every waiter, poisons the shuffle store so reducers blocked on
// intermediate data return, and cancels the job context so running
// tasks drain.
func (j *jobState) failLocked(err error) {
	if j.failed == nil {
		j.failed = err
	}
	j.cond.Broadcast()
	if j.shuffle != nil {
		j.shuffle.Fail(j.failed)
	}
	if j.cancel != nil {
		j.cancel()
	}
}

// setup validates the output directory, prepares the committer, and
// creates the blob shuffle store's intermediate BLOBs when the job
// asked for the durable backend.
func (j *jobState) setup(ctx context.Context) error {
	// The cheap capability check runs first; BLOB creation runs last,
	// after every validation that can reject the job, so a rejected
	// submission never accretes intermediate BLOBs (which are, by
	// design, not deleted).
	if j.conf.Shuffle == shuffle.Blob {
		if _, ok := j.fs.(shuffle.ClientSource); !ok {
			return fmt.Errorf("mapreduce: shuffle backend %s requires a BlobSeer-backed mount, got %s", j.conf.Shuffle, j.fs.Name())
		}
	}
	if _, err := j.fs.Stat(ctx, j.conf.OutputDir); err == nil {
		return fmt.Errorf("mapreduce: output directory %s already exists", j.conf.OutputDir)
	} else if !errors.Is(err, dfs.ErrNotExist) {
		return err
	}
	if err := j.fs.Mkdir(ctx, j.conf.OutputDir); err != nil {
		return err
	}
	if j.conf.OutputMode == SharedAppend {
		// One shared output file, created up front; every reducer
		// appends to it (Figure 2). On a backend without append
		// support this is where the job fails, which is exactly the
		// paper's point about HDFS.
		w, err := j.fs.Create(ctx, j.conf.OutputDir+"/"+SharedOutputName)
		if err != nil {
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		if _, err := j.fs.Append(ctx, j.conf.OutputDir+"/"+SharedOutputName); err != nil {
			return fmt.Errorf("mapreduce: shared-append output on %s: %w", j.fs.Name(), err)
		}
	}
	if j.conf.Shuffle == shuffle.Blob {
		ps := j.conf.ShufflePageSize
		if ps == 0 {
			ps = j.fs.BlockSize()
		}
		st, err := shuffle.NewBlobStore(ctx, j.fs.(shuffle.ClientSource).BlobClient(), j.id, j.conf.NumReducers, ps)
		if err != nil {
			return fmt.Errorf("mapreduce: shuffle store: %w", err)
		}
		j.shuffle = st
	}
	return nil
}

// dispatch is the scheduling loop: it assigns pending tasks to free
// slots until the job completes or fails.
func (j *jobState) dispatch(ctx context.Context) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.shuffle != nil {
		// Blob shuffle: segments are fetchable the moment each map
		// publishes them, so reducers start immediately and the
		// shuffle overlaps the map phase instead of waiting for the
		// §2.2 barrier.
		j.startReducesLocked()
	}
	for {
		if j.failed != nil {
			// Wait for running tasks to drain so nothing writes after
			// we return.
			if j.runningTasksLocked() == 0 {
				return
			}
			j.cond.Wait()
			continue
		}
		mapsAllDone := j.splitsClosed && j.mapsDone == len(j.splits) && len(j.pendingMaps) == 0
		if mapsAllDone && j.reducesAt.IsZero() {
			// The map/reduce barrier: under the memory backend this is
			// where reduces start (§2.2: "After all the maps have
			// finished, the tasktrackers execute the reduce function");
			// under the blob backend the reduces are already running
			// and this only marks the end of the map phase.
			j.reducesAt = time.Now()
			if hook := j.conf.MapsDoneHook; hook != nil {
				// Run the fault-injection hook outside the lock (it may
				// kill trackers) and before any barrier-gated reduce is
				// scheduled, so tests get a deterministic kill point.
				j.mu.Unlock()
				hook()
				j.mu.Lock()
			}
			if !j.reducesStarted {
				j.startReducesLocked()
			}
			continue
		}
		if j.reducesStarted && j.reducesDone == j.conf.NumReducers &&
			j.splitsClosed && j.mapsDone == len(j.splits) {
			return
		}
		if !j.tryAssignLocked(ctx) {
			// With work pending, no task running and no tracker alive,
			// waiting would hang forever: fail the job instead.
			if (len(j.pendingMaps) > 0 || len(j.pendingReduces) > 0) &&
				j.runningTasksLocked() == 0 && j.aliveTrackersLocked() == 0 {
				j.failLocked(errors.New("mapreduce: no live tasktrackers"))
				continue
			}
			j.cond.Wait()
		}
	}
}

// startReducesLocked schedules every reduce task.
func (j *jobState) startReducesLocked() {
	j.reducesStarted = true
	j.reduceStatus = make([]taskStatus, j.conf.NumReducers)
	j.reduceAttempts = make([]int, j.conf.NumReducers)
	for r := 0; r < j.conf.NumReducers; r++ {
		j.pendingReduces = append(j.pendingReduces, r)
	}
}

func (j *jobState) aliveTrackersLocked() int {
	n := 0
	for _, tt := range j.jt.trackers {
		if !tt.Dead() {
			n++
		}
	}
	return n
}

func (j *jobState) runningTasksLocked() int {
	n := 0
	for _, used := range j.mapSlotsUsed {
		n += used
	}
	for _, used := range j.reduceSlotsUsed {
		n += used
	}
	return n
}

// tryAssignLocked starts at most one task; reports whether it did.
func (j *jobState) tryAssignLocked(ctx context.Context) bool {
	// Maps first (including re-executions during the reduce phase).
	if len(j.pendingMaps) > 0 {
		// Pass 1: data-local assignment.
		for qi, id := range j.pendingMaps {
			for _, tt := range j.jt.trackers {
				if tt.Dead() || j.mapSlotsUsed[tt] >= j.jt.mapSlots {
					continue
				}
				if hostIn(tt.Host(), j.splits[id].Hosts) {
					j.startMapLocked(ctx, qi, id, tt, true)
					return true
				}
			}
		}
		// Pass 2: non-local, but only for splits no live tracker can
		// serve locally. A split whose replica holder is alive merely
		// has to wait for one of that tracker's slots — they always
		// free — so running it elsewhere would trade permanent remote
		// reads for a momentary scheduling convenience (the fast
		// tracker of the moment would otherwise swallow the whole
		// queue non-locally).
		for qi, id := range j.pendingMaps {
			if j.localTrackerAliveLocked(id) {
				continue
			}
			for _, tt := range j.jt.trackers {
				if tt.Dead() || j.mapSlotsUsed[tt] >= j.jt.mapSlots {
					continue
				}
				j.startMapLocked(ctx, qi, id, tt, false)
				return true
			}
		}
	}
	if j.reducesStarted && len(j.pendingReduces) > 0 {
		for _, tt := range j.jt.trackers {
			if tt.Dead() || j.reduceSlotsUsed[tt] >= j.jt.reduceSlots {
				continue
			}
			r := j.pendingReduces[0]
			j.pendingReduces = j.pendingReduces[1:]
			j.reduceStatus[r] = tsRunning
			j.reduceSlotsUsed[tt]++
			go j.execReduce(ctx, r, tt)
			return true
		}
	}
	return false
}

// localTrackerAliveLocked reports whether any live tracker holds a
// replica of the split's first block.
func (j *jobState) localTrackerAliveLocked(id int) bool {
	for _, tt := range j.jt.trackers {
		if !tt.Dead() && hostIn(tt.Host(), j.splits[id].Hosts) {
			return true
		}
	}
	return false
}

func (j *jobState) startMapLocked(ctx context.Context, queueIdx, id int, tt *TaskTracker, local bool) {
	j.pendingMaps = append(j.pendingMaps[:queueIdx], j.pendingMaps[queueIdx+1:]...)
	j.mapStatus[id] = tsRunning
	j.mapSlotsUsed[tt]++
	// Copy the split under the lock: the feeder goroutine may still be
	// appending to j.splits.
	split := j.splits[id]
	go j.execMap(ctx, id, split, tt, local)
}

func (j *jobState) execMap(ctx context.Context, id int, split Split, tt *TaskTracker, local bool) {
	in, out, err := tt.runMap(ctx, j, id, split)

	j.mu.Lock()
	defer j.mu.Unlock()
	j.mapSlotsUsed[tt]--
	if err != nil {
		j.failures++
		j.mapAttempts[id]++
		if j.mapAttempts[id] >= j.conf.MaxAttempts {
			j.failLocked(fmt.Errorf("mapreduce: map %d failed %d times: %w", id, j.mapAttempts[id], err))
		} else {
			j.mapStatus[id] = tsPending
			j.pendingMaps = append(j.pendingMaps, id)
		}
		j.cond.Broadcast()
		return
	}
	j.mapStatus[id] = tsDone
	j.mapsDone++
	j.mapLoc[id] = tt
	if local {
		j.localMaps++
	}
	j.recordsIn += in
	j.recordsOut += out
	j.cond.Broadcast()
}

func (j *jobState) execReduce(ctx context.Context, r int, tt *TaskTracker) {
	outRecords, outBytes, shuffled, err := tt.runReduce(ctx, j, r)

	j.mu.Lock()
	defer j.mu.Unlock()
	j.reduceSlotsUsed[tt]--
	j.shuffleBytes += shuffled
	if err != nil {
		j.failures++
		j.reduceAttempts[r]++
		if j.reduceAttempts[r] >= j.conf.MaxAttempts {
			j.failLocked(fmt.Errorf("mapreduce: reduce %d failed %d times: %w", r, j.reduceAttempts[r], err))
		} else {
			j.reduceStatus[r] = tsPending
			j.pendingReduces = append(j.pendingReduces, r)
		}
		j.cond.Broadcast()
		return
	}
	j.reduceStatus[r] = tsDone
	j.reducesDone++
	j.reduceOut += outRecords
	j.outputBytes += outBytes
	j.cond.Broadcast()
}

// waitMapLoc blocks until map id's output location is known (it can
// disappear and reappear when outputs are lost and re-executed).
func (j *jobState) waitMapLoc(ctx context.Context, id int) (*TaskTracker, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if j.failed != nil {
			return nil, j.failed
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if tt, ok := j.mapLoc[id]; ok {
			return tt, nil
		}
		j.cond.Wait()
	}
}

// reportLostOutput re-queues a map whose output a reducer could not
// fetch (Hadoop's "map output lost" recovery).
func (j *jobState) reportLostOutput(id int, from *TaskTracker) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.mapLoc[id] != from {
		return // already re-executed elsewhere
	}
	delete(j.mapLoc, id)
	j.mapsDone--
	j.mapStatus[id] = tsPending
	j.pendingMaps = append(j.pendingMaps, id)
	j.failures++
	j.lostOutputs++
	j.cond.Broadcast()
}

// noteShuffleFetch records a reducer's successful fetch of map id's
// output — the first one timestamps the job's reduce-side start (the
// overlap metric) — and reports whether the producing tracker has
// died, so the blob path can mark the segment as recovered
// intermediate data.
func (j *jobState) noteShuffleFetch(id int) (producerDead bool) {
	j.mu.Lock()
	if j.firstFetchAt.IsZero() {
		j.firstFetchAt = time.Now()
	}
	producer := j.mapLoc[id]
	j.mu.Unlock()
	return producer != nil && producer.Dead()
}

// mapCount returns the final number of map tasks (valid once reduces
// have started: the split stream is closed by then).
func (j *jobState) mapCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.splits)
}

// cleanupAndListOutputs removes temporary attempt files and returns
// the committed output paths.
func (j *jobState) cleanupAndListOutputs(ctx context.Context) ([]string, error) {
	tmpDir := j.conf.OutputDir + "/_temporary"
	if infos, err := j.fs.List(ctx, tmpDir); err == nil {
		for _, fi := range infos {
			if derr := j.fs.Delete(ctx, fi.Path); derr != nil {
				obs.Log.Debugf("mapreduce: job %d: delete tmp %s: %v", j.id, fi.Path, derr)
			}
		}
		if derr := j.fs.Delete(ctx, tmpDir); derr != nil {
			obs.Log.Debugf("mapreduce: job %d: delete tmp dir %s: %v", j.id, tmpDir, derr)
		}
	}
	infos, err := j.fs.List(ctx, j.conf.OutputDir)
	if err != nil {
		return nil, err
	}
	var outs []string
	for _, fi := range infos {
		if fi.IsDir || strings.HasPrefix(dfs.Base(fi.Path), "_") {
			continue
		}
		outs = append(outs, fi.Path)
	}
	return outs, nil
}

// expandInputs replaces directory inputs with their files (ignoring
// _-prefixed entries, like Hadoop).
func expandInputs(ctx context.Context, fs dfs.FileSystem, inputs []string) ([]string, error) {
	var out []string
	for _, in := range inputs {
		fi, err := fs.Stat(ctx, in)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: input %s: %w", in, err)
		}
		if !fi.IsDir {
			out = append(out, in)
			continue
		}
		infos, err := fs.List(ctx, in)
		if err != nil {
			return nil, err
		}
		for _, e := range infos {
			if e.IsDir || strings.HasPrefix(dfs.Base(e.Path), "_") {
				continue
			}
			out = append(out, e.Path)
		}
	}
	return out, nil
}

func hostIn(host string, hosts []string) bool {
	for _, h := range hosts {
		if h == host {
			return true
		}
	}
	return false
}
