// Package mapreduce is the Hadoop-like Map/Reduce framework of the
// reproduction (§2.2): a jobtracker schedules map and reduce tasks onto
// tasktrackers (one per simulated machine, with a fixed number of task
// slots), map tasks read data-local splits where possible, map outputs
// are partitioned/sorted/combined and served to reducers over the
// (shaped) network, and reducers write job output through one of two
// committers:
//
//   - SeparateFiles — the original Hadoop behaviour: every reducer
//     writes its own temporary part file and renames it into the output
//     directory on success (Figure 1 of the paper);
//   - SharedAppend — the paper's modified framework: every reducer
//     appends its output to one shared file (Figure 2), which only
//     works on a backend with concurrent append support (BSFS).
//
// Divergence from Hadoop noted for reviewers: job coordination
// (jobtracker↔tasktracker control messages) is in-process function
// calls rather than RPC, because Go functions cannot cross a process
// boundary; all DATA movement — split reads, shuffle transfers, output
// writes — goes through the transport layer and is therefore shaped
// and measured like the paper's.
package mapreduce

import (
	"fmt"
	"sort"
	"time"

	"blobseer/internal/shuffle"
	"blobseer/internal/wire"
)

// Pair is one key/value record.
type Pair struct {
	Key   string
	Value string
}

// MapFunc processes one input record. For text inputs key is
// "<path>:<offset>" and value is the line.
type MapFunc func(key, value string, emit func(k, v string))

// ReduceFunc merges all values of one intermediate key.
type ReduceFunc func(key string, values []string, emit func(k, v string))

// OutputMode selects the reduce-output committer.
type OutputMode int

// Output modes.
const (
	// SeparateFiles: one part file per reducer, temp + rename commit.
	SeparateFiles OutputMode = iota
	// SharedAppend: all reducers append to one shared file.
	SharedAppend
)

// String implements fmt.Stringer.
func (m OutputMode) String() string {
	switch m {
	case SeparateFiles:
		return "separate-files"
	case SharedAppend:
		return "shared-append"
	default:
		return fmt.Sprintf("OutputMode(%d)", int(m))
	}
}

// JobConf describes one Map/Reduce job.
type JobConf struct {
	Name string

	// Input files (text, newline-delimited records).
	Input []string
	// OutputDir receives part files (SeparateFiles) or the single
	// shared file (SharedAppend).
	OutputDir string

	Map     MapFunc
	Combine ReduceFunc // optional map-side pre-aggregation
	Reduce  ReduceFunc

	NumReducers int
	OutputMode  OutputMode

	// Shuffle selects the intermediate-data backend. Memory (the zero
	// value) is classic Hadoop: trackers keep map outputs in process
	// memory and a dead tracker's outputs force map re-execution. Blob
	// stores every map output partition as a concurrent append to a
	// shared per-partition intermediate BLOB: reducers start fetching
	// while maps still run (shuffle overlaps the map phase) and
	// tracker death never loses intermediate data. Blob requires a
	// BlobSeer-backed mount.
	Shuffle shuffle.Backend

	// ShufflePageSize is the page size of the Blob backend's
	// intermediate BLOBs (segment appends are padded to whole pages so
	// concurrent appenders stay merge-free); zero uses the file
	// system's block size.
	ShufflePageSize uint64

	// KeepIntermediate opts out of the job-end cleanup that retires the
	// Blob backend's intermediate BLOBs through the garbage collector.
	// Debugging aid: kept BLOBs let a post-mortem re-read the raw
	// shuffle segments, at the cost of storage that nothing reclaims.
	KeepIntermediate bool

	// MapsDoneHook, when set, runs synchronously at the map/reduce
	// barrier: all maps have finished, and no barrier-gated reduce has
	// been scheduled yet. Tests and experiments use it to inject
	// faults at a deterministic point — e.g. killing a tracker the
	// moment its map outputs become shuffle-only.
	MapsDoneHook func()

	// SplitSize is the map input split size in bytes; zero uses the
	// file system's block size (Hadoop's default: one mapper per
	// chunk).
	SplitSize uint64

	// Modeled per-record compute cost, standing in for the real CPU
	// work of the paper's applications ("data join is a computation-
	// intensive application", §4.3). Zero means no modeled cost.
	MapCostPerRecord    time.Duration
	ReduceCostPerRecord time.Duration

	// MaxAttempts bounds task re-execution (default 4, like Hadoop).
	MaxAttempts int
}

// SharedOutputName is the single output file of SharedAppend jobs.
const SharedOutputName = "part-all"

// JobResult summarizes a completed job.
type JobResult struct {
	Duration time.Duration
	// MapPhase is the time until the last map finished (and reduces
	// could start); ReducePhase is the remainder.
	MapPhase    time.Duration
	ReducePhase time.Duration

	MapTasks    int
	ReduceTasks int
	// LocalMaps counts map tasks that ran on a host holding a replica
	// of their split (the jobtracker "will use it to execute tasks on
	// datanodes in such way as to achieve load balancing", §2.2).
	LocalMaps int

	// InputBytes is the total bytes covered by the job's splits. When
	// inputs were pinned (see InputVersions) it equals the input sizes
	// at the pinned snapshots: a job submitted mid-append processes
	// exactly the bytes that existed at submit, no matter how far
	// concurrent appenders grow the files during the run.
	InputBytes uint64

	// InputVersions maps each input file to the snapshot version the
	// job pinned at submit. Nil when the backend has no versioned
	// access (HDFS) and the job read latest, the pre-snapshot
	// behaviour.
	InputVersions map[string]uint64

	MapInputRecords     uint64
	MapOutputRecords    uint64
	ShuffleBytes        uint64
	ReduceOutputRecords uint64
	OutputBytes         uint64

	// OutputFiles lists the committed output paths: NumReducers files
	// for SeparateFiles, exactly one for SharedAppend.
	OutputFiles []string

	// TaskFailures counts task attempts that failed and were retried.
	TaskFailures int

	// MapOutputsLost counts map tasks re-queued because a reducer
	// could not fetch their output (the memory shuffle backend's "map
	// output lost" path; always zero with the blob backend, whose
	// published segments survive tracker death).
	MapOutputsLost int

	// FirstShuffleFetch is when, measured from job start, the first
	// map output was fetched by any reducer (zero if none was). With
	// the blob shuffle backend this lands before MapPhase ends:
	// shuffle overlaps the map phase.
	FirstShuffleFetch time.Duration

	// SegmentsAppended/Fetched/Recovered are the blob shuffle
	// backend's counters: segments appended to the intermediate BLOBs,
	// segments fetched by reducers, and segments fetched after their
	// producing tracker had died — data the memory backend would have
	// lost. All zero under the memory backend.
	SegmentsAppended  uint64
	SegmentsFetched   uint64
	SegmentsRecovered uint64
}

//
// Intermediate data encoding (map output partitions).
//

// encodePairs renders sorted pairs as a byte stream for the shuffle.
func encodePairs(pairs []Pair) []byte {
	var b []byte
	b = wire.AppendUvarint(b, uint64(len(pairs)))
	for _, p := range pairs {
		b = wire.AppendString(b, p.Key)
		b = wire.AppendString(b, p.Value)
	}
	return b
}

// decodePairs parses an encoded partition.
func decodePairs(raw []byte) ([]Pair, error) {
	r := wire.NewReader(raw)
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	pairs := make([]Pair, 0, n)
	for i := uint64(0); i < n; i++ {
		var p Pair
		p.Key = r.String()
		p.Value = r.String()
		pairs = append(pairs, p)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return pairs, nil
}

// sortPairs orders by key, then value (stable output for tests).
func sortPairs(pairs []Pair) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Key != pairs[j].Key {
			return pairs[i].Key < pairs[j].Key
		}
		return pairs[i].Value < pairs[j].Value
	})
}

// partitionOf assigns a key to one of n reduce partitions (Hadoop's
// hash partitioner).
func partitionOf(key string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	// Avalanche so short keys spread (same fix as the DHT ring).
	h ^= h >> 16
	h *= 0x7feb352d
	h ^= h >> 15
	return int(h % uint32(n))
}

// combinePairs applies a combiner to sorted pairs, producing the
// combined (still sorted) stream.
func combinePairs(pairs []Pair, combine ReduceFunc) []Pair {
	if len(pairs) == 0 {
		return pairs
	}
	out := make([]Pair, 0, len(pairs))
	emit := func(k, v string) { out = append(out, Pair{k, v}) }
	start := 0
	for i := 1; i <= len(pairs); i++ {
		if i == len(pairs) || pairs[i].Key != pairs[start].Key {
			values := make([]string, 0, i-start)
			for _, p := range pairs[start:i] {
				values = append(values, p.Value)
			}
			combine(pairs[start].Key, values, emit)
			start = i
		}
	}
	sortPairs(out)
	return out
}

// costModel batches modeled per-record compute into coarse sleeps so
// the Go timer resolution does not distort small per-record costs.
type costModel struct {
	perRecord time.Duration
	pending   int
}

const costBatch = 256

func (c *costModel) tick() {
	if c.perRecord <= 0 {
		return
	}
	c.pending++
	if c.pending >= costBatch {
		time.Sleep(time.Duration(c.pending) * c.perRecord)
		c.pending = 0
	}
}

func (c *costModel) flush() {
	if c.perRecord > 0 && c.pending > 0 {
		time.Sleep(time.Duration(c.pending) * c.perRecord)
		c.pending = 0
	}
}
