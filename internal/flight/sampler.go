package flight

import (
	"sync/atomic"
	"time"

	"blobseer/internal/metrics"
	"blobseer/internal/obs"
)

// SamplerOptions tune the tail-sampling policy.
type SamplerOptions struct {
	// SlowFloor is the minimum root duration worth keeping regardless
	// of the live distribution (default 50ms). Zero keeps the default;
	// negative disables the floor (only the percentile gate applies).
	SlowFloor time.Duration
	// P99Factor keeps a trace when its root ran past factor × the live
	// p99 of the same-named op histogram (default 1.0; the histogram
	// gate needs MinCount samples before it judges anything).
	P99Factor float64
	// MinCount is the sample count a histogram needs before its p99 is
	// trusted (default 50).
	MinCount uint64
	// Registry supplies the live op histograms (default
	// metrics.Default).
	Registry *metrics.Registry
}

func (o SamplerOptions) withDefaults() SamplerOptions {
	if o.SlowFloor == 0 {
		o.SlowFloor = 50 * time.Millisecond
	} else if o.SlowFloor < 0 {
		o.SlowFloor = 1<<63 - 1
	}
	if o.P99Factor <= 0 {
		o.P99Factor = 1.0
	}
	if o.MinCount == 0 {
		o.MinCount = 50
	}
	if o.Registry == nil {
		o.Registry = metrics.Default
	}
	return o
}

// Sampler decides, at root-span completion, whether the finished trace
// is worth persisting — tail sampling: the whole causal tree is kept
// or dropped based on how the operation actually went, never on a coin
// flip taken up front. A trace is kept when its root is slow (past the
// floor, or past P99Factor × the live p99 of the matching op
// histogram) or when any retained span of the trace errored.
type Sampler struct {
	opts    SamplerOptions
	rec     *Recorder
	coll    *obs.Collector
	cancel  func()
	kept    atomic.Uint64
	dropped atomic.Uint64
}

// AttachSampler hooks a tail sampler between coll and rec. Detach with
// Close.
func AttachSampler(coll *obs.Collector, rec *Recorder, opts SamplerOptions) *Sampler {
	s := &Sampler{opts: opts.withDefaults(), rec: rec, coll: coll}
	s.cancel = coll.Observe(s.onSpan)
	return s
}

// onSpan fires on every completed span; only roots trigger a verdict.
func (s *Sampler) onSpan(si obs.SpanInfo) {
	if si.Parent != 0 {
		return
	}
	reason := s.verdict(si)
	if reason == "" {
		// The root itself passed; the trace may still carry an error
		// in a child span — that alone warrants keeping it.
		spans := s.coll.Trace(si.Trace)
		for _, sp := range spans {
			if sp.Err != "" {
				s.keep(si, "error", spans)
				return
			}
		}
		s.dropped.Add(1)
		return
	}
	s.keep(si, reason, s.coll.Trace(si.Trace))
}

// verdict classifies the root span alone: "slow", "error", or "" for
// unremarkable.
func (s *Sampler) verdict(root obs.SpanInfo) string {
	if root.Err != "" {
		return "error"
	}
	if root.Dur >= s.opts.SlowFloor {
		return "slow"
	}
	if snap, ok := s.opts.Registry.OpSnapshot(root.Name); ok && snap.Count >= s.opts.MinCount {
		p99 := snap.Quantile(0.99)
		if p99 > 0 && float64(root.Dur) >= s.opts.P99Factor*float64(p99) {
			return "slow"
		}
	}
	return ""
}

func (s *Sampler) keep(root obs.SpanInfo, reason string, spans []obs.SpanInfo) {
	if len(spans) == 0 {
		spans = []obs.SpanInfo{root}
	}
	if err := s.rec.RecordTrace(root.Trace, reason, root.Dur, spans); err != nil {
		obs.Log.Errorf("flight: record trace %d: %v", root.Trace, err)
		return
	}
	s.kept.Add(1)
}

// Stats reports traces kept and dropped since attach.
func (s *Sampler) Stats() (kept, dropped uint64) {
	return s.kept.Load(), s.dropped.Load()
}

// Close detaches the sampler from the collector.
func (s *Sampler) Close() {
	if s.cancel != nil {
		s.cancel()
		s.cancel = nil
	}
}
