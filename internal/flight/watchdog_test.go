package flight

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"blobseer/internal/metrics"
	"blobseer/internal/monitor"
)

// lagMonitor builds a monitor with a single vmshard source whose
// journal_pending gauge tracks *lag.
func lagMonitor(lag *float64) *monitor.Monitor {
	m := monitor.New(monitor.Config{})
	m.Register(monitor.KindVMShard, "vm-0", func() monitor.Sample {
		return monitor.Sample{monitor.KeyJournalPending: *lag}
	})
	return m
}

func TestWatchdogHysteresis(t *testing.T) {
	lag := 0.0
	m := lagMonitor(&lag)
	rec, _ := openTemp(t, RecorderOptions{})
	defer rec.Close()

	w := NewWatchdog(m, rec, []Rule{RuleJournalLag(100)}, WatchdogOptions{
		FireAfter: 2, ClearAfter: 3, SnapshotEvery: -1,
	})

	eval := func() { m.CollectOnce(); w.Evaluate() }

	// One breach must not fire (hysteresis).
	lag = 500
	eval()
	if w.Firing() != 0 {
		t.Fatal("fired after one breach; want hysteresis to hold")
	}
	// Second consecutive breach fires.
	eval()
	if w.Firing() != 1 {
		t.Fatal("did not fire after FireAfter consecutive breaches")
	}
	// Two OKs are not enough to clear.
	lag = 0
	eval()
	eval()
	if w.Firing() != 1 {
		t.Fatal("cleared before ClearAfter consecutive OKs")
	}
	// Third OK clears.
	eval()
	if w.Firing() != 0 {
		t.Fatal("did not clear after ClearAfter consecutive OKs")
	}

	// A single OK blip while breaching must reset the breach run.
	lag = 500
	eval()
	lag = 0
	eval()
	lag = 500
	eval()
	if w.Firing() != 0 {
		t.Fatal("fired across a non-consecutive breach run")
	}

	// Exactly one fire + one clear event landed in the flight log.
	events, err := rec.Replay()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	var fires, clears int
	for _, ev := range events {
		if ev.Kind != KindAlert {
			t.Fatalf("unexpected event kind %s", ev.Kind)
		}
		switch ev.Alert.State {
		case StateFiring:
			fires++
		case StateOK:
			clears++
		}
	}
	if fires != 1 || clears != 1 {
		t.Fatalf("got %d fires / %d clears, want 1 / 1", fires, clears)
	}

	alerts := w.Alerts()
	if len(alerts) != 1 || alerts[0].Rule != "journal_lag" || alerts[0].State != StateOK {
		t.Fatalf("alerts = %+v", alerts)
	}
	if alerts[0].Fires != 1 {
		t.Fatalf("lifetime fires = %d, want 1", alerts[0].Fires)
	}
}

func TestWatchdogArmEvaluatesOnCollection(t *testing.T) {
	lag := 1000.0
	m := lagMonitor(&lag)
	w := NewWatchdog(m, nil, []Rule{RuleJournalLag(100)}, WatchdogOptions{FireAfter: 1, SnapshotEvery: -1})
	w.Arm()
	defer w.Close()

	m.CollectOnce()
	if w.Evals() != 1 {
		t.Fatalf("evals = %d after one collection, want 1", w.Evals())
	}
	if w.Firing() != 1 {
		t.Fatal("armed watchdog did not fire on collection")
	}
	w.Close()
	m.CollectOnce()
	if w.Evals() != 1 {
		t.Fatal("closed watchdog still evaluating")
	}
}

func TestWatchdogHealthTransitions(t *testing.T) {
	healthy := true
	m := monitor.New(monitor.Config{})
	rec, _ := openTemp(t, RecorderOptions{})
	defer rec.Close()
	w := NewWatchdog(m, rec, []Rule{RuleHealth()}, WatchdogOptions{
		FireAfter: 1, ClearAfter: 1, SnapshotEvery: -1,
		HealthCheck: func(_ context.Context) monitor.HealthReport {
			var r monitor.HealthReport
			r.Healthy = true
			detail := ""
			if !healthy {
				detail = "ping timeout"
			}
			r.AddTimed("vm-shard-0", healthy, detail, 3*time.Millisecond)
			return r
		},
	})

	w.Evaluate()
	if w.Firing() != 0 {
		t.Fatal("fired while healthy")
	}
	healthy = false
	w.Evaluate()
	if w.Firing() != 1 {
		t.Fatal("health rule did not fire on unhealthy component")
	}
	healthy = true
	w.Evaluate()
	if w.Firing() != 0 {
		t.Fatal("health rule did not clear")
	}

	events, _ := rec.Replay()
	var healthEvents []HealthEvent
	for _, ev := range events {
		if ev.Kind == KindHealth {
			healthEvents = append(healthEvents, *ev.Health)
		}
	}
	if len(healthEvents) != 2 {
		t.Fatalf("got %d health transitions, want 2 (down, up)", len(healthEvents))
	}
	if healthEvents[0].Healthy || !healthEvents[1].Healthy {
		t.Fatalf("health transition order wrong: %+v", healthEvents)
	}
	if healthEvents[0].LatencyMs <= 0 {
		t.Fatal("health event lost check latency")
	}
}

func TestRuleLatencyWindowed(t *testing.T) {
	reg := metrics.NewRegistry()
	h := reg.Op("blob.append")
	rule := RuleLatency(reg, "blob.append", 10 /* ms */, 2.0)

	// Slow history: everything at 100ms.
	for i := 0; i < 100; i++ {
		h.RecordDuration(100 * time.Millisecond)
	}
	_, _, breached, _ := rule.Evaluate(monitor.ClusterSnapshot{}, nil)
	if !breached {
		t.Fatal("100ms p99 vs 20ms limit did not breach")
	}
	// Fast window after the slow history: the windowed delta must
	// judge only the new samples, not the cumulative distribution.
	for i := 0; i < 100; i++ {
		h.RecordDuration(1 * time.Millisecond)
	}
	value, limit, breached, _ := rule.Evaluate(monitor.ClusterSnapshot{}, nil)
	if breached {
		t.Fatalf("fast window breached: p99 %.2fms vs %.2fms", value, limit)
	}
	// Idle window: no samples, no breach.
	_, _, breached, detail := rule.Evaluate(monitor.ClusterSnapshot{}, nil)
	if breached || detail != "idle window" {
		t.Fatalf("idle window: breached=%v detail=%q", breached, detail)
	}
}

func TestLoadBaselines(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("BENCH_append.json", `{"fig":"append","latency":{"blob.append":{"p99_ms":12.5},"blob.pageview":{"p99_ms":3.0}}}`)
	write("BENCH_read.json", `{"fig":"read","latency":{"blob.append":{"p99_ms":20.0}}}`)
	write("not-a-bench.json", `{"latency":{"x":{"p99_ms":99}}}`)

	bs, err := LoadBaselines(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(bs) != 2 {
		t.Fatalf("got %d baselines, want 2: %+v", len(bs), bs)
	}
	if bs[0].Op != "blob.append" || bs[0].P99Ms != 20.0 {
		t.Fatalf("max-across-files not applied: %+v", bs[0])
	}
	if bs[1].Op != "blob.pageview" || bs[1].P99Ms != 3.0 {
		t.Fatalf("baseline mismatch: %+v", bs[1])
	}

	rules, err := StandardRules(StandardRulesOptions{BaselineDir: dir, Registry: metrics.NewRegistry()})
	if err != nil {
		t.Fatalf("standard rules: %v", err)
	}
	// 3 base rules + 2 latency rules.
	if len(rules) != 5 {
		t.Fatalf("got %d standard rules, want 5", len(rules))
	}
}
