package flight

import (
	"context"
	"errors"
	"testing"
	"time"

	"blobseer/internal/metrics"
	"blobseer/internal/obs"
)

// traceInto runs one two-span trace through the process-wide obs.Spans
// collector (the only sink obs.StartTrace records into), sleeping d in
// the root, optionally erroring the child.
func traceInto(d time.Duration, childErr error) {
	ctx, root := obs.StartTrace(context.Background(), "test.op")
	child := obs.StartChild(ctx, "test.child")
	time.Sleep(d)
	child.End(childErr)
	root.End(nil)
}

func newTestSampler(t *testing.T, opts SamplerOptions) (*Sampler, *Recorder) {
	t.Helper()
	rec, _ := openTemp(t, RecorderOptions{})
	t.Cleanup(func() { rec.Close() })
	s := AttachSampler(obs.Spans, rec, opts)
	t.Cleanup(s.Close)
	return s, rec
}

func TestSamplerKeepsSlowTrace(t *testing.T) {
	s, rec := newTestSampler(t, SamplerOptions{SlowFloor: 10 * time.Millisecond, Registry: metrics.NewRegistry()})

	traceInto(20*time.Millisecond, nil) // slow: kept
	traceInto(0, nil)                   // fast: dropped

	kept, dropped := s.Stats()
	if kept != 1 || dropped != 1 {
		t.Fatalf("kept=%d dropped=%d, want 1/1", kept, dropped)
	}
	events, err := rec.Replay()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(events) != 1 || events[0].Kind != KindTrace {
		t.Fatalf("events = %+v, want one trace", events)
	}
	tr := events[0].Trace
	if tr.Reason != "slow" {
		t.Fatalf("reason = %q, want slow", tr.Reason)
	}
	// The full causal tree came along, not just the root.
	if len(tr.Spans) != 2 {
		t.Fatalf("persisted %d spans, want 2 (root + child)", len(tr.Spans))
	}
}

func TestSamplerKeepsErroredChild(t *testing.T) {
	s, rec := newTestSampler(t, SamplerOptions{SlowFloor: time.Hour, Registry: metrics.NewRegistry()})

	// Fast trace, but the child errored: tail sampling must still keep
	// it — the verdict looks at the whole tree, not just the root.
	traceInto(0, errors.New("page put failed"))

	kept, _ := s.Stats()
	if kept != 1 {
		t.Fatalf("kept=%d, want 1 (errored child)", kept)
	}
	events, _ := rec.Replay()
	if len(events) != 1 || events[0].Trace.Reason != "error" {
		t.Fatalf("events = %+v, want one error-reason trace", events)
	}
}

func TestSamplerPercentileGate(t *testing.T) {
	reg := metrics.NewRegistry()
	h := reg.Op("test.op")
	// Tight distribution around 1ms, enough samples to trust p99.
	for i := 0; i < 200; i++ {
		h.RecordDuration(time.Millisecond)
	}
	s, _ := newTestSampler(t, SamplerOptions{
		SlowFloor: -1, // floor off: only the percentile gate judges
		P99Factor: 1.0,
		MinCount:  50,
		Registry:  reg,
	})

	traceInto(30*time.Millisecond, nil) // ≫ p99 of 1ms: kept
	traceInto(0, nil)                   // ~µs, below p99 bucket: dropped

	kept, dropped := s.Stats()
	if kept != 1 || dropped != 1 {
		t.Fatalf("kept=%d dropped=%d, want 1/1 via percentile gate", kept, dropped)
	}
}

func TestSamplerCancelDetaches(t *testing.T) {
	s, _ := newTestSampler(t, SamplerOptions{SlowFloor: time.Nanosecond, Registry: metrics.NewRegistry()})
	s.Close()
	traceInto(2*time.Millisecond, nil)
	kept, dropped := s.Stats()
	if kept != 0 || dropped != 0 {
		t.Fatalf("closed sampler still observing: kept=%d dropped=%d", kept, dropped)
	}
}
