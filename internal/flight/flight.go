// Package flight is the postmortem plane: a crash-surviving flight
// recorder plus an SLO watchdog over the live monitor.
//
// Everything PR 7/8 built — spans, metrics, the cluster monitor — is
// volatile: a killed process takes its evidence with it. The flight
// recorder fixes that by persisting a bounded event journal (backed by
// internal/kvlog, so it inherits CRC framing, crash recovery, and
// compaction) holding three event kinds: tail-sampled span trees
// (whole traces kept only when slow or erroring — the decision is made
// at root-span completion, never up front), periodic cluster snapshot
// deltas, and health/alert transitions. After a kill, reopening the
// same path replays the minutes before the outage.
//
// The watchdog turns monitor snapshots into decisions: a rule set
// (journal lag, NIC utilization, replica imbalance, component health,
// per-op p99 vs committed BENCH baselines) evaluated on every monitor
// collection, with hysteresis — N consecutive breaches to fire, M
// consecutive OKs to clear — so one noisy sample neither pages nor
// silences. Fire/clear transitions land in the flight log and are
// served on /alerts by internal/obshttp; `bsfsctl diag` folds alerts,
// the replayed timeline, /cluster, and /metrics.json into one archive.
package flight

import (
	"time"

	"blobseer/internal/monitor"
	"blobseer/internal/obs"
)

// Event kinds persisted in the flight log.
const (
	KindTrace    = "trace"    // a tail-sampled span tree
	KindSnapshot = "snapshot" // a periodic monitor.ClusterSnapshot
	KindHealth   = "health"   // a component health transition
	KindAlert    = "alert"    // a watchdog rule fire/clear
)

// Event is one flight-log record. Exactly one of Trace, Snapshot,
// Health, Alert is set, per Kind.
type Event struct {
	Seq  uint64    `json:"seq"`
	At   time.Time `json:"at"`
	Kind string    `json:"kind"`

	// Trace carries the full causal tree of one sampled trace along
	// with why it was kept.
	Trace *TraceEvent `json:"trace,omitempty"`

	// Snapshot is a monitor cluster view at At.
	Snapshot *monitor.ClusterSnapshot `json:"snapshot,omitempty"`

	// Health is a component health transition.
	Health *HealthEvent `json:"health,omitempty"`

	// Alert is a watchdog rule transition.
	Alert *AlertEvent `json:"alert,omitempty"`
}

// TraceEvent is a persisted span tree plus the sampling verdict.
type TraceEvent struct {
	TraceID uint64         `json:"trace_id"`
	Reason  string         `json:"reason"` // "slow" | "error"
	RootMs  float64        `json:"root_ms"`
	Spans   []obs.SpanInfo `json:"spans"`
}

// HealthEvent records one component flipping healthy<->unhealthy.
type HealthEvent struct {
	Component string  `json:"component"`
	Healthy   bool    `json:"healthy"`
	Detail    string  `json:"detail,omitempty"`
	LatencyMs float64 `json:"latency_ms,omitempty"`
}

// Alert states.
const (
	StateFiring = "firing"
	StateOK     = "ok"
)

// AlertEvent records one watchdog rule transition.
type AlertEvent struct {
	Rule   string  `json:"rule"`
	State  string  `json:"state"` // StateFiring | StateOK
	Value  float64 `json:"value"`
	Limit  float64 `json:"limit"`
	Detail string  `json:"detail,omitempty"`
}
