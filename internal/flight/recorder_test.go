package flight

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"blobseer/internal/monitor"
	"blobseer/internal/obs"
)

func openTemp(t *testing.T, opts RecorderOptions) (*Recorder, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "flight.log")
	r, err := Open(path, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return r, path
}

func TestAppendReplayRoundTrip(t *testing.T) {
	r, _ := openTemp(t, RecorderOptions{})
	defer r.Close()

	if err := r.RecordAlert(AlertEvent{Rule: "journal_lag", State: StateFiring, Value: 900, Limit: 512}); err != nil {
		t.Fatalf("alert: %v", err)
	}
	if err := r.RecordHealth(HealthEvent{Component: "vm-shard-1", Healthy: false, Detail: "timeout"}); err != nil {
		t.Fatalf("health: %v", err)
	}
	if err := r.RecordSnapshot(monitor.ClusterSnapshot{Collections: 7, MaxJournalLag: 900}); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	spans := []obs.SpanInfo{
		{Trace: 42, ID: 1, Name: "blob.append", Dur: 80 * time.Millisecond, Start: time.Now()},
		{Trace: 42, ID: 2, Parent: 1, Name: "vm.publish", Dur: 60 * time.Millisecond, Start: time.Now()},
	}
	if err := r.RecordTrace(42, "slow", 80*time.Millisecond, spans); err != nil {
		t.Fatalf("trace: %v", err)
	}

	events, err := r.Replay()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	kinds := []string{KindAlert, KindHealth, KindSnapshot, KindTrace}
	for i, ev := range events {
		if ev.Kind != kinds[i] {
			t.Errorf("event %d kind = %s, want %s", i, ev.Kind, kinds[i])
		}
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, i+1)
		}
	}
	tr := events[3].Trace
	if tr == nil || tr.TraceID != 42 || len(tr.Spans) != 2 || tr.Reason != "slow" {
		t.Fatalf("trace event mismatch: %+v", tr)
	}
}

// TestReopenAfterAbandon is the crash-survival contract: a recorder
// abandoned without Close (the killed process) must replay fully from
// a fresh Open on the same path.
func TestReopenAfterAbandon(t *testing.T) {
	r, path := openTemp(t, RecorderOptions{})
	for i := 0; i < 10; i++ {
		if err := r.RecordAlert(AlertEvent{Rule: "r", State: StateFiring, Value: float64(i)}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	// No Close: simulate the kill. The fd leaks for the test's
	// duration, which is the point.
	r2, err := Open(path, RecorderOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r2.Close()
	events, err := r2.Replay()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(events) != 10 {
		t.Fatalf("got %d events after reopen, want 10", len(events))
	}
	// Appends continue past the recovered seq.
	if err := r2.RecordAlert(AlertEvent{Rule: "r", State: StateOK}); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	events, _ = r2.Replay()
	if got := events[len(events)-1].Seq; got != 11 {
		t.Fatalf("post-reopen seq = %d, want 11", got)
	}
}

func TestRetentionMaxEvents(t *testing.T) {
	r, _ := openTemp(t, RecorderOptions{MaxEvents: 5})
	defer r.Close()
	for i := 0; i < 20; i++ {
		if err := r.RecordAlert(AlertEvent{Rule: "r", Value: float64(i)}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if n := r.Len(); n != 5 {
		t.Fatalf("Len = %d, want 5", n)
	}
	events, err := r.Replay()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(events) != 5 {
		t.Fatalf("got %d events, want 5", len(events))
	}
	// The oldest retained must be seq 16 (events 1..15 evicted).
	if events[0].Seq != 16 || events[4].Seq != 20 {
		t.Fatalf("retained seqs %d..%d, want 16..20", events[0].Seq, events[4].Seq)
	}
}

func TestRetentionCompacts(t *testing.T) {
	r, path := openTemp(t, RecorderOptions{MaxEvents: 8, CompactSlack: 4 << 10})
	defer r.Close()
	big := strings.Repeat("x", 512)
	for i := 0; i < 200; i++ {
		if err := r.RecordAlert(AlertEvent{Rule: "r", Detail: big}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	total, live := r.store.Size()
	if total-live > (4<<10)+2048 {
		t.Fatalf("dead bytes %d exceed compact slack", total-live)
	}
	// Retention state survives the compaction: reopen agrees.
	r.Close()
	r2, err := Open(path, RecorderOptions{MaxEvents: 8})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r2.Close()
	if n := r2.Len(); n != 8 {
		t.Fatalf("reopened Len = %d, want 8", n)
	}
}

func TestFormatTimeline(t *testing.T) {
	events := []Event{
		{Seq: 1, At: time.Now(), Kind: KindSnapshot, Snapshot: &monitor.ClusterSnapshot{Collections: 3, MaxJournalLag: 12}},
		{Seq: 2, At: time.Now(), Kind: KindAlert, Alert: &AlertEvent{Rule: "journal_lag", State: StateFiring, Value: 900, Limit: 512}},
		{Seq: 3, At: time.Now(), Kind: KindHealth, Health: &HealthEvent{Component: "vm-shard-0", Healthy: false, Detail: "rpc timeout"}},
		{Seq: 4, At: time.Now(), Kind: KindTrace, Trace: &TraceEvent{
			TraceID: 9, Reason: "slow", RootMs: 120,
			Spans: []obs.SpanInfo{
				{Trace: 9, ID: 1, Name: "blob.append", Start: time.Now(), Dur: 120 * time.Millisecond},
				{Trace: 9, ID: 2, Parent: 1, Name: "provider.put", Start: time.Now(), Dur: 80 * time.Millisecond},
			},
		}},
	}
	out := FormatTimeline(events)
	for _, want := range []string{"SNAPSHOT", "ALERT journal_lag FIRING", "HEALTH vm-shard-0 -> UNHEALTHY", "TRACE 9 kept (slow", "blob.append", "provider.put"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}

func BenchmarkFlightRecord(b *testing.B) {
	path := filepath.Join(b.TempDir(), "flight.log")
	r, err := Open(path, RecorderOptions{MaxEvents: 1024})
	if err != nil {
		b.Fatalf("open: %v", err)
	}
	defer r.Close()
	spans := []obs.SpanInfo{
		{Trace: 1, ID: 1, Name: "blob.append", Dur: 75 * time.Millisecond},
		{Trace: 1, ID: 2, Parent: 1, Name: "vm.publish", Dur: 30 * time.Millisecond},
		{Trace: 1, ID: 3, Parent: 1, Name: "provider.put", Dur: 20 * time.Millisecond},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.RecordTrace(uint64(i+1), "slow", 75*time.Millisecond, spans); err != nil {
			b.Fatalf("record: %v", err)
		}
	}
}
