package flight

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"blobseer/internal/metrics"
	"blobseer/internal/monitor"
)

// RuleJournalLag breaches when any metadata shard's journal backlog
// (records not yet retired by a checkpoint) exceeds maxLag.
func RuleJournalLag(maxLag float64) Rule {
	return Rule{
		Name: "journal_lag",
		Evaluate: func(snap monitor.ClusterSnapshot, _ *monitor.HealthReport) (float64, float64, bool, string) {
			lag := snap.MaxJournalLag
			return lag, maxLag, lag > maxLag, fmt.Sprintf("max journal_pending %.0f", lag)
		},
	}
}

// RuleUtilization breaches when any provider's NIC utilization exceeds
// maxUtil (1.0 = the modeled NIC is saturated).
func RuleUtilization(maxUtil float64) Rule {
	return Rule{
		Name: "nic_utilization",
		Evaluate: func(snap monitor.ClusterSnapshot, _ *monitor.HealthReport) (float64, float64, bool, string) {
			var worst float64
			var who string
			for _, c := range snap.Components {
				if c.Kind == monitor.KindProvider && c.Utilization > worst {
					worst = c.Utilization
					who = c.Name
				}
			}
			return worst, maxUtil, worst > maxUtil, fmt.Sprintf("hottest provider %s", who)
		},
	}
}

// RuleImbalance breaches when the read-load replica imbalance (hottest
// provider / mean) exceeds maxRatio.
func RuleImbalance(maxRatio float64) Rule {
	return Rule{
		Name: "replica_imbalance",
		Evaluate: func(snap monitor.ClusterSnapshot, _ *monitor.HealthReport) (float64, float64, bool, string) {
			r := snap.ReplicaImbalance
			return r, maxRatio, r > maxRatio, fmt.Sprintf("max/mean read rate %.2f", r)
		},
	}
}

// RuleHealth breaches when any component health check fails. Value is
// the unhealthy component count.
func RuleHealth() Rule {
	return Rule{
		Name: "component_health",
		Evaluate: func(_ monitor.ClusterSnapshot, health *monitor.HealthReport) (float64, float64, bool, string) {
			if health == nil {
				return 0, 0, false, "no health check wired"
			}
			var bad []string
			for _, c := range health.Components {
				if !c.Healthy {
					bad = append(bad, c.Component)
				}
			}
			return float64(len(bad)), 0, len(bad) > 0, strings.Join(bad, ",")
		},
	}
}

// RuleLatency breaches when the windowed (since the previous
// evaluation) p99 of the named op histogram exceeds factor × the
// committed baseline p99. The closure holds the previous cumulative
// snapshot, so each evaluation judges only the operations completed
// since the last one.
func RuleLatency(reg *metrics.Registry, op string, baselineP99Ms, factor float64) Rule {
	if reg == nil {
		reg = metrics.Default
	}
	if factor <= 0 {
		factor = 2.0
	}
	limit := baselineP99Ms * factor
	var prev metrics.HistogramSnapshot
	return Rule{
		Name: "latency_p99:" + op,
		Evaluate: func(_ monitor.ClusterSnapshot, _ *monitor.HealthReport) (float64, float64, bool, string) {
			cur, ok := reg.OpSnapshot(op)
			if !ok {
				return 0, limit, false, "no samples"
			}
			win := cur.Sub(prev)
			prev = cur
			if win.Count == 0 {
				return 0, limit, false, "idle window"
			}
			p99Ms := win.Quantile(0.99) / 1e6
			return p99Ms, limit, p99Ms > limit,
				fmt.Sprintf("windowed p99 %.2fms vs baseline %.2fms ×%.1f (n=%d)", p99Ms, baselineP99Ms, factor, win.Count)
		},
	}
}

// Baseline is one committed per-op latency reference.
type Baseline struct {
	Op    string
	P99Ms float64
	File  string
}

// LoadBaselines reads every BENCH_*.json in dir and extracts per-op
// p99 baselines from their latency maps, keeping the max p99 per op
// across files (the most permissive committed reference). The decode
// is structural — only the latency field is read — so flight stays
// independent of internal/experiments (which imports flight).
func LoadBaselines(dir string) ([]Baseline, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	byOp := make(map[string]Baseline)
	for _, p := range paths {
		buf, err := os.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("flight baselines: %w", err)
		}
		var rep struct {
			Latency map[string]struct {
				P99Ms float64 `json:"p99_ms"`
			} `json:"latency"`
		}
		if err := json.Unmarshal(buf, &rep); err != nil {
			return nil, fmt.Errorf("flight baselines %s: %w", filepath.Base(p), err)
		}
		for op, lq := range rep.Latency {
			if lq.P99Ms <= 0 {
				continue
			}
			if have, ok := byOp[op]; !ok || lq.P99Ms > have.P99Ms {
				byOp[op] = Baseline{Op: op, P99Ms: lq.P99Ms, File: filepath.Base(p)}
			}
		}
	}
	out := make([]Baseline, 0, len(byOp))
	for _, b := range byOp {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Op < out[j].Op })
	return out, nil
}

// StandardRulesOptions configure the default rule set.
type StandardRulesOptions struct {
	MaxJournalLag  float64 // default 512 pending records
	MaxUtilization float64 // default 0.95
	MaxImbalance   float64 // default 3.0
	// BaselineDir, when set, adds a RuleLatency per op found in the
	// committed BENCH_*.json files there.
	BaselineDir   string
	LatencyFactor float64 // default 2.0 × baseline p99
	Registry      *metrics.Registry
	// Health toggles the component-health rule (needs the watchdog's
	// HealthCheck wired to mean anything).
	Health bool
}

// StandardRules builds the default SLO rule set.
func StandardRules(o StandardRulesOptions) ([]Rule, error) {
	if o.MaxJournalLag <= 0 {
		o.MaxJournalLag = 512
	}
	if o.MaxUtilization <= 0 {
		o.MaxUtilization = 0.95
	}
	if o.MaxImbalance <= 0 {
		o.MaxImbalance = 3.0
	}
	if o.LatencyFactor <= 0 {
		o.LatencyFactor = 2.0
	}
	rules := []Rule{
		RuleJournalLag(o.MaxJournalLag),
		RuleUtilization(o.MaxUtilization),
		RuleImbalance(o.MaxImbalance),
	}
	if o.Health {
		rules = append(rules, RuleHealth())
	}
	if o.BaselineDir != "" {
		baselines, err := LoadBaselines(o.BaselineDir)
		if err != nil {
			return nil, err
		}
		for _, b := range baselines {
			rules = append(rules, RuleLatency(o.Registry, b.Op, b.P99Ms, o.LatencyFactor))
		}
	}
	return rules, nil
}
