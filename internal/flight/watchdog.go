package flight

import (
	"context"
	"sort"
	"sync"
	"time"

	"blobseer/internal/monitor"
	"blobseer/internal/obs"
)

// Rule is one SLO check. Evaluate inspects the fresh cluster snapshot
// (and optional health report) and returns the observed value, the
// committed limit, whether the limit is breached, and a short detail.
type Rule struct {
	Name     string
	Evaluate func(snap monitor.ClusterSnapshot, health *monitor.HealthReport) (value, limit float64, breached bool, detail string)
}

// WatchdogOptions tune the rule engine.
type WatchdogOptions struct {
	// FireAfter is how many consecutive breaches arm an alert
	// (default 2); ClearAfter is how many consecutive OK evaluations
	// clear a firing one (default 3). Hysteresis: one noisy sample
	// neither pages nor silences.
	FireAfter  int
	ClearAfter int
	// SnapshotEvery persists the cluster snapshot to the flight log on
	// every Nth evaluation (default 1 — every collection; 0 keeps the
	// default, negative disables snapshot recording).
	SnapshotEvery int
	// HealthCheck, when set, runs per evaluation (under HealthTimeout,
	// default 2s) and feeds health rules plus health-transition events.
	HealthCheck   func(ctx context.Context) monitor.HealthReport
	HealthTimeout time.Duration
	// TopK bounds snapshot heat sets (default 10).
	TopK int
}

func (o WatchdogOptions) withDefaults() WatchdogOptions {
	if o.FireAfter <= 0 {
		o.FireAfter = 2
	}
	if o.ClearAfter <= 0 {
		o.ClearAfter = 3
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 1
	}
	if o.HealthTimeout <= 0 {
		o.HealthTimeout = 2 * time.Second
	}
	if o.TopK <= 0 {
		o.TopK = 10
	}
	return o
}

// AlertState is one rule's live status, served on /alerts.
type AlertState struct {
	Rule     string    `json:"rule"`
	State    string    `json:"state"` // StateFiring | StateOK
	Value    float64   `json:"value"`
	Limit    float64   `json:"limit"`
	Detail   string    `json:"detail,omitempty"`
	Since    time.Time `json:"since,omitempty"`
	Breaches int       `json:"breaches"` // consecutive breach count
	Fires    uint64    `json:"fires"`    // lifetime fire transitions
}

// ruleState is the hysteresis counter pair for one rule.
type ruleState struct {
	breaches int
	oks      int
	firing   bool
	since    time.Time
	fires    uint64
	last     AlertState
}

// Watchdog evaluates rules over the monitor plane, applies hysteresis,
// and emits alert transitions into the flight recorder. Hook it to a
// monitor with Arm (evaluates on every collection) or call Evaluate
// directly from tests.
type Watchdog struct {
	opts  WatchdogOptions
	mon   *monitor.Monitor
	rec   *Recorder
	rules []Rule

	mu         sync.Mutex
	states     map[string]*ruleState
	lastHealth map[string]bool
	evals      uint64
	cancel     func()
}

// NewWatchdog builds an idle watchdog; rec may be nil (alerts stay
// in memory only).
func NewWatchdog(mon *monitor.Monitor, rec *Recorder, rules []Rule, opts WatchdogOptions) *Watchdog {
	return &Watchdog{
		opts:       opts.withDefaults(),
		mon:        mon,
		rec:        rec,
		rules:      rules,
		states:     make(map[string]*ruleState),
		lastHealth: make(map[string]bool),
	}
}

// Arm hooks Evaluate into every monitor collection pass. Disarm with
// Close.
func (w *Watchdog) Arm() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cancel != nil {
		return
	}
	w.cancel = w.mon.OnCollect(func() { w.Evaluate() })
}

// Close detaches the watchdog from the monitor.
func (w *Watchdog) Close() {
	w.mu.Lock()
	cancel := w.cancel
	w.cancel = nil
	w.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Evaluate runs one rule pass against a fresh snapshot (and health
// check when configured), updates hysteresis state, and records
// snapshot/health/alert events.
func (w *Watchdog) Evaluate() {
	snap := w.mon.Snapshot(w.opts.TopK)

	var health *monitor.HealthReport
	if w.opts.HealthCheck != nil {
		ctx, cancel := context.WithTimeout(context.Background(), w.opts.HealthTimeout)
		h := w.opts.HealthCheck(ctx)
		cancel()
		health = &h
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	w.evals++

	if w.rec != nil && w.opts.SnapshotEvery > 0 && w.evals%uint64(w.opts.SnapshotEvery) == 0 {
		if err := w.rec.RecordSnapshot(snap); err != nil {
			obs.Log.Errorf("flight: record snapshot: %v", err)
		}
	}
	if health != nil {
		w.recordHealthTransitions(health)
	}

	for _, rule := range w.rules {
		value, limit, breached, detail := rule.Evaluate(snap, health)
		st := w.states[rule.Name]
		if st == nil {
			st = &ruleState{}
			w.states[rule.Name] = st
		}
		if breached {
			st.breaches++
			st.oks = 0
		} else {
			st.oks++
			st.breaches = 0
		}
		switch {
		case !st.firing && st.breaches >= w.opts.FireAfter:
			st.firing = true
			st.since = time.Now()
			st.fires++
			w.transition(rule.Name, StateFiring, value, limit, detail)
		case st.firing && st.oks >= w.opts.ClearAfter:
			st.firing = false
			st.since = time.Now()
			w.transition(rule.Name, StateOK, value, limit, detail)
		}
		state := StateOK
		if st.firing {
			state = StateFiring
		}
		st.last = AlertState{
			Rule:     rule.Name,
			State:    state,
			Value:    value,
			Limit:    limit,
			Detail:   detail,
			Since:    st.since,
			Breaches: st.breaches,
			Fires:    st.fires,
		}
	}
}

// transition records one fire/clear event; callers hold w.mu.
func (w *Watchdog) transition(rule, state string, value, limit float64, detail string) {
	if state == StateFiring {
		obs.Log.Warnf("alert FIRING: %s value=%.3f limit=%.3f %s", rule, value, limit, detail)
	} else {
		obs.Log.Infof("alert cleared: %s value=%.3f limit=%.3f", rule, value, limit)
	}
	if w.rec == nil {
		return
	}
	ev := AlertEvent{Rule: rule, State: state, Value: value, Limit: limit, Detail: detail}
	if err := w.rec.RecordAlert(ev); err != nil {
		obs.Log.Errorf("flight: record alert: %v", err)
	}
}

// recordHealthTransitions emits a health event per component flip;
// callers hold w.mu.
func (w *Watchdog) recordHealthTransitions(h *monitor.HealthReport) {
	for _, c := range h.Components {
		prev, seen := w.lastHealth[c.Component]
		w.lastHealth[c.Component] = c.Healthy
		if seen && prev == c.Healthy {
			continue
		}
		if !seen && c.Healthy {
			continue // first sighting healthy: not a transition worth a record
		}
		if w.rec == nil {
			continue
		}
		ev := HealthEvent{Component: c.Component, Healthy: c.Healthy, Detail: c.Detail, LatencyMs: c.LatencyMs}
		if err := w.rec.RecordHealth(ev); err != nil {
			obs.Log.Errorf("flight: record health: %v", err)
		}
	}
}

// Alerts returns the current per-rule states, firing first, then by
// rule name — the /alerts payload.
func (w *Watchdog) Alerts() []AlertState {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]AlertState, 0, len(w.states))
	for _, st := range w.states {
		if st.last.Rule != "" {
			out = append(out, st.last)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if (a.State == StateFiring) != (b.State == StateFiring) {
			return a.State == StateFiring
		}
		return a.Rule < b.Rule
	})
	return out
}

// Firing reports how many rules are currently firing.
func (w *Watchdog) Firing() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, st := range w.states {
		if st.firing {
			n++
		}
	}
	return n
}

// Evals reports evaluation passes run.
func (w *Watchdog) Evals() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.evals
}
