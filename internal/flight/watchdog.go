package flight

import (
	"context"
	"sort"
	"sync"
	"time"

	"blobseer/internal/monitor"
	"blobseer/internal/obs"
)

// Rule is one SLO check. Evaluate inspects the fresh cluster snapshot
// (and optional health report) and returns the observed value, the
// committed limit, whether the limit is breached, and a short detail.
type Rule struct {
	Name     string
	Evaluate func(snap monitor.ClusterSnapshot, health *monitor.HealthReport) (value, limit float64, breached bool, detail string)
}

// WatchdogOptions tune the rule engine.
type WatchdogOptions struct {
	// FireAfter is how many consecutive breaches arm an alert
	// (default 2); ClearAfter is how many consecutive OK evaluations
	// clear a firing one (default 3). Hysteresis: one noisy sample
	// neither pages nor silences.
	FireAfter  int
	ClearAfter int
	// SnapshotEvery persists the cluster snapshot to the flight log on
	// every Nth evaluation (default 1 — every collection; 0 keeps the
	// default, negative disables snapshot recording).
	SnapshotEvery int
	// HealthCheck, when set, runs per evaluation (under HealthTimeout,
	// default 2s) and feeds health rules plus health-transition events.
	HealthCheck   func(ctx context.Context) monitor.HealthReport
	HealthTimeout time.Duration
	// TopK bounds snapshot heat sets (default 10).
	TopK int
}

func (o WatchdogOptions) withDefaults() WatchdogOptions {
	if o.FireAfter <= 0 {
		o.FireAfter = 2
	}
	if o.ClearAfter <= 0 {
		o.ClearAfter = 3
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 1
	}
	if o.HealthTimeout <= 0 {
		o.HealthTimeout = 2 * time.Second
	}
	if o.TopK <= 0 {
		o.TopK = 10
	}
	return o
}

// AlertState is one rule's live status, served on /alerts.
type AlertState struct {
	Rule     string    `json:"rule"`
	State    string    `json:"state"` // StateFiring | StateOK
	Value    float64   `json:"value"`
	Limit    float64   `json:"limit"`
	Detail   string    `json:"detail,omitempty"`
	Since    time.Time `json:"since,omitempty"`
	Breaches int       `json:"breaches"` // consecutive breach count
	Fires    uint64    `json:"fires"`    // lifetime fire transitions
}

// ruleState is the hysteresis counter pair for one rule.
type ruleState struct {
	breaches int
	oks      int
	firing   bool
	since    time.Time
	fires    uint64
	last     AlertState
}

// Watchdog evaluates rules over the monitor plane, applies hysteresis,
// and emits alert transitions into the flight recorder. Hook it to a
// monitor with Arm (evaluates on every collection) or call Evaluate
// directly from tests.
type Watchdog struct {
	opts  WatchdogOptions
	mon   *monitor.Monitor
	rec   *Recorder
	rules []Rule

	// now is the injected clock behind alert Since stamps; tests
	// override it for deterministic hysteresis timelines.
	now func() time.Time

	mu         sync.Mutex
	states     map[string]*ruleState
	lastHealth map[string]bool
	evals      uint64
	cancel     func()
}

// NewWatchdog builds an idle watchdog; rec may be nil (alerts stay
// in memory only).
func NewWatchdog(mon *monitor.Monitor, rec *Recorder, rules []Rule, opts WatchdogOptions) *Watchdog {
	return &Watchdog{
		opts:       opts.withDefaults(),
		mon:        mon,
		rec:        rec,
		rules:      rules,
		now:        time.Now,
		states:     make(map[string]*ruleState),
		lastHealth: make(map[string]bool),
	}
}

// Arm hooks Evaluate into every monitor collection pass. Disarm with
// Close.
func (w *Watchdog) Arm() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cancel != nil {
		return
	}
	w.cancel = w.mon.OnCollect(func() { w.Evaluate() })
}

// Close detaches the watchdog from the monitor.
func (w *Watchdog) Close() {
	w.mu.Lock()
	cancel := w.cancel
	w.cancel = nil
	w.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Evaluate runs one rule pass against a fresh snapshot (and health
// check when configured), updates hysteresis state, and records
// snapshot/health/alert events. Journal writes are decided under
// w.mu but performed after it is released: a kvlog append (worst
// case: a compaction rewrite) under the state lock would stall every
// /alerts and Firing reader — the same holding-a-lock-across-I/O
// class the monitor's OnCollect design avoids, enforced here by the
// lockhold analyzer.
func (w *Watchdog) Evaluate() {
	snap := w.mon.Snapshot(w.opts.TopK)

	var health *monitor.HealthReport
	if w.opts.HealthCheck != nil {
		// The ping is driven by the collector tick, not an RPC caller:
		// there is no inbound context to thread, only the timeout.
		//lint:detached health pings run on the monitor's collection goroutine; HealthTimeout bounds them
		ctx, cancel := context.WithTimeout(context.Background(), w.opts.HealthTimeout)
		h := w.opts.HealthCheck(ctx)
		cancel()
		health = &h
	}

	var pending []Event

	w.mu.Lock()
	w.evals++
	if w.rec != nil && w.opts.SnapshotEvery > 0 && w.evals%uint64(w.opts.SnapshotEvery) == 0 {
		s := snap
		pending = append(pending, Event{Kind: KindSnapshot, Snapshot: &s})
	}
	if health != nil {
		pending = append(pending, w.healthTransitionsLocked(health)...)
	}

	for _, rule := range w.rules {
		value, limit, breached, detail := rule.Evaluate(snap, health)
		st := w.states[rule.Name]
		if st == nil {
			st = &ruleState{}
			w.states[rule.Name] = st
		}
		if breached {
			st.breaches++
			st.oks = 0
		} else {
			st.oks++
			st.breaches = 0
		}
		switch {
		case !st.firing && st.breaches >= w.opts.FireAfter:
			st.firing = true
			st.since = w.now()
			st.fires++
			pending = append(pending, w.transitionLocked(rule.Name, StateFiring, value, limit, detail)...)
		case st.firing && st.oks >= w.opts.ClearAfter:
			st.firing = false
			st.since = w.now()
			pending = append(pending, w.transitionLocked(rule.Name, StateOK, value, limit, detail)...)
		}
		state := StateOK
		if st.firing {
			state = StateFiring
		}
		st.last = AlertState{
			Rule:     rule.Name,
			State:    state,
			Value:    value,
			Limit:    limit,
			Detail:   detail,
			Since:    st.since,
			Breaches: st.breaches,
			Fires:    st.fires,
		}
	}
	w.mu.Unlock()

	// Journal the decided events with the state lock released. The
	// recorder serializes appends itself, so within this Evaluate the
	// snapshot -> health -> alert order is preserved.
	for _, ev := range pending {
		if err := w.rec.Append(ev); err != nil {
			obs.Log.Errorf("flight: record %s: %v", ev.Kind, err)
		}
	}
}

// transitionLocked logs one fire/clear transition and returns the
// event to journal (empty without a recorder); callers hold w.mu.
func (w *Watchdog) transitionLocked(rule, state string, value, limit float64, detail string) []Event {
	if state == StateFiring {
		obs.Log.Warnf("alert FIRING: %s value=%.3f limit=%.3f %s", rule, value, limit, detail)
	} else {
		obs.Log.Infof("alert cleared: %s value=%.3f limit=%.3f", rule, value, limit)
	}
	if w.rec == nil {
		return nil
	}
	return []Event{{Kind: KindAlert, Alert: &AlertEvent{Rule: rule, State: state, Value: value, Limit: limit, Detail: detail}}}
}

// healthTransitionsLocked updates per-component health memory and
// returns one event per flip; callers hold w.mu.
func (w *Watchdog) healthTransitionsLocked(h *monitor.HealthReport) []Event {
	var events []Event
	for _, c := range h.Components {
		prev, seen := w.lastHealth[c.Component]
		w.lastHealth[c.Component] = c.Healthy
		if seen && prev == c.Healthy {
			continue
		}
		if !seen && c.Healthy {
			continue // first sighting healthy: not a transition worth a record
		}
		if w.rec == nil {
			continue
		}
		events = append(events, Event{Kind: KindHealth, Health: &HealthEvent{
			Component: c.Component, Healthy: c.Healthy, Detail: c.Detail, LatencyMs: c.LatencyMs,
		}})
	}
	return events
}

// Alerts returns the current per-rule states, firing first, then by
// rule name — the /alerts payload.
func (w *Watchdog) Alerts() []AlertState {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]AlertState, 0, len(w.states))
	for _, st := range w.states {
		if st.last.Rule != "" {
			out = append(out, st.last)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if (a.State == StateFiring) != (b.State == StateFiring) {
			return a.State == StateFiring
		}
		return a.Rule < b.Rule
	})
	return out
}

// Firing reports how many rules are currently firing.
func (w *Watchdog) Firing() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, st := range w.states {
		if st.firing {
			n++
		}
	}
	return n
}

// Evals reports evaluation passes run.
func (w *Watchdog) Evals() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.evals
}
