package flight

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"blobseer/internal/kvlog"
	"blobseer/internal/monitor"
	"blobseer/internal/obs"
)

// RecorderOptions bound the flight log.
type RecorderOptions struct {
	// MaxEvents caps retained events; the oldest are deleted past it
	// (default 4096).
	MaxEvents int
	// MaxBytes caps the live payload bytes; oldest events are deleted
	// past it (default 8 MiB).
	MaxBytes int64
	// CompactSlack is the dead-byte threshold past which the backing
	// kvlog is rewritten (default 1 MiB, the vmjournal convention).
	CompactSlack int64
	// SyncEvery forces an fsync per N events; zero leaves flushing to
	// the OS (a flight recorder tolerates losing the last instants —
	// crash recovery truncates the torn tail).
	SyncEvery int
}

func (o RecorderOptions) withDefaults() RecorderOptions {
	if o.MaxEvents <= 0 {
		o.MaxEvents = 4096
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = 8 << 20
	}
	if o.CompactSlack <= 0 {
		o.CompactSlack = 1 << 20
	}
	return o
}

// Recorder is the bounded on-disk event journal. Events append under
// keys "e/%016x" (hex seq, so lexical key order is append order);
// retention deletes the oldest keys and compacts the log when dead
// bytes pile up. Safe for concurrent use.
type Recorder struct {
	opts RecorderOptions

	// now is the injected clock stamping events; tests override it to
	// keep timelines deterministic.
	now func() time.Time

	mu        sync.Mutex
	store     *kvlog.Store
	seq       uint64 // last assigned seq
	oldest    uint64 // seq of the oldest retained event (seq+1 when empty)
	count     int
	liveBytes int64
	closed    bool
}

func eventKey(seq uint64) string { return fmt.Sprintf("e/%016x", seq) }

// Open opens (or creates) a flight log at path and replays its index.
// Reopening a log abandoned by a killed process recovers every intact
// event — the whole point.
func Open(path string, opts RecorderOptions) (*Recorder, error) {
	opts = opts.withDefaults()
	store, err := kvlog.Open(path, kvlog.Options{SyncEvery: opts.SyncEvery})
	if err != nil {
		return nil, fmt.Errorf("flight open: %w", err)
	}
	r := &Recorder{opts: opts, store: store, now: time.Now}
	var seqs []uint64
	for _, k := range store.Keys() {
		var s uint64
		if !strings.HasPrefix(k, "e/") {
			continue
		}
		if _, err := fmt.Sscanf(k[2:], "%016x", &s); err != nil {
			continue
		}
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	if len(seqs) > 0 {
		r.oldest = seqs[0]
		r.seq = seqs[len(seqs)-1]
		r.count = len(seqs)
		_, live := store.Size()
		r.liveBytes = live
	} else {
		r.oldest = 1
	}
	return r, nil
}

// Append persists one event, assigning its Seq and At, and enforces
// retention.
func (r *Recorder) Append(ev Event) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("flight: recorder closed")
	}
	r.seq++
	ev.Seq = r.seq
	if ev.At.IsZero() {
		ev.At = r.now()
	}
	buf, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("flight append: %w", err)
	}
	// r.mu exists to serialize log appends: seq assignment and the
	// kvlog write must commit in the same order, and every contender
	// is itself an append that needs the disk write ordered anyway.
	//lint:lockhold r.mu's purpose is serializing the append + seq assignment; contenders are appends that must wait for the write regardless
	if err := r.store.Put(eventKey(ev.Seq), buf); err != nil {
		return err
	}
	r.count++
	r.liveBytes += int64(len(buf))
	for r.count > r.opts.MaxEvents || (r.liveBytes > r.opts.MaxBytes && r.count > 1) {
		key := eventKey(r.oldest)
		if v, err := r.store.Get(key); err == nil {
			r.liveBytes -= int64(len(v))
		}
		//lint:lockhold retention must delete under the same critical section that admitted the event past the cap
		if err := r.store.Delete(key); err != nil {
			return err
		}
		r.oldest++
		r.count--
	}
	if total, live := r.store.Size(); total-live > r.opts.CompactSlack {
		//lint:lockhold compaction rewrites the log file; appends racing it would write into the pre-rename fd
		if err := r.store.Compact(); err != nil {
			return err
		}
	}
	return nil
}

// RecordTrace persists a sampled span tree.
func (r *Recorder) RecordTrace(traceID uint64, reason string, rootDur time.Duration, spans []obs.SpanInfo) error {
	return r.Append(Event{Kind: KindTrace, Trace: &TraceEvent{
		TraceID: traceID,
		Reason:  reason,
		RootMs:  float64(rootDur.Nanoseconds()) / 1e6,
		Spans:   spans,
	}})
}

// RecordSnapshot persists a monitor cluster view.
func (r *Recorder) RecordSnapshot(snap monitor.ClusterSnapshot) error {
	return r.Append(Event{Kind: KindSnapshot, Snapshot: &snap})
}

// RecordHealth persists a component health transition.
func (r *Recorder) RecordHealth(h HealthEvent) error {
	return r.Append(Event{Kind: KindHealth, Health: &h})
}

// RecordAlert persists a watchdog rule transition.
func (r *Recorder) RecordAlert(a AlertEvent) error {
	return r.Append(Event{Kind: KindAlert, Alert: &a})
}

// Len reports retained events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Replay returns every retained event in append order.
func (r *Recorder) Replay() ([]Event, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, fmt.Errorf("flight: recorder closed")
	}
	events := make([]Event, 0, r.count)
	err := r.store.Scan(func(key string, value []byte) error {
		if !strings.HasPrefix(key, "e/") {
			return nil
		}
		var ev Event
		if jerr := json.Unmarshal(value, &ev); jerr != nil {
			return fmt.Errorf("flight replay %s: %w", key, jerr)
		}
		events = append(events, ev)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })
	return events, nil
}

// Sync flushes the backing log to disk.
func (r *Recorder) Sync() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	//lint:lockhold Sync must order against in-flight appends; r.mu is the append serializer
	return r.store.Sync()
}

// Close closes the backing log. A kill skips this — by design the log
// is still replayable.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	return r.store.Close()
}

// FormatTimeline renders replayed events as a human-readable incident
// timeline: one line per snapshot/health/alert event, sampled traces
// expanded into their causal trees via obs.RenderTree.
func FormatTimeline(events []Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "flight timeline: %d events\n", len(events))
	for _, ev := range events {
		ts := ev.At.Format("15:04:05.000")
		switch ev.Kind {
		case KindTrace:
			if t := ev.Trace; t != nil {
				fmt.Fprintf(&b, "%s TRACE %d kept (%s, root %.2fms)\n", ts, t.TraceID, t.Reason, t.RootMs)
				tree := obs.RenderTree(t.TraceID, t.Spans)
				for _, line := range strings.Split(strings.TrimRight(tree, "\n"), "\n") {
					fmt.Fprintf(&b, "             %s\n", line)
				}
			}
		case KindSnapshot:
			if s := ev.Snapshot; s != nil {
				fmt.Fprintf(&b, "%s SNAPSHOT collections=%d lag=%.0f imbalance=%.2f components=%d\n",
					ts, s.Collections, s.MaxJournalLag, s.ReplicaImbalance, len(s.Components))
			}
		case KindHealth:
			if h := ev.Health; h != nil {
				state := "healthy"
				if !h.Healthy {
					state = "UNHEALTHY"
				}
				fmt.Fprintf(&b, "%s HEALTH %s -> %s", ts, h.Component, state)
				if h.Detail != "" {
					fmt.Fprintf(&b, " (%s)", h.Detail)
				}
				b.WriteByte('\n')
			}
		case KindAlert:
			if a := ev.Alert; a != nil {
				fmt.Fprintf(&b, "%s ALERT %s %s value=%.3f limit=%.3f", ts, a.Rule, strings.ToUpper(a.State), a.Value, a.Limit)
				if a.Detail != "" {
					fmt.Fprintf(&b, " (%s)", a.Detail)
				}
				b.WriteByte('\n')
			}
		default:
			fmt.Fprintf(&b, "%s %s (seq %d)\n", ts, ev.Kind, ev.Seq)
		}
	}
	return b.String()
}
