package flight

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"blobseer/internal/metrics"
	"blobseer/internal/monitor"
)

// DiagSources are the pieces a postmortem bundle is collected from.
// Every field is optional: the bundle includes whatever is wired and
// notes what was not.
type DiagSources struct {
	// Watchdog supplies alerts.json.
	Watchdog *Watchdog
	// Recorder supplies the replayed flight log (events.json) and the
	// rendered timeline (timeline.txt).
	Recorder *Recorder
	// Monitor supplies cluster.json (a fresh CollectOnce + Snapshot).
	Monitor *monitor.Monitor
	// Registry supplies metrics.json (default metrics.Default).
	Registry *metrics.Registry
	// Health, when set, is run for health.json.
	Health func() monitor.HealthReport
	// Now stamps bundle members (default time.Now); tests override it
	// for reproducible archives.
	Now func() time.Time
}

// WriteDiagBundle collects a postmortem bundle — alerts, flight
// timeline, raw events, cluster snapshot, metrics dump, health report —
// into a tar.gz stream: the `bsfsctl diag` payload and the CI
// failure artifact. Returns the bundle's member names.
func WriteDiagBundle(w io.Writer, src DiagSources) ([]string, error) {
	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	clock := src.Now
	if clock == nil {
		clock = time.Now
	}
	now := clock()
	var members []string

	add := func(name string, data []byte) error {
		members = append(members, name)
		hdr := &tar.Header{
			Name:    name,
			Mode:    0o644,
			Size:    int64(len(data)),
			ModTime: now,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		_, err := tw.Write(data)
		return err
	}
	addJSON := func(name string, v any) error {
		buf, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return fmt.Errorf("diag %s: %w", name, err)
		}
		return add(name, append(buf, '\n'))
	}

	var missing []string
	if src.Watchdog != nil {
		if err := addJSON("alerts.json", src.Watchdog.Alerts()); err != nil {
			return members, err
		}
	} else {
		missing = append(missing, "alerts.json (no watchdog)")
	}
	if src.Recorder != nil {
		events, err := src.Recorder.Replay()
		if err != nil {
			return members, fmt.Errorf("diag replay: %w", err)
		}
		if err := addJSON("events.json", events); err != nil {
			return members, err
		}
		if err := add("timeline.txt", []byte(FormatTimeline(events))); err != nil {
			return members, err
		}
	} else {
		missing = append(missing, "events.json (no recorder)", "timeline.txt (no recorder)")
	}
	if src.Monitor != nil {
		src.Monitor.CollectOnce()
		if err := addJSON("cluster.json", src.Monitor.Snapshot(20)); err != nil {
			return members, err
		}
	} else {
		missing = append(missing, "cluster.json (no monitor)")
	}
	reg := src.Registry
	if reg == nil {
		reg = metrics.Default
	}
	if err := addJSON("metrics.json", reg.Snapshot()); err != nil {
		return members, err
	}
	if src.Health != nil {
		if err := addJSON("health.json", src.Health()); err != nil {
			return members, err
		}
	} else {
		missing = append(missing, "health.json (no health check)")
	}
	if len(missing) > 0 {
		var b bytes.Buffer
		for _, m := range missing {
			fmt.Fprintln(&b, m)
		}
		if err := add("MISSING.txt", b.Bytes()); err != nil {
			return members, err
		}
	}

	if err := tw.Close(); err != nil {
		return members, err
	}
	return members, gz.Close()
}

// WriteDiagFile is WriteDiagBundle into a file at path.
func WriteDiagFile(path string, src DiagSources) ([]string, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	members, werr := WriteDiagBundle(f, src)
	cerr := f.Close()
	if werr != nil {
		return members, werr
	}
	return members, cerr
}
