package wordcount

import (
	"strconv"
	"testing"
)

func TestMapSplitsWords(t *testing.T) {
	var got []string
	Map("k", "  the quick\tbrown  fox ", func(k, v string) {
		got = append(got, k)
		if v != "1" {
			t.Errorf("value = %q", v)
		}
	})
	want := []string{"the", "quick", "brown", "fox"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("word %d = %q", i, got[i])
		}
	}
}

func TestReduceSums(t *testing.T) {
	var out string
	Reduce("w", []string{"1", "2", "3"}, func(k, v string) { out = v })
	if out != "6" {
		t.Errorf("sum = %q", out)
	}
	// Bad values are skipped, not fatal.
	Reduce("w", []string{"1", "x", "2"}, func(k, v string) { out = v })
	if out != "3" {
		t.Errorf("sum with junk = %q", out)
	}
}

func TestReferenceCount(t *testing.T) {
	ref := ReferenceCount("a b a\nc a")
	if ref["a"] != 3 || ref["b"] != 1 || ref["c"] != 1 {
		t.Errorf("ref = %v", ref)
	}
}

func TestCombinerAssociativity(t *testing.T) {
	// reduce(combine(x), combine(y)) == reduce(x ++ y)
	part1 := []string{"1", "1", "1"}
	part2 := []string{"1", "1"}
	var c1, c2 string
	Reduce("w", part1, func(k, v string) { c1 = v })
	Reduce("w", part2, func(k, v string) { c2 = v })
	var combined, direct string
	Reduce("w", []string{c1, c2}, func(k, v string) { combined = v })
	Reduce("w", append(part1, part2...), func(k, v string) { direct = v })
	if combined != direct {
		t.Errorf("combined=%q direct=%q", combined, direct)
	}
	if n, _ := strconv.Atoi(direct); n != 5 {
		t.Errorf("direct = %q", direct)
	}
}
