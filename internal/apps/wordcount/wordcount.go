// Package wordcount is the canonical Map/Reduce application, used by
// examples and framework tests.
package wordcount

import (
	"strconv"
	"strings"

	"blobseer/internal/mapreduce"
)

// Job returns a wordcount JobConf over the given inputs.
func Job(inputs []string, outputDir string, reducers int, mode mapreduce.OutputMode) mapreduce.JobConf {
	return mapreduce.JobConf{
		Name:        "wordcount",
		Input:       inputs,
		OutputDir:   outputDir,
		Map:         Map,
		Combine:     Reduce, // sums are associative: reuse as combiner
		Reduce:      Reduce,
		NumReducers: reducers,
		OutputMode:  mode,
	}
}

// Map emits (word, "1") for every whitespace-separated word.
func Map(key, value string, emit func(k, v string)) {
	for _, w := range strings.Fields(value) {
		emit(w, "1")
	}
}

// Reduce sums the counts of one word.
func Reduce(key string, values []string, emit func(k, v string)) {
	total := 0
	for _, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			continue
		}
		total += n
	}
	emit(key, strconv.Itoa(total))
}

// ReferenceCount computes expected counts from raw text.
func ReferenceCount(content string) map[string]int {
	out := make(map[string]int)
	for _, w := range strings.Fields(content) {
		out[w]++
	}
	return out
}
