package grep

import "testing"

func TestMapMatches(t *testing.T) {
	m := Map("needle")
	var got []string
	m("k", "hay needle hay", func(k, v string) { got = append(got, k) })
	m("k", "just hay", func(k, v string) { got = append(got, k) })
	if len(got) != 1 || got[0] != "hay needle hay" {
		t.Fatalf("got %v", got)
	}
}

func TestReduceCounts(t *testing.T) {
	var out string
	Reduce("line", []string{"1", "1"}, func(k, v string) { out = v })
	if out != "2" {
		t.Errorf("count = %q", out)
	}
}

func TestJobConf(t *testing.T) {
	job := Job([]string{"/in"}, "/out", "pat", 3, 0)
	if job.NumReducers != 3 || len(job.Input) != 1 || job.Combine == nil {
		t.Errorf("job = %+v", job)
	}
}
