// Package grep is a distributed-grep Map/Reduce application: it counts
// occurrences of a literal pattern per matching line content. Used by
// the pipeline example as a cheap second stage.
package grep

import (
	"strconv"
	"strings"

	"blobseer/internal/mapreduce"
)

// Job returns a grep JobConf matching the literal pattern.
func Job(inputs []string, outputDir, pattern string, reducers int, mode mapreduce.OutputMode) mapreduce.JobConf {
	return mapreduce.JobConf{
		Name:        "grep:" + pattern,
		Input:       inputs,
		OutputDir:   outputDir,
		Map:         Map(pattern),
		Combine:     Reduce,
		Reduce:      Reduce,
		NumReducers: reducers,
		OutputMode:  mode,
	}
}

// Map emits (line, "1") for lines containing the pattern.
func Map(pattern string) mapreduce.MapFunc {
	return func(key, value string, emit func(k, v string)) {
		if strings.Contains(value, pattern) {
			emit(value, "1")
		}
	}
}

// Reduce sums the match counts of identical lines.
func Reduce(key string, values []string, emit func(k, v string)) {
	total := 0
	for _, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			continue
		}
		total += n
	}
	emit(key, strconv.Itoa(total))
}
