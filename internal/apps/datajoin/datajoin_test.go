package datajoin

import (
	"sort"
	"strings"
	"testing"
)

// runLocal drives Map/Reduce functions in-memory.
func runLocal(t *testing.T, fileA, fileB, contentA, contentB string) map[string]int {
	t.Helper()
	job := Job(fileA, fileB, "/out", 1, 0)
	var inter []struct{ k, v string }
	emitMap := func(k, v string) {
		inter = append(inter, struct{ k, v string }{k, v})
	}
	feed := func(path, content string) {
		off := 0
		for _, line := range strings.Split(content, "\n") {
			if line != "" {
				job.Map(path+":"+itoa(off), line, emitMap)
			}
			off += len(line) + 1
		}
	}
	feed(fileA, contentA)
	feed(fileB, contentB)

	groups := map[string][]string{}
	for _, p := range inter {
		groups[p.k] = append(groups[p.k], p.v)
	}
	out := map[string]int{}
	var keys []string
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		job.Reduce(k, groups[k], func(rk, rv string) { out[rk+"\t"+rv]++ })
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestJoinBasics(t *testing.T) {
	a := "k1\tva1\nk2\tva2\nk3\tva3\n"
	b := "k1\tvb1\nk1\tvb2\nk4\tvb4\n"
	got := runLocal(t, "/a", "/b", a, b)
	want := map[string]int{
		"k1\tva1\tvb1": 1,
		"k1\tva1\tvb2": 1,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for row, n := range want {
		if got[row] != n {
			t.Errorf("row %q = %d, want %d", row, got[row], n)
		}
	}
}

func TestJoinCrossProduct(t *testing.T) {
	a := "k\ta1\nk\ta2\n"
	b := "k\tb1\nk\tb2\nk\tb3\n"
	got := runLocal(t, "/a", "/b", a, b)
	if len(got) != 6 {
		t.Fatalf("cross product rows = %d, want 6: %v", len(got), got)
	}
}

func TestJoinMatchesReference(t *testing.T) {
	a := "x\t1\ny\t2\nx\t3\nz\t9\n"
	b := "x\tA\ny\tB\ny\tC\nw\tD\n"
	got := runLocal(t, "/a", "/b", a, b)
	want := ReferenceJoin(a, b)
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	for row, n := range want {
		if got[row] != n {
			t.Errorf("row %q = %d, want %d", row, got[row], n)
		}
	}
}

func TestMalformedRecordsSkipped(t *testing.T) {
	a := "k1\tv\nmalformed-no-tab\n\tempty-key\n"
	b := "k1\tw\n"
	got := runLocal(t, "/a", "/b", a, b)
	if len(got) != 1 || got["k1\tv\tw"] != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestValuesContainingTabs(t *testing.T) {
	a := "k\tval\twith\ttabs\n"
	b := "k\tother\n"
	got := runLocal(t, "/a", "/b", a, b)
	if got["k\tval\twith\ttabs\tother"] != 1 {
		t.Fatalf("got %v", got)
	}
}
