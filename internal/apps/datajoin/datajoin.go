// Package datajoin implements the data-join application of the paper's
// evaluation (§4.3), "similar to the outer join operation from the
// database context": it takes two key-value files and merges them on
// the keys of the first file that also appear in the second, emitting
// one output row per (valueA, valueB) combination. Keys appearing only
// in the first file produce no output.
package datajoin

import (
	"strings"

	"blobseer/internal/mapreduce"
)

// Tags prefixed to values so the reducer can tell the two inputs apart.
const (
	tagA = "A\x00"
	tagB = "B\x00"
)

// Job returns the JobConf for joining fileA and fileB into outputDir.
// Input lines are "key<TAB>value". Output lines are
// "key<TAB>valueA<TAB>valueB".
func Job(fileA, fileB, outputDir string, reducers int, mode mapreduce.OutputMode) mapreduce.JobConf {
	return mapreduce.JobConf{
		Name:        "datajoin",
		Input:       []string{fileA, fileB},
		OutputDir:   outputDir,
		Map:         mapFunc(fileA),
		Reduce:      Reduce,
		NumReducers: reducers,
		OutputMode:  mode,
	}
}

// mapFunc tags each record with its source file. The framework passes
// "path:offset" as the map key.
func mapFunc(fileA string) mapreduce.MapFunc {
	return func(key, value string, emit func(k, v string)) {
		k, v, ok := strings.Cut(value, "\t")
		if !ok || k == "" {
			return // malformed record; data join skips it
		}
		path := key
		if i := strings.LastIndexByte(key, ':'); i >= 0 {
			path = key[:i]
		}
		if path == fileA {
			emit(k, tagA+v)
		} else {
			emit(k, tagB+v)
		}
	}
}

// Reduce emits the cross product of A-values and B-values for keys
// present in both inputs.
func Reduce(key string, values []string, emit func(k, v string)) {
	var as, bs []string
	for _, v := range values {
		switch {
		case strings.HasPrefix(v, tagA):
			as = append(as, v[len(tagA):])
		case strings.HasPrefix(v, tagB):
			bs = append(bs, v[len(tagB):])
		}
	}
	if len(as) == 0 || len(bs) == 0 {
		return
	}
	for _, a := range as {
		for _, b := range bs {
			emit(key, a+"\t"+b)
		}
	}
}

// ReferenceJoin computes the expected join output (as unordered lines
// "key\tvalueA\tvalueB") from raw input file contents; tests compare
// the Map/Reduce output against it.
func ReferenceJoin(contentA, contentB string) map[string]int {
	parse := func(content string) map[string][]string {
		m := make(map[string][]string)
		for _, line := range strings.Split(content, "\n") {
			if line == "" {
				continue
			}
			k, v, ok := strings.Cut(line, "\t")
			if !ok || k == "" {
				continue
			}
			m[k] = append(m[k], v)
		}
		return m
	}
	a := parse(contentA)
	b := parse(contentB)
	out := make(map[string]int)
	for k, avs := range a {
		bvs, ok := b[k]
		if !ok {
			continue
		}
		for _, av := range avs {
			for _, bv := range bvs {
				out[k+"\t"+av+"\t"+bv]++
			}
		}
	}
	return out
}
