package monitor

import (
	"fmt"
	"testing"
	"time"
)

func TestRing(t *testing.T) {
	r := newRing(3)
	if r.Len() != 0 {
		t.Fatalf("empty Len = %d", r.Len())
	}
	if _, ok := r.Last(); ok {
		t.Fatal("Last on empty ring")
	}
	base := time.Unix(0, 0)
	for i := 0; i < 5; i++ {
		r.push(base.Add(time.Duration(i)*time.Second), Sample{"v": float64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	last, ok := r.Last()
	if !ok || last.Sample["v"] != 4 {
		t.Fatalf("Last = %+v", last)
	}
	var seen []float64
	r.Each(func(ts TimedSample) { seen = append(seen, ts.Sample["v"]) })
	if fmt.Sprint(seen) != "[2 3 4]" {
		t.Fatalf("Each order = %v, want oldest first [2 3 4]", seen)
	}
}

func TestEWMA(t *testing.T) {
	e := &ewma{}
	if got := e.observe(100, 1, 5); got != 0 {
		t.Fatalf("priming observation returned %v", got)
	}
	// Steady 10/s counter: the EWMA converges toward 10 from below.
	v, prev := 100.0, 0.0
	for i := 0; i < 50; i++ {
		v += 10
		r := e.observe(v, 1, 5)
		if r < prev {
			t.Fatalf("rate fell during steady growth: %v -> %v", prev, r)
		}
		prev = r
	}
	if prev < 9.5 || prev > 10.001 {
		t.Fatalf("steady rate = %v, want ~10", prev)
	}
	// Counter reset (component restart) clamps to zero delta instead of
	// producing a huge negative rate.
	if r := e.observe(5, 1, 5); r < 0 || r > prev {
		t.Fatalf("rate after reset = %v", r)
	}
	// dt <= 0 is a no-op returning the current rate.
	cur := e.rate
	if r := e.observe(6, 0, 5); r != cur {
		t.Fatalf("dt=0 observation changed rate: %v != %v", r, cur)
	}
}

// testClock is an injectable monitor clock.
func testClock(m *Monitor) func(time.Duration) {
	now := time.Unix(5000, 0)
	m.now = func() time.Time { return now }
	return func(d time.Duration) { now = now.Add(d) }
}

// TestCollectAndSnapshot drives two fake providers and a vmshard
// through collections with an injected clock and checks every derived
// quantity: per-second rates, NIC utilization, replica imbalance,
// journal lag, freshness.
func TestCollectAndSnapshot(t *testing.T) {
	m := New(Config{NICBandwidth: 1000, HalfLife: time.Second})
	advance := testClock(m)

	hot, cold, pending := 0.0, 0.0, 7.0
	m.Register(KindProvider, "prov-hot", func() Sample {
		return Sample{KeyReadBytes: hot, "pages": 3}
	})
	m.Register(KindProvider, "prov-cold", func() Sample {
		return Sample{KeyReadBytes: cold}
	})
	m.Register(KindVMShard, "shard-0", func() Sample {
		return Sample{KeyJournalPending: pending}
	})

	m.CollectOnce() // primes the rate trackers
	// 10 seconds at 900 B/s hot, 100 B/s cold: with a 1s half-life the
	// EWMA is within a fraction of a percent of the true rate.
	for i := 0; i < 10; i++ {
		advance(time.Second)
		hot += 900
		cold += 100
		m.CollectOnce()
	}

	snap := m.Snapshot(0)
	if snap.Collections != 11 {
		t.Errorf("collections = %d", snap.Collections)
	}
	if snap.AgeMs != 0 {
		t.Errorf("age = %dms", snap.AgeMs)
	}
	if snap.MaxJournalLag != 7 {
		t.Errorf("journal lag = %v", snap.MaxJournalLag)
	}

	byName := make(map[string]ComponentSnapshot)
	for _, c := range snap.Components {
		byName[c.Name] = c
	}
	h := byName["prov-hot"]
	if r := h.Rates["read_bytes_per_sec"]; r < 890 || r > 900 {
		t.Errorf("hot read rate = %v, want ~900", r)
	}
	if h.Utilization < 0.89 || h.Utilization > 0.9 {
		t.Errorf("hot utilization = %v, want ~0.9", h.Utilization)
	}
	if h.Gauges["pages"] != 3 {
		t.Errorf("gauges = %v", h.Gauges)
	}
	if _, leaked := h.Gauges[KeyReadBytes]; leaked {
		t.Error("counter leaked into gauges")
	}
	// max/mean with rates {900, 100} is 900/500 = 1.8.
	if snap.ReplicaImbalance < 1.75 || snap.ReplicaImbalance > 1.85 {
		t.Errorf("imbalance = %v, want ~1.8", snap.ReplicaImbalance)
	}

	if !m.Fresh(time.Second) {
		t.Error("not fresh right after collecting")
	}
	advance(3 * time.Second)
	if m.Fresh(2 * time.Second) {
		t.Error("fresh 3s after the last collection")
	}
}

func TestRegisterUnregister(t *testing.T) {
	m := New(Config{})
	s1 := m.Register(KindClient, "c1", func() Sample { return Sample{"x": 1} })
	s2 := m.Register(KindClient, "c2", func() Sample { return Sample{"x": 2} })
	m.CollectOnce()
	if got := len(m.Snapshot(0).Components); got != 2 {
		t.Fatalf("components = %d", got)
	}
	s1.Unregister()
	s1.Unregister() // idempotent
	if got := m.Snapshot(0).Components; len(got) != 1 || got[0].Name != "c2" {
		t.Fatalf("components after unregister = %+v", got)
	}
	s2.Unregister()
	// A nil sample skips the source for this pass without unregistering.
	m.Register(KindClient, "c3", func() Sample { return nil })
	m.CollectOnce()
	if got := m.Snapshot(0).Components[0].Samples; got != 0 {
		t.Fatalf("nil-sample source recorded %d samples", got)
	}
}

func TestArmedInterval(t *testing.T) {
	m := New(Config{})
	if _, armed := m.Armed(); armed {
		t.Fatal("new monitor reports armed")
	}
	m.SetInterval(10 * time.Millisecond)
	if iv, armed := m.Armed(); !armed || iv != 10*time.Millisecond {
		t.Fatalf("Armed = %v, %v", iv, armed)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Collections() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if m.Collections() == 0 {
		t.Fatal("armed monitor never collected")
	}
	m.Close()
	if _, armed := m.Armed(); armed {
		t.Fatal("closed monitor reports armed")
	}
}

func BenchmarkMonitorCollect(b *testing.B) {
	m := New(Config{NICBandwidth: 1e9})
	for i := 0; i < 64; i++ {
		i := i
		m.Register(KindProvider, fmt.Sprintf("prov-%03d", i), func() Sample {
			return Sample{
				KeyReadBytes:  float64(i * 1000),
				KeyWriteBytes: float64(i * 500),
				"pages":       float64(i),
			}
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.CollectOnce()
	}
}

func BenchmarkMonitorSnapshot(b *testing.B) {
	m := New(Config{NICBandwidth: 1e9})
	for i := 0; i < 64; i++ {
		i := i
		m.Register(KindProvider, fmt.Sprintf("prov-%03d", i), func() Sample {
			return Sample{KeyReadBytes: float64(i * 1000)}
		})
	}
	for i := 0; i < 1000; i++ {
		m.readHeat.TouchPage(1, uint64(i%200))
	}
	m.CollectOnce()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Snapshot(20)
	}
}
