package monitor

import (
	"sort"
	"strings"
	"time"

	"blobseer/internal/metrics"
)

// ComponentSnapshot is one source's current view: its latest raw gauges,
// the EWMA per-second rates derived from its "_total" counters, and for
// providers the NIC utilization in [0, 1+] (can exceed 1 briefly when a
// burst outruns the modeled bandwidth between collections).
type ComponentSnapshot struct {
	Kind   string             `json:"kind"`
	Name   string             `json:"name"`
	Gauges map[string]float64 `json:"gauges,omitempty"`
	Rates  map[string]float64 `json:"rates,omitempty"`
	// Utilization is max(read rate, write rate) / NIC bandwidth for
	// providers; simnet NICs are full-duplex so the directions don't
	// share capacity. Zero for other kinds or when bandwidth is unknown.
	Utilization float64 `json:"utilization,omitempty"`
	// Samples is how many collections this source has in its ring.
	Samples int `json:"samples"`
}

// ClusterSnapshot is the monitor's derived cluster view, served on
// /cluster and rendered by `bsfsctl top`.
type ClusterSnapshot struct {
	// Collections counts collector passes; AgeMs is milliseconds since
	// the last one (-1 if never collected).
	Collections uint64 `json:"collections"`
	AgeMs       int64  `json:"age_ms"`

	Components []ComponentSnapshot `json:"components"`

	// ReplicaImbalance is max/mean of per-provider read byte rates:
	// 1.0 is a perfectly balanced read load, N means the hottest
	// provider carries N times the average. Zero when no provider is
	// serving reads.
	ReplicaImbalance float64 `json:"replica_imbalance"`

	// MaxJournalLag is the largest per-shard journal_pending gauge:
	// records not yet retired by a metadata checkpoint.
	MaxJournalLag float64 `json:"max_journal_lag"`

	// HotReads / HotWrites are the current top-K page heat sets.
	HotReads  []metrics.HeatEntry `json:"hot_reads,omitempty"`
	HotWrites []metrics.HeatEntry `json:"hot_writes,omitempty"`
}

// Snapshot derives the cluster view from the rings and rate trackers as
// of the last collection. TopK bounds the heat sets (0 = 20).
func (m *Monitor) Snapshot(topK int) ClusterSnapshot {
	if topK <= 0 {
		topK = 20
	}
	m.mu.Lock()
	snap := ClusterSnapshot{
		Collections: m.collections,
		AgeMs:       -1,
	}
	if !m.lastCollect.IsZero() {
		snap.AgeMs = m.now().Sub(m.lastCollect).Milliseconds()
		if snap.AgeMs < 0 {
			snap.AgeMs = 0
		}
	}
	var readRates []float64
	for _, s := range m.sources {
		cs := ComponentSnapshot{
			Kind:    s.kind,
			Name:    s.name,
			Samples: s.ring.Len(),
		}
		if len(s.last) > 0 {
			cs.Gauges = make(map[string]float64, len(s.last))
			for k, v := range s.last {
				if !strings.HasSuffix(k, "_total") {
					cs.Gauges[k] = v
				}
			}
			if len(cs.Gauges) == 0 {
				cs.Gauges = nil
			}
		}
		if len(s.rates) > 0 {
			cs.Rates = make(map[string]float64, len(s.rates))
			for k, e := range s.rates {
				cs.Rates[rateKey(k)] = e.rate
			}
		}
		if s.kind == KindProvider {
			r := cs.Rates[rateKey(KeyReadBytes)]
			w := cs.Rates[rateKey(KeyWriteBytes)]
			readRates = append(readRates, r)
			if m.cfg.NICBandwidth > 0 {
				util := r
				if w > util {
					util = w
				}
				cs.Utilization = util / m.cfg.NICBandwidth
			}
		}
		if s.kind == KindVMShard {
			if lag, ok := s.last[KeyJournalPending]; ok && lag > snap.MaxJournalLag {
				snap.MaxJournalLag = lag
			}
		}
		snap.Components = append(snap.Components, cs)
	}
	m.mu.Unlock()

	sort.Slice(snap.Components, func(i, j int) bool {
		a, b := snap.Components[i], snap.Components[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Name < b.Name
	})

	if len(readRates) > 0 {
		var sum, max float64
		for _, r := range readRates {
			sum += r
			if r > max {
				max = r
			}
		}
		if sum > 0 {
			snap.ReplicaImbalance = max / (sum / float64(len(readRates)))
		}
	}

	snap.HotReads = m.readHeat.HotPages(topK)
	snap.HotWrites = m.writeHeat.HotPages(topK)
	return snap
}

// ComponentHealth is one component's health verdict with a short
// human-readable detail on failure and the wall time its check took.
type ComponentHealth struct {
	Component string  `json:"component"`
	Healthy   bool    `json:"healthy"`
	Detail    string  `json:"detail,omitempty"`
	LatencyMs float64 `json:"latency_ms,omitempty"`
}

// HealthReport aggregates component checks; Healthy is the AND of all
// components. Served (with a 503 on degradation) by /healthz.
type HealthReport struct {
	Healthy    bool              `json:"healthy"`
	CheckedAt  time.Time         `json:"checked_at"`
	Components []ComponentHealth `json:"components"`
}

// Add records one component verdict and folds it into the aggregate.
func (r *HealthReport) Add(component string, healthy bool, detail string) {
	if !healthy {
		r.Healthy = false
	}
	r.Components = append(r.Components, ComponentHealth{
		Component: component,
		Healthy:   healthy,
		Detail:    detail,
	})
}

// AddTimed is Add plus the measured check latency.
func (r *HealthReport) AddTimed(component string, healthy bool, detail string, took time.Duration) {
	if !healthy {
		r.Healthy = false
	}
	r.Components = append(r.Components, ComponentHealth{
		Component: component,
		Healthy:   healthy,
		Detail:    detail,
		LatencyMs: float64(took.Nanoseconds()) / 1e6,
	})
}
