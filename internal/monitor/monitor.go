// Package monitor is the cluster-scope introspection plane: where
// internal/metrics counts what one process did, monitor watches what
// the *deployment* is doing right now. Every component registers a
// stats source — data providers (bytes used, page read/write traffic),
// version-manager shards (journal growth, publish rates), the
// namespace manager, and client mounts (cache + read stats) — and a
// collector samples them on an interval into fixed-size time-series
// rings, deriving EWMA byte/IOPS rates, per-provider utilization
// against the modeled NIC, per-shard journal lag, and a
// replica-imbalance score across providers.
//
// The monitor also owns the deployment's page-heat sketches: decaying
// top-K heavy-hitter summaries (see HeatSketch) fed by the client page
// fetch path (read heat) and the provider put path (write heat). The
// live hot-set is exported through metrics.Registry, the /cluster
// endpoint on internal/obshttp, and `bsfsctl top` — and it is the
// observability contract the heat-adaptive replication work consumes:
// a rebalancer can only raise replica counts on pages it can see are
// hot.
//
// Collection is pull-based and cheap (reading atomic counters), so an
// unarmed monitor costs nothing and an armed one costs a few map walks
// per interval. All methods are safe for concurrent use.
package monitor

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Sample is one point-in-time reading of a source's stats. Keys ending
// in "_total" are treated as monotonic counters and reduced to EWMA
// per-second rates; every other key is a gauge reported as-is.
type Sample map[string]float64

// Component kinds with derivation rules the collector knows about.
const (
	KindProvider  = "provider"  // read/write rates + NIC utilization
	KindVMShard   = "vmshard"   // journal growth + publish rates
	KindNamespace = "namespace" // entry counts + journal size
	KindClient    = "client"    // cache + read-path counters
)

// Well-known sample keys the collector derives from.
const (
	// KeyReadBytes / KeyWriteBytes are the provider byte counters that
	// drive utilization and the replica-imbalance score.
	KeyReadBytes  = "read_bytes_total"
	KeyWriteBytes = "write_bytes_total"
	// KeyJournalPending is the vmshard gauge reported as journal lag:
	// journal records not yet covered by a checkpoint.
	KeyJournalPending = "journal_pending"
)

// Defaults.
const (
	DefaultInterval = time.Second
	DefaultRingSize = 120
	// DefaultHalfLife smooths rates: a burst fully registers within a
	// few collections and an idle source's rate halves every half-life.
	DefaultHalfLife = 5 * time.Second
	// DefaultHeatHalfLife decays the page-heat sketches.
	DefaultHeatHalfLife = 30 * time.Second
)

// Config sizes a Monitor.
type Config struct {
	// Interval is the collection cadence used by SetInterval(0)...Start
	// and the freshness unit of Fresh (default 1s).
	Interval time.Duration
	// RingSize bounds each source's retained time series (default 120
	// samples — 2 minutes at the default interval).
	RingSize int
	// HalfLife smooths the EWMA rates (default 5s).
	HalfLife time.Duration
	// NICBandwidth is the modeled per-host NIC capacity in bytes/s that
	// provider utilization is computed against (0 = unknown; utilization
	// reads 0). Deployments on a simnet-shaped transport pass the
	// simnet bandwidth here.
	NICBandwidth float64
	// HeatCapacity bounds each heat sketch's tracked keys (default
	// DefaultHeatCapacity).
	HeatCapacity int
	// HeatHalfLife decays the heat sketches (default 30s; negative
	// disables decay).
	HeatHalfLife time.Duration
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.RingSize <= 0 {
		c.RingSize = DefaultRingSize
	}
	if c.HalfLife <= 0 {
		c.HalfLife = DefaultHalfLife
	}
	if c.HeatHalfLife == 0 {
		c.HeatHalfLife = DefaultHeatHalfLife
	} else if c.HeatHalfLife < 0 {
		c.HeatHalfLife = 0
	}
	return c
}

// Source is one registered component. Unregister removes it (mount
// close); the handle is otherwise opaque.
type Source struct {
	m    *Monitor
	kind string
	name string
	fn   func() Sample

	// Collector-owned state, guarded by m.mu.
	ring  *Ring
	rates map[string]*ewma
	last  Sample
	lastT time.Time
}

// Unregister removes the source from its monitor; safe to call twice.
func (s *Source) Unregister() {
	if s == nil || s.m == nil {
		return
	}
	m := s.m
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, have := range m.sources {
		if have == s {
			m.sources = append(m.sources[:i], m.sources[i+1:]...)
			break
		}
	}
	s.m = nil
}

// Monitor collects registered sources and owns the heat sketches.
type Monitor struct {
	cfg       Config
	readHeat  *HeatSketch
	writeHeat *HeatSketch

	// now is injectable for deterministic rate/freshness tests.
	now func() time.Time

	mu          sync.Mutex
	sources     []*Source
	collections uint64
	lastCollect time.Time

	// onCollect holds post-collection hooks (the SLO watchdog's
	// evaluation pass) as an immutable slice; CollectOnce runs them
	// after releasing mu, so hooks may call Snapshot freely.
	hookMu    sync.Mutex
	onCollect atomic.Value // []collectHook
	hookNext  uint64

	runMu   sync.Mutex
	stop    chan struct{}
	stopped chan struct{}
}

// collectHook is one registered post-collection callback.
type collectHook struct {
	id uint64
	fn func()
}

// OnCollect registers fn to run after every collection pass (periodic
// or CollectOnce), outside the monitor's lock — the evaluation hook
// the SLO watchdog hangs its rules on. The returned cancel removes it.
func (m *Monitor) OnCollect(fn func()) (cancel func()) {
	m.hookMu.Lock()
	defer m.hookMu.Unlock()
	m.hookNext++
	id := m.hookNext
	var cur []collectHook
	if v := m.onCollect.Load(); v != nil {
		cur = v.([]collectHook)
	}
	next := make([]collectHook, 0, len(cur)+1)
	next = append(next, cur...)
	next = append(next, collectHook{id: id, fn: fn})
	m.onCollect.Store(next)
	return func() {
		m.hookMu.Lock()
		defer m.hookMu.Unlock()
		var have []collectHook
		if v := m.onCollect.Load(); v != nil {
			have = v.([]collectHook)
		}
		pruned := make([]collectHook, 0, len(have))
		for _, h := range have {
			if h.id != id {
				pruned = append(pruned, h)
			}
		}
		m.onCollect.Store(pruned)
	}
}

// New returns an idle monitor: sources can register and CollectOnce
// works immediately; SetInterval arms periodic collection.
func New(cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	return &Monitor{
		cfg:       cfg,
		readHeat:  NewHeatSketch(cfg.HeatCapacity, cfg.HeatHalfLife),
		writeHeat: NewHeatSketch(cfg.HeatCapacity, cfg.HeatHalfLife),
		now:       time.Now,
	}
}

// ReadHeat is the page read-heat sketch (fed by client page fetches).
func (m *Monitor) ReadHeat() *HeatSketch { return m.readHeat }

// WriteHeat is the page write-heat sketch (fed by provider page puts).
func (m *Monitor) WriteHeat() *HeatSketch { return m.writeHeat }

// Interval returns the configured collection cadence.
func (m *Monitor) Interval() time.Duration { return m.cfg.Interval }

// Register adds a stats source under a component kind and name and
// returns its handle (Unregister on component shutdown). Sources must
// be safe to call concurrently with the component's own operation.
func (m *Monitor) Register(kind, name string, fn func() Sample) *Source {
	s := &Source{
		m:     m,
		kind:  kind,
		name:  name,
		fn:    fn,
		ring:  newRing(m.cfg.RingSize),
		rates: make(map[string]*ewma),
	}
	m.mu.Lock()
	m.sources = append(m.sources, s)
	m.mu.Unlock()
	return s
}

// SetInterval arms periodic collection every d (rounded up to the
// configured interval's floor of 10ms); 0 or negative stops it.
func (m *Monitor) SetInterval(d time.Duration) {
	m.runMu.Lock()
	defer m.runMu.Unlock()
	if m.stop != nil {
		close(m.stop)
		// runMu exists to serialize rearms; the wait is bounded because
		// the closed stop channel makes the collector goroutine exit at
		// its next select, and collection itself never takes runMu.
		//lint:lockhold rearm serialization is runMu's whole purpose; the closed stop channel bounds the wait to one select turn
		<-m.stopped
		m.stop, m.stopped = nil, nil
	}
	if d <= 0 {
		return
	}
	if d < 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	m.cfg.Interval = d
	stop := make(chan struct{})
	stopped := make(chan struct{})
	m.stop, m.stopped = stop, stopped
	go func() {
		defer close(stopped)
		//lint:walltime the collection cadence is wall-clock by design; CollectOnce is the injectable seam tests drive
		t := time.NewTicker(d)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				m.CollectOnce()
			}
		}
	}()
}

// Close stops periodic collection.
func (m *Monitor) Close() { m.SetInterval(0) }

// Armed reports the periodic collection interval, false when no
// collector goroutine is running (CollectOnce-only operation).
func (m *Monitor) Armed() (time.Duration, bool) {
	m.runMu.Lock()
	defer m.runMu.Unlock()
	if m.stop == nil {
		return 0, false
	}
	return m.cfg.Interval, true
}

// CollectOnce samples every source now: the sample lands in the
// source's ring and its "_total" counters update their EWMA rates.
// Callable directly (tools, tests) whether or not the periodic
// collector is armed.
func (m *Monitor) CollectOnce() {
	now := m.now()
	m.mu.Lock()
	sources := append([]*Source(nil), m.sources...)
	m.mu.Unlock()

	type collected struct {
		s      *Source
		sample Sample
	}
	got := make([]collected, 0, len(sources))
	for _, s := range sources {
		if sample := s.fn(); sample != nil {
			got = append(got, collected{s, sample})
		}
	}

	m.mu.Lock()
	for _, c := range got {
		s := c.s
		if s.m == nil {
			continue // unregistered while sampling
		}
		dt := 0.0
		if !s.lastT.IsZero() {
			dt = now.Sub(s.lastT).Seconds()
		}
		for k, v := range c.sample {
			if !strings.HasSuffix(k, "_total") {
				continue
			}
			e, ok := s.rates[k]
			if !ok {
				e = &ewma{}
				s.rates[k] = e
			}
			e.observe(v, dt, m.cfg.HalfLife.Seconds())
		}
		s.ring.push(now, c.sample)
		s.last = c.sample
		s.lastT = now
	}
	m.collections++
	m.lastCollect = now
	m.mu.Unlock()

	if v := m.onCollect.Load(); v != nil {
		for _, h := range v.([]collectHook) {
			h.fn()
		}
	}
}

// Fresh reports whether the last collection happened within the given
// window (the /healthz "collector fresh within 2 intervals" check).
// A monitor that never collected is not fresh.
func (m *Monitor) Fresh(within time.Duration) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.lastCollect.IsZero() {
		return false
	}
	return m.now().Sub(m.lastCollect) <= within
}

// Collections reports how many collection passes have run.
func (m *Monitor) Collections() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.collections
}

// rateKey maps "read_bytes_total" to its exported rate name
// "read_bytes_per_sec".
func rateKey(counter string) string {
	return strings.TrimSuffix(counter, "_total") + "_per_sec"
}
