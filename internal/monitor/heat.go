package monitor

import (
	"math"
	"sort"
	"sync"
	"time"

	"blobseer/internal/metrics"
)

// HeatSketch is a decaying top-K heavy-hitter sketch over (blob, page)
// keys: a space-saving summary (Metwally et al.) whose counts decay
// exponentially with a configurable half-life, so "hot" means hot
// *now*, not hot since boot. Memory is bounded by the capacity K no
// matter how many distinct pages the workload touches — when the sketch
// is full, a new key evicts the minimum-weight entry and inherits its
// weight as the classic space-saving over-estimate, which keeps the
// guarantee that any key with true (decayed) weight above the minimum
// is present.
//
// Decay is O(1) per touch, not O(K): weights are stored scaled by
// 2^(t/halfLife) at touch time, so an entry untouched for one half-life
// is worth half as much relative to fresh touches without ever being
// rewritten. The growing scale factor is rebased before it can
// overflow a float64.
//
// Touch is a mutex plus a map operation (plus an O(K) minimum scan only
// when inserting into a full sketch), cheap enough for the client page
// fetch path and the provider put path. The zero half-life disables
// decay (pure space-saving counts).
type HeatSketch struct {
	mu  sync.Mutex
	cap int
	// invHL is 1/halfLife in seconds (0 = no decay).
	invHL float64
	// now is injectable for deterministic decay tests.
	now func() time.Time

	t0      time.Time
	exp     float64 // rebasing offset: scale = 2^(elapsed/halfLife - exp)
	entries map[HeatKey]*heatEntry
}

// HeatKey identifies one page of one BLOB.
type HeatKey struct {
	Blob uint64
	Page uint64
}

type heatEntry struct {
	score float64 // decayed-coordinate weight: weight * scale(touch time)
	count uint64  // raw touches (not decayed; diagnostic only)
}

// DefaultHeatCapacity is the tracked-key bound used when NewHeatSketch
// gets a non-positive capacity.
const DefaultHeatCapacity = 512

// heatRebaseExp is the scale exponent past which the sketch renormalizes
// all scores. Far below the ~1023 overflow exponent of float64 but high
// enough that rebases are rare (one per ~500 half-lives).
const heatRebaseExp = 512

// NewHeatSketch returns a sketch tracking at most cap keys whose
// weights halve every halfLife (0 disables decay).
func NewHeatSketch(cap int, halfLife time.Duration) *HeatSketch {
	if cap <= 0 {
		cap = DefaultHeatCapacity
	}
	s := &HeatSketch{
		cap:     cap,
		now:     time.Now,
		entries: make(map[HeatKey]*heatEntry, cap),
	}
	if halfLife > 0 {
		s.invHL = 1 / halfLife.Seconds()
	}
	s.t0 = s.now()
	return s
}

// scaleLocked returns the current scale factor, rebasing every score
// when the exponent has grown large enough to threaten precision.
func (s *HeatSketch) scaleLocked() float64 {
	if s.invHL == 0 {
		return 1
	}
	e := s.now().Sub(s.t0).Seconds()*s.invHL - s.exp
	if e > heatRebaseExp {
		down := math.Exp2(e)
		for _, ent := range s.entries {
			ent.score /= down
		}
		s.exp += e
		e = 0
	}
	return math.Exp2(e)
}

// Touch records one access with weight w (use 1 for "one page read").
func (s *HeatSketch) Touch(blob, page uint64, w float64) {
	if w <= 0 {
		return
	}
	k := HeatKey{Blob: blob, Page: page}
	s.mu.Lock()
	defer s.mu.Unlock()
	add := w * s.scaleLocked()
	if e, ok := s.entries[k]; ok {
		e.score += add
		e.count++
		return
	}
	if len(s.entries) < s.cap {
		s.entries[k] = &heatEntry{score: add, count: 1}
		return
	}
	// Full: evict the minimum and inherit its weight (space-saving).
	var minKey HeatKey
	minScore := math.Inf(1)
	for key, e := range s.entries {
		if e.score < minScore {
			minScore, minKey = e.score, key
		}
	}
	delete(s.entries, minKey)
	s.entries[k] = &heatEntry{score: minScore + add, count: 1}
}

// TouchPage is Touch with weight 1, shaped for the blob layer's
// per-page access hooks.
func (s *HeatSketch) TouchPage(blob, page uint64) { s.Touch(blob, page, 1) }

// Len reports the tracked-key count (bounded by the capacity).
func (s *HeatSketch) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// HotPages returns the n heaviest keys, heaviest first, with weights
// decayed to now. It implements metrics.HeatSource, so a sketch
// attached to the registry shows up in /metrics.json and /metrics.
func (s *HeatSketch) HotPages(n int) []metrics.HeatEntry {
	s.mu.Lock()
	scale := s.scaleLocked()
	out := make([]metrics.HeatEntry, 0, len(s.entries))
	for k, e := range s.entries {
		out = append(out, metrics.HeatEntry{
			Blob:    k.Blob,
			Page:    k.Page,
			Weight:  e.score / scale,
			Touches: e.count,
		})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		if out[i].Blob != out[j].Blob {
			return out[i].Blob < out[j].Blob
		}
		return out[i].Page < out[j].Page
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

var _ metrics.HeatSource = (*HeatSketch)(nil)
