package monitor

import (
	"math"
	"time"
)

// Ring is a fixed-size time-series ring of collected samples. One ring
// per registered source bounds monitor memory no matter how long the
// deployment runs: RingSize samples at the collection interval give a
// sliding window (2 minutes at the defaults) that tools can render as
// sparklines and the snapshot reduces to rates.
type Ring struct {
	points []TimedSample
	next   int
	filled bool
}

// TimedSample is one collected sample with its collection time.
type TimedSample struct {
	At     time.Time
	Sample Sample
}

// newRing returns a ring holding up to n samples.
func newRing(n int) *Ring {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &Ring{points: make([]TimedSample, n)}
}

// push appends a sample, evicting the oldest when full.
func (r *Ring) push(at time.Time, s Sample) {
	r.points[r.next] = TimedSample{At: at, Sample: s}
	r.next++
	if r.next == len(r.points) {
		r.next = 0
		r.filled = true
	}
}

// Len reports the number of retained samples.
func (r *Ring) Len() int {
	if r.filled {
		return len(r.points)
	}
	return r.next
}

// Last returns the most recent sample, or false when empty.
func (r *Ring) Last() (TimedSample, bool) {
	if r.Len() == 0 {
		return TimedSample{}, false
	}
	i := r.next - 1
	if i < 0 {
		i = len(r.points) - 1
	}
	return r.points[i], true
}

// Each visits retained samples oldest first.
func (r *Ring) Each(fn func(TimedSample)) {
	n := r.Len()
	start := 0
	if r.filled {
		start = r.next
	}
	for i := 0; i < n; i++ {
		fn(r.points[(start+i)%len(r.points)])
	}
}

// ewma tracks an exponentially-weighted moving average of a counter's
// per-second rate: each observation of the counter contributes its
// interval rate weighted by how much of the half-life the interval
// covers, so an idle source's rate halves every half-life and a burst
// shows up within one or two collections instead of being averaged
// over the whole run.
type ewma struct {
	rate float64
	prev float64 // last counter value
	seen bool
}

// observe feeds one counter reading dt seconds after the previous one
// and returns the smoothed per-second rate. halfLife <= 0 degenerates
// to the instantaneous interval rate.
func (e *ewma) observe(value, dt, halfLife float64) float64 {
	if !e.seen {
		e.prev, e.seen = value, true
		return 0
	}
	if dt <= 0 {
		return e.rate
	}
	delta := value - e.prev
	if delta < 0 {
		delta = 0 // counter reset (component restarted)
	}
	e.prev = value
	inst := delta / dt
	if halfLife <= 0 {
		e.rate = inst
		return e.rate
	}
	// alpha is the weight of the newest interval: 1 - 2^(-dt/halfLife),
	// so a sample one half-life after the last fully replaces half of
	// the history regardless of collection cadence.
	alpha := 1 - math.Exp2(-dt/halfLife)
	e.rate += alpha * (inst - e.rate)
	return e.rate
}
