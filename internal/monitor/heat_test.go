package monitor

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestHeatSketchTopKZipf pins the sketch's ranking quality on a fixed
// Zipf stream: far more distinct keys than capacity, single goroutine,
// fixed seed — the result is deterministic, so this either always
// passes or flags a real regression in the eviction policy.
func TestHeatSketchTopKZipf(t *testing.T) {
	const (
		capacity = 64
		pages    = 512
		draws    = 20000
		topK     = 10
	)
	s := NewHeatSketch(capacity, 0) // no decay: pure space-saving
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.3, 1, pages-1)
	counts := make(map[uint64]uint64)
	for i := 0; i < draws; i++ {
		p := zipf.Uint64()
		counts[p]++
		s.TouchPage(7, p)
	}
	if got := s.Len(); got > capacity {
		t.Fatalf("sketch tracks %d keys, capacity %d", got, capacity)
	}

	trueTop := make(map[uint64]bool)
	for k := 0; k < topK; k++ {
		var best uint64
		bestN := uint64(0)
		for p, n := range counts {
			if trueTop[p] {
				continue
			}
			if n > bestN || (n == bestN && p < best) {
				best, bestN = p, n
			}
		}
		trueTop[best] = true
	}

	hot := s.HotPages(topK)
	if len(hot) != topK {
		t.Fatalf("HotPages returned %d entries", len(hot))
	}
	hits := 0
	for _, e := range hot {
		if e.Blob != 7 {
			t.Errorf("entry carries blob %d, want 7", e.Blob)
		}
		if trueTop[e.Page] {
			hits++
		}
	}
	if precision := float64(hits) / topK; precision < 0.9 {
		t.Errorf("top-%d precision = %.2f, want >= 0.9", topK, precision)
	}
	for i := 1; i < len(hot); i++ {
		if hot[i].Weight > hot[i-1].Weight {
			t.Fatalf("HotPages not sorted: %v", hot)
		}
	}
	// Space-saving never under-counts: the top entry's weight is at
	// least its true count.
	if top := hot[0]; top.Weight < float64(counts[top.Page]) {
		t.Errorf("top weight %.0f under-counts true %d", top.Weight, counts[top.Page])
	}
}

// TestHeatSketchDecay pins the half-life semantics with an injected
// clock: after two half-lives an old burst is worth a quarter of its
// raw count, so a smaller fresh burst outranks it.
func TestHeatSketchDecay(t *testing.T) {
	now := time.Unix(1000, 0)
	s := NewHeatSketch(8, 10*time.Second)
	s.now = func() time.Time { return now }
	s.t0 = now

	for i := 0; i < 100; i++ {
		s.TouchPage(1, 100) // old burst: 100 touches at t=0
	}
	now = now.Add(20 * time.Second) // two half-lives
	for i := 0; i < 30; i++ {
		s.TouchPage(1, 200) // fresh burst: 30 touches
	}

	hot := s.HotPages(2)
	if len(hot) != 2 {
		t.Fatalf("HotPages = %v", hot)
	}
	if hot[0].Page != 200 {
		t.Fatalf("fresh burst did not outrank decayed one: %v", hot)
	}
	// The old burst reads 100 * 2^-2 = 25 in current weight.
	if got := hot[1].Weight; math.Abs(got-25) > 0.5 {
		t.Errorf("decayed weight = %.2f, want ~25", got)
	}
	if got := hot[0].Weight; math.Abs(got-30) > 0.5 {
		t.Errorf("fresh weight = %.2f, want ~30", got)
	}
}

// TestHeatSketchBoundedChurn drives an adversarial stream of distinct
// keys (every touch a new page) and checks memory stays bounded and no
// score turns non-finite.
func TestHeatSketchBoundedChurn(t *testing.T) {
	const capacity = 32
	s := NewHeatSketch(capacity, time.Second)
	for i := uint64(0); i < 100000; i++ {
		s.TouchPage(i%3, i)
	}
	if got := s.Len(); got != capacity {
		t.Fatalf("Len = %d, want %d", got, capacity)
	}
	for _, e := range s.HotPages(0) {
		if math.IsInf(e.Weight, 0) || math.IsNaN(e.Weight) || e.Weight < 0 {
			t.Fatalf("bad weight %v in %+v", e.Weight, e)
		}
	}
}

// TestHeatSketchRebase forces the scale exponent past heatRebaseExp and
// checks scores renormalize instead of overflowing: ordering holds and
// weights stay finite after ~600 half-lives of clock advance.
func TestHeatSketchRebase(t *testing.T) {
	now := time.Unix(1000, 0)
	s := NewHeatSketch(8, time.Second)
	s.now = func() time.Time { return now }
	s.t0 = now

	s.Touch(1, 1, 4) // ancient entry
	now = now.Add(600 * time.Second)
	s.TouchPage(1, 2) // triggers the rebase; fresh weight 1

	hot := s.HotPages(0)
	if len(hot) != 2 {
		t.Fatalf("HotPages = %v", hot)
	}
	if hot[0].Page != 2 {
		t.Fatalf("fresh touch should dominate after 600 half-lives: %v", hot)
	}
	for _, e := range hot {
		if math.IsInf(e.Weight, 0) || math.IsNaN(e.Weight) {
			t.Fatalf("non-finite weight after rebase: %+v", e)
		}
	}
	if s.exp == 0 {
		t.Error("rebase did not advance the exponent offset")
	}
}

func BenchmarkHeatTouch(b *testing.B) {
	s := NewHeatSketch(DefaultHeatCapacity, DefaultHeatHalfLife)
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.2, 1, 4096)
	pages := make([]uint64, 8192)
	for i := range pages {
		pages[i] = zipf.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TouchPage(1, pages[i%len(pages)])
	}
}
