package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed step of a traced operation. Spans form a causal
// tree via Parent; the rpc layer carries (Trace, ID) across the wire
// so a server-side dispatch span parents under the client's call span
// even when the two run in different processes.
type Span struct {
	Trace  uint64
	ID     uint64
	Parent uint64 // 0 = root
	Name   string
	Where  string // host/endpoint annotation (set by the rpc server side)
	Start  time.Time
	Dur    time.Duration
	Err    string
	Notes  []string

	mu    sync.Mutex
	ended bool
	coll  *Collector
}

var (
	nextTraceID atomic.Uint64
	nextSpanID  atomic.Uint64
)

// spanKey carries the active span identity in a context.
type spanKeyType struct{}

var spanKey spanKeyType

type spanRef struct{ trace, span uint64 }

// SpanIDs extracts the active trace and span ids from ctx. ok is false
// when the context is untraced.
func SpanIDs(ctx context.Context) (trace, span uint64, ok bool) {
	ref, ok := ctx.Value(spanKey).(spanRef)
	return ref.trace, ref.span, ok
}

// ContextWithIDs returns ctx carrying an explicit span identity —
// used by servers adopting a trace context received over the wire.
func ContextWithIDs(ctx context.Context, trace, span uint64) context.Context {
	if trace == 0 {
		return ctx
	}
	return context.WithValue(ctx, spanKey, spanRef{trace, span})
}

// StartTrace begins a new trace rooted at a span called name. The
// returned context carries the trace; every StartSpan and rpc call
// under it records into the default collector.
func StartTrace(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{
		Trace: nextTraceID.Add(1),
		ID:    nextSpanID.Add(1),
		Name:  name,
		Start: time.Now(),
		coll:  Spans,
	}
	return context.WithValue(ctx, spanKey, spanRef{s.Trace, s.ID}), s
}

// StartSpan begins a child span under ctx's active span. When ctx is
// untraced it returns (ctx, nil) without allocating; a nil *Span is a
// no-op receiver for Annotate and End, so call sites need no guards.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	ref, ok := ctx.Value(spanKey).(spanRef)
	if !ok {
		return ctx, nil
	}
	s := &Span{
		Trace:  ref.trace,
		ID:     nextSpanID.Add(1),
		Parent: ref.span,
		Name:   name,
		Start:  time.Now(),
		coll:   Spans,
	}
	return context.WithValue(ctx, spanKey, spanRef{s.Trace, s.ID}), s
}

// StartChild begins a child span without deriving a new context — for
// leaf operations (one rpc call) that never propagate the context
// further in-process. Returns nil when ctx is untraced.
func StartChild(ctx context.Context, name string) *Span {
	ref, ok := ctx.Value(spanKey).(spanRef)
	if !ok {
		return nil
	}
	return &Span{
		Trace:  ref.trace,
		ID:     nextSpanID.Add(1),
		Parent: ref.span,
		Name:   name,
		Start:  time.Now(),
		coll:   Spans,
	}
}

// StartRemote begins a span for work done on behalf of a remote
// caller: trace and parent arrived over the wire, where names the
// serving endpoint. Returns nil when trace is zero (untraced call).
func StartRemote(trace, parent uint64, name, where string) *Span {
	if trace == 0 {
		return nil
	}
	return &Span{
		Trace:  trace,
		ID:     nextSpanID.Add(1),
		Parent: parent,
		Name:   name,
		Where:  where,
		Start:  time.Now(),
		coll:   Spans,
	}
}

// Annotate attaches a formatted note to the span. Safe on a nil span.
func (s *Span) Annotate(format string, args ...any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.Notes = append(s.Notes, fmt.Sprintf(format, args...))
	s.mu.Unlock()
}

// End completes the span (recording err when non-nil) and hands it to
// the collector. Safe on a nil span; second End is a no-op.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.Dur = time.Since(s.Start)
	if err != nil {
		s.Err = err.Error()
	}
	coll := s.coll
	s.mu.Unlock()
	if coll != nil {
		coll.add(s)
	}
}

// Collector retains completed spans in a fixed ring buffer and flags
// slow operations. It is the process-wide sink: memnet deployments
// run every service in one process, so one ring holds the full causal
// tree of a traced operation.
type Collector struct {
	mu  sync.Mutex
	cap int
	// ring is allocated on the first completed span: a megabyte of
	// pointer-bearing retention would otherwise be scanned by every
	// runtime GC cycle in processes that never trace anything.
	ring []SpanInfo
	next int
	full bool

	slow atomic.Int64 // slow-op threshold in nanoseconds; 0 = off

	// observers holds the completion hooks (tail samplers) as an
	// immutable []observer slice swapped under obsMu; add() loads it
	// with one atomic read, so untraced workloads never feel it.
	obsMu     sync.Mutex
	observers atomic.Value // []observer
	obsNext   uint64
}

// observer is one registered completion hook.
type observer struct {
	id uint64
	fn func(SpanInfo)
}

// Observe registers fn to run synchronously after every completed span
// lands in the ring — the tail-sampling hook: a flight recorder decides
// on root-span completion whether the finished trace is worth keeping.
// fn must be fast and must not End spans into the same collector. The
// returned cancel removes the hook.
func (c *Collector) Observe(fn func(SpanInfo)) (cancel func()) {
	c.obsMu.Lock()
	defer c.obsMu.Unlock()
	c.obsNext++
	id := c.obsNext
	var cur []observer
	if v := c.observers.Load(); v != nil {
		cur = v.([]observer)
	}
	next := make([]observer, 0, len(cur)+1)
	next = append(next, cur...)
	next = append(next, observer{id: id, fn: fn})
	c.observers.Store(next)
	return func() {
		c.obsMu.Lock()
		defer c.obsMu.Unlock()
		var have []observer
		if v := c.observers.Load(); v != nil {
			have = v.([]observer)
		}
		pruned := make([]observer, 0, len(have))
		for _, o := range have {
			if o.id != id {
				pruned = append(pruned, o)
			}
		}
		c.observers.Store(pruned)
	}
}

// SpanInfo is the immutable record of one completed span — what a
// Collector retains and what trace queries return.
type SpanInfo struct {
	Trace  uint64
	ID     uint64
	Parent uint64
	Name   string
	Where  string
	Start  time.Time
	Dur    time.Duration
	Err    string
	Notes  []string
}

// NewCollector returns a collector retaining the last capacity spans.
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		capacity = 1
	}
	return &Collector{cap: capacity}
}

// Spans is the process-wide span collector.
var Spans = NewCollector(8192)

// SetSlowThreshold arms slow-op logging: any span ending with a
// duration at or above d logs a warning through Log. d <= 0 disarms.
func (c *Collector) SetSlowThreshold(d time.Duration) { c.slow.Store(int64(d)) }

func (c *Collector) add(s *Span) {
	cs := SpanInfo{
		Trace:  s.Trace,
		ID:     s.ID,
		Parent: s.Parent,
		Name:   s.Name,
		Where:  s.Where,
		Start:  s.Start,
		Dur:    s.Dur,
		Err:    s.Err,
		Notes:  s.Notes,
	}
	c.mu.Lock()
	if c.ring == nil {
		c.ring = make([]SpanInfo, c.cap)
	}
	c.ring[c.next] = cs
	c.next++
	if c.next == len(c.ring) {
		c.next = 0
		c.full = true
	}
	c.mu.Unlock()

	if slow := c.slow.Load(); slow > 0 && int64(cs.Dur) >= slow {
		Log.Warnf("slow op: %s took %v (trace=%d span=%d%s)",
			cs.Name, cs.Dur.Round(time.Microsecond), cs.Trace, cs.ID, whereSuffix(cs.Where))
	}
	if cs.Err != "" {
		Log.Debugf("span error: %s: %s (trace=%d)", cs.Name, cs.Err, cs.Trace)
	}

	if v := c.observers.Load(); v != nil {
		for _, o := range v.([]observer) {
			o.fn(cs)
		}
	}
}

func whereSuffix(where string) string {
	if where == "" {
		return ""
	}
	return " @" + where
}

// snapshot returns the retained spans, oldest first.
func (c *Collector) snapshot() []SpanInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.full {
		return append([]SpanInfo(nil), c.ring[:c.next]...)
	}
	out := make([]SpanInfo, 0, len(c.ring))
	out = append(out, c.ring[c.next:]...)
	out = append(out, c.ring[:c.next]...)
	return out
}

// Trace returns the retained spans of one trace, start-ordered.
func (c *Collector) Trace(trace uint64) []SpanInfo {
	var out []SpanInfo
	for _, cs := range c.snapshot() {
		if cs.Trace == trace {
			out = append(out, cs)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// TraceIDs returns the ids of recently retained traces, newest first,
// at most max (0 = all).
func (c *Collector) TraceIDs(max int) []uint64 {
	seen := make(map[uint64]bool)
	var ids []uint64
	spans := c.snapshot()
	for i := len(spans) - 1; i >= 0; i-- {
		id := spans[i].Trace
		if id == 0 || seen[id] {
			continue
		}
		seen[id] = true
		ids = append(ids, id)
		if max > 0 && len(ids) == max {
			break
		}
	}
	return ids
}

// Tree renders one trace as an indented causal tree: every span under
// its parent, siblings in start order, with durations, endpoints,
// errors, and annotations. Spans whose parent fell out of the ring
// render as roots, so a partially retained trace still displays.
func (c *Collector) Tree(trace uint64) string {
	spans := c.Trace(trace)
	if len(spans) == 0 {
		return fmt.Sprintf("trace %d: no spans retained\n", trace)
	}
	return RenderTree(trace, spans)
}

// RenderTree renders an already-collected span set as the same causal
// tree Collector.Tree prints — the shared renderer for live traces and
// traces replayed from a flight log after the process that recorded
// them died.
func RenderTree(trace uint64, spans []SpanInfo) string {
	if len(spans) == 0 {
		return fmt.Sprintf("trace %d: no spans retained\n", trace)
	}
	spans = append([]SpanInfo(nil), spans...)
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	byID := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		byID[s.ID] = true
	}
	children := make(map[uint64][]SpanInfo)
	var roots []SpanInfo
	for _, s := range spans {
		if s.Parent != 0 && byID[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %d (%d spans)\n", trace, len(spans))
	var render func(s SpanInfo, prefix string, last bool)
	render = func(s SpanInfo, prefix string, last bool) {
		branch, childPrefix := "├─ ", prefix+"│  "
		if last {
			branch, childPrefix = "└─ ", prefix+"   "
		}
		fmt.Fprintf(&b, "%s%s%s %v%s", prefix, branch, s.Name, s.Dur.Round(time.Microsecond), whereSuffix(s.Where))
		if s.Err != "" {
			fmt.Fprintf(&b, " ERR(%s)", s.Err)
		}
		b.WriteByte('\n')
		for _, note := range s.Notes {
			fmt.Fprintf(&b, "%s   · %s\n", childPrefix, note)
		}
		kids := children[s.ID]
		for i, k := range kids {
			render(k, childPrefix, i == len(kids)-1)
		}
	}
	for i, r := range roots {
		render(r, "", i == len(roots)-1)
	}
	return b.String()
}
