package obs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	ctx, root := StartTrace(context.Background(), "op")
	cctx, child := StartSpan(ctx, "stage")
	leaf := StartChild(cctx, "rpc:call")
	leaf.Annotate("-> %s", "srv/a")
	leaf.End(nil)
	remote := StartRemote(root.Trace, leaf.ID, "serve:call", "srv/a")
	remote.End(errors.New("boom"))
	child.End(nil)
	root.End(nil)

	spans := Spans.Trace(root.Trace)
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	byName := make(map[string]SpanInfo)
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["stage"].Parent != root.ID {
		t.Errorf("stage parent = %d, want %d", byName["stage"].Parent, root.ID)
	}
	if byName["rpc:call"].Parent != byName["stage"].ID {
		t.Errorf("leaf parent = %d, want %d", byName["rpc:call"].Parent, byName["stage"].ID)
	}
	if byName["serve:call"].Parent != byName["rpc:call"].ID {
		t.Errorf("remote parent = %d, want %d", byName["serve:call"].Parent, byName["rpc:call"].ID)
	}

	tree := Spans.Tree(root.Trace)
	for _, want := range []string{"op", "stage", "rpc:call", "serve:call", "@srv/a", "ERR(boom)", "· -> srv/a"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
	// The server-side span must render UNDER the client call span.
	if strings.Index(tree, "rpc:call") > strings.Index(tree, "serve:call") {
		t.Errorf("serve:call not nested under rpc:call:\n%s", tree)
	}
}

func TestUntracedContextAllocatesNothing(t *testing.T) {
	ctx := context.Background()
	octx, s := StartSpan(ctx, "x")
	if s != nil || octx != ctx {
		t.Errorf("untraced StartSpan = (%v, %v)", octx, s)
	}
	if c := StartChild(ctx, "x"); c != nil {
		t.Errorf("untraced StartChild = %v", c)
	}
	if r := StartRemote(0, 0, "x", "y"); r != nil {
		t.Errorf("zero-trace StartRemote = %v", r)
	}
	// All methods are nil-safe.
	s.Annotate("ignored")
	s.End(nil)
}

func TestSpanEndIdempotent(t *testing.T) {
	c := NewCollector(8)
	_, root := StartTrace(context.Background(), "once")
	root.coll = c
	root.End(nil)
	root.End(errors.New("second end must not re-record"))
	if got := len(c.Trace(root.Trace)); got != 1 {
		t.Errorf("retained %d spans after double End, want 1", got)
	}
}

func TestCollectorRingWraps(t *testing.T) {
	c := NewCollector(4)
	ctx, root := StartTrace(context.Background(), "wrap")
	for i := 0; i < 10; i++ {
		_, s := StartSpan(ctx, fmt.Sprintf("s%d", i))
		s.coll = c
		s.End(nil)
	}
	spans := c.Trace(root.Trace)
	if len(spans) != 4 {
		t.Fatalf("ring retained %d spans, want 4", len(spans))
	}
	// Oldest entries were overwritten; the survivors are the newest 4.
	for _, s := range spans {
		if s.Name < "s6" {
			t.Errorf("span %s survived a full wrap", s.Name)
		}
	}
	// Orphaned spans (parent fell out of the ring) still render.
	tree := c.Tree(root.Trace)
	if !strings.Contains(tree, "s9") {
		t.Errorf("tree after wrap:\n%s", tree)
	}
}

func TestLoggerLevels(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelWarn)
	l.Debugf("quiet")
	l.Infof("quiet")
	l.Warnf("loud %d", 1)
	l.Errorf("loud %d", 2)
	out := b.String()
	if strings.Contains(out, "quiet") {
		t.Errorf("sub-threshold lines emitted:\n%s", out)
	}
	if !strings.Contains(out, "WARN  loud 1") || !strings.Contains(out, "ERROR loud 2") {
		t.Errorf("expected lines missing:\n%s", out)
	}
	l.SetLevel(LevelDebug)
	if !l.Enabled(LevelDebug) {
		t.Error("SetLevel(debug) not effective")
	}

	for _, tc := range []struct {
		in   string
		want Level
		err  bool
	}{
		{"debug", LevelDebug, false},
		{"info", LevelInfo, false},
		{"warn", LevelWarn, false},
		{"warning", LevelWarn, false},
		{"error", LevelError, false},
		{"loud", 0, true},
	} {
		got, err := ParseLevel(tc.in)
		if (err != nil) != tc.err || (!tc.err && got != tc.want) {
			t.Errorf("ParseLevel(%q) = (%v, %v)", tc.in, got, err)
		}
	}
}

func TestSlowThresholdLogs(t *testing.T) {
	var b strings.Builder
	old := Log
	Log = NewLogger(&b, LevelWarn)
	defer func() { Log = old }()

	c := NewCollector(8)
	c.SetSlowThreshold(time.Nanosecond)
	_, s := StartTrace(context.Background(), "crawl")
	s.coll = c
	time.Sleep(time.Millisecond)
	s.End(nil)
	if !strings.Contains(b.String(), "slow op: crawl") {
		t.Errorf("no slow-op warning:\n%s", b.String())
	}

	b.Reset()
	c.SetSlowThreshold(0)
	_, s2 := StartTrace(context.Background(), "fast")
	s2.coll = c
	s2.End(nil)
	if strings.Contains(b.String(), "slow op") {
		t.Errorf("disarmed threshold still logs:\n%s", b.String())
	}
}
