// Package obs is the observability plane: a leveled logger, lightweight
// causal spans with a ring-buffer collector, and the HTTP export
// endpoint serving the unified metrics registry.
//
// Spans and the logger share one stream of operational truth: a span
// crossing the slow-op threshold logs through the same Logger that
// error paths use, so "what was slow" and "what failed" land in one
// place. The rpc layer propagates span identity across the wire (see
// wire.TraceContext), which is what lets one traced append be rendered
// as a causal tree spanning client, version manager, providers, and
// the metadata DHT.
package obs

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity.
type Level int32

// Severities, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	default:
		return fmt.Sprintf("LEVEL(%d)", int32(l))
	}
}

// ParseLevel maps a flag value to a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelWarn, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// Logger is a minimal leveled logger. Every internal subsystem routes
// its operational events (swallowed errors, failovers, slow ops)
// through one Logger so nothing is silently dropped; tests stay quiet
// because the default level is Warn and the benchmarks' transient
// failover noise logs at Debug/Info.
type Logger struct {
	level atomic.Int32
	mu    sync.Mutex
	w     io.Writer
}

// NewLogger returns a logger writing to w at the given level.
func NewLogger(w io.Writer, level Level) *Logger {
	l := &Logger{w: w}
	l.level.Store(int32(level))
	return l
}

// Log is the process-wide logger (stderr, Warn).
var Log = NewLogger(os.Stderr, LevelWarn)

// SetLevel changes the minimum emitted severity.
func (l *Logger) SetLevel(level Level) { l.level.Store(int32(level)) }

// Enabled reports whether level would be emitted.
func (l *Logger) Enabled(level Level) bool { return int32(level) >= l.level.Load() }

// SetOutput redirects the logger.
func (l *Logger) SetOutput(w io.Writer) {
	l.mu.Lock()
	l.w = w
	l.mu.Unlock()
}

func (l *Logger) logf(level Level, format string, args ...any) {
	if !l.Enabled(level) {
		return
	}
	msg := fmt.Sprintf(format, args...)
	line := fmt.Sprintf("%s %-5s %s\n", time.Now().Format("15:04:05.000"), level, msg)
	l.mu.Lock()
	//lint:droppederr logging the log writer's own failure would recurse into logf; there is no better fallback than dropping the line
	_, _ = io.WriteString(l.w, line)
	l.mu.Unlock()
}

// Debugf logs at Debug level.
func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, format, args...) }

// Infof logs at Info level.
func (l *Logger) Infof(format string, args ...any) { l.logf(LevelInfo, format, args...) }

// Warnf logs at Warn level.
func (l *Logger) Warnf(format string, args ...any) { l.logf(LevelWarn, format, args...) }

// Errorf logs at Error level.
func (l *Logger) Errorf(format string, args ...any) { l.logf(LevelError, format, args...) }
