package transport

import (
	"sync"
)

// connBuf is the per-direction frame buffer of an in-process connection.
// It provides backpressure: senders block when the receiver lags by more
// than bufFrames frames.
const bufFrames = 256

// MemNet is an in-process Network. Frames move through buffered channels
// at memory speed; it is the substrate the shaped simnet wraps and the
// default for unit tests.
//
// The zero value is not usable; call NewMemNet.
type MemNet struct {
	mu        sync.Mutex
	listeners map[Addr]*memListener
	closed    bool
}

// NewMemNet returns an empty in-process network.
func NewMemNet() *MemNet {
	return &MemNet{listeners: make(map[Addr]*memListener)}
}

// Listen implements Network.
func (n *MemNet) Listen(addr Addr) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.listeners[addr]; ok {
		return nil, ErrAddrInUse
	}
	l := &memListener{
		net:     n,
		addr:    addr,
		backlog: make(chan *memConn, 64),
		done:    make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Dial implements Network.
func (n *MemNet) Dial(local, remote Addr) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[remote]
	n.mu.Unlock()
	if !ok {
		return nil, ErrNoListener
	}

	a2b := newFramePipe()
	b2a := newFramePipe()
	client := &memConn{local: local, remote: remote, send: a2b, recv: b2a}
	server := &memConn{local: remote, remote: local, send: b2a, recv: a2b}

	select {
	case l.backlog <- server:
		return client, nil
	case <-l.done:
		return nil, ErrNoListener
	}
}

// Close shuts the network down: all listeners stop accepting.
func (n *MemNet) Close() error {
	n.mu.Lock()
	ls := make([]*memListener, 0, len(n.listeners))
	for _, l := range n.listeners {
		ls = append(ls, l)
	}
	n.closed = true
	n.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	return nil
}

type memListener struct {
	net     *MemNet
	addr    Addr
	backlog chan *memConn
	done    chan struct{}
	once    sync.Once
}

func (l *memListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		if l.net.listeners[l.addr] == l {
			delete(l.net.listeners, l.addr)
		}
		l.net.mu.Unlock()
	})
	return nil
}

func (l *memListener) Addr() Addr { return l.addr }

// framePipe is one direction of a memConn.
type framePipe struct {
	frames chan []byte
	done   chan struct{}
	once   sync.Once
}

func newFramePipe() *framePipe {
	return &framePipe{
		frames: make(chan []byte, bufFrames),
		done:   make(chan struct{}),
	}
}

func (p *framePipe) close() {
	p.once.Do(func() { close(p.done) })
}

func (p *framePipe) send(frame []byte) error {
	// Fast-fail when already closed, then race-free blocking send.
	select {
	case <-p.done:
		return ErrClosed
	default:
	}
	select {
	case p.frames <- frame:
		return nil
	case <-p.done:
		return ErrClosed
	}
}

func (p *framePipe) recv() ([]byte, error) {
	select {
	case f := <-p.frames:
		return f, nil
	case <-p.done:
		// Drain frames that raced with close so no data is lost.
		select {
		case f := <-p.frames:
			return f, nil
		default:
			return nil, ErrClosed
		}
	}
}

type memConn struct {
	local, remote Addr
	send, recv    *framePipe
}

func (c *memConn) Send(frame []byte) error { return c.send.send(frame) }
func (c *memConn) Recv() ([]byte, error)   { return c.recv.recv() }

func (c *memConn) Close() error {
	c.send.close()
	c.recv.close()
	return nil
}

func (c *memConn) LocalAddr() Addr  { return c.local }
func (c *memConn) RemoteAddr() Addr { return c.remote }
