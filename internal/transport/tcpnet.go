package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCPNet is a Network over real TCP sockets on the loopback interface.
// It exists to prove the services are genuine networked programs, not
// artifacts of the in-process transport: integration tests run a small
// cluster over TCPNet. A process-local registry maps logical Addrs to
// ephemeral ports; a tiny handshake carries the logical addresses.
type TCPNet struct {
	mu    sync.Mutex
	ports map[Addr]string // logical addr -> "127.0.0.1:port"
}

// NewTCPNet returns a TCP-backed network using loopback sockets.
func NewTCPNet() *TCPNet {
	return &TCPNet{ports: make(map[Addr]string)}
}

// maxFrame bounds a single TCP frame; larger frames indicate corruption.
const maxFrame = 1 << 30

// Listen implements Network.
func (n *TCPNet) Listen(addr Addr) (Listener, error) {
	n.mu.Lock()
	if _, ok := n.ports[addr]; ok {
		n.mu.Unlock()
		return nil, ErrAddrInUse
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		n.mu.Unlock()
		return nil, fmt.Errorf("tcpnet listen: %w", err)
	}
	n.ports[addr] = ln.Addr().String()
	n.mu.Unlock()
	return &tcpListener{net: n, addr: addr, ln: ln}, nil
}

// Dial implements Network.
func (n *TCPNet) Dial(local, remote Addr) (Conn, error) {
	n.mu.Lock()
	hostport, ok := n.ports[remote]
	n.mu.Unlock()
	if !ok {
		return nil, ErrNoListener
	}
	c, err := net.Dial("tcp", hostport)
	if err != nil {
		return nil, fmt.Errorf("tcpnet dial %s: %w", remote, err)
	}
	tc := newTCPConn(c, local, remote)
	// Handshake: announce the dialer's logical address.
	if err := tc.Send([]byte(local)); err != nil {
		c.Close()
		return nil, fmt.Errorf("tcpnet handshake: %w", err)
	}
	return tc, nil
}

type tcpListener struct {
	net  *TCPNet
	addr Addr
	ln   net.Listener
	once sync.Once
}

func (l *tcpListener) Accept() (Conn, error) {
	c, err := l.ln.Accept()
	if err != nil {
		return nil, ErrClosed
	}
	tc := newTCPConn(c, l.addr, "")
	peer, err := tc.Recv()
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("tcpnet accept handshake: %w", err)
	}
	tc.remote = Addr(peer)
	return tc, nil
}

func (l *tcpListener) Close() error {
	l.once.Do(func() {
		l.net.mu.Lock()
		delete(l.net.ports, l.addr)
		l.net.mu.Unlock()
		l.ln.Close()
	})
	return nil
}

func (l *tcpListener) Addr() Addr { return l.addr }

type tcpConn struct {
	local  Addr
	remote Addr

	sendMu sync.Mutex
	bw     *bufio.Writer

	recvMu sync.Mutex
	br     *bufio.Reader

	c    net.Conn
	once sync.Once
}

func newTCPConn(c net.Conn, local, remote Addr) *tcpConn {
	return &tcpConn{
		local:  local,
		remote: remote,
		bw:     bufio.NewWriterSize(c, 64<<10),
		br:     bufio.NewReaderSize(c, 64<<10),
		c:      c,
	}
}

func (c *tcpConn) Send(frame []byte) error {
	if len(frame) > maxFrame {
		return fmt.Errorf("tcpnet: frame of %d bytes exceeds limit", len(frame))
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return ErrClosed
	}
	if _, err := c.bw.Write(frame); err != nil {
		return ErrClosed
	}
	if err := c.bw.Flush(); err != nil {
		return ErrClosed
	}
	return nil
}

func (c *tcpConn) Recv() ([]byte, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return nil, ErrClosed
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("tcpnet: frame of %d bytes exceeds limit", n)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(c.br, frame); err != nil {
		return nil, ErrClosed
	}
	return frame, nil
}

func (c *tcpConn) Close() error {
	c.once.Do(func() { c.c.Close() })
	return nil
}

func (c *tcpConn) LocalAddr() Addr  { return c.local }
func (c *tcpConn) RemoteAddr() Addr { return c.remote }
