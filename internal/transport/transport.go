// Package transport abstracts message delivery between the nodes of the
// simulated cluster. Every service (version manager, providers, metadata
// providers, namespace managers, namenode, datanodes, job/task trackers)
// talks through a transport.Network, so the same service code runs over:
//
//   - memnet: in-process channels at memory speed (unit tests, examples);
//   - tcpnet: real TCP via net (loopback integration tests);
//   - simnet: a bandwidth/latency-shaped decorator reproducing the
//     Grid'5000 testbed conditions (experiments). See package simnet.
//
// Frames are whole messages (the rpc package adds request framing); a
// Conn is reliable and ordered, like a TCP stream of delimited frames.
package transport

import (
	"errors"
	"strings"
)

// Addr names a service endpoint as "host/service", e.g.
// "orsay-042/provider". The host part is the unit of network shaping:
// all endpoints of one host share that host's simulated NIC.
type Addr string

// Host returns the host component of the address.
func (a Addr) Host() string {
	if i := strings.IndexByte(string(a), '/'); i >= 0 {
		return string(a)[:i]
	}
	return string(a)
}

// Service returns the service component of the address.
func (a Addr) Service() string {
	if i := strings.IndexByte(string(a), '/'); i >= 0 {
		return string(a)[i+1:]
	}
	return ""
}

// MakeAddr builds an Addr from a host and service name.
func MakeAddr(host, service string) Addr {
	return Addr(host + "/" + service)
}

// Errors shared by all transport implementations.
var (
	ErrClosed     = errors.New("transport: connection closed")
	ErrAddrInUse  = errors.New("transport: address already in use")
	ErrNoListener = errors.New("transport: no listener at address")
)

// Conn is a reliable, ordered, bidirectional frame connection.
// Send and Recv are safe for concurrent use; frames sent concurrently
// may interleave in any order but are never corrupted or dropped.
type Conn interface {
	// Send transmits one frame. Ownership of the slice passes to the
	// transport; callers must not modify it afterwards. Send blocks
	// while the (possibly shaped) link transmits the frame.
	Send(frame []byte) error
	// Recv returns the next frame, blocking until one arrives or the
	// connection closes (ErrClosed).
	Recv() ([]byte, error)
	// Close tears down both directions. Safe to call multiple times.
	Close() error
	// LocalAddr and RemoteAddr identify the endpoints.
	LocalAddr() Addr
	RemoteAddr() Addr
}

// Listener accepts inbound connections for one endpoint address.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	Addr() Addr
}

// Network creates listeners and outbound connections.
type Network interface {
	// Listen binds the given endpoint address.
	Listen(addr Addr) (Listener, error)
	// Dial connects from the local endpoint to a remote one. The local
	// address attributes traffic to the dialing host for shaping.
	Dial(local, remote Addr) (Conn, error)
}
