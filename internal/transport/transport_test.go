package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestAddrParts(t *testing.T) {
	a := MakeAddr("orsay-042", "provider")
	if a != "orsay-042/provider" {
		t.Fatalf("MakeAddr = %q", a)
	}
	if a.Host() != "orsay-042" {
		t.Errorf("Host = %q", a.Host())
	}
	if a.Service() != "provider" {
		t.Errorf("Service = %q", a.Service())
	}
	bare := Addr("justhost")
	if bare.Host() != "justhost" || bare.Service() != "" {
		t.Errorf("bare addr parsed as %q/%q", bare.Host(), bare.Service())
	}
}

// networkFactories lists every Network implementation under test; all
// transport semantics tests run against each.
func networkFactories() map[string]func(t *testing.T) Network {
	return map[string]func(t *testing.T) Network{
		"memnet": func(t *testing.T) Network { return NewMemNet() },
		"tcpnet": func(t *testing.T) Network { return NewTCPNet() },
	}
}

func TestEcho(t *testing.T) {
	for name, mk := range networkFactories() {
		t.Run(name, func(t *testing.T) {
			n := mk(t)
			addr := MakeAddr("srv", "echo")
			l, err := n.Listen(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()

			go func() {
				c, err := l.Accept()
				if err != nil {
					return
				}
				defer c.Close()
				for {
					f, err := c.Recv()
					if err != nil {
						return
					}
					if err := c.Send(f); err != nil {
						return
					}
				}
			}()

			c, err := n.Dial(MakeAddr("cli", "x"), addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				msg := []byte(fmt.Sprintf("frame-%d", i))
				if err := c.Send(append([]byte(nil), msg...)); err != nil {
					t.Fatal(err)
				}
				got, err := c.Recv()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, msg) {
					t.Fatalf("echo %d: got %q want %q", i, got, msg)
				}
			}
		})
	}
}

func TestAddrs(t *testing.T) {
	for name, mk := range networkFactories() {
		t.Run(name, func(t *testing.T) {
			n := mk(t)
			srv := MakeAddr("s", "svc")
			cli := MakeAddr("c", "cli")
			l, err := n.Listen(srv)
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			accepted := make(chan Conn, 1)
			go func() {
				c, err := l.Accept()
				if err == nil {
					accepted <- c
				}
			}()
			c, err := n.Dial(cli, srv)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			sc := <-accepted
			defer sc.Close()
			if c.LocalAddr() != cli || c.RemoteAddr() != srv {
				t.Errorf("client addrs = %v -> %v", c.LocalAddr(), c.RemoteAddr())
			}
			if sc.LocalAddr() != srv || sc.RemoteAddr() != cli {
				t.Errorf("server addrs = %v -> %v", sc.LocalAddr(), sc.RemoteAddr())
			}
		})
	}
}

func TestDialNoListener(t *testing.T) {
	for name, mk := range networkFactories() {
		t.Run(name, func(t *testing.T) {
			n := mk(t)
			if _, err := n.Dial("a/x", "b/y"); !errors.Is(err, ErrNoListener) {
				t.Errorf("err = %v, want ErrNoListener", err)
			}
		})
	}
}

func TestListenTwice(t *testing.T) {
	for name, mk := range networkFactories() {
		t.Run(name, func(t *testing.T) {
			n := mk(t)
			l, err := n.Listen("a/x")
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			if _, err := n.Listen("a/x"); !errors.Is(err, ErrAddrInUse) {
				t.Errorf("second Listen err = %v, want ErrAddrInUse", err)
			}
		})
	}
}

func TestListenAfterClose(t *testing.T) {
	for name, mk := range networkFactories() {
		t.Run(name, func(t *testing.T) {
			n := mk(t)
			l, err := n.Listen("a/x")
			if err != nil {
				t.Fatal(err)
			}
			l.Close()
			// Address is released; rebinding must succeed.
			l2, err := n.Listen("a/x")
			if err != nil {
				t.Fatalf("rebind after close: %v", err)
			}
			l2.Close()
		})
	}
}

func TestRecvAfterPeerClose(t *testing.T) {
	for name, mk := range networkFactories() {
		t.Run(name, func(t *testing.T) {
			n := mk(t)
			l, err := n.Listen("s/x")
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			done := make(chan struct{})
			go func() {
				defer close(done)
				c, err := l.Accept()
				if err != nil {
					return
				}
				c.Send([]byte("last words"))
				c.Close()
			}()
			c, err := n.Dial("c/x", "s/x")
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			<-done
			// The frame sent before close must still be readable.
			f, err := c.Recv()
			if err != nil {
				t.Fatalf("Recv before-close frame: %v", err)
			}
			if string(f) != "last words" {
				t.Fatalf("got %q", f)
			}
			if _, err := c.Recv(); !errors.Is(err, ErrClosed) {
				t.Errorf("Recv after close err = %v, want ErrClosed", err)
			}
		})
	}
}

func TestConcurrentSenders(t *testing.T) {
	for name, mk := range networkFactories() {
		t.Run(name, func(t *testing.T) {
			n := mk(t)
			l, err := n.Listen("s/x")
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()

			const senders = 8
			const perSender = 100
			total := senders * perSender

			received := make(chan []byte, total)
			go func() {
				c, err := l.Accept()
				if err != nil {
					return
				}
				defer c.Close()
				for i := 0; i < total; i++ {
					f, err := c.Recv()
					if err != nil {
						return
					}
					received <- f
				}
			}()

			c, err := n.Dial("c/x", "s/x")
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			var wg sync.WaitGroup
			for s := 0; s < senders; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					for i := 0; i < perSender; i++ {
						frame := []byte(fmt.Sprintf("%d:%d", s, i))
						if err := c.Send(frame); err != nil {
							t.Errorf("send: %v", err)
							return
						}
					}
				}(s)
			}
			wg.Wait()

			seen := make(map[string]bool, total)
			for i := 0; i < total; i++ {
				f := <-received
				if seen[string(f)] {
					t.Fatalf("duplicate frame %q", f)
				}
				seen[string(f)] = true
			}
			if len(seen) != total {
				t.Fatalf("got %d distinct frames, want %d", len(seen), total)
			}
		})
	}
}

func TestMemNetClose(t *testing.T) {
	n := NewMemNet()
	l, err := n.Listen("a/x")
	if err != nil {
		t.Fatal(err)
	}
	n.Close()
	if _, err := l.Accept(); !errors.Is(err, ErrClosed) {
		t.Errorf("Accept after net close: %v", err)
	}
	if _, err := n.Listen("b/y"); !errors.Is(err, ErrClosed) {
		t.Errorf("Listen after net close: %v", err)
	}
}

func TestTCPLargeFrame(t *testing.T) {
	n := NewTCPNet()
	l, err := n.Listen("s/x")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		f, err := c.Recv()
		if err != nil {
			return
		}
		c.Send(f)
	}()
	c, err := n.Dial("c/x", "s/x")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i * 31)
	}
	if err := c.Send(append([]byte(nil), big...)); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("1 MiB frame corrupted in transit")
	}
}
