package segtree

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"strings"
	"testing"

	"blobseer/internal/pagestore"
)

var ctx = context.Background()

// mkRefs builds page refs for a write of n pages at page off by ver.
func mkRefs(blob, ver, off, n uint64) []PageRef {
	refs := make([]PageRef, n)
	for i := range refs {
		refs[i] = PageRef{
			Page:      pagestore.Key{Blob: blob, Version: ver, Index: off + uint64(i)},
			Providers: []string{fmt.Sprintf("prov-%d/provider", (off+uint64(i))%7)},
		}
	}
	return refs
}

// model tracks expected page ownership per version.
type model struct {
	blob    uint64
	history []WriteRecord
	// owners[v] maps page index -> writing version (0 = hole), for the
	// state as of history entry v.
	owners [][]uint64
}

func newModel(blob uint64) *model { return &model{blob: blob} }

// apply records a write and returns the WriteRecord to commit.
func (m *model) apply(ver, off, n uint64) WriteRecord {
	var prev []uint64
	if len(m.owners) > 0 {
		prev = m.owners[len(m.owners)-1]
	}
	pages := off + n
	if uint64(len(prev)) > pages {
		pages = uint64(len(prev))
	}
	cur := make([]uint64, pages)
	copy(cur, prev)
	for p := off; p < off+n; p++ {
		cur[p] = ver
	}
	w := WriteRecord{Ver: ver, Off: off, N: n, PagesAfter: pages}
	m.owners = append(m.owners, cur)
	m.history = append(m.history, w)
	return w
}

// verify resolves the full range of every version and compares with the
// expected ownership.
func (m *model) verify(t *testing.T, store NodeStore) {
	t.Helper()
	for vi, w := range m.history {
		owners := m.owners[vi]
		slots, err := Resolve(ctx, store, m.blob, w.Ver, uint64(len(owners)), 0, uint64(len(owners)))
		if err != nil {
			t.Fatalf("resolve ver %d: %v", w.Ver, err)
		}
		if len(slots) != len(owners) {
			t.Fatalf("ver %d: %d slots, want %d", w.Ver, len(slots), len(owners))
		}
		for p, slot := range slots {
			if slot.Index != uint64(p) {
				t.Fatalf("ver %d: slot %d has index %d", w.Ver, p, slot.Index)
			}
			wantVer := owners[p]
			if wantVer == 0 {
				if !slot.Ref.Hole {
					t.Fatalf("ver %d page %d: want hole, got %+v", w.Ver, p, slot.Ref)
				}
				continue
			}
			if slot.Ref.Hole {
				t.Fatalf("ver %d page %d: unexpected hole, want writer %d", w.Ver, p, wantVer)
			}
			if slot.Ref.Page.Version != wantVer || slot.Ref.Page.Index != uint64(p) {
				t.Fatalf("ver %d page %d: ref %+v, want writer %d", w.Ver, p, slot.Ref.Page, wantVer)
			}
		}
	}
}

// commitModelWrite commits one write through the model.
func commitModelWrite(t *testing.T, store NodeStore, m *model, ver, off, n uint64) {
	t.Helper()
	w := m.apply(ver, off, n)
	if err := Commit(ctx, store, m.blob, w, m.history[:len(m.history)-1], mkRefs(m.blob, ver, off, n)); err != nil {
		t.Fatalf("commit ver %d: %v", ver, err)
	}
}

func TestRootSpan(t *testing.T) {
	cases := map[uint64]uint64{0: 0, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for n, want := range cases {
		if got := RootSpan(n); got != want {
			t.Errorf("RootSpan(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSingleAppend(t *testing.T) {
	store := NewMemStore()
	m := newModel(1)
	commitModelWrite(t, store, m, 1, 0, 4)
	m.verify(t, store)
}

func TestSequentialAppends(t *testing.T) {
	store := NewMemStore()
	m := newModel(2)
	off := uint64(0)
	for v := uint64(1); v <= 20; v++ {
		n := uint64(1 + (v*3)%5)
		commitModelWrite(t, store, m, v, off, n)
		off += n
	}
	m.verify(t, store) // every version, including old ones, stays intact
}

func TestOverwrites(t *testing.T) {
	store := NewMemStore()
	m := newModel(3)
	commitModelWrite(t, store, m, 1, 0, 16)
	commitModelWrite(t, store, m, 2, 4, 4)  // overwrite middle
	commitModelWrite(t, store, m, 3, 0, 1)  // overwrite first page
	commitModelWrite(t, store, m, 4, 15, 3) // extend past the end
	m.verify(t, store)
}

func TestWriteBeyondEndCreatesHoles(t *testing.T) {
	store := NewMemStore()
	m := newModel(4)
	commitModelWrite(t, store, m, 1, 0, 1) // 1 page, root span 1
	commitModelWrite(t, store, m, 2, 8, 2) // pages 1..7 are holes; grid grows
	m.verify(t, store)
}

func TestFirstWriteWithLeadingHole(t *testing.T) {
	store := NewMemStore()
	m := newModel(5)
	commitModelWrite(t, store, m, 1, 5, 3) // pages 0..4 never written
	m.verify(t, store)
}

func TestGridGrowthWrapper(t *testing.T) {
	// v1: tiny tree (span 1); v2 grows grid by 8x and does not touch
	// v1's range beyond wrapping it; v3 appends after both.
	store := NewMemStore()
	m := newModel(6)
	commitModelWrite(t, store, m, 1, 0, 1)
	commitModelWrite(t, store, m, 2, 6, 2)
	commitModelWrite(t, store, m, 3, 8, 4)
	m.verify(t, store)
}

func TestPartialResolve(t *testing.T) {
	store := NewMemStore()
	m := newModel(7)
	commitModelWrite(t, store, m, 1, 0, 32)
	commitModelWrite(t, store, m, 2, 10, 5)

	slots, err := Resolve(ctx, store, 7, 2, 32, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 10 {
		t.Fatalf("got %d slots", len(slots))
	}
	for i, s := range slots {
		p := uint64(8 + i)
		if s.Index != p {
			t.Fatalf("slot %d: index %d", i, s.Index)
		}
		want := uint64(1)
		if p >= 10 && p < 15 {
			want = 2
		}
		if s.Ref.Page.Version != want {
			t.Errorf("page %d: writer %d, want %d", p, s.Ref.Page.Version, want)
		}
	}
}

func TestResolveBounds(t *testing.T) {
	store := NewMemStore()
	m := newModel(8)
	commitModelWrite(t, store, m, 1, 0, 4)
	if _, err := Resolve(ctx, store, 8, 1, 4, 2, 10); err == nil {
		t.Error("resolve past end succeeded")
	}
	slots, err := Resolve(ctx, store, 8, 1, 4, 0, 0)
	if err != nil || slots != nil {
		t.Errorf("empty resolve = %v, %v", slots, err)
	}
}

func TestCommitValidation(t *testing.T) {
	store := NewMemStore()
	w := WriteRecord{Ver: 1, Off: 0, N: 0, PagesAfter: 0}
	if err := Commit(ctx, store, 1, w, nil, nil); err == nil {
		t.Error("zero-length commit succeeded")
	}
	w = WriteRecord{Ver: 1, Off: 0, N: 2, PagesAfter: 2}
	if err := Commit(ctx, store, 1, w, nil, mkRefs(1, 1, 0, 1)); err == nil {
		t.Error("refs/N mismatch accepted")
	}
	if err := Commit(ctx, store, 1, w, nil, mkRefs(1, 1, 0, 3)); err == nil {
		t.Error("refs/N mismatch accepted")
	}
	w = WriteRecord{Ver: 1, Off: 4, N: 2, PagesAfter: 4}
	if err := Commit(ctx, store, 1, w, nil, mkRefs(1, 1, 4, 2)); err == nil {
		t.Error("write beyond PagesAfter accepted")
	}
	w = WriteRecord{Ver: 2, Off: 0, N: 1, PagesAfter: 1}
	hist := []WriteRecord{{Ver: 3, Off: 0, N: 1, PagesAfter: 1}}
	if err := Commit(ctx, store, 1, w, hist, mkRefs(1, 2, 0, 1)); err == nil {
		t.Error("future version in history accepted")
	}
}

func TestStructuralSharing(t *testing.T) {
	// Appending one page to a large BLOB must create O(log n) nodes,
	// not O(n): that is what makes concurrent appends cheap.
	store := NewMemStore()
	m := newModel(9)
	commitModelWrite(t, store, m, 1, 0, 1024)
	before := store.Len()
	commitModelWrite(t, store, m, 2, 1024, 1)
	created := store.Len() - before
	// New leaf + path to root of span 2048: ~ log2(2048)+1 nodes.
	maxNodes := bits.Len64(2048) + 2
	if created > maxNodes {
		t.Errorf("1-page append created %d nodes, want <= %d", created, maxNodes)
	}
	m.verify(t, store)
}

func TestCommitOrderIndependence(t *testing.T) {
	// Metadata commits read nothing, so they can land out of order:
	// commit v3 before v2 and everything must still resolve.
	store := NewMemStore()
	m := newModel(10)
	w1 := m.apply(1, 0, 4)
	w2 := m.apply(2, 4, 4)
	w3 := m.apply(3, 8, 4)
	if err := Commit(ctx, store, 10, w3, []WriteRecord{w1, w2}, mkRefs(10, 3, 8, 4)); err != nil {
		t.Fatal(err)
	}
	if err := Commit(ctx, store, 10, w1, nil, mkRefs(10, 1, 0, 4)); err != nil {
		t.Fatal(err)
	}
	if err := Commit(ctx, store, 10, w2, []WriteRecord{w1}, mkRefs(10, 2, 4, 4)); err != nil {
		t.Fatal(err)
	}
	m.verify(t, store)
}

func TestHoleSeal(t *testing.T) {
	// A sealed (failed) version commits hole refs for its interval;
	// successors built on it must read holes there, not data.
	store := NewMemStore()
	m := newModel(11)
	commitModelWrite(t, store, m, 1, 0, 4)

	// Version 2 "failed": sealed with holes.
	w2 := m.apply(2, 4, 4)
	holes := make([]PageRef, 4)
	for i := range holes {
		holes[i] = PageRef{Hole: true}
	}
	if err := Commit(ctx, store, 11, w2, m.history[:1], holes); err != nil {
		t.Fatal(err)
	}
	// Fix the model: sealed pages read as holes.
	for p := 4; p < 8; p++ {
		m.owners[1][p] = 0
	}

	commitModelWrite(t, store, m, 3, 8, 2)
	// v3 sees v1's data, v2's holes, own data.
	for p := 4; p < 8; p++ {
		m.owners[2][p] = 0
	}
	m.verify(t, store)
}

func TestMissingNodeError(t *testing.T) {
	store := NewMemStore()
	m := newModel(12)
	commitModelWrite(t, store, m, 1, 0, 8)
	// Wipe one node.
	for k := range store.m {
		if strings.HasSuffix(k, "/0/1") { // a leaf
			delete(store.m, k)
			break
		}
	}
	if _, err := Resolve(ctx, store, 12, 1, 8, 0, 8); !errors.Is(err, ErrNodeMissing) {
		t.Errorf("err = %v, want ErrNodeMissing", err)
	}
}

func TestRandomWritesAgainstModel(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			store := NewMemStore()
			m := newModel(uint64(100 + seed))
			pages := uint64(0)
			for v := uint64(1); v <= 40; v++ {
				var off uint64
				switch rng.Intn(4) {
				case 0: // append
					off = pages
				case 1: // write beyond end (holes)
					off = pages + uint64(rng.Intn(10))
				default: // overwrite inside
					if pages > 0 {
						off = uint64(rng.Intn(int(pages)))
					}
				}
				n := uint64(1 + rng.Intn(12))
				commitModelWrite(t, store, m, v, off, n)
				if off+n > pages {
					pages = off + n
				}
			}
			m.verify(t, store)
		})
	}
}

func TestRandomAppendsManyVersions(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	store := NewMemStore()
	m := newModel(200)
	off := uint64(0)
	for v := uint64(1); v <= 150; v++ {
		n := uint64(1 + rng.Intn(4))
		commitModelWrite(t, store, m, v, off, n)
		off += n
	}
	// Spot check: latest version full read plus a few old versions.
	m.verify(t, store)
}

func BenchmarkCommitAppend16(b *testing.B) {
	store := NewMemStore()
	m := newModel(300)
	off := uint64(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := uint64(i + 1)
		w := m.apply(v, off, 16)
		if err := Commit(ctx, store, 300, w, m.history[:len(m.history)-1], mkRefs(300, v, off, 16)); err != nil {
			b.Fatal(err)
		}
		off += 16
	}
}

func BenchmarkResolve16(b *testing.B) {
	store := NewMemStore()
	m := newModel(301)
	off := uint64(0)
	for v := uint64(1); v <= 64; v++ {
		w := m.apply(v, off, 16)
		if err := Commit(ctx, store, 301, w, m.history[:len(m.history)-1], mkRefs(301, v, off, 16)); err != nil {
			b.Fatal(err)
		}
		off += 16
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := uint64(i%63) * 16
		if _, err := Resolve(ctx, store, 301, 64, off, start, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// TestVersionNodesMatchesCommit: VersionNodes must enumerate exactly
// the key set Commit stores, for appends, overwrites, and grid-growth
// wrappers alike — the garbage collector relies on this equivalence to
// delete a dead version's metadata without reading it.
func TestVersionNodesMatchesCommit(t *testing.T) {
	store := NewMemStore()
	recs := []WriteRecord{
		{Ver: 1, Off: 0, N: 2, PagesAfter: 2},
		{Ver: 2, Off: 1, N: 2, PagesAfter: 3}, // overwrite + grow
		{Ver: 3, Off: 6, N: 2, PagesAfter: 8}, // jump past the old root (wrappers)
		{Ver: 4, Off: 0, N: 1, PagesAfter: 8}, // overwrite inside the grown grid
	}
	for i, w := range recs {
		refs := make([]PageRef, w.N)
		for j := range refs {
			refs[j] = PageRef{Page: pagestore.Key{Blob: 9, Version: w.Ver, Index: w.Off + uint64(j)}, Providers: []string{"p"}}
		}
		before := keySet(store)
		if err := Commit(ctx, store, 9, w, recs[:i], refs); err != nil {
			t.Fatal(err)
		}
		var committed []string
		for k := range keySet(store) {
			if !before[k] {
				committed = append(committed, k)
			}
		}
		nodes := VersionNodes(9, w, recs[:i])
		if len(nodes) != len(committed) {
			t.Fatalf("v%d: VersionNodes has %d keys, Commit stored %d", w.Ver, len(nodes), len(committed))
		}
		want := make(map[string]bool, len(committed))
		for _, k := range committed {
			want[k] = true
		}
		for _, nr := range nodes {
			if !want[nr.Key] {
				t.Errorf("v%d: VersionNodes key %s never committed", w.Ver, nr.Key)
			}
			if nr.Key != NodeKey(9, w.Ver, nr.Off, nr.Span) {
				t.Errorf("v%d: NodeRef range (%d,%d) disagrees with key %s", w.Ver, nr.Off, nr.Span, nr.Key)
			}
		}
	}
}

func keySet(s *MemStore) map[string]bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]bool, len(s.m))
	for k := range s.m {
		out[k] = true
	}
	return out
}

// TestMemStoreDeleteNodes: the deletion capability behind metadata GC.
func TestMemStoreDeleteNodes(t *testing.T) {
	s := NewMemStore()
	if err := s.PutNodes(ctx, []string{"a", "b", "c"}, [][]byte{{1}, {2}, {3}}); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteNodes(ctx, []string{"a", "c", "missing"}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("len after delete = %d, want 1", s.Len())
	}
	vals, err := s.GetNodes(ctx, []string{"b"})
	if err != nil || vals[0] == nil {
		t.Fatalf("survivor missing: %v %v", vals, err)
	}
}
