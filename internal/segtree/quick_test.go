package segtree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickAppendSequences drives random append-only workloads through
// testing/quick: for any sequence of append sizes, every version's
// full-range resolution must match the flat reference model.
func TestQuickAppendSequences(t *testing.T) {
	f := func(sizes []uint8, blobSeed uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 24 {
			sizes = sizes[:24]
		}
		store := NewMemStore()
		m := newModel(uint64(blobSeed) + 1000)
		off := uint64(0)
		for i, s := range sizes {
			n := uint64(s%9) + 1
			ver := uint64(i + 1)
			w := m.apply(ver, off, n)
			if err := Commit(ctx, store, m.blob, w, m.history[:len(m.history)-1], mkRefs(m.blob, ver, off, n)); err != nil {
				t.Logf("commit: %v", err)
				return false
			}
			off += n
		}
		// Verify every version against the model.
		for vi, w := range m.history {
			owners := m.owners[vi]
			slots, err := Resolve(ctx, store, m.blob, w.Ver, uint64(len(owners)), 0, uint64(len(owners)))
			if err != nil {
				t.Logf("resolve: %v", err)
				return false
			}
			for p, slot := range slots {
				if owners[p] == 0 && !slot.Ref.Hole {
					return false
				}
				if owners[p] != 0 && slot.Ref.Page.Version != owners[p] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPartialResolves checks arbitrary sub-range resolutions
// against full-range ones.
func TestQuickPartialResolves(t *testing.T) {
	store := NewMemStore()
	m := newModel(55)
	rng := rand.New(rand.NewSource(7))
	off := uint64(0)
	for v := uint64(1); v <= 30; v++ {
		n := uint64(rng.Intn(7) + 1)
		w := m.apply(v, off, n)
		if err := Commit(ctx, store, m.blob, w, m.history[:len(m.history)-1], mkRefs(m.blob, v, off, n)); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	pages := off

	f := func(a, b uint16) bool {
		lo := uint64(a) % pages
		n := uint64(b)%(pages-lo) + 1
		slots, err := Resolve(ctx, store, m.blob, 30, pages, lo, n)
		if err != nil {
			t.Logf("resolve [%d,%d): %v", lo, lo+n, err)
			return false
		}
		if uint64(len(slots)) != n {
			return false
		}
		owners := m.owners[29]
		for i, slot := range slots {
			p := lo + uint64(i)
			if slot.Index != p || slot.Ref.Page.Version != owners[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRootSpan pins RootSpan's algebraic properties.
func TestQuickRootSpan(t *testing.T) {
	f := func(n uint32) bool {
		s := RootSpan(uint64(n))
		if n == 0 {
			return s == 0
		}
		// s is a power of two, >= n, and s/2 < n.
		if s&(s-1) != 0 {
			return false
		}
		return s >= uint64(n) && (s == 1 || s/2 < uint64(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
