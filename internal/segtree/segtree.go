// Package segtree implements BlobSeer's versioned metadata structure: a
// copy-on-write segment tree per BLOB that maps page ranges to page
// descriptors, with full structural sharing between versions (§3.1.1 of
// the paper; the algorithm follows Nicolae et al. [10]).
//
// A version v's tree is a binary tree over the page index space
// [0, rootSpan(v)) where rootSpan(v) is the smallest power of two
// covering the BLOB's page count at v. Leaves map single pages to
// replica locations; inner nodes reference children by *version number*
// only (the child's range is implied by the parent's), so a subtree
// untouched by a write is shared by pointing at the version that last
// wrote into it.
//
// Key property used for concurrency (and the reason appends scale in
// Figures 3-5): committing version v's metadata requires NO reads of
// other versions' metadata. The version manager hands the writer the
// write-interval history of all assigned versions below v, and every
// child pointer is computable from that history alone:
//
//	node (range R, version w) exists  ⇔  R ∩ write(w) ≠ ∅
//	                                     and span(R) ≤ rootSpan(w)
//
// (plus wrapper nodes a version creates when the grid grows past an old
// root, handled below). Metadata commits by concurrent appenders
// therefore proceed fully in parallel — one batched DHT write each —
// and only version *publication* is ordered.
package segtree

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"strconv"
	"sync"

	"blobseer/internal/pagestore"
	"blobseer/internal/wire"
)

// PageRef describes one stored page: where its replicas live, or that
// the page is a hole (never written; reads as zeros).
type PageRef struct {
	Page      pagestore.Key
	Providers []string // provider endpoint addresses, primary first
	Hole      bool
}

// WriteRecord is one version's write interval, in page units.
// PagesAfter is the BLOB's total page count once this version is
// applied; it determines the version's root span.
type WriteRecord struct {
	Ver        uint64
	Off        uint64 // first page written
	N          uint64 // number of pages written (>= 1)
	PagesAfter uint64
}

// Slot is one resolved page of a read: the page index within the BLOB
// and its descriptor.
type Slot struct {
	Index uint64
	Ref   PageRef
}

// NodeStore persists encoded tree nodes. The blob package adapts the
// metadata DHT to this interface; tests use an in-memory map.
type NodeStore interface {
	// PutNodes stores keys[i] -> values[i]. Entries are immutable.
	PutNodes(ctx context.Context, keys []string, values [][]byte) error
	// GetNodes fetches many nodes; missing entries are nil.
	GetNodes(ctx context.Context, keys []string) ([][]byte, error)
}

// ErrNodeMissing reports metadata lost by the node store.
var ErrNodeMissing = errors.New("segtree: tree node missing")

// RootSpan returns the page span of the root for a BLOB of n pages.
func RootSpan(n uint64) uint64 {
	if n <= 1 {
		return n
	}
	return 1 << uint(bits.Len64(n-1))
}

// nodeKey renders the DHT key of the node covering [off, off+span) in
// the tree of version ver.
func nodeKey(blob, ver, off, span uint64) string {
	return "st/" + strconv.FormatUint(blob, 10) +
		"/" + strconv.FormatUint(ver, 10) +
		"/" + strconv.FormatUint(off, 10) +
		"/" + strconv.FormatUint(span, 10)
}

// Node encodings.
const (
	nodeInner = 0
	nodeLeaf  = 1
)

func encodeInner(leftPresent bool, leftVer uint64, rightPresent bool, rightVer uint64) []byte {
	b := []byte{nodeInner}
	b = wire.AppendBool(b, leftPresent)
	b = wire.AppendUvarint(b, leftVer)
	b = wire.AppendBool(b, rightPresent)
	b = wire.AppendUvarint(b, rightVer)
	return b
}

func encodeLeaf(ref PageRef) []byte {
	b := []byte{nodeLeaf}
	b = wire.AppendBool(b, ref.Hole)
	b = wire.AppendUvarint(b, ref.Page.Blob)
	b = wire.AppendUvarint(b, ref.Page.Version)
	b = wire.AppendUvarint(b, ref.Page.Index)
	b = wire.AppendStringSlice(b, ref.Providers)
	return b
}

type innerNode struct {
	leftPresent  bool
	leftVer      uint64
	rightPresent bool
	rightVer     uint64
}

// decodeNode returns either *innerNode or *PageRef.
func decodeNode(raw []byte) (interface{}, error) {
	if len(raw) == 0 {
		return nil, errors.New("segtree: empty node encoding")
	}
	r := wire.NewReader(raw[1:])
	switch raw[0] {
	case nodeInner:
		var n innerNode
		n.leftPresent = r.Bool()
		n.leftVer = r.Uvarint()
		n.rightPresent = r.Bool()
		n.rightVer = r.Uvarint()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("segtree: decode inner: %w", err)
		}
		return &n, nil
	case nodeLeaf:
		var ref PageRef
		ref.Hole = r.Bool()
		ref.Page.Blob = r.Uvarint()
		ref.Page.Version = r.Uvarint()
		ref.Page.Index = r.Uvarint()
		ref.Providers = r.StringSlice()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("segtree: decode leaf: %w", err)
		}
		return &ref, nil
	default:
		return nil, fmt.Errorf("segtree: unknown node tag %d", raw[0])
	}
}

// builder accumulates the nodes of one version's tree.
type builder struct {
	blob    uint64
	w       WriteRecord
	history []WriteRecord // ascending by Ver, all Ver < w.Ver
	refs    []PageRef

	keys   []string
	values [][]byte
	offs   []uint64 // page range of keys[i]: [offs[i], offs[i]+spans[i])
	spans  []uint64
}

// intersects reports whether [aOff, aOff+aN) and [bOff, bOff+bN) overlap.
func intersects(aOff, aN, bOff, bN uint64) bool {
	return aOff < bOff+bN && bOff < aOff+aN
}

// latest returns the most recent history record whose write interval
// intersects [off, off+span), or nil.
func (b *builder) latest(off, span uint64) *WriteRecord {
	for i := len(b.history) - 1; i >= 0; i-- {
		rec := &b.history[i]
		if intersects(rec.Off, rec.N, off, span) {
			return rec
		}
	}
	return nil
}

// childPointer decides how the node being built refers to the child
// range [off, off+span): create it in this version (build recurses),
// reuse an older version's node, or mark it absent (hole).
func (b *builder) childPointer(off, span uint64) (present bool, ver uint64, create bool) {
	if intersects(b.w.Off, b.w.N, off, span) {
		return true, b.w.Ver, true
	}
	rec := b.latest(off, span)
	if rec == nil {
		return false, 0, false
	}
	if RootSpan(rec.PagesAfter) >= span {
		return true, rec.Ver, false
	}
	// The last version writing here had a smaller tree than this range;
	// the grid has since grown, so this version must materialize a
	// wrapper node covering the range.
	return true, b.w.Ver, true
}

// build creates the node covering [off, off+span) and recursively all
// descendants this version must own.
func (b *builder) build(off, span uint64) {
	if span == 1 {
		var ref PageRef
		if intersects(b.w.Off, b.w.N, off, 1) {
			ref = b.refs[off-b.w.Off]
		} else {
			// Wrapper leaf outside the write with no prior writer.
			ref = PageRef{Hole: true}
		}
		b.keys = append(b.keys, nodeKey(b.blob, b.w.Ver, off, 1))
		b.values = append(b.values, encodeLeaf(ref))
		b.offs = append(b.offs, off)
		b.spans = append(b.spans, 1)
		return
	}
	half := span / 2
	lp, lv, lc := b.childPointer(off, half)
	rp, rv, rc := b.childPointer(off+half, half)
	if lc {
		b.build(off, half)
	}
	if rc {
		b.build(off+half, half)
	}
	b.keys = append(b.keys, nodeKey(b.blob, b.w.Ver, off, span))
	b.values = append(b.values, encodeInner(lp, lv, rp, rv))
	b.offs = append(b.offs, off)
	b.spans = append(b.spans, span)
}

// Commit computes and stores all tree nodes for version w of blob.
// refs[i] describes page w.Off+i; history lists the write intervals of
// every assigned version below w.Ver (ascending). The commit is one
// batched write to the node store and reads nothing.
func Commit(ctx context.Context, store NodeStore, blob uint64, w WriteRecord, history []WriteRecord, refs []PageRef) error {
	if w.N == 0 {
		return errors.New("segtree: zero-length write")
	}
	if uint64(len(refs)) != w.N {
		return fmt.Errorf("segtree: %d refs for %d pages", len(refs), w.N)
	}
	if w.Off+w.N > w.PagesAfter {
		return fmt.Errorf("segtree: write [%d,%d) exceeds PagesAfter %d", w.Off, w.Off+w.N, w.PagesAfter)
	}
	for _, h := range history {
		if h.Ver >= w.Ver {
			return fmt.Errorf("segtree: history version %d >= committing version %d", h.Ver, w.Ver)
		}
	}
	b := &builder{blob: blob, w: w, history: history, refs: refs}
	b.build(0, RootSpan(w.PagesAfter))
	return store.PutNodes(ctx, b.keys, b.values)
}

// NodeRef names one stored node of a version's tree: its store key and
// the page range [Off, Off+Span) it covers.
type NodeRef struct {
	Key  string
	Off  uint64
	Span uint64
}

// VersionNodes returns the refs of every node version w's commit stored
// — the exact key set Commit (or a seal) wrote — computed from the
// write-record history alone, without reading the tree. The garbage
// collector uses it to enumerate a dead version's metadata nodes: a
// node of dead version v is reclaimable iff its range is intersected by
// some later write at or below the next protected (live or pinned)
// version, because then every protected tree resolves that range
// through the later writer's node instead.
func VersionNodes(blob uint64, w WriteRecord, history []WriteRecord) []NodeRef {
	b := &builder{blob: blob, w: w, history: history, refs: make([]PageRef, w.N)}
	b.build(0, RootSpan(w.PagesAfter))
	out := make([]NodeRef, len(b.keys))
	for i := range b.keys {
		out[i] = NodeRef{Key: b.keys[i], Off: b.offs[i], Span: b.spans[i]}
	}
	return out
}

// NodeKey renders the store key of the node covering [off, off+span)
// in version ver's tree — the exported twin of nodeKey, for the
// garbage collector's targeted node deletion.
func NodeKey(blob, ver, off, span uint64) string {
	return nodeKey(blob, ver, off, span)
}

// LeafKey renders the store key of the leaf holding page `page` in the
// tree of version ver — the node whose value carries the page's
// provider locations. The garbage collector reads these to learn which
// providers hold a reclaimable page.
func LeafKey(blob, ver, page uint64) string {
	return nodeKey(blob, ver, page, 1)
}

// DecodeLeaf parses a stored leaf node into its PageRef. It fails on
// inner nodes and corrupt encodings.
func DecodeLeaf(raw []byte) (PageRef, error) {
	n, err := decodeNode(raw)
	if err != nil {
		return PageRef{}, err
	}
	ref, ok := n.(*PageRef)
	if !ok {
		return PageRef{}, errors.New("segtree: not a leaf node")
	}
	return *ref, nil
}

// NodeDeleter is the optional deletion capability of a NodeStore.
// Stores that support it let the garbage collector reclaim the tree
// nodes of collected versions; both MemStore and the DHT-backed store
// implement it.
type NodeDeleter interface {
	// DeleteNodes removes the given keys. Missing keys are not errors.
	DeleteNodes(ctx context.Context, keys []string) error
}

// resolveItem is one frontier entry of the level-ordered descent.
type resolveItem struct {
	ver  uint64
	off  uint64
	span uint64
}

// Resolve walks version ver's tree (for a BLOB that has `pages` pages at
// that version) and returns the descriptors of all pages overlapping
// [off, off+n), in index order. Holes come back with Ref.Hole == true.
// The descent is breadth-first with one batched node fetch per level,
// so a read of p pages costs O(log pages) round trips, not O(p).
func Resolve(ctx context.Context, store NodeStore, blob, ver, pages, off, n uint64) ([]Slot, error) {
	if n == 0 || pages == 0 {
		return nil, nil
	}
	if off+n > pages {
		return nil, fmt.Errorf("segtree: resolve [%d,%d) beyond %d pages", off, off+n, pages)
	}
	frontier := []resolveItem{{ver: ver, off: 0, span: RootSpan(pages)}}
	slots := make([]Slot, 0, n)

	for len(frontier) > 0 {
		keys := make([]string, len(frontier))
		for i, it := range frontier {
			keys[i] = nodeKey(blob, it.ver, it.off, it.span)
		}
		raws, err := store.GetNodes(ctx, keys)
		if err != nil {
			return nil, err
		}
		var next []resolveItem
		for i, it := range frontier {
			if raws[i] == nil {
				return nil, fmt.Errorf("%w: %s", ErrNodeMissing, keys[i])
			}
			node, err := decodeNode(raws[i])
			if err != nil {
				return nil, err
			}
			switch v := node.(type) {
			case *PageRef:
				if it.span != 1 {
					return nil, fmt.Errorf("segtree: leaf with span %d", it.span)
				}
				slots = append(slots, Slot{Index: it.off, Ref: *v})
			case *innerNode:
				half := it.span / 2
				if intersects(off, n, it.off, half) {
					if v.leftPresent {
						next = append(next, resolveItem{ver: v.leftVer, off: it.off, span: half})
					} else {
						slots = appendHoles(slots, it.off, half, off, n)
					}
				}
				if intersects(off, n, it.off+half, half) {
					if v.rightPresent {
						next = append(next, resolveItem{ver: v.rightVer, off: it.off + half, span: half})
					} else {
						slots = appendHoles(slots, it.off+half, half, off, n)
					}
				}
			}
		}
		frontier = next
	}

	// Keep only slots inside the query and order them by index.
	out := slots[:0]
	for _, s := range slots {
		if s.Index >= off && s.Index < off+n {
			out = append(out, s)
		}
	}
	sortSlots(out)
	if uint64(len(out)) != n {
		return nil, fmt.Errorf("segtree: resolved %d of %d pages", len(out), n)
	}
	return out, nil
}

// appendHoles emits hole slots for the pages of [rOff, rOff+rSpan) that
// fall inside the query [qOff, qOff+qN).
func appendHoles(slots []Slot, rOff, rSpan, qOff, qN uint64) []Slot {
	lo, hi := rOff, rOff+rSpan
	if qOff > lo {
		lo = qOff
	}
	if qOff+qN < hi {
		hi = qOff + qN
	}
	for p := lo; p < hi; p++ {
		slots = append(slots, Slot{Index: p, Ref: PageRef{Hole: true}})
	}
	return slots
}

// sortSlots orders by page index (insertion sort: slices are small and
// nearly sorted because the descent is left-to-right per level).
func sortSlots(s []Slot) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Index < s[j-1].Index; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// MemStore is an in-memory NodeStore for tests and single-process use.
type MemStore struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemStore returns an empty MemStore.
func NewMemStore() *MemStore {
	return &MemStore{m: make(map[string][]byte)}
}

// PutNodes implements NodeStore.
func (s *MemStore) PutNodes(_ context.Context, keys []string, values [][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, k := range keys {
		s.m[k] = values[i]
	}
	return nil
}

// GetNodes implements NodeStore.
func (s *MemStore) GetNodes(_ context.Context, keys []string) ([][]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([][]byte, len(keys))
	for i, k := range keys {
		out[i] = s.m[k]
	}
	return out, nil
}

// DeleteNodes implements NodeDeleter.
func (s *MemStore) DeleteNodes(_ context.Context, keys []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range keys {
		delete(s.m, k)
	}
	return nil
}

// Len returns the number of stored nodes.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}
