package kvlog

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openTemp(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, path
}

func TestPutGetDelete(t *testing.T) {
	s, _ := openTemp(t)
	if err := s.Put("page:1", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("page:2", []byte("beta")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("page:1")
	if err != nil || string(v) != "alpha" {
		t.Fatalf("Get page:1 = %q, %v", v, err)
	}
	if !s.Has("page:2") || s.Has("page:3") {
		t.Error("Has wrong")
	}
	if err := s.Delete("page:1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("page:1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after delete: %v", err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	// Deleting a missing key is a no-op.
	if err := s.Delete("nope"); err != nil {
		t.Fatal(err)
	}
}

func TestOverwrite(t *testing.T) {
	s, _ := openTemp(t)
	for i := 0; i < 10; i++ {
		if err := s.Put("k", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, err := s.Get("k")
	if err != nil || string(v) != "v9" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	total, live := s.Size()
	if live >= total {
		t.Errorf("overwrites should create garbage: total=%d live=%d", total, live)
	}
}

func TestEmptyValue(t *testing.T) {
	s, _ := openTemp(t)
	if err := s.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("empty")
	if err != nil || len(v) != 0 {
		t.Fatalf("Get empty = %q, %v", v, err)
	}
}

func TestReopenRecovers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i%30)
		v := fmt.Sprintf("value-%d", i)
		if err := s.Put(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	if err := s.Delete("key-5"); err != nil {
		t.Fatal(err)
	}
	delete(want, "key-5")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != len(want) {
		t.Fatalf("recovered %d keys, want %d", s2.Len(), len(want))
	}
	for k, v := range want {
		got, err := s2.Get(k)
		if err != nil || string(got) != v {
			t.Fatalf("recovered Get(%q) = %q, %v; want %q", k, got, err, v)
		}
	}
}

// TestTruncatedTailRecovery simulates a crash mid-append: for several
// truncation points, the store must reopen cleanly and contain exactly
// a prefix of the committed operations.
func TestTruncatedTailRecovery(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "full.log")
	s, err := Open(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Record the store state after each op so any prefix is checkable.
	type op struct{ k, v string }
	var ops []op
	for i := 0; i < 40; i++ {
		o := op{k: fmt.Sprintf("k%d", i%7), v: fmt.Sprintf("v%d", i)}
		if err := s.Put(o.k, []byte(o.v)); err != nil {
			t.Fatal(err)
		}
		ops = append(ops, o)
	}
	s.Close()
	full, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(full); cut += 13 {
		path := filepath.Join(dir, fmt.Sprintf("cut-%d.log", cut))
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rs, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		// The recovered state must equal replaying some prefix of ops.
		got := map[string]string{}
		for _, k := range rs.Keys() {
			v, err := rs.Get(k)
			if err != nil {
				t.Fatalf("cut=%d: get %q: %v", cut, k, err)
			}
			got[k] = string(v)
		}
		matched := false
		ref := map[string]string{}
		if mapsEqual(got, ref) {
			matched = true
		}
		for _, o := range ops {
			ref[o.k] = o.v
			if mapsEqual(got, ref) {
				matched = true
				break
			}
		}
		if !matched {
			t.Fatalf("cut=%d: recovered state %v is not a prefix state", cut, got)
		}
		// The recovered store must accept new writes.
		if err := rs.Put("after-crash", []byte("ok")); err != nil {
			t.Fatalf("cut=%d: put after recovery: %v", cut, err)
		}
		rs.Close()
	}
}

func mapsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestCorruptMiddleStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Flip a byte early in the file: replay must stop there, keeping
	// only records before the corruption.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() >= 10 {
		t.Errorf("corrupt store recovered %d keys, want < 10", s2.Len())
	}
}

func TestCompact(t *testing.T) {
	s, path := openTemp(t)
	for i := 0; i < 200; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i%10), bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := s.Delete(fmt.Sprintf("k%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := s.Size()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, live := s.Size()
	if after >= before {
		t.Errorf("compact did not shrink: before=%d after=%d", before, after)
	}
	if after < live {
		t.Errorf("log smaller than live data: total=%d live=%d", after, live)
	}
	if s.Len() != 5 {
		t.Errorf("Len after compact = %d, want 5", s.Len())
	}
	for i := 5; i < 10; i++ {
		v, err := s.Get(fmt.Sprintf("k%d", i))
		if err != nil {
			t.Fatal(err)
		}
		want := bytes.Repeat([]byte{byte(190 + i)}, 64)
		if !bytes.Equal(v, want) {
			t.Errorf("k%d after compact = %v, want %v", i, v[0], want[0])
		}
	}
	// Store still writable and reopenable after compact.
	if err := s.Put("post", []byte("compact")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, err := s2.Get("post"); err != nil || string(v) != "compact" {
		t.Fatalf("post-compact reopen Get = %q, %v", v, err)
	}
}

// TestRandomOpsAgainstReference drives the store with a random workload
// and compares against a plain map after every step and after reopen.
func TestRandomOpsAgainstReference(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref := map[string][]byte{}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("key-%d", rng.Intn(50))
		switch rng.Intn(10) {
		case 0:
			if err := s.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(ref, k)
		case 1:
			if err := s.Compact(); err != nil {
				t.Fatal(err)
			}
		default:
			v := make([]byte, rng.Intn(100))
			rng.Read(v)
			if err := s.Put(k, v); err != nil {
				t.Fatal(err)
			}
			ref[k] = v
		}
	}
	check := func(s *Store) {
		t.Helper()
		if s.Len() != len(ref) {
			t.Fatalf("Len = %d, want %d", s.Len(), len(ref))
		}
		for k, v := range ref {
			got, err := s.Get(k)
			if err != nil || !bytes.Equal(got, v) {
				t.Fatalf("Get(%q) = %v, %v", k, got, err)
			}
		}
	}
	check(s)
	s.Close()
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	check(s2)
}

func TestConcurrentAccess(t *testing.T) {
	s, _ := openTemp(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := fmt.Sprintf("g%d-k%d", g, i)
				if err := s.Put(k, []byte(k)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				v, err := s.Get(k)
				if err != nil || string(v) != k {
					t.Errorf("get %q = %q, %v", k, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Errorf("Len = %d, want 800", s.Len())
	}
}

func TestSyncEvery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := Open(path, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s, _ := openTemp(t)
	s.Close()
	if err := s.Put("k", nil); err == nil {
		t.Error("Put on closed store succeeded")
	}
	if _, err := s.Get("k"); err == nil {
		t.Error("Get on closed store succeeded")
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func BenchmarkPut1K(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.log")
	s, err := Open(path, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	v := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i%1000), v); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSnapshotScanConsistentPrefix(t *testing.T) {
	s, _ := openTemp(t)
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete("k03"); err != nil {
		t.Fatal(err)
	}

	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()

	// Everything after the pin must be invisible: overwrites, new keys,
	// deletes, even a full compaction that rewrites the log file.
	if err := s.Put("k00", []byte("overwritten")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("new", []byte("late")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("k05"); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}

	got := map[string]string{}
	if err := sn.Scan(func(k string, v []byte) error {
		got[k] = string(v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 9 {
		t.Fatalf("snapshot keys = %d, want 9 (%v)", len(got), got)
	}
	if got["k00"] != "v0" {
		t.Errorf("k00 = %q, want pre-overwrite value", got["k00"])
	}
	if _, ok := got["k03"]; ok {
		t.Error("k03 visible despite pre-pin delete")
	}
	if got["k05"] != "v5" {
		t.Errorf("k05 = %q, want pre-delete value", got["k05"])
	}
	if _, ok := got["new"]; ok {
		t.Error("post-pin key leaked into the snapshot")
	}
	if n, err := sn.Len(); err != nil || n != 9 {
		t.Errorf("snapshot Len = %d, %v", n, err)
	}
}

func TestScanConcurrentWithAppends(t *testing.T) {
	s, _ := openTemp(t)
	for i := 0; i < 50; i++ {
		if err := s.Put(fmt.Sprintf("k%03d", i), []byte("base")); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = s.Put(fmt.Sprintf("k%03d", i%50), []byte("mutated"))
			_ = s.Put(fmt.Sprintf("extra%04d", i), []byte("tail"))
		}
	}()
	// Each scan must see one consistent prefix: every base key exactly
	// once, values either all-base or individually overwritten BEFORE
	// the pin — never a torn record and never a key appearing twice.
	for round := 0; round < 20; round++ {
		seen := map[string]int{}
		if err := s.Scan(func(k string, v []byte) error {
			seen[k]++
			if string(v) != "base" && string(v) != "mutated" && string(v) != "tail" {
				return fmt.Errorf("torn value %q for %q", v, k)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			k := fmt.Sprintf("k%03d", i)
			if seen[k] != 1 {
				t.Fatalf("round %d: key %s seen %d times", round, k, seen[k])
			}
		}
	}
	close(stop)
	wg.Wait()
}
