// Package kvlog is a small log-structured, CRC-checked, crash-recovering
// key/value store. It plays the role BerkeleyDB plays in the original
// BlobSeer deployment (§3.1.1 of the paper): the durable layer behind a
// data provider's page store and a metadata provider's node store.
//
// Layout: a single append-only file of records
//
//	[magic 1B][crc32 4B][payloadLen 4B][payload]
//	payload = [op 1B][keyLen uvarint][key][value]
//
// where crc32 covers the payload. Recovery scans the log and truncates
// at the first torn or corrupt record, so a crash mid-append loses at
// most the in-flight record — the property the truncation-injection
// tests exercise. Compact rewrites live records to reclaim space from
// overwritten and deleted keys.
//
// Scans are pinned snapshots: the append-only log's end offset is its
// version, so Snapshot/Scan replay exactly the records below the
// offset pinned at open — one consistent prefix of the store's
// history, however many appends, deletes, or compactions land while
// the scan runs (open-at-version, like the BLOB layer's versioned
// reads).
package kvlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"blobseer/internal/wire"
)

const (
	recMagic  = 0xB5
	opPut     = 1
	opDelete  = 2
	headerLen = 9 // magic + crc32 + payloadLen
)

// ErrNotFound is returned by Get for missing keys.
var ErrNotFound = errors.New("kvlog: key not found")

// Options configure a store.
type Options struct {
	// SyncEvery forces an fsync after every SyncEvery puts; zero
	// disables explicit syncing (the OS page cache decides).
	SyncEvery int
}

// Store is a log-structured KV store. Safe for concurrent use.
type Store struct {
	mu    sync.RWMutex
	f     *os.File
	path  string
	opts  Options
	index map[string]valueLoc
	// end is the append offset; live/total track garbage for Compact.
	end       int64
	liveBytes int64
	puts      int
	closed    bool
}

// valueLoc locates a live value inside the log file.
type valueLoc struct {
	off  int64 // offset of the value bytes
	size int64
}

// Open opens or creates the store at path and replays the log.
func Open(path string, opts Options) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvlog open: %w", err)
	}
	s := &Store{f: f, path: path, opts: opts, index: make(map[string]valueLoc)}
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// recover replays the log, rebuilding the index and truncating any
// torn tail left by a crash.
func (s *Store) recover() error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("kvlog recover: %w", err)
	}
	size := info.Size()
	var off int64
	hdr := make([]byte, headerLen)
	for off+headerLen <= size {
		if _, err := s.f.ReadAt(hdr, off); err != nil {
			break
		}
		if hdr[0] != recMagic {
			break
		}
		crc := binary.LittleEndian.Uint32(hdr[1:5])
		plen := int64(binary.LittleEndian.Uint32(hdr[5:9]))
		if off+headerLen+plen > size {
			break // torn record
		}
		payload := make([]byte, plen)
		if _, err := s.f.ReadAt(payload, off+headerLen); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != crc {
			break // corrupt record
		}
		if err := s.applyPayload(payload, off+headerLen); err != nil {
			break
		}
		off += headerLen + plen
	}
	if off < size {
		if err := s.f.Truncate(off); err != nil {
			return fmt.Errorf("kvlog recover truncate: %w", err)
		}
	}
	s.end = off
	return nil
}

// applyPayload replays one record into the index. payloadOff is the
// file offset of the payload's first byte.
func (s *Store) applyPayload(payload []byte, payloadOff int64) error {
	r := wire.NewReader(payload)
	op := r.Uvarint()
	key := r.String()
	if r.Err() != nil {
		return r.Err()
	}
	switch op {
	case opPut:
		valOff := payloadOff + int64(len(payload)-r.Len())
		if old, ok := s.index[key]; ok {
			s.liveBytes -= old.size
		}
		s.index[key] = valueLoc{off: valOff, size: int64(r.Len())}
		s.liveBytes += int64(r.Len())
	case opDelete:
		if old, ok := s.index[key]; ok {
			s.liveBytes -= old.size
			delete(s.index, key)
		}
	default:
		return fmt.Errorf("kvlog: unknown op %d", op)
	}
	return nil
}

// appendRecord writes one framed record at the end of the log.
func (s *Store) appendRecord(payload []byte) (payloadOff int64, err error) {
	rec := make([]byte, headerLen+len(payload))
	rec[0] = recMagic
	binary.LittleEndian.PutUint32(rec[1:5], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(rec[5:9], uint32(len(payload)))
	copy(rec[headerLen:], payload)
	if _, err := s.f.WriteAt(rec, s.end); err != nil {
		return 0, fmt.Errorf("kvlog append: %w", err)
	}
	payloadOff = s.end + headerLen
	s.end += int64(len(rec))
	s.puts++
	if s.opts.SyncEvery > 0 && s.puts%s.opts.SyncEvery == 0 {
		if err := s.f.Sync(); err != nil {
			return 0, fmt.Errorf("kvlog sync: %w", err)
		}
	}
	return payloadOff, nil
}

// Put stores value under key.
func (s *Store) Put(key string, value []byte) error {
	payload := wire.AppendUvarint(nil, opPut)
	payload = wire.AppendString(payload, key)
	payload = append(payload, value...)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("kvlog: store closed")
	}
	payloadOff, err := s.appendRecord(payload)
	if err != nil {
		return err
	}
	valOff := payloadOff + int64(len(payload)) - int64(len(value))
	if old, ok := s.index[key]; ok {
		s.liveBytes -= old.size
	}
	s.index[key] = valueLoc{off: valOff, size: int64(len(value))}
	s.liveBytes += int64(len(value))
	return nil
}

// Get returns the value stored under key.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.RLock()
	loc, ok := s.index[key]
	f := s.f
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return nil, errors.New("kvlog: store closed")
	}
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	buf := make([]byte, loc.size)
	if _, err := f.ReadAt(buf, loc.off); err != nil {
		return nil, fmt.Errorf("kvlog get %q: %w", key, err)
	}
	return buf, nil
}

// Has reports whether key is present.
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[key]
	return ok
}

// Delete removes key. Deleting a missing key is a no-op.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("kvlog: store closed")
	}
	if _, ok := s.index[key]; !ok {
		return nil
	}
	payload := wire.AppendUvarint(nil, opDelete)
	payload = wire.AppendString(payload, key)
	if _, err := s.appendRecord(payload); err != nil {
		return err
	}
	s.liveBytes -= s.index[key].size
	delete(s.index, key)
	return nil
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Keys returns a snapshot of all live keys, in unspecified order.
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.index))
	for k := range s.index {
		out = append(out, k)
	}
	return out
}

//
// Pinned-snapshot scans. The log is append-only and records are
// immutable, so the store's "version" IS its end offset: pinning the
// offset at open time and replaying only records below it yields one
// consistent prefix of the store's history, no matter how many appends
// land while the scan runs — the same open-at-version discipline the
// BLOB layer applies to versioned reads. The old Keys-then-Get walk
// chased a moving tail instead: values overwritten between the key
// listing and each Get leaked mid-scan states that never coexisted.
//

// Snapshot is a pinned read-only view of the log at one end offset.
// It holds its own file descriptor on the log path, so a concurrent
// Compact (which atomically renames a rewritten log over the path)
// never disturbs it: the descriptor keeps reading the original inode.
// Close it when done.
type Snapshot struct {
	f   *os.File
	end int64
}

// Snapshot pins the store's current state — its end offset — and opens
// an independent view of it. Appends, deletes, and compactions after
// this point are invisible to the snapshot.
func (s *Store) Snapshot() (*Snapshot, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, errors.New("kvlog: store closed")
	}
	// Open before reading s.end is not needed: we hold the read lock,
	// so no append or compact can move the log under us in between.
	f, err := os.Open(s.path)
	if err != nil {
		return nil, fmt.Errorf("kvlog snapshot: %w", err)
	}
	return &Snapshot{f: f, end: s.end}, nil
}

// Scan replays the snapshot's prefix and calls fn once per key live at
// the pinned offset, with the value bytes as of that offset (last
// record below the pin wins, deletes suppress). fn's value slice is
// owned by the caller. Iteration order is unspecified. A non-nil error
// from fn aborts the scan and is returned.
func (sn *Snapshot) Scan(fn func(key string, value []byte) error) error {
	type loc struct {
		off  int64
		size int64
	}
	index := make(map[string]loc)
	var off int64
	hdr := make([]byte, headerLen)
	for off+headerLen <= sn.end {
		if _, err := sn.f.ReadAt(hdr, off); err != nil {
			return fmt.Errorf("kvlog scan: %w", err)
		}
		if hdr[0] != recMagic {
			return fmt.Errorf("kvlog scan: bad magic at %d", off)
		}
		crc := binary.LittleEndian.Uint32(hdr[1:5])
		plen := int64(binary.LittleEndian.Uint32(hdr[5:9]))
		if off+headerLen+plen > sn.end {
			break // record straddles the pin; it published after us
		}
		payload := make([]byte, plen)
		if _, err := sn.f.ReadAt(payload, off+headerLen); err != nil {
			return fmt.Errorf("kvlog scan: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return fmt.Errorf("kvlog scan: corrupt record at %d", off)
		}
		r := wire.NewReader(payload)
		op := r.Uvarint()
		key := r.String()
		if r.Err() != nil {
			return fmt.Errorf("kvlog scan: %w", r.Err())
		}
		switch op {
		case opPut:
			valOff := off + headerLen + int64(len(payload)-r.Len())
			index[key] = loc{off: valOff, size: int64(r.Len())}
		case opDelete:
			delete(index, key)
		default:
			return fmt.Errorf("kvlog scan: unknown op %d", op)
		}
		off += headerLen + plen
	}
	for key, l := range index {
		value := make([]byte, l.size)
		if _, err := sn.f.ReadAt(value, l.off); err != nil {
			return fmt.Errorf("kvlog scan %q: %w", key, err)
		}
		if err := fn(key, value); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of keys live at the pinned offset.
func (sn *Snapshot) Len() (int, error) {
	n := 0
	err := sn.Scan(func(string, []byte) error { n++; return nil })
	return n, err
}

// Close releases the snapshot's file descriptor.
func (sn *Snapshot) Close() error { return sn.f.Close() }

// Scan runs fn over one pinned snapshot of the store (see Snapshot):
// the consistent-prefix replacement for iterating Keys and calling Get
// per key while writers append.
func (s *Store) Scan(fn func(key string, value []byte) error) error {
	sn, err := s.Snapshot()
	if err != nil {
		return err
	}
	defer sn.Close()
	return sn.Scan(fn)
}

// Size returns (logBytes, liveValueBytes); the gap is reclaimable.
func (s *Store) Size() (total, live int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.end, s.liveBytes
}

// Open reports whether the store is still accepting operations
// (Close has not been called). Health checks use it to verify a
// durable journal has not been torn down under a live service.
func (s *Store) Open() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return !s.closed
}

// Sync flushes the log to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	return s.f.Sync()
}

// Compact rewrites the log keeping only live records, then atomically
// replaces the old file. Concurrent reads and writes are excluded for
// the duration (provider compaction runs off the hot path).
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("kvlog: store closed")
	}

	tmpPath := s.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("kvlog compact: %w", err)
	}
	defer os.Remove(tmpPath) // no-op after successful rename

	newIndex := make(map[string]valueLoc, len(s.index))
	var newEnd, newLive int64
	for key, loc := range s.index {
		value := make([]byte, loc.size)
		if _, err := s.f.ReadAt(value, loc.off); err != nil {
			tmp.Close()
			return fmt.Errorf("kvlog compact read %q: %w", key, err)
		}
		payload := wire.AppendUvarint(nil, opPut)
		payload = wire.AppendString(payload, key)
		payload = append(payload, value...)
		rec := make([]byte, headerLen+len(payload))
		rec[0] = recMagic
		binary.LittleEndian.PutUint32(rec[1:5], crc32.ChecksumIEEE(payload))
		binary.LittleEndian.PutUint32(rec[5:9], uint32(len(payload)))
		copy(rec[headerLen:], payload)
		if _, err := tmp.WriteAt(rec, newEnd); err != nil {
			tmp.Close()
			return fmt.Errorf("kvlog compact write: %w", err)
		}
		valOff := newEnd + int64(len(rec)) - int64(len(value))
		newIndex[key] = valueLoc{off: valOff, size: int64(len(value))}
		newEnd += int64(len(rec))
		newLive += int64(len(value))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("kvlog compact sync: %w", err)
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		tmp.Close()
		return fmt.Errorf("kvlog compact rename: %w", err)
	}
	s.f.Close()
	s.f = tmp
	s.index = newIndex
	s.end = newEnd
	s.liveBytes = newLive
	return nil
}

// Close flushes and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
