package pagestore

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

// engines returns a fresh instance of every Store implementation.
func engines(t *testing.T) map[string]Store {
	t.Helper()
	durable, err := OpenDurable(filepath.Join(t.TempDir(), "pages.log"))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{
		"memory":     NewMemory(),
		"durable":    durable,
		"synthesize": NewSynthesize(),
	}
}

func TestPutGetAcrossEngines(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			k := Key{Blob: 3, Version: 7, Index: 42}
			data := []byte("page content here")
			if err := s.Put(k, data); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(data) {
				t.Fatalf("len = %d, want %d", len(got), len(data))
			}
			if name != "synthesize" && !bytes.Equal(got, data) {
				t.Fatalf("content mismatch: %q", got)
			}
			if !s.Has(k) {
				t.Error("Has = false")
			}
			if s.Len() != 1 {
				t.Errorf("Len = %d", s.Len())
			}
			if s.BytesUsed() != int64(len(data)) {
				t.Errorf("BytesUsed = %d", s.BytesUsed())
			}
		})
	}
}

func TestMissingPage(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			if _, err := s.Get(Key{Blob: 1}); !errors.Is(err, ErrNotFound) {
				t.Errorf("Get missing: %v", err)
			}
			if s.Has(Key{Blob: 1}) {
				t.Error("Has missing = true")
			}
		})
	}
}

func TestDeleteAcrossEngines(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			k := Key{Blob: 1, Version: 1, Index: 0}
			if err := s.Put(k, []byte("abc")); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete(k); err != nil {
				t.Fatal(err)
			}
			if s.Has(k) || s.Len() != 0 || s.BytesUsed() != 0 {
				t.Errorf("state after delete: has=%v len=%d bytes=%d",
					s.Has(k), s.Len(), s.BytesUsed())
			}
			// Deleting again is fine.
			if err := s.Delete(k); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestOverwriteAccounting(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			k := Key{Blob: 9, Version: 2, Index: 5}
			if err := s.Put(k, make([]byte, 100)); err != nil {
				t.Fatal(err)
			}
			if err := s.Put(k, make([]byte, 40)); err != nil {
				t.Fatal(err)
			}
			if s.Len() != 1 {
				t.Errorf("Len = %d", s.Len())
			}
			if got := s.BytesUsed(); got != 40 {
				t.Errorf("BytesUsed = %d, want 40", got)
			}
		})
	}
}

func TestMemoryPutCopies(t *testing.T) {
	s := NewMemory()
	data := []byte("mutable")
	k := Key{Blob: 1}
	if err := s.Put(k, data); err != nil {
		t.Fatal(err)
	}
	data[0] = 'X'
	got, err := s.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 'm' {
		t.Error("Put did not copy the page")
	}
	// And Get must return an independent copy too.
	got[1] = 'Y'
	again, _ := s.Get(k)
	if again[1] != 'u' {
		t.Error("Get did not copy the page")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	s := NewSynthesize()
	k := Key{Blob: 5, Version: 9, Index: 13}
	if err := s.Put(k, make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	a, err := s.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("synthesized content not deterministic")
	}
	// Different keys produce different content (overwhelmingly likely).
	if err := s.Put(Key{Blob: 5, Version: 9, Index: 14}, make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	c, _ := s.Get(Key{Blob: 5, Version: 9, Index: 14})
	if bytes.Equal(a, c) {
		t.Error("distinct keys synthesized identical content")
	}
}

func TestDurablePersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.log")
	s, err := OpenDurable(path)
	if err != nil {
		t.Fatal(err)
	}
	k := Key{Blob: 2, Version: 3, Index: 4}
	if err := s.Put(k, []byte("durable bytes")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := OpenDurable(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Get(k)
	if err != nil || string(got) != "durable bytes" {
		t.Fatalf("reopen Get = %q, %v", got, err)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						k := Key{Blob: uint64(g), Version: 1, Index: uint64(i)}
						if err := s.Put(k, []byte(fmt.Sprintf("%d-%d", g, i))); err != nil {
							t.Errorf("put: %v", err)
							return
						}
						if _, err := s.Get(k); err != nil {
							t.Errorf("get: %v", err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			if s.Len() != 400 {
				t.Errorf("Len = %d, want 400", s.Len())
			}
		})
	}
}

func TestKeyStringUnique(t *testing.T) {
	f := func(b1, v1, i1, b2, v2, i2 uint64) bool {
		k1 := Key{Blob: b1, Version: v1, Index: i1}
		k2 := Key{Blob: b2, Version: v2, Index: i2}
		if k1 == k2 {
			return k1.String() == k2.String()
		}
		return k1.String() != k2.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestFillSeedSensitivity(t *testing.T) {
	a := make([]byte, 256)
	b := make([]byte, 256)
	Fill(a, 1)
	Fill(b, 2)
	if bytes.Equal(a, b) {
		t.Error("Fill ignores seed")
	}
	c := make([]byte, 256)
	Fill(c, 1)
	if !bytes.Equal(a, c) {
		t.Error("Fill not deterministic")
	}
}

func BenchmarkMemoryPut64K(b *testing.B) {
	s := NewMemory()
	page := make([]byte, 64<<10)
	b.SetBytes(64 << 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := Key{Blob: 1, Version: uint64(i), Index: 0}
		if err := s.Put(k, page); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSynthesizeGet64K(b *testing.B) {
	s := NewSynthesize()
	k := Key{Blob: 1, Version: 1, Index: 1}
	if err := s.Put(k, make([]byte, 64<<10)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(64 << 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(k); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDurableAutoCompact: deleting pages accrues dead bytes in the
// kvlog; once they cross the configured threshold, MaybeCompact
// rewrites the log and the file shrinks. Below the threshold it must
// leave the log alone.
func TestDurableAutoCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.log")
	d, err := OpenDurable(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.SetCompactThreshold(4096)

	page := make([]byte, 1024)
	for i := range page {
		page[i] = byte(i)
	}
	for i := uint64(0); i < 8; i++ {
		if err := d.Put(Key{Blob: 1, Version: 1, Index: i}, page); err != nil {
			t.Fatal(err)
		}
	}

	// One deletion: dead bytes below the threshold, no compaction.
	if err := d.Delete(Key{Blob: 1, Version: 1, Index: 0}); err != nil {
		t.Fatal(err)
	}
	if did, err := d.MaybeCompact(); err != nil || did {
		t.Fatalf("MaybeCompact below threshold: did=%v err=%v", did, err)
	}

	// Delete most pages: dead bytes cross the threshold.
	for i := uint64(1); i < 6; i++ {
		if err := d.Delete(Key{Blob: 1, Version: 1, Index: i}); err != nil {
			t.Fatal(err)
		}
	}
	totalBefore, _ := d.log.Size()
	did, err := d.MaybeCompact()
	if err != nil {
		t.Fatal(err)
	}
	if !did {
		t.Fatal("MaybeCompact above threshold did not compact")
	}
	totalAfter, live := d.log.Size()
	if totalAfter >= totalBefore {
		t.Errorf("log did not shrink: %d -> %d", totalBefore, totalAfter)
	}
	if live != 2*1024 {
		t.Errorf("live bytes after compact = %d, want %d", live, 2*1024)
	}
	// Surviving pages still read back.
	for i := uint64(6); i < 8; i++ {
		got, err := d.Get(Key{Blob: 1, Version: 1, Index: i})
		if err != nil || len(got) != len(page) {
			t.Fatalf("page %d after compact: err=%v len=%d", i, err, len(got))
		}
	}

	// A negative threshold disarms auto-compaction entirely.
	d.SetCompactThreshold(-1)
	if err := d.Delete(Key{Blob: 1, Version: 1, Index: 6}); err != nil {
		t.Fatal(err)
	}
	if did, err := d.MaybeCompact(); err != nil || did {
		t.Fatalf("disarmed MaybeCompact: did=%v err=%v", did, err)
	}
}
