// Package pagestore implements the storage engine behind a BlobSeer
// data provider: an immutable page store keyed by (blob, version, page
// index). Pages are written once (BlobSeer never overwrites data —
// every write/append creates pages for a fresh version) and read many
// times.
//
// Three engines share one interface:
//
//   - Memory: a plain map, for unit tests and small clusters;
//   - Durable: backed by a kvlog file, the BerkeleyDB-substitute
//     persistence layer of the paper (§3.1.1);
//   - Synthesize: stores only page *sizes* and regenerates deterministic
//     bytes on read. Experiments with hundreds of simulated clients use
//     it to keep the 270-node cluster's memory footprint flat while the
//     shaped network still moves real byte counts.
package pagestore

import (
	"errors"
	"fmt"
	"sync"

	"blobseer/internal/kvlog"
)

// Key identifies one immutable page. Version is the BLOB version whose
// write created the page, so keys are globally unique.
type Key struct {
	Blob    uint64
	Version uint64
	Index   uint64
}

// String renders the key for logs and kvlog encoding.
func (k Key) String() string {
	return fmt.Sprintf("p/%d/%d/%d", k.Blob, k.Version, k.Index)
}

// hash64 mixes the key into a 64-bit seed for synthesized content.
func (k Key) hash64() uint64 {
	h := uint64(1469598103934665603)
	for _, v := range [3]uint64{k.Blob, k.Version, k.Index} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

// ErrNotFound is returned for missing pages.
var ErrNotFound = errors.New("pagestore: page not found")

// Store is the engine interface. Implementations are safe for
// concurrent use.
type Store interface {
	// Put stores an immutable page. Re-putting the same key is allowed
	// (idempotent replication retries) and replaces the content.
	Put(k Key, data []byte) error
	// Get returns the page content. The caller owns the returned slice.
	Get(k Key) ([]byte, error)
	// Has reports whether the page exists.
	Has(k Key) bool
	// Delete removes a page (garbage collection of failed writes).
	Delete(k Key) error
	// Len returns the number of stored pages.
	Len() int
	// BytesUsed returns the total payload bytes held.
	BytesUsed() int64
	// Close releases resources.
	Close() error
}

//
// Memory engine.
//

// Memory is a map-backed Store.
type Memory struct {
	mu    sync.RWMutex
	pages map[Key][]byte
	bytes int64
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{pages: make(map[Key][]byte)}
}

// Put implements Store. The data slice is copied.
func (m *Memory) Put(k Key, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu.Lock()
	defer m.mu.Unlock()
	if old, ok := m.pages[k]; ok {
		m.bytes -= int64(len(old))
	}
	m.pages[k] = cp
	m.bytes += int64(len(cp))
	return nil
}

// Get implements Store.
func (m *Memory) Get(k Key) ([]byte, error) {
	m.mu.RLock()
	p, ok := m.pages[k]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, k)
	}
	cp := make([]byte, len(p))
	copy(cp, p)
	return cp, nil
}

// Has implements Store.
func (m *Memory) Has(k Key) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.pages[k]
	return ok
}

// Delete implements Store.
func (m *Memory) Delete(k Key) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if old, ok := m.pages[k]; ok {
		m.bytes -= int64(len(old))
		delete(m.pages, k)
	}
	return nil
}

// Len implements Store.
func (m *Memory) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.pages)
}

// BytesUsed implements Store.
func (m *Memory) BytesUsed() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.bytes
}

// Close implements Store.
func (m *Memory) Close() error { return nil }

//
// Durable engine.
//

// DefaultCompactThreshold is the dead-byte watermark beyond which
// MaybeCompact rewrites a durable store's log.
const DefaultCompactThreshold = 4 << 20

// Durable persists pages in a kvlog file.
type Durable struct {
	log *kvlog.Store

	mu               sync.Mutex // serializes MaybeCompact decisions
	compactThreshold int64
}

// OpenDurable opens (or creates) a durable page store at path, with
// auto-compaction armed at DefaultCompactThreshold dead bytes.
func OpenDurable(path string) (*Durable, error) {
	log, err := kvlog.Open(path, kvlog.Options{})
	if err != nil {
		return nil, fmt.Errorf("pagestore: %w", err)
	}
	return &Durable{log: log, compactThreshold: DefaultCompactThreshold}, nil
}

// SetCompactThreshold arms (or, with a negative value, disarms) the
// dead-byte watermark MaybeCompact compares against. Zero restores
// DefaultCompactThreshold.
func (d *Durable) SetCompactThreshold(bytes int64) {
	if bytes == 0 {
		bytes = DefaultCompactThreshold
	}
	d.mu.Lock()
	d.compactThreshold = bytes
	d.mu.Unlock()
}

// Put implements Store.
func (d *Durable) Put(k Key, data []byte) error {
	return d.log.Put(k.String(), data)
}

// Get implements Store.
func (d *Durable) Get(k Key) ([]byte, error) {
	p, err := d.log.Get(k.String())
	if errors.Is(err, kvlog.ErrNotFound) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, k)
	}
	return p, err
}

// Has implements Store.
func (d *Durable) Has(k Key) bool { return d.log.Has(k.String()) }

// Delete implements Store.
func (d *Durable) Delete(k Key) error { return d.log.Delete(k.String()) }

// Len implements Store.
func (d *Durable) Len() int { return d.log.Len() }

// BytesUsed implements Store.
func (d *Durable) BytesUsed() int64 {
	_, live := d.log.Size()
	return live
}

// Compact reclaims space from deleted pages.
func (d *Durable) Compact() error { return d.log.Compact() }

// MaybeCompact compacts the log when its dead bytes (log size minus
// live payload) have crossed the configured threshold, and reports
// whether it did. The provider's delete-batch handler calls it after
// every garbage-collection batch, so reclaimed pages translate into
// reclaimed disk instead of accumulating as log garbage forever.
func (d *Durable) MaybeCompact() (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.compactThreshold < 0 {
		return false, nil
	}
	total, live := d.log.Size()
	if total-live < d.compactThreshold {
		return false, nil
	}
	//lint:lockhold compaction rewrites the log file and must exclude concurrent writers; d.mu is the write serializer
	if err := d.log.Compact(); err != nil {
		return false, err
	}
	return true, nil
}

// AutoCompacter is implemented by engines whose deletions leave dead
// bytes behind that a compaction pass can reclaim.
type AutoCompacter interface {
	MaybeCompact() (bool, error)
}

// Close implements Store.
func (d *Durable) Close() error { return d.log.Close() }

//
// Synthesize engine.
//

// Synthesize retains sizes only; Get regenerates deterministic content
// from the page key, so a read always returns the same bytes for the
// same key but nothing is actually held in memory.
type Synthesize struct {
	mu    sync.RWMutex
	sizes map[Key]int
	bytes int64
}

// NewSynthesize returns an empty synthesizing store.
func NewSynthesize() *Synthesize {
	return &Synthesize{sizes: make(map[Key]int)}
}

// Put implements Store; only len(data) is retained.
func (s *Synthesize) Put(k Key, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.sizes[k]; ok {
		s.bytes -= int64(old)
	}
	s.sizes[k] = len(data)
	s.bytes += int64(len(data))
	return nil
}

// Get implements Store, synthesizing the content.
func (s *Synthesize) Get(k Key) ([]byte, error) {
	s.mu.RLock()
	n, ok := s.sizes[k]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, k)
	}
	buf := make([]byte, n)
	Fill(buf, k.hash64())
	return buf, nil
}

// Has implements Store.
func (s *Synthesize) Has(k Key) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.sizes[k]
	return ok
}

// Delete implements Store.
func (s *Synthesize) Delete(k Key) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.sizes[k]; ok {
		s.bytes -= int64(old)
		delete(s.sizes, k)
	}
	return nil
}

// Len implements Store.
func (s *Synthesize) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sizes)
}

// BytesUsed implements Store (logical bytes, not resident bytes).
func (s *Synthesize) BytesUsed() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Close implements Store.
func (s *Synthesize) Close() error { return nil }

// Fill writes a deterministic xorshift64* byte pattern seeded by seed.
// Exported so tests and workload generators can produce page content
// that matches what a Synthesize store returns.
func Fill(buf []byte, seed uint64) {
	x := seed | 1
	for i := 0; i < len(buf); i += 8 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		v := x * 0x2545F4914F6CDD1D
		for j := 0; j < 8 && i+j < len(buf); j++ {
			buf[i+j] = byte(v >> (8 * j))
		}
	}
}

var (
	_ Store = (*Memory)(nil)
	_ Store = (*Durable)(nil)
	_ Store = (*Synthesize)(nil)
)
