package obshttp

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"blobseer/internal/flight"
	"blobseer/internal/metrics"
	"blobseer/internal/monitor"
)

// TestEndpointsRaceArmedCollector hammers /cluster, /metrics.json, and
// /alerts while an armed SetInterval collector (with an armed watchdog
// evaluating on every pass) runs underneath — the production shape.
// The assertion is the race detector: `go test -race` must stay clean
// while every response still parses.
func TestEndpointsRaceArmedCollector(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Op("blob.append").RecordDuration(2 * time.Millisecond)

	mon := monitor.New(monitor.Config{Interval: 10 * time.Millisecond})
	var counter float64
	var counterMu sync.Mutex
	mon.Register(monitor.KindProvider, "p0", func() monitor.Sample {
		counterMu.Lock()
		counter += 4096
		v := counter
		counterMu.Unlock()
		return monitor.Sample{monitor.KeyReadBytes: v}
	})
	mon.Register(monitor.KindVMShard, "vm0", func() monitor.Sample {
		return monitor.Sample{monitor.KeyJournalPending: 3}
	})

	w := flight.NewWatchdog(mon, nil, []flight.Rule{flight.RuleJournalLag(100)}, flight.WatchdogOptions{SnapshotEvery: -1})
	w.Arm()
	defer w.Close()

	mon.SetInterval(10 * time.Millisecond)
	defer mon.Close()

	ms, err := Serve("127.0.0.1:0", Options{Registry: reg, Monitor: mon, Alerts: w.Alerts})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	paths := []string{"/cluster", "/metrics.json", "/alerts"}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		for _, path := range paths {
			wg.Add(1)
			go func(path string) {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					resp, err := http.Get("http://" + ms.Addr() + path)
					if err != nil {
						errs <- fmt.Errorf("GET %s: %w", path, err)
						return
					}
					body, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						errs <- fmt.Errorf("GET %s: read: %w", path, err)
						return
					}
					if resp.StatusCode != 200 {
						errs <- fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
						return
					}
					var v any
					if err := json.Unmarshal(body, &v); err != nil {
						errs <- fmt.Errorf("GET %s: parse: %w", path, err)
						return
					}
				}
			}(path)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if mon.Collections() == 0 {
		t.Fatal("armed collector never collected during the hammer")
	}
	if w.Evals() == 0 {
		t.Fatal("armed watchdog never evaluated during the hammer")
	}
}
