package obshttp

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync/atomic"
	"testing"

	"blobseer/internal/monitor"
)

func serveGet(t *testing.T, ms *MetricsServer, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + ms.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestClusterEndpoint pins /cluster: each request runs one collection
// pass and serves the derived snapshot; ?top bounds the heat sets; a
// server without a monitor answers 404.
func TestClusterEndpoint(t *testing.T) {
	mon := monitor.New(monitor.Config{NICBandwidth: 1000})
	var reads atomic.Uint64
	mon.Register(monitor.KindProvider, "prov-a", func() monitor.Sample {
		return monitor.Sample{monitor.KeyReadBytes: float64(reads.Load())}
	})
	for p := uint64(0); p < 30; p++ {
		for i := uint64(0); i <= p%3; i++ {
			mon.ReadHeat().TouchPage(1, p)
		}
	}

	ms, err := Serve("127.0.0.1:0", Options{Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	before := mon.Collections()
	code, body := serveGet(t, ms, "/cluster")
	if code != 200 {
		t.Fatalf("/cluster = %d %q", code, body)
	}
	if mon.Collections() != before+1 {
		t.Error("/cluster request did not trigger a collection pass")
	}
	var snap monitor.ClusterSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/cluster does not decode: %v", err)
	}
	if len(snap.Components) != 1 || snap.Components[0].Name != "prov-a" {
		t.Errorf("components = %+v", snap.Components)
	}
	if len(snap.HotReads) != 20 {
		t.Errorf("default heat topK = %d, want 20", len(snap.HotReads))
	}

	_, body = serveGet(t, ms, "/cluster?top=3")
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.HotReads) != 3 {
		t.Errorf("?top=3 heat = %d entries", len(snap.HotReads))
	}

	if code, _ := serveGet(t, ms, "/cluster?top=bogus"); code != http.StatusBadRequest {
		t.Errorf("?top=bogus = %d, want 400", code)
	}
	if code, _ := serveGet(t, ms, "/cluster?top=-1"); code != http.StatusBadRequest {
		t.Errorf("?top=-1 = %d, want 400", code)
	}

	bare, err := Serve("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if code, _ := serveGet(t, bare, "/cluster"); code != http.StatusNotFound {
		t.Errorf("/cluster without monitor = %d, want 404", code)
	}
}

// TestHealthzComponentReport pins the real /healthz: 200 with a JSON
// report while healthy, 503 with the failing component named once
// degraded, and the legacy "ok" when no health function is wired.
func TestHealthzComponentReport(t *testing.T) {
	healthy := atomic.Bool{}
	healthy.Store(true)
	ms, err := Serve("127.0.0.1:0", Options{
		Health: func(ctx context.Context) monitor.HealthReport {
			rep := monitor.HealthReport{Healthy: true}
			rep.Add("namespace", true, "")
			if !healthy.Load() {
				rep.Add("vmshard-0", false, "stats ping timed out")
			}
			return rep
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	code, body := serveGet(t, ms, "/healthz")
	if code != 200 {
		t.Fatalf("healthy /healthz = %d", code)
	}
	var rep monitor.HealthReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/healthz does not decode: %v", err)
	}
	if !rep.Healthy || len(rep.Components) != 1 {
		t.Errorf("report = %+v", rep)
	}

	healthy.Store(false)
	code, body = serveGet(t, ms, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded /healthz = %d, want 503", code)
	}
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Healthy || len(rep.Components) != 2 || rep.Components[1].Detail == "" {
		t.Errorf("degraded report = %+v", rep)
	}
}
