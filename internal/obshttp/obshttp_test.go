package obshttp

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"blobseer/internal/metrics"
	"blobseer/internal/obs"
)

func TestMetricsServerEndpoints(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Op("blob.append").RecordDuration(2 * time.Millisecond)
	reg.SetGauge("client_cache_bytes", func() float64 { return 512 })
	reg.RPCClient.Method("vm.Assign").Observe(time.Millisecond, 64, nil)

	ms, err := ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + ms.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}

	_, prom := get("/metrics")
	for _, want := range []string{
		"blobseer_client_cache_bytes 512",
		`blobseer_op_latency_ms{op="blob.append",quantile="0.99"}`,
		`blobseer_rpc_calls_total{side="client",method="vm.Assign"} 1`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q:\n%s", want, prom)
		}
	}

	_, raw := get("/metrics.json")
	var snap metrics.RegistrySnapshot
	if err := json.Unmarshal([]byte(raw), &snap); err != nil {
		t.Fatalf("/metrics.json does not decode: %v", err)
	}
	if snap.Ops["blob.append"].Count != 1 || snap.Gauges["client_cache_bytes"] != 512 {
		t.Errorf("decoded snapshot = %+v", snap)
	}

	_, root := obs.StartTrace(context.Background(), "http.sample")
	root.End(nil)
	if code, body := get(fmt.Sprintf("/spans?trace=%d", root.Trace)); code != 200 || !strings.Contains(body, "http.sample") {
		t.Errorf("/spans?trace = %d %q", code, body)
	}
	if code, body := get("/spans"); code != 200 || !strings.Contains(body, "trace") {
		t.Errorf("/spans = %d %q", code, body)
	}
	if code, _ := get("/spans?trace=nonsense"); code != http.StatusBadRequest {
		t.Errorf("/spans?trace=nonsense = %d, want 400", code)
	}
}
