// Package obshttp is the opt-in HTTP export endpoint for the
// observability plane. It lives apart from internal/obs so that only
// the binaries that actually serve metrics link net/http — obs is
// imported by every hot package, and carrying the HTTP stack there
// measurably bloats (and slows) every test and benchmark binary.
package obshttp

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"blobseer/internal/flight"
	"blobseer/internal/metrics"
	"blobseer/internal/monitor"
	"blobseer/internal/obs"
)

// Options configures the export endpoint beyond the bare registry.
type Options struct {
	// Registry backs /metrics and /metrics.json; nil means
	// metrics.Default.
	Registry *metrics.Registry

	// Monitor, when set, enables /cluster: each request triggers one
	// collection pass and serves the derived cluster snapshot as JSON.
	Monitor *monitor.Monitor

	// Health, when set, makes /healthz real: the report is served as
	// JSON with a 503 when any component is degraded. When nil,
	// /healthz keeps the legacy unconditional "ok" liveness answer.
	Health func(context.Context) monitor.HealthReport

	// Alerts, when set, enables /alerts: the SLO watchdog's current
	// per-rule states as JSON (firing rules first). Typically
	// flight.Watchdog.Alerts.
	Alerts func() []flight.AlertState
}

// MetricsServer is the opt-in HTTP export endpoint. Routes:
//
//	/metrics       Prometheus text exposition of the registry snapshot
//	/metrics.json  the same snapshot as JSON
//	/cluster       cluster monitor snapshot as JSON (when a Monitor is wired)
//	/healthz       component health as JSON, 503 on degradation (or "ok" liveness)
//	/spans         recent trace ids, or one trace's causal tree (?trace=N)
//	/alerts        SLO watchdog rule states as JSON (when a watchdog is wired)
type MetricsServer struct {
	lis  net.Listener
	srv  *http.Server
	reg  *metrics.Registry
	coll *obs.Collector
	opts Options
}

// ServeMetrics starts the export endpoint on addr (":0" picks a free
// port) serving reg and the default span collector. nil reg means
// metrics.Default.
func ServeMetrics(addr string, reg *metrics.Registry) (*MetricsServer, error) {
	return Serve(addr, Options{Registry: reg})
}

// Serve starts the export endpoint on addr (":0" picks a free port)
// with the given options.
func Serve(addr string, opts Options) (*MetricsServer, error) {
	if opts.Registry == nil {
		opts.Registry = metrics.Default
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listen %s: %w", addr, err)
	}
	m := &MetricsServer{lis: lis, reg: opts.Registry, coll: obs.Spans, opts: opts}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", m.handleMetrics)
	mux.HandleFunc("/metrics.json", m.handleMetricsJSON)
	mux.HandleFunc("/cluster", m.handleCluster)
	mux.HandleFunc("/healthz", m.handleHealthz)
	mux.HandleFunc("/spans", m.handleSpans)
	mux.HandleFunc("/alerts", m.handleAlerts)
	m.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}

	go func() {
		if err := m.srv.Serve(lis); err != nil && err != http.ErrServerClosed {
			obs.Log.Errorf("metrics endpoint: %v", err)
		}
	}()
	return m, nil
}

// Addr returns the bound listen address.
func (m *MetricsServer) Addr() string { return m.lis.Addr().String() }

// Close stops the endpoint.
func (m *MetricsServer) Close() error { return m.srv.Close() }

func (m *MetricsServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m.reg.Snapshot().WritePrometheus(w)
}

func (m *MetricsServer) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m.reg.Snapshot()); err != nil {
		obs.Log.Debugf("metrics endpoint: encode snapshot: %v", err)
	}
}

// handleCluster serves the cluster monitor's derived snapshot. Each
// request runs one collection pass first, so an unarmed monitor still
// answers with current data (and rates sharpen across polls). ?top=N
// bounds the heat sets (default 20).
func (m *MetricsServer) handleCluster(w http.ResponseWriter, r *http.Request) {
	if m.opts.Monitor == nil {
		http.Error(w, "no cluster monitor wired", http.StatusNotFound)
		return
	}
	topK := 0
	if q := r.URL.Query().Get("top"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n <= 0 {
			http.Error(w, "bad top count", http.StatusBadRequest)
			return
		}
		topK = n
	}
	m.opts.Monitor.CollectOnce()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m.opts.Monitor.Snapshot(topK)); err != nil {
		obs.Log.Debugf("metrics endpoint: encode cluster snapshot: %v", err)
	}
}

func (m *MetricsServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if m.opts.Health == nil {
		// Legacy liveness answer: the process is up.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
		return
	}
	rep := m.opts.Health(r.Context())
	w.Header().Set("Content-Type", "application/json")
	if !rep.Healthy {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		obs.Log.Debugf("metrics endpoint: encode health report: %v", err)
	}
}

// handleAlerts serves the watchdog's per-rule states, firing first.
// The X-Alerts-Firing header carries the firing count so shell probes
// can react without parsing the body.
func (m *MetricsServer) handleAlerts(w http.ResponseWriter, _ *http.Request) {
	if m.opts.Alerts == nil {
		http.Error(w, "no watchdog wired", http.StatusNotFound)
		return
	}
	alerts := m.opts.Alerts()
	firing := 0
	for _, a := range alerts {
		if a.State == flight.StateFiring {
			firing++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Alerts-Firing", strconv.Itoa(firing))
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(alerts); err != nil {
		obs.Log.Debugf("metrics endpoint: encode alerts: %v", err)
	}
}

func (m *MetricsServer) handleSpans(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if q := r.URL.Query().Get("trace"); q != "" {
		id, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "bad trace id", http.StatusBadRequest)
			return
		}
		fmt.Fprint(w, m.coll.Tree(id))
		return
	}
	ids := m.coll.TraceIDs(32)
	if len(ids) == 0 {
		fmt.Fprintln(w, "no traces retained")
		return
	}
	fmt.Fprintln(w, "recent traces (newest first); fetch one with /spans?trace=<id>")
	for _, id := range ids {
		fmt.Fprintf(w, "  trace %d: %d spans\n", id, len(m.coll.Trace(id)))
	}
}
