// Package obshttp is the opt-in HTTP export endpoint for the
// observability plane. It lives apart from internal/obs so that only
// the binaries that actually serve metrics link net/http — obs is
// imported by every hot package, and carrying the HTTP stack there
// measurably bloats (and slows) every test and benchmark binary.
package obshttp

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"blobseer/internal/metrics"
	"blobseer/internal/obs"
)

// MetricsServer is the opt-in HTTP export endpoint. Routes:
//
//	/metrics       Prometheus text exposition of the registry snapshot
//	/metrics.json  the same snapshot as JSON
//	/healthz       liveness probe ("ok")
//	/spans         recent trace ids, or one trace's causal tree (?trace=N)
type MetricsServer struct {
	lis  net.Listener
	srv  *http.Server
	reg  *metrics.Registry
	coll *obs.Collector
}

// ServeMetrics starts the export endpoint on addr (":0" picks a free
// port) serving reg and the default span collector. nil reg means
// metrics.Default.
func ServeMetrics(addr string, reg *metrics.Registry) (*MetricsServer, error) {
	if reg == nil {
		reg = metrics.Default
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listen %s: %w", addr, err)
	}
	m := &MetricsServer{lis: lis, reg: reg, coll: obs.Spans}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", m.handleMetrics)
	mux.HandleFunc("/metrics.json", m.handleMetricsJSON)
	mux.HandleFunc("/healthz", m.handleHealthz)
	mux.HandleFunc("/spans", m.handleSpans)
	m.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}

	go func() {
		if err := m.srv.Serve(lis); err != nil && err != http.ErrServerClosed {
			obs.Log.Errorf("metrics endpoint: %v", err)
		}
	}()
	return m, nil
}

// Addr returns the bound listen address.
func (m *MetricsServer) Addr() string { return m.lis.Addr().String() }

// Close stops the endpoint.
func (m *MetricsServer) Close() error { return m.srv.Close() }

func (m *MetricsServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m.reg.Snapshot().WritePrometheus(w)
}

func (m *MetricsServer) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m.reg.Snapshot()); err != nil {
		obs.Log.Debugf("metrics endpoint: encode snapshot: %v", err)
	}
}

func (m *MetricsServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (m *MetricsServer) handleSpans(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if q := r.URL.Query().Get("trace"); q != "" {
		id, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "bad trace id", http.StatusBadRequest)
			return
		}
		fmt.Fprint(w, m.coll.Tree(id))
		return
	}
	ids := m.coll.TraceIDs(32)
	if len(ids) == 0 {
		fmt.Fprintln(w, "no traces retained")
		return
	}
	fmt.Fprintln(w, "recent traces (newest first); fetch one with /spans?trace=<id>")
	for _, id := range ids {
		fmt.Fprintf(w, "  trace %d: %d spans\n", id, len(m.coll.Trace(id)))
	}
}
