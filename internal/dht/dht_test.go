package dht

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"blobseer/internal/rpc"
	"blobseer/internal/transport"
)

// testCluster spins up n metadata providers on a MemNet.
func testCluster(t *testing.T, n, replicas int) (*Client, []*Server) {
	t.Helper()
	net := transport.NewMemNet()
	servers := make([]*Server, n)
	members := make([]transport.Addr, n)
	for i := range servers {
		addr := transport.MakeAddr(fmt.Sprintf("meta-%d", i), "dht")
		s, err := NewServer(net, addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		servers[i] = s
		members[i] = addr
	}
	pool := rpc.NewPool(net, "client/dht")
	t.Cleanup(func() { pool.Close() })
	return NewClient(NewRing(members, 64), pool, replicas), servers
}

func TestPutGet(t *testing.T) {
	c, _ := testCluster(t, 5, 2)
	ctx := context.Background()
	if err := c.Put(ctx, "node/1/0/8", []byte("tree node")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get(ctx, "node/1/0/8")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "tree node" {
		t.Fatalf("Get = %q", v)
	}
}

func TestGetMissing(t *testing.T) {
	c, _ := testCluster(t, 3, 2)
	if _, err := c.Get(context.Background(), "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestDelete(t *testing.T) {
	c, _ := testCluster(t, 3, 3)
	ctx := context.Background()
	if err := c.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after delete: %v", err)
	}
}

func TestReplication(t *testing.T) {
	c, servers := testCluster(t, 5, 3)
	ctx := context.Background()
	const keys = 100
	for i := 0; i < keys; i++ {
		if err := c.Put(ctx, fmt.Sprintf("key-%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for _, s := range servers {
		total += s.Len()
	}
	if total != keys*3 {
		t.Errorf("total stored entries = %d, want %d (3 replicas each)", total, keys*3)
	}
}

func TestSurvivesReplicaFailure(t *testing.T) {
	c, servers := testCluster(t, 5, 3)
	ctx := context.Background()
	const keys = 50
	for i := 0; i < keys; i++ {
		if err := c.Put(ctx, fmt.Sprintf("key-%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Kill two of five providers; with 3 replicas every key survives.
	servers[1].Close()
	servers[3].Close()
	for i := 0; i < keys; i++ {
		v, err := c.Get(ctx, fmt.Sprintf("key-%d", i))
		if err != nil {
			t.Fatalf("Get key-%d after failures: %v", i, err)
		}
		if len(v) != 1 || v[0] != byte(i) {
			t.Fatalf("key-%d = %v", i, v)
		}
	}
	// Writes also continue.
	if err := c.Put(ctx, "post-failure", []byte("ok")); err != nil {
		t.Fatalf("Put after failures: %v", err)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	c, _ := testCluster(t, 5, 2)
	ctx := context.Background()
	kvs := make([]KV, 200)
	keys := make([]string, 200)
	for i := range kvs {
		keys[i] = fmt.Sprintf("batch-%d", i)
		kvs[i] = KV{Key: keys[i], Value: []byte(fmt.Sprintf("val-%d", i))}
	}
	if err := c.PutBatch(ctx, kvs); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetBatch(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if string(got[i]) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("batch get %d = %q", i, got[i])
		}
	}
}

func TestGetBatchMissingEntries(t *testing.T) {
	c, _ := testCluster(t, 3, 2)
	ctx := context.Background()
	if err := c.Put(ctx, "present", []byte("yes")); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetBatch(ctx, []string{"present", "absent"})
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0]) != "yes" {
		t.Errorf("got[0] = %q", got[0])
	}
	if got[1] != nil {
		t.Errorf("got[1] = %q, want nil", got[1])
	}
}

func TestEmptyBatch(t *testing.T) {
	c, _ := testCluster(t, 3, 2)
	if err := c.PutBatch(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	out, err := c.GetBatch(context.Background(), nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("GetBatch(nil) = %v, %v", out, err)
	}
}

func TestRingBalance(t *testing.T) {
	members := make([]transport.Addr, 20)
	for i := range members {
		members[i] = transport.MakeAddr(fmt.Sprintf("meta-%d", i), "dht")
	}
	ring := NewRing(members, 64)
	counts := make(map[transport.Addr]int)
	const keys = 20000
	for i := 0; i < keys; i++ {
		prim := ring.Lookup(fmt.Sprintf("key-%d", i), 1)
		counts[prim[0]]++
	}
	mean := float64(keys) / float64(len(members))
	for m, c := range counts {
		if math.Abs(float64(c)-mean)/mean > 0.5 {
			t.Errorf("member %s holds %d keys, mean %.0f (>50%% imbalance)", m, c, mean)
		}
	}
	if len(counts) != len(members) {
		t.Errorf("only %d of %d members received keys", len(counts), len(members))
	}
}

func TestRingLookupDistinct(t *testing.T) {
	members := []transport.Addr{"a/dht", "b/dht", "c/dht", "d/dht"}
	ring := NewRing(members, 32)
	for i := 0; i < 100; i++ {
		got := ring.Lookup(fmt.Sprintf("k%d", i), 3)
		if len(got) != 3 {
			t.Fatalf("Lookup returned %d members", len(got))
		}
		seen := map[transport.Addr]bool{}
		for _, m := range got {
			if seen[m] {
				t.Fatalf("duplicate member %s in replica set", m)
			}
			seen[m] = true
		}
	}
	// n larger than membership is capped.
	if got := ring.Lookup("k", 10); len(got) != 4 {
		t.Errorf("Lookup(10) = %d members, want 4", len(got))
	}
}

func TestRingDeterministic(t *testing.T) {
	members := []transport.Addr{"a/dht", "b/dht", "c/dht"}
	r1 := NewRing(members, 64)
	r2 := NewRing(members, 64)
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("key-%d", i)
		a := r1.Lookup(k, 2)
		b := r2.Lookup(k, 2)
		if len(a) != len(b) || a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("ring not deterministic for %q: %v vs %v", k, a, b)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	c, _ := testCluster(t, 5, 2)
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := fmt.Sprintf("g%d-%d", g, i)
				if err := c.Put(ctx, k, []byte(k)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				v, err := c.Get(ctx, k)
				if err != nil || string(v) != k {
					t.Errorf("get %q = %q, %v", k, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestServerStats(t *testing.T) {
	net := transport.NewMemNet()
	s, err := NewServer(net, "meta-0/dht")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	pool := rpc.NewPool(net, "cli/x")
	defer pool.Close()

	ring := NewRing([]transport.Addr{"meta-0/dht"}, 8)
	c := NewClient(ring, pool, 1)
	ctx := context.Background()
	if err := c.Put(ctx, "a", make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(ctx, "b", make([]byte, 20)); err != nil {
		t.Fatal(err)
	}
	var stats StatsResp
	if err := pool.Call(ctx, "meta-0/dht", MethodStats, nil, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Entries != 2 || stats.Bytes != 30 {
		t.Errorf("stats = %+v", stats)
	}
}
