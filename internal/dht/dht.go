// Package dht implements the distributed hash table that BlobSeer's
// metadata providers form (§3.1.1): "The information concerning the
// location of the pages for each BLOB version is kept in a Distributed
// HashTable, managed by several metadata providers."
//
// The design follows BlobSeer: a static membership ring (the deployment
// lists its metadata providers up front), consistent hashing with
// virtual nodes for balance, and R-way replication of every entry for
// fault tolerance. Entries are immutable once written (segment-tree
// nodes are content-addressed per version), which makes replication
// trivially consistent: any replica that has the key has the right
// value.
package dht

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"blobseer/internal/obs"
	"blobseer/internal/rpc"
	"blobseer/internal/transport"
	"blobseer/internal/wire"
)

// RPC methods served by a metadata provider.
var (
	MethodGet         = rpc.M(1, "meta.Get")
	MethodPut         = rpc.M(2, "meta.Put")
	MethodDelete      = rpc.M(3, "meta.Delete")
	MethodGetBatch    = rpc.M(4, "meta.GetBatch")
	MethodPutBatch    = rpc.M(5, "meta.PutBatch")
	MethodStats       = rpc.M(6, "meta.Stats")
	MethodDeleteBatch = rpc.M(7, "meta.DeleteBatch")
)

// ErrNotFound is returned when no replica holds the key.
var ErrNotFound = errors.New("dht: key not found")

//
// Wire messages.
//

// KV is one key/value pair.
type KV struct {
	Key   string
	Value []byte
}

// PutReq stores one entry.
type PutReq struct{ KV }

// AppendTo implements wire.Marshaler.
func (m *PutReq) AppendTo(b []byte) []byte {
	b = wire.AppendString(b, m.Key)
	return wire.AppendBytes(b, m.Value)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *PutReq) DecodeFrom(r *wire.Reader) error {
	m.Key = r.String()
	m.Value = r.BytesCopy()
	return r.Err()
}

// GetReq fetches one entry.
type GetReq struct{ Key string }

// AppendTo implements wire.Marshaler.
func (m *GetReq) AppendTo(b []byte) []byte { return wire.AppendString(b, m.Key) }

// DecodeFrom implements wire.Unmarshaler.
func (m *GetReq) DecodeFrom(r *wire.Reader) error {
	m.Key = r.String()
	return r.Err()
}

// GetResp carries the value when found.
type GetResp struct {
	Found bool
	Value []byte
}

// AppendTo implements wire.Marshaler.
func (m *GetResp) AppendTo(b []byte) []byte {
	b = wire.AppendBool(b, m.Found)
	return wire.AppendBytes(b, m.Value)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *GetResp) DecodeFrom(r *wire.Reader) error {
	m.Found = r.Bool()
	m.Value = r.BytesCopy()
	return r.Err()
}

// BatchReq carries several entries (PutBatch) or keys (GetBatch).
type BatchReq struct {
	Keys   []string
	Values [][]byte // nil for GetBatch
}

// AppendTo implements wire.Marshaler.
func (m *BatchReq) AppendTo(b []byte) []byte {
	b = wire.AppendStringSlice(b, m.Keys)
	b = wire.AppendUvarint(b, uint64(len(m.Values)))
	for _, v := range m.Values {
		b = wire.AppendBytes(b, v)
	}
	return b
}

// DecodeFrom implements wire.Unmarshaler.
func (m *BatchReq) DecodeFrom(r *wire.Reader) error {
	m.Keys = r.StringSlice()
	n := r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	m.Values = make([][]byte, 0, n)
	for i := uint64(0); i < n; i++ {
		m.Values = append(m.Values, r.BytesCopy())
	}
	return r.Err()
}

// BatchResp answers a GetBatch: parallel to Keys; missing entries have
// Found=false.
type BatchResp struct {
	Found  []bool
	Values [][]byte
}

// AppendTo implements wire.Marshaler.
func (m *BatchResp) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(len(m.Found)))
	for i := range m.Found {
		b = wire.AppendBool(b, m.Found[i])
		b = wire.AppendBytes(b, m.Values[i])
	}
	return b
}

// DecodeFrom implements wire.Unmarshaler.
func (m *BatchResp) DecodeFrom(r *wire.Reader) error {
	n := r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	m.Found = make([]bool, 0, n)
	m.Values = make([][]byte, 0, n)
	for i := uint64(0); i < n; i++ {
		m.Found = append(m.Found, r.Bool())
		m.Values = append(m.Values, r.BytesCopy())
	}
	return r.Err()
}

// StatsResp reports server-side entry counts.
type StatsResp struct {
	Entries uint64
	Bytes   uint64
}

// AppendTo implements wire.Marshaler.
func (m *StatsResp) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Entries)
	return wire.AppendUvarint(b, m.Bytes)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *StatsResp) DecodeFrom(r *wire.Reader) error {
	m.Entries = r.Uvarint()
	m.Bytes = r.Uvarint()
	return r.Err()
}

//
// Server: one metadata provider.
//

// Server stores DHT entries for one metadata provider node.
type Server struct {
	srv *rpc.Server

	mu    sync.RWMutex
	data  map[string][]byte
	bytes uint64
}

// NewServer starts a metadata provider at addr.
func NewServer(net transport.Network, addr transport.Addr) (*Server, error) {
	srv, err := rpc.NewServer(net, addr)
	if err != nil {
		return nil, err
	}
	s := &Server{srv: srv, data: make(map[string][]byte)}
	srv.Handle(MethodGet, s.handleGet)
	srv.Handle(MethodPut, s.handlePut)
	srv.Handle(MethodDelete, s.handleDelete)
	srv.Handle(MethodGetBatch, s.handleGetBatch)
	srv.Handle(MethodPutBatch, s.handlePutBatch)
	srv.Handle(MethodStats, s.handleStats)
	srv.Handle(MethodDeleteBatch, s.handleDeleteBatch)
	return s, nil
}

// Addr returns the provider's endpoint.
func (s *Server) Addr() transport.Addr { return s.srv.Addr() }

// Close stops the provider.
func (s *Server) Close() error { return s.srv.Close() }

// Len returns the number of entries held locally.
func (s *Server) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

func (s *Server) handleGet(r *wire.Reader) (wire.Marshaler, error) {
	var req GetReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	s.mu.RLock()
	v, ok := s.data[req.Key]
	s.mu.RUnlock()
	return &GetResp{Found: ok, Value: v}, nil
}

func (s *Server) handlePut(r *wire.Reader) (wire.Marshaler, error) {
	var req PutReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	s.put(req.Key, req.Value)
	return nil, nil
}

func (s *Server) put(key string, value []byte) {
	s.mu.Lock()
	if old, ok := s.data[key]; ok {
		s.bytes -= uint64(len(old))
	}
	s.data[key] = value
	s.bytes += uint64(len(value))
	s.mu.Unlock()
}

func (s *Server) handleDelete(r *wire.Reader) (wire.Marshaler, error) {
	var req GetReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if old, ok := s.data[req.Key]; ok {
		s.bytes -= uint64(len(old))
		delete(s.data, req.Key)
	}
	s.mu.Unlock()
	return nil, nil
}

func (s *Server) handleDeleteBatch(r *wire.Reader) (wire.Marshaler, error) {
	var req BatchReq // Values unused for deletes
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	s.mu.Lock()
	for _, k := range req.Keys {
		if old, ok := s.data[k]; ok {
			s.bytes -= uint64(len(old))
			delete(s.data, k)
		}
	}
	s.mu.Unlock()
	return nil, nil
}

func (s *Server) handleGetBatch(r *wire.Reader) (wire.Marshaler, error) {
	var req BatchReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	resp := &BatchResp{
		Found:  make([]bool, len(req.Keys)),
		Values: make([][]byte, len(req.Keys)),
	}
	s.mu.RLock()
	for i, k := range req.Keys {
		if v, ok := s.data[k]; ok {
			resp.Found[i] = true
			resp.Values[i] = v
		}
	}
	s.mu.RUnlock()
	return resp, nil
}

func (s *Server) handlePutBatch(r *wire.Reader) (wire.Marshaler, error) {
	var req BatchReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	if len(req.Keys) != len(req.Values) {
		return nil, fmt.Errorf("dht: put batch with %d keys, %d values", len(req.Keys), len(req.Values))
	}
	for i, k := range req.Keys {
		s.put(k, req.Values[i])
	}
	return nil, nil
}

func (s *Server) handleStats(r *wire.Reader) (wire.Marshaler, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return &StatsResp{Entries: uint64(len(s.data)), Bytes: s.bytes}, nil
}

//
// Ring: consistent hashing with virtual nodes.
//

// Ring maps keys to an ordered replica set of members.
type Ring struct {
	members []transport.Addr
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member int // index into members
}

// NewRing builds a ring over members with vnodes virtual points each.
// Members must be non-empty; vnodes <= 0 defaults to 64.
func NewRing(members []transport.Addr, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{members: append([]transport.Addr(nil), members...)}
	r.points = make([]ringPoint, 0, len(members)*vnodes)
	for mi, m := range r.members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   hashString(fmt.Sprintf("%s#%d", m, v)),
				member: mi,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// Members returns the ring membership.
func (r *Ring) Members() []transport.Addr {
	return append([]transport.Addr(nil), r.members...)
}

// Lookup returns up to n distinct members responsible for key, in
// preference order (primary first).
func (r *Ring) Lookup(key string, n int) []transport.Addr {
	if n > len(r.members) {
		n = len(r.members)
	}
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	h := hashString(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	out := make([]transport.Addr, 0, n)
	seen := make(map[int]bool, n)
	for j := 0; len(out) < n && j < len(r.points); j++ {
		p := r.points[(i+j)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

func hashString(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	h := f.Sum64()
	// FNV alone leaves keys that share a prefix within ~2^44 of each
	// other (only the final characters multiply the ~2^40 prime), which
	// clusters them onto one ring arc. A splitmix64-style avalanche
	// finalizer spreads them over the whole ring.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

//
// Client: replicated access.
//

// Client reads and writes replicated DHT entries through the ring.
type Client struct {
	ring     *Ring
	pool     *rpc.Pool
	replicas int
}

// NewClient returns a DHT client writing each entry to `replicas`
// members (at least 1; capped at the membership size).
func NewClient(ring *Ring, pool *rpc.Pool, replicas int) *Client {
	if replicas < 1 {
		replicas = 1
	}
	if replicas > len(ring.members) {
		replicas = len(ring.members)
	}
	return &Client{ring: ring, pool: pool, replicas: replicas}
}

// Put writes key to all replicas; it succeeds if at least one replica
// accepted the write (entries are immutable, so a lagging replica can
// be repaired by any later writer or ignored).
func (c *Client) Put(ctx context.Context, key string, value []byte) error {
	replicas := c.ring.Lookup(key, c.replicas)
	var firstErr error
	oks := 0
	for _, addr := range replicas {
		err := c.pool.Call(ctx, addr, MethodPut, &PutReq{KV{Key: key, Value: value}}, nil)
		if err == nil {
			oks++
		} else if firstErr == nil {
			firstErr = err
		}
	}
	if oks == 0 {
		return fmt.Errorf("dht put %q: all %d replicas failed: %w", key, len(replicas), firstErr)
	}
	return nil
}

// Get returns the value for key, consulting replicas in preference
// order and returning the first hit.
func (c *Client) Get(ctx context.Context, key string) ([]byte, error) {
	replicas := c.ring.Lookup(key, c.replicas)
	var firstErr error
	for _, addr := range replicas {
		var resp GetResp
		err := c.pool.Call(ctx, addr, MethodGet, &GetReq{Key: key}, &resp)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if resp.Found {
			return resp.Value, nil
		}
	}
	if firstErr != nil {
		return nil, fmt.Errorf("dht get %q: %w", key, firstErr)
	}
	return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
}

// Delete removes key from all reachable replicas.
func (c *Client) Delete(ctx context.Context, key string) error {
	for _, addr := range c.ring.Lookup(key, c.replicas) {
		// Best effort: immutable entries make deletes advisory (GC).
		if err := c.pool.Call(ctx, addr, MethodDelete, &GetReq{Key: key}, nil); err != nil {
			obs.Log.Debugf("dht: advisory delete of %q at %v: %v", key, addr, err)
		}
	}
	return nil
}

// PutBatch writes a set of entries, grouping them by primary replica so
// one RPC carries all entries destined for the same member. Used by the
// metadata layer to commit all new segment-tree nodes of a version in a
// handful of round-trips.
func (c *Client) PutBatch(ctx context.Context, kvs []KV) error {
	if len(kvs) == 0 {
		return nil
	}
	// member -> batch.
	batches := make(map[transport.Addr]*BatchReq)
	for _, kv := range kvs {
		for _, addr := range c.ring.Lookup(kv.Key, c.replicas) {
			b, ok := batches[addr]
			if !ok {
				b = &BatchReq{}
				batches[addr] = b
			}
			b.Keys = append(b.Keys, kv.Key)
			b.Values = append(b.Values, kv.Value)
		}
	}
	type result struct {
		addr transport.Addr
		err  error
	}
	results := make(chan result, len(batches))
	for addr, b := range batches {
		go func(addr transport.Addr, b *BatchReq) {
			results <- result{addr, c.pool.Call(ctx, addr, MethodPutBatch, b, nil)}
		}(addr, b)
	}
	var firstErr error
	oks := 0
	for range batches {
		r := <-results
		if r.err == nil {
			oks++
		} else if firstErr == nil {
			firstErr = fmt.Errorf("dht put batch at %s: %w", r.addr, r.err)
		}
	}
	// With replication >= 2 a single failed member is tolerable; all
	// keys still have at least one live replica only if every key had
	// one success, which grouping does not track per-key. Be
	// conservative: any failure with replicas==1 is fatal, otherwise
	// require at least one member success overall plus warn via error
	// only when everything failed.
	if oks == 0 {
		return firstErr
	}
	if firstErr != nil && c.replicas == 1 {
		return firstErr
	}
	return nil
}

// DeleteBatch removes a set of keys from every replica, grouping keys
// by member so one RPC carries all deletions destined for the same
// node. An unreachable member never blocks the others, but its failure
// IS reported: a delete that silently skipped a replica would leak the
// entries there forever, so the garbage collector needs the error to
// re-queue the batch (deletions are idempotent, retries are free).
func (c *Client) DeleteBatch(ctx context.Context, keys []string) error {
	if len(keys) == 0 {
		return nil
	}
	batches := make(map[transport.Addr]*BatchReq)
	for _, k := range keys {
		for _, addr := range c.ring.Lookup(k, c.replicas) {
			b, ok := batches[addr]
			if !ok {
				b = &BatchReq{}
				batches[addr] = b
			}
			b.Keys = append(b.Keys, k)
		}
	}
	errs := make(chan error, len(batches))
	for addr, b := range batches {
		go func(addr transport.Addr, b *BatchReq) {
			err := c.pool.Call(ctx, addr, MethodDeleteBatch, b, nil)
			if err != nil {
				err = fmt.Errorf("dht delete batch at %s: %w", addr, err)
			}
			errs <- err
		}(addr, b)
	}
	var firstErr error
	for range batches {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// GetBatch fetches many keys; the result slice is parallel to keys and
// contains nil for entries that are missing everywhere.
func (c *Client) GetBatch(ctx context.Context, keys []string) ([][]byte, error) {
	out := make([][]byte, len(keys))
	// Group by primary; fall back per-key on miss/failure.
	groups := make(map[transport.Addr][]int)
	for i, k := range keys {
		prim := c.ring.Lookup(k, 1)
		if len(prim) == 0 {
			return nil, errors.New("dht: empty ring")
		}
		groups[prim[0]] = append(groups[prim[0]], i)
	}
	for addr, idxs := range groups {
		req := &BatchReq{Keys: make([]string, len(idxs))}
		for j, i := range idxs {
			req.Keys[j] = keys[i]
		}
		var resp BatchResp
		err := c.pool.Call(ctx, addr, MethodGetBatch, req, &resp)
		if err == nil && len(resp.Found) == len(idxs) {
			for j, i := range idxs {
				if resp.Found[j] {
					out[i] = resp.Values[j]
				}
			}
		}
		// Per-key fallback through replicas for anything still nil.
		for _, i := range idxs {
			if out[i] != nil {
				continue
			}
			v, err := c.Get(ctx, keys[i])
			if err != nil && !errors.Is(err, ErrNotFound) {
				return nil, err
			}
			out[i] = v
		}
	}
	return out, nil
}
