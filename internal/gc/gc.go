// Package gc is the BLOB lifecycle subsystem the BlobSeer model leaves
// open: versioning makes every append/write publish a new immutable
// snapshot, and nothing ever reclaimed the snapshots that fell out of
// use — "delete" merely dropped a namespace entry while every page
// stayed pinned on every provider forever.
//
// The collector closes that loop with an epoch-style design split
// across the existing services:
//
//   - The version manager owns lifecycle STATE: retention policy
//     (RetainLatest / TruncateBefore / DeleteBlob RPCs), lease-style
//     reader pins, and the reclaim scan that atomically marks dead
//     versions "collected" — after which every read of those versions
//     fails with blob.ErrVersionCollected, and no new pin can land on
//     them. Marking before deleting means a racy reader observes a
//     clean error, never short or stale data.
//   - This package owns lifecycle WORK: from the scan's write-record
//     history it computes which pages and segment-tree nodes are
//     reachable ONLY from dead versions (a page written at dead
//     version v survives while any protected — live or pinned —
//     version still resolves it; it dies once a later write at or
//     below the next protected version shadows it), reads the dead
//     leaves to learn each page's replica providers, and drives
//     batched, per-provider delete queues plus DHT node deletion.
//     Failed provider batches stay queued and retry next pass.
//
// Reachability needs no tree reads: the same write-record algebra that
// lets segtree.Commit build a version's tree without reading other
// versions' metadata (the paper's concurrency trick) also decides
// reachability — version v's node or page covering page range R is
// shadowed at protected version P iff some write in (v, P] intersects
// R, because every resolve from P then descends through the later
// writer's node instead.
package gc

import (
	"context"
	"sort"
	"sync"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/metrics"
	"blobseer/internal/obs"
	"blobseer/internal/pagestore"
	"blobseer/internal/segtree"
)

// Options configures a collector.
type Options struct {
	// Interval is the periodic reclaim pass cadence. Zero disables the
	// timer: passes then run only on Kick (the version manager kicks on
	// every DeleteBlob/TruncateBefore/SetRetention) or explicit RunOnce.
	Interval time.Duration
	// BatchSize bounds one provider delete RPC (default 256 keys).
	BatchSize int
	// Stats receives the collector's counters (nil allocates one).
	Stats *metrics.GCStats
}

// Collector drives reclamation for one deployment. It talks to the
// version manager, metadata DHT, and providers through a regular
// blob.Client, so it deploys anywhere a client can run.
type Collector struct {
	c     *blob.Client
	opts  Options
	stats *metrics.GCStats

	runMu sync.Mutex // serializes passes

	// now is the injected clock behind pass-latency measurement; tests
	// override it for deterministic timings.
	now func() time.Time

	mu      sync.Mutex
	enabled bool
	queues  map[string][]pagestore.Key // provider addr -> pending deletes
	retry   []*reclaimWork             // work items whose metadata I/O failed

	// blobs caches per-BLOB reclaim state across passes: the write
	// records seen so far and the owner index replayed through
	// `processed`. The frontier only moves forward, so each version's
	// shadow walk runs once ever; without the cache every pass would
	// replay the whole history from version 1.
	blobs map[uint64]*blobGCState

	kick chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

// blobGCState is the collector's memory of one BLOB between passes.
type blobGCState struct {
	recs      []segtree.WriteRecord
	owners    *ownerMap
	processed uint64 // owners reflect versions [1, processed]
}

// reclaimWork is the I/O half of one frontier advance: everything to
// read (dead leaves, for replica locations) and delete. It is derived
// by pure computation over write records, so a failed execution —
// say the metadata DHT was briefly unreachable — can be retried on
// the next pass without recomputing or losing anything; deletions are
// idempotent, so a partially executed item retries whole.
type reclaimWork struct {
	blob      uint64
	leafKeys  []string
	leafPages []pagestore.Key
	deadNodes []string
}

// Report summarizes one reclaim pass.
type Report struct {
	VersionsCollected int
	PagesQueued       int    // garbage pages resolved to providers this pass
	PagesReclaimed    uint64 // pages confirmed deleted by providers
	BytesReclaimed    uint64
	NodesDeleted      int
	PagesUnlocatable  int // garbage pages whose leaf was missing (leaked)
	PinsBlocked       uint64
	ProviderFailures  int // delete batches that failed (kept queued)
	WorkRetries       int // work items whose metadata I/O failed (kept queued)
}

// New returns a running collector over the deployment c talks to. The
// caller keeps ownership of c (Close does not close it); c should be a
// dedicated client so the collector's cache purges cannot race real
// readers' caches.
func New(c *blob.Client, opts Options) *Collector {
	if opts.BatchSize <= 0 {
		opts.BatchSize = 256
	}
	if opts.Stats == nil {
		opts.Stats = &metrics.GCStats{}
	}
	metrics.Default.AttachGCStats(opts.Stats)
	g := &Collector{
		c:       c,
		opts:    opts,
		stats:   opts.Stats,
		now:     time.Now,
		enabled: true,
		queues:  make(map[string][]pagestore.Key),
		blobs:   make(map[uint64]*blobGCState),
		kick:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	g.wg.Add(1)
	go g.loop()
	return g
}

// Stats returns the collector's counters.
func (g *Collector) Stats() *metrics.GCStats { return g.stats }

// SetEnabled toggles collection; while disabled, passes (periodic,
// kicked, or explicit) are no-ops. Experiments use it for no-GC
// baselines.
func (g *Collector) SetEnabled(on bool) {
	g.mu.Lock()
	g.enabled = on
	g.mu.Unlock()
}

// Kick schedules a reclaim pass as soon as the loop is free; the
// version manager calls it (via blob.VersionManager.SetReclaimNotify)
// whenever a lifecycle RPC creates garbage. Non-blocking.
func (g *Collector) Kick() {
	select {
	case g.kick <- struct{}{}:
	default:
	}
}

// Close stops the collector's loop. Pending queue entries are dropped
// (a fresh collector re-derives nothing — those pages leak; production
// deployments run the collector for the cluster's lifetime).
func (g *Collector) Close() {
	select {
	case <-g.done:
	default:
		close(g.done)
	}
	g.wg.Wait()
}

// SetInterval (re)arms the periodic pass cadence; 0 disables the timer
// (kick-driven passes keep working). Deployments arm it after flag
// parsing.
func (g *Collector) SetInterval(d time.Duration) {
	g.mu.Lock()
	g.opts.Interval = d
	g.mu.Unlock()
	g.Kick() // re-enter the loop so the new cadence takes effect
}

func (g *Collector) loop() {
	defer g.wg.Done()
	for {
		g.mu.Lock()
		iv := g.opts.Interval
		g.mu.Unlock()
		var tickC <-chan time.Time
		var timer *time.Timer
		if iv > 0 {
			//lint:walltime the reclaim cadence is wall-clock by design; RunOnce is the injectable seam tests drive
			timer = time.NewTimer(iv)
			tickC = timer.C
		}
		fired := false
		select {
		case <-g.done:
		case <-g.kick:
			fired = true
		case <-tickC:
			fired = true
		}
		if timer != nil {
			timer.Stop()
		}
		select {
		case <-g.done:
			return
		default:
		}
		if fired {
			//lint:detached reclaim passes run on the collector's own goroutine, not a caller RPC; the 1m deadline bounds them
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			if _, err := g.RunOnce(ctx); err != nil {
				// The next pass retries; surface the failure instead of
				// silently skipping a reclaim cycle.
				obs.Log.Warnf("gc: reclaim pass failed: %v", err)
			}
			cancel()
		}
	}
}

// RunOnce executes one full reclaim pass: scan (the version manager
// marks dead versions collected), reachability diff, provider delete
// batches, metadata node deletion, and cache purge. Passes serialize;
// tests call it directly for deterministic collection points.
func (g *Collector) RunOnce(ctx context.Context) (Report, error) {
	g.runMu.Lock()
	defer g.runMu.Unlock()
	var rep Report

	g.mu.Lock()
	enabled := g.enabled
	g.mu.Unlock()
	if !enabled {
		return rep, nil
	}

	start := g.now()
	ctx, sp := obs.StartSpan(ctx, "gc.pass")
	var passErr error
	defer func() {
		g.stats.ObservePassLatency(g.now().Sub(start))
		if sp != nil { // guard: varargs boxing allocates even for a nil span
			sp.Annotate("pages=%d bytes=%d", rep.PagesReclaimed, rep.BytesReclaimed)
		}
		sp.End(passErr)
	}()

	scan, err := g.c.ReclaimScan(ctx)
	if err != nil {
		passErr = err
		return rep, err
	}
	rep.PinsBlocked = scan.PinsBlocked
	g.stats.AddPinsBlocked(scan.PinsBlocked)

	// Retry work whose metadata I/O failed in an earlier pass first:
	// the scan already advanced those frontiers irreversibly, so this
	// queue is the only thing standing between a transient DHT error
	// and a permanent leak.
	g.mu.Lock()
	pending := g.retry
	g.retry = nil
	g.mu.Unlock()
	for _, w := range pending {
		g.executeWork(ctx, w, &rep)
	}

	for i := range scan.Blobs {
		br := &scan.Blobs[i]
		died := int(br.To - br.From)
		rep.VersionsCollected += died
		g.stats.AddVersionsCollected(uint64(died))
		if br.Deleted {
			g.stats.AddBlobDeleted()
		}
		// Deriving the work is pure computation over write records and
		// cannot fail; only executing it does I/O and can be retried.
		g.executeWork(ctx, g.computeWork(br), &rep)
	}
	g.flush(ctx, &rep)
	g.stats.AddPass()
	return rep, nil
}

// computeWork turns one BLOB's frontier advance into the set of leaves
// to read and pages/nodes to delete.
//
// The reclaim is shadow-driven: version w's commit created a node for
// exactly every range it shadowed, so walking w's node set and asking
// "who owned this range before w?" enumerates everything whose last
// observers — the snapshots [owner, w) — died when the frontier
// reached w. Each version is shadow-walked exactly once across the
// collector's lifetime (the per-BLOB owner state persists between
// passes), so total reclaim CPU is linear in total metadata written,
// no matter how often scans run.
func (g *Collector) computeWork(br *blob.BlobReclaim) *reclaimWork {
	w := &reclaimWork{blob: br.Blob}

	if br.Deleted {
		// Terminal sweep of a deleted BLOB: every remaining page and
		// node of the whole history goes. Re-deleting what earlier
		// frontier advances already reclaimed is an idempotent no-op.
		recs := br.Records
		for v := uint64(1); v <= uint64(len(recs)); v++ {
			rec := recs[v-1]
			for i := rec.Off; i < rec.Off+rec.N; i++ {
				w.leafKeys = append(w.leafKeys, segtree.LeafKey(br.Blob, v, i))
				w.leafPages = append(w.leafPages, pagestore.Key{Blob: br.Blob, Version: v, Index: i})
			}
			for _, nr := range segtree.VersionNodes(br.Blob, rec, recs[:v-1]) {
				w.deadNodes = append(w.deadNodes, nr.Key)
			}
			g.c.PurgeVersion(br.Blob, v)
		}
		g.mu.Lock()
		delete(g.blobs, br.Blob) // tombstoned at the manager; state is moot
		g.mu.Unlock()
		return w
	}

	g.mu.Lock()
	st := g.blobs[br.Blob]
	if st == nil {
		st = &blobGCState{owners: newOwnerMap(nil)}
		g.blobs[br.Blob] = st
	}
	g.mu.Unlock()
	if len(br.Records) > len(st.recs) {
		st.recs = br.Records
	}
	recs := st.recs
	n := uint64(len(recs))
	st.owners.ensureSpan(maxRootSpan(recs), recs[:minU64(st.processed, n)])

	// owners answers "which version owned range R just before w" in
	// O(1): it replays writes [1, w) level-aligned, exactly the ranges
	// version trees are built from. The replay resumes where the last
	// pass stopped (from 1 only after a collector restart, where the
	// scan ships the full prefix again).
	for v := st.processed + 1; v <= br.To && v <= n; v++ {
		if v > br.From {
			for _, nr := range segtree.VersionNodes(br.Blob, recs[v-1], recs[:v-1]) {
				owner := st.owners.latest(nr.Off, nr.Span)
				if owner == 0 {
					continue // no predecessor: fresh range or hole wrapper
				}
				// The predecessor's node for this exact range (a missing
				// key — e.g. a smaller-rooted tree — deletes as a no-op).
				w.deadNodes = append(w.deadNodes, segtree.NodeKey(br.Blob, owner, nr.Off, nr.Span))
				if nr.Span == 1 {
					w.leafPages = append(w.leafPages, pagestore.Key{Blob: br.Blob, Version: owner, Index: nr.Off})
					w.leafKeys = append(w.leafKeys, segtree.LeafKey(br.Blob, owner, nr.Off))
				}
			}
		}
		st.owners.update(v, recs[v-1])
	}
	if to := minU64(br.To, n); to > st.processed {
		st.processed = to
	}
	for v := br.From; v < br.To; v++ {
		g.c.PurgeVersion(br.Blob, v)
	}
	return w
}

// executeWork runs one work item's I/O: read the dead leaves for
// replica locations, queue the page deletions per provider, delete the
// dead tree nodes. A failure re-queues the whole item for the next
// pass (deletions are idempotent, and leaves are only deleted after
// they have been read, so a retry always still finds what it needs).
func (g *Collector) executeWork(ctx context.Context, w *reclaimWork, rep *Report) {
	if len(w.leafKeys) == 0 && len(w.deadNodes) == 0 {
		return
	}
	fail := func() {
		rep.WorkRetries++
		g.mu.Lock()
		g.retry = append(g.retry, w)
		g.mu.Unlock()
	}
	if len(w.leafKeys) > 0 {
		raws, err := g.c.NodeStore().GetNodes(ctx, w.leafKeys)
		if err != nil {
			fail()
			return
		}
		g.mu.Lock()
		for i, raw := range raws {
			if raw == nil {
				rep.PagesUnlocatable++
				continue
			}
			ref, err := segtree.DecodeLeaf(raw)
			if err != nil || ref.Hole {
				if err != nil {
					rep.PagesUnlocatable++
				}
				continue // holes store no page
			}
			for _, addr := range ref.Providers {
				g.queues[addr] = append(g.queues[addr], w.leafPages[i])
			}
			rep.PagesQueued++
		}
		g.mu.Unlock()
		// The pages are queued; a failure below must not re-read (and
		// re-queue) them on retry.
		w.leafKeys, w.leafPages = nil, nil
	}
	if len(w.deadNodes) > 0 {
		if nd, ok := g.c.NodeStore().(segtree.NodeDeleter); ok {
			if err := nd.DeleteNodes(ctx, w.deadNodes); err != nil {
				fail()
				return
			}
			rep.NodesDeleted += len(w.deadNodes)
			g.stats.AddNodesDeleted(uint64(len(w.deadNodes)))
		}
	}
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// maxRootSpan returns the root span implied by the largest grid any
// record has seen.
func maxRootSpan(recs []segtree.WriteRecord) uint64 {
	var maxPages uint64
	for _, r := range recs {
		if r.PagesAfter > maxPages {
			maxPages = r.PagesAfter
		}
	}
	return segtree.RootSpan(maxPages)
}

// flush drains the per-provider reclaim queues in bounded batches. A
// failed batch stays queued for the next pass (the provider may be
// down; deletions are idempotent).
func (g *Collector) flush(ctx context.Context, rep *Report) {
	g.mu.Lock()
	addrs := make([]string, 0, len(g.queues))
	for addr := range g.queues {
		addrs = append(addrs, addr)
	}
	g.mu.Unlock()
	sort.Strings(addrs)

	for _, addr := range addrs {
		g.mu.Lock()
		keys := g.queues[addr]
		delete(g.queues, addr)
		g.mu.Unlock()

		for off := 0; off < len(keys); off += g.opts.BatchSize {
			end := off + g.opts.BatchSize
			if end > len(keys) {
				end = len(keys)
			}
			resp, err := g.c.DeletePages(ctx, addr, keys[off:end])
			if err != nil {
				rep.ProviderFailures++
				obs.Log.Infof("gc: delete batch to %s failed (requeued %d keys): %v", addr, len(keys)-off, err)
				g.mu.Lock()
				g.queues[addr] = append(g.queues[addr], keys[off:]...)
				g.mu.Unlock()
				break
			}
			rep.PagesReclaimed += resp.Deleted
			rep.BytesReclaimed += resp.BytesFreed
			g.stats.AddPagesReclaimed(resp.Deleted, resp.BytesFreed)
			if resp.Compacted {
				g.stats.AddCompaction()
			}
		}
	}
}

// PendingDeletes reports the queued-but-undelivered page deletions
// (tests use it to observe retry behaviour).
func (g *Collector) PendingDeletes() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, q := range g.queues {
		n += len(q)
	}
	return n
}

//
// ownerMap: per level-aligned range, the latest version whose write
// intersects it — the predecessor-owner query behind shadow-driven
// reclaim. Version trees are built over exactly these aligned ranges
// (the builder halves from an aligned root), so lookups are exact.
//

type ownerMap struct {
	maxSpan uint64
	levels  map[uint64]map[uint64]uint64 // span -> aligned off -> version
}

func newOwnerMap(recs []segtree.WriteRecord) *ownerMap {
	return &ownerMap{
		maxSpan: maxRootSpan(recs),
		levels:  make(map[uint64]map[uint64]uint64),
	}
}

// ensureSpan grows the index to cover span, re-registering the already
// processed records at the newly added levels only. The grid only
// grows, and each growth doubles the span, so the total replay cost is
// logarithmic in the final grid size.
func (m *ownerMap) ensureSpan(span uint64, replay []segtree.WriteRecord) {
	if span <= m.maxSpan {
		return
	}
	old := m.maxSpan
	m.maxSpan = span
	for _, r := range replay {
		m.updateAbove(r.Ver, r, old)
	}
}

// update records version ver's write interval at every level.
func (m *ownerMap) update(ver uint64, rec segtree.WriteRecord) {
	m.updateAbove(ver, rec, 0)
}

// updateAbove registers the write at every level with span > aboveSpan.
func (m *ownerMap) updateAbove(ver uint64, rec segtree.WriteRecord, aboveSpan uint64) {
	if rec.N == 0 {
		return
	}
	for span := uint64(1); span <= m.maxSpan; span *= 2 {
		if span <= aboveSpan {
			continue
		}
		lvl := m.levels[span]
		if lvl == nil {
			lvl = make(map[uint64]uint64)
			m.levels[span] = lvl
		}
		first := rec.Off / span * span
		last := (rec.Off + rec.N - 1) / span * span
		for off := first; off <= last; off += span {
			lvl[off] = ver
		}
	}
}

// latest returns the most recent recorded version whose write
// intersects the aligned range [off, off+span), or 0.
func (m *ownerMap) latest(off, span uint64) uint64 {
	return m.levels[span][off]
}
