package gc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"blobseer/internal/blob"
	"blobseer/internal/dht"
	"blobseer/internal/pagestore"
	"blobseer/internal/segtree"
	"blobseer/internal/transport"
)

var ctx = context.Background()

type harness struct {
	cluster *blob.Cluster
	cl      *blob.Client
	col     *Collector
}

func newHarness(t *testing.T, cfg blob.ClusterConfig) *harness {
	t.Helper()
	c, err := blob.NewCluster(transport.NewMemNet(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	cl := c.Client("cli")
	t.Cleanup(func() { cl.Close() })
	gcClient := c.Client("gc-host")
	t.Cleanup(func() { gcClient.Close() })
	col := New(gcClient, Options{})
	t.Cleanup(col.Close)
	return &harness{cluster: c, cl: cl, col: col}
}

func (h *harness) runOnce(t *testing.T) Report {
	t.Helper()
	rep, err := h.col.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// metaNodes sums the entries held by the metadata DHT servers.
func (h *harness) metaNodes() int {
	n := 0
	for _, m := range h.cluster.Metas {
		n += m.Len()
	}
	return n
}

func fill(tag, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(tag*31 + i*7)
	}
	return out
}

// TestRetentionBoundsStorage is the unit-level acceptance check: a
// sustained concurrent-overwrite workload under RetainLatest(2) holds
// provider storage bounded within 2x the steady-state working set,
// while the identical no-GC run grows linearly — and every read of a
// live version stays correct throughout.
func TestRetentionBoundsStorage(t *testing.T) {
	const (
		ps      = uint64(1024)
		writers = 3
		region  = 2 * ps // pages per writer region
		rounds  = 6
	)
	run := func(t *testing.T, withGC bool) int64 {
		h := newHarness(t, blob.ClusterConfig{Providers: 4, MetaProviders: 3})
		bl, err := h.cl.Create(ctx, ps)
		if err != nil {
			t.Fatal(err)
		}
		if withGC {
			if err := bl.SetRetention(ctx, 2); err != nil {
				t.Fatal(err)
			}
		}
		want := make([]byte, writers*int(region))
		for r := 0; r < rounds; r++ {
			var wg sync.WaitGroup
			var mu sync.Mutex
			var firstErr error
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					data := fill(r*writers+w+1, int(region))
					if _, err := bl.WriteAt(ctx, data, uint64(w)*region); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					mu.Lock()
					copy(want[w*int(region):], data)
					mu.Unlock()
				}(w)
			}
			wg.Wait()
			if firstErr != nil {
				t.Fatal(firstErr)
			}
			if withGC {
				h.runOnce(t)
			}
			// A live read must never fail or return wrong bytes, GC or not.
			info, err := bl.Latest(ctx)
			if err != nil {
				t.Fatal(err)
			}
			got, err := bl.ReadAt(ctx, info.Ver, 0, uint64(len(want)))
			if err != nil {
				t.Fatalf("round %d: read latest: %v", r, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("round %d: latest read returned wrong bytes", r)
			}
		}
		return h.cluster.ProviderBytes()
	}

	var gcBytes, rawBytes int64
	t.Run("retain2", func(t *testing.T) { gcBytes = run(t, true) })
	t.Run("nogc", func(t *testing.T) { rawBytes = run(t, false) })

	working := int64(writers * int(region))
	if gcBytes > 2*working {
		t.Errorf("GC run holds %d bytes, want <= 2x working set %d", gcBytes, working)
	}
	if rawBytes < int64(rounds)*working {
		t.Errorf("no-GC baseline holds %d bytes, expected linear growth >= %d", rawBytes, int64(rounds)*working)
	}
}

// TestDeleteBlobReclaimsEverything: DeleteBlob plus one pass frees all
// pages and all metadata tree nodes, and any further read answers
// ErrVersionCollected.
func TestDeleteBlobReclaimsEverything(t *testing.T) {
	const ps = uint64(512)
	h := newHarness(t, blob.ClusterConfig{Providers: 3, MetaProviders: 3, PageReplicas: 2})
	bl, err := h.cl.Create(ctx, ps)
	if err != nil {
		t.Fatal(err)
	}
	var lastVer uint64
	for i := 0; i < 5; i++ {
		res, err := bl.Append(ctx, fill(i, int(ps)*2))
		if err != nil {
			t.Fatal(err)
		}
		lastVer = res.Ver
	}
	if _, err := bl.WaitPublished(ctx, lastVer); err != nil {
		t.Fatal(err)
	}
	if h.cluster.ProviderBytes() == 0 || h.metaNodes() == 0 {
		t.Fatal("expected stored pages and metadata before delete")
	}

	if err := bl.Delete(ctx); err != nil {
		t.Fatal(err)
	}
	rep := h.runOnce(t)
	if rep.VersionsCollected == 0 || rep.PagesReclaimed == 0 {
		t.Fatalf("pass reclaimed nothing: %+v", rep)
	}
	if got := h.cluster.ProviderBytes(); got != 0 {
		t.Errorf("provider bytes after delete = %d, want 0", got)
	}
	if got := h.metaNodes(); got != 0 {
		t.Errorf("metadata nodes after delete = %d, want 0", got)
	}

	if _, err := bl.ReadAt(ctx, lastVer, 0, ps); !errors.Is(err, blob.ErrVersionCollected) {
		t.Errorf("read of deleted blob = %v, want ErrVersionCollected", err)
	}
	// A second client with cold caches sees the same clean error.
	cold := h.cluster.Client("cold")
	defer cold.Close()
	if _, err := cold.Handle(bl.ID(), ps).ReadAt(ctx, lastVer, 0, ps); !errors.Is(err, blob.ErrVersionCollected) {
		t.Errorf("cold read of deleted blob = %v, want ErrVersionCollected", err)
	}
}

// TestPinBlocksCollection is the deterministic reader-pin check: a GC
// pass concurrent with a pinned (slow) reader must leave the pinned
// snapshot fully readable; releasing the pin lets the next pass
// collect it.
func TestPinBlocksCollection(t *testing.T) {
	const ps = uint64(512)
	h := newHarness(t, blob.ClusterConfig{Providers: 3, MetaProviders: 3})
	bl, err := h.cl.Create(ctx, ps)
	if err != nil {
		t.Fatal(err)
	}
	// v1..v4 rewrite the same region, so old versions are reclaimable.
	images := make(map[uint64][]byte)
	var last uint64
	for i := 0; i < 4; i++ {
		data := fill(i+1, int(ps)*2)
		res, err := bl.WriteAt(ctx, data, 0)
		if err != nil {
			t.Fatal(err)
		}
		images[res.Ver] = data
		last = res.Ver
	}
	if _, err := bl.WaitPublished(ctx, last); err != nil {
		t.Fatal(err)
	}

	const pinned = uint64(2)
	if err := bl.Pin(ctx, pinned, 0); err != nil {
		t.Fatal(err)
	}
	if err := bl.SetRetention(ctx, 1); err != nil {
		t.Fatal(err)
	}

	rep := h.runOnce(t)
	if rep.PinsBlocked == 0 {
		t.Fatalf("expected the pin to block collection, report %+v", rep)
	}
	// The slow read over the to-be-collected version: still perfect.
	got, err := bl.ReadAt(ctx, pinned, 0, uint64(len(images[pinned])))
	if err != nil {
		t.Fatalf("pinned read failed mid-GC: %v", err)
	}
	if !bytes.Equal(got, images[pinned]) {
		t.Fatal("pinned read returned wrong bytes")
	}
	// Pinning an already collected version is refused cleanly.
	if err := bl.Pin(ctx, 1, 0); !errors.Is(err, blob.ErrVersionCollected) {
		t.Errorf("pin of collected version = %v, want ErrVersionCollected", err)
	}

	if err := bl.Unpin(ctx, pinned); err != nil {
		t.Fatal(err)
	}
	h.runOnce(t)
	h.cl.PurgeVersion(bl.ID(), pinned) // drop warm cache: force re-validation
	if _, err := bl.ReadAt(ctx, pinned, 0, ps); !errors.Is(err, blob.ErrVersionCollected) {
		t.Errorf("read after unpin+collect = %v, want ErrVersionCollected", err)
	}
	// The latest version is always retained and readable.
	got, err = bl.ReadAt(ctx, last, 0, uint64(len(images[last])))
	if err != nil || !bytes.Equal(got, images[last]) {
		t.Fatalf("latest read after collection: err=%v", err)
	}
}

// TestReadAfterDeleteRace hammers reads of a version while another
// goroutine deletes the BLOB and runs collection passes: every read
// must return either the full correct bytes or a clean
// ErrVersionCollected — never short or wrong data. Run under -race.
func TestReadAfterDeleteRace(t *testing.T) {
	const ps = uint64(512)
	h := newHarness(t, blob.ClusterConfig{Providers: 4, MetaProviders: 3})
	bl, err := h.cl.Create(ctx, ps)
	if err != nil {
		t.Fatal(err)
	}
	want := fill(7, int(ps)*6)
	res, err := bl.Append(ctx, want)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bl.WaitPublished(ctx, res.Ver); err != nil {
		t.Fatal(err)
	}

	const readers = 4
	var wg sync.WaitGroup
	errCh := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			// Half the readers share the warm client, half run cold, so
			// both the cached and the RPC path face the race.
			cl := h.cl
			if r%2 == 1 {
				cl = h.cluster.Client(fmt.Sprintf("cold-%d", r))
				defer cl.Close()
			}
			b := cl.Handle(bl.ID(), ps)
			for i := 0; i < 200; i++ {
				got, err := b.ReadAt(ctx, res.Ver, 0, uint64(len(want)))
				if err != nil {
					if errors.Is(err, blob.ErrVersionCollected) {
						continue // clean refusal is the contract
					}
					errCh <- fmt.Errorf("reader %d: %v", r, err)
					return
				}
				if !bytes.Equal(got, want) {
					errCh <- fmt.Errorf("reader %d: wrong bytes", r)
					return
				}
			}
		}(r)
	}
	if err := bl.Delete(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		h.runOnce(t)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if got := h.cluster.ProviderBytes(); got != 0 {
		t.Errorf("provider bytes after race = %d, want 0", got)
	}
}

// TestTruncateBeforeReclaimsPrefixGarbage: TruncateBefore retires old
// versions; pages still reachable from the surviving suffix stay.
func TestTruncateBeforeReclaimsPrefixGarbage(t *testing.T) {
	const ps = uint64(512)
	h := newHarness(t, blob.ClusterConfig{Providers: 3, MetaProviders: 3})
	bl, err := h.cl.Create(ctx, ps)
	if err != nil {
		t.Fatal(err)
	}
	// v1 and v2 rewrite page 0; v3 appends page 1. After
	// TruncateBefore(3): v1's page 0 is shadowed by v2 → garbage;
	// v2's page 0 and v3's page 1 are live content.
	if _, err := bl.WriteAt(ctx, fill(1, int(ps)), 0); err != nil {
		t.Fatal(err)
	}
	v2 := fill(2, int(ps))
	if _, err := bl.WriteAt(ctx, v2, 0); err != nil {
		t.Fatal(err)
	}
	v3 := fill(3, int(ps))
	res, err := bl.WriteAt(ctx, v3, ps)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bl.WaitPublished(ctx, res.Ver); err != nil {
		t.Fatal(err)
	}
	before := h.cluster.ProviderBytes()
	if err := bl.TruncateBefore(ctx, 3); err != nil {
		t.Fatal(err)
	}
	rep := h.runOnce(t)
	if rep.PagesReclaimed != 1 {
		t.Errorf("pages reclaimed = %d, want exactly v1's shadowed page", rep.PagesReclaimed)
	}
	if got := h.cluster.ProviderBytes(); got != before-int64(ps) {
		t.Errorf("provider bytes = %d, want %d", got, before-int64(ps))
	}
	// The live image reads perfectly through version 3.
	got, err := bl.ReadAt(ctx, res.Ver, 0, 2*ps)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:ps], v2) || !bytes.Equal(got[ps:], v3) {
		t.Error("live image corrupted by truncation")
	}
	// v1 is gone; v2 (the version just below the frontier's first
	// survivor... v2 < 3) is collected too even though its page lives
	// on as version 3's visible content.
	if _, err := bl.ReadAt(ctx, 1, 0, ps); !errors.Is(err, blob.ErrVersionCollected) {
		t.Errorf("read of truncated v1 = %v, want ErrVersionCollected", err)
	}
}

// TestCollectorDisabledIsNoOp: a disabled collector leaves garbage in
// place; re-enabling reclaims it.
func TestCollectorDisabledIsNoOp(t *testing.T) {
	const ps = uint64(512)
	h := newHarness(t, blob.ClusterConfig{Providers: 3, MetaProviders: 3})
	bl, err := h.cl.Create(ctx, ps)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bl.Append(ctx, fill(1, int(ps)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bl.WaitPublished(ctx, res.Ver); err != nil {
		t.Fatal(err)
	}
	if err := bl.Delete(ctx); err != nil {
		t.Fatal(err)
	}
	h.col.SetEnabled(false)
	rep := h.runOnce(t)
	if rep.VersionsCollected != 0 || h.cluster.ProviderBytes() == 0 {
		t.Fatalf("disabled collector did work: %+v", rep)
	}
	h.col.SetEnabled(true)
	h.runOnce(t)
	if got := h.cluster.ProviderBytes(); got != 0 {
		t.Errorf("provider bytes after re-enable = %d, want 0", got)
	}
}

// TestStatsAccounting sanity-checks the GCStats counters across a
// delete-driven pass.
func TestStatsAccounting(t *testing.T) {
	const ps = uint64(256)
	h := newHarness(t, blob.ClusterConfig{Providers: 2, MetaProviders: 3})
	bl, err := h.cl.Create(ctx, ps)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bl.Append(ctx, fill(3, int(ps)*3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bl.WaitPublished(ctx, res.Ver); err != nil {
		t.Fatal(err)
	}
	if err := bl.Delete(ctx); err != nil {
		t.Fatal(err)
	}
	h.runOnce(t)
	s := h.col.Stats().Snapshot()
	if s.Passes == 0 || s.VersionsCollected != 1 || s.BlobsDeleted != 1 {
		t.Errorf("stats %+v", s)
	}
	if s.PagesReclaimed != 3 || s.BytesReclaimed != 3*uint64(ps) {
		t.Errorf("pages/bytes = %d/%d, want 3/%d", s.PagesReclaimed, s.BytesReclaimed, 3*ps)
	}
	if s.NodesDeleted == 0 {
		t.Error("no tree nodes deleted")
	}
}

// TestOwnerMap exercises the aligned-range predecessor index directly:
// writes land at every level, queries answer the latest intersecting
// writer for the exact aligned ranges version trees are built from.
func TestOwnerMap(t *testing.T) {
	recs := []segtree.WriteRecord{
		{Ver: 1, Off: 0, N: 2, PagesAfter: 2},
		{Ver: 2, Off: 2, N: 2, PagesAfter: 4},
		{Ver: 3, Off: 1, N: 2, PagesAfter: 4},
	}
	m := newOwnerMap(recs)
	if got := m.latest(0, 1); got != 0 {
		t.Fatalf("empty map: latest(0,1) = %d, want 0", got)
	}
	m.update(1, recs[0])
	m.update(2, recs[1])
	checks := []struct {
		off, span, want uint64
	}{
		{0, 1, 1}, {1, 1, 1}, {2, 1, 2}, {3, 1, 2},
		{0, 2, 1}, {2, 2, 2}, {0, 4, 2},
	}
	for _, c := range checks {
		if got := m.latest(c.off, c.span); got != c.want {
			t.Errorf("latest(%d,%d) = %d, want %d", c.off, c.span, got, c.want)
		}
	}
	m.update(3, recs[2])
	for _, c := range []struct{ off, span, want uint64 }{
		{0, 1, 1}, {1, 1, 3}, {2, 1, 3}, {3, 1, 2}, {0, 2, 3}, {2, 2, 3}, {0, 4, 3},
	} {
		if got := m.latest(c.off, c.span); got != c.want {
			t.Errorf("after v3: latest(%d,%d) = %d, want %d", c.off, c.span, got, c.want)
		}
	}
}

var _ = pagestore.Key{}

// TestMetadataOutageRequeuesWork: the scan advances frontiers
// irreversibly, so a metadata outage during the reclaim I/O must not
// drop the derived work — it stays queued and retries on later passes
// once the DHT answers again.
func TestMetadataOutageRequeuesWork(t *testing.T) {
	const ps = uint64(512)
	h := newHarness(t, blob.ClusterConfig{Providers: 3, MetaProviders: 3})
	bl, err := h.cl.Create(ctx, ps)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bl.Append(ctx, fill(5, int(ps)*3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bl.WaitPublished(ctx, res.Ver); err != nil {
		t.Fatal(err)
	}
	if err := bl.Delete(ctx); err != nil {
		t.Fatal(err)
	}

	// Outage: every metadata provider down. The pass must keep the
	// work instead of silently leaking it.
	addrs := make([]string, len(h.cluster.Metas))
	for i, m := range h.cluster.Metas {
		addrs[i] = string(m.Addr())
		m.Close()
	}
	rep := h.runOnce(t)
	if rep.WorkRetries == 0 {
		t.Fatalf("outage pass reported no queued retries: %+v", rep)
	}
	if rep.PagesReclaimed != 0 || h.cluster.ProviderBytes() == 0 {
		t.Fatal("pages were reclaimed without locating them")
	}
	// Still down: the retry fails again and stays queued.
	rep = h.runOnce(t)
	if rep.WorkRetries == 0 {
		t.Fatalf("second outage pass dropped the retry: %+v", rep)
	}

	// Recovery: the DHT comes back (its entries were lost with the
	// in-memory servers, so the pages are unlocatable — counted, not
	// silently dropped — but the retry queue drains).
	for i, addr := range addrs {
		s, err := dht.NewServer(h.cluster.Net, transport.Addr(addr))
		if err != nil {
			t.Fatalf("reopen meta %d: %v", i, err)
		}
		h.cluster.Metas[i] = s
	}
	rep = h.runOnce(t)
	if rep.WorkRetries != 0 {
		t.Fatalf("post-recovery pass still queues retries: %+v", rep)
	}
	if rep.PagesUnlocatable == 0 {
		t.Fatalf("lost leaves were not accounted: %+v", rep)
	}
}
